GO ?= go

.PHONY: verify lint vet build test race smoke fuzz-short fault-smoke serve-smoke load-check chaos-smoke jobs-smoke peer-smoke fleet-smoke bench bench-check tables tables-quick clean

# verify is the tier-1 gate: lint, build, tests, the race check across the
# whole module (short mode keeps it minutes, not hours), a results-file
# smoke round-trip, a short mutation burst on every decoder fuzz target,
# a fault-matrix smoke run, a live service round-trip (dipserve under
# dipload, drained cleanly), a plain+batch load round-trip with a
# leak check on the drained service, an adversarial chaos session
# against the live service (dipload -chaos), and the job-tier
# crash-replay drill (jobs-smoke: SIGKILL mid-backlog, restart, every
# job completes exactly once), the multi-process peer drill
# (peer-smoke: a real dippeer fleet must produce the byte-identical
# dip-report/v1, fail structurally when a peer dies, and drain cleanly),
# and the fleet-backed serving drill (fleet-smoke: dipserve -peers on a
# standing dippeer fleet, one peer killed mid-load, structured 502s and
# recovery on the survivors, clean drain end to end).
verify: lint build test race smoke fuzz-short fault-smoke serve-smoke load-check chaos-smoke jobs-smoke peer-smoke fleet-smoke

# lint fails on unformatted files or vet findings.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers every package: the concurrent engine and trial-harness pool
# have real concurrency, and the rest is cheap under -short.
race:
	$(GO) test -race -short ./...

# smoke emits a quick machine-readable benchmark file and round-trips it
# through the schema validator, then re-validates every committed results
# sidecar so a hand-edited or stale artifact cannot sit in the tree.
smoke:
	$(GO) run ./cmd/dipbench -quick -seed 1 -progress=false -json /tmp/dip-bench-smoke.json >/dev/null
	$(GO) run ./cmd/dipbench -validate /tmp/dip-bench-smoke.json
	$(GO) run ./cmd/dipbench -validate BENCH_seed1.json FAULT_seed1.json LOAD_seed1.json LOAD_seed2.json LOAD_seed3.json LOAD_seed4.json

# fuzz-short gives each decoder fuzz target a brief mutation burst on top
# of the checked-in seed corpus (go only allows one -fuzz pattern per
# invocation, hence the loop).
FUZZ_TIME ?= 2s
fuzz-short:
	@for target in FuzzReader FuzzRoundTrip FuzzSymDecoders FuzzDSymDecoder FuzzGNIDecoders FuzzLCPDecoders FuzzWireReport FuzzRequestDecode FuzzPeerFrame; do \
		pkg=./internal/core; \
		case $$target in \
			FuzzReader|FuzzRoundTrip) pkg=./internal/wire;; \
			FuzzWireReport|FuzzRequestDecode) pkg=.;; \
			FuzzPeerFrame) pkg=./internal/peer;; \
		esac; \
		$(GO) test -run xxx -fuzz "^$$target$$" -fuzztime $(FUZZ_TIME) $$pkg || exit 1; \
	done

# fault-smoke runs the quick fault matrix (E12) end to end and round-trips
# the dip-fault/v1 file through the schema validator.
fault-smoke:
	$(GO) run ./cmd/dipbench -faults -quick -seed 1 -progress=false -json /tmp/dip-fault-smoke.json >/dev/null
	$(GO) run ./cmd/dipbench -validate /tmp/dip-fault-smoke.json

# serve-smoke exercises the verification service end to end: build
# dipserve and dipload, boot the service on an ephemeral port, fire a
# short load run, validate the dip-load/v1 file, and drain with SIGTERM.
# The trap tears the server down even when a middle step fails.
serve-smoke:
	@dir=$$(mktemp -d /tmp/dip-serve-smoke.XXXXXX); \
	$(GO) build -o $$dir/dipserve ./cmd/dipserve || exit 1; \
	$(GO) build -o $$dir/dipload ./cmd/dipload || exit 1; \
	$$dir/dipserve -addr 127.0.0.1:0 -addr-file $$dir/addr -workers 4 -queue 16 >$$dir/serve.log 2>&1 & \
	pid=$$!; \
	trap 'kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf '"$$dir" EXIT; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "dipserve never bound"; cat $$dir/serve.log; exit 1; }; \
	addr=$$(head -n1 $$dir/addr); \
	$$dir/dipload -url http://$$addr -protocol sym-dmam,sym-dam -n 32 -c 4 -requests 300 -seed 1 -json $$dir/load.json || { cat $$dir/serve.log; exit 1; }; \
	$(GO) run ./cmd/dipbench -validate $$dir/load.json || exit 1; \
	kill -TERM $$pid; \
	wait $$pid || { echo "dipserve exited non-zero after drain"; cat $$dir/serve.log; exit 1; }; \
	grep -q drained $$dir/serve.log || { echo "no drain marker in log"; cat $$dir/serve.log; exit 1; }; \
	echo "serve-smoke: ok"

# load-check exercises the request path end to end in both shapes: boot
# dipserve on an ephemeral port, run a short plain load and a short batch
# load, validate both dip-load/v1 files, fail on any request error, and
# fail if the drained service reports leaked work (non-zero in-flight or
# queue gauges on /metrics).
load-check:
	@dir=$$(mktemp -d /tmp/dip-load-check.XXXXXX); \
	$(GO) build -o $$dir/dipserve ./cmd/dipserve || exit 1; \
	$(GO) build -o $$dir/dipload ./cmd/dipload || exit 1; \
	$$dir/dipserve -addr 127.0.0.1:0 -addr-file $$dir/addr -workers 4 -queue 16 >$$dir/serve.log 2>&1 & \
	pid=$$!; \
	trap 'kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf '"$$dir" EXIT; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "dipserve never bound"; cat $$dir/serve.log; exit 1; }; \
	addr=$$(head -n1 $$dir/addr); \
	$$dir/dipload -url http://$$addr -protocol sym-dmam -n 32 -c 4 -requests 200 -seed 1 -json $$dir/plain.json || { cat $$dir/serve.log; exit 1; }; \
	$$dir/dipload -url http://$$addr -protocol sym-dmam -n 32 -c 4 -requests 200 -batch 25 -seed 1 -json $$dir/batch.json || { cat $$dir/serve.log; exit 1; }; \
	$(GO) run ./cmd/dipbench -validate $$dir/plain.json $$dir/batch.json || exit 1; \
	grep -q '"errors": 0' $$dir/plain.json || { echo "plain load reported errors"; cat $$dir/plain.json; exit 1; }; \
	grep -q '"errors": 0' $$dir/batch.json || { echo "batch load reported errors"; cat $$dir/batch.json; exit 1; }; \
	curl -sf http://$$addr/metrics >$$dir/metrics.json || { echo "metrics unreachable"; exit 1; }; \
	grep -q '"in_flight": 0' $$dir/metrics.json || { echo "in-flight gauge nonzero after load"; cat $$dir/metrics.json; exit 1; }; \
	grep -q '"queue_depth": 0' $$dir/metrics.json || { echo "queue gauge nonzero after load"; cat $$dir/metrics.json; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "dipserve exited non-zero after drain"; cat $$dir/serve.log; exit 1; }; \
	echo "load-check: ok"

# chaos-smoke hardens the serving boundary: boot dipserve on an ephemeral
# port (with a generous rate limit so well-behaved smoke traffic is never
# quota-refused), fire a seed-deterministic adversarial session through
# `dipload -chaos` — malformed/truncated/oversized bodies, slowloris
# drips, disconnects, garbage framing — then require a clean SIGTERM
# drain and a panic-free server log. dipload itself gates on structured
# 4xx/5xx answers, drained gauges, and a settled goroutine count.
chaos-smoke:
	@dir=$$(mktemp -d /tmp/dip-chaos-smoke.XXXXXX); \
	$(GO) build -o $$dir/dipserve ./cmd/dipserve || exit 1; \
	$(GO) build -o $$dir/dipload ./cmd/dipload || exit 1; \
	$$dir/dipserve -addr 127.0.0.1:0 -addr-file $$dir/addr -workers 4 -queue 16 -rate-limit 500 >$$dir/serve.log 2>&1 & \
	pid=$$!; \
	trap 'kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf '"$$dir" EXIT; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "dipserve never bound"; cat $$dir/serve.log; exit 1; }; \
	addr=$$(head -n1 $$dir/addr); \
	$$dir/dipload -url http://$$addr -chaos 120 -c 6 -seed 1 || { cat $$dir/serve.log; exit 1; }; \
	$$dir/dipload -url http://$$addr -protocol sym-dmam -n 16 -c 2 -requests 20 -seed 2 >/dev/null || { echo "post-chaos load failed"; cat $$dir/serve.log; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "dipserve exited non-zero after chaos"; cat $$dir/serve.log; exit 1; }; \
	grep -q drained $$dir/serve.log || { echo "no drain marker in log"; cat $$dir/serve.log; exit 1; }; \
	if grep -qi panic $$dir/serve.log; then echo "panic in server log"; cat $$dir/serve.log; exit 1; fi; \
	echo "chaos-smoke: ok"

# jobs-smoke proves the crash-replay contract end to end. Boot 1 runs
# with a durable journal in ingest-only mode (-job-workers 0), so every
# submitted job is deterministically still pending when the server is
# SIGKILL'd — no graceful drain, no flush beyond the per-record journal
# write. Boot 2 reopens the same journal with workers, replays the
# backlog, and `dipload -jobs poll` requires every recorded job id to
# finish with a validated dip-job/v1 envelope whose report matches the
# submitted seed and protocol. The /metrics gates then pin "exactly
# once": completed equals the backlog size, nothing parked, no ack
# errors, and the replay marker in the log names the full backlog.
jobs-smoke:
	@dir=$$(mktemp -d /tmp/dip-jobs-smoke.XXXXXX); \
	$(GO) build -o $$dir/dipserve ./cmd/dipserve || exit 1; \
	$(GO) build -o $$dir/dipload ./cmd/dipload || exit 1; \
	$$dir/dipserve -addr 127.0.0.1:0 -addr-file $$dir/addr -workers 2 -journal $$dir/jobs.journal -job-workers 0 >$$dir/serve1.log 2>&1 & \
	pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; rm -rf '"$$dir" EXIT; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "dipserve never bound"; cat $$dir/serve1.log; exit 1; }; \
	addr=$$(head -n1 $$dir/addr); \
	$$dir/dipload -url http://$$addr -jobs submit -jobs-file $$dir/ids -protocol sym-dmam,sym-dam -n 24 -c 4 -requests 40 -seed 1 || { cat $$dir/serve1.log; exit 1; }; \
	kill -9 $$pid; \
	wait $$pid 2>/dev/null; \
	rm -f $$dir/addr; \
	$$dir/dipserve -addr 127.0.0.1:0 -addr-file $$dir/addr -workers 2 -journal $$dir/jobs.journal -job-workers 4 >$$dir/serve2.log 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "dipserve never rebound"; cat $$dir/serve2.log; exit 1; }; \
	addr=$$(head -n1 $$dir/addr); \
	$$dir/dipload -url http://$$addr -jobs poll -jobs-file $$dir/ids -seed 1 || { cat $$dir/serve2.log; exit 1; }; \
	grep -q 'journal replayed 40 pending' $$dir/serve2.log || { echo "replay marker missing or wrong count"; cat $$dir/serve2.log; exit 1; }; \
	curl -sf http://$$addr/metrics >$$dir/metrics.json || { echo "metrics unreachable"; exit 1; }; \
	grep -q '"completed": 40' $$dir/metrics.json || { echo "completed != backlog (lost or doubled jobs)"; cat $$dir/metrics.json; exit 1; }; \
	grep -q '"parked": 0' $$dir/metrics.json || { echo "jobs parked as poison"; cat $$dir/metrics.json; exit 1; }; \
	grep -q '"ack_errors": 0' $$dir/metrics.json || { echo "journal refused settles"; cat $$dir/metrics.json; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "dipserve exited non-zero after drain"; cat $$dir/serve2.log; exit 1; }; \
	grep -q drained $$dir/serve2.log || { echo "no drain marker in log"; cat $$dir/serve2.log; exit 1; }; \
	echo "jobs-smoke: ok"

# peer-smoke proves the multi-process executor end to end. Boot four
# dippeer processes on ephemeral ports, run the same sym-dmam instance
# in-process and against the fleet, and require the two dip-report/v1
# files to be byte-identical (cmp, not a field diff — the pin is exact).
# Then boot a peer armed with -fail-session 1 (os.Exit mid-exchange on
# its first session), run against a fleet containing it, and require a
# non-zero exit with a structured transport-phase error on stderr — a
# dying peer must fail the run loudly, never hang or mis-answer. The
# healthy fleet must still serve a fresh session after the wreck, and a
# SIGTERM drain of every surviving peer must log its drain marker.
peer-smoke:
	@dir=$$(mktemp -d /tmp/dip-peer-smoke.XXXXXX); \
	$(GO) build -o $$dir/dippeer ./cmd/dippeer || exit 1; \
	$(GO) build -o $$dir/dipsim ./cmd/dipsim || exit 1; \
	pids=""; \
	trap 'kill -9 $$pids 2>/dev/null; rm -rf '"$$dir" EXIT; \
	for i in 1 2 3 4; do \
		$$dir/dippeer -addr 127.0.0.1:0 -addr-file $$dir/addr$$i >$$dir/peer$$i.log 2>&1 & \
		pids="$$pids $$!"; \
	done; \
	for i in 1 2 3 4; do \
		for t in $$(seq 1 100); do [ -s $$dir/addr$$i ] && break; sleep 0.1; done; \
		[ -s $$dir/addr$$i ] || { echo "peer $$i never bound"; cat $$dir/peer$$i.log; exit 1; }; \
	done; \
	addrs=$$(head -n1 $$dir/addr1),$$(head -n1 $$dir/addr2),$$(head -n1 $$dir/addr3),$$(head -n1 $$dir/addr4); \
	$$dir/dipsim -protocol sym-dmam -graph doubled -n 16 -seed 7 -json $$dir/inproc.json >/dev/null || exit 1; \
	$$dir/dipsim -protocol sym-dmam -graph doubled -n 16 -seed 7 -peers $$addrs -json $$dir/fleet.json >/dev/null || { echo "fleet run failed"; for i in 1 2 3 4; do cat $$dir/peer$$i.log; done; exit 1; }; \
	cmp $$dir/inproc.json $$dir/fleet.json || { echo "fleet report is not byte-identical to in-process"; exit 1; }; \
	$$dir/dippeer -addr 127.0.0.1:0 -addr-file $$dir/addrF -fail-session 1 >$$dir/peerF.log 2>&1 & \
	failpid=$$!; \
	for t in $$(seq 1 100); do [ -s $$dir/addrF ] && break; sleep 0.1; done; \
	[ -s $$dir/addrF ] || { echo "failing peer never bound"; cat $$dir/peerF.log; exit 1; }; \
	if $$dir/dipsim -protocol sym-dmam -graph doubled -n 16 -seed 7 -peers $$addrs,$$(head -n1 $$dir/addrF) >/dev/null 2>$$dir/fail.err; then \
		echo "run with a dying peer unexpectedly succeeded"; exit 1; \
	fi; \
	grep -q 'transport phase' $$dir/fail.err || { echo "no structured transport error:"; cat $$dir/fail.err; exit 1; }; \
	wait $$failpid; [ $$? -eq 2 ] || { echo "failing peer did not exit 2"; cat $$dir/peerF.log; exit 1; }; \
	$$dir/dipsim -protocol sym-dmam -graph doubled -n 16 -seed 7 -peers $$addrs -json $$dir/fleet2.json >/dev/null || { echo "healthy fleet broken after wreck"; exit 1; }; \
	cmp $$dir/inproc.json $$dir/fleet2.json || { echo "post-wreck fleet report diverged"; exit 1; }; \
	kill -TERM $$pids; \
	for p in $$pids; do wait $$p || { echo "peer $$p exited non-zero after drain"; exit 1; }; done; \
	for i in 1 2 3 4; do grep -q drained $$dir/peer$$i.log || { echo "no drain marker in peer $$i log"; cat $$dir/peer$$i.log; exit 1; }; done; \
	echo "peer-smoke: ok"

# fleet-smoke proves the fleet-backed serving tier end to end. Boot three
# dippeer processes and a dipserve pointed at them with -peers, then push
# the full request surface through the standing fleet: a plain load, a
# batch load, and an async jobs submit/poll round (all must finish with
# zero errors; the two dip-load/v1 files must validate). Then SIGKILL one
# peer while a second plain load is in flight: dipload must still exit
# cleanly (no dropped connections — the failures are structured 502
# answers, which it counts as errors), the load file must record a
# non-zero error count for the kill window, /readyz must stay 200 while
# naming the dead peer unreachable, and a fresh load against the
# two-peer remainder must complete with zero errors. Finally a SIGTERM
# drain of dipserve and both surviving peers must log every drain marker.
fleet-smoke:
	@dir=$$(mktemp -d /tmp/dip-fleet-smoke.XXXXXX); \
	$(GO) build -o $$dir/dippeer ./cmd/dippeer || exit 1; \
	$(GO) build -o $$dir/dipserve ./cmd/dipserve || exit 1; \
	$(GO) build -o $$dir/dipload ./cmd/dipload || exit 1; \
	pids=""; \
	trap 'kill -9 $$pids $$srvpid 2>/dev/null; rm -rf '"$$dir" EXIT; \
	for i in 1 2 3; do \
		$$dir/dippeer -addr 127.0.0.1:0 -addr-file $$dir/peer$$i.addr >$$dir/peer$$i.log 2>&1 & \
		eval p$$i=$$!; \
		pids="$$pids $$!"; \
	done; \
	for i in 1 2 3; do \
		for t in $$(seq 1 100); do [ -s $$dir/peer$$i.addr ] && break; sleep 0.1; done; \
		[ -s $$dir/peer$$i.addr ] || { echo "peer $$i never bound"; cat $$dir/peer$$i.log; exit 1; }; \
	done; \
	peers=$$(head -n1 $$dir/peer1.addr),$$(head -n1 $$dir/peer2.addr),$$(head -n1 $$dir/peer3.addr); \
	$$dir/dipserve -addr 127.0.0.1:0 -addr-file $$dir/addr -workers 4 -queue 16 -peers $$peers -journal $$dir/jobs.journal -job-workers 2 >$$dir/serve.log 2>&1 & \
	srvpid=$$!; \
	for t in $$(seq 1 100); do [ -s $$dir/addr ] && break; sleep 0.1; done; \
	[ -s $$dir/addr ] || { echo "dipserve never bound"; cat $$dir/serve.log; exit 1; }; \
	addr=$$(head -n1 $$dir/addr); \
	$$dir/dipload -url http://$$addr -protocol sym-dmam,sym-dam -n 24 -c 4 -requests 120 -seed 1 -json $$dir/plain.json || { cat $$dir/serve.log; exit 1; }; \
	$$dir/dipload -url http://$$addr -protocol sym-dmam -n 24 -c 4 -requests 100 -batch 20 -seed 2 -json $$dir/batch.json || { cat $$dir/serve.log; exit 1; }; \
	$$dir/dipload -url http://$$addr -jobs submit -jobs-file $$dir/ids -protocol sym-dmam -n 24 -c 4 -requests 30 -seed 3 || { cat $$dir/serve.log; exit 1; }; \
	$$dir/dipload -url http://$$addr -jobs poll -jobs-file $$dir/ids -seed 3 || { cat $$dir/serve.log; exit 1; }; \
	$(GO) run ./cmd/dipbench -validate $$dir/plain.json $$dir/batch.json || exit 1; \
	grep -q '"errors": 0' $$dir/plain.json || { echo "healthy-fleet plain load reported errors"; cat $$dir/plain.json; exit 1; }; \
	grep -q '"errors": 0' $$dir/batch.json || { echo "healthy-fleet batch load reported errors"; cat $$dir/batch.json; exit 1; }; \
	$$dir/dipload -url http://$$addr -protocol sym-dmam -n 24 -c 4 -requests 1500 -seed 4 -json $$dir/kill.json >$$dir/kill.out 2>&1 & \
	loadpid=$$!; \
	sleep 1; \
	kill -9 $$p1; \
	wait $$loadpid || { echo "load across the peer kill dropped connections"; cat $$dir/kill.out $$dir/serve.log; exit 1; }; \
	if grep -q '"errors": 0' $$dir/kill.json; then \
		echo "no structured 502s observed across the peer kill"; cat $$dir/kill.json; exit 1; \
	fi; \
	curl -sf http://$$addr/readyz >$$dir/ready.json || { echo "readyz not 200 with one peer down"; exit 1; }; \
	grep -q '"unreachable"' $$dir/ready.json || { echo "readyz does not name the dead peer"; cat $$dir/ready.json; exit 1; }; \
	$$dir/dipload -url http://$$addr -protocol sym-dmam -n 24 -c 4 -requests 60 -seed 5 -json $$dir/recover.json || { cat $$dir/serve.log; exit 1; }; \
	grep -q '"errors": 0' $$dir/recover.json || { echo "fleet did not recover on the surviving peers"; cat $$dir/recover.json; exit 1; }; \
	kill -TERM $$srvpid; \
	wait $$srvpid || { echo "dipserve exited non-zero after drain"; cat $$dir/serve.log; exit 1; }; \
	grep -q drained $$dir/serve.log || { echo "no drain marker in dipserve log"; cat $$dir/serve.log; exit 1; }; \
	kill -TERM $$p2 $$p3; \
	for p in $$p2 $$p3; do wait $$p || { echo "peer $$p exited non-zero after drain"; exit 1; }; done; \
	for i in 2 3; do grep -q drained $$dir/peer$$i.log || { echo "no drain marker in peer $$i log"; cat $$dir/peer$$i.log; exit 1; }; done; \
	echo "fleet-smoke: ok"

# bench runs the engine-mode comparison (sequential vs goroutine-per-node).
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem -benchtime 2s .

# bench-check re-measures allocs/op for both committed baselines and fails
# on a >10% regression: the engine workload against the engine_bench record
# in BENCH_seed1.json and the full request path against the request_bench
# record in LOAD_seed2.json.
bench-check:
	$(GO) run ./cmd/dipbench -bench-check BENCH_seed1.json LOAD_seed2.json

# tables regenerates every EXPERIMENTS.md table at full trial counts and
# the committed BENCH_seed1.json / FAULT_seed1.json sidecars (quick sizes,
# like CI checks).
tables:
	$(GO) run ./cmd/dipbench -seed 1
	$(GO) run ./cmd/dipbench -faults -seed 1
	$(GO) run ./cmd/dipbench -quick -seed 1 -progress=false -json BENCH_seed1.json >/dev/null
	$(GO) run ./cmd/dipbench -faults -quick -seed 1 -progress=false -json FAULT_seed1.json >/dev/null

tables-quick:
	$(GO) run ./cmd/dipbench -seed 1 -quick

clean:
	rm -f dip.test
