GO ?= go

.PHONY: verify vet build test race bench tables tables-quick clean

# verify is the tier-1 gate plus the race check on the two packages with
# real concurrency (the concurrent engine and the trial-harness pool).
verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/network/... ./internal/experiments/...

# bench runs the engine-mode comparison (sequential vs goroutine-per-node).
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem -benchtime 2s .

# tables regenerates every EXPERIMENTS.md table at full trial counts.
tables:
	$(GO) run ./cmd/dipbench -seed 1

tables-quick:
	$(GO) run ./cmd/dipbench -seed 1 -quick

clean:
	rm -f dip.test
