GO ?= go

.PHONY: verify lint vet build test race smoke bench tables tables-quick clean

# verify is the tier-1 gate: lint, build, tests, the race check on the two
# packages with real concurrency (the concurrent engine and the
# trial-harness pool), and a results-file smoke round-trip.
verify: lint build test race smoke

# lint fails on unformatted files or vet findings.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/network/... ./internal/experiments/...

# smoke emits a quick machine-readable benchmark file and round-trips it
# through the schema validator.
smoke:
	$(GO) run ./cmd/dipbench -quick -seed 1 -progress=false -json /tmp/dip-bench-smoke.json >/dev/null
	$(GO) run ./cmd/dipbench -validate /tmp/dip-bench-smoke.json

# bench runs the engine-mode comparison (sequential vs goroutine-per-node).
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem -benchtime 2s .

# tables regenerates every EXPERIMENTS.md table at full trial counts and
# the committed BENCH_seed1.json sidecar (quick sizes, like CI checks).
tables:
	$(GO) run ./cmd/dipbench -seed 1
	$(GO) run ./cmd/dipbench -quick -seed 1 -progress=false -json BENCH_seed1.json >/dev/null

tables-quick:
	$(GO) run ./cmd/dipbench -seed 1 -quick

clean:
	rm -f dip.test
