GO ?= go

.PHONY: verify lint vet build test race smoke fuzz-short fault-smoke bench bench-check tables tables-quick clean

# verify is the tier-1 gate: lint, build, tests, the race check across the
# whole module (short mode keeps it minutes, not hours), a results-file
# smoke round-trip, a short mutation burst on every decoder fuzz target,
# and a fault-matrix smoke run.
verify: lint build test race smoke fuzz-short fault-smoke

# lint fails on unformatted files or vet findings.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers every package: the concurrent engine and trial-harness pool
# have real concurrency, and the rest is cheap under -short.
race:
	$(GO) test -race -short ./...

# smoke emits a quick machine-readable benchmark file and round-trips it
# through the schema validator.
smoke:
	$(GO) run ./cmd/dipbench -quick -seed 1 -progress=false -json /tmp/dip-bench-smoke.json >/dev/null
	$(GO) run ./cmd/dipbench -validate /tmp/dip-bench-smoke.json

# fuzz-short gives each decoder fuzz target a brief mutation burst on top
# of the checked-in seed corpus (go only allows one -fuzz pattern per
# invocation, hence the loop).
FUZZ_TIME ?= 2s
fuzz-short:
	@for target in FuzzReader FuzzRoundTrip FuzzSymDecoders FuzzDSymDecoder FuzzGNIDecoders FuzzLCPDecoders; do \
		pkg=./internal/core; \
		case $$target in FuzzReader|FuzzRoundTrip) pkg=./internal/wire;; esac; \
		$(GO) test -run xxx -fuzz "^$$target$$" -fuzztime $(FUZZ_TIME) $$pkg || exit 1; \
	done

# fault-smoke runs the quick fault matrix (E12) end to end and round-trips
# the dip-fault/v1 file through the schema validator.
fault-smoke:
	$(GO) run ./cmd/dipbench -faults -quick -seed 1 -progress=false -json /tmp/dip-fault-smoke.json >/dev/null
	$(GO) run ./cmd/dipbench -validate /tmp/dip-fault-smoke.json

# bench runs the engine-mode comparison (sequential vs goroutine-per-node).
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem -benchtime 2s .

# bench-check re-measures the engine workload's allocs/op and fails if it
# regresses more than 10% over the engine_bench record in BENCH_seed1.json.
bench-check:
	$(GO) run ./cmd/dipbench -bench-check BENCH_seed1.json

# tables regenerates every EXPERIMENTS.md table at full trial counts and
# the committed BENCH_seed1.json / FAULT_seed1.json sidecars (quick sizes,
# like CI checks).
tables:
	$(GO) run ./cmd/dipbench -seed 1
	$(GO) run ./cmd/dipbench -faults -seed 1
	$(GO) run ./cmd/dipbench -quick -seed 1 -progress=false -json BENCH_seed1.json >/dev/null
	$(GO) run ./cmd/dipbench -faults -quick -seed 1 -progress=false -json FAULT_seed1.json >/dev/null

tables-quick:
	$(GO) run ./cmd/dipbench -seed 1 -quick

clean:
	rm -f dip.test
