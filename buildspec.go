package dip

import (
	"dip/internal/core"
	"dip/internal/network"
)

// BuildSpec rebuilds the named protocol's engine Spec from a Request
// without running it. This is the provisioning hook for peer processes: a
// dippeer fleet receives the coordinator's Request with the edge lists
// stripped (peers see only their own graph slice) and must still derive a
// byte-identical Spec locally. Only the fields that shape the spec itself
// matter — N (or Side/Half for dsym-dam), Marks for gni-marked, and the
// seed/repetitions options — and they are validated exactly as in Run,
// through the same cached constructors.
func BuildSpec(req Request) (*network.Spec, error) {
	e, ok := registry[req.Protocol]
	if !ok {
		return nil, badRequestf("dip: unknown protocol %q (see dip.Protocols)", req.Protocol)
	}
	if err := e.checkFields(&req); err != nil {
		return nil, err
	}
	return e.spec(&req)
}

// cachedProto is cachedProtocol with the type assertion folded in.
func cachedProto[T any](key string, a, b, c, seed int64, build func() (any, error)) (T, error) {
	v, err := cachedProtocol(key, a, b, c, seed, build)
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// specOf adapts a protocol constructor into the registry's spec hook.
func specOf[T interface{ Spec() *network.Spec }](proto func(*Request) (T, error)) func(*Request) (*network.Spec, error) {
	return func(req *Request) (*network.Spec, error) {
		p, err := proto(req)
		if err != nil {
			return nil, err
		}
		return p.Spec(), nil
	}
}

// The proto* constructors are the single source of each protocol's cache
// key and instance parameters, shared by the run path and BuildSpec.

func protoSymDMAM(req *Request) (*core.SymDMAM, error) {
	return cachedProto[*core.SymDMAM]("proto/sym-dmam", int64(req.N), 0, 0, req.Options.Seed,
		func() (any, error) { return core.NewSymDMAM(req.N, req.Options.Seed) })
}

func protoSymDAM(req *Request) (*core.SymDAM, error) {
	return cachedProto[*core.SymDAM]("proto/sym-dam", int64(req.N), 0, 0, req.Options.Seed,
		func() (any, error) { return core.NewSymDAM(req.N, req.Options.Seed) })
}

func protoDSymDAM(req *Request) (*core.DSymDAM, error) {
	return cachedProto[*core.DSymDAM]("proto/dsym-dam", int64(req.Side), int64(req.Half), 0, req.Options.Seed,
		func() (any, error) { return core.NewDSymDAM(req.Side, req.Half, req.Options.Seed) })
}

func protoSymLCP(req *Request) (*core.SymLCP, error) {
	return cachedProto[*core.SymLCP]("proto/sym-lcp", int64(req.N), 0, 0, 0,
		func() (any, error) { return core.NewSymLCP(req.N) })
}

func protoSymRPLS(req *Request) (*core.SymRPLS, error) {
	return cachedProto[*core.SymRPLS]("proto/sym-rpls", int64(req.N), 0, 0, req.Options.Seed,
		func() (any, error) { return core.NewSymRPLS(req.N, req.Options.Seed) })
}

func protoGNIDAMAM(req *Request) (*core.GNIDAMAM, error) {
	k, err := resolveRepetitions(req.Options.Repetitions)
	if err != nil {
		return nil, err
	}
	return cachedProto[*core.GNIDAMAM]("proto/gni-damam", int64(req.N), int64(k), 0, req.Options.Seed,
		func() (any, error) { return core.NewGNIDAMAM(req.N, k, req.Options.Seed) })
}

func protoGNIGeneral(req *Request) (*core.GNIGeneral, error) {
	k, err := resolveRepetitions(req.Options.Repetitions)
	if err != nil {
		return nil, err
	}
	return cachedProto[*core.GNIGeneral]("proto/gni-general", int64(req.N), int64(k), 0, req.Options.Seed,
		func() (any, error) { return core.NewGNIGeneral(req.N, k, req.Options.Seed) })
}

func protoGNILCP(req *Request) (*core.GNILCP, error) {
	return cachedProto[*core.GNILCP]("proto/gni-lcp", int64(req.N), 0, 0, 0,
		func() (any, error) { return core.NewGNILCP(req.N) })
}

// decodeMarks validates a gni-marked request's marking and returns it in
// core form together with k, the number of zero-marked nodes — a spec
// parameter, which is why a peer rebuilding the spec needs Marks even
// though it never sees the edge lists.
func decodeMarks(req *Request) ([]core.Mark, int, error) {
	if len(req.Marks) != req.N {
		return nil, 0, badRequestf("dip: %d marks for %d nodes", len(req.Marks), req.N)
	}
	coreMarks := make([]core.Mark, req.N)
	k := 0
	for v, m := range req.Marks {
		switch m {
		case 0:
			coreMarks[v] = core.MarkZero
			k++
		case 1:
			coreMarks[v] = core.MarkOne
		case -1:
			coreMarks[v] = core.MarkNone
		default:
			return nil, 0, badRequestf("dip: mark %d at node %d (want 0, 1 or -1)", m, v)
		}
	}
	return coreMarks, k, nil
}

func protoGNIMarked(req *Request) (*core.MarkedGNI, error) {
	_, k, err := decodeMarks(req)
	if err != nil {
		return nil, err
	}
	reps, err := resolveRepetitions(req.Options.Repetitions)
	if err != nil {
		return nil, err
	}
	return cachedProto[*core.MarkedGNI]("proto/gni-marked", int64(req.N), int64(k), int64(reps), req.Options.Seed,
		func() (any, error) { return core.NewMarkedGNI(req.N, k, reps, req.Options.Seed) })
}
