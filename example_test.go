package dip_test

import (
	"fmt"

	"dip"
)

// A ring is symmetric: rotating it by one position is a non-trivial
// automorphism. Protocol 1 proves this interactively in O(log n) bits per
// node.
func ExampleProveSymmetry() {
	const n = 8
	var edges [][2]int
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}
	rep, err := dip.ProveSymmetry(n, edges, dip.Options{Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.Protocol, rep.Accepted)
	// Output: sym-dmam true
}

// A star has many symmetries; the centralized ground-truth helper agrees
// with the protocol.
func ExampleIsSymmetric() {
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}}
	sym, err := dip.IsSymmetric(4, edges)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(sym)
	// Output: true
}

// Two paths of the same length are isomorphic regardless of labeling.
func ExampleAreIsomorphic() {
	p1 := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	p2 := [][2]int{{3, 1}, {1, 0}, {0, 2}}
	iso, err := dip.AreIsomorphic(4, p1, p2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(iso)
	// Output: true
}
