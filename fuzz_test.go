package dip

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"dip/internal/network"
)

// FuzzWireReport mutates dip-report/v1 bytes through the decoder: no
// input may panic it, every accepted document must satisfy Validate (the
// decoder promises that), and an accepted document must survive an
// encode/decode round trip unchanged — the property cmd/dipserve's
// byte-identical batch elements rest on.
func FuzzWireReport(f *testing.F) {
	rep, err := Run(Request{Protocol: "sym-dmam", N: 4,
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, Options: Options{Seed: 1}})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WireReportFrom(rep, 1).Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"schema":"dip-report/v1","protocol":"sym-lcp","nodes":3,"seed":7,"accepted":true,"max_prover_bits":5,"total_prover_bits":9,"max_node_to_node_bits":0,"max_node":2}`))
	f.Add([]byte(`{"schema":"dip-report/v0"}`))
	f.Add([]byte(`{"schema":"dip-report/v1","protocol":"x","nodes":2,"accepted":false}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := DecodeWireReport(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the decoder's job is to say no without panicking
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("decoder accepted a document its own Validate rejects: %v", verr)
		}
		var out bytes.Buffer
		if err := w.Encode(&out); err != nil {
			t.Fatalf("re-encoding an accepted document: %v", err)
		}
		w2, err := DecodeWireReport(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !reflect.DeepEqual(w, w2) {
			t.Fatalf("round trip changed the document:\n%+v\nvs\n%+v", w, w2)
		}
	})
}

// FuzzRequestDecode mutates dip.Request JSON through the exact pipeline
// cmd/dipserve runs — strict decode, then RunContext — and pins the error
// taxonomy: every failure must be a classified error (RequestError,
// engine RunError, or a context end). An unclassified error here is what
// the service would answer 500 for, i.e. a bug worth surfacing.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"protocol": "sym-dmam", "n": 4, "edges": [[0,1],[1,2],[2,3],[3,0]], "options": {"seed": 1}}`))
	f.Add([]byte(`{"protocol": "sym-dam", "n": 5, "edges": [[0,1],[1,2],[2,3],[3,4],[4,0]], "options": {"seed": 2}}`))
	f.Add([]byte(`{"protocol": "dsym-dam", "side": 2, "half": 1, "edges": [[0,1],[0,2],[1,2],[2,3],[3,4],[4,5],[4,6],[5,6],[3,7],[7,8],[8,4]]}`))
	f.Add([]byte(`{"protocol": "gni-lcp", "n": 3, "edges": [[0,1],[1,2]], "edges1": [[0,1],[0,2]]}`))
	f.Add([]byte(`{"protocol": "sym-quantum", "n": 4, "edges": []}`))
	f.Add([]byte(`{"protocol": "sym-dmam", "n": 4, "edges": [[0,9]]}`))
	f.Add([]byte(`{"protocol": "sym-dmam", "n": 4, "edges": [[0,1]], "marks": [0,0,1,1]}`))
	f.Add([]byte(`{"protocol": "sym-dmam", "n": 4, "edges": [[0,1]], "options": {"timeout_ns": -5}}`))
	f.Add([]byte(`{"protocol": "gni-marked", "n": 4, "edges": [[0,1],[2,3]], "marks": [0,0,1,1], "options": {"repetitions": 1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // undecodable bytes are the service's 400 path; nothing to run
		}
		// Bound instance sizes so the mutation budget explores decoding and
		// validation, not the engine's asymptotics: the GNI provers
		// enumerate up to 2·n! permutations, and repetitions multiply runs.
		if req.N < 0 || req.N > 48 || len(req.Edges) > 192 || len(req.Edges1) > 192 || len(req.Marks) > 48 {
			t.Skip()
		}
		if req.Side > 6 || req.Half > 6 {
			t.Skip()
		}
		switch req.Protocol {
		case "gni-damam", "gni-general", "gni-marked":
			if req.N > 5 {
				t.Skip()
			}
		}
		if req.Options.Repetitions > 2 {
			req.Options.Repetitions = 2
		}
		if req.Options.Timeout > time.Second {
			req.Options.Timeout = time.Second
		}

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rep, err := RunContext(ctx, req)
		if err != nil {
			var reqErr *RequestError
			var runErr *network.RunError
			switch {
			case errors.As(err, &reqErr):
			case errors.As(err, &runErr):
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			default:
				t.Fatalf("unclassified error (the service would 500): %v", err)
			}
			return
		}
		// A successful run must yield a valid wire document.
		if err := WireReportFrom(rep, req.Options.Seed).Validate(); err != nil {
			t.Fatalf("successful run produced an invalid report: %v", err)
		}
	})
}
