package dip

import (
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/setupcache"
)

// The request path memoizes its two setup stages here: validated graphs
// (keyed by vertex count and edge-list digest) and constructed protocol
// instances (keyed by name and every constructor parameter, including the
// seed — prime search is seed-dependent). Both caches hold values that are
// immutable after construction, so concurrent requests share them freely;
// both verify or exactly match their inputs, so a cached request is
// byte-identical to a cold one (TestCachedRunsByteIdentical pins this).
var (
	graphCache = setupcache.New("graphs", 64)
	protoCache = setupcache.New("protocols", 128)
)

// graphEntry pairs the cached graph with the exact edge list that built
// it, so a digest collision (or a semantically different ordering that
// happens to collide) is detected and rebuilt rather than served.
type graphEntry struct {
	n     int
	edges [][2]int
	g     *graph.Graph
}

func (e *graphEntry) matches(n int, edges [][2]int) bool {
	if e.n != n || len(e.edges) != len(edges) {
		return false
	}
	for i, ed := range edges {
		if e.edges[i] != ed {
			return false
		}
	}
	return true
}

func edgesDigest(edges [][2]int) uint64 {
	const fnvPrime = 1099511628211
	h := uint64(14695981039346656037)
	for _, e := range edges {
		h ^= uint64(e[0])
		h *= fnvPrime
		h ^= uint64(e[1])
		h *= fnvPrime
	}
	return h
}

// cachedGraph is buildGraph behind the graphs cache. The returned graph is
// shared across requests and must be treated read-only (the engine and
// every prover already do).
func cachedGraph(n int, edges [][2]int) (*graph.Graph, error) {
	key := setupcache.Key{
		Kind:   "graph",
		A:      int64(n),
		B:      int64(len(edges)),
		Digest: edgesDigest(edges),
	}
	v, err := graphCache.Do(key,
		func(v any) bool { return v.(*graphEntry).matches(n, edges) },
		func() (any, error) {
			g, err := buildGraph(n, edges)
			if err != nil {
				return nil, err
			}
			cp := make([][2]int, len(edges))
			copy(cp, edges)
			return &graphEntry{n: n, edges: cp, g: g}, nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*graphEntry).g, nil
}

// cachedProtocol memoizes one protocol constructor call. The key carries
// every constructor argument, so no verifier is needed: equal keys mean
// equal (deterministically constructed) instances. Constructor failures
// are parameter validation (n too small, inconsistent sizes), so they
// surface as request errors.
func cachedProtocol(kind string, a, b, c, seed int64, build func() (any, error)) (any, error) {
	key := setupcache.Key{Kind: kind, A: a, B: b, C: c, D: seed}
	v, err := protoCache.Do(key, nil, build)
	if err != nil {
		return nil, asBadRequest(err)
	}
	return v, nil
}

// ResetSetupCaches drops every request-path memo: graphs, protocol
// instances, per-graph artifacts (automorphisms, spanning trees) and
// compiled round scripts. Tests use it to compare cold and warm runs; a
// server never needs it.
func ResetSetupCaches() {
	graphCache.Reset()
	protoCache.Reset()
	setupcache.ResetAll()
	network.ResetScriptCache()
}
