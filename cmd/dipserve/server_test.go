package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dip"
	"dip/internal/faults"
	"dip/internal/network"
	"dip/internal/peer"
)

// startTestServer wires a server with cfg (zero fields defaulted) into an
// httptest listener and tears everything down with the test.
func startTestServer(t *testing.T, cfg config, runFunc func(context.Context, dip.Request) (dip.Report, error)) (*server, *httptest.Server) {
	t.Helper()
	def := defaultConfig()
	if cfg.workers == 0 {
		cfg.workers = 2
	}
	if cfg.queue == 0 {
		cfg.queue = def.queue
	}
	if cfg.timeout == 0 {
		cfg.timeout = def.timeout
	}
	if cfg.maxBody == 0 {
		cfg.maxBody = def.maxBody
	}
	if cfg.jobs == (jobsConfig{}) {
		cfg.jobs = def.jobs
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if runFunc != nil {
		s.runFunc = runFunc
	}
	s.start()
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.stop()
	})
	return s, ts
}

func postRun(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	return resp
}

func cycleRequest(n int, seed int64) string {
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	req := dip.Request{Protocol: "sym-dmam", N: n, Edges: edges, Options: dip.Options{Seed: seed}}
	b, _ := json.Marshal(req)
	return string(b)
}

// TestRunEndpoint: a real protocol run end to end — request in,
// dip-report/v1 out.
func TestRunEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	resp := postRun(t, ts.URL, cycleRequest(8, 5))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	w, err := dip.DecodeWireReport(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if w.Protocol != "sym-dmam" || w.Nodes != 8 || w.Seed != 5 || !w.Accepted {
		t.Fatalf("report: %+v", w)
	}
	if len(w.PerRound) != 3 {
		t.Fatalf("per-round entries: %d", len(w.PerRound))
	}
}

// TestRunEndpointDeterministic: the service answers a repeated request
// byte-identically — the engine's seed discipline survives the pool.
func TestRunEndpointDeterministic(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	read := func() string {
		resp := postRun(t, ts.URL, cycleRequest(10, 42))
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if a, b := read(), read(); a != b {
		t.Fatalf("two identical requests answered differently:\n%s\nvs\n%s", a, b)
	}
}

// TestRunEndpointBadRequests: malformed body, unknown field, unknown
// protocol, invalid instance, wrong method.
func TestRunEndpointBadRequests(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"protocol": `, http.StatusBadRequest},
		{"unknown field", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,1]], "frobnicate": 1}`, http.StatusBadRequest},
		{"unknown protocol", `{"protocol": "sym-quantum", "n": 4, "edges": [[0,1]]}`, http.StatusBadRequest},
		{"edge out of range", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,9]]}`, http.StatusBadRequest},
		{"unused field", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,1],[1,2],[2,3],[3,0]], "marks": [0,0,1,1]}`, http.StatusBadRequest},
		{"negative timeout", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,1],[1,2],[2,3],[3,0]], "options": {"timeout_ns": -5}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRun(t, ts.URL, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, b)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Fatalf("error body: %v / %+v", err, eb)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: %d", resp.StatusCode)
	}
}

// TestQueueFull: with one worker wedged and the queue occupied, the next
// request is refused immediately — well inside the 5ms admission bound —
// with 503 and a Retry-After hint.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{}, 8)
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		blocked <- struct{}{}
		<-release
		return dip.Report{Protocol: req.Protocol}, nil
	}
	s, ts := startTestServer(t, config{workers: 1, queue: 1, timeout: time.Minute}, runFunc)
	defer close(release)

	// First request occupies the worker; second fills the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postRun(t, ts.URL, cycleRequest(4, 1))
			resp.Body.Close()
		}()
	}
	<-blocked // worker holds job 1
	waitFor(t, func() bool { return s.meters.QueueDepth.Value() == 1 })

	start := time.Now()
	resp := postRun(t, ts.URL, cycleRequest(4, 2))
	elapsed := time.Since(start)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The admission decision itself is a select-default; the 5ms bound
	// leaves room for HTTP round-trip overhead. Race instrumentation slows
	// everything severalfold, so the bound is scaled there.
	bound := 5 * time.Millisecond
	if raceEnabled {
		bound = 50 * time.Millisecond
	}
	if elapsed > bound {
		t.Fatalf("queue-full rejection took %v, want < %v", elapsed, bound)
	}
	if s.meters.Rejected.Value() == 0 {
		t.Fatal("rejection not metered")
	}
	release <- struct{}{}
	release <- struct{}{}
	wg.Wait()
}

// TestRunDeadline: a run exceeding the per-request deadline is cut off and
// answered 504 with the engine's phase attached.
func TestRunDeadline(t *testing.T) {
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		<-ctx.Done()
		return dip.Report{}, ctx.Err()
	}
	_, ts := startTestServer(t, config{timeout: 20 * time.Millisecond}, runFunc)
	resp := postRun(t, ts.URL, cycleRequest(4, 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Phase != "deadline" {
		t.Fatalf("error body: %v / %+v", err, eb)
	}
}

// TestDrain: a draining server refuses new runs and reports not-ready, but
// stays alive for health checks.
func TestDrain(t *testing.T) {
	s, ts := startTestServer(t, config{}, nil)
	s.draining.Store(true)

	resp := postRun(t, ts.URL, cycleRequest(4, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain: %d", resp.StatusCode)
	}

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", ready.StatusCode)
	}

	alive, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	alive.Body.Close()
	if alive.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d", alive.StatusCode)
	}
}

// TestProtocolsEndpoint: the registry listing is served sorted.
func TestProtocolsEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	resp, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Protocols []dip.ProtocolInfo `json:"protocols"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Protocols) != len(dip.Protocols()) {
		t.Fatalf("%d protocols listed", len(body.Protocols))
	}
	for i := 1; i < len(body.Protocols); i++ {
		if body.Protocols[i-1].Name >= body.Protocols[i].Name {
			t.Fatalf("listing unsorted at %d", i)
		}
	}
}

// TestMetricsEndpoint: the composed payload carries service, engine and
// state-pool sections.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	postRun(t, ts.URL, cycleRequest(6, 3)).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsPayload
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Service.Requests < 1 {
		t.Fatalf("service requests: %+v", m.Service)
	}
	if m.StatePool.Capacity < 1 {
		t.Fatalf("state pool: %+v", m.StatePool)
	}
	if len(m.Service.Protocols) == 0 || m.Service.Protocols[0].Protocol != "sym-dmam" {
		t.Fatalf("per-protocol: %+v", m.Service.Protocols)
	}
}

// TestRequestStorm hammers the service with real concurrent runs over the
// shared engine pool: every request must come back 200 or 503, every 200
// must decode into a valid report, and nothing may hang. Run with -race
// this doubles as the pool-sharing data-race check.
func TestRequestStorm(t *testing.T) {
	s, ts := startTestServer(t, config{workers: 4, queue: 8}, nil)

	const clients = 8
	const perClient = 15
	var ok200, ok503, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := cycleRequest(12+(i%3)*2, int64(c*1000+i))
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if _, err := dip.DecodeWireReport(resp.Body); err != nil {
						t.Errorf("client %d: bad report: %v", c, err)
					}
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					ok503.Add(1)
				default:
					other.Add(1)
					b, _ := io.ReadAll(resp.Body)
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, b)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	if got := ok200.Load() + ok503.Load(); got != clients*perClient || other.Load() != 0 {
		t.Fatalf("%d ok + %d overflow + %d other of %d", ok200.Load(), ok503.Load(), other.Load(), clients*perClient)
	}
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	if s.meters.InFlight.Value() != 0 || s.meters.QueueDepth.Value() != 0 {
		t.Fatalf("gauges nonzero after storm: in-flight %d, queue %d",
			s.meters.InFlight.Value(), s.meters.QueueDepth.Value())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchEndpoint: N requests in one body come back as an array whose
// elements are byte-identical to the corresponding /v1/run answers, with
// per-item errors inline instead of failing the whole batch.
func TestBatchEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)

	single := func(body string) string {
		resp := postRun(t, ts.URL, body)
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	want0 := single(cycleRequest(8, 5))
	want1 := single(cycleRequest(8, 6))

	batch := `{"requests": [` + cycleRequest(8, 5) + `,` + cycleRequest(8, 6) +
		`,{"protocol": "sym-dmam", "n": 4, "edges": [[0,9]]}]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var elems []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&elems); err != nil {
		t.Fatal(err)
	}
	if len(elems) != 3 {
		t.Fatalf("%d elements, want 3", len(elems))
	}
	for i, want := range []string{want0, want1} {
		if got := string(elems[i]) + "\n"; got != want {
			t.Fatalf("element %d differs from /v1/run answer:\n%s\nvs\n%s", i, got, want)
		}
	}
	var eb errorBody
	if err := json.Unmarshal(elems[2], &eb); err != nil || eb.Error == "" {
		t.Fatalf("element 2 is not an error object: %v / %s", err, elems[2])
	}
}

// TestBatchEndpointBadRequests: empty batches, oversized batches, and
// malformed bodies are refused before admission.
func TestBatchEndpointBadRequests(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	var big strings.Builder
	big.WriteString(`{"requests": [`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(cycleRequest(4, int64(i)))
	}
	big.WriteString(`]}`)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"requests": []}`},
		{"malformed", `{"requests": `},
		{"oversized", big.String()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestMapRunError pins the full error taxonomy: engine phases keep their
// distinctions, request validation is the client's fault, context ends
// are 504, and — the regression this table exists for — an unclassified
// error is an internal 500, never blamed on the client as a 400.
func TestMapRunError(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		phase  string
	}{
		{"engine setup", &network.RunError{Protocol: "p", Phase: network.PhaseSetup, Round: -1, Node: -1, Err: errors.New("x")}, http.StatusBadRequest, "setup"},
		{"engine challenge", &network.RunError{Protocol: "p", Phase: network.PhaseChallenge, Round: 0, Node: 1, Err: errors.New("x")}, http.StatusBadGateway, "challenge"},
		{"engine respond", &network.RunError{Protocol: "p", Phase: network.PhaseRespond, Round: 0, Node: -1, Err: errors.New("x")}, http.StatusBadGateway, "respond"},
		{"engine digest", &network.RunError{Protocol: "p", Phase: network.PhaseDigest, Round: 1, Node: 2, Err: errors.New("x")}, http.StatusBadGateway, "digest"},
		{"engine decide", &network.RunError{Protocol: "p", Phase: network.PhaseDecide, Round: -1, Node: 0, Err: errors.New("x")}, http.StatusBadGateway, "decide"},
		{"engine deadline", &network.RunError{Protocol: "p", Phase: network.PhaseDeadline, Round: 0, Node: -1, Err: errors.New("x")}, http.StatusGatewayTimeout, "deadline"},
		{"engine canceled", &network.RunError{Protocol: "p", Phase: network.PhaseCanceled, Round: 0, Node: -1, Err: errors.New("x")}, http.StatusGatewayTimeout, "canceled"},
		{"request validation", &dip.RequestError{Err: errors.New("bad instance")}, http.StatusBadRequest, "request"},
		{"wrapped request validation", fmt.Errorf("running: %w", &dip.RequestError{Err: errors.New("bad")}), http.StatusBadRequest, "request"},
		{"context deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline"},
		{"context canceled", context.Canceled, http.StatusGatewayTimeout, "deadline"},
		{"wrapped context deadline", fmt.Errorf("run: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "deadline"},
		{"unclassified", errors.New("disk on fire"), http.StatusInternalServerError, "internal"},
		{"wrapped unclassified", fmt.Errorf("outer: %w", errors.New("inner")), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, phase := mapRunError(tc.err)
			if status != tc.status || phase != tc.phase {
				t.Fatalf("mapRunError(%v) = (%d, %q), want (%d, %q)", tc.err, status, phase, tc.status, tc.phase)
			}
		})
	}
}

// TestInternalErrorStatus: an unclassified run failure travels the wire
// as a 500 (the pre-fix fallback answered 400, telling the client to
// fix a request that was fine), and a panicking run func is contained
// into the same 500 with the service still alive afterwards.
func TestInternalErrorStatus(t *testing.T) {
	var mode atomic.Int64
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		switch mode.Load() {
		case 1:
			return dip.Report{}, errors.New("unclassified failure")
		case 2:
			panic("boom")
		}
		return dip.Report{Protocol: req.Protocol, Decisions: []bool{true}}, nil
	}
	_, ts := startTestServer(t, config{}, runFunc)

	for _, tc := range []struct {
		name string
		mode int64
	}{
		{"plain error", 1},
		{"panic", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mode.Store(tc.mode)
			resp := postRun(t, ts.URL, cycleRequest(4, 1))
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusInternalServerError {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 500: %s", resp.StatusCode, b)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Phase != "internal" {
				t.Fatalf("error body: %v / %+v", err, eb)
			}
		})
	}
	// The worker that contained the panic is still serving.
	mode.Store(0)
	resp := postRun(t, ts.URL, cycleRequest(4, 2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after contained panic: %d", resp.StatusCode)
	}
}

// TestOversizedBody: a body past the cap is refused 413 (the client must
// shrink it, not fix it) on both endpoints, and the cut-off decode never
// reaches admission.
func TestOversizedBody(t *testing.T) {
	s, ts := startTestServer(t, config{maxBody: 512}, nil)
	big := cycleRequest(200, 1) // ~2KB of edges, far past the 512-byte cap
	for _, path := range []string{"/v1/run", "/v1/batch"} {
		t.Run(path, func(t *testing.T) {
			body := big
			if path == "/v1/batch" {
				body = `{"requests": [` + big + `]}`
			}
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 413: %s", resp.StatusCode, b)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Fatalf("error body: %v / %+v", err, eb)
			}
		})
	}
	if s.meters.Requests.Value() != 0 {
		t.Fatalf("oversized bodies were admitted: %d requests metered", s.meters.Requests.Value())
	}
}

// TestMidBodyDisconnect: a client that promises a body and vanishes
// mid-send must not wedge the service — the decoder sees the broken
// read, the handler answers into the void, and the next well-behaved
// request is served normally.
func TestMidBodyDisconnect(t *testing.T) {
	s, ts := startTestServer(t, config{}, nil)
	body := cycleRequest(16, 1)

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	head := fmt.Sprintf("POST /v1/run HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(body))
	if _, err := conn.Write([]byte(head + body[:len(body)/3])); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The service shrugs: gauges drain and a normal request still works.
	waitFor(t, func() bool {
		return s.meters.InFlight.Value() == 0 && s.meters.QueueDepth.Value() == 0
	})
	resp := postRun(t, ts.URL, cycleRequest(8, 2))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after disconnect: %d", resp.StatusCode)
	}
}

// TestStopUnderConcurrentAdmission is the drain-race regression test:
// stop() fires while handlers are mid-admission, exactly the window in
// which the pre-fix server closed s.jobs and a racing handler's enqueue
// panicked the whole process ("send on closed channel"). With the fix
// every storm request must come back 200 or 503 — and the process must
// survive. Run under -race this also checks the quit/stopped signaling.
func TestStopUnderConcurrentAdmission(t *testing.T) {
	cfg := defaultConfig()
	cfg.workers = 2
	cfg.queue = 4
	cfg.timeout = time.Minute
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.runFunc = func(ctx context.Context, req dip.Request) (dip.Report, error) {
		time.Sleep(200 * time.Microsecond) // hold workers busy so admission races stop()
		return dip.Report{Protocol: req.Protocol}, nil
	}
	s.start()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	body := []byte(cycleRequest(4, 1))
	const clients = 8
	const perClient = 60
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
				if err != nil {
					// The httptest server itself never goes away; a
					// transport error here would be a real failure.
					t.Errorf("client %d: %v", c, err)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					b, _ := io.ReadAll(resp.Body)
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, b)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}

	// Stop mid-storm. The sleep puts stop() inside the storm window
	// rather than before it; the exact interleaving varies per run, which
	// is the point — any schedule must be panic-free.
	time.Sleep(2 * time.Millisecond)
	s.stop()
	wg.Wait()

	// After stop, admission still answers (503 via the stopped channel),
	// never hangs.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-stop request: %d", resp.StatusCode)
	}
}

// TestRateLimit429: with a per-client budget configured, a burst past it
// answers 429 with a Retry-After hint, the turned-away requests are
// metered in request units, and the budget refills.
func TestRateLimit429(t *testing.T) {
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		return dip.Report{Protocol: req.Protocol}, nil
	}
	s, ts := startTestServer(t, config{rateLimit: 5, rateBurst: 3}, runFunc)
	// Drive the limiter's clock by hand so the burst cannot refill
	// mid-test on a slow runner.
	clock := &fakeClock{t: time.Unix(2000, 0)}
	s.limiter.now = clock.now

	body := cycleRequest(4, 1)
	for i := 0; i < 3; i++ {
		resp := postRun(t, ts.URL, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: %d", i, resp.StatusCode)
		}
	}
	resp := postRun(t, ts.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.meters.RateLimited.Value(); got != 1 {
		t.Fatalf("rate-limited meter = %d, want 1", got)
	}
	// The refusal is pre-admission: nothing was queued or run for it.
	if got := s.meters.Requests.Value(); got != 3 {
		t.Fatalf("admitted meter = %d, want 3", got)
	}

	clock.advance(time.Second) // 5 tokens/s refills the burst of 3
	ok := postRun(t, ts.URL, body)
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("request after refill: %d", ok.StatusCode)
	}
}

// TestRateLimitBatchCost: a batch spends one token per item — the
// admission unit is the body, but the quota unit is the request, so a
// k-item batch against a k-token budget exhausts it exactly.
func TestRateLimitBatchCost(t *testing.T) {
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		return dip.Report{Protocol: req.Protocol, Decisions: []bool{true}}, nil
	}
	s, ts := startTestServer(t, config{rateLimit: 1, rateBurst: 4}, runFunc)
	clock := &fakeClock{t: time.Unix(3000, 0)}
	s.limiter.now = clock.now

	batch := `{"requests": [` + cycleRequest(4, 1) + `,` + cycleRequest(4, 2) + `,` + cycleRequest(4, 3) + `]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: %d", resp.StatusCode)
	}
	// 1 token left; the next 3-item batch is over budget and is metered
	// as 3 refused requests.
	resp2, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second batch: %d, want 429", resp2.StatusCode)
	}
	if got := s.meters.RateLimited.Value(); got != 3 {
		t.Fatalf("rate-limited meter = %d, want 3 (per-item units)", got)
	}
	// And the quota counter is visible on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m metricsPayload
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Service.RateLimited != 3 {
		t.Fatalf("/metrics rate_limited = %d, want 3", m.Service.RateLimited)
	}
	if m.Runtime.Goroutines < 1 {
		t.Fatalf("/metrics runtime section missing: %+v", m.Runtime)
	}
}

// TestBatchRejectionUnits: the pre-fix server admitted a batch as
// Requests.Add(len) but rejected it as Rejected.Add(1); both counters
// must move in request units or their ratio is meaningless.
func TestBatchRejectionUnits(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{}, 8)
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		blocked <- struct{}{}
		<-release
		return dip.Report{Protocol: req.Protocol}, nil
	}
	s, ts := startTestServer(t, config{workers: 1, queue: 1, timeout: time.Minute}, runFunc)
	defer close(release)

	batch := `{"requests": [` + cycleRequest(4, 1) + `,` + cycleRequest(4, 2) + `,` + cycleRequest(4, 3) + `]}`
	post := func() int {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	// Wedge the worker with one batch, fill the queue with a second.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() { post(); done <- struct{}{} }()
	}
	<-blocked
	waitFor(t, func() bool { return s.meters.QueueDepth.Value() == 1 })

	if status := post(); status != http.StatusServiceUnavailable {
		t.Fatalf("queue-full batch: %d, want 503", status)
	}
	if got := s.meters.Rejected.Value(); got != 3 {
		t.Fatalf("rejected meter = %d, want 3 (per-item units, not 1 per body)", got)
	}
	// Admission moved in the same units: 2 batches * 3 items.
	if got := s.meters.Requests.Value(); got != 6 {
		t.Fatalf("admitted meter = %d, want 6", got)
	}
	for i := 0; i < 6; i++ {
		release <- struct{}{}
	}
	<-done
	<-done
}

// TestRequestStormChaos interleaves well-behaved clients with raw-TCP
// chaos exchanges (malformed, truncated, oversized, slow, disconnecting,
// unparseable) against the same listener: the well-behaved traffic must
// keep succeeding, every answered chaos exchange must be 4xx/5xx, the
// gauges must drain to zero, and the goroutine count must settle — the
// in-process twin of `dipload -chaos`, and under -race the data-race
// check for the adversarial path.
func TestRequestStormChaos(t *testing.T) {
	s, ts := startTestServer(t, config{workers: 4, queue: 8}, nil)
	addr := ts.Listener.Addr().String()
	baseline := runtime.NumGoroutine()

	const goodClients = 4
	const perGood = 10
	const chaosClients = 4
	const perChaos = 12
	var ok200, ok503, badGood, chaosViolations atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < goodClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perGood; i++ {
				resp, err := http.Post(ts.URL+"/v1/run", "application/json",
					strings.NewReader(cycleRequest(10+(i%3)*2, int64(c*100+i))))
				if err != nil {
					t.Errorf("good client %d: %v", c, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if _, err := dip.DecodeWireReport(resp.Body); err != nil {
						t.Errorf("good client %d: bad report: %v", c, err)
					}
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					ok503.Add(1)
				default:
					badGood.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	body := []byte(cycleRequest(12, 7))
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perChaos; i++ {
				sc, rng := faults.HTTPChaosFor(99, c*perChaos+i)
				out, err := sc.Run(rng, addr, body)
				if err != nil {
					t.Errorf("chaos %s: %v", sc.Name, err)
					continue
				}
				if sc.WantResponse && (out.Status < 400 || out.Status >= 600) {
					chaosViolations.Add(1)
					t.Errorf("chaos %s: status %d, want 4xx/5xx", sc.Name, out.Status)
				}
			}
		}(c)
	}
	wg.Wait()

	if badGood.Load() != 0 || chaosViolations.Load() != 0 {
		t.Fatalf("%d bad well-behaved answers, %d chaos violations", badGood.Load(), chaosViolations.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("no well-behaved request succeeded under chaos")
	}
	// The boundary sheds the abuse completely: gauges drain and the
	// goroutine count settles back (idle-connection reaping takes a few
	// read-deadline cycles, hence the wait loop and slack).
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, func() bool {
		return s.meters.InFlight.Value() == 0 && s.meters.QueueDepth.Value() == 0
	})
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+12 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// startPeerFleet boots k in-process peer servers with the dippeer
// SpecBuilder and returns a dialed dip.Fleet plus a kill switch that
// severs every peer (listener and live sessions).
func startPeerFleet(t *testing.T, k int) (*dip.Fleet, func()) {
	t.Helper()
	var (
		listeners []net.Listener
		servers   []*peer.Server
		addrs     []string
	)
	for i := 0; i < k; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &peer.Server{Build: func(params []byte) (*network.Spec, error) {
			var req dip.Request
			if err := json.Unmarshal(params, &req); err != nil {
				return nil, err
			}
			return dip.BuildSpec(req)
		}}
		go srv.Serve(l)
		listeners = append(listeners, l)
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
	}
	kill := func() {
		for i := range listeners {
			listeners[i].Close()
			servers[i].Close()
		}
	}
	t.Cleanup(kill)
	fleet, err := dip.DialFleet(addrs, dip.FleetOptions{IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	return fleet, kill
}

// TestFleetBackedServer pins the -peers serving path end to end with
// in-process peers: /v1/run and /v1/batch answer through the fleet with
// the same bytes the in-process path produces, /metrics carries the
// fleet gauges, /readyz reports reachability — and once every peer dies,
// runs answer structured 502s and readiness goes 503.
func TestFleetBackedServer(t *testing.T) {
	fleet, kill := startPeerFleet(t, 2)
	s, ts := startTestServer(t, config{}, nil)
	s.useFleet(fleet)

	// A fleet-backed run must be byte-identical to the in-process answer.
	resp := postRun(t, ts.URL, cycleRequest(8, 5))
	fleetBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet run status %d: %s", resp.StatusCode, fleetBody)
	}
	var req dip.Request
	if err := json.Unmarshal([]byte(cycleRequest(8, 5)), &req); err != nil {
		t.Fatal(err)
	}
	local, err := dip.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := dip.WireReportFrom(local, req.Options.Seed).Encode(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetBody, want.Bytes()) {
		t.Fatalf("fleet answer diverges from in-process:\nfleet %s\nlocal %s", fleetBody, want.Bytes())
	}

	// Batch rides the same fleet.
	batch := fmt.Sprintf(`{"requests": [%s, %s]}`, cycleRequest(6, 1), cycleRequest(6, 2))
	bresp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	bbody, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("fleet batch status %d: %s", bresp.StatusCode, bbody)
	}

	// The fleet gauges surface on /metrics with real traffic in them.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Fleet *dip.FleetStats `json:"fleet"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if metrics.Fleet == nil || len(metrics.Fleet.Peers) != 2 {
		t.Fatalf("metrics fleet block: %+v", metrics.Fleet)
	}
	var completed int64
	for _, ps := range metrics.Fleet.Peers {
		completed += ps.SessionsCompleted
	}
	if completed == 0 {
		t.Fatal("no completed sessions in fleet gauges after successful runs")
	}

	// /readyz carries the fleet block and stays ready while peers live.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyBody
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || ready.Fleet == nil || ready.Fleet.Peers != 2 || len(ready.Fleet.Unreachable) != 0 {
		t.Fatalf("readyz with live fleet: status %d, %+v", rresp.StatusCode, ready.Fleet)
	}

	// Kill every peer: runs must answer structured 502s, not hang.
	kill()
	resp = postRun(t, ts.URL, cycleRequest(8, 6))
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway || eb.Phase != "transport" {
		t.Fatalf("run against dead fleet: status %d, phase %q (%s)", resp.StatusCode, eb.Phase, eb.Error)
	}

	// Readiness follows: every peer unreachable is a 503.
	rresp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready = readyBody{}
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || ready.Status != "fleet-unreachable" ||
		ready.Fleet == nil || len(ready.Fleet.Unreachable) != 2 {
		t.Fatalf("readyz with dead fleet: status %d, %+v", rresp.StatusCode, ready)
	}
}
