package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dip"
)

// startTestServer wires a server with cfg (zero fields defaulted) into an
// httptest listener and tears everything down with the test.
func startTestServer(t *testing.T, cfg config, runFunc func(context.Context, dip.Request) (dip.Report, error)) (*server, *httptest.Server) {
	t.Helper()
	def := defaultConfig()
	if cfg.workers == 0 {
		cfg.workers = 2
	}
	if cfg.queue == 0 {
		cfg.queue = def.queue
	}
	if cfg.timeout == 0 {
		cfg.timeout = def.timeout
	}
	if cfg.maxBody == 0 {
		cfg.maxBody = def.maxBody
	}
	s := newServer(cfg)
	if runFunc != nil {
		s.runFunc = runFunc
	}
	s.start()
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.stop()
	})
	return s, ts
}

func postRun(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	return resp
}

func cycleRequest(n int, seed int64) string {
	edges := make([][2]int, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int{i, (i + 1) % n}
	}
	req := dip.Request{Protocol: "sym-dmam", N: n, Edges: edges, Options: dip.Options{Seed: seed}}
	b, _ := json.Marshal(req)
	return string(b)
}

// TestRunEndpoint: a real protocol run end to end — request in,
// dip-report/v1 out.
func TestRunEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	resp := postRun(t, ts.URL, cycleRequest(8, 5))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	w, err := dip.DecodeWireReport(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if w.Protocol != "sym-dmam" || w.Nodes != 8 || w.Seed != 5 || !w.Accepted {
		t.Fatalf("report: %+v", w)
	}
	if len(w.PerRound) != 3 {
		t.Fatalf("per-round entries: %d", len(w.PerRound))
	}
}

// TestRunEndpointDeterministic: the service answers a repeated request
// byte-identically — the engine's seed discipline survives the pool.
func TestRunEndpointDeterministic(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	read := func() string {
		resp := postRun(t, ts.URL, cycleRequest(10, 42))
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if a, b := read(), read(); a != b {
		t.Fatalf("two identical requests answered differently:\n%s\nvs\n%s", a, b)
	}
}

// TestRunEndpointBadRequests: malformed body, unknown field, unknown
// protocol, invalid instance, wrong method.
func TestRunEndpointBadRequests(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"protocol": `, http.StatusBadRequest},
		{"unknown field", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,1]], "frobnicate": 1}`, http.StatusBadRequest},
		{"unknown protocol", `{"protocol": "sym-quantum", "n": 4, "edges": [[0,1]]}`, http.StatusBadRequest},
		{"edge out of range", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,9]]}`, http.StatusBadRequest},
		{"unused field", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,1],[1,2],[2,3],[3,0]], "marks": [0,0,1,1]}`, http.StatusBadRequest},
		{"negative timeout", `{"protocol": "sym-dmam", "n": 4, "edges": [[0,1],[1,2],[2,3],[3,0]], "options": {"timeout_ns": -5}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRun(t, ts.URL, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, b)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
				t.Fatalf("error body: %v / %+v", err, eb)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: %d", resp.StatusCode)
	}
}

// TestQueueFull: with one worker wedged and the queue occupied, the next
// request is refused immediately — well inside the 5ms admission bound —
// with 503 and a Retry-After hint.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{}, 8)
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		blocked <- struct{}{}
		<-release
		return dip.Report{Protocol: req.Protocol}, nil
	}
	s, ts := startTestServer(t, config{workers: 1, queue: 1, timeout: time.Minute}, runFunc)
	defer close(release)

	// First request occupies the worker; second fills the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postRun(t, ts.URL, cycleRequest(4, 1))
			resp.Body.Close()
		}()
	}
	<-blocked // worker holds job 1
	waitFor(t, func() bool { return s.meters.QueueDepth.Value() == 1 })

	start := time.Now()
	resp := postRun(t, ts.URL, cycleRequest(4, 2))
	elapsed := time.Since(start)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The admission decision itself is a select-default; the 5ms bound
	// leaves room for HTTP round-trip overhead. Race instrumentation slows
	// everything severalfold, so the bound is scaled there.
	bound := 5 * time.Millisecond
	if raceEnabled {
		bound = 50 * time.Millisecond
	}
	if elapsed > bound {
		t.Fatalf("queue-full rejection took %v, want < %v", elapsed, bound)
	}
	if s.meters.Rejected.Value() == 0 {
		t.Fatal("rejection not metered")
	}
	release <- struct{}{}
	release <- struct{}{}
	wg.Wait()
}

// TestRunDeadline: a run exceeding the per-request deadline is cut off and
// answered 504 with the engine's phase attached.
func TestRunDeadline(t *testing.T) {
	runFunc := func(ctx context.Context, req dip.Request) (dip.Report, error) {
		<-ctx.Done()
		return dip.Report{}, ctx.Err()
	}
	_, ts := startTestServer(t, config{timeout: 20 * time.Millisecond}, runFunc)
	resp := postRun(t, ts.URL, cycleRequest(4, 1))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Phase != "deadline" {
		t.Fatalf("error body: %v / %+v", err, eb)
	}
}

// TestDrain: a draining server refuses new runs and reports not-ready, but
// stays alive for health checks.
func TestDrain(t *testing.T) {
	s, ts := startTestServer(t, config{}, nil)
	s.draining.Store(true)

	resp := postRun(t, ts.URL, cycleRequest(4, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain: %d", resp.StatusCode)
	}

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", ready.StatusCode)
	}

	alive, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	alive.Body.Close()
	if alive.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d", alive.StatusCode)
	}
}

// TestProtocolsEndpoint: the registry listing is served sorted.
func TestProtocolsEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	resp, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Protocols []dip.ProtocolInfo `json:"protocols"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Protocols) != len(dip.Protocols()) {
		t.Fatalf("%d protocols listed", len(body.Protocols))
	}
	for i := 1; i < len(body.Protocols); i++ {
		if body.Protocols[i-1].Name >= body.Protocols[i].Name {
			t.Fatalf("listing unsorted at %d", i)
		}
	}
}

// TestMetricsEndpoint: the composed payload carries service, engine and
// state-pool sections.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	postRun(t, ts.URL, cycleRequest(6, 3)).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsPayload
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Service.Requests < 1 {
		t.Fatalf("service requests: %+v", m.Service)
	}
	if m.StatePool.Capacity < 1 {
		t.Fatalf("state pool: %+v", m.StatePool)
	}
	if len(m.Service.Protocols) == 0 || m.Service.Protocols[0].Protocol != "sym-dmam" {
		t.Fatalf("per-protocol: %+v", m.Service.Protocols)
	}
}

// TestRequestStorm hammers the service with real concurrent runs over the
// shared engine pool: every request must come back 200 or 503, every 200
// must decode into a valid report, and nothing may hang. Run with -race
// this doubles as the pool-sharing data-race check.
func TestRequestStorm(t *testing.T) {
	s, ts := startTestServer(t, config{workers: 4, queue: 8}, nil)

	const clients = 8
	const perClient = 15
	var ok200, ok503, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := cycleRequest(12+(i%3)*2, int64(c*1000+i))
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if _, err := dip.DecodeWireReport(resp.Body); err != nil {
						t.Errorf("client %d: bad report: %v", c, err)
					}
					ok200.Add(1)
				case http.StatusServiceUnavailable:
					ok503.Add(1)
				default:
					other.Add(1)
					b, _ := io.ReadAll(resp.Body)
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, b)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	if got := ok200.Load() + ok503.Load(); got != clients*perClient || other.Load() != 0 {
		t.Fatalf("%d ok + %d overflow + %d other of %d", ok200.Load(), ok503.Load(), other.Load(), clients*perClient)
	}
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	if s.meters.InFlight.Value() != 0 || s.meters.QueueDepth.Value() != 0 {
		t.Fatalf("gauges nonzero after storm: in-flight %d, queue %d",
			s.meters.InFlight.Value(), s.meters.QueueDepth.Value())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchEndpoint: N requests in one body come back as an array whose
// elements are byte-identical to the corresponding /v1/run answers, with
// per-item errors inline instead of failing the whole batch.
func TestBatchEndpoint(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)

	single := func(body string) string {
		resp := postRun(t, ts.URL, body)
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	want0 := single(cycleRequest(8, 5))
	want1 := single(cycleRequest(8, 6))

	batch := `{"requests": [` + cycleRequest(8, 5) + `,` + cycleRequest(8, 6) +
		`,{"protocol": "sym-dmam", "n": 4, "edges": [[0,9]]}]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var elems []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&elems); err != nil {
		t.Fatal(err)
	}
	if len(elems) != 3 {
		t.Fatalf("%d elements, want 3", len(elems))
	}
	for i, want := range []string{want0, want1} {
		if got := string(elems[i]) + "\n"; got != want {
			t.Fatalf("element %d differs from /v1/run answer:\n%s\nvs\n%s", i, got, want)
		}
	}
	var eb errorBody
	if err := json.Unmarshal(elems[2], &eb); err != nil || eb.Error == "" {
		t.Fatalf("element 2 is not an error object: %v / %s", err, elems[2])
	}
}

// TestBatchEndpointBadRequests: empty batches, oversized batches, and
// malformed bodies are refused before admission.
func TestBatchEndpointBadRequests(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	var big strings.Builder
	big.WriteString(`{"requests": [`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(cycleRequest(4, int64(i)))
	}
	big.WriteString(`]}`)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{"requests": []}`},
		{"malformed", `{"requests": `},
		{"oversized", big.String()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}
