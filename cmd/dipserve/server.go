package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dip"
	"dip/internal/jobs"
	"dip/internal/network"
	"dip/internal/obs"
)

// config are the serving knobs; flags in main.go fill it.
type config struct {
	// addr is the listen address (":8123", "127.0.0.1:0", ...).
	addr string
	// workers is the number of run workers — the service's concurrency
	// ceiling. Each worker checks engine state out of the shared pool, so
	// the pool is sized to at least this.
	workers int
	// queue is the admission queue depth: requests admitted but not yet
	// picked up by a worker. A full queue answers 503 immediately.
	queue int
	// timeout bounds each run (request deadline); 0 disables.
	timeout time.Duration
	// maxBody caps the request body, guarding the decoder.
	maxBody int64
	// drain bounds graceful shutdown.
	drain time.Duration
	// addrFile, when set, receives the actual listen address once bound
	// (supports port 0 in tests and smoke runs).
	addrFile string
	// rateLimit is the per-client admission budget in requests per second
	// (batch items count individually); 0 disables rate limiting.
	rateLimit float64
	// rateBurst is the token-bucket capacity per client; 0 derives a
	// default from rateLimit.
	rateBurst int
	// peers, when non-empty, lists dippeer addresses (host:port, comma
	// separated): every run — synchronous, batch, and async jobs — places
	// its verifier nodes on that standing fleet instead of in-process.
	peers string
	// jobs are the async tier knobs (POST /v1/jobs); see jobsConfig.
	jobs jobsConfig
}

func defaultConfig() config {
	return config{
		addr:    ":8123",
		workers: runtime.GOMAXPROCS(0),
		queue:   64,
		timeout: 10 * time.Second,
		maxBody: 8 << 20,
		drain:   15 * time.Second,
		jobs:    defaultJobsConfig(),
	}
}

// job is one admitted unit of work traveling from handler to worker —
// a single run request, or a whole batch (batch non-nil). The handler
// blocks on done; the worker fulfills exactly once. A batch occupies one
// queue slot and one worker for its whole duration: admission control is
// per body, so a client trades queue fairness for setup amortization.
type job struct {
	ctx  context.Context
	req  dip.Request
	rep  dip.Report
	err  error
	done chan struct{}

	batch   []dip.Request
	results []dip.BatchResult
}

// server is the dipserve service: a bounded admission queue in front of a
// fixed worker pool, every worker running requests through dip.RunContext
// on the shared pooled engine.
type server struct {
	cfg    config
	meters *obs.ServiceMeters
	jobs   chan *job
	// quit tells the workers to finish the queue and exit; stopped is
	// closed once stop() has retired them and failed any straggler job.
	// The jobs channel itself is NEVER closed: a handler may race its
	// draining check against stop() (httpSrv.Shutdown can time out with
	// handlers still between admission and enqueue), and a send on a
	// closed channel would panic the process during its last breath.
	quit    chan struct{}
	stopped chan struct{}
	// limiter is the per-client admission rate limiter; nil when
	// cfg.rateLimit is 0.
	limiter *limiter
	// async is the durable job tier behind POST /v1/jobs — its queue,
	// store, and worker pool are independent of the synchronous
	// admission queue above.
	async *jobsTier
	// runFunc is dip.RunContext in production (or a fleet-backed closure
	// under -peers); tests inject stubs to pin queue/timeout behavior
	// without real protocol runs.
	runFunc func(context.Context, dip.Request) (dip.Report, error)
	// fleet is the standing dippeer fleet behind -peers; nil when runs
	// execute in-process. All three serving tiers route through runFunc,
	// so pointing runFunc at the fleet redirects run, batch, and jobs.
	fleet    *dip.Fleet
	draining atomic.Bool
	started  time.Time
	wg       sync.WaitGroup
}

// useFleet points every serving tier at a standing peer fleet: runFunc
// becomes Fleet.Run (the jobs tier reads runFunc at call time, so it
// follows), /metrics gains the per-peer gauges, and /readyz reports
// fleet reachability.
func (s *server) useFleet(f *dip.Fleet) {
	s.fleet = f
	s.runFunc = func(ctx context.Context, req dip.Request) (dip.Report, error) {
		rep, err := f.Run(ctx, req)
		if err != nil {
			return dip.Report{}, err
		}
		return *rep, nil
	}
}

func newServer(cfg config) (*server, error) {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queue < 1 {
		cfg.queue = 1
	}
	s := &server{
		cfg:     cfg,
		meters:  &obs.ServiceMeters{},
		jobs:    make(chan *job, cfg.queue),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
		runFunc: dip.RunContext,
		started: time.Now(),
	}
	if cfg.rateLimit > 0 {
		s.limiter = newLimiter(cfg.rateLimit, cfg.rateBurst)
	}
	jc := cfg.jobs
	if jc.attemptTimeout == 0 {
		// A job attempt defaults to the same deadline a synchronous run
		// gets: the async tier changes when work runs, not how long it may.
		jc.attemptTimeout = cfg.timeout
	}
	// The run closure reads s.runFunc at call time, so tests that inject
	// a stub after construction steer the job tier too.
	async, err := newJobsTier(jc, s.started.UnixNano(), func(ctx context.Context, req dip.Request) (dip.Report, error) {
		return s.runFunc(ctx, req)
	})
	if err != nil {
		return nil, err
	}
	s.async = async
	return s, nil
}

// start launches the worker pool. stop drains it: the admission queue is
// closed and every queued job still runs before workers exit.
func (s *server) start() {
	// Size the shared engine-state pool to the serving concurrency so a
	// fully loaded worker pool recycles state instead of allocating; keep
	// the default floor so harness runs in the same process stay pooled.
	if n := s.cfg.workers; n > 32 {
		network.SetStatePoolCapacity(n)
	}
	for i := 0; i < s.cfg.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.async.pool.Start()
}

// stop retires the worker pool: every job queued before (or racing
// with) the stop signal still runs or is failed, and every handler
// blocked on a job is released. Safe against concurrent admission —
// see the field comment on quit/stopped.
func (s *server) stop() {
	close(s.quit)
	s.wg.Wait()
	// Fail any job that slipped into the queue after the workers took
	// their final drain pass; its handler is released via j.done.
	for {
		select {
		case j := <-s.jobs:
			s.meters.QueueDepth.Add(-1)
			j.err = errServerStopped
			close(j.done)
		default:
			// Handlers that enqueue after this point find stopped
			// closed and answer 503 without waiting on j.done.
			close(s.stopped)
			// Retire the job tier last: its workers finish their current
			// attempt, backoff waits nack their job back, and closing the
			// queue seals the journal for the next boot.
			s.async.stop()
			return
		}
	}
}

// errServerStopped marks a job the worker pool never ran because the
// service shut down around it.
var errServerStopped = errors.New("server stopped before the request ran")

func (s *server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			s.meters.QueueDepth.Add(-1)
			s.runJob(j)
		case <-s.quit:
			// Finish what is already queued, then exit. New jobs may
			// still race in behind this drain; stop() sweeps those.
			for {
				select {
				case j := <-s.jobs:
					s.meters.QueueDepth.Add(-1)
					s.runJob(j)
				default:
					return
				}
			}
		}
	}
}

func (s *server) runJob(j *job) {
	defer close(j.done)
	// The client may be gone (handler timeout, dropped connection); don't
	// burn a worker on a run nobody will read.
	if err := j.ctx.Err(); err != nil {
		j.err = err
		return
	}
	s.meters.InFlight.Add(1)
	defer s.meters.InFlight.Add(-1)

	ctx := j.ctx
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	if j.batch != nil {
		j.results = s.runBatch(ctx, j.batch)
		return
	}
	pm := s.meters.Protocol(j.req.Protocol)
	pm.Requests.Add(1)
	start := time.Now()
	j.rep, j.err = s.safeRun(ctx, j.req)
	pm.Latency.Observe(time.Since(start))
	if j.err != nil {
		pm.Errors.Add(1)
		s.meters.Failures.Add(1)
	}
}

// safeRun shields the worker from a panicking run: the engine recovers
// prover/node panics itself, but the boundary must also survive bugs in
// code outside that net (and injected run funcs in tests). The panic
// surfaces as a plain error, which the status taxonomy maps to 500.
func (s *server) safeRun(ctx context.Context, req dip.Request) (rep dip.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("run panicked: %v", p)
		}
	}()
	return s.runFunc(ctx, req)
}

// runBatch runs every item of a batch job sequentially on this worker,
// metering each item like a plain request (one deadline covers the whole
// batch, matching the admission unit).
func (s *server) runBatch(ctx context.Context, reqs []dip.Request) []dip.BatchResult {
	out := make([]dip.BatchResult, len(reqs))
	for i := range reqs {
		pm := s.meters.Protocol(reqs[i].Protocol)
		pm.Requests.Add(1)
		start := time.Now()
		if err := ctx.Err(); err != nil {
			out[i].Err = err
		} else {
			out[i].Report, out[i].Err = s.safeRun(ctx, reqs[i])
		}
		pm.Latency.Observe(time.Since(start))
		if out[i].Err != nil {
			pm.Errors.Add(1)
			s.meters.Failures.Add(1)
		}
	}
	return out
}

// handler builds the service mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobStatus)
	mux.HandleFunc("/v1/protocols", s.handleProtocols)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// readyBody is the /readyz answer: not just a status word but the
// load picture an orchestrator or smoke gate wants in one probe — the
// synchronous admission queue's depth, the async backlog and its
// in-flight count, and whether the server is draining.
type readyBody struct {
	Status       string `json:"status"`
	QueueDepth   int64  `json:"queue_depth"`
	JobBacklog   int    `json:"job_backlog"`
	JobsInFlight int    `json:"jobs_in_flight"`
	Draining     bool   `json:"draining"`
	// Fleet reports peer reachability under -peers: the probe redials
	// lost connections, so a restarted peer turns reachable again here.
	Fleet *fleetReady `json:"fleet,omitempty"`
}

// fleetReady is the /readyz fleet block. The service stays ready while
// at least one peer is reachable (runs placed on dead peers fail with
// structured 502s, the rest keep serving); with every peer unreachable
// no run can succeed, so readiness goes 503.
type fleetReady struct {
	Peers       int      `json:"peers"`
	Unreachable []string `json:"unreachable,omitempty"`
}

func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := readyBody{
		Status:       "ready",
		QueueDepth:   s.meters.QueueDepth.Value(),
		JobBacklog:   s.async.queue.Depth(),
		JobsInFlight: s.async.queue.InFlight(),
		Draining:     s.draining.Load(),
	}
	if body.Draining {
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	if s.fleet != nil {
		_ = s.fleet.Ready() // redial lost peers; reachability read off Stats below
		st := s.fleet.Stats()
		fr := &fleetReady{Peers: len(st.Peers)}
		for _, ps := range st.Peers {
			if !ps.Connected {
				fr.Unreachable = append(fr.Unreachable, ps.Addr)
			}
		}
		body.Fleet = fr
		if len(fr.Unreachable) == fr.Peers {
			body.Status = "fleet-unreachable"
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// errorBody is the JSON error response of every non-2xx answer.
type errorBody struct {
	Error    string `json:"error"`
	Phase    string `json:"phase,omitempty"`
	Protocol string `json:"protocol,omitempty"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	if !s.allowClient(w, r, 1) {
		return
	}
	var req dip.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, decodeStatus(err), errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
		s.meters.Rejected.Add(1)
		return
	}

	j := &job{ctx: r.Context(), req: req, done: make(chan struct{})}
	select {
	case s.jobs <- j:
		s.meters.QueueDepth.Add(1)
		s.meters.Requests.Add(1)
	default:
		// Backpressure: a full queue answers immediately instead of
		// stacking goroutines. Clients retry after the hint.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "admission queue full"})
		s.meters.Rejected.Add(1)
		return
	}

	if !s.awaitJob(j) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errServerStopped.Error()})
		return
	}
	if j.err != nil {
		status, phase := mapRunError(j.err)
		writeJSON(w, status, errorBody{Error: j.err.Error(), Phase: phase, Protocol: req.Protocol})
		return
	}
	// Encode to a buffer first: one write sets Content-Length and puts the
	// whole response in a single segment, which matters at load-test rates.
	var buf bytes.Buffer
	if err := dip.WireReportFrom(j.rep, req.Options.Seed).Encode(&buf); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Protocol: req.Protocol})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// batchBody is the /v1/batch request envelope.
type batchBody struct {
	Requests []dip.Request `json:"requests"`
}

// maxBatchItems bounds one batch body: a batch occupies a worker for its
// whole duration, so the bound keeps a single client from turning the
// bounded worker pool into one unbounded run.
const maxBatchItems = 256

// handleBatch admits a whole batch as one queue unit and answers with a
// JSON array, one element per request in order: a dip-report/v1 document
// on success, an error object (same shape as /v1/run errors) on failure.
// Items share a worker and the process-wide setup caches, so a batch of
// requests on one instance amortizes graph validation, protocol
// construction and per-graph artifacts across its items.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var body batchBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, decodeStatus(err), errorBody{Error: fmt.Sprintf("decoding batch: %v", err)})
		return
	}
	if len(body.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "batch has no requests"})
		return
	}
	if len(body.Requests) > maxBatchItems {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch of %d requests exceeds limit %d", len(body.Requests), maxBatchItems)})
		return
	}
	// A batch spends one rate-limit token per item: admission control is
	// per body, but quota accounting is per request, like every other
	// meter on this path.
	if !s.allowClient(w, r, len(body.Requests)) {
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
		s.meters.Rejected.Add(int64(len(body.Requests)))
		return
	}

	j := &job{ctx: r.Context(), batch: body.Requests, done: make(chan struct{})}
	select {
	case s.jobs <- j:
		s.meters.QueueDepth.Add(1)
		s.meters.Requests.Add(int64(len(body.Requests)))
	default:
		// Rejected counts requests, not bodies: a turned-away batch of k
		// items is k rejections, mirroring the Requests.Add above (the
		// admission and rejection counters must stay in the same unit
		// for rejected/(requests+rejected) to mean anything).
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "admission queue full"})
		s.meters.Rejected.Add(int64(len(body.Requests)))
		return
	}

	if !s.awaitJob(j) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errServerStopped.Error()})
		return
	}
	if j.err != nil { // pre-run failure (client gone before a worker started)
		status, phase := mapRunError(j.err)
		writeJSON(w, status, errorBody{Error: j.err.Error(), Phase: phase})
		return
	}
	// Assemble the array by hand from per-item Encode output so each
	// element is byte-identical to the corresponding /v1/run body.
	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, res := range j.results {
		if i > 0 {
			buf.WriteString(",\n")
		}
		if res.Err != nil {
			_, phase := mapRunError(res.Err)
			elem, err := json.MarshalIndent(errorBody{Error: res.Err.Error(), Phase: phase, Protocol: body.Requests[i].Protocol}, "", "  ")
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
				return
			}
			buf.Write(elem)
			continue
		}
		var elem bytes.Buffer
		if err := dip.WireReportFrom(res.Report, body.Requests[i].Options.Seed).Encode(&elem); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Protocol: body.Requests[i].Protocol})
			return
		}
		buf.Write(bytes.TrimRight(elem.Bytes(), "\n"))
	}
	buf.WriteString("\n]\n")
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// awaitJob blocks until the job is fulfilled. The false return is the
// shutdown edge case: the handler enqueued after the workers' final
// drain pass AND after stop()'s straggler sweep, so nobody will ever
// close j.done — possible only when httpSrv.Shutdown timed out with
// this handler still in flight. Any job fulfilled or swept during
// stop() has its done closed before stopped closes, so the re-check is
// race-free.
func (s *server) awaitJob(j *job) bool {
	select {
	case <-j.done:
		return true
	case <-s.stopped:
		select {
		case <-j.done:
			return true
		default:
			return false
		}
	}
}

// allowClient enforces the per-client rate limit, spending cost tokens
// (one per request carried by the body). On refusal it answers 429 with
// a Retry-After hint and meters the turned-away requests.
func (s *server) allowClient(w http.ResponseWriter, r *http.Request, cost int) bool {
	if s.limiter == nil {
		return true
	}
	ok, retryAfter := s.limiter.allow(clientKey(r), cost)
	if ok {
		return true
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
	writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "rate limit exceeded"})
	s.meters.RateLimited.Add(int64(cost))
	return false
}

// decodeStatus distinguishes the two ways a request body fails to
// decode: a body the byte cap cut off is 413 (the client must shrink
// it, not fix it), anything else is a plain 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// mapRunError translates a run failure into an HTTP status. The taxonomy:
// engine phases carry the distinction between a bad instance (setup), an
// exhausted deadline, and a genuine protocol-level failure; request
// validation surfaces as dip.RequestError (the client's fault, 400); and
// anything unclassified is an internal failure, 500 — never blamed on
// the client, because an unrecognized error is by definition one the
// request did not cause in any way the service can name.
func mapRunError(err error) (status int, phase string) {
	var rerr *network.RunError
	if errors.As(err, &rerr) {
		switch rerr.Phase {
		case network.PhaseSetup:
			return http.StatusBadRequest, string(rerr.Phase)
		case network.PhaseDeadline, network.PhaseCanceled:
			return http.StatusGatewayTimeout, string(rerr.Phase)
		default:
			return http.StatusBadGateway, string(rerr.Phase)
		}
	}
	var reqErr *dip.RequestError
	if errors.As(err, &reqErr) {
		return http.StatusBadRequest, "request"
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout, "deadline"
	}
	return http.StatusInternalServerError, "internal"
}

func (s *server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Protocols []dip.ProtocolInfo `json:"protocols"`
	}{dip.Protocols()})
}

// metricsPayload composes the service-level meters with the process-global
// engine meters and the engine state-pool statistics. Composition happens
// here because obs cannot import network (the engine publishes into obs).
type metricsPayload struct {
	Service   obs.ServiceMetrics       `json:"service"`
	Engine    obs.Metrics              `json:"engine"`
	StatePool network.PoolStats        `json:"state_pool"`
	Caches    []obs.CacheMetricsRecord `json:"caches"`
	Jobs      jobs.MetricsSnapshot     `json:"jobs"`
	Workers   int                      `json:"workers"`
	QueueCap  int                      `json:"queue_capacity"`
	UptimeMS  int64                    `json:"uptime_ms"`
	// Fleet holds the standing peer fleet's per-peer gauges (sessions
	// open/completed/failed, frames, bytes) under -peers; absent otherwise.
	Fleet *dip.FleetStats `json:"fleet,omitempty"`
	// Runtime exposes the process vitals chaos tooling gates on: a
	// goroutine count that keeps rising across a load session is a leak,
	// and so is monotone heap growth at steady request rates.
	Runtime runtimeMetrics `json:"runtime"`
}

type runtimeMetrics struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var fleet *dip.FleetStats
	if s.fleet != nil {
		st := s.fleet.Stats()
		fleet = &st
	}
	writeJSON(w, http.StatusOK, metricsPayload{
		Fleet:     fleet,
		Service:   s.meters.SnapshotService(),
		Engine:    obs.Snapshot(),
		StatePool: network.StatePoolStats(),
		Caches:    obs.SnapshotCaches(),
		Jobs:      s.async.metrics.Snapshot(s.async.queue, s.async.store, s.async.cfg.workers, s.async.durable),
		Workers:   s.cfg.workers,
		QueueCap:  s.cfg.queue,
		UptimeMS:  time.Since(s.started).Milliseconds(),
		Runtime: runtimeMetrics{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
