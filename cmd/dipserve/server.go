package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dip"
	"dip/internal/network"
	"dip/internal/obs"
)

// config are the serving knobs; flags in main.go fill it.
type config struct {
	// addr is the listen address (":8123", "127.0.0.1:0", ...).
	addr string
	// workers is the number of run workers — the service's concurrency
	// ceiling. Each worker checks engine state out of the shared pool, so
	// the pool is sized to at least this.
	workers int
	// queue is the admission queue depth: requests admitted but not yet
	// picked up by a worker. A full queue answers 503 immediately.
	queue int
	// timeout bounds each run (request deadline); 0 disables.
	timeout time.Duration
	// maxBody caps the request body, guarding the decoder.
	maxBody int64
	// drain bounds graceful shutdown.
	drain time.Duration
	// addrFile, when set, receives the actual listen address once bound
	// (supports port 0 in tests and smoke runs).
	addrFile string
}

func defaultConfig() config {
	return config{
		addr:    ":8123",
		workers: runtime.GOMAXPROCS(0),
		queue:   64,
		timeout: 10 * time.Second,
		maxBody: 8 << 20,
		drain:   15 * time.Second,
	}
}

// job is one admitted run request traveling from handler to worker. The
// handler blocks on done; the worker fulfills exactly once.
type job struct {
	ctx  context.Context
	req  dip.Request
	rep  dip.Report
	err  error
	done chan struct{}
}

// server is the dipserve service: a bounded admission queue in front of a
// fixed worker pool, every worker running requests through dip.RunContext
// on the shared pooled engine.
type server struct {
	cfg    config
	meters *obs.ServiceMeters
	jobs   chan *job
	// runFunc is dip.RunContext in production; tests inject stubs to pin
	// queue/timeout behavior without real protocol runs.
	runFunc  func(context.Context, dip.Request) (dip.Report, error)
	draining atomic.Bool
	started  time.Time
	wg       sync.WaitGroup
}

func newServer(cfg config) *server {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queue < 1 {
		cfg.queue = 1
	}
	return &server{
		cfg:     cfg,
		meters:  &obs.ServiceMeters{},
		jobs:    make(chan *job, cfg.queue),
		runFunc: dip.RunContext,
		started: time.Now(),
	}
}

// start launches the worker pool. stop drains it: the admission queue is
// closed and every queued job still runs before workers exit.
func (s *server) start() {
	// Size the shared engine-state pool to the serving concurrency so a
	// fully loaded worker pool recycles state instead of allocating; keep
	// the default floor so harness runs in the same process stay pooled.
	if n := s.cfg.workers; n > 32 {
		network.SetStatePoolCapacity(n)
	}
	for i := 0; i < s.cfg.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *server) stop() {
	close(s.jobs)
	s.wg.Wait()
}

func (s *server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		s.meters.QueueDepth.Add(-1)
		s.runJob(j)
	}
}

func (s *server) runJob(j *job) {
	defer close(j.done)
	// The client may be gone (handler timeout, dropped connection); don't
	// burn a worker on a run nobody will read.
	if err := j.ctx.Err(); err != nil {
		j.err = err
		return
	}
	s.meters.InFlight.Add(1)
	defer s.meters.InFlight.Add(-1)

	ctx := j.ctx
	if s.cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.timeout)
		defer cancel()
	}
	pm := s.meters.Protocol(j.req.Protocol)
	pm.Requests.Add(1)
	start := time.Now()
	j.rep, j.err = s.runFunc(ctx, j.req)
	pm.Latency.Observe(time.Since(start))
	if j.err != nil {
		pm.Errors.Add(1)
		s.meters.Failures.Add(1)
	}
}

// handler builds the service mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/protocols", s.handleProtocols)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return mux
}

// errorBody is the JSON error response of every non-2xx answer.
type errorBody struct {
	Error    string `json:"error"`
	Phase    string `json:"phase,omitempty"`
	Protocol string `json:"protocol,omitempty"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req dip.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
		s.meters.Rejected.Add(1)
		return
	}

	j := &job{ctx: r.Context(), req: req, done: make(chan struct{})}
	select {
	case s.jobs <- j:
		s.meters.QueueDepth.Add(1)
		s.meters.Requests.Add(1)
	default:
		// Backpressure: a full queue answers immediately instead of
		// stacking goroutines. Clients retry after the hint.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "admission queue full"})
		s.meters.Rejected.Add(1)
		return
	}

	<-j.done
	if j.err != nil {
		status, phase := mapRunError(j.err)
		writeJSON(w, status, errorBody{Error: j.err.Error(), Phase: phase, Protocol: req.Protocol})
		return
	}
	// Encode to a buffer first: one write sets Content-Length and puts the
	// whole response in a single segment, which matters at load-test rates.
	var buf bytes.Buffer
	if err := dip.WireReportFrom(j.rep, req.Options.Seed).Encode(&buf); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Protocol: req.Protocol})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// mapRunError translates a run failure into an HTTP status: engine phases
// carry the distinction between a bad instance (setup), an exhausted
// deadline, and a genuine protocol-level failure; everything that is not a
// structured engine error is a bad request, because dip.RunContext
// validates before it runs.
func mapRunError(err error) (status int, phase string) {
	var rerr *network.RunError
	if errors.As(err, &rerr) {
		switch rerr.Phase {
		case network.PhaseSetup:
			return http.StatusBadRequest, string(rerr.Phase)
		case network.PhaseDeadline, network.PhaseCanceled:
			return http.StatusGatewayTimeout, string(rerr.Phase)
		default:
			return http.StatusBadGateway, string(rerr.Phase)
		}
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout, "deadline"
	}
	return http.StatusBadRequest, ""
}

func (s *server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Protocols []dip.ProtocolInfo `json:"protocols"`
	}{dip.Protocols()})
}

// metricsPayload composes the service-level meters with the process-global
// engine meters and the engine state-pool statistics. Composition happens
// here because obs cannot import network (the engine publishes into obs).
type metricsPayload struct {
	Service   obs.ServiceMetrics `json:"service"`
	Engine    obs.Metrics        `json:"engine"`
	StatePool network.PoolStats  `json:"state_pool"`
	Workers   int                `json:"workers"`
	QueueCap  int                `json:"queue_capacity"`
	UptimeMS  int64              `json:"uptime_ms"`
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, metricsPayload{
		Service:   s.meters.SnapshotService(),
		Engine:    obs.Snapshot(),
		StatePool: network.StatePoolStats(),
		Workers:   s.cfg.workers,
		QueueCap:  s.cfg.queue,
		UptimeMS:  time.Since(s.started).Milliseconds(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
