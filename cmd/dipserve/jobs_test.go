package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dip"
	"dip/internal/faults"
)

// submitJob POSTs body to /v1/jobs (with an Idempotency-Key when key is
// non-empty) and returns the status and decoded envelope.
func submitJob(t *testing.T, base, body, key string) (int, *dip.WireJob) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	w, err := dip.DecodeWireJob(resp.Body)
	if err != nil {
		t.Fatalf("submission answered an invalid dip-job/v1 document: %v", err)
	}
	return resp.StatusCode, w
}

// pollJob GETs /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, base, id string) *dip.WireJob {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /v1/jobs/%s: %v", id, err)
		}
		w, err := dip.DecodeWireJob(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll answered an invalid dip-job/v1 document: %v", err)
		}
		switch w.State {
		case dip.JobStateDone, dip.JobStateFailed, dip.JobStateParked:
			return w
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return nil
}

// TestJobLifecycle: a real protocol run through the async tier — submit,
// poll, and the finished envelope embeds a valid report.
func TestJobLifecycle(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	status, w := submitJob(t, ts.URL, cycleRequest(8, 5), "")
	if status != http.StatusAccepted {
		t.Fatalf("submission status %d", status)
	}
	if w.ID == "" || w.State != dip.JobStateQueued || w.Protocol != "sym-dmam" {
		t.Fatalf("submission envelope: %+v", w)
	}
	done := pollJob(t, ts.URL, w.ID)
	if done.State != dip.JobStateDone {
		t.Fatalf("state %s (error %q)", done.State, done.Error)
	}
	if done.Attempts != 1 {
		t.Fatalf("clean run took %d attempts", done.Attempts)
	}
	r := done.Report
	if r.Protocol != "sym-dmam" || r.Nodes != 8 || r.Seed != 5 || !r.Accepted {
		t.Fatalf("embedded report: %+v", r)
	}
}

// TestJobStatusErrors: unknown ids answer 404, bad paths 400, and wrong
// methods 405 on both endpoints.
func TestJobStatusErrors(t *testing.T) {
	_, ts := startTestServer(t, config{}, nil)
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/v1/jobs/j-nope", http.StatusNotFound},
		{http.MethodGet, "/v1/jobs/", http.StatusBadRequest},
		{http.MethodGet, "/v1/jobs/a/b", http.StatusBadRequest},
		{http.MethodGet, "/v1/jobs", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/jobs/j-1", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestJobMatchesSyncReport is the backend-equivalence acceptance check:
// for the same seeded request, the synchronous /v1/run body and the
// async tier's embedded report are byte-identical — on the in-memory
// backend AND the journal-backed one.
func TestJobMatchesSyncReport(t *testing.T) {
	body := cycleRequest(10, 42)

	syncBytes := func(ts *httptest.Server) []byte {
		resp := postRun(t, ts.URL, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("sync run: %d: %s", resp.StatusCode, b)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	asyncBytes := func(ts *httptest.Server) []byte {
		_, w := submitJob(t, ts.URL, body, "")
		done := pollJob(t, ts.URL, w.ID)
		if done.State != dip.JobStateDone {
			t.Fatalf("job settled %s: %s", done.State, done.Error)
		}
		var buf bytes.Buffer
		if err := done.Report.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	_, mem := startTestServer(t, config{}, nil)
	journal := filepath.Join(t.TempDir(), "jobs.journal")
	cfg := config{}
	cfg.jobs = defaultJobsConfig()
	cfg.jobs.journal = journal
	_, file := startTestServer(t, cfg, nil)

	want := syncBytes(mem)
	for name, ts := range map[string]*httptest.Server{"mem": mem, "file": file} {
		if got := asyncBytes(ts); !bytes.Equal(got, want) {
			t.Errorf("%s backend report differs from the synchronous answer:\n%s\nvs\n%s", name, got, want)
		}
	}
}

// TestJobIdempotencyStorm: k concurrent submissions with one key yield
// one job — exactly one 202, the rest 200, all carrying the same id —
// and a resubmission after settlement returns the finished envelope.
func TestJobIdempotencyStorm(t *testing.T) {
	block := make(chan struct{})
	_, ts := startTestServer(t, config{}, func(ctx context.Context, req dip.Request) (dip.Report, error) {
		<-block
		dec := make([]bool, req.N)
		for i := range dec {
			dec[i] = true
		}
		return dip.Report{Protocol: req.Protocol, Accepted: true, Decisions: dec}, nil
	})
	body := []byte(cycleRequest(6, 1))
	res := faults.DupSubmitStorm(ts.URL, "storm-key", body, 8)
	if res.Transport != 0 {
		t.Fatalf("%d transport failures", res.Transport)
	}
	if len(res.IDs) != 1 {
		t.Fatalf("storm minted %d distinct jobs: %v", len(res.IDs), res.IDs)
	}
	if res.Statuses[http.StatusAccepted] != 1 || res.Statuses[http.StatusOK] != 7 {
		t.Fatalf("statuses: %v", res.Statuses)
	}
	var id string
	for k := range res.IDs {
		id = k
	}
	close(block)
	done := pollJob(t, ts.URL, id)
	if done.State != dip.JobStateDone {
		t.Fatalf("state %s", done.State)
	}
	// Late duplicate: the key still resolves to the settled job.
	status, w := submitJob(t, ts.URL, string(body), "storm-key")
	if status != http.StatusOK || w.ID != id || w.State != dip.JobStateDone {
		t.Fatalf("late duplicate: status %d, envelope %+v", status, w)
	}
}

// TestJobFailureTaxonomy: a 400-class failure settles as failed on the
// first attempt; a retryable failure burns the attempt budget and parks.
func TestJobFailureTaxonomy(t *testing.T) {
	cfg := config{}
	cfg.jobs = defaultJobsConfig()
	cfg.jobs.attempts = 2
	cfg.jobs.backoffBase = time.Millisecond
	s, ts := startTestServer(t, cfg, func(ctx context.Context, req dip.Request) (dip.Report, error) {
		if req.Options.Seed == 400 {
			return dip.Report{}, &dip.RequestError{Err: errors.New("bad instance")}
		}
		return dip.Report{}, errors.New("transient wobble")
	})

	_, w := submitJob(t, ts.URL, cycleRequest(4, 400), "")
	failed := pollJob(t, ts.URL, w.ID)
	if failed.State != dip.JobStateFailed || failed.Attempts != 1 {
		t.Fatalf("permanent failure: %+v", failed)
	}
	if !strings.Contains(failed.Error, "bad instance") {
		t.Fatalf("error %q", failed.Error)
	}

	_, w = submitJob(t, ts.URL, cycleRequest(4, 1), "")
	parked := pollJob(t, ts.URL, w.ID)
	if parked.State != dip.JobStateParked || parked.Attempts != 2 {
		t.Fatalf("poison job: %+v", parked)
	}
	if got := s.async.metrics.Retries.Value(); got != 1 {
		t.Fatalf("retries %d, want 1", got)
	}
}

// TestJobBacklogFull: with no workers draining, submissions beyond the
// bound answer 503 with a Retry-After hint, and a rejected submission
// does not burn its idempotency key.
func TestJobBacklogFull(t *testing.T) {
	cfg := config{}
	cfg.jobs = defaultJobsConfig()
	cfg.jobs.workers = 0
	cfg.jobs.backlog = 2
	_, ts := startTestServer(t, cfg, nil)
	body := cycleRequest(4, 1)
	for i := 0; i < 2; i++ {
		if status, _ := submitJob(t, ts.URL, body, ""); status != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, status)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("Idempotency-Key", "spill")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overflow answer has no Retry-After hint")
	}
	// The refused admission must not have burnt its idempotency key: a
	// retry with the same key hits the full backlog again (503), not a
	// ghost record pretending the job was queued.
	if status, w := submitJob(t, ts.URL, body, "spill"); status != http.StatusServiceUnavailable {
		t.Fatalf("key retry after refusal: status %d, envelope %+v", status, w)
	}
}

// TestJobDrain: a draining server refuses new submissions but keeps
// answering status polls — a client must be able to collect results
// during shutdown.
func TestJobDrain(t *testing.T) {
	s, ts := startTestServer(t, config{}, nil)
	_, w := submitJob(t, ts.URL, cycleRequest(6, 3), "")
	done := pollJob(t, ts.URL, w.ID)
	s.draining.Store(true)
	if status, _ := submitJob(t, ts.URL, cycleRequest(6, 4), ""); status != http.StatusServiceUnavailable {
		t.Fatalf("draining submission: status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + done.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining poll: status %d", resp.StatusCode)
	}
}

// TestReadyzBody: the readiness answer carries the queue picture, and
// flips to draining with a 503.
func TestReadyzBody(t *testing.T) {
	cfg := config{}
	cfg.jobs = defaultJobsConfig()
	cfg.jobs.workers = 0 // hold submissions in the backlog
	s, ts := startTestServer(t, cfg, nil)
	for i := 0; i < 3; i++ {
		submitJob(t, ts.URL, cycleRequest(4, int64(i)), "")
	}
	var body readyBody
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Status != "ready" || body.JobBacklog != 3 || body.Draining {
		t.Fatalf("ready body: %+v", body)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Status != "draining" || !body.Draining || body.JobBacklog != 3 {
		t.Fatalf("draining body: %+v", body)
	}
}

// TestJobJournalRestart: an ingest-only server journals a backlog, stops,
// and a successor with workers replays and finishes every job — the
// HTTP-level face of the crash-replay guarantee. Settled results and the
// idempotency index survive the restart too.
func TestJobJournalRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "jobs.journal")

	boot := func(workers int) (*server, *httptest.Server) {
		cfg := defaultConfig()
		cfg.jobs.journal = journal
		cfg.jobs.workers = workers
		s, err := newServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.start()
		return s, httptest.NewServer(s.handler())
	}

	// Boot 1: ingest-only. Everything submitted is pending at "crash".
	s1, ts1 := boot(0)
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		status, w := submitJob(t, ts1.URL, cycleRequest(6, int64(i+1)), "")
		if status != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, status)
		}
		ids = append(ids, w.ID)
	}
	ts1.Close()
	s1.stop()

	// Boot 2: replay and drain.
	s2, ts2 := boot(2)
	defer func() { ts2.Close(); s2.stop() }()
	stats, durable := s2.async.replayStats()
	if !durable || stats.Pending != 3 {
		t.Fatalf("replay stats: %+v (durable %v)", stats, durable)
	}
	for i, id := range ids {
		done := pollJob(t, ts2.URL, id)
		if done.State != dip.JobStateDone {
			t.Fatalf("job %s: state %s (%s)", id, done.State, done.Error)
		}
		if done.Report.Seed != int64(i+1) {
			t.Fatalf("job %s answered seed %d", id, done.Report.Seed)
		}
	}
	if got := s2.async.metrics.Replayed.Value(); got != 3 {
		t.Fatalf("replayed counter %d", got)
	}
}
