package main

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter (stdlib only — the
// container bakes no external deps). Each client identity owns a bucket
// of capacity burst that refills at rate tokens per second; admitting a
// request spends one token, a batch spends one per item. Buckets live
// in one map under one mutex: the admission path is two float ops and a
// map lookup, far below the cost of the JSON decode that follows it.
type limiter struct {
	rate  float64
	burst float64
	// now is injectable so tests can drive the clock.
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket map: an adversary cycling spoofed
// identities must not grow server memory without bound. When the map is
// full, saturated (i.e. fully refilled, information-free) buckets are
// evicted; if every bucket is mid-drain the newcomer is refused, which
// fails toward protecting the service.
const maxClients = 4096

func newLimiter(rate float64, burst int) *limiter {
	if burst <= 0 {
		// Default burst: one second of budget, floor 1, so "-rate-limit
		// 0.5" still admits a first request immediately.
		burst = int(math.Max(1, math.Ceil(rate)))
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends cost tokens from key's bucket. When refused, retryAfter
// is how long until the bucket holds enough tokens. A cost above the
// bucket capacity is clamped to it: an over-burst batch drains the full
// bucket rather than being unservable forever.
func (l *limiter) allow(key string, cost int) (ok bool, retryAfter time.Duration) {
	now := l.now()
	need := float64(cost)
	if need > l.burst {
		need = l.burst
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxClients && !l.evictSaturated(now) {
			return false, time.Second
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	return false, time.Duration((need - b.tokens) / l.rate * float64(time.Second))
}

// evictSaturated removes every bucket that has refilled to capacity by
// now (dropping one is indistinguishable from keeping it). Reports
// whether any slot was freed. Caller holds mu.
func (l *limiter) evictSaturated(now time.Time) bool {
	freed := false
	for key, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, key)
			freed = true
		}
	}
	return freed
}

// clientKey is the client identity the limiter buckets by: the host
// part of the remote address, so every connection (and port) of one
// client shares a budget.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a wait as a Retry-After value: whole
// seconds, rounded up, at least 1 (a zero would invite an immediate,
// certain-to-fail retry).
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
