//go:build !race

package main

// raceEnabled relaxes wall-clock assertions when the race detector's
// instrumentation (5-20x slowdown) would make them flaky.
const raceEnabled = false
