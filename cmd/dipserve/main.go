// Command dipserve is the project's verification service: a long-running
// HTTP server that accepts protocol-run requests (dip.Request as JSON),
// executes them on the shared pooled engine through dip.RunContext, and
// answers with dip-report/v1 documents.
//
//	POST /v1/run        {"protocol": "sym-dmam", "n": 6, "edges": [[0,1], ...], "options": {"seed": 1}}
//	POST /v1/jobs       same body, answered asynchronously: 202 + dip-job/v1 envelope
//	GET  /v1/jobs/{id}  job status; a done job embeds its dip-report/v1 result
//	GET  /v1/protocols  registry listing (name, family, rounds)
//	GET  /metrics       service + engine meters and state-pool statistics
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 while draining) + queue/backlog depths
//
// Concurrency is bounded twice: a fixed worker pool (-workers) executes
// runs, and a fixed-depth admission queue (-queue) holds what the workers
// have not yet picked up. When the queue is full the service answers 503
// with a Retry-After hint instead of spawning unbounded goroutines; every
// run carries a deadline (-timeout) that cancels the engine mid-protocol.
// SIGTERM/SIGINT starts a graceful drain: new requests get 503, queued and
// in-flight runs finish (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dip"
)

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.addr, "addr", cfg.addr, "listen address (host:port; port 0 picks a free one)")
	flag.IntVar(&cfg.workers, "workers", cfg.workers, "run workers (concurrency ceiling)")
	flag.IntVar(&cfg.queue, "queue", cfg.queue, "admission queue depth (full queue answers 503)")
	flag.DurationVar(&cfg.timeout, "timeout", cfg.timeout, "per-request run deadline (0 disables)")
	flag.Int64Var(&cfg.maxBody, "max-body", cfg.maxBody, "request body cap in bytes")
	flag.DurationVar(&cfg.drain, "drain-timeout", cfg.drain, "graceful shutdown bound")
	flag.StringVar(&cfg.addrFile, "addr-file", cfg.addrFile, "write the bound address to this file once listening")
	flag.StringVar(&cfg.peers, "peers", cfg.peers, "comma-separated dippeer addresses: place verifier nodes on that standing fleet instead of in-process")
	flag.Float64Var(&cfg.rateLimit, "rate-limit", cfg.rateLimit, "per-client requests/second budget; batch items count individually (0 disables)")
	flag.IntVar(&cfg.rateBurst, "rate-burst", cfg.rateBurst, "per-client token-bucket capacity (0 derives one second of budget)")
	flag.StringVar(&cfg.jobs.journal, "journal", cfg.jobs.journal, "job journal file: makes the async backlog survive SIGKILL (empty keeps jobs in memory)")
	flag.IntVar(&cfg.jobs.workers, "job-workers", cfg.jobs.workers, "async job workers (0 = ingest-only: accept and journal now, process on a later boot)")
	flag.IntVar(&cfg.jobs.backlog, "job-backlog", cfg.jobs.backlog, "pending job bound (full backlog answers 503)")
	flag.IntVar(&cfg.jobs.attempts, "job-attempts", cfg.jobs.attempts, "run attempts per job before it parks as poison")
	flag.DurationVar(&cfg.jobs.attemptTimeout, "job-attempt-timeout", cfg.jobs.attemptTimeout, "per-attempt deadline (0 inherits -timeout)")
	flag.DurationVar(&cfg.jobs.backoffBase, "job-backoff", cfg.jobs.backoffBase, "base retry backoff (doubles per attempt, jittered)")
	flag.DurationVar(&cfg.jobs.resultTTL, "result-ttl", cfg.jobs.resultTTL, "how long finished job results stay pollable")
	flag.IntVar(&cfg.jobs.resultCap, "result-cap", cfg.jobs.resultCap, "finished job records retained (oldest evicted beyond)")
	flag.Parse()

	if err := serve(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dipserve: %v\n", err)
		os.Exit(1)
	}
}

func serve(cfg config) error {
	s, err := newServer(cfg)
	if err != nil {
		return err
	}
	if cfg.peers != "" {
		// Dial eagerly: a misconfigured fleet fails the boot, not the
		// first request. Lost peers redial transparently afterwards.
		fleet, err := dip.DialFleet(strings.Split(cfg.peers, ","), dip.FleetOptions{})
		if err != nil {
			return fmt.Errorf("dialing peer fleet: %w", err)
		}
		defer fleet.Close()
		s.useFleet(fleet)
		log.Printf("dipserve: serving from a %d-peer fleet", len(fleet.Addrs()))
	}
	s.start()
	if stats, _ := s.async.replayStats(); stats.Pending+stats.Settled > 0 {
		log.Printf("dipserve: journal replayed %d pending, %d settled (%d expired, %d torn bytes cut)",
			stats.Pending, stats.Settled, stats.Expired, stats.TruncatedBytes)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	httpSrv := &http.Server{Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("dipserve: listening on %s (%d workers, queue %d, timeout %v)",
		ln.Addr(), s.cfg.workers, s.cfg.queue, cfg.timeout)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Drain: refuse new work, let the handler goroutines (and through
	// them the queued jobs) finish, then retire the workers.
	log.Printf("dipserve: draining (bound %v)", cfg.drain)
	s.draining.Store(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	err = httpSrv.Shutdown(shutCtx)
	s.stop()
	log.Printf("dipserve: drained")
	return err
}
