package main

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestLimiter(rate float64, burst int) (*limiter, *fakeClock) {
	l := newLimiter(rate, burst)
	c := &fakeClock{t: time.Unix(1000, 0)}
	l.now = c.now
	return l, c
}

// TestLimiterBurstThenRefill: a fresh bucket admits its full burst, then
// refuses until the refill rate has restored a token.
func TestLimiterBurstThenRefill(t *testing.T) {
	l, clock := newTestLimiter(2, 4)
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("a", 1); !ok {
			t.Fatalf("request %d of burst refused", i)
		}
	}
	ok, retry := l.allow("a", 1)
	if ok {
		t.Fatal("admitted past the burst with no time elapsed")
	}
	// Empty bucket at 2 tokens/s: one token is 500ms away.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	clock.advance(500 * time.Millisecond)
	if ok, _ := l.allow("a", 1); !ok {
		t.Fatal("refused after the refill interval")
	}
	// And the bucket never refills past its capacity.
	clock.advance(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("a", 1); !ok {
			t.Fatalf("request %d refused after a long idle", i)
		}
	}
	if ok, _ := l.allow("a", 1); ok {
		t.Fatal("burst capacity not enforced after idle refill")
	}
}

// TestLimiterPerClientIsolation: one client draining its bucket does not
// touch another's budget.
func TestLimiterPerClientIsolation(t *testing.T) {
	l, _ := newTestLimiter(1, 2)
	l.allow("a", 1)
	l.allow("a", 1)
	if ok, _ := l.allow("a", 1); ok {
		t.Fatal("client a not exhausted")
	}
	if ok, _ := l.allow("b", 1); !ok {
		t.Fatal("client b charged for client a's traffic")
	}
}

// TestLimiterBatchCost: a batch spends one token per item, and a batch
// larger than the burst capacity is clamped — it drains the full bucket
// instead of being unservable forever.
func TestLimiterBatchCost(t *testing.T) {
	l, clock := newTestLimiter(1, 4)
	if ok, _ := l.allow("a", 3); !ok {
		t.Fatal("batch of 3 refused against burst 4")
	}
	if ok, _ := l.allow("a", 3); ok {
		t.Fatal("second batch of 3 admitted with 1 token left")
	}
	// Over-burst clamp: after a full refill, a batch of 100 against
	// capacity 4 is admitted once (draining the bucket), not refused
	// until the end of time.
	clock.advance(time.Minute)
	if ok, _ := l.allow("a", 100); !ok {
		t.Fatal("over-burst batch refused despite a full bucket")
	}
	if ok, _ := l.allow("a", 1); ok {
		t.Fatal("bucket not drained by the clamped batch")
	}
}

// TestLimiterEviction: the bucket map is bounded; saturated buckets make
// room for newcomers, and when every bucket is mid-drain the newcomer is
// refused (failing toward protecting the service).
func TestLimiterEviction(t *testing.T) {
	l, clock := newTestLimiter(1, 1)
	for i := 0; i < maxClients; i++ {
		if ok, _ := l.allow(fmt.Sprintf("client-%d", i), 1); !ok {
			t.Fatalf("client %d refused while filling the map", i)
		}
	}
	// Every bucket just drained: the newcomer must be refused, not grow
	// the map.
	if ok, _ := l.allow("newcomer", 1); ok {
		t.Fatal("newcomer admitted with the map full of draining buckets")
	}
	if len(l.buckets) > maxClients {
		t.Fatalf("bucket map grew to %d, bound %d", len(l.buckets), maxClients)
	}
	// After the refill interval every old bucket is saturated and
	// evictable; the newcomer gets a slot.
	clock.advance(2 * time.Second)
	if ok, _ := l.allow("newcomer", 1); !ok {
		t.Fatal("newcomer refused although every bucket was saturated")
	}
	if len(l.buckets) > maxClients {
		t.Fatalf("bucket map grew to %d after eviction, bound %d", len(l.buckets), maxClients)
	}
}

// TestLimiterEvictionPrefersSaturated pins the eviction policy: with the
// map full of saturated (fully refilled, information-free) buckets and
// exactly one mid-drain bucket, a newcomer's arrival evicts the
// saturated ones and keeps the draining one — the only bucket whose loss
// would forget real rate state.
func TestLimiterEvictionPrefersSaturated(t *testing.T) {
	l, clock := newTestLimiter(1, 2)
	for i := 0; i < maxClients-1; i++ {
		if ok, _ := l.allow(fmt.Sprintf("victim-%d", i), 1); !ok {
			t.Fatalf("victim %d refused while filling", i)
		}
	}
	clock.advance(2 * time.Second) // every victim refills to capacity
	if ok, _ := l.allow("draining", 2); !ok {
		t.Fatal("draining client refused its burst")
	}
	// Map is at the bound; the newcomer forces an eviction sweep.
	if ok, _ := l.allow("newcomer", 1); !ok {
		t.Fatal("newcomer refused although every victim was saturated")
	}
	if n := len(l.buckets); n != 2 {
		t.Fatalf("post-eviction map holds %d buckets, want 2 (draining + newcomer)", n)
	}
	if l.buckets["draining"] == nil {
		t.Fatal("eviction dropped the mid-drain bucket instead of a saturated one")
	}
	if l.buckets["newcomer"] == nil {
		t.Fatal("newcomer admitted but not tracked")
	}
}

// TestLimiterChurnStorm storms the limiter from concurrent goroutines
// with far more distinct client identities than the map bound — the
// spoofed-identity attack the bound exists for — and asserts the map
// never exceeds maxClients at any instant (a monitor samples it
// mid-storm) and holds no residue beyond the bound afterwards. Run under
// -race this also checks the single-mutex discipline around the bucket
// map and eviction sweep.
func TestLimiterChurnStorm(t *testing.T) {
	// A very hot refill rate makes every bucket saturate (and become
	// evictable) microseconds after its last use, so the storm exercises
	// the eviction path constantly instead of deadlocking on refusals.
	l := newLimiter(50000, 1)

	const goroutines = 6
	const perG = 1200 // 7200 distinct hosts, ~1.75x the map bound
	var maxSeen atomic.Int64
	sample := func() {
		l.mu.Lock()
		n := int64(len(l.buckets))
		l.mu.Unlock()
		for {
			cur := maxSeen.Load()
			if n <= cur || maxSeen.CompareAndSwap(cur, n) {
				return
			}
		}
	}
	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sample()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	var refused atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if ok, _ := l.allow(fmt.Sprintf("host-%d-%d", g, i), 1); !ok {
					refused.Add(1)
				}
				// Revisit an earlier identity so the storm mixes fresh
				// inserts with refill-path hits on surviving buckets.
				if i%3 == 0 {
					l.allow(fmt.Sprintf("host-%d-%d", g, i/2), 1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	monitor.Wait()
	sample()

	if got := maxSeen.Load(); got > maxClients {
		t.Fatalf("bucket map reached %d mid-storm, bound %d", got, maxClients)
	}
	if n := len(l.buckets); n > maxClients {
		t.Fatalf("bucket map holds %d after the storm, bound %d", n, maxClients)
	}
	// Refusals may happen in the instant between a fill and the next
	// saturation, but a limiter that refused most of the storm is broken.
	if r := refused.Load(); r > goroutines*perG/10 {
		t.Fatalf("%d of %d fresh identities refused", r, goroutines*perG)
	}
}

// TestRetryAfterSeconds: whole seconds, rounded up, never zero.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestClientKey: the bucket identity is the host, so every port of one
// client shares a budget, and an unparseable RemoteAddr degrades to the
// raw string rather than a shared bucket.
func TestClientKey(t *testing.T) {
	r := &http.Request{RemoteAddr: "10.1.2.3:55001"}
	if got := clientKey(r); got != "10.1.2.3" {
		t.Fatalf("clientKey = %q", got)
	}
	r2 := &http.Request{RemoteAddr: "10.1.2.3:55999"}
	if clientKey(r) != clientKey(r2) {
		t.Fatal("two ports of one host got distinct buckets")
	}
	weird := &http.Request{RemoteAddr: "pipe"}
	if got := clientKey(weird); got != "pipe" {
		t.Fatalf("clientKey(unparseable) = %q", got)
	}
}
