package main

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

// fakeClock drives a limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestLimiter(rate float64, burst int) (*limiter, *fakeClock) {
	l := newLimiter(rate, burst)
	c := &fakeClock{t: time.Unix(1000, 0)}
	l.now = c.now
	return l, c
}

// TestLimiterBurstThenRefill: a fresh bucket admits its full burst, then
// refuses until the refill rate has restored a token.
func TestLimiterBurstThenRefill(t *testing.T) {
	l, clock := newTestLimiter(2, 4)
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("a", 1); !ok {
			t.Fatalf("request %d of burst refused", i)
		}
	}
	ok, retry := l.allow("a", 1)
	if ok {
		t.Fatal("admitted past the burst with no time elapsed")
	}
	// Empty bucket at 2 tokens/s: one token is 500ms away.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}
	clock.advance(500 * time.Millisecond)
	if ok, _ := l.allow("a", 1); !ok {
		t.Fatal("refused after the refill interval")
	}
	// And the bucket never refills past its capacity.
	clock.advance(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("a", 1); !ok {
			t.Fatalf("request %d refused after a long idle", i)
		}
	}
	if ok, _ := l.allow("a", 1); ok {
		t.Fatal("burst capacity not enforced after idle refill")
	}
}

// TestLimiterPerClientIsolation: one client draining its bucket does not
// touch another's budget.
func TestLimiterPerClientIsolation(t *testing.T) {
	l, _ := newTestLimiter(1, 2)
	l.allow("a", 1)
	l.allow("a", 1)
	if ok, _ := l.allow("a", 1); ok {
		t.Fatal("client a not exhausted")
	}
	if ok, _ := l.allow("b", 1); !ok {
		t.Fatal("client b charged for client a's traffic")
	}
}

// TestLimiterBatchCost: a batch spends one token per item, and a batch
// larger than the burst capacity is clamped — it drains the full bucket
// instead of being unservable forever.
func TestLimiterBatchCost(t *testing.T) {
	l, clock := newTestLimiter(1, 4)
	if ok, _ := l.allow("a", 3); !ok {
		t.Fatal("batch of 3 refused against burst 4")
	}
	if ok, _ := l.allow("a", 3); ok {
		t.Fatal("second batch of 3 admitted with 1 token left")
	}
	// Over-burst clamp: after a full refill, a batch of 100 against
	// capacity 4 is admitted once (draining the bucket), not refused
	// until the end of time.
	clock.advance(time.Minute)
	if ok, _ := l.allow("a", 100); !ok {
		t.Fatal("over-burst batch refused despite a full bucket")
	}
	if ok, _ := l.allow("a", 1); ok {
		t.Fatal("bucket not drained by the clamped batch")
	}
}

// TestLimiterEviction: the bucket map is bounded; saturated buckets make
// room for newcomers, and when every bucket is mid-drain the newcomer is
// refused (failing toward protecting the service).
func TestLimiterEviction(t *testing.T) {
	l, clock := newTestLimiter(1, 1)
	for i := 0; i < maxClients; i++ {
		if ok, _ := l.allow(fmt.Sprintf("client-%d", i), 1); !ok {
			t.Fatalf("client %d refused while filling the map", i)
		}
	}
	// Every bucket just drained: the newcomer must be refused, not grow
	// the map.
	if ok, _ := l.allow("newcomer", 1); ok {
		t.Fatal("newcomer admitted with the map full of draining buckets")
	}
	if len(l.buckets) > maxClients {
		t.Fatalf("bucket map grew to %d, bound %d", len(l.buckets), maxClients)
	}
	// After the refill interval every old bucket is saturated and
	// evictable; the newcomer gets a slot.
	clock.advance(2 * time.Second)
	if ok, _ := l.allow("newcomer", 1); !ok {
		t.Fatal("newcomer refused although every bucket was saturated")
	}
	if len(l.buckets) > maxClients {
		t.Fatalf("bucket map grew to %d after eviction, bound %d", len(l.buckets), maxClients)
	}
}

// TestRetryAfterSeconds: whole seconds, rounded up, never zero.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestClientKey: the bucket identity is the host, so every port of one
// client shares a budget, and an unparseable RemoteAddr degrades to the
// raw string rather than a shared bucket.
func TestClientKey(t *testing.T) {
	r := &http.Request{RemoteAddr: "10.1.2.3:55001"}
	if got := clientKey(r); got != "10.1.2.3" {
		t.Fatalf("clientKey = %q", got)
	}
	r2 := &http.Request{RemoteAddr: "10.1.2.3:55999"}
	if clientKey(r) != clientKey(r2) {
		t.Fatal("two ports of one host got distinct buckets")
	}
	weird := &http.Request{RemoteAddr: "pipe"}
	if got := clientKey(weird); got != "pipe" {
		t.Fatalf("clientKey(unparseable) = %q", got)
	}
}
