// The async job tier: POST /v1/jobs accepts the same dip.Request body
// as /v1/run but answers immediately with a job id; a worker pool
// drains the backlog through the same pooled engine, and GET
// /v1/jobs/{id} serves status and, once done, the identical
// dip-report/v1 document the synchronous path would have returned —
// wrapped in a dip-job/v1 envelope. With -journal the queue is
// file-backed: a SIGKILL'd server replays its backlog on restart, jobs
// settled before the crash keep their results, and an Idempotency-Key
// header dedups client resubmissions across the whole lifecycle.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"dip"
	"dip/internal/jobs"
)

// jobsConfig are the job-tier knobs; flags in main.go fill them.
type jobsConfig struct {
	// workers drains the job queue; 0 is ingest-only (accept and journal
	// now, process on a later boot with workers — the crash smoke uses
	// this to build a deterministic backlog).
	workers int
	// journal is the durable queue file; empty selects the in-memory
	// backend (jobs do not survive a restart, results still TTL-evict).
	journal string
	// backlog bounds pending jobs; a full backlog answers 503.
	backlog int
	// attempts bounds retries per job before it parks as poison.
	attempts int
	// attemptTimeout bounds one run attempt; 0 inherits cfg.timeout.
	attemptTimeout time.Duration
	// backoffBase seeds the exponential retry delay.
	backoffBase time.Duration
	// resultTTL/resultCap bound the result store.
	resultTTL time.Duration
	resultCap int
}

func defaultJobsConfig() jobsConfig {
	return jobsConfig{
		workers:     2,
		backlog:     jobs.DefaultBacklogBound,
		attempts:    jobs.DefaultMaxAttempts,
		backoffBase: jobs.DefaultBaseBackoff,
		resultTTL:   jobs.DefaultResultTTL,
		resultCap:   jobs.DefaultResultCap,
	}
}

// jobsTier owns the queue, store, worker pool and metrics of the async
// path.
type jobsTier struct {
	queue   jobs.Queue
	store   *jobs.Store
	pool    *jobs.Pool
	metrics jobs.Metrics
	cfg     jobsConfig
	durable bool
	// bootNS + seq mint job ids unique across restarts: the boot stamp
	// distinguishes two processes, the sequence two jobs in one.
	bootNS int64
	seq    atomic.Int64
}

// newJobsTier builds (and for a journal, replays) the tier. run is the
// seeded engine entry (dip.RunContext in production; tests inject).
func newJobsTier(cfg jobsConfig, seed int64, run func(context.Context, dip.Request) (dip.Report, error)) (*jobsTier, error) {
	t := &jobsTier{
		cfg:    cfg,
		bootNS: time.Now().UnixNano(),
	}
	t.store = jobs.NewStore(cfg.resultTTL, cfg.resultCap)

	if cfg.journal != "" {
		fq, err := jobs.OpenFileQueue(cfg.journal, cfg.backlog, cfg.resultTTL)
		if err != nil {
			return nil, err
		}
		t.queue = fq
		t.durable = true
		stats, settled := fq.Replayed()
		t.metrics.Replayed.Add(int64(stats.Pending))
		t.metrics.ReplayedSettled.Add(int64(stats.Settled))
		for _, s := range settled {
			t.store.Adopt(settledRecord(s))
		}
		// Pending jobs need store records too, or their status polls
		// would 404 until a worker picks them up.
		adoptPending(fq, t.store)
	} else {
		t.queue = jobs.NewMemQueue(cfg.backlog)
	}

	t.pool = jobs.NewPool(t.queue, jobs.PoolConfig{
		Workers:        cfg.workers,
		Run:            jobRunFunc(run),
		Retryable:      jobRetryable,
		MaxAttempts:    cfg.attempts,
		AttemptTimeout: cfg.attemptTimeout,
		BaseBackoff:    cfg.backoffBase,
		Seed:           seed,
		Store:          t.store,
		Metrics:        &t.metrics,
	})
	return t, nil
}

// settledRecord shapes a replayed terminal job into its store record.
func settledRecord(s jobs.Settled) jobs.Record {
	rec := jobs.Record{
		ID:        s.Job.ID,
		Key:       s.Job.Key,
		Meta:      payloadProtocol(s.Job.Payload),
		Attempts:  s.Result.Attempts,
		SettledMS: s.AtMS,
	}
	switch {
	case s.Result.OK:
		rec.State = jobs.StateDone
		rec.Output = s.Result.Output
	case s.Result.Parked:
		rec.State = jobs.StateParked
		rec.Error = s.Result.Error
	default:
		rec.State = jobs.StateFailed
		rec.Error = s.Result.Error
	}
	return rec
}

// adoptPending registers a queued store record for every replayed
// pending job, so status polls work from the first instant of the boot.
func adoptPending(fq *jobs.FileQueue, store *jobs.Store) {
	for _, j := range fq.PendingJobs() {
		store.Adopt(jobs.Record{
			ID:         j.ID,
			Key:        j.Key,
			Meta:       payloadProtocol(j.Payload),
			State:      jobs.StateQueued,
			EnqueuedMS: time.Now().UnixMilli(),
		})
	}
}

// payloadProtocol peeks the protocol name out of a stored payload.
func payloadProtocol(payload json.RawMessage) string {
	var head struct {
		Protocol string `json:"protocol"`
	}
	_ = json.Unmarshal(payload, &head)
	return head.Protocol
}

// mintID returns a job id unique across restarts.
func (t *jobsTier) mintID() string {
	return fmt.Sprintf("j-%x-%06d", t.bootNS, t.seq.Add(1))
}

// replayStats reports what a durable queue recovered at open (zeros,
// false for the in-memory backend).
func (t *jobsTier) replayStats() (jobs.ReplayStats, bool) {
	if fq, ok := t.queue.(*jobs.FileQueue); ok {
		st, _ := fq.Replayed()
		return st, true
	}
	return jobs.ReplayStats{}, false
}

// stop drains the tier: workers finish their current attempt (backoff
// waits are cut and the job nacked back), then the queue closes — for a
// journal that is the flush+fsync that seals the backlog for the next
// boot.
func (t *jobsTier) stop() {
	t.pool.Stop()
	_ = t.queue.Close()
}

// jobRunFunc adapts the engine entry to the queue's payload-in,
// payload-out shape: decode the stored dip.Request, run it, encode the
// dip-report/v1 answer. The encoding is the same WireReportFrom path
// /v1/run uses, so a job's report is byte-identical to the synchronous
// answer for the same request — and identical across queue backends,
// which only differ in how the payload waited.
func jobRunFunc(run func(context.Context, dip.Request) (dip.Report, error)) jobs.RunFunc {
	return func(ctx context.Context, payload json.RawMessage) (json.RawMessage, error) {
		var req dip.Request
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			// A payload that no longer decodes is the submission's
			// fault forever: permanent, never retried.
			return nil, &dip.RequestError{Err: fmt.Errorf("decoding job payload: %w", err)}
		}
		rep, err := run(ctx, req)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := dip.WireReportFrom(rep, req.Options.Seed).Encode(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// jobRetryable classifies attempt failures with the same taxonomy the
// synchronous path maps to HTTP statuses: 400-class failures (request
// validation, setup) are the payload's fault and will fail identically
// forever — permanent. Everything else (timeouts, mid-run faults,
// contained panics, internal errors) might be load or a transient bug:
// retry, bounded by the attempt budget and the poison lane.
func jobRetryable(err error) bool {
	status, _ := mapRunError(err)
	return status != http.StatusBadRequest
}

// handleJobs is POST /v1/jobs: admit a request into the async tier.
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only (poll GET /v1/jobs/{id})"})
		return
	}
	if !s.allowClient(w, r, 1) {
		return
	}
	var req dip.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, decodeStatus(err), errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server draining"})
		s.meters.Rejected.Add(1)
		return
	}

	t := s.async
	key := r.Header.Get("Idempotency-Key")
	id := t.mintID()
	rec, dup := t.store.Enqueue(id, key, req.Protocol)
	if dup {
		// The key already names a job (queued, running or settled):
		// answer its current state and never mint a second run. This is
		// what makes client retry storms safe.
		t.metrics.IdemHits.Add(1)
		s.writeJob(w, http.StatusOK, rec)
		return
	}

	payload, err := json.Marshal(req)
	if err != nil {
		t.store.Discard(id)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if err := t.queue.Publish(&jobs.Job{ID: id, Key: key, Payload: payload}); err != nil {
		// Withdraw the store record so a later resubmission (same key)
		// mints a fresh job instead of pointing at one that never
		// queued.
		t.store.Discard(id)
		switch {
		case errors.Is(err, jobs.ErrBacklogFull):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "job backlog full"})
			s.meters.Rejected.Add(1)
		case errors.Is(err, jobs.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "job queue closed"})
			s.meters.Rejected.Add(1)
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	t.metrics.Enqueued.Add(1)
	s.meters.Requests.Add(1)
	s.writeJob(w, http.StatusAccepted, rec)
}

// handleJobStatus is GET /v1/jobs/{id}: the polling endpoint.
func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "want /v1/jobs/{id}"})
		return
	}
	rec, ok := s.async.store.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("job %s unknown (never submitted, or its result expired)", id)})
		return
	}
	s.writeJob(w, http.StatusOK, rec)
}

// writeJob answers with the dip-job/v1 envelope for rec.
func (s *server) writeJob(w http.ResponseWriter, status int, rec jobs.Record) {
	env, err := wireJobFromRecord(rec)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, status, env)
}

// wireJobFromRecord shapes a store record into its dip-job/v1 document.
func wireJobFromRecord(rec jobs.Record) (*dip.WireJob, error) {
	env := &dip.WireJob{
		Schema:         dip.JobSchema,
		ID:             rec.ID,
		State:          string(rec.State),
		Protocol:       rec.Meta,
		IdempotencyKey: rec.Key,
		Attempts:       rec.Attempts,
		EnqueuedUnixMS: rec.EnqueuedMS,
		SettledUnixMS:  rec.SettledMS,
	}
	if rec.State == jobs.StateDone {
		var rep dip.WireReport
		if err := json.Unmarshal(rec.Output, &rep); err != nil {
			return nil, fmt.Errorf("job %s stored an undecodable report: %w", rec.ID, err)
		}
		env.Report = &rep
	} else {
		env.Error = rec.Error
	}
	return env, nil
}
