// Command dipbench regenerates the experiment tables of EXPERIMENTS.md:
// one table per theorem of "Interactive Distributed Proofs" (PODC 2018),
// plus the hash-family, adversary, building-block and ablation studies.
//
// Usage:
//
//	dipbench                  # run every experiment at full size
//	dipbench -experiment E5   # run one experiment
//	dipbench -quick           # reduced sizes (seconds instead of minutes)
//	dipbench -seed 7          # change the reproducibility seed
//	dipbench -trials 500      # override the per-cell trial count
//	dipbench -parallel 2      # cap the trial-harness worker count
//
// Tables are reproducible for a fixed -seed regardless of -parallel: each
// trial's randomness is derived from (seed, experiment, trial index) alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dip/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dipbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which    = flag.String("experiment", "all", "experiment ID (E1..E11) or 'all'")
		seed     = flag.Int64("seed", 1, "reproducibility seed")
		quick    = flag.Bool("quick", false, "reduced sizes and trial counts")
		trials   = flag.Int("trials", 0, "override the per-cell trial count (0 = experiment default)")
		parallel = flag.Int("parallel", 0, "trial-harness worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Trials: *trials, Parallel: *parallel}
	runners := experiments.All()
	if *which != "all" {
		r, ok := experiments.ByID(*which)
		if !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E11 or all)", *which)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		table, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Println(table.Format())
		fmt.Printf("(%s finished in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
