// Command dipbench regenerates the experiment tables of EXPERIMENTS.md:
// one table per theorem of "Interactive Distributed Proofs" (PODC 2018),
// plus the hash-family, adversary, building-block and ablation studies.
//
// Usage:
//
//	dipbench                  # run every experiment at full size
//	dipbench -experiment E5   # run one experiment
//	dipbench -quick           # reduced sizes (seconds instead of minutes)
//	dipbench -seed 7          # change the reproducibility seed
//	dipbench -trials 500      # override the per-cell trial count
//	dipbench -parallel 2      # cap the trial-harness worker count
//	dipbench -json out.json   # also emit machine-readable results
//	dipbench -faults          # run the fault matrix (E12) instead of E1..E11
//	dipbench -validate x.json [y.json ...]  # check results files against their schemas
//	dipbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Tables are reproducible for a fixed -seed regardless of -parallel: each
// trial's randomness is derived from (seed, experiment, trial index)
// alone. The -json file is likewise byte-identical across -parallel and
// GOMAXPROCS settings, so committed BENCH_*.json artifacts diff cleanly
// across PRs; -json-timings adds a non-reproducible timings block (wall
// times, worker count, engine meters) for profiling sessions. Long runs
// report live progress (trials per cell, ETA) on stderr; silence it with
// -progress=false.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dip"
	"dip/internal/experiments"
	"dip/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dipbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which       = flag.String("experiment", "all", "experiment ID (E1..E12) or 'all'")
		seed        = flag.Int64("seed", 1, "reproducibility seed")
		quick       = flag.Bool("quick", false, "reduced sizes and trial counts")
		trials      = flag.Int("trials", 0, "override the per-cell trial count (0 = experiment default)")
		parallel    = flag.Int("parallel", 0, "trial-harness worker count (0 = GOMAXPROCS)")
		jsonPath    = flag.String("json", "", "write machine-readable results to this path")
		jsonTimings = flag.Bool("json-timings", false, "include the non-reproducible timings block in -json output")
		progress    = flag.Bool("progress", true, "report live per-cell progress on stderr")
		faultsMode  = flag.Bool("faults", false, "run the fault-injection matrix (E12); -json emits dip-fault/v1")
		validate    = flag.String("validate", "", "validate existing results files against their schemas and exit (accepts further paths as positional args)")
		benchAllocs = flag.Bool("bench-allocs", true, "measure the engine reference workload's allocs/op and embed it in -json output")
		benchCheck  = flag.String("bench-check", "", "re-measure allocs/op and fail on >10% regressions: dip-bench files gate the engine workload, dip-load files the request path (accepts further paths as positional args)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	if *validate != "" {
		return validateFiles(append([]string{*validate}, flag.Args()...))
	}

	if *benchCheck != "" {
		return checkBenchFiles(append([]string{*benchCheck}, flag.Args()...))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Trials: *trials, Parallel: *parallel}
	if *progress {
		cfg.Progress = obs.NewReporter(os.Stderr)
	}

	if *faultsMode {
		return runFaults(cfg, *jsonPath)
	}

	runners := experiments.All()
	if *which != "all" {
		r, ok := experiments.ByID(*which)
		if !ok {
			return fmt.Errorf("unknown experiment %q (want E1..E12 or all)", *which)
		}
		runners = []experiments.Runner{r}
	}

	results := &experiments.ResultsFile{
		Schema:         experiments.Schema,
		Tool:           "dipbench",
		Seed:           *seed,
		Quick:          *quick,
		TrialsOverride: *trials,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
	}
	var timings experiments.Timings
	totalStart := time.Now()

	for _, r := range runners {
		start := time.Now()
		rec := &experiments.Recorder{}
		cfg.Recorder = rec
		cfg.Progress.SetLabel(r.ID)
		table, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		elapsed := time.Since(start)
		fmt.Println(table.Format())
		fmt.Printf("(%s finished in %v)\n\n", r.ID, elapsed.Round(time.Millisecond))

		results.Experiments = append(results.Experiments, experiments.ExperimentResult{
			ID:      table.ID,
			Title:   table.Title,
			Columns: table.Columns,
			Rows:    table.Rows,
			Notes:   table.Notes,
			Cells:   rec.Cells(),
		})
		timings.Experiments = append(timings.Experiments, experiments.ExperimentTiming{
			ID:     table.ID,
			WallMS: elapsed.Milliseconds(),
		})
	}

	if *jsonPath != "" {
		if *benchAllocs {
			eb, err := experiments.MeasureEngineAllocs()
			if err != nil {
				return err
			}
			results.EngineBench = eb
			fmt.Fprintf(os.Stderr, "engine bench: %.0f allocs/op (%s, n=%d)\n",
				eb.AllocsPerOp, eb.Workload, eb.Nodes)
		}
		if *jsonTimings {
			timings.Parallel = *parallel
			timings.GoVersion = runtime.Version()
			timings.TotalWallMS = time.Since(totalStart).Milliseconds()
			timings.Engine = obs.Snapshot()
			results.Timings = &timings
		}
		if err := results.Validate(); err != nil {
			return fmt.Errorf("internal: generated results fail validation: %w", err)
		}
		if err := results.WriteFile(*jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// runFaults runs the E12 fault matrix and optionally writes the
// dip-fault/v1 results file.
func runFaults(cfg experiments.Config, jsonPath string) error {
	cfg.Progress.SetLabel("E12")
	start := time.Now()
	file, table, err := experiments.RunFaultMatrix(cfg)
	if err != nil {
		return err
	}
	fmt.Println(table.Format())
	fmt.Printf("(E12 finished in %v)\n", time.Since(start).Round(time.Millisecond))
	if bad := file.GateViolations(); len(bad) > 0 {
		fmt.Printf("WARNING: %d cell(s) fail the 1/3 gate\n", len(bad))
	}
	if jsonPath != "" {
		if err := file.Validate(); err != nil {
			return fmt.Errorf("internal: generated fault results fail validation: %w", err)
		}
		if err := file.WriteFile(jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}

// checkBenchFiles is the allocation-regression gate, dispatching on each
// file's schema: dip-bench/v1 files gate the engine reference workload
// (engine_bench block), dip-load/v1 files gate the full request path
// (request_bench block). Accepts several files in one invocation
// (`dipbench -bench-check BENCH_seed1.json LOAD_seed2.json`) and reports
// every failure before exiting.
func checkBenchFiles(paths []string) error {
	failed := 0
	for _, path := range paths {
		if err := checkBenchFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d file(s) failed the bench check", failed, len(paths))
	}
	return nil
}

func checkBenchFile(path string) error {
	schema, err := experiments.SniffSchema(path)
	if err != nil {
		return err
	}
	switch schema {
	case experiments.Schema:
		return checkEngineAllocs(path)
	case experiments.LoadSchema:
		return checkRequestAllocs(path)
	default:
		return fmt.Errorf("schema %q carries no allocation budget (want %s or %s)",
			schema, experiments.Schema, experiments.LoadSchema)
	}
}

// checkEngineAllocs re-measures the engine reference workload and compares
// against the engine_bench record committed in a dip-bench/v1 file.
func checkEngineAllocs(path string) error {
	f, err := experiments.ReadResultsFile(path)
	if err != nil {
		return err
	}
	measured, err := experiments.MeasureEngineAllocs()
	if err != nil {
		return err
	}
	recorded := f.EngineBench
	if err := experiments.CheckEngineAllocs(recorded, measured); err != nil {
		return err
	}
	fmt.Printf("%s: engine bench OK: %.0f allocs/op measured vs %.0f recorded (limit +%d%%)\n",
		path, measured.AllocsPerOp, recorded.AllocsPerOp, int(experiments.AllocRegressionLimit*100))
	return nil
}

// checkRequestAllocs re-measures the service-layer request path and
// compares against the request_bench record in a dip-load/v1 file.
func checkRequestAllocs(path string) error {
	f, err := experiments.ReadLoadResultsFile(path)
	if err != nil {
		return err
	}
	measured, err := dip.MeasureRequestAllocs()
	if err != nil {
		return err
	}
	if err := experiments.CheckRequestAllocs(f.RequestBench, measured); err != nil {
		return err
	}
	fmt.Printf("%s: request bench OK: %.0f allocs/op measured vs %.0f recorded (limit +%d%%)\n",
		path, measured, f.RequestBench.AllocsPerOp, int(experiments.AllocRegressionLimit*100))
	return nil
}

// validateFiles checks every file and reports each failure with its own
// diagnostic before exiting: a batch invocation (`dipbench -validate
// a.json b.json c.json`) surfaces all broken artifacts in one pass
// instead of stopping at the first.
func validateFiles(paths []string) error {
	failed := 0
	for _, path := range paths {
		if err := validateFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "dipbench: %s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d file(s) failed validation", failed, len(paths))
	}
	return nil
}

// validateFile dispatches on the file's schema field: dip-bench/v1,
// dip-fault/v1, dip-report/v1, dip-job/v1 and dip-load/v1 files are all
// accepted.
func validateFile(path string) error {
	schema, err := experiments.SniffSchema(path)
	if err != nil {
		return err
	}
	switch schema {
	case dip.ReportSchema:
		w, err := dip.ReadWireReportFile(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid %s (protocol %s, %d nodes, seed %d, accepted=%v)\n",
			path, w.Schema, w.Protocol, w.Nodes, w.Seed, w.Accepted)
		return nil
	case dip.JobSchema:
		w, err := dip.ReadWireJobFile(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid %s (id %s, state %s, protocol %s, %d attempts)\n",
			path, w.Schema, w.ID, w.State, w.Protocol, w.Attempts)
		return nil
	case experiments.LoadSchema:
		f, err := experiments.ReadLoadResultsFile(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid %s results (seed %d, c=%d, %d requests, %.1f req/s, %d dropped)\n",
			path, f.Schema, f.Seed, f.Concurrency, f.Requests, f.ThroughputRPS, f.Dropped)
		return nil
	case experiments.Schema:
		f, err := experiments.ReadResultsFile(path)
		if err != nil {
			return err
		}
		cells := 0
		for _, e := range f.Experiments {
			cells += len(e.Cells)
		}
		fmt.Printf("%s: valid %s results (seed %d, %d experiments, %d cells)\n",
			path, f.Schema, f.Seed, len(f.Experiments), cells)
		return nil
	case experiments.FaultSchema:
		f, err := experiments.ReadFaultResultsFile(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: valid %s results (seed %d, %d cells, %d gate violations)\n",
			path, f.Schema, f.Seed, len(f.Cells), len(f.GateViolations()))
		return nil
	default:
		return fmt.Errorf("unknown schema %q", schema)
	}
}
