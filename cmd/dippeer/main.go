// Command dippeer runs a verifier peer: one OS process hosting a slice of
// a proof's nodes behind the length-prefixed TCP protocol of
// internal/peer. A coordinator (cmd/dipsim -peers, or any peer.Dial
// caller) provisions each session over the wire — protocol parameters as
// a JSON dip.Request without edge lists, the run seed, and the hosted
// nodes' neighbor lists and inputs — so a peer process needs no
// configuration beyond an address to listen on.
//
//	dippeer -addr 127.0.0.1:0 -addr-file peer0.addr
//
// The process serves sessions until SIGTERM/SIGINT, then stops accepting,
// drains in-flight sessions, logs "dippeer: drained", and exits 0.
//
// -fail-session k makes the process kill itself (exit 2) at the first
// exchange step of its k-th session: a crash-mid-round fault hook for
// harness tests like `make peer-smoke`, where a coordinator must observe
// a structured transport error rather than a hang. -fail-soft k instead
// aborts only the k-th session with a structured error — the rest of the
// process, including sessions concurrently multiplexed on the same
// connection, keeps serving: the isolation drill for fleet harnesses.
//
// -io-timeout bounds each session's frame exchanges and idle gaps; a
// coordinator that stalls longer has its session aborted (the trunk
// connection itself may stay idle indefinitely between sessions).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"dip"
	"dip/internal/network"
	"dip/internal/peer"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks a free one)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file once listening")
		failSession = flag.Int("fail-session", 0, "crash (exit 2) at the first exchange step of session k; 0 disables")
		failSoft    = flag.Int("fail-soft", 0, "abort session k with a structured error, keep serving the rest; 0 disables")
		ioTimeout   = flag.Duration("io-timeout", peer.DefaultIOTimeout, "per-session frame exchange and idle deadline")
		verbose     = flag.Bool("v", false, "log session lifecycle")
	)
	flag.Parse()

	if err := run(*addr, *addrFile, peer.Options{IOTimeout: *ioTimeout}, *failSession, *failSoft, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "dippeer: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, opts peer.Options, failSession, failSoft int, verbose bool) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	srv := &peer.Server{
		Build: func(params []byte) (*network.Spec, error) {
			var req dip.Request
			if err := json.Unmarshal(params, &req); err != nil {
				return nil, fmt.Errorf("decoding request params: %w", err)
			}
			return dip.BuildSpec(req)
		},
		Opts:        opts,
		FailSession: failSession,
		FailSoft:    failSoft,
	}
	if verbose {
		srv.Logf = log.Printf
	}

	log.Printf("dippeer: listening on %s", ln.Addr())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("dippeer: %v: draining", s)
		ln.Close()
		srv.Close()
		<-done
		log.Printf("dippeer: drained")
		return nil
	case err := <-done:
		srv.Close()
		return err
	}
}
