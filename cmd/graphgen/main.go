// Command graphgen generates and describes the graph families used by the
// protocols and experiments: doubled symmetric graphs, DSym dumbbells
// (Definition 5), the Section 3.4 lower-bound dumbbells, and the certified
// asymmetric family F.
//
// Usage:
//
//	graphgen -family doubled -n 8
//	graphgen -family dsym -n 6 -half 2
//	graphgen -family asymmetric -n 10
//	graphgen -family lowerbound          # enumerate F(6) and its dumbbells
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dip/internal/graph"
	"dip/internal/lower"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family = flag.String("family", "doubled", "doubled | dsym | asymmetric | gnp | lowerbound")
		n      = flag.Int("n", 8, "core size parameter")
		half   = flag.Int("half", 1, "DSym path half-length")
		p      = flag.Float64("p", 0.5, "G(n,p) edge probability")
		seed   = flag.Int64("seed", 1, "reproducibility seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	describe := func(g *graph.Graph) {
		fmt.Println(g)
		auto := graph.FindNontrivialAutomorphism(g)
		if auto == nil {
			fmt.Println("automorphism: none (rigid)")
		} else {
			fmt.Printf("automorphism: %v\n", auto)
		}
		fmt.Printf("connected: %v, degree sequence: %v\n", g.IsConnected(), g.DegreeSequence())
	}

	switch *family {
	case "doubled":
		core, err := graph.RandomAsymmetricConnected(*n, rng)
		if err != nil {
			return err
		}
		describe(graph.Doubled(core, 0))
	case "dsym":
		f := graph.ConnectedGNP(*n, *p, rng)
		g := graph.DSymGraph(f, *half)
		describe(g)
		fmt.Printf("in DSym(%d,%d): %v\n", *n, *half, graph.IsDSym(g, *n, *half))
	case "asymmetric":
		g, err := graph.RandomAsymmetricConnected(*n, rng)
		if err != nil {
			return err
		}
		describe(g)
	case "gnp":
		describe(graph.GNP(*n, *p, rng))
	case "lowerbound":
		fam, err := lower.Family(6)
		if err != nil {
			return err
		}
		fmt.Printf("F(6): %d connected asymmetric graphs on 6 vertices, pairwise non-isomorphic\n", len(fam))
		for i, f := range fam {
			fmt.Printf("  F%d: %v\n", i, f)
		}
		if err := lower.VerifySymmetryCriterion(fam); err != nil {
			return err
		}
		fmt.Printf("dumbbell criterion verified on all %d pairs: Sym(G(F_A,F_B)) ⟺ F_A = F_B\n",
			len(fam)*len(fam))
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	return nil
}
