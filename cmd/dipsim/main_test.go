package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"dip"
	"dip/internal/core"
)

// TestMakeGraphValidatesRandomKinds is the regression test for the
// silent-resize bug: unsatisfiable -n values must error instead of
// producing a graph of a different size.
func TestMakeGraphValidatesRandomKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		kind string
		n    int
		want string // substring of the error; "" = must succeed with g.N()==n
	}{
		{"doubled", 12, "at least 14"},
		{"doubled", 15, "even size"},
		{"doubled", 14, ""},
		{"doubled", 16, ""},
		{"asymmetric", 4, "at least 6"},
		{"asymmetric", 6, ""},
		{"nonsense", 10, "unknown graph kind"},
	}
	for _, tc := range cases {
		g, err := makeGraph(tc.kind, tc.n, rng)
		if tc.want != "" {
			if err == nil {
				t.Fatalf("makeGraph(%q, %d) succeeded, want error", tc.kind, tc.n)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("makeGraph(%q, %d) error %q, want mention of %q", tc.kind, tc.n, err, tc.want)
			}
			continue
		}
		if err != nil {
			t.Fatalf("makeGraph(%q, %d): %v", tc.kind, tc.n, err)
		}
		if g.N() != tc.n {
			t.Fatalf("makeGraph(%q, %d) built %d vertices, want exactly %d", tc.kind, tc.n, g.N(), tc.n)
		}
	}
}

// TestRunReportsGraphErrors drives the CLI entry point end to end with an
// unsatisfiable size.
func TestRunReportsGraphErrors(t *testing.T) {
	var out bytes.Buffer
	err := run(simOptions{protocol: "sym-dmam", kind: "doubled", n: 12, seed: 1}, &out)
	if err == nil || !strings.Contains(err.Error(), "at least 14") {
		t.Fatalf("run with -n 12 returned %v, want the size error", err)
	}
}

// TestKFlagDefaultsToSharedConstant pins the -k default to the shared
// repetition constant (it used to be an out-of-sync literal 30 while the
// library used 40).
func TestKFlagDefaultsToSharedConstant(t *testing.T) {
	o := parseFlags(nil)
	if o.k != core.DefaultGNIRepetitions {
		t.Fatalf("-k default = %d, want core.DefaultGNIRepetitions (%d)", o.k, core.DefaultGNIRepetitions)
	}
}

// TestRunEmitsJSON smoke-tests the machine-readable output: a valid
// dip-report/v1 document with per-round prover bits that sum to the
// aggregate (Validate re-checks the full invariant set).
func TestRunEmitsJSON(t *testing.T) {
	var out bytes.Buffer
	o := simOptions{protocol: "sym-dmam", kind: "cycle", n: 8, k: 1, seed: 1, jsonPath: "-"}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	start := strings.Index(text, "{")
	if start < 0 {
		t.Fatalf("no JSON in output:\n%s", text)
	}
	rec, err := dip.DecodeWireReport(strings.NewReader(text[start:]))
	if err != nil {
		t.Fatalf("bad dip-report/v1 document: %v\n%s", err, text[start:])
	}
	if rec.Schema != dip.ReportSchema {
		t.Fatalf("schema %q, want %q", rec.Schema, dip.ReportSchema)
	}
	if rec.Protocol != "sym-dmam" || rec.Nodes != 8 || len(rec.PerRound) == 0 {
		t.Fatalf("malformed record: %+v", rec)
	}
	if rec.Graph == "" {
		t.Fatalf("graph provenance missing: %+v", rec)
	}
	sum := 0
	for _, r := range rec.PerRound {
		sum += r.ToProver + r.FromProver
	}
	if sum != rec.MaxProverBits {
		t.Fatalf("per-round sum %d != max_prover_bits %d", sum, rec.MaxProverBits)
	}
	if !strings.Contains(text, "per-round bits at node") {
		t.Fatalf("human-readable per-round section missing:\n%s", text)
	}
}

// TestRunMatchesDipRun pins dipsim's plain path to the public API: the
// JSON document dipsim emits must agree with dip.Run on the request
// dipsim reports having executed.
func TestRunMatchesDipRun(t *testing.T) {
	var out bytes.Buffer
	o := simOptions{protocol: "sym-dam", kind: "cycle", n: 10, seed: 7, jsonPath: "-"}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	rec, err := dip.DecodeWireReport(strings.NewReader(text[strings.Index(text, "{"):]))
	if err != nil {
		t.Fatal(err)
	}
	edges := make([][2]int, 10)
	for i := 0; i < 10; i++ {
		edges[i] = [2]int{i, (i + 1) % 10}
	}
	rep, err := dip.Run(dip.Request{Protocol: "sym-dam", N: 10, Edges: edges, Options: dip.Options{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	want := dip.WireReportFrom(rep, 7)
	if rec.Accepted != want.Accepted || rec.MaxProverBits != want.MaxProverBits ||
		rec.TotalProverBits != want.TotalProverBits || rec.MaxNode != want.MaxNode {
		t.Fatalf("dipsim document %+v disagrees with dip.Run %+v", rec, want)
	}
	a, _ := json.Marshal(rec.PerRound)
	b, _ := json.Marshal(want.PerRound)
	if !bytes.Equal(a, b) {
		t.Fatalf("per-round breakdowns differ: %s vs %s", a, b)
	}
}

// TestRunWithFault drives the -fault path: an honest sym-dam run with
// every prover message bit-flipped must be rejected, and the JSON record
// must carry the fault configuration.
func TestRunWithFault(t *testing.T) {
	var out bytes.Buffer
	o := simOptions{protocol: "sym-dam", kind: "doubled", n: 14, seed: 1, jsonPath: "-",
		fault: "bitflip", faultPlane: "prover", faultProb: 1}
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "fault: bitflip on prover plane") {
		t.Fatalf("fault banner missing:\n%s", text)
	}
	rec, err := dip.DecodeWireReport(strings.NewReader(text[strings.Index(text, "{"):]))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accepted {
		t.Fatal("bit-flipped sym-dam run was accepted")
	}
	if len(rec.RejectingNodes) == 0 {
		t.Fatalf("rejected run lists no rejecting nodes: %+v", rec)
	}
	if rec.Fault != "bitflip" || rec.FaultPlane != "prover" || rec.FaultProb != 1 {
		t.Fatalf("fault fields not recorded: %+v", rec)
	}
}

// TestRunRejectsBadFaultFlags covers the -fault validation paths.
func TestRunRejectsBadFaultFlags(t *testing.T) {
	cases := []struct {
		name string
		o    simOptions
		want string
	}{
		{"unknown class", simOptions{fault: "gamma-ray"}, "unknown fault class"},
		{"unknown plane", simOptions{fault: "bitflip", faultPlane: "carrier"}, "unknown fault plane"},
		{"unsupported plane", simOptions{fault: "nodeswap", faultPlane: "exchange"}, "does not support"},
		{"bad prob", simOptions{fault: "bitflip", faultPlane: "prover", faultProb: 2}, "outside [0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.o.protocol = "sym-dam"
			tc.o.kind = "doubled"
			tc.o.n = 14
			tc.o.seed = 1
			var out bytes.Buffer
			err := run(tc.o, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run returned %v, want error containing %q", err, tc.want)
			}
		})
	}
}
