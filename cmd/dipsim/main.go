// Command dipsim runs a single interactive distributed proof on a single
// generated graph and prints the outcome and the exact per-node
// communication cost, including the per-round breakdown at the
// worst-cost node.
//
// Usage:
//
//	dipsim -protocol sym-dmam -graph doubled -n 16
//	dipsim -protocol sym-dam  -graph cycle   -n 12
//	dipsim -protocol dsym-dam -side 8 -half 2
//	dipsim -protocol gni      -n 6 -k 30
//	dipsim -protocol gni-marked -n 6 -k 30
//	dipsim -protocol sym-lcp  -graph doubled -n 20
//	dipsim -protocol gni -n 6 -json -        # machine-readable result
//	dipsim -protocol sym-dam -fault bitflip  # corrupt prover messages
//	dipsim -protocol sym-dam -fault equivocate -fault-plane exchange
//
// -fault injects a fault class from internal/faults into the honest run
// (bitflip, truncate, drop, replay, nodeswap, equivocate); -fault-plane
// picks the corrupted plane (prover = prover→node deliveries, exchange =
// node→node copies) and -fault-prob the per-delivery injection
// probability. The fault schedule derives from -seed, so a faulted run is
// exactly reproducible.
//
// Graph kinds for the Sym protocols: cycle, complete, star, path, doubled
// (a random rigid graph and its mirror joined by a bridge — always
// symmetric; requires an even -n ≥ 14), asymmetric (a random rigid graph
// — never symmetric; requires -n ≥ 6).
//
// -json writes a versioned JSON record of the run to the given path
// ("-" for stdout) alongside the human-readable report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"dip/internal/core"
	"dip/internal/experiments"
	"dip/internal/faults"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/obs"
	"dip/internal/wire"
)

func main() {
	opts := parseFlags(os.Args[1:])
	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dipsim:", err)
		os.Exit(1)
	}
}

// simOptions carries the parsed command line; separated from flag
// parsing so tests can drive run() directly.
type simOptions struct {
	protocol string
	kind     string
	n        int
	side     int
	half     int
	k        int
	seed     int64
	verbose  bool
	jsonPath string

	fault      string
	faultPlane string
	faultProb  float64
}

func parseFlags(args []string) simOptions {
	var o simOptions
	fs := flag.NewFlagSet("dipsim", flag.ExitOnError)
	fs.StringVar(&o.protocol, "protocol", "sym-dmam", "sym-dmam | sym-dam | dsym-dam | gni | gni-marked | sym-lcp | gni-lcp")
	fs.StringVar(&o.kind, "graph", "doubled", "cycle | complete | star | path | doubled | asymmetric")
	fs.IntVar(&o.n, "n", 16, "graph size (total vertices; doubled needs an even n >= 14, asymmetric n >= 6)")
	fs.IntVar(&o.side, "side", 8, "DSym: vertices per dumbbell side")
	fs.IntVar(&o.half, "half", 1, "DSym: half-length of the connecting path")
	fs.IntVar(&o.k, "k", core.DefaultGNIRepetitions, "GNI: parallel repetitions")
	fs.Int64Var(&o.seed, "seed", 1, "reproducibility seed")
	fs.BoolVar(&o.verbose, "v", false, "print the full message transcript")
	fs.StringVar(&o.jsonPath, "json", "", "write a machine-readable result to this path ('-' for stdout)")
	fs.StringVar(&o.fault, "fault", "", "inject a fault class (bitflip | truncate | drop | replay | nodeswap | equivocate)")
	fs.StringVar(&o.faultPlane, "fault-plane", "prover", "plane to corrupt: prover | exchange")
	fs.Float64Var(&o.faultProb, "fault-prob", 1, "per-delivery injection probability in [0, 1]")
	fs.Parse(args)
	return o
}

// simRecord is the versioned machine-readable record of a single run.
type simRecord struct {
	Schema    string                   `json:"schema"`
	Protocol  string                   `json:"protocol"`
	Graph     string                   `json:"graph"`
	Nodes     int                      `json:"nodes"`
	Seed      int64                    `json:"seed"`
	Accepted  bool                     `json:"accepted"`
	Rejecting int                      `json:"rejecting_nodes"`
	Cost      *experiments.CostSummary `json:"cost"`
	// Fault/FaultPlane/FaultProb record the -fault flags when a fault was
	// injected into the run.
	Fault      string  `json:"fault,omitempty"`
	FaultPlane string  `json:"fault_plane,omitempty"`
	FaultProb  float64 `json:"fault_prob,omitempty"`
	// Deliveries/DeliveredBits are the engine's delivery meters for this
	// run (every message through the delivery funnel on all planes, and
	// their honest pre-corruption bits). Both are pure functions of the
	// run, so they stay in the reproducible record.
	Deliveries    int64 `json:"deliveries"`
	DeliveredBits int64 `json:"delivered_bits"`
}

// simSchema versions the -json output of dipsim.
const simSchema = "dip-sim/v1"

func run(o simOptions, stdout io.Writer) error {
	rng := rand.New(rand.NewSource(o.seed))
	opts := network.Options{Seed: o.seed, RecordTranscript: o.verbose}

	// runNet wires the optional fault injector into the engine options;
	// the graph size is only known here, per protocol branch.
	runNet := func(spec *network.Spec, g *graph.Graph, inputs []wire.Message, p network.Prover) (*network.Result, error) {
		ro := opts
		if o.fault != "" {
			if o.faultProb < 0 || o.faultProb > 1 {
				return nil, fmt.Errorf("-fault-prob %v outside [0, 1]", o.faultProb)
			}
			class, ok := faults.ByName(o.fault)
			if !ok {
				return nil, fmt.Errorf("unknown fault class %q (have %v)", o.fault, faults.Names())
			}
			plane := faults.Plane(o.faultPlane)
			if plane != faults.PlaneProver && plane != faults.PlaneExchange {
				return nil, fmt.Errorf("unknown fault plane %q (want prover or exchange)", o.faultPlane)
			}
			if !class.Supports(plane) {
				return nil, fmt.Errorf("fault class %q does not support the %s plane", o.fault, plane)
			}
			inj := class.New()
			if o.faultProb < 1 {
				inj = faults.WithProbability(o.faultProb, inj)
			}
			if plane == faults.PlaneProver {
				ro.Corrupt = faults.Corruptor(o.seed, g.N(), inj)
			} else {
				ro.CorruptExchange = faults.ExchangeCorruptor(o.seed, g.N(), inj)
			}
			fmt.Fprintf(stdout, "fault: %s on %s plane, probability %v\n", o.fault, plane, o.faultProb)
		}
		return network.Run(spec, g, inputs, p, ro)
	}

	var res *network.Result
	var err error
	graphDesc := ""
	nodes := 0
	switch o.protocol {
	case "sym-dmam", "sym-dam", "sym-lcp":
		g, gerr := makeGraph(o.kind, o.n, rng)
		if gerr != nil {
			return gerr
		}
		nodes = g.N()
		graphDesc = fmt.Sprintf("%s (%d vertices, %d edges)", o.kind, g.N(), g.NumEdges())
		fmt.Fprintf(stdout, "graph: %s\n", graphDesc)
		switch o.protocol {
		case "sym-dmam":
			proto, perr := core.NewSymDMAM(g.N(), o.seed)
			if perr != nil {
				return perr
			}
			res, err = runNet(proto.Spec(), g, nil, proto.HonestProver())
		case "sym-dam":
			proto, perr := core.NewSymDAM(g.N(), o.seed)
			if perr != nil {
				return perr
			}
			res, err = runNet(proto.Spec(), g, nil, proto.HonestProver())
		case "sym-lcp":
			proto, perr := core.NewSymLCP(g.N())
			if perr != nil {
				return perr
			}
			res, err = runNet(proto.Spec(), g, nil, proto.HonestProver())
		}
	case "dsym-dam":
		f := graph.ConnectedGNP(o.side, 0.5, rng)
		g := graph.DSymGraph(f, o.half)
		nodes = g.N()
		graphDesc = fmt.Sprintf("DSym dumbbell (side %d, path half-length %d, %d vertices)",
			o.side, o.half, g.N())
		fmt.Fprintf(stdout, "graph: %s\n", graphDesc)
		proto, perr := core.NewDSymDAM(o.side, o.half, o.seed)
		if perr != nil {
			return perr
		}
		res, err = runNet(proto.Spec(), g, nil, proto.HonestProver())
	case "gni", "gni-lcp":
		inst, ierr := core.NewGNIYesInstance(o.n, rng)
		if ierr != nil {
			return ierr
		}
		nodes = inst.G0.N()
		graphDesc = fmt.Sprintf("two non-isomorphic rigid graphs on %d vertices", o.n)
		fmt.Fprintf(stdout, "instance: %s\n", graphDesc)
		if o.protocol == "gni" {
			proto, perr := core.NewGNIDAMAM(o.n, o.k, o.seed)
			if perr != nil {
				return perr
			}
			fmt.Fprintf(stdout, "repetitions: %d (threshold %d)\n", proto.K(), proto.Threshold())
			res, err = runNet(proto.Spec(), inst.G0, core.EncodeGNIInputs(inst.G1),
				proto.HonestProver())
		} else {
			proto, perr := core.NewGNILCP(o.n)
			if perr != nil {
				return perr
			}
			res, err = runNet(proto.Spec(), inst.G0, core.EncodeGNIInputs(inst.G1),
				proto.HonestProver())
		}
	case "gni-marked":
		a, aerr := graph.RandomAsymmetricConnected(o.n, rng)
		if aerr != nil {
			return aerr
		}
		var b *graph.Graph
		for {
			var berr error
			if b, berr = graph.RandomAsymmetricConnected(o.n, rng); berr != nil {
				return berr
			}
			if !graph.AreIsomorphic(a, b) {
				break
			}
		}
		b, _ = b.Shuffle(rng)
		const hubs = 3
		total := 2*o.n + hubs
		g := graph.New(total)
		marks := make([]core.Mark, total)
		for v := 0; v < o.n; v++ {
			marks[v] = core.MarkZero
			marks[v+o.n] = core.MarkOne
		}
		for v := 2 * o.n; v < total; v++ {
			marks[v] = core.MarkNone
		}
		for _, e := range a.Edges() {
			g.AddEdge(e[0], e[1])
		}
		for _, e := range b.Edges() {
			g.AddEdge(e[0]+o.n, e[1]+o.n)
		}
		for v := 0; v < 2*o.n; v++ {
			g.AddEdge(v, 2*o.n+v%hubs)
		}
		for h := 1; h < hubs; h++ {
			g.AddEdge(2*o.n, 2*o.n+h)
		}
		nodes = total
		graphDesc = fmt.Sprintf("%d-node network, two rigid non-isomorphic induced %d-vertex subgraphs",
			total, o.n)
		fmt.Fprintf(stdout, "instance: %s\n", graphDesc)
		proto, perr := core.NewMarkedGNI(total, o.n, o.k, o.seed)
		if perr != nil {
			return perr
		}
		fmt.Fprintf(stdout, "repetitions: %d (threshold %d)\n", proto.Reps(), proto.Threshold())
		inputs, ierr := core.EncodeMarks(marks)
		if ierr != nil {
			return ierr
		}
		res, err = runNet(proto.Spec(), g, inputs, proto.HonestProver())
	default:
		return fmt.Errorf("unknown protocol %q", o.protocol)
	}
	if err != nil {
		return err
	}

	rejecting := 0
	for _, d := range res.Decisions {
		if !d {
			rejecting++
		}
	}
	cost := experiments.SummarizeCost(&res.Cost)
	// dipsim performs exactly one engine run per invocation, so the
	// process-global delivery meters are this run's meters.
	meters := obs.Snapshot()

	fmt.Fprintf(stdout, "accepted: %v\n", res.Accepted)
	fmt.Fprintf(stdout, "rejecting nodes: %d / %d\n", rejecting, len(res.Decisions))
	fmt.Fprintf(stdout, "max prover bits per node: %d\n", cost.MaxProverBits)
	fmt.Fprintf(stdout, "total prover bits:        %d\n", cost.TotalProverBits)
	fmt.Fprintf(stdout, "max node-to-node bits:    %d\n", cost.MaxNodeToNodeBits)
	fmt.Fprintf(stdout, "deliveries: %d (%d bits through the engine funnel)\n",
		meters.Deliveries, meters.DeliveredBits)
	fmt.Fprintf(stdout, "per-round bits at node %d (the max-cost node):\n", cost.MaxNode)
	for ri, r := range cost.PerRound {
		fmt.Fprintf(stdout, "  round %d (%s): to prover %d, from prover %d, to neighbors %d\n",
			ri, r.Kind, r.ToProver, r.FromProver, r.NodeToNode)
	}
	if o.verbose && res.Transcript != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, res.Transcript)
	}

	if o.jsonPath != "" {
		rec := simRecord{
			Schema:    simSchema,
			Protocol:  o.protocol,
			Graph:     graphDesc,
			Nodes:     nodes,
			Seed:      o.seed,
			Accepted:  res.Accepted,
			Rejecting: rejecting,
			Cost:      cost,
		}
		if o.fault != "" {
			rec.Fault = o.fault
			rec.FaultPlane = o.faultPlane
			rec.FaultProb = o.faultProb
		}
		rec.Deliveries = meters.Deliveries
		rec.DeliveredBits = meters.DeliveredBits
		data, merr := json.MarshalIndent(&rec, "", "  ")
		if merr != nil {
			return merr
		}
		data = append(data, '\n')
		if o.jsonPath == "-" {
			_, werr := stdout.Write(data)
			return werr
		}
		if werr := os.WriteFile(o.jsonPath, data, 0o644); werr != nil {
			return werr
		}
	}
	return nil
}

// makeGraph builds the network graph for the Sym protocols. For the
// random kinds it validates n instead of silently resizing: "doubled"
// graphs have 2·base+2 vertices with a rigid core of base ≥ 6 vertices,
// so n must be even and at least 14 (and then g.N() == n exactly);
// "asymmetric" needs n ≥ 6 (no rigid graph exists below that).
func makeGraph(kind string, n int, rng *rand.Rand) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "star":
		return graph.Star(n), nil
	case "path":
		return graph.Path(n), nil
	case "doubled":
		if n < 14 || n%2 != 0 {
			return nil, fmt.Errorf("graph kind %q needs an even size of at least 14 (2·base+2 with a rigid base of >= 6 vertices), got -n %d", kind, n)
		}
		core, err := graph.RandomAsymmetricConnected((n-2)/2, rng)
		if err != nil {
			return nil, err
		}
		return graph.Doubled(core, 0), nil
	case "asymmetric":
		if n < 6 {
			return nil, fmt.Errorf("graph kind %q needs a size of at least 6 (no rigid connected graph is smaller), got -n %d", kind, n)
		}
		return graph.RandomAsymmetricConnected(n, rng)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}
