// Command dipsim runs a single interactive distributed proof on a single
// generated graph and prints the outcome and the exact per-node
// communication cost.
//
// Usage:
//
//	dipsim -protocol sym-dmam -graph doubled -n 16
//	dipsim -protocol sym-dam  -graph cycle   -n 12
//	dipsim -protocol dsym-dam -side 8 -half 2
//	dipsim -protocol gni      -n 6 -k 30
//	dipsim -protocol gni-marked -n 6 -k 30
//	dipsim -protocol sym-lcp  -graph doubled -n 20
//
// Graph kinds for the Sym protocols: cycle, complete, star, path, doubled
// (a random rigid graph and its mirror joined by a bridge — always
// symmetric), asymmetric (a random rigid graph — never symmetric).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dipsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protocol = flag.String("protocol", "sym-dmam", "sym-dmam | sym-dam | dsym-dam | gni | gni-marked | sym-lcp | gni-lcp")
		kind     = flag.String("graph", "doubled", "cycle | complete | star | path | doubled | asymmetric")
		n        = flag.Int("n", 16, "graph size (total vertices; for doubled/asymmetric the rigid core is sized to match)")
		side     = flag.Int("side", 8, "DSym: vertices per dumbbell side")
		half     = flag.Int("half", 1, "DSym: half-length of the connecting path")
		k        = flag.Int("k", 30, "GNI: parallel repetitions")
		seed     = flag.Int64("seed", 1, "reproducibility seed")
		verbose  = flag.Bool("v", false, "print the full message transcript")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	opts := network.Options{Seed: *seed, RecordTranscript: *verbose}

	var res *network.Result
	var err error
	switch *protocol {
	case "sym-dmam", "sym-dam", "sym-lcp":
		g, gerr := makeGraph(*kind, *n, rng)
		if gerr != nil {
			return gerr
		}
		fmt.Printf("graph: %s (%d vertices, %d edges)\n", *kind, g.N(), g.NumEdges())
		switch *protocol {
		case "sym-dmam":
			proto, perr := core.NewSymDMAM(g.N(), *seed)
			if perr != nil {
				return perr
			}
			res, err = network.Run(proto.Spec(), g, nil, proto.HonestProver(), opts)
		case "sym-dam":
			proto, perr := core.NewSymDAM(g.N(), *seed)
			if perr != nil {
				return perr
			}
			res, err = network.Run(proto.Spec(), g, nil, proto.HonestProver(), opts)
		case "sym-lcp":
			proto, perr := core.NewSymLCP(g.N())
			if perr != nil {
				return perr
			}
			res, err = network.Run(proto.Spec(), g, nil, proto.HonestProver(), opts)
		}
	case "dsym-dam":
		f := graph.ConnectedGNP(*side, 0.5, rng)
		g := graph.DSymGraph(f, *half)
		fmt.Printf("graph: DSym dumbbell (side %d, path half-length %d, %d vertices)\n",
			*side, *half, g.N())
		proto, perr := core.NewDSymDAM(*side, *half, *seed)
		if perr != nil {
			return perr
		}
		res, err = network.Run(proto.Spec(), g, nil, proto.HonestProver(), opts)
	case "gni", "gni-lcp":
		inst, ierr := core.NewGNIYesInstance(*n, rng)
		if ierr != nil {
			return ierr
		}
		fmt.Printf("instance: two non-isomorphic rigid graphs on %d vertices\n", *n)
		if *protocol == "gni" {
			proto, perr := core.NewGNIDAMAM(*n, *k, *seed)
			if perr != nil {
				return perr
			}
			fmt.Printf("repetitions: %d (threshold %d)\n", proto.K(), proto.Threshold())
			res, err = network.Run(proto.Spec(), inst.G0, core.EncodeGNIInputs(inst.G1),
				proto.HonestProver(), opts)
		} else {
			proto, perr := core.NewGNILCP(*n)
			if perr != nil {
				return perr
			}
			res, err = network.Run(proto.Spec(), inst.G0, core.EncodeGNIInputs(inst.G1),
				proto.HonestProver(), opts)
		}
	case "gni-marked":
		a, aerr := graph.RandomAsymmetricConnected(*n, rng)
		if aerr != nil {
			return aerr
		}
		var b *graph.Graph
		for {
			var berr error
			if b, berr = graph.RandomAsymmetricConnected(*n, rng); berr != nil {
				return berr
			}
			if !graph.AreIsomorphic(a, b) {
				break
			}
		}
		b, _ = b.Shuffle(rng)
		const hubs = 3
		total := 2*(*n) + hubs
		g := graph.New(total)
		marks := make([]core.Mark, total)
		for v := 0; v < *n; v++ {
			marks[v] = core.MarkZero
			marks[v+*n] = core.MarkOne
		}
		for v := 2 * (*n); v < total; v++ {
			marks[v] = core.MarkNone
		}
		for _, e := range a.Edges() {
			g.AddEdge(e[0], e[1])
		}
		for _, e := range b.Edges() {
			g.AddEdge(e[0]+*n, e[1]+*n)
		}
		for v := 0; v < 2*(*n); v++ {
			g.AddEdge(v, 2*(*n)+v%hubs)
		}
		for h := 1; h < hubs; h++ {
			g.AddEdge(2*(*n), 2*(*n)+h)
		}
		fmt.Printf("instance: %d-node network, two rigid non-isomorphic induced %d-vertex subgraphs\n",
			total, *n)
		proto, perr := core.NewMarkedGNI(total, *n, *k, *seed)
		if perr != nil {
			return perr
		}
		fmt.Printf("repetitions: %d (threshold %d)\n", proto.Reps(), proto.Threshold())
		inputs, ierr := core.EncodeMarks(marks)
		if ierr != nil {
			return ierr
		}
		res, err = network.Run(proto.Spec(), g, inputs, proto.HonestProver(), opts)
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	if err != nil {
		return err
	}

	fmt.Printf("accepted: %v\n", res.Accepted)
	rejecting := 0
	for _, d := range res.Decisions {
		if !d {
			rejecting++
		}
	}
	fmt.Printf("rejecting nodes: %d / %d\n", rejecting, len(res.Decisions))
	fmt.Printf("max prover bits per node: %d\n", res.Cost.MaxProverBits())
	fmt.Printf("total prover bits:        %d\n", res.Cost.TotalProverBits())
	fmt.Printf("max node-to-node bits:    %d\n", res.Cost.MaxNodeToNodeBits())
	if *verbose && res.Transcript != nil {
		fmt.Println()
		fmt.Print(res.Transcript)
	}
	return nil
}

func makeGraph(kind string, n int, rng *rand.Rand) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "star":
		return graph.Star(n), nil
	case "path":
		return graph.Path(n), nil
	case "doubled":
		base := (n - 2) / 2
		if base < 6 {
			base = 6
		}
		core, err := graph.RandomAsymmetricConnected(base, rng)
		if err != nil {
			return nil, err
		}
		return graph.Doubled(core, 0), nil
	case "asymmetric":
		if n < 6 {
			n = 6
		}
		return graph.RandomAsymmetricConnected(n, rng)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}
