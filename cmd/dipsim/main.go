// Command dipsim runs a single interactive distributed proof on a single
// generated graph and prints the outcome and the exact per-node
// communication cost, including the per-round breakdown at the
// worst-cost node.
//
// Usage:
//
//	dipsim -protocol sym-dmam -graph doubled -n 16
//	dipsim -protocol sym-dam  -graph cycle   -n 12
//	dipsim -protocol dsym-dam -side 8 -half 2
//	dipsim -protocol gni      -n 6 -k 30
//	dipsim -protocol gni-marked -n 6 -k 30
//	dipsim -protocol sym-lcp  -graph doubled -n 20
//	dipsim -protocol gni -n 6 -json -        # machine-readable result
//	dipsim -protocol sym-dam -fault bitflip  # corrupt prover messages
//	dipsim -protocol sym-dam -fault equivocate -fault-plane exchange
//	dipsim -protocol sym-dmam -peers 127.0.0.1:7001,127.0.0.1:7002
//
// -peers runs the verifier nodes on a fleet of dippeer processes (one TCP
// connection per peer, nodes assigned round-robin, one session per run)
// through the public dip.DialFleet API — dipsim does no placement wiring
// of its own. The engine's funnel — validation, cost accounting, fault
// injection — stays in the coordinator, so a -peers run is bit-identical
// to the in-process run of the same instance and seed, faults included.
//
// dipsim builds a dip.Request for the chosen instance and — in the plain
// case — executes it through dip.Run, the same entry point library users
// and cmd/dipserve go through. The -fault and -v paths need engine knobs
// the public API deliberately does not expose (delivery corruption,
// transcript recording), so they drive the engine directly on the same
// instance and shape the result into the same Report.
//
// -fault injects a fault class from internal/faults into the honest run
// (bitflip, truncate, drop, replay, nodeswap, equivocate); -fault-plane
// picks the corrupted plane (prover = prover→node deliveries, exchange =
// node→node copies) and -fault-prob the per-delivery injection
// probability. The fault schedule derives from -seed, so a faulted run is
// exactly reproducible.
//
// Graph kinds for the Sym protocols: cycle, complete, star, path, doubled
// (a random rigid graph and its mirror joined by a bridge — always
// symmetric; requires an even -n ≥ 14), asymmetric (a random rigid graph
// — never symmetric; requires -n ≥ 6).
//
// -json writes the run as a dip-report/v1 document to the given path
// ("-" for stdout) alongside the human-readable report, with the graph
// description, fault configuration and delivery meters attached as
// provenance.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"dip"
	"dip/internal/core"
	"dip/internal/faults"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/obs"
	"dip/internal/wire"
)

func main() {
	opts := parseFlags(os.Args[1:])
	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dipsim:", err)
		os.Exit(1)
	}
}

// simOptions carries the parsed command line; separated from flag
// parsing so tests can drive run() directly.
type simOptions struct {
	protocol string
	kind     string
	n        int
	side     int
	half     int
	k        int
	seed     int64
	verbose  bool
	jsonPath string
	peers    string

	fault      string
	faultPlane string
	faultProb  float64
}

func parseFlags(args []string) simOptions {
	var o simOptions
	fs := flag.NewFlagSet("dipsim", flag.ExitOnError)
	fs.StringVar(&o.protocol, "protocol", "sym-dmam", "sym-dmam | sym-dam | sym-rpls | dsym-dam | gni | gni-marked | sym-lcp | gni-lcp")
	fs.StringVar(&o.kind, "graph", "doubled", "cycle | complete | star | path | doubled | asymmetric")
	fs.IntVar(&o.n, "n", 16, "graph size (total vertices; doubled needs an even n >= 14, asymmetric n >= 6)")
	fs.IntVar(&o.side, "side", 8, "DSym: vertices per dumbbell side")
	fs.IntVar(&o.half, "half", 1, "DSym: half-length of the connecting path")
	fs.IntVar(&o.k, "k", core.DefaultGNIRepetitions, "GNI: parallel repetitions")
	fs.Int64Var(&o.seed, "seed", 1, "reproducibility seed")
	fs.BoolVar(&o.verbose, "v", false, "print the full message transcript")
	fs.StringVar(&o.jsonPath, "json", "", "write a dip-report/v1 document to this path ('-' for stdout)")
	fs.StringVar(&o.peers, "peers", "", "comma-separated dippeer addresses: run the verifier nodes on that fleet instead of in-process")
	fs.StringVar(&o.fault, "fault", "", "inject a fault class (bitflip | truncate | drop | replay | nodeswap | equivocate)")
	fs.StringVar(&o.faultPlane, "fault-plane", "prover", "plane to corrupt: prover | exchange")
	fs.Float64Var(&o.faultProb, "fault-prob", 1, "per-delivery injection probability in [0, 1]")
	fs.Parse(args)
	return o
}

// instance is one generated problem instance in both forms dipsim needs:
// the dip.Request the public API executes, and the engine artifacts
// (spec, graph, inputs, prover) the fault/transcript path drives directly.
// Both describe the same run: the request's edge lists are read off the
// very graphs the engine path uses.
type instance struct {
	label  string // "graph" for single-graph protocols, "instance" for GNI
	desc   string
	req    dip.Request
	spec   *network.Spec
	g      *graph.Graph
	inputs []wire.Message
	prover network.Prover
}

// buildInstance generates the instance for the chosen protocol. The "gni"
// spelling is kept as an alias for the registry's canonical "gni-damam".
func buildInstance(o simOptions, rng *rand.Rand) (*instance, error) {
	switch o.protocol {
	case "sym-dmam", "sym-dam", "sym-rpls", "sym-lcp":
		g, err := makeGraph(o.kind, o.n, rng)
		if err != nil {
			return nil, err
		}
		inst := &instance{
			label: "graph",
			desc:  fmt.Sprintf("%s (%d vertices, %d edges)", o.kind, g.N(), g.NumEdges()),
			req: dip.Request{
				Protocol: o.protocol,
				N:        g.N(),
				Edges:    g.Edges(),
				Options:  dip.Options{Seed: o.seed},
			},
			g: g,
		}
		switch o.protocol {
		case "sym-dmam":
			proto, perr := core.NewSymDMAM(g.N(), o.seed)
			if perr != nil {
				return nil, perr
			}
			inst.spec, inst.prover = proto.Spec(), proto.HonestProver()
		case "sym-dam":
			proto, perr := core.NewSymDAM(g.N(), o.seed)
			if perr != nil {
				return nil, perr
			}
			inst.spec, inst.prover = proto.Spec(), proto.HonestProver()
		case "sym-rpls":
			proto, perr := core.NewSymRPLS(g.N(), o.seed)
			if perr != nil {
				return nil, perr
			}
			inst.spec, inst.prover = proto.Spec(), proto.HonestProver()
		case "sym-lcp":
			proto, perr := core.NewSymLCP(g.N())
			if perr != nil {
				return nil, perr
			}
			inst.spec, inst.prover = proto.Spec(), proto.HonestProver()
		}
		return inst, nil

	case "dsym-dam":
		f := graph.ConnectedGNP(o.side, 0.5, rng)
		g := graph.DSymGraph(f, o.half)
		proto, perr := core.NewDSymDAM(o.side, o.half, o.seed)
		if perr != nil {
			return nil, perr
		}
		return &instance{
			label: "graph",
			desc: fmt.Sprintf("DSym dumbbell (side %d, path half-length %d, %d vertices)",
				o.side, o.half, g.N()),
			req: dip.Request{
				Protocol: "dsym-dam",
				Side:     o.side,
				Half:     o.half,
				Edges:    g.Edges(),
				Options:  dip.Options{Seed: o.seed},
			},
			g:      g,
			spec:   proto.Spec(),
			prover: proto.HonestProver(),
		}, nil

	case "gni", "gni-lcp":
		yes, ierr := core.NewGNIYesInstance(o.n, rng)
		if ierr != nil {
			return nil, ierr
		}
		inst := &instance{
			label:  "instance",
			desc:   fmt.Sprintf("two non-isomorphic rigid graphs on %d vertices", o.n),
			g:      yes.G0,
			inputs: core.EncodeGNIInputs(yes.G1),
		}
		if o.protocol == "gni" {
			proto, perr := core.NewGNIDAMAM(o.n, o.k, o.seed)
			if perr != nil {
				return nil, perr
			}
			inst.spec, inst.prover = proto.Spec(), proto.HonestProver()
			inst.req = dip.Request{
				Protocol: "gni-damam",
				N:        o.n,
				Edges:    yes.G0.Edges(),
				Edges1:   yes.G1.Edges(),
				Options:  dip.Options{Seed: o.seed, Repetitions: o.k},
			}
		} else {
			proto, perr := core.NewGNILCP(o.n)
			if perr != nil {
				return nil, perr
			}
			inst.spec, inst.prover = proto.Spec(), proto.HonestProver()
			inst.req = dip.Request{
				Protocol: "gni-lcp",
				N:        o.n,
				Edges:    yes.G0.Edges(),
				Edges1:   yes.G1.Edges(),
				Options:  dip.Options{Seed: o.seed},
			}
		}
		return inst, nil

	case "gni-marked":
		a, aerr := graph.RandomAsymmetricConnected(o.n, rng)
		if aerr != nil {
			return nil, aerr
		}
		var b *graph.Graph
		for {
			var berr error
			if b, berr = graph.RandomAsymmetricConnected(o.n, rng); berr != nil {
				return nil, berr
			}
			if !graph.AreIsomorphic(a, b) {
				break
			}
		}
		b, _ = b.Shuffle(rng)
		const hubs = 3
		total := 2*o.n + hubs
		g := graph.New(total)
		marks := make([]core.Mark, total)
		intMarks := make([]int, total)
		for v := 0; v < o.n; v++ {
			marks[v], intMarks[v] = core.MarkZero, 0
			marks[v+o.n], intMarks[v+o.n] = core.MarkOne, 1
		}
		for v := 2 * o.n; v < total; v++ {
			marks[v], intMarks[v] = core.MarkNone, -1
		}
		for _, e := range a.Edges() {
			g.AddEdge(e[0], e[1])
		}
		for _, e := range b.Edges() {
			g.AddEdge(e[0]+o.n, e[1]+o.n)
		}
		for v := 0; v < 2*o.n; v++ {
			g.AddEdge(v, 2*o.n+v%hubs)
		}
		for h := 1; h < hubs; h++ {
			g.AddEdge(2*o.n, 2*o.n+h)
		}
		proto, perr := core.NewMarkedGNI(total, o.n, o.k, o.seed)
		if perr != nil {
			return nil, perr
		}
		inputs, ierr := core.EncodeMarks(marks)
		if ierr != nil {
			return nil, ierr
		}
		return &instance{
			label: "instance",
			desc: fmt.Sprintf("%d-node network, two rigid non-isomorphic induced %d-vertex subgraphs",
				total, o.n),
			req: dip.Request{
				Protocol: "gni-marked",
				N:        total,
				Edges:    g.Edges(),
				Marks:    intMarks,
				Options:  dip.Options{Seed: o.seed, Repetitions: o.k},
			},
			g:      g,
			spec:   proto.Spec(),
			inputs: inputs,
			prover: proto.HonestProver(),
		}, nil

	default:
		return nil, fmt.Errorf("unknown protocol %q", o.protocol)
	}
}

// dialFleet connects to the -peers fleet through the public API — dipsim
// carries no private placement wiring of its own.
func dialFleet(o simOptions, stdout io.Writer) (*dip.Fleet, error) {
	addrs := strings.Split(o.peers, ",")
	fleet, err := dip.DialFleet(addrs, dip.FleetOptions{})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "peers: %d-process fleet\n", len(addrs))
	return fleet, nil
}

// runEngine drives the engine directly for the paths dip.Run does not
// expose: fault injection, transcript recording, and peer fleets
// combined with either.
func runEngine(o simOptions, inst *instance, fleet *dip.Fleet, stdout io.Writer) (*network.Result, error) {
	ro := network.Options{Seed: o.seed, RecordTranscript: o.verbose}
	if fleet != nil {
		coord, err := fleet.EngineTransport(inst.req)
		if err != nil {
			return nil, err
		}
		ro.Transport = coord
	}
	if o.fault != "" {
		if o.faultProb < 0 || o.faultProb > 1 {
			return nil, fmt.Errorf("-fault-prob %v outside [0, 1]", o.faultProb)
		}
		class, ok := faults.ByName(o.fault)
		if !ok {
			return nil, fmt.Errorf("unknown fault class %q (have %v)", o.fault, faults.Names())
		}
		plane := faults.Plane(o.faultPlane)
		if plane != faults.PlaneProver && plane != faults.PlaneExchange {
			return nil, fmt.Errorf("unknown fault plane %q (want prover or exchange)", o.faultPlane)
		}
		if !class.Supports(plane) {
			return nil, fmt.Errorf("fault class %q does not support the %s plane", o.fault, plane)
		}
		inj := class.New()
		if o.faultProb < 1 {
			inj = faults.WithProbability(o.faultProb, inj)
		}
		if plane == faults.PlaneProver {
			ro.Corrupt = faults.Corruptor(o.seed, inst.g.N(), inj)
		} else {
			ro.CorruptExchange = faults.ExchangeCorruptor(o.seed, inst.g.N(), inj)
		}
		fmt.Fprintf(stdout, "fault: %s on %s plane, probability %v\n", o.fault, plane, o.faultProb)
	}
	return network.Run(inst.spec, inst.g, inst.inputs, inst.prover, ro)
}

func run(o simOptions, stdout io.Writer) error {
	rng := rand.New(rand.NewSource(o.seed))
	inst, err := buildInstance(o, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %s\n", inst.label, inst.desc)

	var fleet *dip.Fleet
	if o.peers != "" {
		if fleet, err = dialFleet(o, stdout); err != nil {
			return err
		}
		defer fleet.Close()
	}

	var rep dip.Report
	var res *network.Result
	switch {
	case o.fault == "" && !o.verbose && fleet == nil:
		// The canonical path: exactly what library users and dipserve run.
		rep, err = dip.Run(inst.req)
	case o.fault == "" && !o.verbose:
		// The canonical fleet path: what dipserve -peers runs.
		var prep *dip.Report
		if prep, err = fleet.Run(context.Background(), inst.req); err == nil {
			rep = *prep
		}
	default:
		res, err = runEngine(o, inst, fleet, stdout)
		if err == nil {
			rep = dip.ReportFromResult(inst.req.Protocol, res)
		}
	}
	if err != nil {
		return err
	}

	rejecting := 0
	for _, d := range rep.Decisions {
		if !d {
			rejecting++
		}
	}
	// dipsim performs exactly one engine run per invocation, so the
	// process-global delivery meters are this run's meters.
	meters := obs.Snapshot()

	fmt.Fprintf(stdout, "accepted: %v\n", rep.Accepted)
	fmt.Fprintf(stdout, "rejecting nodes: %d / %d\n", rejecting, len(rep.Decisions))
	fmt.Fprintf(stdout, "max prover bits per node: %d\n", rep.MaxProverBits)
	fmt.Fprintf(stdout, "total prover bits:        %d\n", rep.TotalProverBits)
	fmt.Fprintf(stdout, "max node-to-node bits:    %d\n", rep.MaxNodeToNodeBits)
	fmt.Fprintf(stdout, "deliveries: %d (%d bits through the engine funnel)\n",
		meters.Deliveries, meters.DeliveredBits)
	fmt.Fprintf(stdout, "per-round bits at node %d (the max-cost node):\n", rep.MaxNode)
	for ri, r := range rep.PerRound {
		fmt.Fprintf(stdout, "  round %d (%s): to prover %d, from prover %d, to neighbors %d\n",
			ri, r.Kind, r.ToProver, r.FromProver, r.NodeToNode)
	}
	if o.verbose && res != nil && res.Transcript != nil {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, res.Transcript)
	}

	if o.jsonPath != "" {
		w := dip.WireReportFrom(rep, o.seed)
		w.Graph = inst.desc
		if o.fault != "" {
			w.Fault = o.fault
			w.FaultPlane = o.faultPlane
			w.FaultProb = o.faultProb
		}
		w.Deliveries = meters.Deliveries
		w.DeliveredBits = meters.DeliveredBits
		if err := w.Validate(); err != nil {
			return err
		}
		if o.jsonPath == "-" {
			return w.Encode(stdout)
		}
		var buf bytes.Buffer
		if err := w.Encode(&buf); err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// makeGraph builds the network graph for the Sym protocols. For the
// random kinds it validates n instead of silently resizing: "doubled"
// graphs have 2·base+2 vertices with a rigid core of base ≥ 6 vertices,
// so n must be even and at least 14 (and then g.N() == n exactly);
// "asymmetric" needs n ≥ 6 (no rigid graph exists below that).
func makeGraph(kind string, n int, rng *rand.Rand) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "star":
		return graph.Star(n), nil
	case "path":
		return graph.Path(n), nil
	case "doubled":
		if n < 14 || n%2 != 0 {
			return nil, fmt.Errorf("graph kind %q needs an even size of at least 14 (2·base+2 with a rigid base of >= 6 vertices), got -n %d", kind, n)
		}
		core, err := graph.RandomAsymmetricConnected((n-2)/2, rng)
		if err != nil {
			return nil, err
		}
		return graph.Doubled(core, 0), nil
	case "asymmetric":
		if n < 6 {
			return nil, fmt.Errorf("graph kind %q needs a size of at least 6 (no rigid connected graph is smaller), got -n %d", kind, n)
		}
		return graph.RandomAsymmetricConnected(n, rng)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}
