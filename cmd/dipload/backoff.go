package main

import (
	"net/http"
	"strconv"
	"time"

	"dip/internal/stats"
)

// Admission-overflow retry policy. The old schedule was a fixed linear
// ramp (1ms, 2ms, ... per attempt); under many clients that synchronizes
// retries into waves that hit the freed queue slot together. The
// replacement is the standard shape: exponential growth capped at a
// bound, plus deterministic jitter so two clients with different seeds
// spread out — and derived from the seed so a load run's retry schedule
// reproduces exactly.
const (
	retryBase = time.Millisecond
	retryCap  = 250 * time.Millisecond
)

// retryDelay is the wait before retrying after the attempt-th 503
// (0-based): min(base<<attempt, cap) plus jitter in [0, delay/2) keyed
// by (seed, attempt), floored by the server's Retry-After hint when one
// was given — the server knows its drain horizon better than any
// client-side curve.
func retryDelay(seed int64, attempt int, retryAfter time.Duration) time.Duration {
	d := retryBase
	for i := 0; i < attempt && d < retryCap; i++ {
		d *= 2
	}
	if d > retryCap {
		d = retryCap
	}
	if half := int64(d / 2); half > 0 {
		jitter := stats.DeriveSeed(seed, int64(attempt)) % half
		if jitter < 0 {
			jitter += half
		}
		d += time.Duration(jitter)
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// retryAfterHint parses the response's Retry-After header (the
// delta-seconds form dipserve sends); absent or unparsable hints are 0.
func retryAfterHint(resp *http.Response) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
