// Chaos mode: instead of measuring throughput, dipload turns adversarial.
// It fires -chaos raw-TCP exchanges at the service — each one a
// seed-deterministically chosen faults.HTTPChaos scenario (malformed and
// truncated JSON, oversized uploads, slowloris drips, mid-body
// disconnects, garbage framing) — and then gates on the service's health:
// every answered scenario must earn a structured 4xx/5xx (a 2xx or a
// dropped connection is a hardening violation), and afterwards the
// service must still answer /healthz, hold no in-flight work, and have
// settled back to its baseline goroutine count. The scenario stream is a
// pure function of -seed, so a chaos session reproduces across hosts.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dip"
	"dip/internal/faults"
)

// chaosVitals is the slice of /metrics a chaos session gates on.
type chaosVitals struct {
	goroutines int
	heapBytes  uint64
	inFlight   int64
	queueDepth int64
	// Job-tier gauges: after a session the async backlog must be drained
	// (no pending or in-flight jobs) and nothing may have parked as
	// poison or failed to ack — chaos at the HTTP boundary must never
	// corrupt the durable tier behind it.
	jobDepth    int64
	jobInFlight int64
	jobParked   int64
	jobAckErrs  int64
}

// scenarioTally aggregates one scenario's outcomes across the session.
type scenarioTally struct {
	runs       int
	answered   int // structured 4xx/5xx responses
	violations int // 2xx answers, or no answer where one was owed
	transport  int // dial/transport errors (the service was unreachable)
}

func runChaos(o options) error {
	u, err := url.Parse(o.url)
	if err != nil {
		return fmt.Errorf("parsing -url: %w", err)
	}
	addr := u.Host
	if addr == "" {
		return fmt.Errorf("-url %q has no host:port for raw exchanges", o.url)
	}
	if err := waitReady(o.url, o.wait); err != nil {
		return err
	}

	// A well-formed /v1/run body for scenarios to corrupt: the cycle-graph
	// symmetry instance every load run uses.
	edges := make([][2]int, o.n)
	for i := 0; i < o.n; i++ {
		edges[i] = [2]int{i, (i + 1) % o.n}
	}
	body, err := json.Marshal(dip.Request{
		Protocol: o.protocols[0],
		N:        o.n,
		Edges:    edges,
		Options:  dip.Options{Seed: o.seed},
	})
	if err != nil {
		return err
	}

	before, err := fetchVitals(o.url)
	if err != nil {
		return fmt.Errorf("baseline /metrics: %w", err)
	}

	var (
		mu      sync.Mutex
		tallies = map[string]*scenarioTally{}
		next    atomic.Int64
		wg      sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < o.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(o.chaos) {
					return
				}
				sc, rng := faults.HTTPChaosFor(o.seed, int(i))
				out, err := sc.Run(rng, addr, body)
				mu.Lock()
				t := tallies[sc.Name]
				if t == nil {
					t = &scenarioTally{}
					tallies[sc.Name] = t
				}
				t.runs++
				switch {
				case err != nil:
					t.transport++
				case out.Status >= 400 && out.Status < 600:
					t.answered++
				case sc.WantResponse:
					// A 2xx to garbage, or silence where an answer was
					// owed: the boundary failed to classify the abuse.
					t.violations++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	names := make([]string, 0, len(tallies))
	for name := range tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations, transport int
	fmt.Printf("dipload: chaos: %d exchanges in %v (c=%d, seed %d)\n",
		o.chaos, wall.Round(time.Millisecond), o.clients, o.seed)
	for _, name := range names {
		t := tallies[name]
		fmt.Printf("  %-15s %4d runs  %4d answered 4xx/5xx  %2d violations  %2d transport errors\n",
			name, t.runs, t.answered, t.violations, t.transport)
		violations += t.violations
		transport += t.transport
	}

	// Post-chaos gates. The service must shrug the whole session off:
	// still healthy, nothing stuck in flight, goroutines settled back to
	// the baseline (plus slack for the runtime's own pool), heap not
	// ballooned past any plausible steady state.
	if err := checkHealthy(o.url); err != nil {
		return err
	}
	after, err := settleVitals(o.url, before.goroutines+16, o.wait)
	if err != nil {
		return err
	}
	if after.inFlight != 0 || after.queueDepth != 0 {
		return fmt.Errorf("post-chaos /metrics shows stuck work: in_flight %d, queue_depth %d",
			after.inFlight, after.queueDepth)
	}
	if after.jobDepth != 0 || after.jobInFlight != 0 {
		return fmt.Errorf("post-chaos job tier not drained: backlog %d, in-flight %d",
			after.jobDepth, after.jobInFlight)
	}
	if after.jobParked != 0 || after.jobAckErrs != 0 {
		return fmt.Errorf("post-chaos job tier damaged: %d parked, %d ack errors",
			after.jobParked, after.jobAckErrs)
	}
	const heapSlack = 256 << 20
	if after.heapBytes > before.heapBytes+heapSlack {
		return fmt.Errorf("post-chaos heap %d bytes exceeds baseline %d by more than %d",
			after.heapBytes, before.heapBytes, heapSlack)
	}
	fmt.Printf("dipload: chaos: service healthy after session (goroutines %d -> %d, heap %.1f MiB -> %.1f MiB)\n",
		before.goroutines, after.goroutines,
		float64(before.heapBytes)/(1<<20), float64(after.heapBytes)/(1<<20))

	if violations > 0 {
		return fmt.Errorf("%d hardening violations (2xx or silence where a structured error was owed)", violations)
	}
	if transport > 0 {
		return fmt.Errorf("%d transport errors: the service became unreachable under chaos", transport)
	}
	return nil
}

// checkHealthy asserts /healthz still answers 200.
func checkHealthy(base string) error {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("post-chaos /healthz: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("post-chaos /healthz answered %d", resp.StatusCode)
	}
	return nil
}

// fetchVitals reads the gated slice of /metrics.
func fetchVitals(base string) (chaosVitals, error) {
	var payload struct {
		Service struct {
			InFlight   int64 `json:"in_flight"`
			QueueDepth int64 `json:"queue_depth"`
		} `json:"service"`
		Jobs struct {
			InFlight  int64 `json:"in_flight"`
			Depth     int64 `json:"queue_depth"`
			Parked    int64 `json:"parked"`
			AckErrors int64 `json:"ack_errors"`
		} `json:"jobs"`
		Runtime struct {
			Goroutines     int    `json:"goroutines"`
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		} `json:"runtime"`
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return chaosVitals{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return chaosVitals{}, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return chaosVitals{}, fmt.Errorf("decoding /metrics: %w", err)
	}
	return chaosVitals{
		goroutines:  payload.Runtime.Goroutines,
		heapBytes:   payload.Runtime.HeapAllocBytes,
		inFlight:    payload.Service.InFlight,
		queueDepth:  payload.Service.QueueDepth,
		jobDepth:    payload.Jobs.Depth,
		jobInFlight: payload.Jobs.InFlight,
		jobParked:   payload.Jobs.Parked,
		jobAckErrs:  payload.Jobs.AckErrors,
	}, nil
}

// settleVitals polls /metrics until the goroutine count drops to the
// bound (handlers for aborted exchanges need a few read-deadline cycles
// to notice their client is gone) or the wait expires — expiry is a leak.
func settleVitals(base string, maxGoroutines int, wait time.Duration) (chaosVitals, error) {
	deadline := time.Now().Add(wait)
	for {
		v, err := fetchVitals(base)
		if err != nil {
			return chaosVitals{}, fmt.Errorf("post-chaos /metrics: %w", err)
		}
		if v.goroutines <= maxGoroutines && v.inFlight == 0 && v.queueDepth == 0 {
			return v, nil
		}
		if time.Now().After(deadline) {
			return v, fmt.Errorf("goroutines did not settle: %d still live after %v (bound %d) — leak at the serving boundary",
				v.goroutines, wait, maxGoroutines)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
