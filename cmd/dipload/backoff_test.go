package main

import (
	"net/http"
	"testing"
	"time"

	"dip/internal/stats"
)

// TestRetryDelaySchedule pins the backoff policy: exponential from
// retryBase, capped at retryCap, jitter in [0, delay/2) that is a pure
// function of (seed, attempt).
func TestRetryDelaySchedule(t *testing.T) {
	for attempt := 0; attempt < 12; attempt++ {
		base := retryBase << attempt
		if base > retryCap {
			base = retryCap
		}
		got := retryDelay(7, attempt, 0)
		if got < base || got >= base+base/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, got, base, base+base/2)
		}
		// Deterministic: the same (seed, attempt) always waits the same.
		if again := retryDelay(7, attempt, 0); again != got {
			t.Errorf("attempt %d: schedule not deterministic (%v vs %v)", attempt, got, again)
		}
		// Jitter matches the published derivation exactly.
		want := base
		if half := int64(base / 2); half > 0 {
			j := stats.DeriveSeed(7, int64(attempt)) % half
			if j < 0 {
				j += half
			}
			want += time.Duration(j)
		}
		if got != want {
			t.Errorf("attempt %d: delay %v, derivation says %v", attempt, got, want)
		}
	}
	// Different seeds de-synchronize: across attempts 0..11 the two
	// schedules must differ somewhere (the whole point of the jitter).
	same := true
	for attempt := 0; attempt < 12; attempt++ {
		if retryDelay(1, attempt, 0) != retryDelay(2, attempt, 0) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
}

// TestRetryDelayHonorsRetryAfter: a server hint beyond the computed
// delay becomes the floor; a smaller hint changes nothing.
func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	if got := retryDelay(1, 0, 2*time.Second); got != 2*time.Second {
		t.Errorf("hint above the curve: %v, want 2s", got)
	}
	plain := retryDelay(1, 3, 0)
	if got := retryDelay(1, 3, time.Nanosecond); got != plain {
		t.Errorf("hint below the curve changed the delay: %v vs %v", got, plain)
	}
}

func TestRetryAfterHint(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"30", 30 * time.Second},
		{"-5", 0},
		{"soon", 0},
	} {
		if got := retryAfterHint(mk(tc.header)); got != tc.want {
			t.Errorf("Retry-After %q: %v, want %v", tc.header, got, tc.want)
		}
	}
}
