// Jobs mode: dipload drives the async tier instead of /v1/run. Submit
// enqueues the seeded request stream through POST /v1/jobs (each with a
// deterministic Idempotency-Key, so a re-run of the same submission is
// deduplicated, not doubled) and records the minted ids in a manifest;
// poll reads the manifest back, waits for every job to settle, and
// verifies each finished envelope — valid dip-job/v1 document, state
// done, embedded report matching the seed and protocol the id was
// submitted with. Split modes exist for crash drills: submit against an
// ingest-only server, SIGKILL it, restart with workers, then poll —
// every id in the manifest must still complete exactly once.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dip"
	"dip/internal/stats"
)

// manifestEntry records one submitted job and what its report must say.
type manifestEntry struct {
	ID       string
	Seed     int64
	Protocol string
}

func runJobs(o options) error {
	switch o.jobsMode {
	case "submit", "poll", "full":
	default:
		return fmt.Errorf("unknown -jobs mode %q (want submit, poll, or full)", o.jobsMode)
	}
	if o.jobsMode != "full" && o.jobsFile == "" {
		return fmt.Errorf("-jobs %s needs -jobs-file to carry the id manifest", o.jobsMode)
	}
	if err := waitReady(o.url, o.wait); err != nil {
		return err
	}

	var entries []manifestEntry
	if o.jobsMode == "poll" {
		var err error
		if entries, err = readManifest(o.jobsFile); err != nil {
			return err
		}
	} else {
		var err error
		if entries, err = submitJobs(o); err != nil {
			return err
		}
		if o.jobsFile != "" {
			if err := writeManifest(o.jobsFile, entries); err != nil {
				return err
			}
			fmt.Printf("dipload: jobs: wrote %d ids to %s\n", len(entries), o.jobsFile)
		}
		if o.jobsMode == "submit" {
			return nil
		}
	}
	return pollJobs(o, entries)
}

// submitJobs enqueues the request stream from o.clients concurrent
// submitters, retrying 503s (full backlog, drain) on the shared backoff
// schedule. Request i carries seed DeriveSeed(o.seed, i) and the
// idempotency key "dipload-<seed>-<i>".
func submitJobs(o options) ([]manifestEntry, error) {
	edges := make([][2]int, o.n)
	for i := 0; i < o.n; i++ {
		edges[i] = [2]int{i, (i + 1) % o.n}
	}
	bodies := make([][]byte, o.requests)
	for i := 0; i < o.requests; i++ {
		req := dip.Request{
			Protocol: o.protocols[i%len(o.protocols)],
			N:        o.n,
			Edges:    edges,
			Options:  dip.Options{Seed: stats.DeriveSeed(o.seed, int64(i))},
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: 30 * time.Second}
	entries := make([]manifestEntry, o.requests)
	var next atomic.Int64
	var deduped, failed atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < o.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(o.requests) {
					return
				}
				id, dup, err := submitOne(client, o, int(i), bodies[i])
				if err != nil {
					failed.Add(1)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("request %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				if dup {
					deduped.Add(1)
				}
				entries[i] = manifestEntry{
					ID:       id,
					Seed:     stats.DeriveSeed(o.seed, int64(i)),
					Protocol: o.protocols[int(i)%len(o.protocols)],
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("dipload: jobs: submitted %d (%d deduplicated, %d failed, c=%d, seed %d)\n",
		o.requests, deduped.Load(), failed.Load(), o.clients, o.seed)
	if firstErr != nil {
		return nil, firstErr
	}
	return entries, nil
}

// submitOne POSTs one job, retrying 503s; dup reports an idempotency hit
// (the service answered 200 with a previously minted job).
func submitOne(client *http.Client, o options, i int, body []byte) (id string, dup bool, err error) {
	key := fmt.Sprintf("dipload-%d-%d", o.seed, i)
	seed := stats.DeriveSeed(o.seed, int64(i))
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		req, err := http.NewRequest(http.MethodPost, o.url+"/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			return "", false, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := client.Do(req)
		if err != nil {
			return "", false, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			env, derr := dip.DecodeWireJob(resp.Body)
			drain(resp)
			if derr != nil {
				return "", false, fmt.Errorf("submission answer: %w", derr)
			}
			return env.ID, resp.StatusCode == http.StatusOK, nil
		case http.StatusServiceUnavailable:
			hint := retryAfterHint(resp)
			drain(resp)
			time.Sleep(retryDelay(seed, attempt, hint))
		default:
			drain(resp)
			return "", false, fmt.Errorf("submission answered %d", resp.StatusCode)
		}
	}
	return "", false, fmt.Errorf("retry budget exhausted submitting job %d", i)
}

// pollJobs waits for every manifest id to settle and verifies the
// results: all done, each embedded report valid and matching its entry.
func pollJobs(o options, entries []manifestEntry) error {
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(o.pollWait)
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, len(entries))
	var completed, attempts atomic.Int64
	for w := 0; w < o.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(entries)) {
					return
				}
				env, err := awaitJob(client, o.url, entries[i].ID, deadline)
				if err != nil {
					errs[i] = err
					continue
				}
				if err := checkJob(env, entries[i]); err != nil {
					errs[i] = err
					continue
				}
				completed.Add(1)
				attempts.Add(int64(env.Attempts))
			}
		}()
	}
	wg.Wait()

	bad := 0
	for i, err := range errs {
		if err != nil {
			bad++
			if bad <= 5 {
				fmt.Fprintf(os.Stderr, "dipload: jobs: %s: %v\n", entries[i].ID, err)
			}
		}
	}
	fmt.Printf("dipload: jobs: %d/%d completed and verified (%d attempts total)\n",
		completed.Load(), len(entries), attempts.Load())
	if bad > 0 {
		return fmt.Errorf("%d of %d jobs failed verification", bad, len(entries))
	}
	return nil
}

// awaitJob polls one id until it settles or the shared deadline expires.
func awaitJob(client *http.Client, base, id string, deadline time.Time) (*dip.WireJob, error) {
	for {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			drain(resp)
			return nil, fmt.Errorf("status poll answered %d", resp.StatusCode)
		}
		env, derr := dip.DecodeWireJob(resp.Body)
		drain(resp)
		if derr != nil {
			return nil, derr
		}
		switch env.State {
		case dip.JobStateDone, dip.JobStateFailed, dip.JobStateParked:
			return env, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("still %s at the poll deadline", env.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkJob verifies one settled envelope against its manifest entry.
// DecodeWireJob already validated the document's structure; this checks
// the content — the job finished, and its report answers the request the
// manifest says was submitted.
func checkJob(env *dip.WireJob, want manifestEntry) error {
	if env.State != dip.JobStateDone {
		return fmt.Errorf("settled %s: %s", env.State, env.Error)
	}
	r := env.Report
	if r.Protocol != want.Protocol {
		return fmt.Errorf("report protocol %q, submitted %q", r.Protocol, want.Protocol)
	}
	if r.Seed != want.Seed {
		return fmt.Errorf("report seed %d, submitted %d", r.Seed, want.Seed)
	}
	if !r.Accepted {
		return fmt.Errorf("symmetric instance rejected (seed %d)", want.Seed)
	}
	return nil
}

// The manifest is one line per job: "<id> <seed> <protocol>".

func writeManifest(path string, entries []manifestEntry) error {
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&b, "%s %d %s\n", e.ID, e.Seed, e.Protocol)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func readManifest(path string) ([]manifestEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []manifestEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s: malformed manifest line %q", path, line)
		}
		seed, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad seed in line %q: %w", path, line, err)
		}
		entries = append(entries, manifestEntry{ID: fields[0], Seed: seed, Protocol: fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: empty manifest", path)
	}
	return entries, nil
}
