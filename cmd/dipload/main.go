// Command dipload is the load generator for cmd/dipserve: it fires a fixed
// number of protocol-run requests at a running service from a pool of
// concurrent clients, retries admission overflows (503), decodes every
// dip-report/v1 answer, and reports throughput and latency quantiles as a
// dip-load/v1 document.
//
//	dipload -url http://127.0.0.1:8123 -protocol sym-dmam -n 64 -c 8 -requests 2000 -json LOAD_seed1.json
//
// Request i runs with seed DeriveSeed(-seed, i), so the request stream is
// reproducible; the timings of course are not. Transport-level failures
// (dropped connections) are counted separately from protocol errors — a
// healthy service under overload answers 503, it never drops.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dip"
	"dip/internal/experiments"
	"dip/internal/stats"
)

type options struct {
	url       string
	protocols []string
	n         int
	clients   int
	requests  int
	batch     int
	chaos     int
	seed      int64
	wait      time.Duration
	jsonPath  string
	reqBench  bool
	// jobsMode drives the async tier instead of /v1/run: "submit" only
	// enqueues (and records the ids), "poll" verifies a recorded id set,
	// "full" does both in one process. Empty stays in load mode.
	jobsMode string
	// jobsFile is the id manifest submit writes and poll reads.
	jobsFile string
	// pollWait bounds how long poll waits for the whole id set to settle.
	pollWait time.Duration
}

// supportedProtocols maps the protocol names dipload can generate
// instances for: the symmetry family on cycle graphs (always symmetric,
// so the honest prover accepts).
var supportedProtocols = map[string]bool{
	"sym-dmam": true,
	"sym-dam":  true,
	"sym-lcp":  true,
	"sym-rpls": true,
}

func main() {
	var o options
	var protoList string
	flag.StringVar(&o.url, "url", "http://127.0.0.1:8123", "dipserve base URL")
	flag.StringVar(&protoList, "protocol", "sym-dmam", "comma-separated protocols to exercise (sym-dmam, sym-dam, sym-lcp, sym-rpls)")
	flag.IntVar(&o.n, "n", 64, "vertices per instance (cycle graph)")
	flag.IntVar(&o.clients, "c", 8, "concurrent clients")
	flag.IntVar(&o.requests, "requests", 2000, "total requests")
	flag.IntVar(&o.batch, "batch", 0, "send batches of this many same-protocol requests through /v1/batch (0 = one request per body)")
	flag.IntVar(&o.chaos, "chaos", 0, "chaos mode: fire this many adversarial HTTP exchanges (seed-deterministic scenarios) instead of a load run, then gate on service health")
	flag.Int64Var(&o.seed, "seed", 1, "base seed (request i uses DeriveSeed(seed, i))")
	flag.DurationVar(&o.wait, "wait", 10*time.Second, "wait up to this long for the service to report ready")
	flag.StringVar(&o.jsonPath, "json", "", "write dip-load/v1 results to this file")
	flag.BoolVar(&o.reqBench, "request-bench", false, "measure the in-process request path's allocs/op and embed it in -json output")
	flag.StringVar(&o.jobsMode, "jobs", "", "async job mode: submit (enqueue and record ids), poll (verify a recorded id set), full (both)")
	flag.StringVar(&o.jobsFile, "jobs-file", "", "job id manifest: -jobs submit writes it, -jobs poll reads it")
	flag.DurationVar(&o.pollWait, "poll-wait", time.Minute, "bound on waiting for the whole job set to settle in -jobs poll/full")
	gomaxprocs := flag.Int("gomaxprocs", 0, "pin the generator's GOMAXPROCS for the run (0 keeps the runtime default); recorded in -json output for sweep provenance")
	flag.Parse()

	if *gomaxprocs < 0 {
		fmt.Fprintln(os.Stderr, "dipload: -gomaxprocs must be >= 0")
		os.Exit(2)
	}
	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}

	for _, p := range strings.Split(protoList, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !supportedProtocols[p] {
			fmt.Fprintf(os.Stderr, "dipload: unsupported protocol %q\n", p)
			os.Exit(2)
		}
		o.protocols = append(o.protocols, p)
	}
	if len(o.protocols) == 0 || o.n < 3 || o.clients < 1 || o.requests < 1 || o.batch < 0 || o.chaos < 0 {
		fmt.Fprintln(os.Stderr, "dipload: need at least one protocol, -n >= 3, -c >= 1, -requests >= 1, -batch >= 0, -chaos >= 0")
		os.Exit(2)
	}

	if o.chaos > 0 {
		if err := runChaos(o); err != nil {
			fmt.Fprintf(os.Stderr, "dipload: chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if o.jobsMode != "" {
		if err := runJobs(o); err != nil {
			fmt.Fprintf(os.Stderr, "dipload: jobs: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "dipload: %v\n", err)
		os.Exit(1)
	}
}

// protoStats collects one protocol's outcomes across workers. The four
// outcome classes are disjoint: errors are protocol/service failures,
// exhausted are retry budgets spent against 503s (overload, not
// failure), dropped are transport losses; completed = requests -
// errors - exhausted - dropped.
type protoStats struct {
	mu        sync.Mutex
	requests  int
	errors    int
	exhausted int
	dropped   int
	latencies []time.Duration
	// batchLatencies holds whole-batch round trips in -batch mode;
	// latencies then holds the per-request approximation (batch latency
	// divided by item count), so both views stay comparable across modes.
	batchLatencies []time.Duration
}

func run(o options) error {
	if err := waitReady(o.url, o.wait); err != nil {
		return err
	}

	// Pre-build every request body before the clock starts: the generator
	// should spend the measured window driving the service, not encoding
	// JSON on the same cores.
	edges := make([][2]int, o.n)
	for i := 0; i < o.n; i++ {
		edges[i] = [2]int{i, (i + 1) % o.n}
	}
	var bodies [][]byte
	if o.batch == 0 {
		bodies = make([][]byte, o.requests)
		for i := 0; i < o.requests; i++ {
			req := dip.Request{
				Protocol: o.protocols[i%len(o.protocols)],
				N:        o.n,
				Edges:    edges,
				Options:  dip.Options{Seed: stats.DeriveSeed(o.seed, int64(i))},
			}
			b, err := json.Marshal(req)
			if err != nil {
				return err
			}
			bodies[i] = b
		}
	}

	perProto := make(map[string]*protoStats, len(o.protocols))
	for _, p := range o.protocols {
		perProto[p] = &protoStats{}
	}

	// One warm connection per client: the default Transport keeps only two
	// idle connections per host, so higher concurrency would constantly
	// re-dial and the measured latency would be TCP churn, not the service.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        o.clients,
			MaxIdleConnsPerHost: o.clients,
		},
	}
	var batches []batchJob
	if o.batch > 0 {
		var err error
		if batches, err = buildBatches(o); err != nil {
			return err
		}
	}

	var next, retries, dropped, errs, exhausted atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if o.batch > 0 {
				for {
					i := next.Add(1) - 1
					if i >= int64(len(batches)) {
						return
					}
					job := batches[i]
					ps := perProto[job.proto]
					reqStart := time.Now()
					good, out, retried := fireBatch(client, o.url, job.body, job.count, stats.DeriveSeed(o.seed, i))
					lat := time.Since(reqStart)
					retries.Add(retried)
					// All counters are per-item: one batch body carries
					// job.count requests, so a dropped or exhausted batch
					// moves its class by job.count, never by 1.
					var bad, spent, lost int
					switch out {
					case fireOK:
						bad = job.count - good
					case fireExhausted:
						spent = job.count
					case fireDropped:
						lost = job.count
					default:
						bad = job.count - good
					}
					// Per-request latency approximation: the batch round
					// trip spread evenly over its items (retry waits
					// included, like every plain-mode sample).
					per := lat / time.Duration(job.count)
					ps.mu.Lock()
					ps.requests += job.count
					ps.errors += bad
					ps.exhausted += spent
					ps.dropped += lost
					ps.batchLatencies = append(ps.batchLatencies, lat)
					for k := 0; k < job.count; k++ {
						ps.latencies = append(ps.latencies, per)
					}
					ps.mu.Unlock()
					errs.Add(int64(bad))
					exhausted.Add(int64(spent))
					dropped.Add(int64(lost))
				}
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(o.requests) {
					return
				}
				proto := o.protocols[int(i)%len(o.protocols)]
				ps := perProto[proto]
				reqStart := time.Now()
				out, retried := fire(client, o.url, bodies[i], stats.DeriveSeed(o.seed, i))
				lat := time.Since(reqStart)
				retries.Add(retried)
				ps.mu.Lock()
				ps.requests++
				switch out {
				case fireErr:
					ps.errors++
				case fireExhausted:
					ps.exhausted++
				case fireDropped:
					ps.dropped++
				}
				ps.latencies = append(ps.latencies, lat)
				ps.mu.Unlock()
				switch out {
				case fireErr:
					errs.Add(1)
				case fireExhausted:
					exhausted.Add(1)
				case fireDropped:
					dropped.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	completed := 0
	var protoResults []experiments.LoadProtocolResult
	names := make([]string, 0, len(perProto))
	for name := range perProto {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := perProto[name]
		good := ps.requests - ps.errors - ps.exhausted - ps.dropped
		completed += good
		pr := experiments.LoadProtocolResult{
			Protocol:      name,
			Requests:      good,
			Errors:        ps.errors,
			Exhausted:     ps.exhausted,
			ThroughputRPS: float64(good) / wall.Seconds(),
			LatencyMS:     experiments.SummarizeLatencies(ps.latencies),
		}
		if len(ps.batchLatencies) > 0 {
			bl := experiments.SummarizeLatencies(ps.batchLatencies)
			pr.BatchLatencyMS = &bl
		}
		protoResults = append(protoResults, pr)
	}

	results := &experiments.LoadResultsFile{
		Schema:        experiments.LoadSchema,
		Tool:          "dipload",
		Target:        o.url,
		Seed:          o.seed,
		Concurrency:   o.clients,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Requests:      completed,
		Errors:        int(errs.Load()),
		Exhausted:     int(exhausted.Load()),
		Retries:       int(retries.Load()),
		Dropped:       int(dropped.Load()),
		WallMS:        float64(wall) / float64(time.Millisecond),
		ThroughputRPS: float64(completed) / wall.Seconds(),
		Protocols:     protoResults,
	}
	if o.batch > 0 {
		results.BatchSize = o.batch
		results.Batches = len(batches)
	}
	if o.reqBench {
		allocs, err := dip.MeasureRequestAllocs()
		if err != nil {
			return fmt.Errorf("request bench: %w", err)
		}
		results.RequestBench = &experiments.RequestBench{
			Workload:    "sym-dmam request, cycle graph, fresh seed per run",
			Nodes:       64,
			Trials:      50,
			AllocsPerOp: allocs,
		}
		fmt.Printf("dipload: request bench %.0f allocs/op\n", allocs)
	}
	if err := results.Validate(); err != nil {
		return err
	}

	fmt.Printf("dipload: %d requests in %v (%.1f req/s, c=%d), %d errors, %d exhausted, %d retries, %d dropped\n",
		completed, wall.Round(time.Millisecond), results.ThroughputRPS, o.clients,
		results.Errors, results.Exhausted, results.Retries, results.Dropped)
	for _, pr := range results.Protocols {
		fmt.Printf("  %-10s %5d ok  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  max %6.2fms\n",
			pr.Protocol, pr.Requests, pr.LatencyMS.P50, pr.LatencyMS.P95, pr.LatencyMS.P99, pr.LatencyMS.Max)
		if b := pr.BatchLatencyMS; b != nil {
			fmt.Printf("  %-10s batch(%d): p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  max %6.2fms\n",
				"", o.batch, b.P50, b.P95, b.P99, b.Max)
		}
	}
	if o.jsonPath != "" {
		if err := results.WriteFile(o.jsonPath); err != nil {
			return err
		}
		fmt.Printf("dipload: wrote %s\n", o.jsonPath)
	}
	if results.Dropped > 0 {
		return fmt.Errorf("%d dropped connections", results.Dropped)
	}
	return nil
}

// fireOutcome classifies one request's fate. The classes matter because
// they answer different questions: fireErr means the service (or its
// answer) is wrong, fireExhausted means it is merely overloaded — its
// every 503 was a correct admission answer — and fireDropped means the
// transport failed underneath the exchange.
type fireOutcome int

const (
	fireOK fireOutcome = iota
	fireErr
	fireExhausted
	fireDropped
)

// fire sends one run request, retrying 503 admission overflows on the
// capped-exponential schedule in backoff.go (seeded jitter, Retry-After
// honored); retried counts the overflow round-trips. An exhausted retry
// budget is its own outcome, not an error: 50 polite 503s are a
// capacity statement, not a protocol failure.
func fire(client *http.Client, url string, body []byte, seed int64) (out fireOutcome, retried int64) {
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		resp, err := client.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return fireDropped, retried
		}
		switch resp.StatusCode {
		case http.StatusOK:
			_, derr := dip.DecodeWireReport(resp.Body)
			drain(resp)
			if derr != nil {
				return fireErr, retried
			}
			return fireOK, retried
		case http.StatusServiceUnavailable:
			hint := retryAfterHint(resp)
			drain(resp)
			retried++
			time.Sleep(retryDelay(seed, attempt, hint))
		default:
			drain(resp)
			return fireErr, retried
		}
	}
	return fireExhausted, retried
}

// drain reads the body to EOF and closes it, so the transport can return
// the connection to the idle pool instead of tearing it down.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// waitReady polls /readyz until the service answers 200.
func waitReady(url string, bound time.Duration) error {
	deadline := time.Now().Add(bound)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("service at %s not ready: %w", url, err)
			}
			return fmt.Errorf("service at %s not ready", url)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// batchJob is one pre-marshaled /v1/batch body: count same-protocol
// requests sharing the instance, seeds preserved from the plain-mode
// stream (request i still runs with DeriveSeed(seed, i)).
type batchJob struct {
	proto string
	body  []byte
	count int
}

// buildBatches groups the request stream by protocol and chunks each
// group into bodies of up to o.batch items.
func buildBatches(o options) ([]batchJob, error) {
	edges := make([][2]int, o.n)
	for i := 0; i < o.n; i++ {
		edges[i] = [2]int{i, (i + 1) % o.n}
	}
	perProto := make(map[string][]dip.Request, len(o.protocols))
	for i := 0; i < o.requests; i++ {
		p := o.protocols[i%len(o.protocols)]
		perProto[p] = append(perProto[p], dip.Request{
			Protocol: p,
			N:        o.n,
			Edges:    edges,
			Options:  dip.Options{Seed: stats.DeriveSeed(o.seed, int64(i))},
		})
	}
	var jobs []batchJob
	for _, p := range o.protocols {
		reqs := perProto[p]
		perProto[p] = nil
		for len(reqs) > 0 {
			size := o.batch
			if size > len(reqs) {
				size = len(reqs)
			}
			body, err := json.Marshal(struct {
				Requests []dip.Request `json:"requests"`
			}{reqs[:size]})
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, batchJob{proto: p, body: body, count: size})
			reqs = reqs[size:]
		}
	}
	return jobs, nil
}

// fireBatch sends one batch body, retrying 503 overflows like fire. good
// counts elements that decoded as dip-report/v1 documents (meaningful
// only for fireOK); the outcome classifies the whole batch, and the
// caller charges it per item.
func fireBatch(client *http.Client, url string, body []byte, count int, seed int64) (good int, out fireOutcome, retried int64) {
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		resp, err := client.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fireDropped, retried
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var elems []json.RawMessage
			derr := json.NewDecoder(resp.Body).Decode(&elems)
			drain(resp)
			if derr != nil || len(elems) != count {
				return 0, fireErr, retried
			}
			for _, e := range elems {
				if _, err := dip.DecodeWireReport(bytes.NewReader(e)); err == nil {
					good++
				}
			}
			return good, fireOK, retried
		case http.StatusServiceUnavailable:
			hint := retryAfterHint(resp)
			drain(resp)
			retried++
			time.Sleep(retryDelay(seed, attempt, hint))
		default:
			drain(resp)
			return 0, fireErr, retried
		}
	}
	return 0, fireExhausted, retried
}
