package dip

import (
	"context"
	"sort"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
)

// Request names a protocol and carries its instance: the graph(s) as edge
// lists plus Options. Exactly the fields a protocol consumes may be set —
// a populated field the protocol does not read is rejected, so a caller
// that, say, sends Marks to sym-dmam learns about the mistake instead of
// having it silently ignored. The JSON form is what cmd/dipserve accepts.
type Request struct {
	// Protocol is a registry name; see Protocols.
	Protocol string `json:"protocol"`
	// N is the number of vertices. dsym-dam derives its vertex count from
	// Side and Half instead, and there N may be either 0 or that count.
	N int `json:"n,omitempty"`
	// Edges is the network graph (for GNI pairs: G₀), as undirected edges.
	Edges [][2]int `json:"edges"`
	// Edges1 is G₁ of a GNI pair (gni-damam, gni-general, gni-lcp only).
	Edges1 [][2]int `json:"edges1,omitempty"`
	// Marks is the 0/1/-1 node marking of gni-marked.
	Marks []int `json:"marks,omitempty"`
	// Side and Half are the dumbbell parameters (n, r) of dsym-dam.
	Side int `json:"side,omitempty"`
	Half int `json:"half,omitempty"`
	// Options carries seed, repetitions and timeout.
	Options Options `json:"options"`
}

// ProtocolInfo describes one registry entry.
type ProtocolInfo struct {
	// Name is the identifier accepted in Request.Protocol.
	Name string `json:"name"`
	// Family is the decision problem: "sym" (graph symmetry) or "gni"
	// (graph non-isomorphism).
	Family string `json:"family"`
	// Rounds is the number of rounds in the protocol's schedule — the
	// length of Report.PerRound on a completed run.
	Rounds int `json:"rounds"`
	// Summary is a one-line description.
	Summary string `json:"summary"`
}

// entry is a registry row: the public description plus the run function
// and the set of Request fields the protocol consumes.
type entry struct {
	info entryInfo
	run  func(ctx context.Context, req *Request) (Report, error)
	// spec rebuilds the protocol's Spec without running it; see BuildSpec.
	spec func(req *Request) (*network.Spec, error)
	// uses flags which optional Request fields this protocol reads;
	// dispatch rejects requests that set any other.
	usesEdges1 bool
	usesMarks  bool
	usesSide   bool
}

// checkFields rejects a request that populates a field this protocol does
// not read, shared by the run and BuildSpec dispatch paths.
func (e *entry) checkFields(req *Request) error {
	if !e.usesEdges1 && req.Edges1 != nil {
		return badRequestf("dip: protocol %q takes no Edges1", e.info.Name)
	}
	if !e.usesMarks && req.Marks != nil {
		return badRequestf("dip: protocol %q takes no Marks", e.info.Name)
	}
	if !e.usesSide && (req.Side != 0 || req.Half != 0) {
		return badRequestf("dip: protocol %q takes no Side/Half", e.info.Name)
	}
	return nil
}

type entryInfo = ProtocolInfo

// registry lists every runnable protocol. Round counts are stated here
// (rather than derived) so the listing needs no instance construction;
// TestProtocolRoundsMatchSpecs pins them to the actual Specs.
var registry = map[string]*entry{
	"sym-dmam": {
		info: entryInfo{Name: "sym-dmam", Family: "sym", Rounds: 3,
			Summary: "O(log n) dMAM proof of graph symmetry (Theorem 1.1)"},
		run:  runSymDMAM,
		spec: specOf(protoSymDMAM),
	},
	"sym-dam": {
		info: entryInfo{Name: "sym-dam", Family: "sym", Rounds: 2,
			Summary: "O(n log n) dAM proof of symmetry, nodes speak first (Theorem 1.3)"},
		run:  runSymDAM,
		spec: specOf(protoSymDAM),
	},
	"dsym-dam": {
		info: entryInfo{Name: "dsym-dam", Family: "sym", Rounds: 2,
			Summary: "O(log n) dAM proof of dumbbell symmetry (Theorem 1.2)"},
		run:      runDSymDAM,
		spec:     specOf(protoDSymDAM),
		usesSide: true,
	},
	"sym-lcp": {
		info: entryInfo{Name: "sym-lcp", Family: "sym", Rounds: 1,
			Summary: "Θ(n²) non-interactive labeling-scheme baseline for symmetry"},
		run:  runSymLCP,
		spec: specOf(protoSymLCP),
	},
	"sym-rpls": {
		info: entryInfo{Name: "sym-rpls", Family: "sym", Rounds: 1,
			Summary: "randomized proof-labeling scheme: Θ(n²) advice, O(log n) fingerprint exchange"},
		run:  runSymRPLS,
		spec: specOf(protoSymRPLS),
	},
	"gni-damam": {
		info: entryInfo{Name: "gni-damam", Family: "gni", Rounds: 4,
			Summary: "distributed Goldwasser–Sipser dAMAM proof of non-isomorphism (Theorem 1.5)"},
		run:        runGNIDAMAM,
		spec:       specOf(protoGNIDAMAM),
		usesEdges1: true,
	},
	"gni-general": {
		info: entryInfo{Name: "gni-general", Family: "gni", Rounds: 2,
			Summary: "promise-free GNI, correct on symmetric graphs too"},
		run:        runGNIGeneral,
		spec:       specOf(protoGNIGeneral),
		usesEdges1: true,
	},
	"gni-marked": {
		info: entryInfo{Name: "gni-marked", Family: "gni", Rounds: 4,
			Summary: "marked single-graph formulation of GNI (Section 2.3)"},
		run:       runGNIMarked,
		spec:      specOf(protoGNIMarked),
		usesMarks: true,
	},
	"gni-lcp": {
		info: entryInfo{Name: "gni-lcp", Family: "gni", Rounds: 1,
			Summary: "Θ(n²) non-interactive baseline for non-isomorphism"},
		run:        runGNILCP,
		spec:       specOf(protoGNILCP),
		usesEdges1: true,
	},
}

// Protocols lists the registry sorted by name: stable output for the
// service's /v1/protocols endpoint and for documentation.
func Protocols() []ProtocolInfo {
	out := make([]ProtocolInfo, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run executes the named protocol on the request's instance against its
// honest prover and reports the outcome and costs. It is the single entry
// point behind every Prove* wrapper and behind cmd/dipserve.
func Run(req Request) (Report, error) {
	return RunContext(context.Background(), req)
}

// RunContext is Run bounded by a context: cancellation aborts the run at
// the next engine step, and a context deadline additionally clamps the
// prover deadline (Options.Timeout), whichever is tighter.
func RunContext(ctx context.Context, req Request) (Report, error) {
	e, ok := registry[req.Protocol]
	if !ok {
		return Report{}, badRequestf("dip: unknown protocol %q (see dip.Protocols)", req.Protocol)
	}
	if err := e.checkFields(&req); err != nil {
		return Report{}, err
	}
	return e.run(ctx, &req)
}

// engineOptions validates the request options and maps them onto the
// engine's knobs. A fleet transport riding on the context (Fleet.Run)
// selects the networked executor; otherwise the run stays in-process.
func engineOptions(ctx context.Context, opts Options) (network.Options, error) {
	timeout, err := resolveTimeout(opts.Timeout)
	if err != nil {
		return network.Options{}, err
	}
	return network.Options{Seed: opts.Seed, ProverTimeout: timeout, Transport: transportFrom(ctx)}, nil
}

// transportKey carries a Fleet.Run transport through RunContext to the
// engine call sites. A context key (rather than a Request field) keeps
// the transport out of the wire format: a Request stays a pure value, and
// placement is a property of how it is run, not of the instance.
type transportKey struct{}

func withTransport(ctx context.Context, t network.Transport) context.Context {
	return context.WithValue(ctx, transportKey{}, t)
}

func transportFrom(ctx context.Context) network.Transport {
	t, _ := ctx.Value(transportKey{}).(network.Transport)
	return t
}

// finish runs an assembled single-graph instance (no node inputs) through
// the engine and shapes the Report.
func finish(ctx context.Context, name string, spec *network.Spec, g *graph.Graph,
	prover network.Prover, opts Options) (Report, error) {
	nopts, err := engineOptions(ctx, opts)
	if err != nil {
		return Report{}, err
	}
	res, err := network.RunContext(ctx, spec, g, nil, prover, nopts)
	if err != nil {
		return Report{}, err
	}
	return report(name, res), nil
}

func runSymDMAM(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoSymDMAM(req)
	if err != nil {
		return Report{}, err
	}
	return finish(ctx, "sym-dmam", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runSymDAM(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoSymDAM(req)
	if err != nil {
		return Report{}, err
	}
	return finish(ctx, "sym-dam", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runDSymDAM(ctx context.Context, req *Request) (Report, error) {
	proto, err := protoDSymDAM(req)
	if err != nil {
		return Report{}, err
	}
	if req.N != 0 && req.N != proto.N() {
		return Report{}, badRequestf("dip: dsym-dam with side=%d half=%d has %d vertices, request says n=%d",
			req.Side, req.Half, proto.N(), req.N)
	}
	g, err := cachedGraph(proto.N(), req.Edges)
	if err != nil {
		return Report{}, err
	}
	return finish(ctx, "dsym-dam", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runSymLCP(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoSymLCP(req)
	if err != nil {
		return Report{}, err
	}
	return finish(ctx, "sym-lcp", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runSymRPLS(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoSymRPLS(req)
	if err != nil {
		return Report{}, err
	}
	return finish(ctx, "sym-rpls", proto.Spec(), g, proto.HonestProver(), req.Options)
}

// buildGNIPair validates both edge lists of a GNI request.
func buildGNIPair(req *Request) (g0, g1 *graph.Graph, err error) {
	if g0, err = cachedGraph(req.N, req.Edges); err != nil {
		return nil, nil, err
	}
	if g1, err = cachedGraph(req.N, req.Edges1); err != nil {
		return nil, nil, err
	}
	return g0, g1, nil
}

func runGNIDAMAM(ctx context.Context, req *Request) (Report, error) {
	g0, g1, err := buildGNIPair(req)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoGNIDAMAM(req)
	if err != nil {
		return Report{}, err
	}
	return finishGNI(ctx, "gni-damam", proto.Spec(), g0, g1, proto.HonestProver(), req.Options)
}

func runGNIGeneral(ctx context.Context, req *Request) (Report, error) {
	g0, g1, err := buildGNIPair(req)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoGNIGeneral(req)
	if err != nil {
		return Report{}, err
	}
	return finishGNI(ctx, "gni-general", proto.Spec(), g0, g1, proto.HonestProver(), req.Options)
}

func runGNILCP(ctx context.Context, req *Request) (Report, error) {
	g0, g1, err := buildGNIPair(req)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoGNILCP(req)
	if err != nil {
		return Report{}, err
	}
	return finishGNI(ctx, "gni-lcp", proto.Spec(), g0, g1, proto.HonestProver(), req.Options)
}

func runGNIMarked(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	coreMarks, _, err := decodeMarks(req)
	if err != nil {
		return Report{}, err
	}
	proto, err := protoGNIMarked(req)
	if err != nil {
		return Report{}, err
	}
	inputs, err := core.EncodeMarks(coreMarks)
	if err != nil {
		return Report{}, asBadRequest(err)
	}
	nopts, err := engineOptions(ctx, req.Options)
	if err != nil {
		return Report{}, err
	}
	res, err := network.RunContext(ctx, proto.Spec(), g, inputs, proto.HonestProver(), nopts)
	if err != nil {
		return Report{}, err
	}
	return report("gni-marked", res), nil
}

// finishGNI runs a two-graph instance: g0 is the network, g1 travels as
// node inputs, row by row.
func finishGNI(ctx context.Context, name string, spec *network.Spec, g0, g1 *graph.Graph,
	prover network.Prover, opts Options) (Report, error) {
	nopts, err := engineOptions(ctx, opts)
	if err != nil {
		return Report{}, err
	}
	res, err := network.RunContext(ctx, spec, g0, core.EncodeGNIInputs(g1), prover, nopts)
	if err != nil {
		return Report{}, err
	}
	return report(name, res), nil
}
