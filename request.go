package dip

import (
	"context"
	"sort"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
)

// Request names a protocol and carries its instance: the graph(s) as edge
// lists plus Options. Exactly the fields a protocol consumes may be set —
// a populated field the protocol does not read is rejected, so a caller
// that, say, sends Marks to sym-dmam learns about the mistake instead of
// having it silently ignored. The JSON form is what cmd/dipserve accepts.
type Request struct {
	// Protocol is a registry name; see Protocols.
	Protocol string `json:"protocol"`
	// N is the number of vertices. dsym-dam derives its vertex count from
	// Side and Half instead, and there N may be either 0 or that count.
	N int `json:"n,omitempty"`
	// Edges is the network graph (for GNI pairs: G₀), as undirected edges.
	Edges [][2]int `json:"edges"`
	// Edges1 is G₁ of a GNI pair (gni-damam, gni-general, gni-lcp only).
	Edges1 [][2]int `json:"edges1,omitempty"`
	// Marks is the 0/1/-1 node marking of gni-marked.
	Marks []int `json:"marks,omitempty"`
	// Side and Half are the dumbbell parameters (n, r) of dsym-dam.
	Side int `json:"side,omitempty"`
	Half int `json:"half,omitempty"`
	// Options carries seed, repetitions and timeout.
	Options Options `json:"options"`
}

// ProtocolInfo describes one registry entry.
type ProtocolInfo struct {
	// Name is the identifier accepted in Request.Protocol.
	Name string `json:"name"`
	// Family is the decision problem: "sym" (graph symmetry) or "gni"
	// (graph non-isomorphism).
	Family string `json:"family"`
	// Rounds is the number of rounds in the protocol's schedule — the
	// length of Report.PerRound on a completed run.
	Rounds int `json:"rounds"`
	// Summary is a one-line description.
	Summary string `json:"summary"`
}

// entry is a registry row: the public description plus the run function
// and the set of Request fields the protocol consumes.
type entry struct {
	info entryInfo
	run  func(ctx context.Context, req *Request) (Report, error)
	// uses flags which optional Request fields this protocol reads;
	// dispatch rejects requests that set any other.
	usesEdges1 bool
	usesMarks  bool
	usesSide   bool
}

type entryInfo = ProtocolInfo

// registry lists every runnable protocol. Round counts are stated here
// (rather than derived) so the listing needs no instance construction;
// TestProtocolRoundsMatchSpecs pins them to the actual Specs.
var registry = map[string]*entry{
	"sym-dmam": {
		info: entryInfo{Name: "sym-dmam", Family: "sym", Rounds: 3,
			Summary: "O(log n) dMAM proof of graph symmetry (Theorem 1.1)"},
		run: runSymDMAM,
	},
	"sym-dam": {
		info: entryInfo{Name: "sym-dam", Family: "sym", Rounds: 2,
			Summary: "O(n log n) dAM proof of symmetry, nodes speak first (Theorem 1.3)"},
		run: runSymDAM,
	},
	"dsym-dam": {
		info: entryInfo{Name: "dsym-dam", Family: "sym", Rounds: 2,
			Summary: "O(log n) dAM proof of dumbbell symmetry (Theorem 1.2)"},
		run:      runDSymDAM,
		usesSide: true,
	},
	"sym-lcp": {
		info: entryInfo{Name: "sym-lcp", Family: "sym", Rounds: 1,
			Summary: "Θ(n²) non-interactive labeling-scheme baseline for symmetry"},
		run: runSymLCP,
	},
	"sym-rpls": {
		info: entryInfo{Name: "sym-rpls", Family: "sym", Rounds: 1,
			Summary: "randomized proof-labeling scheme: Θ(n²) advice, O(log n) fingerprint exchange"},
		run: runSymRPLS,
	},
	"gni-damam": {
		info: entryInfo{Name: "gni-damam", Family: "gni", Rounds: 4,
			Summary: "distributed Goldwasser–Sipser dAMAM proof of non-isomorphism (Theorem 1.5)"},
		run:        runGNIDAMAM,
		usesEdges1: true,
	},
	"gni-general": {
		info: entryInfo{Name: "gni-general", Family: "gni", Rounds: 2,
			Summary: "promise-free GNI, correct on symmetric graphs too"},
		run:        runGNIGeneral,
		usesEdges1: true,
	},
	"gni-marked": {
		info: entryInfo{Name: "gni-marked", Family: "gni", Rounds: 4,
			Summary: "marked single-graph formulation of GNI (Section 2.3)"},
		run:       runGNIMarked,
		usesMarks: true,
	},
	"gni-lcp": {
		info: entryInfo{Name: "gni-lcp", Family: "gni", Rounds: 1,
			Summary: "Θ(n²) non-interactive baseline for non-isomorphism"},
		run:        runGNILCP,
		usesEdges1: true,
	},
}

// Protocols lists the registry sorted by name: stable output for the
// service's /v1/protocols endpoint and for documentation.
func Protocols() []ProtocolInfo {
	out := make([]ProtocolInfo, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run executes the named protocol on the request's instance against its
// honest prover and reports the outcome and costs. It is the single entry
// point behind every Prove* wrapper and behind cmd/dipserve.
func Run(req Request) (Report, error) {
	return RunContext(context.Background(), req)
}

// RunContext is Run bounded by a context: cancellation aborts the run at
// the next engine step, and a context deadline additionally clamps the
// prover deadline (Options.Timeout), whichever is tighter.
func RunContext(ctx context.Context, req Request) (Report, error) {
	e, ok := registry[req.Protocol]
	if !ok {
		return Report{}, badRequestf("dip: unknown protocol %q (see dip.Protocols)", req.Protocol)
	}
	if !e.usesEdges1 && req.Edges1 != nil {
		return Report{}, badRequestf("dip: protocol %q takes no Edges1", req.Protocol)
	}
	if !e.usesMarks && req.Marks != nil {
		return Report{}, badRequestf("dip: protocol %q takes no Marks", req.Protocol)
	}
	if !e.usesSide && (req.Side != 0 || req.Half != 0) {
		return Report{}, badRequestf("dip: protocol %q takes no Side/Half", req.Protocol)
	}
	return e.run(ctx, &req)
}

// engineOptions validates the request options and maps them onto the
// engine's knobs.
func engineOptions(opts Options) (network.Options, error) {
	timeout, err := resolveTimeout(opts.Timeout)
	if err != nil {
		return network.Options{}, err
	}
	return network.Options{Seed: opts.Seed, ProverTimeout: timeout}, nil
}

// finish runs an assembled single-graph instance (no node inputs) through
// the engine and shapes the Report.
func finish(ctx context.Context, name string, spec *network.Spec, g *graph.Graph,
	prover network.Prover, opts Options) (Report, error) {
	nopts, err := engineOptions(opts)
	if err != nil {
		return Report{}, err
	}
	res, err := network.RunContext(ctx, spec, g, nil, prover, nopts)
	if err != nil {
		return Report{}, err
	}
	return report(name, res), nil
}

func runSymDMAM(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/sym-dmam", int64(req.N), 0, 0, req.Options.Seed,
		func() (any, error) { return core.NewSymDMAM(req.N, req.Options.Seed) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.SymDMAM)
	return finish(ctx, "sym-dmam", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runSymDAM(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/sym-dam", int64(req.N), 0, 0, req.Options.Seed,
		func() (any, error) { return core.NewSymDAM(req.N, req.Options.Seed) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.SymDAM)
	return finish(ctx, "sym-dam", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runDSymDAM(ctx context.Context, req *Request) (Report, error) {
	v, err := cachedProtocol("proto/dsym-dam", int64(req.Side), int64(req.Half), 0, req.Options.Seed,
		func() (any, error) { return core.NewDSymDAM(req.Side, req.Half, req.Options.Seed) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.DSymDAM)
	if req.N != 0 && req.N != proto.N() {
		return Report{}, badRequestf("dip: dsym-dam with side=%d half=%d has %d vertices, request says n=%d",
			req.Side, req.Half, proto.N(), req.N)
	}
	g, err := cachedGraph(proto.N(), req.Edges)
	if err != nil {
		return Report{}, err
	}
	return finish(ctx, "dsym-dam", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runSymLCP(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/sym-lcp", int64(req.N), 0, 0, 0,
		func() (any, error) { return core.NewSymLCP(req.N) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.SymLCP)
	return finish(ctx, "sym-lcp", proto.Spec(), g, proto.HonestProver(), req.Options)
}

func runSymRPLS(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/sym-rpls", int64(req.N), 0, 0, req.Options.Seed,
		func() (any, error) { return core.NewSymRPLS(req.N, req.Options.Seed) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.SymRPLS)
	return finish(ctx, "sym-rpls", proto.Spec(), g, proto.HonestProver(), req.Options)
}

// buildGNIPair validates both edge lists of a GNI request.
func buildGNIPair(req *Request) (g0, g1 *graph.Graph, err error) {
	if g0, err = cachedGraph(req.N, req.Edges); err != nil {
		return nil, nil, err
	}
	if g1, err = cachedGraph(req.N, req.Edges1); err != nil {
		return nil, nil, err
	}
	return g0, g1, nil
}

func runGNIDAMAM(ctx context.Context, req *Request) (Report, error) {
	g0, g1, err := buildGNIPair(req)
	if err != nil {
		return Report{}, err
	}
	k, err := resolveRepetitions(req.Options.Repetitions)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/gni-damam", int64(req.N), int64(k), 0, req.Options.Seed,
		func() (any, error) { return core.NewGNIDAMAM(req.N, k, req.Options.Seed) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.GNIDAMAM)
	return finishGNI(ctx, "gni-damam", proto.Spec(), g0, g1, proto.HonestProver(), req.Options)
}

func runGNIGeneral(ctx context.Context, req *Request) (Report, error) {
	g0, g1, err := buildGNIPair(req)
	if err != nil {
		return Report{}, err
	}
	k, err := resolveRepetitions(req.Options.Repetitions)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/gni-general", int64(req.N), int64(k), 0, req.Options.Seed,
		func() (any, error) { return core.NewGNIGeneral(req.N, k, req.Options.Seed) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.GNIGeneral)
	return finishGNI(ctx, "gni-general", proto.Spec(), g0, g1, proto.HonestProver(), req.Options)
}

func runGNILCP(ctx context.Context, req *Request) (Report, error) {
	g0, g1, err := buildGNIPair(req)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/gni-lcp", int64(req.N), 0, 0, 0,
		func() (any, error) { return core.NewGNILCP(req.N) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.GNILCP)
	return finishGNI(ctx, "gni-lcp", proto.Spec(), g0, g1, proto.HonestProver(), req.Options)
}

func runGNIMarked(ctx context.Context, req *Request) (Report, error) {
	g, err := cachedGraph(req.N, req.Edges)
	if err != nil {
		return Report{}, err
	}
	if len(req.Marks) != req.N {
		return Report{}, badRequestf("dip: %d marks for %d nodes", len(req.Marks), req.N)
	}
	coreMarks := make([]core.Mark, req.N)
	k := 0
	for v, m := range req.Marks {
		switch m {
		case 0:
			coreMarks[v] = core.MarkZero
			k++
		case 1:
			coreMarks[v] = core.MarkOne
		case -1:
			coreMarks[v] = core.MarkNone
		default:
			return Report{}, badRequestf("dip: mark %d at node %d (want 0, 1 or -1)", m, v)
		}
	}
	reps, err := resolveRepetitions(req.Options.Repetitions)
	if err != nil {
		return Report{}, err
	}
	v, err := cachedProtocol("proto/gni-marked", int64(req.N), int64(k), int64(reps), req.Options.Seed,
		func() (any, error) { return core.NewMarkedGNI(req.N, k, reps, req.Options.Seed) })
	if err != nil {
		return Report{}, err
	}
	proto := v.(*core.MarkedGNI)
	inputs, err := core.EncodeMarks(coreMarks)
	if err != nil {
		return Report{}, asBadRequest(err)
	}
	nopts, err := engineOptions(req.Options)
	if err != nil {
		return Report{}, err
	}
	res, err := network.RunContext(ctx, proto.Spec(), g, inputs, proto.HonestProver(), nopts)
	if err != nil {
		return Report{}, err
	}
	return report("gni-marked", res), nil
}

// finishGNI runs a two-graph instance: g0 is the network, g1 travels as
// node inputs, row by row.
func finishGNI(ctx context.Context, name string, spec *network.Spec, g0, g1 *graph.Graph,
	prover network.Prover, opts Options) (Report, error) {
	nopts, err := engineOptions(opts)
	if err != nil {
		return Report{}, err
	}
	res, err := network.RunContext(ctx, spec, g0, core.EncodeGNIInputs(g1), prover, nopts)
	if err != nil {
		return Report{}, err
	}
	return report(name, res), nil
}
