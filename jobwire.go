package dip

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JobSchema identifies the versioned JSON envelope of an async job:
// what POST /v1/jobs returns at submission and GET /v1/jobs/{id}
// returns while polling. A finished job embeds its dip-report/v1
// document unchanged, so the async tier answers byte-for-byte the same
// report the synchronous /v1/run path would have.
const JobSchema = "dip-job/v1"

// Job lifecycle states as they appear on the wire.
const (
	JobStateQueued  = "queued"
	JobStateRunning = "running"
	JobStateDone    = "done"
	JobStateFailed  = "failed"
	JobStateParked  = "parked"
)

// WireJob is the dip-job/v1 document.
type WireJob struct {
	Schema string `json:"schema"`
	// ID is the job handle for GET /v1/jobs/{id}.
	ID string `json:"id"`
	// State is one of queued, running, done, failed, parked.
	State string `json:"state"`
	// Protocol is the request's protocol name, echoed for status
	// listings without a payload fetch.
	Protocol string `json:"protocol,omitempty"`
	// IdempotencyKey echoes the client's dedup key when one was given.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Attempts is how many run attempts the job has consumed so far.
	Attempts int `json:"attempts,omitempty"`
	// EnqueuedUnixMS/SettledUnixMS stamp admission and completion.
	EnqueuedUnixMS int64 `json:"enqueued_unix_ms,omitempty"`
	SettledUnixMS  int64 `json:"settled_unix_ms,omitempty"`
	// Report is the embedded dip-report/v1 result, present exactly when
	// State is done.
	Report *WireReport `json:"report,omitempty"`
	// Error describes the failure for failed and parked jobs.
	Error string `json:"error,omitempty"`
}

// validJobStates is the closed state set of the schema.
var validJobStates = map[string]bool{
	JobStateQueued:  true,
	JobStateRunning: true,
	JobStateDone:    true,
	JobStateFailed:  true,
	JobStateParked:  true,
}

// Validate checks the structural invariants of a dip-job/v1 document.
func (w *WireJob) Validate() error {
	if w.Schema != JobSchema {
		return fmt.Errorf("job: schema %q, want %q", w.Schema, JobSchema)
	}
	if w.ID == "" {
		return fmt.Errorf("job: missing id")
	}
	if !validJobStates[w.State] {
		return fmt.Errorf("job: unknown state %q", w.State)
	}
	if w.Attempts < 0 {
		return fmt.Errorf("job: %d attempts", w.Attempts)
	}
	switch w.State {
	case JobStateDone:
		if w.Report == nil {
			return fmt.Errorf("job: done without a report")
		}
		if w.Error != "" {
			return fmt.Errorf("job: done with error %q", w.Error)
		}
		if err := w.Report.Validate(); err != nil {
			return fmt.Errorf("job: embedded report: %w", err)
		}
		if w.Protocol != "" && w.Report.Protocol != w.Protocol {
			return fmt.Errorf("job: protocol %q, embedded report says %q", w.Protocol, w.Report.Protocol)
		}
	case JobStateFailed, JobStateParked:
		if w.Error == "" {
			return fmt.Errorf("job: %s without an error", w.State)
		}
		if w.Report != nil {
			return fmt.Errorf("job: %s with a report", w.State)
		}
	default: // queued, running
		if w.Report != nil || w.Error != "" {
			return fmt.Errorf("job: %s job carries a result", w.State)
		}
		if w.SettledUnixMS != 0 {
			return fmt.Errorf("job: %s job has a settle stamp", w.State)
		}
	}
	if w.SettledUnixMS != 0 && w.EnqueuedUnixMS != 0 && w.SettledUnixMS < w.EnqueuedUnixMS {
		return fmt.Errorf("job: settled (%d) before enqueued (%d)", w.SettledUnixMS, w.EnqueuedUnixMS)
	}
	return nil
}

// Encode writes the document as stable, indented JSON with a trailing
// newline (the repo-wide results-file convention).
func (w *WireJob) Encode(out io.Writer) error {
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = out.Write(data)
	return err
}

// DecodeWireJob parses and validates a dip-job/v1 document.
func DecodeWireJob(r io.Reader) (*WireJob, error) {
	var w WireJob
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// ReadWireJobFile decodes and validates the job document at path.
func ReadWireJobFile(path string) (*WireJob, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return DecodeWireJob(in)
}
