package dip

import (
	"math/rand"
	"strings"
	"testing"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
)

// TestProtocolRoundsMatchSpecs pins the round counts stated in the registry
// to the actual protocol Specs, so the listing cannot drift when a protocol
// gains or loses a round.
func TestProtocolRoundsMatchSpecs(t *testing.T) {
	specOf := map[string]func() (*network.Spec, error){
		"sym-dmam": func() (*network.Spec, error) {
			p, err := core.NewSymDMAM(8, 1)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"sym-dam": func() (*network.Spec, error) {
			p, err := core.NewSymDAM(8, 1)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"dsym-dam": func() (*network.Spec, error) {
			p, err := core.NewDSymDAM(6, 1, 1)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"sym-lcp": func() (*network.Spec, error) {
			p, err := core.NewSymLCP(8)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"sym-rpls": func() (*network.Spec, error) {
			p, err := core.NewSymRPLS(8, 1)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"gni-damam": func() (*network.Spec, error) {
			p, err := core.NewGNIDAMAM(6, 2, 1)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"gni-general": func() (*network.Spec, error) {
			p, err := core.NewGNIGeneral(6, 2, 1)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"gni-marked": func() (*network.Spec, error) {
			p, err := core.NewMarkedGNI(14, 6, 2, 1)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
		"gni-lcp": func() (*network.Spec, error) {
			p, err := core.NewGNILCP(9)
			if err != nil {
				return nil, err
			}
			return p.Spec(), nil
		},
	}

	infos := Protocols()
	if len(infos) != len(specOf) {
		t.Fatalf("registry lists %d protocols, test covers %d", len(infos), len(specOf))
	}
	for _, info := range infos {
		build, ok := specOf[info.Name]
		if !ok {
			t.Errorf("protocol %q has no spec builder in this test", info.Name)
			continue
		}
		spec, err := build()
		if err != nil {
			t.Errorf("%s: %v", info.Name, err)
			continue
		}
		if got := len(spec.Rounds); got != info.Rounds {
			t.Errorf("%s: registry says %d rounds, Spec has %d", info.Name, info.Rounds, got)
		}
		if info.Family != "sym" && info.Family != "gni" {
			t.Errorf("%s: unknown family %q", info.Name, info.Family)
		}
		if info.Summary == "" {
			t.Errorf("%s: empty summary", info.Name)
		}
	}
}

// TestProtocolsSorted: the listing is sorted by name, so service responses
// and docs are stable.
func TestProtocolsSorted(t *testing.T) {
	infos := Protocols()
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("listing not sorted: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}
}

// TestRunRejectsUnknownProtocol and friends: dispatch-level validation.
func TestRunRejectsUnknownProtocol(t *testing.T) {
	_, err := Run(Request{Protocol: "sym-quantum", N: 4, Edges: [][2]int{{0, 1}}})
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v, want unknown-protocol error", err)
	}
}

func TestRunRejectsUnusedFields(t *testing.T) {
	cycle := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"edges1 on sym", Request{Protocol: "sym-dmam", N: 4, Edges: cycle, Edges1: cycle}, "takes no Edges1"},
		{"marks on sym", Request{Protocol: "sym-dam", N: 4, Edges: cycle, Marks: []int{0, 0, 1, 1}}, "takes no Marks"},
		{"side on sym", Request{Protocol: "sym-dmam", N: 4, Edges: cycle, Side: 3}, "takes no Side/Half"},
		{"marks on gni pair", Request{Protocol: "gni-damam", N: 4, Edges: cycle, Edges1: cycle, Marks: []int{0}}, "takes no Marks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.req)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestRunRejectsNegativeTimeout: Options validation matches the
// Repetitions style.
func TestRunRejectsNegativeTimeout(t *testing.T) {
	_, err := Run(Request{Protocol: "sym-dmam", N: 4,
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, Options: Options{Timeout: -1}})
	if err == nil || !strings.Contains(err.Error(), "Timeout must be non-negative") {
		t.Fatalf("err = %v, want negative-timeout error", err)
	}
}

// TestRunDSymDAMVertexCount: an explicit N must agree with the dumbbell's
// derived vertex count; 0 defers to it.
func TestRunDSymDAMVertexCount(t *testing.T) {
	proto, err := core.NewDSymDAM(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	edges := edgesOf(graph.DSymGraph(graph.ConnectedGNP(6, 0.5, rng), 1))
	if _, err := Run(Request{Protocol: "dsym-dam", Side: 6, Half: 1, N: proto.N() + 1, Edges: edges}); err == nil {
		t.Fatal("mismatched N accepted")
	}
	rep, err := Run(Request{Protocol: "dsym-dam", Side: 6, Half: 1, Edges: edges})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("honest dumbbell run rejected")
	}
}

// TestReportPerRound: the per-round breakdown has one entry per round and
// its prover bits sum to MaxProverBits at MaxNode.
func TestReportPerRound(t *testing.T) {
	rep, err := Run(Request{Protocol: "sym-dmam", N: 6,
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, Options: Options{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerRound) != 3 {
		t.Fatalf("PerRound has %d entries, want 3", len(rep.PerRound))
	}
	sum := 0
	for _, r := range rep.PerRound {
		if r.Kind != "Arthur" && r.Kind != "Merlin" {
			t.Fatalf("round kind %q", r.Kind)
		}
		sum += r.ToProver + r.FromProver
	}
	if sum != rep.MaxProverBits {
		t.Fatalf("per-round prover bits sum to %d, MaxProverBits = %d", sum, rep.MaxProverBits)
	}
	if rep.MaxNode < 0 || rep.MaxNode >= 6 {
		t.Fatalf("MaxNode = %d", rep.MaxNode)
	}
}
