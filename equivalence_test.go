package dip

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/peer"
)

// TestLegacyEntryPointsMatchRun is the facade's compatibility contract:
// every historical Prove* function must return a Report identical — field
// for field, per-round breakdown included — to dip.Run on the equivalent
// Request at the same seed. The table covers all eight protocol entry
// points, so any future divergence between a wrapper and the registry
// (changed defaults, reordered validation, different instance assembly)
// fails here before it reaches a release.
func TestLegacyEntryPointsMatchRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every protocol once")
	}

	cycle8 := edgesOf(graph.Cycle(8))
	ring24 := edgesOf(graph.Cycle(24))

	rng := rand.New(rand.NewSource(40))
	dumbbell := edgesOf(graph.DSymGraph(graph.ConnectedGNP(6, 0.5, rng), 1))

	// A rigid non-isomorphic pair for the GNI protocols.
	gniRng := rand.New(rand.NewSource(41))
	a, err := graph.RandomAsymmetricConnected(6, gniRng)
	if err != nil {
		t.Fatal(err)
	}
	var b *graph.Graph
	for {
		if b, err = graph.RandomAsymmetricConnected(6, gniRng); err != nil {
			t.Fatal(err)
		}
		if !graph.AreIsomorphic(a, b) {
			break
		}
	}
	edgesA, edgesB := edgesOf(a), edgesOf(b)

	// C6 vs K3,3: both symmetric, exercising the promise-free protocol.
	c6 := edgesOf(graph.Cycle(6))
	k33g := graph.New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			k33g.AddEdge(u, v)
		}
	}
	k33 := edgesOf(k33g)

	// Marked formulation: a on 0..5 (mark 0), b on 6..11 (mark 1), hub 12.
	markedN := 13
	marks := make([]int, markedN)
	var markedEdges [][2]int
	for v := 0; v < 6; v++ {
		marks[v] = 0
		marks[v+6] = 1
	}
	marks[12] = -1
	markedEdges = append(markedEdges, edgesA...)
	for _, e := range edgesB {
		markedEdges = append(markedEdges, [2]int{e[0] + 6, e[1] + 6})
	}
	for v := 0; v < 12; v++ {
		markedEdges = append(markedEdges, [2]int{v, 12})
	}

	cases := []struct {
		name   string
		legacy func() (Report, error)
		req    Request
	}{
		{
			name:   "ProveSymmetry",
			legacy: func() (Report, error) { return ProveSymmetry(8, cycle8, Options{Seed: 101}) },
			req:    Request{Protocol: "sym-dmam", N: 8, Edges: cycle8, Options: Options{Seed: 101}},
		},
		{
			name:   "ProveSymmetryChallengeFirst",
			legacy: func() (Report, error) { return ProveSymmetryChallengeFirst(8, cycle8, Options{Seed: 102}) },
			req:    Request{Protocol: "sym-dam", N: 8, Edges: cycle8, Options: Options{Seed: 102}},
		},
		{
			name:   "ProveSymmetryNonInteractive",
			legacy: func() (Report, error) { return ProveSymmetryNonInteractive(8, cycle8, Options{Seed: 103}) },
			req:    Request{Protocol: "sym-lcp", N: 8, Edges: cycle8, Options: Options{Seed: 103}},
		},
		{
			name:   "ProveSymmetryFingerprinted",
			legacy: func() (Report, error) { return ProveSymmetryFingerprinted(24, ring24, Options{Seed: 104}) },
			req:    Request{Protocol: "sym-rpls", N: 24, Edges: ring24, Options: Options{Seed: 104}},
		},
		{
			name:   "ProveDumbbellSymmetry",
			legacy: func() (Report, error) { return ProveDumbbellSymmetry(6, 1, dumbbell, Options{Seed: 105}) },
			req:    Request{Protocol: "dsym-dam", Side: 6, Half: 1, Edges: dumbbell, Options: Options{Seed: 105}},
		},
		{
			name: "ProveNonIsomorphism",
			legacy: func() (Report, error) {
				return ProveNonIsomorphism(6, edgesA, edgesB, Options{Seed: 106, Repetitions: 6})
			},
			req: Request{Protocol: "gni-damam", N: 6, Edges: edgesA, Edges1: edgesB,
				Options: Options{Seed: 106, Repetitions: 6}},
		},
		{
			name: "ProveNonIsomorphismGeneral",
			legacy: func() (Report, error) {
				return ProveNonIsomorphismGeneral(6, c6, k33, Options{Seed: 107, Repetitions: 6})
			},
			req: Request{Protocol: "gni-general", N: 6, Edges: c6, Edges1: k33,
				Options: Options{Seed: 107, Repetitions: 6}},
		},
		{
			name: "ProveInducedNonIsomorphism",
			legacy: func() (Report, error) {
				return ProveInducedNonIsomorphism(markedN, markedEdges, marks, Options{Seed: 108, Repetitions: 6})
			},
			req: Request{Protocol: "gni-marked", N: markedN, Edges: markedEdges, Marks: marks,
				Options: Options{Seed: 108, Repetitions: 6}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, lerr := tc.legacy()
			unified, uerr := Run(tc.req)
			if lerr != nil || uerr != nil {
				t.Fatalf("legacy err %v, Run err %v", lerr, uerr)
			}
			if legacy.Protocol != tc.req.Protocol {
				t.Fatalf("legacy report names protocol %q, want %q", legacy.Protocol, tc.req.Protocol)
			}
			if !reflect.DeepEqual(legacy, unified) {
				t.Fatalf("reports diverge at seed %d:\nlegacy  %+v\nunified %+v",
					tc.req.Options.Seed, legacy, unified)
			}
			// Same seed, same request: the run must also be deterministic,
			// or the equality above would be meaningless.
			again, err := Run(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(unified, again) {
				t.Fatalf("Run is not deterministic for %s at seed %d", tc.req.Protocol, tc.req.Options.Seed)
			}
		})
	}
}

// fleetTestRequests builds one request per registry protocol — every
// family, every instance shape (single graph, GNI pair, dumbbell, marked)
// — for the fleet equivalence column.
func fleetTestRequests(t *testing.T) []Request {
	t.Helper()
	cycle8 := edgesOf(graph.Cycle(8))
	ring24 := edgesOf(graph.Cycle(24))

	rng := rand.New(rand.NewSource(40))
	dumbbell := edgesOf(graph.DSymGraph(graph.ConnectedGNP(6, 0.5, rng), 1))

	gniRng := rand.New(rand.NewSource(41))
	a, err := graph.RandomAsymmetricConnected(6, gniRng)
	if err != nil {
		t.Fatal(err)
	}
	var b *graph.Graph
	for {
		if b, err = graph.RandomAsymmetricConnected(6, gniRng); err != nil {
			t.Fatal(err)
		}
		if !graph.AreIsomorphic(a, b) {
			break
		}
	}
	edgesA, edgesB := edgesOf(a), edgesOf(b)

	c6 := edgesOf(graph.Cycle(6))
	k33g := graph.New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			k33g.AddEdge(u, v)
		}
	}
	k33 := edgesOf(k33g)

	markedN := 13
	marks := make([]int, markedN)
	var markedEdges [][2]int
	for v := 0; v < 6; v++ {
		marks[v] = 0
		marks[v+6] = 1
	}
	marks[12] = -1
	markedEdges = append(markedEdges, edgesA...)
	for _, e := range edgesB {
		markedEdges = append(markedEdges, [2]int{e[0] + 6, e[1] + 6})
	}
	for v := 0; v < 12; v++ {
		markedEdges = append(markedEdges, [2]int{v, 12})
	}

	return []Request{
		{Protocol: "sym-dmam", N: 8, Edges: cycle8, Options: Options{Seed: 201}},
		{Protocol: "sym-dam", N: 8, Edges: cycle8, Options: Options{Seed: 202}},
		{Protocol: "sym-lcp", N: 8, Edges: cycle8, Options: Options{Seed: 203}},
		{Protocol: "sym-rpls", N: 24, Edges: ring24, Options: Options{Seed: 204}},
		{Protocol: "dsym-dam", Side: 6, Half: 1, Edges: dumbbell, Options: Options{Seed: 205}},
		{Protocol: "gni-damam", N: 6, Edges: edgesA, Edges1: edgesB,
			Options: Options{Seed: 206, Repetitions: 6}},
		{Protocol: "gni-general", N: 6, Edges: c6, Edges1: k33,
			Options: Options{Seed: 207, Repetitions: 6}},
		{Protocol: "gni-lcp", N: 6, Edges: edgesA, Edges1: edgesB,
			Options: Options{Seed: 208}},
		{Protocol: "gni-marked", N: markedN, Edges: markedEdges, Marks: marks,
			Options: Options{Seed: 209, Repetitions: 6}},
	}
}

// startDipPeers boots k in-process peer servers with the exact
// SpecBuilder cmd/dippeer installs — unmarshal a Request, rebuild via
// BuildSpec — and returns their addresses.
func startDipPeers(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &peer.Server{Build: func(params []byte) (*network.Spec, error) {
			var req Request
			if err := json.Unmarshal(params, &req); err != nil {
				return nil, err
			}
			return BuildSpec(req)
		}}
		go srv.Serve(l)
		t.Cleanup(func() {
			l.Close()
			srv.Close()
		})
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// TestFleetMatchesRun is the fleet column of the equivalence contract:
// every registry protocol, executed through dip.Fleet onto real TCP peer
// processes — all of them concurrently, multiplexed over one standing
// fleet — must produce a Report identical to dip.Run on the same request.
func TestFleetMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every protocol twice")
	}
	reqs := fleetTestRequests(t)
	fleet, err := DialFleet(startDipPeers(t, 3), FleetOptions{IOTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	type outcome struct {
		fleet *Report
		err   error
	}
	outcomes := make([]outcome, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			rep, err := fleet.Run(context.Background(), req)
			outcomes[i] = outcome{fleet: rep, err: err}
		}(i, req)
	}
	wg.Wait()

	for i, req := range reqs {
		t.Run(req.Protocol, func(t *testing.T) {
			if outcomes[i].err != nil {
				t.Fatalf("fleet run: %v", outcomes[i].err)
			}
			local, err := Run(req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*outcomes[i].fleet, local) {
				t.Fatalf("fleet report diverges from dip.Run:\nfleet %+v\nlocal %+v",
					*outcomes[i].fleet, local)
			}
		})
	}
}

// TestFleetUnderChaos is the fleet-under-chaos matrix cell: the soundness
// gates must hold on the real TCP path with socket-level faults injected.
// Under pure delay every run completes bit-identical to dip.Run (latency
// cannot change bytes). Under drop a run either completes — again
// bit-identical — or fails with a structured transport error; in
// particular a no-instance never turns into an accept, because a
// partition starves a session rather than forging frames.
func TestFleetUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix over the TCP path")
	}
	yes := Request{Protocol: "sym-dmam", N: 8, Edges: edgesOf(graph.Cycle(8)),
		Options: Options{Seed: 301}}
	rng := rand.New(rand.NewSource(302))
	asym, err := graph.RandomAsymmetricConnected(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	no := Request{Protocol: "sym-dmam", N: 7, Edges: edgesOf(asym),
		Options: Options{Seed: 303}}
	reqs := []Request{yes, no, yes, no}

	baselines := make([]Report, len(reqs))
	for i, req := range reqs {
		if baselines[i], err = Run(req); err != nil {
			t.Fatal(err)
		}
	}
	if !baselines[0].Accepted || baselines[1].Accepted {
		t.Fatalf("baseline outcomes inverted: yes=%v no=%v", baselines[0].Accepted, baselines[1].Accepted)
	}

	t.Run("delay", func(t *testing.T) {
		fleet, err := DialFleet(startDipPeers(t, 2), FleetOptions{
			IOTimeout:  30 * time.Second,
			LinkFaults: &LinkFaults{Seed: 7, Delay: time.Millisecond, DelayProb: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer fleet.Close()
		for i, req := range reqs {
			rep, err := fleet.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("delayed run %d: %v", i, err)
			}
			if !reflect.DeepEqual(*rep, baselines[i]) {
				t.Fatalf("delay changed the bytes of run %d", i)
			}
		}
	})

	t.Run("drop", func(t *testing.T) {
		fleet, err := DialFleet(startDipPeers(t, 2), FleetOptions{
			IOTimeout:  400 * time.Millisecond,
			LinkFaults: &LinkFaults{Seed: 11, DropProb: 0.05},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer fleet.Close()
		failed := 0
		for i, req := range reqs {
			rep, err := fleet.Run(context.Background(), req)
			if err != nil {
				var rerr *network.RunError
				if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport {
					t.Fatalf("lossy run %d failed unstructurally: %v", i, err)
				}
				failed++
				continue
			}
			if !reflect.DeepEqual(*rep, baselines[i]) {
				t.Fatalf("lossy run %d completed with different bytes", i)
			}
		}
		t.Logf("drop cell: %d/%d runs starved into transport errors", failed, len(reqs))
	})
}

// TestFleetRunValidation pins the error surface of the public API: bad
// requests fail before any session is minted, and a closed fleet fails
// with a structured transport error rather than a hang.
func TestFleetRunValidation(t *testing.T) {
	fleet, err := DialFleet(startDipPeers(t, 1), FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var reqErr *RequestError
	if _, err := fleet.Run(context.Background(), Request{Protocol: "no-such"}); !errors.As(err, &reqErr) {
		t.Fatalf("unknown protocol: err = %v, want *RequestError", err)
	}
	if err := fleet.Ready(); err != nil {
		t.Fatalf("Ready on a live fleet: %v", err)
	}
	fleet.Close()
	_, err = fleet.Run(context.Background(),
		Request{Protocol: "sym-dmam", N: 4, Edges: edgesOf(graph.Cycle(4)), Options: Options{Seed: 1}})
	var rerr *network.RunError
	if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport {
		t.Fatalf("run on closed fleet: err = %v, want PhaseTransport RunError", err)
	}
}
