package dip

import (
	"math/rand"
	"reflect"
	"testing"

	"dip/internal/graph"
)

// TestLegacyEntryPointsMatchRun is the facade's compatibility contract:
// every historical Prove* function must return a Report identical — field
// for field, per-round breakdown included — to dip.Run on the equivalent
// Request at the same seed. The table covers all eight protocol entry
// points, so any future divergence between a wrapper and the registry
// (changed defaults, reordered validation, different instance assembly)
// fails here before it reaches a release.
func TestLegacyEntryPointsMatchRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every protocol once")
	}

	cycle8 := edgesOf(graph.Cycle(8))
	ring24 := edgesOf(graph.Cycle(24))

	rng := rand.New(rand.NewSource(40))
	dumbbell := edgesOf(graph.DSymGraph(graph.ConnectedGNP(6, 0.5, rng), 1))

	// A rigid non-isomorphic pair for the GNI protocols.
	gniRng := rand.New(rand.NewSource(41))
	a, err := graph.RandomAsymmetricConnected(6, gniRng)
	if err != nil {
		t.Fatal(err)
	}
	var b *graph.Graph
	for {
		if b, err = graph.RandomAsymmetricConnected(6, gniRng); err != nil {
			t.Fatal(err)
		}
		if !graph.AreIsomorphic(a, b) {
			break
		}
	}
	edgesA, edgesB := edgesOf(a), edgesOf(b)

	// C6 vs K3,3: both symmetric, exercising the promise-free protocol.
	c6 := edgesOf(graph.Cycle(6))
	k33g := graph.New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			k33g.AddEdge(u, v)
		}
	}
	k33 := edgesOf(k33g)

	// Marked formulation: a on 0..5 (mark 0), b on 6..11 (mark 1), hub 12.
	markedN := 13
	marks := make([]int, markedN)
	var markedEdges [][2]int
	for v := 0; v < 6; v++ {
		marks[v] = 0
		marks[v+6] = 1
	}
	marks[12] = -1
	markedEdges = append(markedEdges, edgesA...)
	for _, e := range edgesB {
		markedEdges = append(markedEdges, [2]int{e[0] + 6, e[1] + 6})
	}
	for v := 0; v < 12; v++ {
		markedEdges = append(markedEdges, [2]int{v, 12})
	}

	cases := []struct {
		name   string
		legacy func() (Report, error)
		req    Request
	}{
		{
			name:   "ProveSymmetry",
			legacy: func() (Report, error) { return ProveSymmetry(8, cycle8, Options{Seed: 101}) },
			req:    Request{Protocol: "sym-dmam", N: 8, Edges: cycle8, Options: Options{Seed: 101}},
		},
		{
			name:   "ProveSymmetryChallengeFirst",
			legacy: func() (Report, error) { return ProveSymmetryChallengeFirst(8, cycle8, Options{Seed: 102}) },
			req:    Request{Protocol: "sym-dam", N: 8, Edges: cycle8, Options: Options{Seed: 102}},
		},
		{
			name:   "ProveSymmetryNonInteractive",
			legacy: func() (Report, error) { return ProveSymmetryNonInteractive(8, cycle8, Options{Seed: 103}) },
			req:    Request{Protocol: "sym-lcp", N: 8, Edges: cycle8, Options: Options{Seed: 103}},
		},
		{
			name:   "ProveSymmetryFingerprinted",
			legacy: func() (Report, error) { return ProveSymmetryFingerprinted(24, ring24, Options{Seed: 104}) },
			req:    Request{Protocol: "sym-rpls", N: 24, Edges: ring24, Options: Options{Seed: 104}},
		},
		{
			name:   "ProveDumbbellSymmetry",
			legacy: func() (Report, error) { return ProveDumbbellSymmetry(6, 1, dumbbell, Options{Seed: 105}) },
			req:    Request{Protocol: "dsym-dam", Side: 6, Half: 1, Edges: dumbbell, Options: Options{Seed: 105}},
		},
		{
			name: "ProveNonIsomorphism",
			legacy: func() (Report, error) {
				return ProveNonIsomorphism(6, edgesA, edgesB, Options{Seed: 106, Repetitions: 6})
			},
			req: Request{Protocol: "gni-damam", N: 6, Edges: edgesA, Edges1: edgesB,
				Options: Options{Seed: 106, Repetitions: 6}},
		},
		{
			name: "ProveNonIsomorphismGeneral",
			legacy: func() (Report, error) {
				return ProveNonIsomorphismGeneral(6, c6, k33, Options{Seed: 107, Repetitions: 6})
			},
			req: Request{Protocol: "gni-general", N: 6, Edges: c6, Edges1: k33,
				Options: Options{Seed: 107, Repetitions: 6}},
		},
		{
			name: "ProveInducedNonIsomorphism",
			legacy: func() (Report, error) {
				return ProveInducedNonIsomorphism(markedN, markedEdges, marks, Options{Seed: 108, Repetitions: 6})
			},
			req: Request{Protocol: "gni-marked", N: markedN, Edges: markedEdges, Marks: marks,
				Options: Options{Seed: 108, Repetitions: 6}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacy, lerr := tc.legacy()
			unified, uerr := Run(tc.req)
			if lerr != nil || uerr != nil {
				t.Fatalf("legacy err %v, Run err %v", lerr, uerr)
			}
			if legacy.Protocol != tc.req.Protocol {
				t.Fatalf("legacy report names protocol %q, want %q", legacy.Protocol, tc.req.Protocol)
			}
			if !reflect.DeepEqual(legacy, unified) {
				t.Fatalf("reports diverge at seed %d:\nlegacy  %+v\nunified %+v",
					tc.req.Options.Seed, legacy, unified)
			}
			// Same seed, same request: the run must also be deterministic,
			// or the equality above would be meaningless.
			again, err := Run(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(unified, again) {
				t.Fatalf("Run is not deterministic for %s at seed %d", tc.req.Protocol, tc.req.Options.Seed)
			}
		})
	}
}
