module dip

go 1.22
