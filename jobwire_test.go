package dip

import (
	"bytes"
	"strings"
	"testing"
)

func validWireJob() *WireJob {
	return &WireJob{
		Schema:         JobSchema,
		ID:             "j-1",
		State:          JobStateDone,
		Protocol:       "sym-dmam",
		Attempts:       1,
		EnqueuedUnixMS: 1000,
		SettledUnixMS:  2000,
		Report: &WireReport{
			Schema:   ReportSchema,
			Protocol: "sym-dmam",
			Nodes:    4,
			Seed:     1,
			Accepted: true,
		},
	}
}

// TestWireJobRoundTrip: Encode then Decode yields an identical, valid
// document.
func TestWireJobRoundTrip(t *testing.T) {
	w := validWireJob()
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWireJob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != w.ID || got.State != w.State || got.Report == nil || got.Report.Protocol != "sym-dmam" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

// TestWireJobValidate walks the invariant table: every mutation below
// must be refused with a diagnostic mentioning the broken field.
func TestWireJobValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*WireJob)
		want string
	}{
		{"wrong schema", func(w *WireJob) { w.Schema = "nope/v1" }, "schema"},
		{"missing id", func(w *WireJob) { w.ID = "" }, "missing id"},
		{"unknown state", func(w *WireJob) { w.State = "zombie" }, "unknown state"},
		{"negative attempts", func(w *WireJob) { w.Attempts = -1 }, "attempts"},
		{"done without report", func(w *WireJob) { w.Report = nil }, "without a report"},
		{"done with error", func(w *WireJob) { w.Error = "boom" }, "with error"},
		{"invalid embedded report", func(w *WireJob) { w.Report.Nodes = 0 }, "embedded report"},
		{"protocol mismatch", func(w *WireJob) { w.Protocol = "sym-dam" }, "embedded report says"},
		{"failed without error", func(w *WireJob) {
			w.State = JobStateFailed
			w.Report = nil
		}, "without an error"},
		{"parked with report", func(w *WireJob) {
			w.State = JobStateParked
			w.Error = "poison"
		}, "with a report"},
		{"queued with result", func(w *WireJob) {
			w.State = JobStateQueued
			w.SettledUnixMS = 0
		}, "carries a result"},
		{"running with settle stamp", func(w *WireJob) {
			w.State = JobStateRunning
			w.Report = nil
		}, "settle stamp"},
		{"settled before enqueued", func(w *WireJob) {
			w.EnqueuedUnixMS = 5000
		}, "before enqueued"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := validWireJob()
			tc.mut(w)
			err := w.Validate()
			if err == nil {
				t.Fatalf("mutation accepted: %+v", w)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Sanity: the unmutated document is valid, as are the non-done
	// terminal and live shapes.
	if err := validWireJob().Validate(); err != nil {
		t.Fatalf("valid document refused: %v", err)
	}
	failed := &WireJob{Schema: JobSchema, ID: "j", State: JobStateFailed, Error: "bad", Attempts: 1, EnqueuedUnixMS: 1, SettledUnixMS: 2}
	if err := failed.Validate(); err != nil {
		t.Fatalf("valid failed document refused: %v", err)
	}
	queued := &WireJob{Schema: JobSchema, ID: "j", State: JobStateQueued, EnqueuedUnixMS: 1}
	if err := queued.Validate(); err != nil {
		t.Fatalf("valid queued document refused: %v", err)
	}
}
