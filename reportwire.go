package dip

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReportSchema identifies the versioned JSON encoding of a single protocol
// run. It is the one report format of the project: cmd/dipsim -json writes
// it, cmd/dipserve answers every run request with it, cmd/dipload decodes
// it, and cmd/dipbench -validate checks it.
const ReportSchema = "dip-report/v1"

// WireReport is the dip-report/v1 document: a Report plus the identifying
// context of the run (protocol, size, seed) and optional provenance fields
// filled by the tool that produced it.
type WireReport struct {
	Schema   string `json:"schema"`
	Protocol string `json:"protocol"`
	// Nodes is the network size of the run.
	Nodes int   `json:"nodes"`
	Seed  int64 `json:"seed"`
	// Accepted and RejectingNodes encode the outcome; RejectingNodes lists
	// the indices that output reject (empty iff Accepted).
	Accepted       bool  `json:"accepted"`
	RejectingNodes []int `json:"rejecting_nodes,omitempty"`
	// Cost block, as in Report.
	MaxProverBits     int         `json:"max_prover_bits"`
	TotalProverBits   int         `json:"total_prover_bits"`
	MaxNodeToNodeBits int         `json:"max_node_to_node_bits"`
	MaxNode           int         `json:"max_node"`
	PerRound          []RoundCost `json:"per_round,omitempty"`

	// Optional provenance, filled by tools that know it. Graph names the
	// generator used to build the instance (dipsim); the Fault block
	// records injected faults; Deliveries/DeliveredBits are engine-wide
	// delivery counters for the run.
	Graph         string  `json:"graph,omitempty"`
	Fault         string  `json:"fault,omitempty"`
	FaultPlane    string  `json:"fault_plane,omitempty"`
	FaultProb     float64 `json:"fault_prob,omitempty"`
	Deliveries    int64   `json:"deliveries,omitempty"`
	DeliveredBits int64   `json:"delivered_bits,omitempty"`
}

// WireReportFrom shapes a Report into its dip-report/v1 document. seed is
// the Options.Seed of the run (the Report itself does not carry it).
func WireReportFrom(rep Report, seed int64) *WireReport {
	var rejecting []int
	for v, ok := range rep.Decisions {
		if !ok {
			rejecting = append(rejecting, v)
		}
	}
	return &WireReport{
		Schema:            ReportSchema,
		Protocol:          rep.Protocol,
		Nodes:             len(rep.Decisions),
		Seed:              seed,
		Accepted:          rep.Accepted,
		RejectingNodes:    rejecting,
		MaxProverBits:     rep.MaxProverBits,
		TotalProverBits:   rep.TotalProverBits,
		MaxNodeToNodeBits: rep.MaxNodeToNodeBits,
		MaxNode:           rep.MaxNode,
		PerRound:          rep.PerRound,
	}
}

// Validate checks the structural invariants of a dip-report/v1 document.
func (w *WireReport) Validate() error {
	if w.Schema != ReportSchema {
		return fmt.Errorf("report: schema %q, want %q", w.Schema, ReportSchema)
	}
	if w.Protocol == "" {
		return fmt.Errorf("report: missing protocol")
	}
	if w.Nodes < 1 {
		return fmt.Errorf("report: %d nodes", w.Nodes)
	}
	if len(w.RejectingNodes) > w.Nodes {
		return fmt.Errorf("report: %d rejecting nodes of %d", len(w.RejectingNodes), w.Nodes)
	}
	if w.Accepted != (len(w.RejectingNodes) == 0) {
		return fmt.Errorf("report: accepted=%v with %d rejecting nodes", w.Accepted, len(w.RejectingNodes))
	}
	for _, v := range w.RejectingNodes {
		if v < 0 || v >= w.Nodes {
			return fmt.Errorf("report: rejecting node %d outside [0,%d)", v, w.Nodes)
		}
	}
	if w.MaxNode < 0 || w.MaxNode >= w.Nodes {
		return fmt.Errorf("report: max_node %d outside [0,%d)", w.MaxNode, w.Nodes)
	}
	if w.MaxProverBits < 0 || w.TotalProverBits < w.MaxProverBits || w.MaxNodeToNodeBits < 0 {
		return fmt.Errorf("report: inconsistent cost block (max %d, total %d, n2n %d)",
			w.MaxProverBits, w.TotalProverBits, w.MaxNodeToNodeBits)
	}
	if len(w.PerRound) > 0 {
		sum := 0
		for i, r := range w.PerRound {
			if r.Kind != "Arthur" && r.Kind != "Merlin" {
				return fmt.Errorf("report: round %d kind %q", i, r.Kind)
			}
			if r.ToProver < 0 || r.FromProver < 0 || r.NodeToNode < 0 {
				return fmt.Errorf("report: round %d has negative bits", i)
			}
			sum += r.ToProver + r.FromProver
		}
		// PerRound is the breakdown at MaxNode, so its prover bits sum to
		// the max-node cost exactly.
		if sum != w.MaxProverBits {
			return fmt.Errorf("report: per-round prover bits sum to %d, max_prover_bits %d", sum, w.MaxProverBits)
		}
	}
	if w.FaultProb < 0 || w.FaultProb > 1 {
		return fmt.Errorf("report: fault_prob %v", w.FaultProb)
	}
	if w.Deliveries < 0 || w.DeliveredBits < 0 {
		return fmt.Errorf("report: negative delivery counters")
	}
	return nil
}

// Encode writes the document as stable, indented JSON with a trailing
// newline (the repo-wide results-file convention).
func (w *WireReport) Encode(out io.Writer) error {
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = out.Write(data)
	return err
}

// DecodeWireReport parses and validates a dip-report/v1 document.
func DecodeWireReport(r io.Reader) (*WireReport, error) {
	var w WireReport
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	// Canonicalize: an explicitly-empty list and an absent one are the
	// same document, but Encode (omitempty) only ever writes the absent
	// form — without this a `"per_round": []` input would not survive a
	// decode/encode round trip bit-identically.
	if len(w.RejectingNodes) == 0 {
		w.RejectingNodes = nil
	}
	if len(w.PerRound) == 0 {
		w.PerRound = nil
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// ReadWireReportFile decodes and validates the report at path.
func ReadWireReportFile(path string) (*WireReport, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return DecodeWireReport(in)
}
