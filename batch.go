package dip

import (
	"context"
	"testing"

	"dip/internal/graph"
	"dip/internal/stats"
)

// BatchResult is one item's outcome in a RunBatch call: exactly one of
// Report (Err == nil) or Err is meaningful.
type BatchResult struct {
	Report Report
	Err    error
}

// RunBatch executes the requests in order and returns one result per
// request. A failed item does not abort the batch: later items still run,
// and the caller pairs results with requests by index.
//
// Batching exists for throughput: items that share an instance (same
// graph, same protocol parameters, same seed) hit the setup caches after
// the first item, so the per-item cost drops to the engine run itself.
// The reports are identical to running each request alone — batching
// changes scheduling, never semantics.
func RunBatch(reqs []Request) []BatchResult {
	return RunBatchContext(context.Background(), reqs)
}

// RunBatchContext is RunBatch bounded by a context. Cancellation marks
// every not-yet-started item with the context error; the in-flight item
// aborts at the engine's next step, as in RunContext.
func RunBatchContext(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			continue
		}
		out[i].Report, out[i].Err = RunContext(ctx, reqs[i])
	}
	return out
}

// requestBenchNodes matches cmd/dipload's default instance size.
const requestBenchNodes = 64

// requestBenchTrials keeps the measurement under ~50ms at the workload's
// steady-state cost.
const requestBenchTrials = 50

// MeasureRequestAllocs replays the load generator's reference workload —
// sym-dmam on a 64-vertex cycle, a fresh derived seed per request, exactly
// what `dipload -protocol sym-dmam -n 64` sends — under
// testing.AllocsPerRun and reports the steady-state allocations per
// request. The figure belongs in the request_bench block of dip-load/v1
// files, where `dipbench -bench-check` diffs it against a fresh
// measurement and fails on regressions. The warmup run AllocsPerRun
// performs also warms the setup caches, so the figure is the steady state
// a loaded service sees (per-request seeds vary, so protocol construction
// including its prime search is deliberately NOT amortized here).
func MeasureRequestAllocs() (float64, error) {
	edges := graph.Cycle(requestBenchNodes).Edges()
	var i int64
	var runErr error
	allocs := testing.AllocsPerRun(requestBenchTrials, func() {
		if runErr != nil {
			return
		}
		req := Request{
			Protocol: "sym-dmam",
			N:        requestBenchNodes,
			Edges:    edges,
			Options:  Options{Seed: stats.DeriveSeed(1, i)},
		}
		i++
		if _, err := Run(req); err != nil {
			runErr = err
		}
	})
	return allocs, runErr
}
