package dip

import (
	"strings"
	"testing"
)

// TestBuildSpecAllProtocols exercises the peer-provisioning path for every
// registry protocol: a request with the edge lists stripped (the form a
// dippeer fleet receives in its handshake) must still rebuild a Spec, and
// repeated builds must agree on the protocol structure — the constructors
// behind them are memoized per (protocol, params, seed), so callbacks in
// both specs close over the same cached instance.
func TestBuildSpecAllProtocols(t *testing.T) {
	marks := []int{0, 0, 0, 1, -1, -1}
	stripped := map[string]Request{
		"sym-dmam":    {Protocol: "sym-dmam", N: 8, Options: Options{Seed: 3}},
		"sym-dam":     {Protocol: "sym-dam", N: 8, Options: Options{Seed: 3}},
		"dsym-dam":    {Protocol: "dsym-dam", Side: 6, Half: 1, Options: Options{Seed: 3}},
		"sym-lcp":     {Protocol: "sym-lcp", N: 8},
		"sym-rpls":    {Protocol: "sym-rpls", N: 8, Options: Options{Seed: 3}},
		"gni-damam":   {Protocol: "gni-damam", N: 6, Options: Options{Seed: 3, Repetitions: 2}},
		"gni-general": {Protocol: "gni-general", N: 6, Options: Options{Seed: 3, Repetitions: 2}},
		"gni-marked":  {Protocol: "gni-marked", N: 6, Marks: marks, Options: Options{Seed: 3, Repetitions: 2}},
		"gni-lcp":     {Protocol: "gni-lcp", N: 6},
	}
	for name, e := range registry {
		req, ok := stripped[name]
		if !ok {
			t.Errorf("no BuildSpec fixture for protocol %q — add one", name)
			continue
		}
		spec, err := BuildSpec(req)
		if err != nil {
			t.Errorf("%s: BuildSpec: %v", name, err)
			continue
		}
		if spec.Name != name {
			t.Errorf("%s: spec named %q", name, spec.Name)
		}
		again, err := e.spec(&req)
		if err != nil {
			t.Errorf("%s: second build: %v", name, err)
			continue
		}
		if again.Name != spec.Name || len(again.Rounds) != len(spec.Rounds) ||
			again.ShareChallenges != spec.ShareChallenges {
			t.Errorf("%s: rebuilt spec diverges: %d rounds share=%v vs %d rounds share=%v",
				name, len(spec.Rounds), spec.ShareChallenges, len(again.Rounds), again.ShareChallenges)
		}
		for i := range spec.Rounds {
			if spec.Rounds[i].Kind != again.Rounds[i].Kind {
				t.Errorf("%s: round %d kind differs across builds", name, i)
			}
		}
	}
}

func TestBuildSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		frag string
	}{
		{"unknown", Request{Protocol: "nope"}, "unknown protocol"},
		{"stray-edges1", Request{Protocol: "sym-dmam", N: 4, Edges1: [][2]int{{0, 1}}}, "takes no Edges1"},
		{"stray-marks", Request{Protocol: "sym-dam", N: 4, Marks: []int{0, 0, 1, 1}}, "takes no Marks"},
		{"stray-side", Request{Protocol: "sym-lcp", N: 4, Side: 3}, "takes no Side"},
		{"marks-length", Request{Protocol: "gni-marked", N: 4, Marks: []int{0}}, "marks for"},
		{"bad-mark", Request{Protocol: "gni-marked", N: 2, Marks: []int{0, 7}}, "mark 7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildSpec(tc.req); err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want mention of %q", err, tc.frag)
			}
		})
	}
}
