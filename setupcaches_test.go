package dip

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/stats"
)

// cacheTestRequests is a mixed workload hitting every cache from several
// angles: two symmetry protocols on two instance sizes, repeated seeds
// (protocol-cache hits) and fresh seeds (misses), plus a baseline scheme.
func cacheTestRequests() []Request {
	var reqs []Request
	for _, n := range []int{8, 12} {
		edges := graph.Cycle(n).Edges()
		for _, proto := range []string{"sym-dmam", "sym-dam", "sym-rpls"} {
			for i := int64(0); i < 3; i++ {
				reqs = append(reqs, Request{
					Protocol: proto,
					N:        n,
					Edges:    edges,
					Options:  Options{Seed: stats.DeriveSeed(7, i)},
				})
			}
			// Repeat the first seed: the warm path must hit the protocol
			// cache and still answer identically.
			reqs = append(reqs, Request{
				Protocol: proto,
				N:        n,
				Edges:    edges,
				Options:  Options{Seed: stats.DeriveSeed(7, 0)},
			})
		}
	}
	return reqs
}

// encodeReport renders a run's outcome at the dip-report/v1 level — the
// byte stream a service client actually receives.
func encodeReport(t *testing.T, req Request) []byte {
	t.Helper()
	rep, err := Run(req)
	if err != nil {
		t.Fatalf("%s n=%d seed=%d: %v", req.Protocol, req.N, req.Options.Seed, err)
	}
	var buf bytes.Buffer
	if err := WireReportFrom(rep, req.Options.Seed).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCachedRunsByteIdentical is the setup-cache invariant: a request
// answered from warm caches is byte-identical at the dip-report/v1 level
// to the same request on fully cold caches. Every cache layer is in play —
// graphs, protocol instances, per-graph artifacts, compiled scripts.
func TestCachedRunsByteIdentical(t *testing.T) {
	reqs := cacheTestRequests()

	ResetSetupCaches()
	cold := make([][]byte, len(reqs))
	for i, req := range reqs {
		// Reset between every cold run so no request warms a cache for a
		// later one: each cold answer is the from-scratch ground truth.
		ResetSetupCaches()
		cold[i] = encodeReport(t, req)
	}

	ResetSetupCaches()
	for round := 0; round < 3; round++ {
		for i, req := range reqs {
			warm := encodeReport(t, req)
			if !bytes.Equal(cold[i], warm) {
				t.Fatalf("round %d: %s n=%d seed=%d: warm report differs from cold\ncold: %s\nwarm: %s",
					round, req.Protocol, req.N, req.Options.Seed, cold[i], warm)
			}
		}
	}
}

// TestRunBatchMatchesSingleRuns: batching is a scheduling optimization,
// not a semantic one — each batch item's report is byte-identical to the
// same request run alone.
func TestRunBatchMatchesSingleRuns(t *testing.T) {
	reqs := cacheTestRequests()
	ResetSetupCaches()
	want := make([][]byte, len(reqs))
	for i, req := range reqs {
		want[i] = encodeReport(t, req)
	}

	results := RunBatch(reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		var buf bytes.Buffer
		if err := WireReportFrom(res.Report, reqs[i].Options.Seed).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want[i], buf.Bytes()) {
			t.Fatalf("item %d (%s): batch report differs from single run", i, reqs[i].Protocol)
		}
	}
}

// TestRunBatchPartialFailure: a bad item yields its own error and leaves
// the rest of the batch untouched.
func TestRunBatchPartialFailure(t *testing.T) {
	edges := graph.Cycle(6).Edges()
	reqs := []Request{
		{Protocol: "sym-dmam", N: 6, Edges: edges, Options: Options{Seed: 1}},
		{Protocol: "sym-dmam", N: 6, Edges: [][2]int{{0, 9}}, Options: Options{Seed: 1}},
		{Protocol: "sym-dmam", N: 6, Edges: edges, Options: Options{Seed: 2}},
	}
	results := RunBatch(reqs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good items failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("bad item did not fail")
	}
}

// TestConcurrentMixedRequestStorm hammers the full request path — setup
// caches, sharded state pools, script cache — with mixed (protocol, n)
// requests from many goroutines. Run under -race this is the cache/pool
// data-race check; in any mode it verifies every concurrent answer is
// bit-identical to the cold-path reference and that the state pool leaks
// nothing (free states never exceed capacity).
func TestConcurrentMixedRequestStorm(t *testing.T) {
	reqs := cacheTestRequests()

	ResetSetupCaches()
	ref := make([][]byte, len(reqs))
	for i, req := range reqs {
		ResetSetupCaches()
		ref[i] = encodeReport(t, req)
	}

	ResetSetupCaches()
	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the order per worker so different (protocol, n)
				// pairs collide in the caches at the same time.
				for k := range reqs {
					i := (k*7 + w*3 + r) % len(reqs)
					rep, err := Run(reqs[i])
					if err != nil {
						errCh <- fmt.Errorf("worker %d: %s: %v", w, reqs[i].Protocol, err)
						return
					}
					var buf bytes.Buffer
					if err := WireReportFrom(rep, reqs[i].Options.Seed).Encode(&buf); err != nil {
						errCh <- err
						return
					}
					if !bytes.Equal(ref[i], buf.Bytes()) {
						errCh <- fmt.Errorf("worker %d: %s n=%d seed=%d: concurrent report differs from cold reference",
							w, reqs[i].Protocol, reqs[i].N, reqs[i].Options.Seed)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := network.StatePoolStats()
	if st.Free > st.Capacity {
		t.Fatalf("state pool leak: %d free states for capacity %d", st.Free, st.Capacity)
	}
	for i, sh := range st.Shards {
		if sh.Free > sh.Capacity {
			t.Fatalf("shard %d leak: %d free for capacity %d", i, sh.Free, sh.Capacity)
		}
	}
	if st.Overflow != nil && st.Overflow.Free > st.Overflow.Capacity {
		t.Fatalf("overflow leak: %d free for capacity %d", st.Overflow.Free, st.Overflow.Capacity)
	}
}
