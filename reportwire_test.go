package dip

import (
	"bytes"
	"strings"
	"testing"
)

// TestWireReportRoundTrip: a real run encodes, decodes, and validates.
func TestWireReportRoundTrip(t *testing.T) {
	rep, err := Run(Request{Protocol: "sym-dmam", N: 6,
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, Options: Options{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	w := WireReportFrom(rep, 9)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("encoded report lacks trailing newline")
	}
	got, err := DecodeWireReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != "sym-dmam" || got.Nodes != 6 || got.Seed != 9 ||
		got.MaxProverBits != rep.MaxProverBits || len(got.PerRound) != len(rep.PerRound) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestWireReportValidate: each invariant fires.
func TestWireReportValidate(t *testing.T) {
	good := func() *WireReport {
		return &WireReport{
			Schema: ReportSchema, Protocol: "sym-dam", Nodes: 4, Accepted: true,
			MaxProverBits: 10, TotalProverBits: 30, MaxNodeToNodeBits: 2, MaxNode: 1,
			PerRound: []RoundCost{{Kind: "Arthur", ToProver: 4}, {Kind: "Merlin", FromProver: 6}},
		}
	}
	cases := []struct {
		name  string
		mod   func(*WireReport)
		wants string
	}{
		{"wrong schema", func(w *WireReport) { w.Schema = "dip-report/v0" }, "schema"},
		{"no protocol", func(w *WireReport) { w.Protocol = "" }, "missing protocol"},
		{"accepted with rejectors", func(w *WireReport) { w.RejectingNodes = []int{2} }, "rejecting"},
		{"rejector out of range", func(w *WireReport) { w.Accepted = false; w.RejectingNodes = []int{9} }, "outside"},
		{"max node out of range", func(w *WireReport) { w.MaxNode = 4 }, "max_node"},
		{"total below max", func(w *WireReport) { w.TotalProverBits = 5 }, "cost block"},
		{"per-round sum off", func(w *WireReport) { w.PerRound[0].ToProver = 5 }, "per-round"},
		{"bad round kind", func(w *WireReport) { w.PerRound[0].Kind = "Oracle" }, "kind"},
		{"fault prob", func(w *WireReport) { w.FaultProb = 1.5 }, "fault_prob"},
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := good()
			tc.mod(w)
			err := w.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.wants) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wants)
			}
		})
	}
}
