package dip

import "fmt"

// RequestError marks a failure attributable to the request itself —
// an unknown protocol, an invalid graph, out-of-range options — as
// opposed to a failure of the run (engine errors carry a
// *network.RunError) or of the process (anything else). The serving
// layer keys its HTTP status taxonomy on this distinction: request
// errors are the caller's fault (4xx), everything unclassified is the
// server's (5xx). Every validation path of the request API wraps its
// errors in RequestError; errors.As unwraps through fmt wrapping as
// usual.
type RequestError struct {
	Err error
}

func (e *RequestError) Error() string { return e.Err.Error() }

func (e *RequestError) Unwrap() error { return e.Err }

// badRequestf builds a RequestError from a format string.
func badRequestf(format string, args ...any) error {
	return &RequestError{Err: fmt.Errorf(format, args...)}
}

// asBadRequest wraps err as a RequestError, passing nil through and
// leaving already-classified request errors untouched (so messages are
// not double-wrapped on nested validation paths).
func asBadRequest(err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*RequestError); ok {
		return err
	}
	return &RequestError{Err: err}
}
