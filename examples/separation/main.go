// Separation: the exponential gap between "distributed NP" and
// distributed AM (Theorem 1.2).
//
// The Dumbbell Symmetry language DSym (Definition 5) fixes the candidate
// automorphism, which kills the commitment round: a single Arthur-Merlin
// exchange with an O(log n)-bit hash suffices. Without interaction, the
// same language provably needs Ω(n²)-bit advice ([17]). This example runs
// both on the same instances and prints the widening gap.
//
//	go run ./examples/separation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dip"
	"dip/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	fmt.Println("DSym: interactive O(log n) vs non-interactive Θ(n²)")
	fmt.Printf("%8s  %14s  %14s  %8s\n", "vertices", "dAM bits/node", "LCP bits/node", "ratio")

	for _, side := range []int{6, 12, 24, 48} {
		const half = 1
		f := graph.ConnectedGNP(side, 0.5, rng)
		g := graph.DSymGraph(f, half)
		edges := g.Edges()

		rep, err := dip.ProveDumbbellSymmetry(side, half, edges, dip.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Accepted {
			log.Fatalf("dAM rejected a DSym instance (side %d)", side)
		}

		lcpBits, err := dip.SymmetryAdviceBits(g.N())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %14d  %14d  %7.1fx\n",
			g.N(), rep.MaxProverBits, lcpBits, float64(lcpBits)/float64(rep.MaxProverBits))
	}
	fmt.Println("\nthe ratio grows ~ n²/log n: interaction is exponentially cheaper")
}
