// Lowerbound: the Section 3.4 packing argument, made computational.
//
// Theorem 1.4 says every dAM protocol for Symmetry needs Ω(log log n) bits.
// The proof builds dumbbell graphs from a family F of rigid, pairwise
// non-isomorphic graphs, shows the prover's possible answers to the bridge
// nodes must look different for different family members, and packs the
// resulting far-apart distributions into a small cube. This example
// reproduces each ingredient on the exactly-enumerated 6-vertex family.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dip/internal/lower"
)

func main() {
	// Ingredient 1: the family F — every connected rigid graph on six
	// vertices, up to isomorphism, by exhaustive enumeration of all 2^15
	// graphs.
	fam, err := lower.Family(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|F(6)| = %d rigid, pairwise non-isomorphic graphs\n", len(fam))

	// Ingredient 2: the dumbbell criterion — G(F_A, F_B) is symmetric iff
	// the two sides are the same family member. Verified on every pair.
	if err := lower.VerifySymmetryCriterion(fam); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dumbbell criterion verified on all %d pairs\n\n", len(fam)*len(fam))

	// Ingredient 3: response-set semantics on a concrete simple-protocol
	// family. Sweeping the response length L shows the optimal cheater's
	// acceptance falling like 2^-L (Lemma 3.9) and, once the protocol is
	// sound, every pair of family members disagreeing on ≥ 2/3 of the
	// challenges (the Lemma 3.11 separation).
	sides := lower.MakeSides(fam)
	fmt.Println("L   max cheat acceptance   min pairwise disagreement   verdict")
	for _, L := range []int{1, 2, 3, 4, 6} {
		p := lower.SimpleHashProtocol{L: L, R: 4096}
		worst := p.MaxNoAcceptance(sides)
		dis := p.MinPairwiseDisagreement(sides)
		verdict := "unsound"
		if worst < 1.0/3 {
			verdict = "sound"
		}
		fmt.Printf("%d   %20.3f   %25.3f   %s\n", L, worst, dis, verdict)
	}

	// Ingredient 4: the packing arithmetic. At most 5^d far-apart
	// distributions fit in dimension d (Lemma 3.12); with d = 2^{2^{4L}}
	// and |F(n)| = 2^{Ω(n²)}, the response length must grow like
	// log log n.
	fmt.Println("\npacking capacities (Lemma 3.12): 5^d, with a greedy Monte Carlo packing")
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{1, 2, 4, 8} {
		fmt.Printf("  d=%d: cap %v, greedy packing found %d\n",
			d, lower.PackingCapacity(d), lower.GreedyPacking(d, 4000, rng))
	}
	fmt.Println("\nTheorem 1.4 bound: minimal response length forced by packing")
	for _, n := range []int{64, 1 << 10, 1 << 16, 1 << 24, 1 << 30} {
		fmt.Printf("  n=%-12d lg|F| ≈ %8.0f   L ≥ %d\n",
			n, lower.FamilyLogSize(n), lower.MinResponseBound(n))
	}
	fmt.Println("\nthe bound grows (doubly-logarithmically) without limit: no constant-bit dAM protocol decides Sym")
}
