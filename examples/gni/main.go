// GNI: a data holder convinces its clients that two communities differ.
//
// This is the paper's motivating scenario (Section 1): a central entity —
// here, a social-network operator — knows the full topology; the members
// of community A form the network graph G₀, and each member also receives
// its row of a second community's graph G₁. The operator claims the two
// community structures are NOT isomorphic (e.g. "your group is organized
// differently from the control group"), and proves it interactively with
// the distributed Goldwasser-Sipser protocol (Theorem 1.5), paying
// O(n log n) bits per member.
//
//	go run ./examples/gni
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dip"
	"dip/internal/graph"
)

func main() {
	const n = 6
	rng := rand.New(rand.NewSource(11))

	// Two rigid (asymmetric) community graphs — the paper's promise.
	communityA, err := graph.RandomAsymmetricConnected(n, rng)
	if err != nil {
		log.Fatal(err)
	}
	communityB, err := graph.RandomAsymmetricConnected(n, rng)
	if err != nil {
		log.Fatal(err)
	}
	for graph.AreIsomorphic(communityA, communityB) {
		if communityB, err = graph.RandomAsymmetricConnected(n, rng); err != nil {
			log.Fatal(err)
		}
	}
	// Hide the relationship behind a random relabeling, as a real data
	// holder would.
	shuffledB, _ := communityB.Shuffle(rng)

	truth, err := dip.AreIsomorphic(n, communityA.Edges(), shuffledB.Edges())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: isomorphic = %v (claim: non-isomorphic)\n", truth)

	rep, err := dip.ProveNonIsomorphism(n, communityA.Edges(), shuffledB.Edges(),
		dip.Options{Seed: 11, Repetitions: 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol %s: accepted = %v\n", rep.Protocol, rep.Accepted)
	fmt.Printf("cost: %d bits per member (40 repetitions)\n", rep.MaxProverBits)

	// Now let the operator lie: present a relabeled copy of community A
	// itself and claim it is different.
	impostor, _ := communityA.Shuffle(rng)
	lie, err := dip.ProveNonIsomorphism(n, communityA.Edges(), impostor.Edges(),
		dip.Options{Seed: 12, Repetitions: 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lying operator (isomorphic pair): accepted = %v\n", lie.Accepted)
	fmt.Println("\nhonest claims pass, fabricated ones fail — without any member seeing the whole graph")
}
