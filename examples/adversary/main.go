// Adversary: cheating provers being caught.
//
// Soundness is the whole point of an interactive proof: on a no-instance,
// NO prover strategy convinces all nodes with probability ≥ 1/3. This
// example runs four concrete attacks against Protocol 1 on a rigid
// (asymmetric) graph and one attack against the challenge-first Protocol 2,
// printing the measured acceptance rates — all far below 1/3.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/perm"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	g, err := graph.RandomAsymmetricConnected(10, rng)
	if err != nil {
		log.Fatal(err)
	}
	n := g.N()
	fmt.Printf("no-instance: a rigid graph on %d vertices (no non-trivial automorphism)\n\n", n)

	dmam, err := core.NewSymDMAM(n, 21)
	if err != nil {
		log.Fatal(err)
	}

	const trials = 25
	measure := func(name string, mk func(i int) network.Prover) {
		accepts := 0
		for i := 0; i < trials; i++ {
			res, err := dmam.Run(g, mk(i), int64(i))
			if err != nil {
				log.Fatal(err)
			}
			if res.Accepted {
				accepts++
			}
		}
		fmt.Printf("%-38s accepted %2d/%d runs\n", name, accepts, trials)
	}

	measure("commit to a fake automorphism", func(int) network.Prover {
		return dmam.RandomMappingProver(rng)
	})
	measure("forge the hash-index echo", func(int) network.Prover {
		rho := perm.RandomNonIdentity(n, rng)
		return dmam.EchoCheatingProver(rho, rho.Moved())
	})
	measure("split the network's view of the root", func(int) network.Prover {
		return dmam.InconsistentBroadcastProver(rng)
	})
	measure("send random garbage", func(int) network.Prover {
		return core.GarbageProver([]int{64, 64}, rng)
	})

	dam, err := core.NewSymDAM(n, 21)
	if err != nil {
		log.Fatal(err)
	}
	accepts := 0
	for i := 0; i < trials; i++ {
		res, err := dam.Run(g, dam.PostHocCollisionProver(100, rng), int64(i))
		if err != nil {
			log.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	fmt.Printf("%-38s accepted %2d/%d runs\n",
		"pick the mapping AFTER the challenge", accepts, trials)

	fmt.Println("\nevery attack stays far below the 1/3 soundness budget;")
	fmt.Println("see `dipbench -experiment E9` for what happens when the modulus is too small")
}
