// Extensions: what lies beyond the paper's statements.
//
// Three artifacts this reproduction adds on top of the PODC 2018 results,
// each answering a question the paper raises:
//
//  1. round reduction — the paper asks whether dAMAM protocols can be
//     compressed; our GNI protocol runs in a single Arthur-Merlin exchange;
//
//  2. the asymmetry promise — the paper restricts GNI to rigid graphs; the
//     automorphism-compensated protocol handles any pair, demonstrated on
//     two heavily symmetric graphs;
//
//  3. fingerprinted verification — the randomized proof-labeling schemes
//     the paper compares against ([4]), with measured savings.
//
//     go run ./examples/extensions
package main

import (
	"fmt"
	"log"

	"dip"
	"dip/internal/graph"
)

func main() {
	const n = 6

	// 2. Promise-free GNI on symmetric graphs: a 6-cycle versus K_{3,3}.
	// Both have large automorphism groups (12 and 72), so the paper's
	// protocol's counting argument would break; pair-counting fixes it.
	c6 := graph.Cycle(n)
	k33 := graph.New(n)
	for u := 0; u < n/2; u++ {
		for v := n / 2; v < n; v++ {
			k33.AddEdge(u, v)
		}
	}
	rep, err := dip.ProveNonIsomorphismGeneral(n, c6.Edges(), k33.Edges(),
		dip.Options{Seed: 5, Repetitions: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C6 vs K3,3 (both symmetric): %s accepted=%v, %d bits/node\n",
		rep.Protocol, rep.Accepted, rep.MaxProverBits)

	// ... and the same protocol must reject an isomorphic symmetric pair.
	rep2, err := dip.ProveNonIsomorphismGeneral(n, c6.Edges(), graph.Cycle(n).Edges(),
		dip.Options{Seed: 6, Repetitions: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C6 vs C6 (isomorphic):       %s accepted=%v\n", rep2.Protocol, rep2.Accepted)

	// 3. Fingerprinted verification: same Θ(n²) advice, tiny neighbor
	// traffic.
	ring := graph.Cycle(48)
	lcp, err := dip.ProveSymmetryNonInteractive(48, ring.Edges(), dip.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	rpls, err := dip.ProveSymmetryFingerprinted(48, ring.Edges(), dip.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnon-interactive certificate on a 48-ring:\n")
	fmt.Printf("  full exchange:   %6d node-to-node bits\n", lcp.MaxNodeToNodeBits)
	fmt.Printf("  fingerprinted:   %6d node-to-node bits (accepted=%v)\n",
		rpls.MaxNodeToNodeBits, rpls.Accepted)
	fmt.Println("\nsee cmd/dipbench -experiment E10 / E11 for the full tables")
}
