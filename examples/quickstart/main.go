// Quickstart: prove to a network that its graph is symmetric.
//
// A ring of 64 machines wants a certificate that their topology has a
// non-trivial automorphism, paying only O(log n) bits per machine. The
// untrusted prover (think: the cloud operator who knows the whole topology)
// runs Protocol 1 of Kol-Oshman-Saxena (PODC 2018): it commits to an
// automorphism, the machines jointly pick a random hash, and a spanning
// tree aggregates the hashed adjacency matrix on both sides of the
// commitment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dip"
)

func main() {
	// The network: a ring of 64 machines (rings are highly symmetric).
	const n = 64
	var edges [][2]int
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}

	// Ground truth, computed centrally for comparison.
	truth, err := dip.IsSymmetric(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: symmetric = %v\n", truth)

	// The interactive proof: honest prover, O(log n) bits per node.
	rep, err := dip.ProveSymmetry(n, edges, dip.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol %s: accepted = %v\n", rep.Protocol, rep.Accepted)
	fmt.Printf("cost: %d bits per node to/from the prover (total %d)\n",
		rep.MaxProverBits, rep.TotalProverBits)

	// Compare with the non-interactive baseline: the same certificate
	// without interaction needs the whole adjacency matrix at every node.
	advice, err := dip.SymmetryAdviceBits(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-interactive baseline would need %d bits per node\n", advice)

	if rep.Accepted != truth {
		log.Fatal("protocol outcome disagrees with ground truth")
	}
	fmt.Println("OK: one round of interaction replaced a quadratic certificate")
}
