package dip

import (
	"math/rand"
	"strings"
	"testing"

	"dip/internal/core"
	"dip/internal/graph"
)

// edgesOf converts an internal graph to the facade's edge-list form.
func edgesOf(g *graph.Graph) [][2]int {
	return g.Edges()
}

func TestProveSymmetryOnCycle(t *testing.T) {
	g := graph.Cycle(8)
	rep, err := ProveSymmetry(8, edgesOf(g), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("cycle not proven symmetric")
	}
	if rep.Protocol != "sym-dmam" {
		t.Fatalf("protocol = %q", rep.Protocol)
	}
	if rep.MaxProverBits <= 0 || rep.TotalProverBits < rep.MaxProverBits {
		t.Fatalf("cost accounting wrong: %+v", rep)
	}
	if len(rep.Decisions) != 8 {
		t.Fatal("per-node decisions missing")
	}
}

func TestProveSymmetryRejectsAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := graph.RandomAsymmetricConnected(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProveSymmetry(8, edgesOf(g), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("asymmetric graph proven symmetric")
	}
}

func TestProveSymmetryChallengeFirst(t *testing.T) {
	g := graph.Complete(6)
	rep, err := ProveSymmetryChallengeFirst(6, edgesOf(g), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("K6 not proven symmetric")
	}
}

func TestProveDumbbellSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := graph.ConnectedGNP(6, 0.5, rng)
	g := graph.DSymGraph(f, 1)
	rep, err := ProveDumbbellSymmetry(6, 1, edgesOf(g), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("DSym instance rejected")
	}
}

func TestProveNonIsomorphism(t *testing.T) {
	if testing.Short() {
		t.Skip("GNI run is slow")
	}
	rng := rand.New(rand.NewSource(5))
	a, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for graph.AreIsomorphic(a, b) {
		if b, err = graph.RandomAsymmetricConnected(6, rng); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ProveNonIsomorphism(6, edgesOf(a), edgesOf(b), Options{Seed: 5, Repetitions: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Protocol != "gni-damam" {
		t.Fatalf("protocol = %q", rep.Protocol)
	}
	// A single run accepts with probability well above 1/2 on a yes
	// instance; retry a couple of seeds to keep the test robust.
	accepted := rep.Accepted
	for s := int64(6); !accepted && s < 9; s++ {
		rep, err = ProveNonIsomorphism(6, edgesOf(a), edgesOf(b), Options{Seed: s, Repetitions: 30})
		if err != nil {
			t.Fatal(err)
		}
		accepted = rep.Accepted
	}
	if !accepted {
		t.Fatal("non-isomorphic pair never accepted across 4 seeds")
	}
}

func TestBaselines(t *testing.T) {
	bits, err := SymmetryAdviceBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if bits < 64*63/2 {
		t.Fatalf("baseline advice %d not quadratic", bits)
	}
	g := graph.Star(6)
	rep, err := ProveSymmetryNonInteractive(6, edgesOf(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("LCP rejected star")
	}
}

func TestGroundTruthHelpers(t *testing.T) {
	sym, err := IsSymmetric(8, edgesOf(graph.Cycle(8)))
	if err != nil || !sym {
		t.Fatalf("IsSymmetric(C8) = %v, %v", sym, err)
	}
	iso, err := AreIsomorphic(4, edgesOf(graph.Path(4)), edgesOf(graph.Path(4)))
	if err != nil || !iso {
		t.Fatalf("AreIsomorphic = %v, %v", iso, err)
	}
	iso, err = AreIsomorphic(4, edgesOf(graph.Path(4)), edgesOf(graph.Star(4)))
	if err != nil || iso {
		t.Fatalf("P4 ≅ S4 reported: %v, %v", iso, err)
	}
}

func TestBuildGraphValidation(t *testing.T) {
	if _, err := ProveSymmetry(0, nil, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := ProveSymmetry(3, [][2]int{{0, 3}}, Options{}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := ProveSymmetry(3, [][2]int{{1, 1}}, Options{}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := AreIsomorphic(3, nil, [][2]int{{9, 1}}); err == nil {
		t.Fatal("bad second edge list accepted")
	}
}

func TestProveNonIsomorphismGeneralOnSymmetricGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("general GNI run is slow")
	}
	c6 := graph.Cycle(6)
	k33 := graph.New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			k33.AddEdge(u, v)
		}
	}
	rep, err := ProveNonIsomorphismGeneral(6, edgesOf(c6), edgesOf(k33),
		Options{Seed: 9, Repetitions: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Protocol != "gni-general" {
		t.Fatalf("protocol = %q", rep.Protocol)
	}
	if !rep.Accepted {
		t.Fatal("symmetric non-isomorphic pair rejected")
	}
	// Isomorphic symmetric pair must be rejected.
	rep, err = ProveNonIsomorphismGeneral(6, edgesOf(c6), edgesOf(graph.Cycle(6)),
		Options{Seed: 10, Repetitions: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("isomorphic pair accepted")
	}
}

func TestProveSymmetryFingerprinted(t *testing.T) {
	ring := graph.Cycle(24)
	full, err := ProveSymmetryNonInteractive(24, edgesOf(ring), Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ProveSymmetryFingerprinted(24, edgesOf(ring), Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Accepted || !fp.Accepted {
		t.Fatal("honest runs rejected")
	}
	if fp.MaxNodeToNodeBits*2 >= full.MaxNodeToNodeBits {
		t.Fatalf("fingerprinting saved too little: %d vs %d",
			fp.MaxNodeToNodeBits, full.MaxNodeToNodeBits)
	}
}

func TestProveInducedNonIsomorphism(t *testing.T) {
	if testing.Short() {
		t.Skip("marked GNI run is slow")
	}
	rng := rand.New(rand.NewSource(20))
	a, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	var b *graph.Graph
	for {
		if b, err = graph.RandomAsymmetricConnected(6, rng); err != nil {
			t.Fatal(err)
		}
		if !graph.AreIsomorphic(a, b) {
			break
		}
	}
	// Assemble: a on 0..5 (mark 0), b on 6..11 (mark 1), hub 12 (⊥).
	n := 13
	var edges [][2]int
	marks := make([]int, n)
	for v := 0; v < 6; v++ {
		marks[v] = 0
		marks[v+6] = 1
	}
	marks[12] = -1
	for _, e := range a.Edges() {
		edges = append(edges, e)
	}
	for _, e := range b.Edges() {
		edges = append(edges, [2]int{e[0] + 6, e[1] + 6})
	}
	for v := 0; v < 12; v++ {
		edges = append(edges, [2]int{v, 12})
	}
	rep, err := ProveInducedNonIsomorphism(n, edges, marks, Options{Seed: 21, Repetitions: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Protocol != "gni-marked" {
		t.Fatalf("protocol = %q", rep.Protocol)
	}
	if !rep.Accepted {
		t.Fatal("non-isomorphic induced pair rejected")
	}

	// Validation paths.
	if _, err := ProveInducedNonIsomorphism(2, nil, []int{0}, Options{}); err == nil {
		t.Fatal("mark count mismatch accepted")
	}
	if _, err := ProveInducedNonIsomorphism(2, nil, []int{0, 7}, Options{}); err == nil {
		t.Fatal("invalid mark accepted")
	}
}

// TestRepetitionsValidation pins the shared repetition-count resolution:
// negatives are rejected up front with a clear error, zero selects the
// library-wide default (which dipsim's -k flag shares).
func TestRepetitionsValidation(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}}
	_, err := ProveNonIsomorphism(3, edges, edges, Options{Repetitions: -1})
	if err == nil || !strings.Contains(err.Error(), "must be non-negative") {
		t.Fatalf("negative Repetitions returned %v, want validation error", err)
	}
	if _, err := ProveNonIsomorphismGeneral(3, edges, edges, Options{Repetitions: -7}); err == nil {
		t.Fatal("negative Repetitions accepted by ProveNonIsomorphismGeneral")
	}
	if _, err := ProveInducedNonIsomorphism(3, edges, []int{0, 1, -1}, Options{Repetitions: -7}); err == nil {
		t.Fatal("negative Repetitions accepted by ProveInducedNonIsomorphism")
	}
	if k, err := resolveRepetitions(0); err != nil || k != core.DefaultGNIRepetitions {
		t.Fatalf("resolveRepetitions(0) = %d, %v; want the shared default %d",
			k, err, core.DefaultGNIRepetitions)
	}
	if k, err := resolveRepetitions(12); err != nil || k != 12 {
		t.Fatalf("resolveRepetitions(12) = %d, %v", k, err)
	}
}
