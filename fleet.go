package dip

import (
	"context"
	"encoding/json"
	"time"

	"dip/internal/faults"
	"dip/internal/network"
	"dip/internal/peer"
)

// LinkFaults is a seed-deterministic per-link fault policy for fleet
// transports: each coordinator→peer data frame may be delayed or dropped,
// decided by hashing (seed, peer, frame ordinal) so a schedule replays
// exactly under the same seed. Delays are cancel-aware (a canceled run
// returns promptly, it does not sleep out the injected latency); drops
// starve the session until a deadline turns them into a structured
// transport error — a partition can fail a run but never flip a decision.
type LinkFaults struct {
	// Seed keys the per-frame decisions; runs with equal seeds see the
	// identical delay/drop schedule.
	Seed int64 `json:"seed"`
	// Delay is the injected latency; applied to a frame with probability
	// DelayProb (0 disables, 1 delays every frame).
	Delay     time.Duration `json:"delay_ns,omitempty"`
	DelayProb float64       `json:"delay_prob,omitempty"`
	// DropProb silently discards a frame with the given probability,
	// emulating a lossy or partitioned link.
	DropProb float64 `json:"drop_prob,omitempty"`
}

// FleetOptions configure a fleet handle. The zero value is ready to use:
// every field has a documented default applied on dial.
type FleetOptions struct {
	// DialTimeout bounds each per-peer TCP connect (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds each frame exchange and each session's idle gaps
	// (default 30s). A peer that stalls longer fails the run with a
	// structured transport error instead of hanging the caller.
	IOTimeout time.Duration
	// LinkFaults, when non-nil, injects socket-level delay/drop faults on
	// every run placed through this fleet. Nil means a clean network.
	LinkFaults *LinkFaults
}

// peerOptions projects the public options onto the transport layer's
// validated config struct — the single place fleet defaults live.
func (o FleetOptions) peerOptions() peer.Options {
	po := peer.Options{DialTimeout: o.DialTimeout, IOTimeout: o.IOTimeout}
	if o.LinkFaults != nil {
		po.LinkFaults = &faults.LinkPolicy{
			Seed:      o.LinkFaults.Seed,
			Delay:     o.LinkFaults.Delay,
			DelayProb: o.LinkFaults.DelayProb,
			DropProb:  o.LinkFaults.DropProb,
		}
	}
	return po
}

// Fleet is a long-lived handle on a set of dippeer processes. It owns
// node→peer placement, connection reuse, and per-run session minting:
// every Run multiplexes a fresh session over the fleet's standing
// connections, so many runs — including concurrent ones — share the same
// sockets. A Fleet is safe for concurrent use; close it when done.
type Fleet struct {
	pf *peer.Fleet
}

// DialFleet connects to every peer address eagerly and returns the
// handle, so configuration errors (bad address, unreachable host) surface
// at boot rather than on the first run. If any peer is unreachable the
// dial fails as a whole. Lost connections are redialed transparently on
// later runs; a peer that stays down fails only the runs placed on it.
func DialFleet(addrs []string, opts FleetOptions) (*Fleet, error) {
	pf, err := peer.DialFleet(addrs, opts.peerOptions())
	if err != nil {
		return nil, err
	}
	return &Fleet{pf: pf}, nil
}

// Run executes the request on the fleet: verifier nodes are placed on the
// peer processes round-robin while the funnel, prover, and cost
// accounting stay in-process — so the Report is bit-identical to what
// dip.Run would produce for the same request. Transport failures (dead
// peer, stalled session, canceled context) surface as structured
// *network.RunError values with Phase "transport" or "canceled".
func (f *Fleet) Run(ctx context.Context, req Request) (*Report, error) {
	tr, err := f.EngineTransport(req)
	if err != nil {
		return nil, err
	}
	rep, err := RunContext(withTransport(ctx, tr), req)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// EngineTransport mints a single-run transport for req on this fleet's
// connections. It exists for in-module tools (cmd/dipsim) that drive the
// engine directly — for fault injection or transcript recording — while
// still placing nodes on the fleet. network is an internal package, so
// the method is unusable outside this module (compare ReportFromResult).
func (f *Fleet) EngineTransport(req Request) (network.Transport, error) {
	params, err := fleetParams(req)
	if err != nil {
		return nil, err
	}
	return f.pf.NewRun(params), nil
}

// fleetParams serializes a request for the fleet's SpecBuilder (dippeer
// rebuilds the Spec via BuildSpec): the edge lists are stripped — each
// peer receives only its own nodes' neighbor slices in the session
// handshake — while spec-shaping fields (protocol, N, Side/Half, Marks,
// seed, repetitions) travel whole.
func fleetParams(req Request) ([]byte, error) {
	req.Edges = nil
	req.Edges1 = nil
	return json.Marshal(req)
}

// Ready probes every peer, redialing lost connections, and reports the
// unreachable ones. It is the health hook behind dipserve's /readyz.
func (f *Fleet) Ready() error { return f.pf.Ready() }

// Addrs returns the fleet's peer addresses in placement order.
func (f *Fleet) Addrs() []string { return f.pf.Addrs() }

// Close tears down every connection. In-flight runs fail with a
// structured transport error; subsequent runs fail immediately.
func (f *Fleet) Close() error { return f.pf.Close() }

// PeerStats is one peer's gauge snapshot. The JSON form appears under
// "fleet" in dipserve's /metrics document.
type PeerStats struct {
	Addr      string `json:"addr"`
	Connected bool   `json:"connected"`
	// SessionsOpen counts sessions currently running on the peer;
	// SessionsCompleted and SessionsFailed are cumulative outcomes.
	SessionsOpen      int64 `json:"sessions_open"`
	SessionsCompleted int64 `json:"sessions_completed"`
	SessionsFailed    int64 `json:"sessions_failed"`
	FramesSent        int64 `json:"frames_sent"`
	FramesReceived    int64 `json:"frames_received"`
	// FramesDropped counts outbound frames a LinkFaults policy swallowed.
	FramesDropped int64 `json:"frames_dropped,omitempty"`
	BytesSent     int64 `json:"bytes_sent"`
	BytesReceived int64 `json:"bytes_received"`
}

// FleetStats is a point-in-time snapshot of every peer's gauges.
type FleetStats struct {
	Peers []PeerStats `json:"peers"`
}

// Stats snapshots the fleet's per-peer gauges.
func (f *Fleet) Stats() FleetStats {
	st := f.pf.Stats()
	out := FleetStats{Peers: make([]PeerStats, len(st.Peers))}
	for i, ps := range st.Peers {
		out.Peers[i] = PeerStats(ps)
	}
	return out
}
