package network

import (
	"sync"

	"dip/internal/wire"
)

// concurrentExecutor interprets the round script as a literal distributed
// system: one goroutine per node plus a prover driver, every message over
// a channel. The driver walks the script playing the prover-facing steps
// (collecting challenges, delivering responses); each node goroutine walks
// the same script playing its own half (producing challenges, receiving
// responses, exchanging with neighbors, deciding). All semantics are in
// the shared script/funnel layers — this file is pure scheduling.
type concurrentExecutor struct{}

// exchangeMsg is a neighbor-to-neighbor forwarded message. Messages carry
// the index of the exchange they belong to, because a neighbor may run one
// exchange ahead of the receiver.
type exchangeMsg struct {
	from     int
	exchange int
	m        wire.Message
}

// challengeMsg is a node-to-prover challenge.
type challengeMsg struct {
	from int
	m    wire.Message
}

// concRun is the per-run scheduling state of the concurrent executor: the
// transport channels and the fail-fast abort machinery, wrapped around the
// shared runState.
type concRun struct {
	*runState

	challengeCh chan challengeMsg
	respCh      []chan wire.Message
	exchCh      []chan exchangeMsg
	abortCh     chan struct{}

	// failOnce/failErr implement fail-fast abort: the first failure (from
	// the driver or any node goroutine) records its *RunError and closes
	// abortCh; later failures are dropped. failErr is read only after the
	// goroutine that set it is joined (the Once gives the winning writer
	// happens-before every other Do caller, and wg.Wait orders node
	// writers before the reader).
	failOnce sync.Once
	failErr  *RunError
}

func (concurrentExecutor) run(s *runState) *RunError {
	c := &concRun{runState: s}
	c.challengeCh = make(chan challengeMsg, s.n)
	c.respCh = make([]chan wire.Message, s.n)
	c.exchCh = make([]chan exchangeMsg, s.n)
	for v := 0; v < s.n; v++ {
		c.respCh[v] = make(chan wire.Message, 1)
		// A neighbor can run at most one exchange ahead (it cannot start
		// exchange k+1 before receiving our exchange-k message), so two
		// rounds of buffering make send-all-then-receive-all deadlock-free.
		c.exchCh[v] = make(chan exchangeMsg, 2*len(s.nbrs[v]))
	}
	c.abortCh = make(chan struct{})

	var wg sync.WaitGroup
	for v := 0; v < s.n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			c.nodeMain(v)
		}(v)
	}

	if err := c.drive(); err != nil {
		c.fail(err) // release blocked nodes (no-op if a node failed first)
	}
	wg.Wait()
	return c.failErr
}

// fail records the first *RunError of the run and releases every blocked
// goroutine. Safe to call from any goroutine, any number of times.
func (c *concRun) fail(err *RunError) {
	c.failOnce.Do(func() {
		c.failErr = err
		close(c.abortCh)
	})
}

// drive plays the prover side of the script and routes messages. A nil
// return with c.failErr set means the run was aborted by a node failure.
func (c *concRun) drive() *RunError {
	n := c.n
	for _, st := range c.script.steps {
		// Cancellation is polled only on the driver: it owns the abort
		// machinery, and failing here releases every node goroutine through
		// the regular fail-fast path.
		if rerr := c.checkCancel(st.ri); rerr != nil {
			return rerr
		}
		switch st.kind {
		case StepChallenge:
			row := c.chalRows[st.arthur*n : (st.arthur+1)*n]
			for i := 0; i < n; i++ {
				var cm challengeMsg
				select {
				case cm = <-c.challengeCh:
				case <-c.abortCh:
					return nil
				}
				m, _ := c.deliver(planeChallenge, st.ri, cm.from, -1, cm.m)
				row[cm.from] = m
			}
			c.pv.Challenges = append(c.pv.Challenges, row)
			c.recordRound(Arthur, row)

		case StepRespond:
			resp, rerr := c.callRespond(st.ri, st.merlin)
			if rerr != nil {
				return rerr
			}
			for v := 0; v < n; v++ {
				m, rerr := c.deliver(planeResponse, st.ri, -1, v, resp.PerNode[v])
				if rerr != nil {
					return rerr
				}
				c.delivered[v] = m
				select {
				case c.respCh[v] <- m:
				case <-c.abortCh:
					return nil
				}
			}
			c.recordRound(Merlin, c.delivered)
		}
	}
	return nil
}

// nodeMain is the verifier goroutine for node v: it walks the script,
// handling the node-facing half of every step.
func (c *concRun) nodeMain(v int) {
	deg := len(c.nbrs[v])
	exchangeIdx := 0
	var stash []exchangeMsg

	for _, st := range c.script.steps {
		switch st.kind {
		case StepChallenge:
			m, rerr := c.nodeChallenge(st.ri, v)
			if rerr != nil {
				c.fail(rerr)
				return
			}
			select {
			case c.challengeCh <- challengeMsg{from: v, m: m}:
			case <-c.abortCh:
				return
			}

		case StepRespond:
			var m wire.Message
			select {
			case m = <-c.respCh[v]:
			case <-c.abortCh:
				return
			}
			c.views[v].Responses = append(c.views[v].Responses, m)

		case StepExchange:
			var out wire.Message
			if st.chal {
				mc := c.views[v].MyChallenges
				out = mc[len(mc)-1]
			} else {
				rs := c.views[v].Responses
				f, rerr := c.nodeForward(st.ri, v, rs[len(rs)-1])
				if rerr != nil {
					c.fail(rerr)
					return
				}
				out = f
			}
			got, ok := c.exchange(st, v, deg, exchangeIdx, out, &stash)
			if !ok {
				return
			}
			exchangeIdx++
			if st.chal {
				c.views[v].NeighborChallenges = append(c.views[v].NeighborChallenges, got)
			} else {
				c.views[v].NeighborResponses = append(c.views[v].NeighborResponses, got)
			}

		case StepDecide:
			// decisions[v] is element-exclusive to this goroutine; the
			// executor reads it only after wg.Wait.
			if rerr := c.nodeDecide(v); rerr != nil {
				c.fail(rerr)
				return
			}
		}
	}
}

// exchange sends m to all of v's neighbors as exchange idx and collects one
// idx-tagged message from each; messages from the next exchange that arrive
// early are stashed. Every delivery passes through the funnel on the
// sender's goroutine (v→u: v is charged, u receives the possibly-corrupted
// copy). It returns false if the run was aborted.
func (c *concRun) exchange(st step, v, deg, idx int, m wire.Message, stash *[]exchangeMsg) (map[int]wire.Message, bool) {
	for _, u := range c.nbrs[v] {
		out, _ := c.deliver(planeExchange, st.ri, v, u, m)
		select {
		case c.exchCh[u] <- exchangeMsg{from: v, exchange: idx, m: out}:
		case <-c.abortCh:
			return nil, false
		}
	}

	var got map[int]wire.Message
	if st.chal {
		got = takeMap(c.nbrChalBack, v*c.script.nA+len(c.views[v].NeighborChallenges), deg)
	} else {
		got = takeMap(c.nbrRespBack, v*c.script.nM+len(c.views[v].NeighborResponses), deg)
	}
	// Drain previously stashed messages for this exchange first.
	remaining := (*stash)[:0]
	for _, x := range *stash {
		if x.exchange == idx {
			got[x.from] = x.m
		} else {
			remaining = append(remaining, x)
		}
	}
	*stash = remaining
	for len(got) < deg {
		select {
		case x := <-c.exchCh[v]:
			if x.exchange == idx {
				got[x.from] = x.m
			} else {
				*stash = append(*stash, x)
			}
		case <-c.abortCh:
			return nil, false
		}
	}
	return got, true
}
