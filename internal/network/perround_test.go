package network

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dip/internal/graph"
	"dip/internal/wire"
)

// checkPerRound asserts the per-round invariants of a cost accounting:
// one entry per spec round with matching kinds, and per-node, per-
// direction sums that equal the aggregate slices exactly.
func checkPerRound(t *testing.T, spec *Spec, c *Cost) {
	t.Helper()
	if len(c.PerRound) != len(spec.Rounds) {
		t.Fatalf("PerRound has %d entries for %d rounds", len(c.PerRound), len(spec.Rounds))
	}
	for k, rc := range c.PerRound {
		if rc.Kind != spec.Rounds[k].Kind {
			t.Fatalf("PerRound[%d].Kind = %v, round is %v", k, rc.Kind, spec.Rounds[k].Kind)
		}
	}
	for v := range c.ToProver {
		to, from, nbr := 0, 0, 0
		for k := range c.PerRound {
			to += c.PerRound[k].ToProver[v]
			from += c.PerRound[k].FromProver[v]
			nbr += c.PerRound[k].NodeToNode[v]
		}
		if to != c.ToProver[v] || from != c.FromProver[v] || nbr != c.NodeToNode[v] {
			t.Fatalf("node %d: per-round sums (%d,%d,%d) != aggregates (%d,%d,%d)",
				v, to, from, nbr, c.ToProver[v], c.FromProver[v], c.NodeToNode[v])
		}
	}
	arg := c.ArgMaxProverNode()
	sum := 0
	for _, b := range c.ProverBitsByRound(arg) {
		sum += b
	}
	if sum != c.MaxProverBits() {
		t.Fatalf("per-round prover bits at node %d sum to %d, MaxProverBits is %d",
			arg, sum, c.MaxProverBits())
	}
}

// TestPerRoundCostSums runs a multi-round echo protocol on a star (so
// node costs are heterogeneous) under both engines and checks that the
// per-round breakdown decomposes every aggregate exactly.
func TestPerRoundCostSums(t *testing.T) {
	g := graph.Star(7)
	spec := &Spec{
		Name: "amam-echo",
		Rounds: []Round{
			challengeRound(8),
			{Kind: Merlin},
			challengeRound(24),
			{Kind: Merlin},
		},
		Decide: func(v int, view *NodeView) bool { return true },
	}
	for _, opts := range []Options{
		{Seed: 5, Sequential: true},
		{Seed: 5, Concurrent: true},
	} {
		res, err := Run(spec, g, nil, echoProver{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkPerRound(t, spec, &res.Cost)
		// An echo round returns each node its own challenge: the second
		// Merlin round must carry the second Arthur round's 24 bits.
		if got := res.Cost.PerRound[3].FromProver[0]; got != 24 {
			t.Fatalf("round 3 FromProver[0] = %d, want 24", got)
		}
		if got := res.Cost.PerRound[0].ToProver[0]; got != 8 {
			t.Fatalf("round 0 ToProver[0] = %d, want 8", got)
		}
	}
}

// TestPerRoundCostWithSharedChallengesAndDigest covers the two special
// cost paths: Arthur-round neighbor exchanges (ShareChallenges) and
// digest-metered Merlin forwarding, in both engines.
func TestPerRoundCostWithSharedChallengesAndDigest(t *testing.T) {
	g := graph.Cycle(5)
	digest := func(v int, rng *rand.Rand, m wire.Message) wire.Message {
		var w wire.Writer
		w.WriteBool(true)
		return w.Message() // 1 bit instead of the full response
	}
	spec := &Spec{
		Name: "shared-digest",
		Rounds: []Round{
			challengeRound(6),
			{Kind: Merlin, Digest: digest},
		},
		Decide:          func(v int, view *NodeView) bool { return true },
		ShareChallenges: true,
	}
	for _, opts := range []Options{
		{Seed: 9, Sequential: true},
		{Seed: 9, Concurrent: true},
	} {
		res, err := Run(spec, g, nil, echoProver{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkPerRound(t, spec, &res.Cost)
		// Arthur round: each node forwards its 6-bit challenge to both
		// cycle neighbors; Merlin round: the 1-bit digest to both.
		if got := res.Cost.PerRound[0].NodeToNode[2]; got != 12 {
			t.Fatalf("Arthur-round NodeToNode[2] = %d, want 12", got)
		}
		if got := res.Cost.PerRound[1].NodeToNode[2]; got != 2 {
			t.Fatalf("Merlin-round NodeToNode[2] = %d, want 2 (digest bits)", got)
		}
	}
}

// malformedAfterProver answers the first Merlin round honestly and then
// returns a malformed response: nil, or one with the wrong PerNode
// length.
type malformedAfterProver struct {
	failRound int
	resp      *Response // returned on failRound (nil = nil response)
}

func (p *malformedAfterProver) Respond(merlinRound int, view *ProverView) (*Response, error) {
	if merlinRound >= p.failRound {
		return p.resp, nil
	}
	return Broadcast(view.Graph.N(), wire.Empty), nil
}

// TestConcurrentAbortLeaksNoGoroutines pins the abort path of the
// goroutine-per-node engine: a prover implementation that returns a
// wrong-shaped Response mid-run (after nodes are already blocked on
// channels) must error out without leaking node goroutines.
func TestConcurrentAbortLeaksNoGoroutines(t *testing.T) {
	g := graph.Cycle(16)
	spec := &Spec{
		Name: "mam",
		Rounds: []Round{
			{Kind: Merlin},
			challengeRound(4),
			{Kind: Merlin},
		},
		Decide: func(v int, view *NodeView) bool { return true },
	}
	cases := []struct {
		name   string
		prover Prover
	}{
		{"nil-response", &malformedAfterProver{failRound: 1, resp: nil}},
		{"short-response", &malformedAfterProver{failRound: 1,
			resp: &Response{PerNode: make([]wire.Message, 3)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			for i := 0; i < 10; i++ {
				if _, err := Run(spec, g, nil, tc.prover, Options{Seed: int64(i), Concurrent: true}); err == nil {
					t.Fatal("malformed response did not error")
				}
			}
			// The engine waits for its node goroutines before returning,
			// so the count must settle back to the baseline; poll briefly
			// to tolerate unrelated runtime goroutines winding down.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if runtime.NumGoroutine() <= before {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d before, %d after aborted runs",
						before, runtime.NumGoroutine())
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}
