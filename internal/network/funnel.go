package network

import (
	"errors"
	"fmt"
	"time"

	"dip/internal/wire"
)

// This file is the delivery-funnel layer: every message of a run — on
// every plane, under either executor — passes through deliver exactly
// once. Validation, bit-charging (aggregate and per-round), and fault
// injection therefore each exist in exactly one place, which is the seam
// where internal/faults adapters attach (Options.Corrupt /
// Options.CorruptExchange) and whose charge totals the internal/obs
// delivery meters are published from (runState.finish).

// plane identifies the direction of a delivery inside the funnel.
type plane uint8

const (
	// planeChallenge is the node→prover direction (Arthur challenges).
	planeChallenge plane = iota
	// planeResponse is the prover→node direction (Merlin responses).
	planeResponse
	// planeExchange is the node→node direction (forward/digest traffic
	// and, under Spec.ShareChallenges, challenge exchanges).
	planeExchange
)

// deliver is the funnel: validate → charge → corrupt for one message
// delivery, returning the message the receiver actually observes. ri is
// the spec round the delivery belongs to; from/to are node indices, with
// -1 standing for the prover. Cost semantics are "charged, then
// corrupted" on every plane: the sender's honest bits are metered before
// any injector rewrites them.
//
// Concurrency: the challenge and response planes are only driven from the
// run's driver goroutine. On the exchange plane, from is always the
// calling node's own index under the concurrent executor, so the
// NodeToNode[from] increments stay element-exclusive per goroutine.
func (s *runState) deliver(pl plane, ri, from, to int, m wire.Message) (wire.Message, *RunError) {
	switch pl {
	case planeChallenge:
		s.cost.ToProver[from] += m.Bits
		s.cost.PerRound[ri].ToProver[from] += m.Bits
	case planeResponse:
		if rerr := s.checkMessage(ri, to, m); rerr != nil {
			return m, rerr
		}
		s.cost.FromProver[to] += m.Bits
		s.cost.PerRound[ri].FromProver[to] += m.Bits
		if s.opts.Corrupt != nil {
			m = s.opts.Corrupt(s.script.merlinOf[ri], to, m)
		}
	case planeExchange:
		s.cost.NodeToNode[from] += m.Bits
		s.cost.PerRound[ri].NodeToNode[from] += m.Bits
		if s.opts.CorruptExchange != nil {
			m = s.opts.CorruptExchange(ri, from, to, m)
		}
	}
	return m, nil
}

// checkMessage rejects a malformed prover wire.Message before it is
// charged or delivered: Bits must be non-negative and Data must be exactly
// ceil(Bits/8) bytes (the invariant wire.Writer maintains). Without this
// check a hostile prover could silently corrupt the cost accounting
// (negative Bits) or feed verifiers more data than it was charged for.
func (s *runState) checkMessage(ri, v int, m wire.Message) *RunError {
	if m.Bits < 0 || len(m.Data) != (m.Bits+7)/8 {
		return s.runError(PhaseRespond, ri, v,
			fmt.Errorf("malformed message: Bits=%d but len(Data)=%d (want %d bytes)",
				m.Bits, len(m.Data), (m.Bits+7)/8))
	}
	return nil
}

// errRunCanceled is the cause inside a PhaseCanceled *RunError raised at a
// step boundary (RunContext callers see the context's own error only when
// the context was done before the run started; mid-run aborts surface
// this sentinel, with the caller's context holding the reason).
var errRunCanceled = errors.New("run canceled")

// checkCancel polls Options.Cancel at a step boundary. Both executors call
// it between steps — never inside one — so an aborted run has executed an
// integral prefix of the script and the pooled state stays releasable.
func (s *runState) checkCancel(ri int) *RunError {
	if s.opts.Cancel == nil {
		return nil
	}
	select {
	case <-s.opts.Cancel:
		return s.runError(PhaseCanceled, ri, -1, errRunCanceled)
	default:
		return nil
	}
}

// runError builds a *RunError attributed to (phase, round, node) for this
// run's protocol.
func (s *runState) runError(phase Phase, round, node int, err error) *RunError {
	return &RunError{Protocol: s.spec.Name, Phase: phase, Round: round, Node: node, Err: err}
}

// guardNode runs a Spec callback with panic containment: a panic in f
// becomes a *RunError attributed to (phase, round, node) instead of
// crashing the process (or, in the concurrent engine, deadlocking the
// other nodes; or, in a peer process, killing the node host). It is a free
// function because it also guards callbacks on NodeState, where no
// runState exists.
func guardNode(protocol string, phase Phase, round, node int, f func()) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{Protocol: protocol, Phase: phase, Round: round, Node: node,
				Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	f()
	return nil
}

// callRespond invokes Prover.Respond for spec round ri with panic
// containment, response-shape validation, and (when Options.ProverTimeout
// is set) a deadline. Both executors call the prover exclusively through
// this helper, so a hostile prover implementation fails identically under
// either engine.
func (s *runState) callRespond(ri, merlinRound int) (*Response, *RunError) {
	call := func() (resp *Response, rerr *RunError) {
		defer func() {
			if r := recover(); r != nil {
				rerr = s.runError(PhaseRespond, ri, -1, fmt.Errorf("prover panic: %v", r))
			}
		}()
		r, err := s.prover.Respond(merlinRound, &s.pv)
		if err != nil {
			return nil, s.runError(PhaseRespond, ri, -1,
				fmt.Errorf("prover round %d: %w", merlinRound, err))
		}
		if r == nil || len(r.PerNode) != s.n {
			return nil, s.runError(PhaseRespond, ri, -1,
				fmt.Errorf("prover round %d: response for %d nodes, want %d",
					merlinRound, respLen(r), s.n))
		}
		return r, nil
	}
	if s.opts.ProverTimeout <= 0 {
		return call()
	}
	type outcome struct {
		resp *Response
		rerr *RunError
	}
	done := make(chan outcome, 1) // buffered: a late prover must not leak forever
	go func() {
		resp, rerr := call()
		done <- outcome{resp, rerr}
	}()
	timer := time.NewTimer(s.opts.ProverTimeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.resp, out.rerr
	case <-timer.C:
		// The abandoned Respond goroutine still holds this runState (it
		// reads the ProverView and, on failure paths, the spec name), so
		// the state must not be pooled for reuse.
		s.abandoned = true
		return nil, s.runError(PhaseDeadline, ri, -1,
			fmt.Errorf("prover round %d: no response within %v", merlinRound, s.opts.ProverTimeout))
	}
}

func respLen(r *Response) int {
	if r == nil {
		return 0
	}
	return len(r.PerNode)
}
