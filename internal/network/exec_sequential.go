package network

import "dip/internal/wire"

// sequentialExecutor interprets the round script on the calling goroutine:
// no channels, no per-node goroutines. Each node still owns a private RNG
// seeded by mix(Seed, v) and its callbacks run in the same per-node order
// as under the concurrent executor, so every random draw, message, cost
// increment, transcript entry, and decision is bit-identical to a
// concurrent run with the same seed and prover.
type sequentialExecutor struct{}

func (sequentialExecutor) run(s *runState) *RunError {
	n := s.n
	for _, st := range s.script.steps {
		if rerr := s.checkCancel(st.ri); rerr != nil {
			return rerr
		}
		switch st.kind {
		case StepChallenge:
			row := s.chalRows[st.arthur*n : (st.arthur+1)*n]
			for v := 0; v < n; v++ {
				c, rerr := s.nodeChallenge(st.ri, v)
				if rerr != nil {
					return rerr
				}
				m, rerr := s.deliver(planeChallenge, st.ri, v, -1, c)
				if rerr != nil {
					return rerr
				}
				row[v] = m
			}
			s.pv.Challenges = append(s.pv.Challenges, row)
			s.recordRound(Arthur, row)

		case StepRespond:
			resp, rerr := s.callRespond(st.ri, st.merlin)
			if rerr != nil {
				return rerr
			}
			for v := 0; v < n; v++ {
				m, rerr := s.deliver(planeResponse, st.ri, -1, v, resp.PerNode[v])
				if rerr != nil {
					return rerr
				}
				s.delivered[v] = m
				s.views[v].Responses = append(s.views[v].Responses, m)
			}
			s.recordRound(Merlin, s.delivered)

		case StepExchange:
			// Pick what each node forwards: the round's challenges, the
			// delivered responses, or their digests. Digests draw from the
			// node RNGs, so they run for all nodes (ascending) before any
			// delivery — the same per-node callback order as the
			// concurrent executor's digest-then-exchange.
			var msgs []wire.Message
			if st.chal {
				msgs = s.chalRows[st.arthur*n : (st.arthur+1)*n]
			} else if s.spec.Rounds[st.ri].Digest != nil {
				for v := 0; v < n; v++ {
					f, rerr := s.nodeForward(st.ri, v, s.delivered[v])
					if rerr != nil {
						return rerr
					}
					s.forwards[v] = f
				}
				msgs = s.forwards
			} else {
				msgs = s.delivered
			}
			for v := 0; v < n; v++ {
				deg := len(s.nbrs[v])
				var got map[int]wire.Message
				if st.chal {
					got = takeMap(s.nbrChalBack, v*s.script.nA+len(s.views[v].NeighborChallenges), deg)
				} else {
					got = takeMap(s.nbrRespBack, v*s.script.nM+len(s.views[v].NeighborResponses), deg)
				}
				for _, u := range s.nbrs[v] {
					// u→v delivery: u is charged for its honest copy, v
					// receives the (possibly corrupted) one.
					m, _ := s.deliver(planeExchange, st.ri, u, v, msgs[u])
					got[u] = m
				}
				if st.chal {
					s.views[v].NeighborChallenges = append(s.views[v].NeighborChallenges, got)
				} else {
					s.views[v].NeighborResponses = append(s.views[v].NeighborResponses, got)
				}
			}

		case StepDecide:
			for v := 0; v < n; v++ {
				if rerr := s.nodeDecide(v); rerr != nil {
					return rerr
				}
			}
		}
	}
	return nil
}
