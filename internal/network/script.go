package network

import (
	"math/rand"
	"sync"

	"dip/internal/obs"
	"dip/internal/wire"
)

// This file is the round-script layer: the synchronous schedule of a run,
// compiled once per run from the Spec and then *interpreted* by both
// executors. The schedule used to be written out twice — once inside
// runSequential and once split across the concurrent driver and the node
// goroutines — so every semantic addition (per-round metering, exchange
// corruption) had to be implemented twice and proven equivalent by test.
// Now there is exactly one description of "what happens in which order":
// the step list below, plus the shared per-node step helpers that both
// executors call for every Spec callback.

// StepKind enumerates the script's step types. It is exported because the
// schedule itself is part of the engine's distributed contract: an
// out-of-process node host (internal/peer) walks the same schedule as the
// in-process executors, playing the node-facing half of each step.
type StepKind uint8

const (
	// StepChallenge is an Arthur round: every node produces a random
	// challenge and sends it to the prover.
	StepChallenge StepKind = iota
	// StepRespond is a Merlin round: the prover produces one response per
	// node, each of which is delivered (validated, charged, corrupted)
	// through the funnel.
	StepRespond
	// StepExchange is a neighbor exchange: every node sends its current
	// outbound message (challenge, response, or digest) to each neighbor
	// and collects one message from each.
	StepExchange
	// StepDecide runs every node's decision function.
	StepDecide
)

// step is one entry of the compiled schedule.
type step struct {
	kind StepKind
	// ri is the spec round index the step belongs to (-1 for StepDecide);
	// it is the round coordinate of cost attribution and of the exchange
	// plane's corruption hook.
	ri int
	// merlin is the Merlin-round counter for StepRespond.
	merlin int
	// arthur is the Arthur-round counter for StepChallenge and for
	// challenge exchanges (it selects the pooled challenge row / map slot).
	arthur int
	// chal marks a StepExchange that exchanges Arthur challenges
	// (Spec.ShareChallenges) rather than Merlin responses.
	chal bool
}

// script is the compiled synchronous schedule of one run.
type script struct {
	steps []step
	// merlinOf[ri] is the Merlin-round counter of spec round ri, or -1 for
	// Arthur rounds; it converts the funnel's spec-round coordinate into
	// the Corruptor contract's Merlin-round coordinate.
	merlinOf []int
	// nA/nM count Arthur and Merlin rounds; nEx counts exchanges (one per
	// Merlin round, plus one per Arthur round under ShareChallenges).
	nA, nM, nEx int
}

// compile rebuilds the schedule for spec, reusing the receiver's buffers.
// Spec.Rounds has already been validated by Run.
func (sc *script) compile(spec *Spec) {
	sc.steps = sc.steps[:0]
	sc.merlinOf = sc.merlinOf[:0]
	sc.nA, sc.nM, sc.nEx = 0, 0, 0
	for ri, r := range spec.Rounds {
		switch r.Kind {
		case Arthur:
			sc.steps = append(sc.steps, step{kind: StepChallenge, ri: ri, arthur: sc.nA})
			sc.merlinOf = append(sc.merlinOf, -1)
			if spec.ShareChallenges {
				sc.steps = append(sc.steps, step{kind: StepExchange, ri: ri, arthur: sc.nA, chal: true})
				sc.nEx++
			}
			sc.nA++
		case Merlin:
			sc.steps = append(sc.steps, step{kind: StepRespond, ri: ri, merlin: sc.nM})
			sc.merlinOf = append(sc.merlinOf, sc.nM)
			sc.steps = append(sc.steps, step{kind: StepExchange, ri: ri})
			sc.nEx++
			sc.nM++
		}
	}
	sc.steps = append(sc.steps, step{kind: StepDecide, ri: -1})
}

// ScheduleStep is the exported projection of one compiled step: everything
// a node host outside this process needs to play its half of the step.
// Round is the spec round index (-1 for the decide step); Merlin and
// Arthur are the respective round counters (selecting challenge rows and
// response slots); Chal marks an exchange that shares Arthur challenges
// (Spec.ShareChallenges) rather than Merlin responses.
type ScheduleStep struct {
	Kind   StepKind
	Round  int
	Merlin int
	Arthur int
	Chal   bool
}

// Schedule compiles spec's synchronous schedule into its exported form.
// Remote node hosts (internal/peer) walk this exact step list in lockstep
// with the coordinator's networked executor; because both sides derive it
// from the same Spec, no schedule negotiation happens on the wire.
func Schedule(spec *Spec) ([]ScheduleStep, error) {
	if _, err := validateSpec(spec); err != nil {
		return nil, err
	}
	var own script
	sc := compiledScript(spec, &own)
	out := make([]ScheduleStep, len(sc.steps))
	for i, st := range sc.steps {
		out[i] = ScheduleStep{Kind: st.kind, Round: st.ri, Merlin: st.merlin, Arthur: st.arthur, Chal: st.chal}
	}
	return out, nil
}

// The script of a run depends on nothing but the round-kind sequence and
// ShareChallenges (compile reads no other Spec field), so compiled scripts
// are memoized process-wide under that structural key. The whole key packs
// into a small comparable struct: one bit per round for schedules of up to
// 64 rounds — every protocol in this module has at most four. Executors
// treat the script as read-only, so one compiled instance is safely shared
// by concurrent runs.

// scriptKey is the structural identity of a schedule.
type scriptKey struct {
	rounds int
	share  bool
	// merlins has bit r set iff round r is a Merlin round.
	merlins uint64
}

// scriptCacheCap bounds the memo; the number of distinct schedules is tiny
// in practice, so the bound exists only as a leak guard for adversarial
// spec churn. Beyond it (or beyond 64 rounds) runs fall back to compiling
// into their state's own buffers.
const scriptCacheCap = 256

var scriptCache struct {
	mu    sync.RWMutex
	m     map[scriptKey]*script
	meter *obs.CacheMeter
}

func init() {
	scriptCache.meter = obs.Cache("scripts")
	scriptCache.meter.Capacity.Set(scriptCacheCap)
}

// compiledScript returns the memoized script for spec, compiling and
// caching it on first sight. own is the calling state's fallback buffer
// for uncacheable schedules. Spec.Rounds has already been validated by
// Run.
func compiledScript(spec *Spec, own *script) *script {
	if len(spec.Rounds) > 64 {
		scriptCache.meter.Misses.Add(1)
		own.compile(spec)
		return own
	}
	key := scriptKey{rounds: len(spec.Rounds), share: spec.ShareChallenges}
	for ri := range spec.Rounds {
		if spec.Rounds[ri].Kind == Merlin {
			key.merlins |= 1 << uint(ri)
		}
	}
	scriptCache.mu.RLock()
	sc := scriptCache.m[key]
	scriptCache.mu.RUnlock()
	if sc != nil {
		scriptCache.meter.Hits.Add(1)
		return sc
	}
	scriptCache.meter.Misses.Add(1)
	fresh := &script{}
	fresh.compile(spec)
	scriptCache.mu.Lock()
	defer scriptCache.mu.Unlock()
	if cur, ok := scriptCache.m[key]; ok {
		return cur
	}
	if len(scriptCache.m) >= scriptCacheCap {
		return fresh // full: serve uncached rather than evict a hot entry
	}
	if scriptCache.m == nil {
		scriptCache.m = make(map[scriptKey]*script)
	}
	scriptCache.m[key] = fresh
	scriptCache.meter.Size.Set(int64(len(scriptCache.m)))
	return fresh
}

// ResetScriptCache drops every memoized schedule (tests comparing cold and
// warm request paths; see dip.ResetSetupCaches).
func ResetScriptCache() {
	scriptCache.mu.Lock()
	scriptCache.m = nil
	scriptCache.meter.Size.Set(0)
	scriptCache.mu.Unlock()
}

// The helpers below are the per-node halves of the script's steps. They
// are free functions over (spec, rng, view) — the complete state of one
// verifier node — so the same code runs whether the node lives inside a
// pooled runState (the in-process executors) or alone in a peer process
// (NodeState, driven by internal/peer). Both executors and every node
// host run every Spec callback exclusively through them, so panic
// containment, RunError attribution, and view bookkeeping exist once.

// challengeNode runs node v's Challenge callback for Arthur round ri and
// appends the result to v's view.
func challengeNode(spec *Spec, ri, v int, rng *rand.Rand, view *NodeView) (wire.Message, *RunError) {
	var c wire.Message
	round := &spec.Rounds[ri]
	if rerr := guardNode(spec.Name, PhaseChallenge, ri, v, func() {
		c = round.Challenge(v, rng, view)
	}); rerr != nil {
		return c, rerr
	}
	view.MyChallenges = append(view.MyChallenges, c)
	return c, nil
}

// forwardNode maps node v's delivered Merlin-round message to what v
// forwards to its neighbors: the message itself, or its Digest when the
// round defines one.
func forwardNode(spec *Spec, ri, v int, rng *rand.Rand, m wire.Message) (wire.Message, *RunError) {
	digest := spec.Rounds[ri].Digest
	if digest == nil {
		return m, nil
	}
	out := m
	rerr := guardNode(spec.Name, PhaseDigest, ri, v, func() {
		out = digest(v, rng, m)
	})
	return out, rerr
}

// decideNode runs node v's decision function.
func decideNode(spec *Spec, v int, view *NodeView) (bool, *RunError) {
	var d bool
	rerr := guardNode(spec.Name, PhaseDecide, -1, v, func() {
		d = spec.Decide(v, view)
	})
	return d, rerr
}

// nodeChallenge is challengeNode over the coordinator-held view of node v.
func (s *runState) nodeChallenge(ri, v int) (wire.Message, *RunError) {
	return challengeNode(s.spec, ri, v, s.rngs[v], &s.views[v])
}

// nodeForward is forwardNode over the coordinator-held state of node v.
func (s *runState) nodeForward(ri, v int, m wire.Message) (wire.Message, *RunError) {
	return forwardNode(s.spec, ri, v, s.rngs[v], m)
}

// nodeDecide runs node v's decision function and stores the outcome.
func (s *runState) nodeDecide(v int) *RunError {
	d, rerr := decideNode(s.spec, v, &s.views[v])
	if rerr != nil {
		return rerr
	}
	s.decisions[v] = d
	return nil
}

// recordRound appends one round to the transcript (post-corruption
// messages, i.e. what the network actually observed); a no-op unless
// recording was requested. The copy is deliberate: transcripts escape into
// the Result, so they must not alias pooled rows.
func (s *runState) recordRound(kind Kind, perNode []wire.Message) {
	if s.transcript == nil {
		return
	}
	rec := make([]wire.Message, len(perNode))
	copy(rec, perNode)
	s.transcript.Rounds = append(s.transcript.Rounds, TranscriptRound{Kind: kind, PerNode: rec})
}

// takeMap returns the pooled exchange map at back[slot], allocating it on
// first use. Maps are cleared on release, so a reused map is empty here.
func takeMap(back []map[int]wire.Message, slot, deg int) map[int]wire.Message {
	m := back[slot]
	if m == nil {
		m = make(map[int]wire.Message, deg)
		back[slot] = m
	}
	return m
}
