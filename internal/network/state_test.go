package network

import (
	"errors"
	"testing"

	"dip/internal/graph"
)

// TestPooledStateBitIdentical interleaves runs of different protocols,
// graph sizes, and engines so that every run after the first executes on a
// recycled runState, and requires each repeat of a configuration to be
// bit-identical to its first (pool-cold) execution. This is the contract
// that makes pooling invisible: reset must leave no residue from the
// previous tenant.
func TestPooledStateBitIdentical(t *testing.T) {
	type cfg struct {
		name string
		spec *Spec
		g    *graph.Graph
		opts Options
	}
	cfgs := []cfg{
		{"echo-cycle6", echoSpec(16), graph.Cycle(6), Options{Seed: 7}},
		{"echo-cycle6-conc", echoSpec(16), graph.Cycle(6), Options{Seed: 7, Concurrent: true}},
		{"digest-complete5", digestSpec(), graph.Complete(5), Options{Seed: 11}},
		{"echo-cycle12", echoSpec(32), graph.Cycle(12), Options{Seed: 3, Sequential: true}},
	}
	first := make([]*Result, len(cfgs))
	for i, c := range cfgs {
		res, err := Run(c.spec, c.g, nil, echoProver{}, c.opts)
		if err != nil {
			t.Fatalf("%s: first run failed: %v", c.name, err)
		}
		first[i] = res
	}
	// Every run below reuses pooled state left by the runs above, after
	// intervening tenants of different shapes (larger and smaller n,
	// different round counts) have stretched and shrunk the buffers.
	for pass := 0; pass < 3; pass++ {
		for i, c := range cfgs {
			res, err := Run(c.spec, c.g, nil, echoProver{}, c.opts)
			if err != nil {
				t.Fatalf("%s: pooled run failed: %v", c.name, err)
			}
			resultsIdentical(t, c.name, first[i], res)
		}
	}
}

// TestResultSurvivesPoolReuse checks the retention contract documented on
// Result: everything reachable from a returned Result is freshly
// allocated, so holding one across later runs (as the experiment harness
// does with sampled trials) must not see its contents change.
func TestResultSurvivesPoolReuse(t *testing.T) {
	g := graph.Cycle(8)
	opts := Options{Seed: 42, RecordTranscript: true}
	held, err := Run(echoSpec(24), g, nil, echoProver{}, opts)
	if err != nil {
		t.Fatalf("held run failed: %v", err)
	}
	// Deep-copy the fields we will compare after the pool is churned.
	wantTo := append([]int(nil), held.Cost.ToProver...)
	wantFrom := append([]int(nil), held.Cost.FromProver...)
	wantN2N := append([]int(nil), held.Cost.NodeToNode...)
	wantDec := append([]bool(nil), held.Decisions...)
	var wantBytes [][]byte
	for _, r := range held.Transcript.Rounds {
		for _, m := range r.PerNode {
			wantBytes = append(wantBytes, append([]byte(nil), m.Data...))
		}
	}

	// Churn the pool with runs that would overwrite any shared backing.
	for i := 0; i < 5; i++ {
		if _, err := Run(digestSpec(), graph.Complete(9), nil, echoProver{},
			Options{Seed: int64(100 + i), RecordTranscript: true}); err != nil {
			t.Fatalf("churn run %d failed: %v", i, err)
		}
	}

	for v := range wantTo {
		if held.Cost.ToProver[v] != wantTo[v] ||
			held.Cost.FromProver[v] != wantFrom[v] ||
			held.Cost.NodeToNode[v] != wantN2N[v] {
			t.Fatalf("node %d: held Cost mutated by later runs", v)
		}
	}
	for v := range wantDec {
		if held.Decisions[v] != wantDec[v] {
			t.Fatalf("node %d: held Decision mutated by later runs", v)
		}
	}
	i := 0
	for _, r := range held.Transcript.Rounds {
		for _, m := range r.PerNode {
			for j := range m.Data {
				if m.Data[j] != wantBytes[i][j] {
					t.Fatalf("held Transcript mutated by later runs")
				}
			}
			i++
		}
	}
}

// TestProverErrorDoesNotPoison exercises the failure path: a run that
// aborts mid-protocol releases its state back to the pool, and the next
// run on that state must be clean.
func TestProverErrorDoesNotPoison(t *testing.T) {
	g := graph.Cycle(6)
	bad := proverFunc(func(int, *ProverView) (*Response, error) {
		return nil, errors.New("prover gave up")
	})
	if _, err := Run(echoSpec(16), g, nil, bad, Options{Seed: 1}); err == nil {
		t.Fatalf("bad prover: expected error")
	}
	res, err := Run(echoSpec(16), g, nil, echoProver{}, Options{Seed: 1})
	if err != nil {
		t.Fatalf("run after failed run: %v", err)
	}
	if !res.Accepted {
		t.Fatalf("run after failed run rejected")
	}
}
