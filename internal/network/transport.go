package network

import "dip/internal/wire"

// This file is the transport seam: the boundary the networked executor
// (exec_networked.go) speaks through when verifier nodes live outside this
// process. The engine's semantic layers do not move across it — the
// delivery funnel (validation → cost → corruption), the prover, and the
// transcript all stay on the coordinator — so a Transport carries only the
// node-facing halves of the schedule's steps: challenges and decisions
// coming back from nodes, responses and exchange deliveries going out to
// them, digests coming back when a Merlin round defines one.
//
// The in-memory path needs no Transport at all (the two in-process
// executors touch runState directly, with zero indirection); the interface
// exists purely so internal/peer can put a TCP connection on the far side.

// TransportRun is everything the far side needs to host its nodes for one
// run: the spec identity is negotiated out of band (internal/peer ships a
// protocol parameter blob at dial time), so this struct carries only the
// per-run values. Neighbors aliases the engine's pooled adjacency snapshot
// and Inputs aliases caller data; transports must not retain either past
// End.
type TransportRun struct {
	// Spec is the validated protocol of the run (read-only).
	Spec *Spec
	// Seed is Options.Seed; node v's RNG is derived as mix(Seed, v) on
	// whatever host runs the node, which is what keeps a networked run
	// bit-identical to an in-process one.
	Seed int64
	// N is the node count; Neighbors[v] lists node v's neighbors ascending.
	N         int
	Neighbors [][]int
	// Inputs holds the per-node private inputs (nil for pure graph
	// properties).
	Inputs []wire.Message
	// Cancel, when non-nil, aborts transport waits: a blocked Recv* must
	// return a PhaseCanceled *RunError once the channel is receivable.
	Cancel <-chan struct{}
}

// Transport moves node-side traffic for the networked executor. The
// executor drives it from a single goroutine in schedule order, so
// implementations need no internal locking against the engine (they do
// need their own reader goroutines to keep per-connection inboxes fed).
//
// Contract, per schedule step:
//
//   - StepChallenge: the executor calls RecvChallenge exactly N times per
//     Arthur round and expects one challenge from every node, any arrival
//     order, no duplicates.
//   - StepRespond: the executor calls SendResponse once per node, node
//     ascending, with the post-funnel (charged, possibly corrupted)
//     message — the copy the node must observe.
//   - StepExchange: when the round defines a Digest, the executor first
//     calls RecvForward exactly N times (each node's digest of its
//     delivered response); it then calls SendExchange once per directed
//     edge (receiver ascending, sender ascending within the receiver's
//     neighbor list) with the post-funnel copy. Challenge exchanges and
//     digest-less forwards reuse messages the coordinator already holds,
//     so nothing is re-uploaded from the nodes.
//   - StepDecide: the executor calls RecvDecision exactly N times.
//
// Every method may fail the run by returning a *RunError; transport-level
// failures (lost connections, protocol violations, I/O deadlines) use
// PhaseTransport, cancellation uses PhaseCanceled. After any failure — or
// normal completion — the executor calls End exactly once; End must
// release every resource the run pinned (reader goroutines, buffers).
type Transport interface {
	// Begin starts a run: provision the far side (spec parameters, seed,
	// graph slices, inputs) and return only when every node host is ready
	// to play the schedule, or fail with a *RunError.
	Begin(run *TransportRun) *RunError
	// RecvChallenge returns the next node challenge for Arthur round ri.
	RecvChallenge(ri int) (node int, m wire.Message, rerr *RunError)
	// SendResponse delivers the prover's post-funnel round-ri message to
	// node.
	SendResponse(ri, node int, m wire.Message) *RunError
	// RecvForward returns the next node digest for Merlin round ri.
	RecvForward(ri int) (node int, m wire.Message, rerr *RunError)
	// SendExchange delivers the post-funnel exchange copy from → to. chal
	// marks a challenge exchange (Spec.ShareChallenges).
	SendExchange(ri, from, to int, chal bool, m wire.Message) *RunError
	// RecvDecision returns the next node decision.
	RecvDecision() (node int, decision bool, rerr *RunError)
	// End finishes the run. failure is the error that aborted it, or nil
	// on a completed run; implementations propagate it to node hosts so
	// they can abandon the schedule.
	End(failure *RunError)
}
