package network

import "math/rand"

// nodeRNG builds node v's private randomness stream: a splitmix64 sequence
// seeded by mix(seed, v). Both executors construct node RNGs exclusively
// through this function (directly, or by re-seeding a pooled *rand.Rand
// with the same mix — see runState.reset) — that shared construction is
// what makes their random draws, and hence their results, bit-identical.
//
// The source is deliberately not math/rand's default: the lagged-Fibonacci
// rngSource pays a ~10µs, 4.8KB initialization per node, which at n=256
// dominates an entire engine run. splitmix64 seeds in O(1) with 8 bytes of
// state; engine randomness only needs to be deterministic and
// well-distributed, not cryptographic.
func nodeRNG(seed int64, v int) *rand.Rand {
	src := nodeSource(seed, v)
	return rand.New(&src)
}

// nodeSource is nodeRNG's underlying source, exposed so runState can place
// all n sources in one backing array.
func nodeSource(seed int64, v int) splitmixSource {
	return splitmixSource{state: uint64(mix(seed, int64(v)))}
}

// splitmixSource is a rand.Source64 running splitmix64 (Steele, Lea &
// Flood's SplittableRandom output function over a Weyl sequence).
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// mix derives a per-node seed from the master seed (splitmix64 finalizer).
func mix(seed, v int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(v)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
