package network

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"dip/internal/graph"
	"dip/internal/obs"
	"dip/internal/wire"
)

// This file is the run-state layer: everything one run needs, gathered in
// a single pooled object. The experiment harness executes hundreds of
// trials per cell (experiments.RunTrials), and before this layer existed
// every trial re-allocated its node views, view backing arrays, RNGs,
// exchange maps, and adjacency snapshot from scratch. A runState keeps all
// of that and is reused through an explicit free list.
//
// What is pooled and what is not follows one rule: anything reachable from
// the returned *Result is freshly allocated per run (Cost's backing,
// Decisions, the Transcript and its rows), because callers retain results
// — experiments.TrialStats.Sample is read long after its trial finished.
// Everything only reachable during the run (views, RNG state, exchange
// maps, scratch rows, the ProverView's challenge rows) is pooled.
//
// The free list is a plain mutex-guarded LIFO with a fixed cap rather than
// a sync.Pool: sync.Pool empties on GC, which would make the engine's
// allocations per run depend on GC timing — and the recorded
// allocs-per-op figure in BENCH_seed1.json (and the bench-check gate over
// it) requires run costs to be deterministic.

type runState struct {
	// Per-run wiring, set by reset and cleared by release.
	spec   *Spec
	g      *graph.Graph
	inputs []wire.Message
	prover Prover
	opts   Options
	n      int

	// script is the compiled schedule both executors interpret. It points
	// into the process-global script cache for cacheable schedules (see
	// compiledScript) and at ownScript otherwise; either way the executors
	// treat it as read-only.
	script    *script
	ownScript script

	// home is the pool shard this state was checked out for; release
	// returns it there first so a warm shard stays warm.
	home int

	// nbrs is the adjacency snapshot: both executors route messages
	// exclusively through it, never through g after reset, which (a)
	// avoids per-exchange Neighbors allocations and (b) insulates verifier
	// decisions from a prover that violates the ProverView.Graph read-only
	// contract mid-run. adjFlat/adjOff are its pooled backing.
	nbrs    [][]int
	adjFlat []int
	adjOff  []int

	// Fresh per run (escape into the Result).
	cost       Cost
	transcript *Transcript
	decisions  []bool

	// pv is the prover's view; its Challenges rows are carved from the
	// pooled chalRows backing (row k = chalRows[k*n:(k+1)*n]), valid only
	// for the duration of the run — provers must not retain them.
	pv       ProverView
	chalRows []wire.Message

	// Per-node state: views plus their append backings (capacity-clipped
	// so an append can never cross into the next node's region), one
	// splitmix source per node, and the *rand.Rand wrappers. rngs[v]
	// points at &sources[v], so the two arrays grow together and a reused
	// Rand is re-seeded via Rand.Seed (which also resets the Rand's
	// buffered read state) — bit-identical to a freshly built nodeRNG.
	views       []NodeView
	sources     []splitmixSource
	rngs        []*rand.Rand
	myBack      []wire.Message
	respBack    []wire.Message
	nbrRespBack []map[int]wire.Message
	nbrChalBack []map[int]wire.Message

	// Scratch rows for the driver side of a Merlin round: the delivered
	// (post-corruption) messages and their digests.
	delivered []wire.Message
	forwards  []wire.Message

	// abandoned is set when a ProverTimeout expired: the abandoned Respond
	// goroutine may still reference this state, so release must drop it to
	// the garbage collector instead of pooling it.
	abandoned bool
}

// statePool is the explicit free list (see the file comment for why it is
// not a sync.Pool). It is shared by the whole process: the experiment
// harness's trial workers and the verification service's request workers
// all check states out of this pool, so a warm server recycles engine
// state across requests exactly like a warm harness recycles it across
// trials.
//
// The pool is sharded: one freelist per P (GOMAXPROCS at init) plus a
// global overflow list, so concurrent workers do not serialize on one
// mutex. A caller is assigned a home shard round-robin from an atomic
// counter; acquire tries home → overflow → stealing from the other shards
// before allocating fresh, which keeps the steady-state allocation count
// deterministic (the bench-check gate over BENCH_seed1.json depends on
// that) while spreading lock traffic C-ways. release returns a state to
// its home shard, spilling to overflow and finally dropping when full —
// total retained states stay bounded by the configured capacity.
var statePool pool

type pool struct {
	next atomic.Uint64
	// shards is swapped atomically by configure so the lock-free hot path
	// never races a reconfiguration; a release that lands in an orphaned
	// shard merely loses that one state to the garbage collector.
	shards   atomic.Pointer[[]poolShard]
	overflow poolShard

	// mu guards capacity reconfiguration only; the hot path never takes it.
	mu      sync.Mutex
	nominal int // last SetStatePoolCapacity argument (0 = default)
}

// poolShard is one mutex-guarded LIFO freelist. Its counters describe the
// shard's own freelist traffic: hits are pops served from this shard
// (including steals by other home shards), misses are acquisitions that
// found the whole pool empty and allocated (charged to the home shard),
// drops are releases discarded because every eligible list was full
// (charged to the overflow shard, the last resort).
type poolShard struct {
	mu                  sync.Mutex
	free                []*runState
	cap                 int
	hits, misses, drops int64
}

func (sh *poolShard) tryPop() *runState {
	sh.mu.Lock()
	n := len(sh.free)
	if n == 0 {
		sh.mu.Unlock()
		return nil
	}
	s := sh.free[n-1]
	sh.free[n-1] = nil
	sh.free = sh.free[:n-1]
	sh.hits++
	sh.mu.Unlock()
	return s
}

func (sh *poolShard) tryPush(s *runState) bool {
	sh.mu.Lock()
	if len(sh.free) >= sh.cap {
		sh.mu.Unlock()
		return false
	}
	sh.free = append(sh.free, s)
	sh.mu.Unlock()
	return true
}

const defaultPoolCap = 32

func init() {
	shards := runtime.GOMAXPROCS(0)
	if shards < 1 {
		shards = 1
	}
	if shards > 64 {
		shards = 64
	}
	statePool.configure(shards, 0)
}

// configure rebuilds the shard layout for a total capacity of nominal
// states (0 selects the default). The capacity is spread evenly across the
// shards — rounded up to at least one state per shard so no shard
// degenerates to pass-through — with the remainder as the overflow list's
// budget. Retained states already in the lists are dropped; configure is
// called at init, from SetStatePoolCapacity, and from tests.
func (p *pool) configure(shards, nominal int) {
	total := nominal
	if total <= 0 {
		total = defaultPoolCap
	}
	perShard := total / shards
	if perShard < 1 {
		perShard = 1
	}
	overflowCap := total - perShard*shards
	if overflowCap < 0 {
		overflowCap = 0
	}
	fresh := make([]poolShard, shards)
	for i := range fresh {
		fresh[i].cap = perShard
	}
	// Preserve monotone counters and as many warm states as fit.
	if old := p.shards.Load(); old != nil {
		for i := range *old {
			sh := &(*old)[i]
			sh.mu.Lock()
			dst := &fresh[i%shards]
			dst.hits += sh.hits
			dst.misses += sh.misses
			dst.drops += sh.drops
			for _, s := range sh.free {
				if !dst.tryPush(s) {
					break
				}
			}
			sh.mu.Unlock()
		}
	}
	p.shards.Store(&fresh)
	p.overflow.mu.Lock()
	p.overflow.cap = overflowCap
	if len(p.overflow.free) > overflowCap {
		for i := overflowCap; i < len(p.overflow.free); i++ {
			p.overflow.free[i] = nil
		}
		p.overflow.free = p.overflow.free[:overflowCap]
	}
	p.overflow.mu.Unlock()
	p.nominal = nominal
}

// PoolShardStats is the snapshot of one pool shard.
type PoolShardStats struct {
	Capacity int   `json:"capacity"`
	Free     int   `json:"free"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Drops    int64 `json:"drops"`
}

func (sh *poolShard) snapshot() PoolShardStats {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return PoolShardStats{
		Capacity: sh.cap,
		Free:     len(sh.free),
		Hits:     sh.hits,
		Misses:   sh.misses,
		Drops:    sh.drops,
	}
}

// PoolStats is a snapshot of the sharded engine-state pool, exported for
// service metrics: a hit ratio near 1 means steady-state traffic runs
// allocation-free through the pool. The top-level fields aggregate across
// all shards (Capacity is the true retained-state bound, which may round
// the configured capacity up to one state per shard); Shards and Overflow
// break the same numbers down per freelist.
type PoolStats struct {
	Capacity int              `json:"capacity"`
	Free     int              `json:"free"`
	Hits     int64            `json:"hits"`
	Misses   int64            `json:"misses"`
	Drops    int64            `json:"drops"`
	Shards   []PoolShardStats `json:"shards,omitempty"`
	Overflow *PoolShardStats  `json:"overflow,omitempty"`
}

// StatePoolStats returns the current pool snapshot.
func StatePoolStats() PoolStats {
	statePool.mu.Lock()
	defer statePool.mu.Unlock()
	var out PoolStats
	shards := *statePool.shards.Load()
	out.Shards = make([]PoolShardStats, len(shards))
	for i := range shards {
		s := shards[i].snapshot()
		out.Shards[i] = s
		out.Capacity += s.Capacity
		out.Free += s.Free
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Drops += s.Drops
	}
	ov := statePool.overflow.snapshot()
	out.Overflow = &ov
	out.Capacity += ov.Capacity
	out.Free += ov.Free
	out.Hits += ov.Hits
	out.Misses += ov.Misses
	out.Drops += ov.Drops
	return out
}

// SetStatePoolCapacity resizes the pool and returns the previously
// configured capacity. Long-running servers size it to their worker count
// so a full complement of in-flight requests can recycle state without
// allocating; n <= 0 restores the default. Shrinking drops the excess
// retained states immediately.
func SetStatePoolCapacity(n int) int {
	statePool.mu.Lock()
	defer statePool.mu.Unlock()
	prev := statePool.nominal
	if prev <= 0 {
		prev = defaultPoolCap
	}
	statePool.configure(len(*statePool.shards.Load()), n)
	return prev
}

// acquireState pops a pooled state — home shard, then overflow, then
// stealing from the remaining shards — or builds an empty one.
func acquireState() *runState {
	p := &statePool
	shards := *p.shards.Load()
	nShards := len(shards)
	h := int((p.next.Add(1) - 1) % uint64(nShards))
	if s := shards[h].tryPop(); s != nil {
		s.home = h
		return s
	}
	if s := p.overflow.tryPop(); s != nil {
		s.home = h
		return s
	}
	for i := 1; i < nShards; i++ {
		if s := shards[(h+i)%nShards].tryPop(); s != nil {
			s.home = h
			return s
		}
	}
	sh := &shards[h]
	sh.mu.Lock()
	sh.misses++
	sh.mu.Unlock()
	return &runState{home: h}
}

// reset prepares the state for one run: compiles the script, takes the
// adjacency snapshot, sizes every pooled array for (spec, n), re-seeds the
// node RNGs, and allocates the run's fresh (escaping) pieces.
func (s *runState) reset(spec *Spec, g *graph.Graph, inputs []wire.Message, p Prover, opts Options, n int) {
	s.spec, s.g, s.inputs, s.prover, s.opts, s.n = spec, g, inputs, p, opts, n
	s.abandoned = false
	s.script = compiledScript(spec, &s.ownScript)
	nA, nM := s.script.nA, s.script.nM

	s.cost = newCost(spec, n)
	s.transcript = nil
	if opts.RecordTranscript {
		s.transcript = &Transcript{Name: spec.Name}
	}
	s.decisions = make([]bool, n)

	// Adjacency snapshot: offsets first (appending may reallocate
	// adjFlat), then the capacity-clipped per-node headers.
	s.adjFlat = s.adjFlat[:0]
	s.adjOff = growInts(s.adjOff, n+1)
	for v := 0; v < n; v++ {
		s.adjOff[v] = len(s.adjFlat)
		s.adjFlat = g.AppendNeighbors(v, s.adjFlat)
	}
	s.adjOff[n] = len(s.adjFlat)
	s.nbrs = growRows(s.nbrs, n)
	for v := 0; v < n; v++ {
		lo, hi := s.adjOff[v], s.adjOff[v+1]
		s.nbrs[v] = s.adjFlat[lo:hi:hi]
	}

	s.chalRows = growMessages(s.chalRows, n*nA)
	s.myBack = growMessages(s.myBack, n*nA)
	s.respBack = growMessages(s.respBack, n*nM)
	s.nbrRespBack = growMaps(s.nbrRespBack, n*nM)
	if spec.ShareChallenges {
		s.nbrChalBack = growMaps(s.nbrChalBack, n*nA)
	}
	s.delivered = growMessages(s.delivered, n)
	s.forwards = growMessages(s.forwards, n)

	s.pv.Graph = g
	s.pv.Inputs = inputs
	s.pv.Challenges = s.pv.Challenges[:0]

	// sources and rngs grow in lockstep: each Rand wraps &sources[v], so a
	// reallocation of sources must rebuild every Rand (and a non-grown
	// reuse must re-seed through Rand.Seed to also reset its buffered read
	// state — see rng.go for the shared seeding).
	if cap(s.sources) < n {
		s.sources = make([]splitmixSource, n)
		s.rngs = make([]*rand.Rand, n)
		for v := 0; v < n; v++ {
			s.sources[v] = nodeSource(opts.Seed, v)
			s.rngs[v] = rand.New(&s.sources[v])
		}
	} else {
		s.sources = s.sources[:n]
		s.rngs = s.rngs[:n]
		for v := 0; v < n; v++ {
			s.rngs[v].Seed(mix(opts.Seed, int64(v)))
		}
	}

	if cap(s.views) < n {
		s.views = make([]NodeView, n)
	} else {
		s.views = s.views[:n]
	}
	for v := 0; v < n; v++ {
		s.views[v] = NodeView{
			V:                 v,
			NumVertices:       n,
			Neighbors:         s.nbrs[v],
			MyChallenges:      s.myBack[v*nA : v*nA : (v+1)*nA],
			Responses:         s.respBack[v*nM : v*nM : (v+1)*nM],
			NeighborResponses: s.nbrRespBack[v*nM : v*nM : (v+1)*nM],
		}
		if spec.ShareChallenges {
			s.views[v].NeighborChallenges = s.nbrChalBack[v*nA : v*nA : (v+1)*nA]
		}
		if inputs != nil {
			s.views[v].Input = inputs[v]
		}
	}
}

// release returns the state to the pool after dropping every per-run
// reference: caller data (spec, graph, prover, options with their
// injector closures), the escaping pieces (cost, decisions, transcript),
// and the message headers and exchange-map entries of the finished run —
// a pooled state must not pin another run's payloads alive.
func (s *runState) release() {
	if s.abandoned {
		return // a timed-out prover goroutine may still hold this state
	}
	clearMessages(s.chalRows)
	clearMessages(s.myBack)
	clearMessages(s.respBack)
	clearMessages(s.delivered)
	clearMessages(s.forwards)
	clearMaps(s.nbrRespBack)
	clearMaps(s.nbrChalBack)
	for i := range s.pv.Challenges {
		s.pv.Challenges[i] = nil
	}
	s.pv.Challenges = s.pv.Challenges[:0]
	s.pv.Graph, s.pv.Inputs = nil, nil
	s.spec, s.g, s.inputs, s.prover = nil, nil, nil, nil
	s.opts = Options{}
	s.cost = Cost{}
	s.transcript = nil
	s.decisions = nil
	s.script = nil

	p := &statePool
	shards := *p.shards.Load()
	if s.home < len(shards) && shards[s.home].tryPush(s) {
		return
	}
	if p.overflow.tryPush(s) {
		return
	}
	p.overflow.mu.Lock()
	p.overflow.drops++
	p.overflow.mu.Unlock()
}

// finish assembles the Result of a completed run and publishes the
// funnel's delivery meters to the process-global obs counters — once per
// run, from the charge totals, so the per-delivery hot path stays free of
// atomics.
func (s *runState) finish() *Result {
	accepted := true
	for _, d := range s.decisions {
		accepted = accepted && d
	}
	bits := 0
	for v := 0; v < s.n; v++ {
		bits += s.cost.ToProver[v] + s.cost.FromProver[v] + s.cost.NodeToNode[v]
	}
	count := s.n*(s.script.nA+s.script.nM) + s.script.nEx*len(s.adjFlat)
	obs.RecordDeliveries(int64(count), int64(bits))
	return &Result{
		Accepted:   accepted,
		Decisions:  s.decisions,
		Cost:       s.cost,
		Transcript: s.transcript,
	}
}

// The grow helpers resize a pooled slice to length n, reallocating only
// when capacity is exhausted. Stale contents beyond a previous, shorter
// run are unreachable (release zeroed them).

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growRows(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}

func growMessages(s []wire.Message, n int) []wire.Message {
	if cap(s) < n {
		return make([]wire.Message, n)
	}
	return s[:n]
}

func growMaps(s []map[int]wire.Message, n int) []map[int]wire.Message {
	if cap(s) < n {
		return make([]map[int]wire.Message, n)
	}
	return s[:n]
}

func clearMessages(ms []wire.Message) {
	for i := range ms {
		ms[i] = wire.Message{}
	}
}

func clearMaps(maps []map[int]wire.Message) {
	for _, m := range maps {
		if len(m) > 0 {
			clear(m)
		}
	}
}
