package network

import (
	"math/rand"
	"sync"

	"dip/internal/graph"
	"dip/internal/obs"
	"dip/internal/wire"
)

// This file is the run-state layer: everything one run needs, gathered in
// a single pooled object. The experiment harness executes hundreds of
// trials per cell (experiments.RunTrials), and before this layer existed
// every trial re-allocated its node views, view backing arrays, RNGs,
// exchange maps, and adjacency snapshot from scratch. A runState keeps all
// of that and is reused through an explicit free list.
//
// What is pooled and what is not follows one rule: anything reachable from
// the returned *Result is freshly allocated per run (Cost's backing,
// Decisions, the Transcript and its rows), because callers retain results
// — experiments.TrialStats.Sample is read long after its trial finished.
// Everything only reachable during the run (views, RNG state, exchange
// maps, scratch rows, the ProverView's challenge rows) is pooled.
//
// The free list is a plain mutex-guarded LIFO with a fixed cap rather than
// a sync.Pool: sync.Pool empties on GC, which would make the engine's
// allocations per run depend on GC timing — and the recorded
// allocs-per-op figure in BENCH_seed1.json (and the bench-check gate over
// it) requires run costs to be deterministic.

type runState struct {
	// Per-run wiring, set by reset and cleared by release.
	spec   *Spec
	g      *graph.Graph
	inputs []wire.Message
	prover Prover
	opts   Options
	n      int

	// script is the compiled schedule both executors interpret.
	script script

	// nbrs is the adjacency snapshot: both executors route messages
	// exclusively through it, never through g after reset, which (a)
	// avoids per-exchange Neighbors allocations and (b) insulates verifier
	// decisions from a prover that violates the ProverView.Graph read-only
	// contract mid-run. adjFlat/adjOff are its pooled backing.
	nbrs    [][]int
	adjFlat []int
	adjOff  []int

	// Fresh per run (escape into the Result).
	cost       Cost
	transcript *Transcript
	decisions  []bool

	// pv is the prover's view; its Challenges rows are carved from the
	// pooled chalRows backing (row k = chalRows[k*n:(k+1)*n]), valid only
	// for the duration of the run — provers must not retain them.
	pv       ProverView
	chalRows []wire.Message

	// Per-node state: views plus their append backings (capacity-clipped
	// so an append can never cross into the next node's region), one
	// splitmix source per node, and the *rand.Rand wrappers. rngs[v]
	// points at &sources[v], so the two arrays grow together and a reused
	// Rand is re-seeded via Rand.Seed (which also resets the Rand's
	// buffered read state) — bit-identical to a freshly built nodeRNG.
	views       []NodeView
	sources     []splitmixSource
	rngs        []*rand.Rand
	myBack      []wire.Message
	respBack    []wire.Message
	nbrRespBack []map[int]wire.Message
	nbrChalBack []map[int]wire.Message

	// Scratch rows for the driver side of a Merlin round: the delivered
	// (post-corruption) messages and their digests.
	delivered []wire.Message
	forwards  []wire.Message

	// abandoned is set when a ProverTimeout expired: the abandoned Respond
	// goroutine may still reference this state, so release must drop it to
	// the garbage collector instead of pooling it.
	abandoned bool
}

// statePool is the explicit free list (see the file comment for why it is
// not a sync.Pool). It is shared by the whole process: the experiment
// harness's trial workers and the verification service's request workers
// all check states out of this one list, so a warm server recycles engine
// state across requests exactly like a warm harness recycles it across
// trials. cap bounds retained memory; a burst of concurrent runs beyond it
// simply allocates fresh states. hits/misses/drops feed StatePoolStats.
var statePool struct {
	mu   sync.Mutex
	free []*runState
	cap  int
	// hits counts acquisitions served from the free list, misses those that
	// allocated fresh state, drops releases discarded because the list was
	// full. All are monotone over the process lifetime.
	hits, misses, drops int64
}

const defaultPoolCap = 32

// poolCapLocked returns the effective capacity (statePool.mu held).
func poolCapLocked() int {
	if statePool.cap <= 0 {
		return defaultPoolCap
	}
	return statePool.cap
}

// PoolStats is a snapshot of the shared engine-state free list, exported
// for service metrics: a hit ratio near 1 means steady-state traffic runs
// allocation-free through the pool.
type PoolStats struct {
	Capacity int   `json:"capacity"`
	Free     int   `json:"free"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Drops    int64 `json:"drops"`
}

// StatePoolStats returns the current free-list snapshot.
func StatePoolStats() PoolStats {
	statePool.mu.Lock()
	defer statePool.mu.Unlock()
	return PoolStats{
		Capacity: poolCapLocked(),
		Free:     len(statePool.free),
		Hits:     statePool.hits,
		Misses:   statePool.misses,
		Drops:    statePool.drops,
	}
}

// SetStatePoolCapacity resizes the shared free list and returns the
// previous capacity. Long-running servers size it to their worker count so
// a full complement of in-flight requests can recycle state without
// allocating; n <= 0 restores the default. Shrinking drops the excess
// retained states immediately.
func SetStatePoolCapacity(n int) int {
	statePool.mu.Lock()
	defer statePool.mu.Unlock()
	prev := poolCapLocked()
	statePool.cap = n
	if c := poolCapLocked(); len(statePool.free) > c {
		for i := c; i < len(statePool.free); i++ {
			statePool.free[i] = nil
		}
		statePool.free = statePool.free[:c]
	}
	return prev
}

// acquireState pops a pooled state or builds an empty one.
func acquireState() *runState {
	statePool.mu.Lock()
	if n := len(statePool.free); n > 0 {
		s := statePool.free[n-1]
		statePool.free[n-1] = nil
		statePool.free = statePool.free[:n-1]
		statePool.hits++
		statePool.mu.Unlock()
		return s
	}
	statePool.misses++
	statePool.mu.Unlock()
	return &runState{}
}

// reset prepares the state for one run: compiles the script, takes the
// adjacency snapshot, sizes every pooled array for (spec, n), re-seeds the
// node RNGs, and allocates the run's fresh (escaping) pieces.
func (s *runState) reset(spec *Spec, g *graph.Graph, inputs []wire.Message, p Prover, opts Options, n int) {
	s.spec, s.g, s.inputs, s.prover, s.opts, s.n = spec, g, inputs, p, opts, n
	s.abandoned = false
	s.script.compile(spec)
	nA, nM := s.script.nA, s.script.nM

	s.cost = newCost(spec, n)
	s.transcript = nil
	if opts.RecordTranscript {
		s.transcript = &Transcript{Name: spec.Name}
	}
	s.decisions = make([]bool, n)

	// Adjacency snapshot: offsets first (appending may reallocate
	// adjFlat), then the capacity-clipped per-node headers.
	s.adjFlat = s.adjFlat[:0]
	s.adjOff = growInts(s.adjOff, n+1)
	for v := 0; v < n; v++ {
		s.adjOff[v] = len(s.adjFlat)
		s.adjFlat = g.AppendNeighbors(v, s.adjFlat)
	}
	s.adjOff[n] = len(s.adjFlat)
	s.nbrs = growRows(s.nbrs, n)
	for v := 0; v < n; v++ {
		lo, hi := s.adjOff[v], s.adjOff[v+1]
		s.nbrs[v] = s.adjFlat[lo:hi:hi]
	}

	s.chalRows = growMessages(s.chalRows, n*nA)
	s.myBack = growMessages(s.myBack, n*nA)
	s.respBack = growMessages(s.respBack, n*nM)
	s.nbrRespBack = growMaps(s.nbrRespBack, n*nM)
	if spec.ShareChallenges {
		s.nbrChalBack = growMaps(s.nbrChalBack, n*nA)
	}
	s.delivered = growMessages(s.delivered, n)
	s.forwards = growMessages(s.forwards, n)

	s.pv.Graph = g
	s.pv.Inputs = inputs
	s.pv.Challenges = s.pv.Challenges[:0]

	// sources and rngs grow in lockstep: each Rand wraps &sources[v], so a
	// reallocation of sources must rebuild every Rand (and a non-grown
	// reuse must re-seed through Rand.Seed to also reset its buffered read
	// state — see rng.go for the shared seeding).
	if cap(s.sources) < n {
		s.sources = make([]splitmixSource, n)
		s.rngs = make([]*rand.Rand, n)
		for v := 0; v < n; v++ {
			s.sources[v] = nodeSource(opts.Seed, v)
			s.rngs[v] = rand.New(&s.sources[v])
		}
	} else {
		s.sources = s.sources[:n]
		s.rngs = s.rngs[:n]
		for v := 0; v < n; v++ {
			s.rngs[v].Seed(mix(opts.Seed, int64(v)))
		}
	}

	if cap(s.views) < n {
		s.views = make([]NodeView, n)
	} else {
		s.views = s.views[:n]
	}
	for v := 0; v < n; v++ {
		s.views[v] = NodeView{
			V:                 v,
			NumVertices:       n,
			Neighbors:         s.nbrs[v],
			MyChallenges:      s.myBack[v*nA : v*nA : (v+1)*nA],
			Responses:         s.respBack[v*nM : v*nM : (v+1)*nM],
			NeighborResponses: s.nbrRespBack[v*nM : v*nM : (v+1)*nM],
		}
		if spec.ShareChallenges {
			s.views[v].NeighborChallenges = s.nbrChalBack[v*nA : v*nA : (v+1)*nA]
		}
		if inputs != nil {
			s.views[v].Input = inputs[v]
		}
	}
}

// release returns the state to the pool after dropping every per-run
// reference: caller data (spec, graph, prover, options with their
// injector closures), the escaping pieces (cost, decisions, transcript),
// and the message headers and exchange-map entries of the finished run —
// a pooled state must not pin another run's payloads alive.
func (s *runState) release() {
	if s.abandoned {
		return // a timed-out prover goroutine may still hold this state
	}
	clearMessages(s.chalRows)
	clearMessages(s.myBack)
	clearMessages(s.respBack)
	clearMessages(s.delivered)
	clearMessages(s.forwards)
	clearMaps(s.nbrRespBack)
	clearMaps(s.nbrChalBack)
	for i := range s.pv.Challenges {
		s.pv.Challenges[i] = nil
	}
	s.pv.Challenges = s.pv.Challenges[:0]
	s.pv.Graph, s.pv.Inputs = nil, nil
	s.spec, s.g, s.inputs, s.prover = nil, nil, nil, nil
	s.opts = Options{}
	s.cost = Cost{}
	s.transcript = nil
	s.decisions = nil

	statePool.mu.Lock()
	if len(statePool.free) < poolCapLocked() {
		statePool.free = append(statePool.free, s)
	} else {
		statePool.drops++
	}
	statePool.mu.Unlock()
}

// finish assembles the Result of a completed run and publishes the
// funnel's delivery meters to the process-global obs counters — once per
// run, from the charge totals, so the per-delivery hot path stays free of
// atomics.
func (s *runState) finish() *Result {
	accepted := true
	for _, d := range s.decisions {
		accepted = accepted && d
	}
	bits := 0
	for v := 0; v < s.n; v++ {
		bits += s.cost.ToProver[v] + s.cost.FromProver[v] + s.cost.NodeToNode[v]
	}
	count := s.n*(s.script.nA+s.script.nM) + s.script.nEx*len(s.adjFlat)
	obs.RecordDeliveries(int64(count), int64(bits))
	return &Result{
		Accepted:   accepted,
		Decisions:  s.decisions,
		Cost:       s.cost,
		Transcript: s.transcript,
	}
}

// The grow helpers resize a pooled slice to length n, reallocating only
// when capacity is exhausted. Stale contents beyond a previous, shorter
// run are unreachable (release zeroed them).

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growRows(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}

func growMessages(s []wire.Message, n int) []wire.Message {
	if cap(s) < n {
		return make([]wire.Message, n)
	}
	return s[:n]
}

func growMaps(s []map[int]wire.Message, n int) []map[int]wire.Message {
	if cap(s) < n {
		return make([]map[int]wire.Message, n)
	}
	return s[:n]
}

func clearMessages(ms []wire.Message) {
	for i := range ms {
		ms[i] = wire.Message{}
	}
}

func clearMaps(maps []map[int]wire.Message) {
	for _, m := range maps {
		if len(m) > 0 {
			clear(m)
		}
	}
}
