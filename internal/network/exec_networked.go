package network

import (
	"fmt"

	"dip/internal/wire"
)

// networkedExecutor interprets the round script against remote verifier
// nodes reached through Options.Transport. It is the coordinator half of a
// distributed run: the prover, the delivery funnel (validation, cost
// charging, fault corruption), and the transcript all execute here, in
// exactly the sequential executor's order, while every node-side callback
// (Challenge, Digest, Decide) runs wherever the transport's far side hosts
// the node — its RNG seeded mix(Seed, v) there, via NodeState.
//
// Bit-identity with the in-process executors follows from three facts:
// node randomness is per-node (so it does not matter which process draws
// it), every funnel delivery happens here in the sequential order (so cost
// rows, corruption call order, and transcript rows match), and the copies
// the far side observes are the post-funnel messages this side sends (so
// views — and hence decisions — match). The equivalence suite asserts all
// of it protocol-by-protocol.
type networkedExecutor struct{}

func (networkedExecutor) run(s *runState) *RunError {
	t := s.opts.Transport
	n := s.n
	tr := &TransportRun{
		Spec:      s.spec,
		Seed:      s.opts.Seed,
		N:         n,
		Neighbors: s.nbrs,
		Inputs:    s.inputs,
		Cancel:    s.opts.Cancel,
	}
	if rerr := t.Begin(tr); rerr != nil {
		t.End(rerr)
		return rerr
	}
	rerr := runNetworked(s, t)
	t.End(rerr)
	return rerr
}

func runNetworked(s *runState, t Transport) *RunError {
	n := s.n
	// seen tracks which nodes have reported within one collect phase
	// (challenges, forwards, decisions): a transport frame for an
	// out-of-range or duplicate node is a protocol violation, not silently
	// absorbed state corruption.
	seen := make([]bool, n)
	for _, st := range s.script.steps {
		if rerr := s.checkCancel(st.ri); rerr != nil {
			return rerr
		}
		switch st.kind {
		case StepChallenge:
			row := s.chalRows[st.arthur*n : (st.arthur+1)*n]
			clearSeen(seen)
			for i := 0; i < n; i++ {
				v, c, rerr := t.RecvChallenge(st.ri)
				if rerr != nil {
					return rerr
				}
				if rerr := claimNode(s, st.ri, seen, v, "challenge"); rerr != nil {
					return rerr
				}
				row[v] = c
			}
			// Charge in ascending node order — the funnel order every
			// executor shares. (The challenge plane has no corruption hook,
			// so deliver returns the message unchanged.)
			for v := 0; v < n; v++ {
				m, rerr := s.deliver(planeChallenge, st.ri, v, -1, row[v])
				if rerr != nil {
					return rerr
				}
				row[v] = m
			}
			s.pv.Challenges = append(s.pv.Challenges, row)
			s.recordRound(Arthur, row)

		case StepRespond:
			resp, rerr := s.callRespond(st.ri, st.merlin)
			if rerr != nil {
				return rerr
			}
			for v := 0; v < n; v++ {
				m, rerr := s.deliver(planeResponse, st.ri, -1, v, resp.PerNode[v])
				if rerr != nil {
					return rerr
				}
				s.delivered[v] = m
				if rerr := t.SendResponse(st.ri, v, m); rerr != nil {
					return rerr
				}
			}
			s.recordRound(Merlin, s.delivered)

		case StepExchange:
			// Pick what each node forwards, mirroring the sequential
			// executor: the round's challenges and plain (digest-less)
			// responses are copies the coordinator already holds, so only
			// digests cross the wire back — each node computes its own
			// digest (the RNG draw must happen on the node's host) and
			// reports it before any delivery.
			var msgs []wire.Message
			if st.chal {
				msgs = s.chalRows[st.arthur*n : (st.arthur+1)*n]
			} else if s.spec.Rounds[st.ri].Digest != nil {
				clearSeen(seen)
				for i := 0; i < n; i++ {
					v, f, rerr := t.RecvForward(st.ri)
					if rerr != nil {
						return rerr
					}
					if rerr := claimNode(s, st.ri, seen, v, "forward"); rerr != nil {
						return rerr
					}
					s.forwards[v] = f
				}
				msgs = s.forwards
			} else {
				msgs = s.delivered
			}
			for v := 0; v < n; v++ {
				for _, u := range s.nbrs[v] {
					// u→v delivery: u is charged for its honest copy, v's
					// host receives the (possibly corrupted) one.
					m, _ := s.deliver(planeExchange, st.ri, u, v, msgs[u])
					if rerr := t.SendExchange(st.ri, u, v, st.chal, m); rerr != nil {
						return rerr
					}
				}
			}

		case StepDecide:
			clearSeen(seen)
			for i := 0; i < n; i++ {
				v, d, rerr := t.RecvDecision()
				if rerr != nil {
					return rerr
				}
				if rerr := claimNode(s, -1, seen, v, "decision"); rerr != nil {
					return rerr
				}
				s.decisions[v] = d
			}
		}
	}
	return nil
}

// claimNode validates a node index reported by the transport within one
// collect phase and marks it seen.
func claimNode(s *runState, ri int, seen []bool, v int, what string) *RunError {
	if v < 0 || v >= len(seen) {
		return s.runError(PhaseTransport, ri, -1,
			fmt.Errorf("transport reported %s for node %d of %d", what, v, len(seen)))
	}
	if seen[v] {
		return s.runError(PhaseTransport, ri, v,
			fmt.Errorf("transport reported a second %s for node %d", what, v))
	}
	seen[v] = true
	return nil
}

func clearSeen(seen []bool) {
	for i := range seen {
		seen[i] = false
	}
}
