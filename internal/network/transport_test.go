package network

import (
	"errors"
	"strings"
	"testing"

	"dip/internal/graph"
	"dip/internal/wire"
)

// loopTransport is an in-memory Transport: it hosts every node in the same
// process through NodeState — the exact node-side code internal/peer runs
// in a separate process — with zero sockets. It deliberately reports
// collect-phase results in *descending* node order to prove the networked
// executor is arrival-order independent, like real peers answering at
// their own pace.
type loopTransport struct {
	nodes []*NodeState
	n     int
	// cursor walks each collect phase (challenges, forwards, decisions)
	// once; the executor calls each Recv* exactly n times per phase.
	chalCur, fwdCur, decCur int
	// pending accumulates exchange deliveries per receiver until the
	// receiver's neighbor set is complete.
	pending map[int]map[int]wire.Message
	degrees []int
	ended   bool
	failure *RunError
}

func (lt *loopTransport) Begin(run *TransportRun) *RunError {
	lt.n = run.N
	lt.nodes = make([]*NodeState, run.N)
	lt.degrees = make([]int, run.N)
	lt.pending = make(map[int]map[int]wire.Message)
	for v := 0; v < run.N; v++ {
		var input wire.Message
		if run.Inputs != nil {
			input = run.Inputs[v]
		}
		// Copy the neighbor slice: TransportRun.Neighbors aliases pooled
		// engine state that a transport must not retain.
		nbrs := append([]int(nil), run.Neighbors[v]...)
		ns, err := NewNodeState(run.Spec, v, run.N, nbrs, input, run.Seed)
		if err != nil {
			return &RunError{Protocol: run.Spec.Name, Phase: PhaseTransport,
				Round: -1, Node: v, Err: err}
		}
		lt.nodes[v] = ns
		lt.degrees[v] = len(nbrs)
	}
	return nil
}

// next returns the collect-phase cursor's node, descending.
func (lt *loopTransport) next(cur *int) int {
	v := lt.n - 1 - (*cur % lt.n)
	*cur++
	return v
}

func (lt *loopTransport) RecvChallenge(ri int) (int, wire.Message, *RunError) {
	v := lt.next(&lt.chalCur)
	m, rerr := lt.nodes[v].Challenge(ri)
	return v, m, rerr
}

func (lt *loopTransport) SendResponse(ri, node int, m wire.Message) *RunError {
	lt.nodes[node].PushResponse(m)
	return nil
}

func (lt *loopTransport) RecvForward(ri int) (int, wire.Message, *RunError) {
	v := lt.next(&lt.fwdCur)
	m, rerr := lt.nodes[v].ExchangeOut(ScheduleStep{Kind: StepExchange, Round: ri})
	return v, m, rerr
}

func (lt *loopTransport) SendExchange(ri, from, to int, chal bool, m wire.Message) *RunError {
	got := lt.pending[to]
	if got == nil {
		got = make(map[int]wire.Message, lt.degrees[to])
		lt.pending[to] = got
	}
	got[from] = m
	if len(got) == lt.degrees[to] {
		lt.nodes[to].PushExchange(ScheduleStep{Kind: StepExchange, Round: ri, Chal: chal}, got)
		delete(lt.pending, to)
	}
	return nil
}

func (lt *loopTransport) RecvDecision() (int, bool, *RunError) {
	v := lt.next(&lt.decCur)
	d, rerr := lt.nodes[v].Decide()
	return v, d, rerr
}

func (lt *loopTransport) End(failure *RunError) {
	lt.ended = true
	lt.failure = failure
}

// TestNetworkedMatchesSequential reuses the engine-equivalence case table:
// every spec/graph/prover/options mix must produce bit-identical results
// under the networked executor (nodes hosted through NodeState behind a
// Transport) and the sequential one.
func TestNetworkedMatchesSequential(t *testing.T) {
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if node%3 != 1 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 0x80
		return out
	}
	corruptEx := func(round, from, to int, m wire.Message) wire.Message {
		if (from+to)%2 == 0 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[len(out.Data)-1] ^= 0x01
		return out
	}
	shareSpec := &Spec{
		Name:            "net-share",
		ShareChallenges: true,
		Rounds:          []Round{challengeRound(8), {Kind: Merlin}},
		Decide: func(v int, view *NodeView) bool {
			return len(view.NeighborChallenges[0]) == len(view.Neighbors)
		},
	}
	cases := []struct {
		name   string
		spec   *Spec
		g      *graph.Graph
		prover Prover
		opts   Options
	}{
		{"echo-cycle", echoSpec(16), graph.Cycle(9), echoProver{}, Options{Seed: 1}},
		{"echo-transcript", echoSpec(24), graph.Path(6), echoProver{},
			Options{Seed: 3, RecordTranscript: true}},
		{"lying", echoSpec(16), graph.Cycle(5), lyingProver{}, Options{Seed: 4}},
		{"broadcast-liar", broadcastSpec(), graph.Path(5), broadcastProver{liar: 2}, Options{Seed: 5}},
		{"corrupted", echoSpec(16), graph.Cycle(6), echoProver{},
			Options{Seed: 6, Corrupt: corrupt, RecordTranscript: true}},
		{"corrupted-exchange", echoSpec(16), graph.Complete(5), echoProver{},
			Options{Seed: 10, CorruptExchange: corruptEx, RecordTranscript: true}},
		{"share-challenges", shareSpec, graph.Path(4), echoProver{}, Options{Seed: 7}},
		{"digest-amam", digestSpec(), graph.Cycle(8), echoProver{},
			Options{Seed: 8, RecordTranscript: true}},
		{"single-node", echoSpec(8), graph.New(1), echoProver{}, Options{Seed: 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				opts := tc.opts
				opts.Seed += seed * 1000
				seqOpts := opts
				seqOpts.Sequential = true
				seqRes, err := Run(tc.spec, tc.g, nil, tc.prover, seqOpts)
				if err != nil {
					t.Fatal(err)
				}
				lt := &loopTransport{}
				netOpts := opts
				netOpts.Transport = lt
				netRes, err := Run(tc.spec, tc.g, nil, tc.prover, netOpts)
				if err != nil {
					t.Fatal(err)
				}
				resultsIdentical(t, tc.name, seqRes, netRes)
				if !lt.ended || lt.failure != nil {
					t.Fatalf("transport End(failure=%v), ended=%v", lt.failure, lt.ended)
				}
			}
		})
	}
}

func TestTransportModeExclusive(t *testing.T) {
	g := graph.Path(3)
	for _, opts := range []Options{
		{Transport: &loopTransport{}, Sequential: true},
		{Transport: &loopTransport{}, Concurrent: true},
	} {
		if _, err := Run(echoSpec(8), g, nil, echoProver{}, opts); !errors.Is(err, errTransportMode) {
			t.Fatalf("Transport+forced-mode: err = %v, want errTransportMode", err)
		}
	}
}

// misbehavingTransport wraps loopTransport and lies in one collect phase.
type misbehavingTransport struct {
	loopTransport
	dupChallenge  bool
	rangeDecision bool
}

func (mt *misbehavingTransport) RecvChallenge(ri int) (int, wire.Message, *RunError) {
	v, m, rerr := mt.loopTransport.RecvChallenge(ri)
	if mt.dupChallenge {
		return 0, m, rerr // every call claims node 0
	}
	return v, m, rerr
}

func (mt *misbehavingTransport) RecvDecision() (int, bool, *RunError) {
	_, d, rerr := mt.loopTransport.RecvDecision()
	if mt.rangeDecision {
		return mt.n + 7, d, rerr
	}
	return mt.n - 1, d, rerr
}

// TestTransportProtocolViolations pins the executor's defense against a
// transport that reports duplicate or out-of-range nodes: a structured
// PhaseTransport RunError, with End told about the failure.
func TestTransportProtocolViolations(t *testing.T) {
	g := graph.Cycle(4)
	for _, tc := range []struct {
		name string
		mt   *misbehavingTransport
		frag string
	}{
		{"duplicate-node", &misbehavingTransport{dupChallenge: true}, "second challenge"},
		{"out-of-range", &misbehavingTransport{rangeDecision: true}, "decision for node"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(echoSpec(8), g, nil, echoProver{},
				Options{Seed: 1, Transport: tc.mt})
			var rerr *RunError
			if !errors.As(err, &rerr) || rerr.Phase != PhaseTransport {
				t.Fatalf("err = %v, want PhaseTransport RunError", err)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
			if !tc.mt.ended || tc.mt.failure == nil {
				t.Fatalf("End not told about failure (ended=%v failure=%v)",
					tc.mt.ended, tc.mt.failure)
			}
		})
	}
}

// TestScheduleMatchesCompile pins the exported Schedule against the
// in-process script for a digest+share spec: same step kinds, rounds, and
// counters.
func TestScheduleMatchesCompile(t *testing.T) {
	spec := &Spec{
		Name:            "sched",
		ShareChallenges: true,
		Rounds: []Round{
			challengeRound(8), {Kind: Merlin},
			challengeRound(4), {Kind: Merlin},
		},
		Decide: func(int, *NodeView) bool { return true },
	}
	steps, err := Schedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	var own script
	own.compile(spec)
	if len(steps) != len(own.steps) {
		t.Fatalf("Schedule len %d, compile len %d", len(steps), len(own.steps))
	}
	for i, st := range own.steps {
		got := steps[i]
		want := ScheduleStep{Kind: st.kind, Round: st.ri, Merlin: st.merlin, Arthur: st.arthur, Chal: st.chal}
		if got != want {
			t.Fatalf("step %d: %+v vs %+v", i, got, want)
		}
	}
	if _, err := Schedule(&Spec{Name: "bad", Rounds: []Round{{Kind: Arthur}}}); err == nil {
		t.Fatal("Schedule accepted an Arthur round without Challenge")
	}
}
