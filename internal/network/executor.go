package network

// Executor is the engine's execution strategy: an implementation steps the
// compiled round script of a prepared runState, filling in its decisions,
// cost, and transcript, and returns the first failure (or nil). The two
// implementations — sequentialExecutor and concurrentExecutor — differ
// only in *scheduling*: which goroutine runs which step, and how messages
// travel between them. Everything semantic (the schedule itself, Spec
// callbacks, validation, charging, corruption) lives in the script and
// funnel layers both executors share, which is why they are bit-identical
// at a fixed seed (asserted protocol-by-protocol by the equivalence
// tests).
//
// The interface is sealed (its method takes the unexported runState):
// executors are engine internals, selected via Options.Sequential /
// Options.Concurrent.
type Executor interface {
	run(s *runState) *RunError
}

// executorFor selects the executor for opts (sequential is the default:
// a single run has no intrinsic parallelism, so the goroutine-per-node
// realization buys nothing — see the package comment).
func executorFor(opts Options) Executor {
	if opts.Concurrent {
		return concurrentExecutor{}
	}
	return sequentialExecutor{}
}
