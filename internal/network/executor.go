package network

// Executor is the engine's execution strategy: an implementation steps the
// compiled round script of a prepared runState, filling in its decisions,
// cost, and transcript, and returns the first failure (or nil). The three
// implementations — sequentialExecutor, concurrentExecutor, and
// networkedExecutor — differ only in *scheduling and placement*: which
// goroutine (or which process) runs which step, and how messages travel
// between them. Everything semantic (the schedule itself, Spec callbacks,
// validation, charging, corruption) lives in the script and funnel layers
// all executors share, which is why they are bit-identical at a fixed seed
// (asserted protocol-by-protocol by the equivalence tests).
//
// The interface is deliberately sealed (its method takes the unexported
// runState): an executor's job is to interpret pooled engine internals,
// and exposing those internals would freeze them as API. Out-of-process
// execution therefore does not implement Executor from outside — it plugs
// in *below* the seam instead: networkedExecutor (in-package) drives any
// Options.Transport implementation, and internal/peer supplies the
// transport plus the NodeState node hosts. DESIGN.md §9 and §13 document
// this split.
type Executor interface {
	run(s *runState) *RunError
}

// executorFor selects the executor for opts (sequential is the default:
// a single run has no intrinsic parallelism, so the goroutine-per-node
// realization buys nothing — see the package comment).
func executorFor(opts Options) Executor {
	if opts.Transport != nil {
		return networkedExecutor{}
	}
	if opts.Concurrent {
		return concurrentExecutor{}
	}
	return sequentialExecutor{}
}
