package network

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"dip/internal/graph"
	"dip/internal/wire"
)

// echoProver answers every node with its own last challenge.
type echoProver struct{}

func (echoProver) Respond(_ int, view *ProverView) (*Response, error) {
	last := view.Challenges[len(view.Challenges)-1]
	resp := &Response{PerNode: make([]wire.Message, len(last))}
	copy(resp.PerNode, last)
	return resp, nil
}

// challengeBits builds an Arthur round sending `bits` random bits.
func challengeRound(bits int) Round {
	return Round{Kind: Arthur, Challenge: func(v int, rng *rand.Rand, _ *NodeView) wire.Message {
		var w wire.Writer
		for i := 0; i < bits; i++ {
			w.WriteBool(rng.Intn(2) == 1)
		}
		return w.Message()
	}}
}

func echoSpec(bits int) *Spec {
	return &Spec{
		Name:   "echo",
		Rounds: []Round{challengeRound(bits), {Kind: Merlin}},
		Decide: func(v int, view *NodeView) bool {
			if len(view.Responses) != 1 {
				return false
			}
			got := view.Responses[0]
			want := view.MyChallenges[0]
			if got.Bits != want.Bits {
				return false
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					return false
				}
			}
			return true
		},
	}
}

func TestEchoProtocolAccepts(t *testing.T) {
	g := graph.Cycle(6)
	res, err := Run(echoSpec(16), g, nil, echoProver{}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("echo protocol rejected: %v", res.Decisions)
	}
	for v := 0; v < 6; v++ {
		if res.Cost.ToProver[v] != 16 || res.Cost.FromProver[v] != 16 {
			t.Fatalf("node %d cost = %d/%d, want 16/16",
				v, res.Cost.ToProver[v], res.Cost.FromProver[v])
		}
		// Each node forwards its 16-bit response to its 2 neighbors.
		if res.Cost.NodeToNode[v] != 32 {
			t.Fatalf("node %d node-to-node = %d, want 32", v, res.Cost.NodeToNode[v])
		}
	}
	if res.Cost.MaxProverBits() != 32 {
		t.Fatalf("MaxProverBits = %d, want 32", res.Cost.MaxProverBits())
	}
	if res.Cost.TotalProverBits() != 6*32 {
		t.Fatalf("TotalProverBits = %d", res.Cost.TotalProverBits())
	}
	if res.Cost.MaxNodeToNodeBits() != 32 {
		t.Fatalf("MaxNodeToNodeBits = %d", res.Cost.MaxNodeToNodeBits())
	}
}

// lyingProver echoes wrong bits to node 0 only.
type lyingProver struct{}

func (lyingProver) Respond(_ int, view *ProverView) (*Response, error) {
	last := view.Challenges[len(view.Challenges)-1]
	resp := &Response{PerNode: make([]wire.Message, len(last))}
	copy(resp.PerNode, last)
	var w wire.Writer
	w.WriteUint(0xDEAD, 16)
	resp.PerNode[0] = w.Message()
	return resp, nil
}

func TestLyingProverRejected(t *testing.T) {
	g := graph.Cycle(6)
	res, err := Run(echoSpec(16), g, nil, lyingProver{}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("lying prover accepted")
	}
	// Only node 0 should reject (its echo is wrong; others' are fine).
	for v, d := range res.Decisions {
		if (v == 0) == d {
			t.Fatalf("node %d decision = %v", v, d)
		}
	}
}

// broadcastProver sends a constant everywhere except node `liar`, which
// gets a different value. Used to verify broadcast-consistency checking.
type broadcastProver struct{ liar int }

func (p broadcastProver) Respond(_ int, view *ProverView) (*Response, error) {
	n := view.Graph.N()
	var w wire.Writer
	w.WriteUint(42, 8)
	resp := Broadcast(n, w.Message())
	if p.liar >= 0 {
		var bad wire.Writer
		bad.WriteUint(43, 8)
		resp.PerNode[p.liar] = bad.Message()
	}
	return resp, nil
}

// broadcastSpec accepts iff the node's response equals all neighbors'.
func broadcastSpec() *Spec {
	return &Spec{
		Name:   "broadcast-check",
		Rounds: []Round{{Kind: Merlin}},
		Decide: func(v int, view *NodeView) bool {
			mine := view.Responses[0]
			for _, u := range view.Neighbors {
				other := view.NeighborResponses[0][u]
				if other.Bits != mine.Bits {
					return false
				}
				for i := range mine.Data {
					if mine.Data[i] != other.Data[i] {
						return false
					}
				}
			}
			return true
		},
	}
}

func TestBroadcastConsistency(t *testing.T) {
	g := graph.Path(5)
	res, err := Run(broadcastSpec(), g, nil, broadcastProver{liar: -1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("consistent broadcast rejected")
	}

	res, err = Run(broadcastSpec(), g, nil, broadcastProver{liar: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("inconsistent broadcast accepted")
	}
	// Node 2 and its neighbors 1, 3 must reject; 0 and 4 cannot tell.
	want := []bool{true, false, false, false, true}
	for v, d := range res.Decisions {
		if d != want[v] {
			t.Fatalf("node %d decision = %v, want %v", v, d, want[v])
		}
	}
}

func TestCorruptionCaught(t *testing.T) {
	g := graph.Cycle(6)
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if node != 3 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 1
		return out
	}
	res, err := Run(echoSpec(16), g, nil, echoProver{}, Options{Seed: 3, Corrupt: corrupt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("corrupted message accepted")
	}
	if res.Decisions[3] {
		t.Fatal("node 3 accepted a corrupted echo")
	}
}

func TestShareChallenges(t *testing.T) {
	g := graph.Path(3)
	spec := &Spec{
		Name:            "share",
		ShareChallenges: true,
		Rounds:          []Round{challengeRound(8), {Kind: Merlin}},
		Decide: func(v int, view *NodeView) bool {
			if len(view.NeighborChallenges) != 1 {
				return false
			}
			return len(view.NeighborChallenges[0]) == len(view.Neighbors)
		},
	}
	res, err := Run(spec, g, nil, echoProver{}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("neighbor challenges missing")
	}
	// Node 1 (degree 2) forwards 8-bit challenge and 8-bit response to 2
	// neighbors: 2*8 + 2*8 = 32 bits.
	if res.Cost.NodeToNode[1] != 32 {
		t.Fatalf("NodeToNode[1] = %d, want 32", res.Cost.NodeToNode[1])
	}
}

func TestMultiRoundAMAM(t *testing.T) {
	// Two Arthur-Merlin exchanges; the second response must echo the second
	// challenge. Exercises the exchange-stash path under concurrency.
	g := graph.Complete(8)
	spec := &Spec{
		Name: "amam-echo",
		Rounds: []Round{
			challengeRound(12), {Kind: Merlin},
			challengeRound(20), {Kind: Merlin},
		},
		Decide: func(v int, view *NodeView) bool {
			for k := 0; k < 2; k++ {
				got, want := view.Responses[k], view.MyChallenges[k]
				if got.Bits != want.Bits {
					return false
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						return false
					}
				}
				if len(view.NeighborResponses[k]) != len(view.Neighbors) {
					return false
				}
			}
			return true
		},
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(spec, g, nil, echoProver{}, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("seed %d: AMAM echo rejected", seed)
		}
		if got := res.Cost.MaxProverBits(); got != 12+12+20+20 {
			t.Fatalf("MaxProverBits = %d, want 64", got)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g := graph.Cycle(5)
	spec := &Spec{
		Name:   "record",
		Rounds: []Round{challengeRound(32), {Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	run := func() []wire.Message {
		var got []wire.Message
		p := proverFunc(func(_ int, view *ProverView) (*Response, error) {
			got = append([]wire.Message(nil), view.Challenges[0]...)
			return Broadcast(5, wire.Empty), nil
		})
		if _, err := Run(spec, g, nil, p, Options{Seed: 99}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	for v := range a {
		if a[v].Bits != b[v].Bits {
			t.Fatal("nondeterministic bits")
		}
		for i := range a[v].Data {
			if a[v].Data[i] != b[v].Data[i] {
				t.Fatal("nondeterministic challenge data")
			}
		}
	}
}

// proverFunc adapts a function to the Prover interface.
type proverFunc func(int, *ProverView) (*Response, error)

func (f proverFunc) Respond(r int, v *ProverView) (*Response, error) { return f(r, v) }

func TestProverErrorPropagates(t *testing.T) {
	g := graph.Path(3)
	boom := errors.New("boom")
	p := proverFunc(func(int, *ProverView) (*Response, error) { return nil, boom })
	spec := &Spec{
		Name:   "err",
		Rounds: []Round{{Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	if _, err := Run(spec, g, nil, p, Options{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMalformedResponseShape(t *testing.T) {
	g := graph.Path(3)
	p := proverFunc(func(int, *ProverView) (*Response, error) {
		return &Response{PerNode: make([]wire.Message, 2)}, nil
	})
	spec := &Spec{
		Name:   "shape",
		Rounds: []Round{{Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	if _, err := Run(spec, g, nil, p, Options{}); err == nil {
		t.Fatal("wrong-shape response accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	g := graph.Path(3)
	decide := func(int, *NodeView) bool { return true }
	if _, err := Run(&Spec{Decide: decide}, nil, nil, echoProver{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Run(&Spec{}, g, nil, echoProver{}, Options{}); err == nil {
		t.Fatal("nil Decide accepted")
	}
	if _, err := Run(&Spec{Decide: decide, Rounds: []Round{{Kind: Arthur}}}, g, nil, echoProver{}, Options{}); err == nil {
		t.Fatal("Arthur without Challenge accepted")
	}
	if _, err := Run(&Spec{Decide: decide, Rounds: []Round{{Kind: Kind(9)}}}, g, nil, echoProver{}, Options{}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := Run(&Spec{Decide: decide}, g, make([]wire.Message, 2), echoProver{}, Options{}); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(&Spec{Decide: func(int, *NodeView) bool { return false }},
		graph.New(0), nil, echoProver{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("empty graph should vacuously accept")
	}
}

func TestInputsDelivered(t *testing.T) {
	g := graph.Path(3)
	inputs := make([]wire.Message, 3)
	for v := range inputs {
		var w wire.Writer
		w.WriteInt(v+10, 8)
		inputs[v] = w.Message()
	}
	spec := &Spec{
		Name:   "inputs",
		Rounds: nil,
		Decide: func(v int, view *NodeView) bool {
			got, err := wire.NewReader(view.Input).ReadInt(8)
			return err == nil && got == v+10
		},
	}
	res, err := Run(spec, g, inputs, echoProver{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("inputs not delivered")
	}
}

func TestHasNeighbor(t *testing.T) {
	nv := &NodeView{Neighbors: []int{1, 4}}
	if !nv.HasNeighbor(4) || nv.HasNeighbor(2) {
		t.Fatal("HasNeighbor wrong")
	}
}

func TestKindString(t *testing.T) {
	if Arthur.String() != "Arthur" || Merlin.String() != "Merlin" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestDigestReplacesNeighborExchange(t *testing.T) {
	// With a Digest hook, each node keeps its full response but neighbors
	// receive (and the cost accounting charges) only the digest.
	g := graph.Cycle(5)
	spec := &Spec{
		Name: "digest",
		Rounds: []Round{{
			Kind: Merlin,
			Digest: func(v int, _ *rand.Rand, m wire.Message) wire.Message {
				var w wire.Writer
				w.WriteInt(v, 8) // 8-bit digest regardless of response size
				return w.Message()
			},
		}},
		Decide: func(v int, view *NodeView) bool {
			if view.Responses[0].Bits != 64 {
				return false // own response must be the full message
			}
			for u, d := range view.NeighborResponses[0] {
				got, err := wire.NewReader(d).ReadInt(8)
				if err != nil || got != u {
					return false // neighbor message must be u's digest
				}
			}
			return true
		},
	}
	big64 := proverFunc(func(int, *ProverView) (*Response, error) {
		var w wire.Writer
		w.WriteUint(0xDEADBEEF, 64)
		return Broadcast(5, w.Message()), nil
	})
	res, err := Run(spec, g, nil, big64, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("digest semantics wrong: %v", res.Decisions)
	}
	for v := 0; v < 5; v++ {
		if res.Cost.NodeToNode[v] != 2*8 {
			t.Fatalf("node %d charged %d node-to-node bits, want 16", v, res.Cost.NodeToNode[v])
		}
		if res.Cost.FromProver[v] != 64 {
			t.Fatalf("node %d prover bits = %d", v, res.Cost.FromProver[v])
		}
	}
}

func TestTranscriptRecording(t *testing.T) {
	g := graph.Cycle(4)
	res, err := Run(echoSpec(16), g, nil, echoProver{}, Options{Seed: 2, RecordTranscript: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Transcript
	if tr == nil {
		t.Fatal("transcript missing")
	}
	if len(tr.Rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(tr.Rounds))
	}
	if tr.Rounds[0].Kind != Arthur || tr.Rounds[1].Kind != Merlin {
		t.Fatal("round kinds wrong")
	}
	for _, r := range tr.Rounds {
		if len(r.PerNode) != 4 {
			t.Fatal("per-node messages missing")
		}
		for _, m := range r.PerNode {
			if m.Bits != 16 {
				t.Fatalf("recorded %d bits, want 16", m.Bits)
			}
		}
	}
	if tr.TotalBits() != 2*4*16 {
		t.Fatalf("TotalBits = %d, want 128", tr.TotalBits())
	}
	s := tr.String()
	if !strings.Contains(s, "echo") || !strings.Contains(s, "Arthur") {
		t.Fatalf("String rendering missing fields:\n%s", s)
	}

	// Without the option, no transcript is attached.
	res, err = Run(echoSpec(16), g, nil, echoProver{}, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transcript != nil {
		t.Fatal("transcript attached without opt-in")
	}
}

func TestTranscriptRecordsCorruptedDelivery(t *testing.T) {
	// The transcript shows what the network observed: post-corruption.
	g := graph.Path(3)
	corrupt := func(round, node int, m wire.Message) wire.Message {
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		if node == 1 && m.Bits > 0 {
			out.Data[0] ^= 1
		}
		return out
	}
	res, err := Run(echoSpec(8), g, nil, echoProver{},
		Options{Seed: 3, Corrupt: corrupt, RecordTranscript: true})
	if err != nil {
		t.Fatal(err)
	}
	merlin := res.Transcript.Rounds[1]
	// Node 1's delivered message must differ from its challenge.
	challenge := res.Transcript.Rounds[0].PerNode[1]
	delivered := merlin.PerNode[1]
	if challenge.Data[0] == delivered.Data[0] {
		t.Fatal("transcript recorded the pre-corruption message")
	}
}
