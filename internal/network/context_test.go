package network

import (
	"context"
	"errors"
	"testing"
	"time"

	"dip/internal/graph"
)

// TestRunContextCompletes: an undisturbed context changes nothing — the
// result is bit-identical to a plain Run at the same seed.
func TestRunContextCompletes(t *testing.T) {
	g := graph.Cycle(6)
	want, err := Run(echoSpec(16), g, nil, echoProver{}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), echoSpec(16), g, nil, echoProver{}, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got.Accepted != want.Accepted || got.Cost.MaxProverBits() != want.Cost.MaxProverBits() {
		t.Fatalf("RunContext diverged from Run: %+v vs %+v", got, want)
	}
}

// TestRunContextAlreadyCanceled: a context that is done before the run
// starts fails in PhaseCanceled without touching the engine, and the
// context's own error stays reachable through errors.Is.
func TestRunContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, echoSpec(8), graph.Cycle(4), nil, echoProver{}, Options{Seed: 1})
	rerr := wantRunError(t, err, PhaseCanceled, -1, -1)
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("cause = %v, want context.Canceled", rerr.Err)
	}
}

// TestRunContextExpiredDeadline: same for a deadline already in the past.
func TestRunContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunContext(ctx, echoSpec(8), graph.Cycle(4), nil, echoProver{}, Options{Seed: 1})
	rerr := wantRunError(t, err, PhaseCanceled, -1, -1)
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want context.DeadlineExceeded", rerr.Err)
	}
}

// cancelingProver cancels the run's own context from inside Respond, so
// the cancellation is guaranteed to land mid-run, before the next step
// boundary — in both engines.
type cancelingProver struct{ cancel context.CancelFunc }

func (p *cancelingProver) Respond(_ int, view *ProverView) (*Response, error) {
	p.cancel()
	return echoProver{}.Respond(0, view)
}

// TestRunContextCancelMidRun: a context canceled while the run is in
// flight aborts it at the next step boundary with PhaseCanceled, under
// both executors.
func TestRunContextCancelMidRun(t *testing.T) {
	g := graph.Path(4)
	engineModes(t, func(t *testing.T, opts Options) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts.Seed = 3
		_, err := RunContext(ctx, echoSpec(8), g, nil, &cancelingProver{cancel: cancel}, opts)
		var rerr *RunError
		if !errors.As(err, &rerr) || rerr.Phase != PhaseCanceled {
			t.Fatalf("err = %v, want PhaseCanceled RunError", err)
		}
	})
}

// TestRunContextDeadlineClampsProverTimeout: a context deadline bounds a
// hung prover even when Options.ProverTimeout was never set.
func TestRunContextDeadlineClampsProverTimeout(t *testing.T) {
	g := graph.Path(3)
	spec := &Spec{
		Name:   "hung",
		Rounds: []Round{challengeRound(4), {Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	p := &blockingProver{release: make(chan struct{})}
	defer close(p.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, spec, g, nil, p, Options{Seed: 1})
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if rerr.Phase != PhaseDeadline && rerr.Phase != PhaseCanceled {
		t.Fatalf("phase = %q, want deadline or canceled", rerr.Phase)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run hung for %v despite context deadline", elapsed)
	}
}

// TestStatePoolStats: acquisitions are counted as hits or misses, releases
// beyond capacity as drops, and SetStatePoolCapacity resizes the list.
func TestStatePoolStats(t *testing.T) {
	prev := SetStatePoolCapacity(4)
	defer SetStatePoolCapacity(prev)

	g := graph.Cycle(5)
	before := StatePoolStats()
	for i := 0; i < 8; i++ {
		if _, err := Run(echoSpec(8), g, nil, echoProver{}, Options{Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	after := StatePoolStats()
	if after.Capacity != 4 {
		t.Fatalf("capacity = %d, want 4", after.Capacity)
	}
	if got := (after.Hits + after.Misses) - (before.Hits + before.Misses); got != 8 {
		t.Fatalf("hits+misses advanced by %d, want 8 (one per run)", got)
	}
	// Sequential runs release before the next acquire, so after the first
	// run every acquisition is a pool hit.
	if after.Hits < before.Hits+7 {
		t.Fatalf("hits advanced by %d, want >= 7", after.Hits-before.Hits)
	}
	if after.Free < 1 || after.Free > 4 {
		t.Fatalf("free = %d, want within [1, 4]", after.Free)
	}

	// Shrinking below the current free count drops the excess immediately.
	SetStatePoolCapacity(1)
	if s := StatePoolStats(); s.Free > 1 || s.Capacity != 1 {
		t.Fatalf("after shrink: %+v", s)
	}
}
