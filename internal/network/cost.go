package network

// Cost is the bit-exact communication accounting of a run. Every increment
// happens in runState.deliver — the single delivery funnel both executors
// route all messages through — so the aggregate and per-round views cannot
// drift apart and cannot differ between engines.
type Cost struct {
	// ToProver[v] counts challenge bits node v sent to the prover.
	ToProver []int
	// FromProver[v] counts response bits the prover sent to node v.
	FromProver []int
	// NodeToNode[v] counts bits v sent to its neighbors in exchanges.
	NodeToNode []int
	// PerRound[k] is the same accounting restricted to round k of the
	// spec (one entry per Round, Arthur and Merlin alike). For every node
	// v and every direction, the per-round entries sum exactly to the
	// aggregate slices above; both engines fill them identically. This is
	// the granularity at which the round-vs-certificate trade-off
	// literature measures protocols.
	PerRound []RoundCost
}

// RoundCost is one round's slice of the cost accounting. Slices are
// indexed by node; directions that cannot occur in a round (e.g.
// FromProver in an Arthur round) stay zero.
type RoundCost struct {
	// Kind records whether the round was Arthur or Merlin.
	Kind       Kind
	ToProver   []int
	FromProver []int
	NodeToNode []int
}

// ProverBits returns node v's prover-communication bits in this round
// (both directions, challenges included).
func (r *RoundCost) ProverBits(v int) int {
	return r.ToProver[v] + r.FromProver[v]
}

// MaxProverBits returns the paper's complexity measure: the maximum over
// nodes of bits exchanged with the prover (both directions, challenges
// included).
func (c *Cost) MaxProverBits() int {
	maxBits := 0
	for v := range c.ToProver {
		if b := c.ToProver[v] + c.FromProver[v]; b > maxBits {
			maxBits = b
		}
	}
	return maxBits
}

// TotalProverBits returns the sum over nodes of prover-communication bits.
func (c *Cost) TotalProverBits() int {
	total := 0
	for v := range c.ToProver {
		total += c.ToProver[v] + c.FromProver[v]
	}
	return total
}

// MaxNodeToNodeBits returns the maximum over nodes of bits sent to
// neighbors.
func (c *Cost) MaxNodeToNodeBits() int {
	maxBits := 0
	for _, b := range c.NodeToNode {
		if b > maxBits {
			maxBits = b
		}
	}
	return maxBits
}

// ArgMaxProverNode returns the lowest-indexed node attaining
// MaxProverBits (0 for an empty cost).
func (c *Cost) ArgMaxProverNode() int {
	arg, maxBits := 0, -1
	for v := range c.ToProver {
		if b := c.ToProver[v] + c.FromProver[v]; b > maxBits {
			arg, maxBits = v, b
		}
	}
	return arg
}

// ProverBitsByRound returns node v's prover-communication bits round by
// round. Taken at v = ArgMaxProverNode(), the entries sum exactly to
// MaxProverBits — the per-round decomposition of the paper's cost
// measure.
func (c *Cost) ProverBitsByRound(v int) []int {
	out := make([]int, len(c.PerRound))
	for k := range c.PerRound {
		out[k] = c.PerRound[k].ProverBits(v)
	}
	return out
}

// newCost builds a zeroed Cost for an n-node run of spec, with one
// PerRound entry per round. All per-node slices (aggregate and
// per-round) are carved out of a single backing array so the per-round
// breakdown costs one allocation, not 3·rounds. The Cost escapes into the
// Result (callers retain it — experiments.TrialStats.Sample reads it long
// after the run), so it is freshly allocated every run and never pooled.
func newCost(spec *Spec, n int) Cost {
	rounds := len(spec.Rounds)
	back := make([]int, (3+3*rounds)*n)
	carve := func() []int {
		s := back[:n:n]
		back = back[n:]
		return s
	}
	c := Cost{
		ToProver:   carve(),
		FromProver: carve(),
		NodeToNode: carve(),
		PerRound:   make([]RoundCost, rounds),
	}
	for k, r := range spec.Rounds {
		c.PerRound[k] = RoundCost{
			Kind:       r.Kind,
			ToProver:   carve(),
			FromProver: carve(),
			NodeToNode: carve(),
		}
	}
	return c
}
