// Package network implements the distributed interactive proof engine: the
// runtime in which the paper's protocols execute.
//
// A run consists of a network graph G, one verifier per node, and an
// untrusted prover. Rounds alternate between Arthur rounds (every node
// sends the prover an independent random challenge) and Merlin rounds (the
// prover sends every node a response). After each Merlin round, every node
// forwards the response it received to its neighbors, so that — as in
// Definition 1 of the paper — each node's decision can depend on the
// responses received by itself and its immediate neighbors. "Broadcast"
// prover messages (Section 2.2) are realized as unicast plus this neighbor
// exchange: honest provers send everyone the same value and the verifiers
// reject when a neighbor's copy differs, which is precisely the paper's
// semantics (a cheating prover is free to send different "broadcast" values
// and must be caught).
//
// The engine is layered (one file per layer):
//
//   - The round script (script.go) compiles a Spec into the synchronous
//     schedule of a run — challenge, respond, exchange, decide steps — and
//     holds the shared per-node step helpers. The schedule exists once;
//     executors only decide which goroutine runs which step.
//   - The delivery funnel (funnel.go) is the single seam every message on
//     every plane passes through: validate → charge → corrupt, in
//     runState.deliver. Fault injectors (internal/faults via
//     Options.Corrupt / Options.CorruptExchange) attach here, and the
//     internal/obs delivery meters are published from its charge totals.
//   - The executors (executor.go, exec_sequential.go, exec_concurrent.go)
//     are two scheduling strategies for the same script: the sequential
//     engine plays all node steps round-robin on one goroutine (the
//     default); the concurrent engine (Options.Concurrent) spawns one
//     goroutine per node plus a prover driver and moves every message over
//     a channel — a literal realization of the distributed system. Because
//     every node draws from its own seeded RNG and all semantics live in
//     the shared layers, the two produce bit-identical results (Cost,
//     Decisions, Transcript) for every protocol at a fixed seed; the test
//     suite asserts this.
//   - The run state (state.go) gathers everything a run touches — node
//     views, RNGs, exchange buffers, the adjacency snapshot — in one
//     pooled object reused across runs, so the experiment harness's
//     hundreds of trials per cell do not re-allocate the engine each time.
//     Everything reachable from the returned Result stays fresh per run.
//
// The engine meters every message at bit granularity. The headline figure,
// Cost.MaxProverBits, is the paper's complexity measure: the maximum over
// nodes of the number of bits exchanged between that node and the prover,
// including the random challenge bits (the paper charges for those in upper
// bounds).
package network

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dip/internal/graph"
	"dip/internal/obs"
	"dip/internal/wire"
)

// Kind distinguishes the two round types.
type Kind int

const (
	// Arthur is a verifier round: every node sends the prover a random
	// challenge.
	Arthur Kind = iota + 1
	// Merlin is a prover round: the prover sends every node a response.
	Merlin
)

// String returns "Arthur" or "Merlin".
func (k Kind) String() string {
	switch k {
	case Arthur:
		return "Arthur"
	case Merlin:
		return "Merlin"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Round describes one round of a protocol.
type Round struct {
	Kind Kind
	// Challenge produces node v's random message for an Arthur round. It
	// must be set for Arthur rounds and is ignored for Merlin rounds. The
	// view contains everything v has seen so far.
	Challenge func(v int, rng *rand.Rand, view *NodeView) wire.Message
	// Digest, when set on a Merlin round, replaces the message a node
	// forwards to its neighbors: instead of relaying the full prover
	// response, node v forwards Digest(v, rng, response). This models the
	// randomized proof-labeling schemes of Baruch-Fraigniaud-Patt-Shamir
	// (PODC 2015, reference [4] of the paper), where nodes compare large
	// advice strings by exchanging short randomized fingerprints. Cost
	// accounting charges the digest, not the full response.
	Digest func(v int, rng *rand.Rand, m wire.Message) wire.Message
}

// Spec describes a protocol: its round structure and the per-node decision
// function. The same Spec runs against honest and cheating provers.
type Spec struct {
	// Name identifies the protocol in transcripts and error messages.
	Name string
	// Rounds is the round schedule, e.g. Merlin, Arthur, Merlin for a dMAM
	// protocol.
	Rounds []Round
	// Decide is node v's output function out_v. It runs after all rounds.
	Decide func(v int, view *NodeView) bool
	// ShareChallenges, when set, also exchanges each Arthur-round challenge
	// with the node's neighbors (the lower-bound model of Section 3.4 gives
	// r_{N(v)} to each node; the upper bounds do not need it).
	ShareChallenges bool
}

// Prover is the untrusted prover: it sees the entire graph, all inputs, and
// every challenge sent so far, and produces one response per node in each
// Merlin round.
type Prover interface {
	// Respond is called once per Merlin round, in order. merlinRound counts
	// Merlin rounds from 0.
	Respond(merlinRound int, view *ProverView) (*Response, error)
}

// Response carries the prover's per-node messages for one Merlin round.
// PerNode must have one entry per graph node. A prover implementing a
// paper-style broadcast places the same message at every index.
type Response struct {
	PerNode []wire.Message
}

// Broadcast builds a Response that sends the same message to all n nodes.
func Broadcast(n int, m wire.Message) *Response {
	resp := &Response{PerNode: make([]wire.Message, n)}
	for i := range resp.PerNode {
		resp.PerNode[i] = m
	}
	return resp
}

// ProverView is everything the prover can see: the whole graph, all inputs,
// and the challenges from every completed Arthur round (indexed
// [arthurRound][node]). The view — including the Challenges rows, which
// are carved from pooled engine state — is valid only for the duration of
// the run; provers must not retain it (or any slice of it) across runs.
type ProverView struct {
	// Graph is the network graph itself, shared with the engine and the
	// caller rather than cloned per run. It is read-only by contract:
	// provers may inspect it freely (N, Neighbors, HasEdge, Clone, ...) but
	// must not mutate it. The engine snapshots the adjacency lists before
	// the first prover call, so a contract-violating prover cannot alter
	// message routing or verifier decisions within the run — but it would
	// corrupt the caller's graph for later runs, exactly as any caller
	// mutating a shared *graph.Graph would.
	Graph      *graph.Graph
	Inputs     []wire.Message
	Challenges [][]wire.Message
}

// NodeView is everything a single node can see. Verifier code must use only
// this: it is the formal locality boundary of the model. Like the
// ProverView, it is backed by pooled engine state and is valid only inside
// Spec callbacks; callbacks must not retain it across runs.
type NodeView struct {
	// V is this node's identifier; NumVertices is |V|, known in advance to
	// all participants (Section 2.2).
	V           int
	NumVertices int
	// Neighbors lists v's neighbors in the network graph, ascending.
	Neighbors []int
	// Input is v's private input (empty for pure graph properties).
	Input wire.Message

	// MyChallenges[k] is the challenge v sent in the k-th Arthur round.
	MyChallenges []wire.Message
	// NeighborChallenges[k][u] is neighbor u's k-th challenge; populated
	// only when Spec.ShareChallenges is set.
	NeighborChallenges []map[int]wire.Message
	// Responses[k] is the prover's message to v in the k-th Merlin round.
	Responses []wire.Message
	// NeighborResponses[k][u] is the prover's k-th Merlin-round message to
	// neighbor u, as forwarded by u.
	NeighborResponses []map[int]wire.Message
}

// HasNeighbor reports whether u is a neighbor of this node.
func (nv *NodeView) HasNeighbor(u int) bool {
	for _, w := range nv.Neighbors {
		if w == u {
			return true
		}
	}
	return false
}

// Result is the outcome of one protocol run. Results are freshly
// allocated per run (never pooled) and safe to retain indefinitely.
type Result struct {
	// Accepted is true iff every node accepted (the acceptance rule of
	// Definition 2).
	Accepted bool
	// Decisions holds each node's individual output.
	Decisions []bool
	// Cost is the communication accounting.
	Cost Cost
	// Transcript is the recorded message log; nil unless
	// Options.RecordTranscript was set.
	Transcript *Transcript
}

// Corruptor mutates a prover→node message in flight; used to inject
// failures when testing verifier robustness. It is applied after cost
// accounting of the original message: the node is charged for what the
// prover sent, then receives the corrupted bits ("charged, then
// corrupted"). Both engines invoke it from a single goroutine, once per
// (merlinRound, node) in ascending node order within each round, so a
// Corruptor may carry state keyed on that order without locking.
type Corruptor func(merlinRound, node int, m wire.Message) wire.Message

// ExchangeCorruptor mutates a node→node message on the exchange plane: the
// forward/digest traffic after a Merlin round and, when
// Spec.ShareChallenges is set, the challenge exchange after an Arthur
// round. round is the spec round index the exchange belongs to (the same
// index Cost.PerRound uses); from is the sending node, to the receiving
// neighbor. Cost semantics mirror Corruptor: the sender is charged for the
// original message, then `to` receives the corrupted copy.
//
// Unlike Corruptor, the concurrent engine invokes an ExchangeCorruptor from
// many node goroutines at once and in no fixed (from, to) order. To keep
// the two engines bit-identical, an ExchangeCorruptor must be safe for
// concurrent use and order-independent: its output may depend only on
// (round, from, to, m) — or on per-(from,to) history, since rounds ascend
// per directed pair in both engines — never on global call order.
type ExchangeCorruptor func(round, from, to int, m wire.Message) wire.Message

// Options configure a run.
type Options struct {
	// Seed derives all node randomness; runs with equal seeds and provers
	// are deterministic.
	Seed int64
	// Corrupt, if non-nil, tampers with prover→node messages.
	Corrupt Corruptor
	// CorruptExchange, if non-nil, tampers with node→node messages (see
	// ExchangeCorruptor for the contract).
	CorruptExchange ExchangeCorruptor
	// ProverTimeout, when positive, bounds each Prover.Respond call. A
	// prover that has not returned within the deadline aborts the run with
	// a *RunError in PhaseDeadline instead of hanging it. The stuck Respond
	// call itself cannot be cancelled — Go cannot kill a goroutine — so it
	// is abandoned; a well-behaved prover that merely finishes late finds
	// the run gone and its response discarded.
	ProverTimeout time.Duration
	// Cancel, when non-nil, aborts the run at the next step boundary after
	// the channel becomes receivable: the run returns a *RunError in
	// PhaseCanceled instead of finishing. Both executors poll it between
	// steps of the round script, never inside one, so a canceled run still
	// leaves the pooled engine state consistent and reusable. RunContext
	// wires a context.Context's Done channel here; long-haul callers (the
	// verification service) use it to stop paying for runs whose clients
	// have gone away.
	Cancel <-chan struct{}
	// RecordTranscript attaches a full message transcript to the Result.
	RecordTranscript bool
	// Sequential forces the single-goroutine scheduler; Concurrent forces
	// the goroutine-per-node engine. Setting both is an error. When neither
	// is set the engine auto-selects sequential: transcript recording and
	// corruption injection are both driven synchronously by the round
	// schedule, so no option requires real interleaving, and the two
	// engines are bit-identical by construction (and by test).
	Sequential bool
	Concurrent bool
	// Transport, when non-nil, selects the networked executor: node-side
	// steps (challenges, digests, decisions) run wherever the transport's
	// far side hosts them — typically separate OS processes dialed by
	// internal/peer — while this process keeps the coordinator half: the
	// prover, the delivery funnel (validation, cost, corruption), and the
	// transcript. Combining Transport with Sequential or Concurrent is an
	// error. See the Transport interface for the contract that makes the
	// networked engine bit-identical to the in-process ones.
	Transport Transport
}

// validation errors returned by Run.
var (
	errNilGraph      = errors.New("network: nil graph")
	errNilSpec       = errors.New("network: nil spec")
	errNilDecide     = errors.New("network: spec has no Decide function")
	errBothModes     = errors.New("network: Options.Sequential and Options.Concurrent both set")
	errTransportMode = errors.New("network: Options.Transport cannot be combined with Sequential or Concurrent")
	// errNilProver is the cause inside the *RunError returned when a spec
	// with Merlin rounds is run without a prover (formerly a nil-interface
	// panic at the first Respond call).
	errNilProver = errors.New("nil Prover for a spec with Merlin rounds")
)

// validateSpec checks the structural validity of spec — a Decide function,
// a Challenge on every Arthur round, no invalid round kinds — and returns
// the index of the first Merlin round (-1 if the spec has none). It is the
// shared validation gate of Run and Schedule, so a spec a peer process
// accepts for hosting is exactly a spec the coordinator would run.
func validateSpec(spec *Spec) (firstMerlin int, err error) {
	if spec == nil {
		return -1, errNilSpec
	}
	if spec.Decide == nil {
		return -1, errNilDecide
	}
	firstMerlin = -1
	for i, r := range spec.Rounds {
		switch r.Kind {
		case Arthur:
			if r.Challenge == nil {
				return -1, fmt.Errorf("network: round %d is Arthur but has no Challenge", i)
			}
		case Merlin:
			if firstMerlin < 0 {
				firstMerlin = i
			}
		default:
			return -1, fmt.Errorf("network: round %d has invalid kind %d", i, r.Kind)
		}
	}
	return firstMerlin, nil
}

// Run executes the protocol described by spec on graph g with the given
// prover and per-node inputs (inputs may be nil for pure graph properties).
// It returns an error only for malformed specs or misbehaving prover
// *implementations* (wrong response shape); a cheating-but-well-formed
// prover yields a normal Result, typically with Accepted == false.
func Run(spec *Spec, g *graph.Graph, inputs []wire.Message, p Prover, opts Options) (*Result, error) {
	start := time.Now()
	defer func() { obs.RecordEngineRun(time.Since(start)) }()
	if g == nil {
		return nil, errNilGraph
	}
	if opts.Sequential && opts.Concurrent {
		return nil, errBothModes
	}
	if opts.Transport != nil && (opts.Sequential || opts.Concurrent) {
		return nil, errTransportMode
	}
	n := g.N()
	if inputs != nil && len(inputs) != n {
		return nil, fmt.Errorf("network: %d inputs for %d nodes", len(inputs), n)
	}
	firstMerlin, err := validateSpec(spec)
	if err != nil {
		return nil, err
	}
	if p == nil && firstMerlin >= 0 {
		return nil, &RunError{Protocol: spec.Name, Phase: PhaseSetup,
			Round: firstMerlin, Node: -1, Err: errNilProver}
	}
	if n == 0 {
		return &Result{Accepted: true, Cost: Cost{}}, nil
	}

	s := acquireState()
	s.reset(spec, g, inputs, p, opts, n)
	if rerr := executorFor(opts).run(s); rerr != nil {
		s.release()
		return nil, rerr
	}
	res := s.finish()
	s.release()
	return res, nil
}

// RunContext is Run with a context.Context governing the whole run: a
// context that is already done fails immediately in PhaseCanceled, a
// cancellation mid-run aborts at the next step boundary (the context's
// Done channel is wired into Options.Cancel), and a context deadline
// additionally clamps Options.ProverTimeout to the remaining time, so a
// prover cannot sit on a single Respond call past the caller's budget.
// The verification service routes every request through here, which is
// how per-request HTTP deadlines reach the engine.
func RunContext(ctx context.Context, spec *Spec, g *graph.Graph, inputs []wire.Message, p Prover, opts Options) (*Result, error) {
	name := ""
	if spec != nil {
		name = spec.Name
	}
	if err := ctx.Err(); err != nil {
		return nil, &RunError{Protocol: name, Phase: PhaseCanceled, Round: -1, Node: -1, Err: err}
	}
	opts.Cancel = ctx.Done()
	if deadline, ok := ctx.Deadline(); ok {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, &RunError{Protocol: name, Phase: PhaseCanceled, Round: -1, Node: -1,
				Err: context.DeadlineExceeded}
		}
		if opts.ProverTimeout <= 0 || remain < opts.ProverTimeout {
			opts.ProverTimeout = remain
		}
	}
	return Run(spec, g, inputs, p, opts)
}
