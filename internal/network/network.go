// Package network implements the distributed interactive proof engine: the
// runtime in which the paper's protocols execute.
//
// A run consists of a network graph G, one verifier per node, and an
// untrusted prover. Rounds alternate between Arthur rounds (every node
// sends the prover an independent random challenge) and Merlin rounds (the
// prover sends every node a response). After each Merlin round, every node
// forwards the response it received to its neighbors, so that — as in
// Definition 1 of the paper — each node's decision can depend on the
// responses received by itself and its immediate neighbors. "Broadcast"
// prover messages (Section 2.2) are realized as unicast plus this neighbor
// exchange: honest provers send everyone the same value and the verifiers
// reject when a neighbor's copy differs, which is precisely the paper's
// semantics (a cheating prover is free to send different "broadcast" values
// and must be caught).
//
// Two interchangeable executors realize the model:
//
//   - The concurrent engine (Options.Concurrent) spawns one goroutine per
//     node plus a prover driver and moves every message over a channel — a
//     literal realization of the distributed system.
//   - The sequential engine plays the same node steps round-robin on a
//     single goroutine with no channels. Because every node draws from its
//     own seeded RNG and the round structure is a global synchronous
//     schedule, the two engines produce bit-identical results (Cost,
//     Decisions, Transcript) for every protocol at a fixed seed; the test
//     suite asserts this. The sequential engine is the default: a single
//     run has no intrinsic parallelism, so the goroutine/channel overhead
//     buys nothing, and independent runs parallelize better one level up
//     (see internal/experiments.RunTrials).
//
// The engine meters every message at bit granularity. The headline figure,
// Cost.MaxProverBits, is the paper's complexity measure: the maximum over
// nodes of the number of bits exchanged between that node and the prover,
// including the random challenge bits (the paper charges for those in upper
// bounds).
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dip/internal/graph"
	"dip/internal/obs"
	"dip/internal/wire"
)

// Kind distinguishes the two round types.
type Kind int

const (
	// Arthur is a verifier round: every node sends the prover a random
	// challenge.
	Arthur Kind = iota + 1
	// Merlin is a prover round: the prover sends every node a response.
	Merlin
)

// String returns "Arthur" or "Merlin".
func (k Kind) String() string {
	switch k {
	case Arthur:
		return "Arthur"
	case Merlin:
		return "Merlin"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Round describes one round of a protocol.
type Round struct {
	Kind Kind
	// Challenge produces node v's random message for an Arthur round. It
	// must be set for Arthur rounds and is ignored for Merlin rounds. The
	// view contains everything v has seen so far.
	Challenge func(v int, rng *rand.Rand, view *NodeView) wire.Message
	// Digest, when set on a Merlin round, replaces the message a node
	// forwards to its neighbors: instead of relaying the full prover
	// response, node v forwards Digest(v, rng, response). This models the
	// randomized proof-labeling schemes of Baruch-Fraigniaud-Patt-Shamir
	// (PODC 2015, reference [4] of the paper), where nodes compare large
	// advice strings by exchanging short randomized fingerprints. Cost
	// accounting charges the digest, not the full response.
	Digest func(v int, rng *rand.Rand, m wire.Message) wire.Message
}

// Spec describes a protocol: its round structure and the per-node decision
// function. The same Spec runs against honest and cheating provers.
type Spec struct {
	// Name identifies the protocol in transcripts and error messages.
	Name string
	// Rounds is the round schedule, e.g. Merlin, Arthur, Merlin for a dMAM
	// protocol.
	Rounds []Round
	// Decide is node v's output function out_v. It runs after all rounds.
	Decide func(v int, view *NodeView) bool
	// ShareChallenges, when set, also exchanges each Arthur-round challenge
	// with the node's neighbors (the lower-bound model of Section 3.4 gives
	// r_{N(v)} to each node; the upper bounds do not need it).
	ShareChallenges bool
}

// Prover is the untrusted prover: it sees the entire graph, all inputs, and
// every challenge sent so far, and produces one response per node in each
// Merlin round.
type Prover interface {
	// Respond is called once per Merlin round, in order. merlinRound counts
	// Merlin rounds from 0.
	Respond(merlinRound int, view *ProverView) (*Response, error)
}

// Response carries the prover's per-node messages for one Merlin round.
// PerNode must have one entry per graph node. A prover implementing a
// paper-style broadcast places the same message at every index.
type Response struct {
	PerNode []wire.Message
}

// Broadcast builds a Response that sends the same message to all n nodes.
func Broadcast(n int, m wire.Message) *Response {
	resp := &Response{PerNode: make([]wire.Message, n)}
	for i := range resp.PerNode {
		resp.PerNode[i] = m
	}
	return resp
}

// ProverView is everything the prover can see: the whole graph, all inputs,
// and the challenges from every completed Arthur round (indexed
// [arthurRound][node]).
type ProverView struct {
	// Graph is the network graph itself, shared with the engine and the
	// caller rather than cloned per run. It is read-only by contract:
	// provers may inspect it freely (N, Neighbors, HasEdge, Clone, ...) but
	// must not mutate it. The engine snapshots the adjacency lists before
	// the first prover call, so a contract-violating prover cannot alter
	// message routing or verifier decisions within the run — but it would
	// corrupt the caller's graph for later runs, exactly as any caller
	// mutating a shared *graph.Graph would.
	Graph      *graph.Graph
	Inputs     []wire.Message
	Challenges [][]wire.Message
}

// NodeView is everything a single node can see. Verifier code must use only
// this: it is the formal locality boundary of the model.
type NodeView struct {
	// V is this node's identifier; NumVertices is |V|, known in advance to
	// all participants (Section 2.2).
	V           int
	NumVertices int
	// Neighbors lists v's neighbors in the network graph, ascending.
	Neighbors []int
	// Input is v's private input (empty for pure graph properties).
	Input wire.Message

	// MyChallenges[k] is the challenge v sent in the k-th Arthur round.
	MyChallenges []wire.Message
	// NeighborChallenges[k][u] is neighbor u's k-th challenge; populated
	// only when Spec.ShareChallenges is set.
	NeighborChallenges []map[int]wire.Message
	// Responses[k] is the prover's message to v in the k-th Merlin round.
	Responses []wire.Message
	// NeighborResponses[k][u] is the prover's k-th Merlin-round message to
	// neighbor u, as forwarded by u.
	NeighborResponses []map[int]wire.Message
}

// HasNeighbor reports whether u is a neighbor of this node.
func (nv *NodeView) HasNeighbor(u int) bool {
	for _, w := range nv.Neighbors {
		if w == u {
			return true
		}
	}
	return false
}

// Cost is the bit-exact communication accounting of a run.
type Cost struct {
	// ToProver[v] counts challenge bits node v sent to the prover.
	ToProver []int
	// FromProver[v] counts response bits the prover sent to node v.
	FromProver []int
	// NodeToNode[v] counts bits v sent to its neighbors in exchanges.
	NodeToNode []int
	// PerRound[k] is the same accounting restricted to round k of the
	// spec (one entry per Round, Arthur and Merlin alike). For every node
	// v and every direction, the per-round entries sum exactly to the
	// aggregate slices above; both engines fill them identically. This is
	// the granularity at which the round-vs-certificate trade-off
	// literature measures protocols.
	PerRound []RoundCost
}

// RoundCost is one round's slice of the cost accounting. Slices are
// indexed by node; directions that cannot occur in a round (e.g.
// FromProver in an Arthur round) stay zero.
type RoundCost struct {
	// Kind records whether the round was Arthur or Merlin.
	Kind       Kind
	ToProver   []int
	FromProver []int
	NodeToNode []int
}

// ProverBits returns node v's prover-communication bits in this round
// (both directions, challenges included).
func (r *RoundCost) ProverBits(v int) int {
	return r.ToProver[v] + r.FromProver[v]
}

// MaxProverBits returns the paper's complexity measure: the maximum over
// nodes of bits exchanged with the prover (both directions, challenges
// included).
func (c *Cost) MaxProverBits() int {
	maxBits := 0
	for v := range c.ToProver {
		if b := c.ToProver[v] + c.FromProver[v]; b > maxBits {
			maxBits = b
		}
	}
	return maxBits
}

// TotalProverBits returns the sum over nodes of prover-communication bits.
func (c *Cost) TotalProverBits() int {
	total := 0
	for v := range c.ToProver {
		total += c.ToProver[v] + c.FromProver[v]
	}
	return total
}

// MaxNodeToNodeBits returns the maximum over nodes of bits sent to
// neighbors.
func (c *Cost) MaxNodeToNodeBits() int {
	maxBits := 0
	for _, b := range c.NodeToNode {
		if b > maxBits {
			maxBits = b
		}
	}
	return maxBits
}

// ArgMaxProverNode returns the lowest-indexed node attaining
// MaxProverBits (0 for an empty cost).
func (c *Cost) ArgMaxProverNode() int {
	arg, maxBits := 0, -1
	for v := range c.ToProver {
		if b := c.ToProver[v] + c.FromProver[v]; b > maxBits {
			arg, maxBits = v, b
		}
	}
	return arg
}

// ProverBitsByRound returns node v's prover-communication bits round by
// round. Taken at v = ArgMaxProverNode(), the entries sum exactly to
// MaxProverBits — the per-round decomposition of the paper's cost
// measure.
func (c *Cost) ProverBitsByRound(v int) []int {
	out := make([]int, len(c.PerRound))
	for k := range c.PerRound {
		out[k] = c.PerRound[k].ProverBits(v)
	}
	return out
}

// Result is the outcome of one protocol run.
type Result struct {
	// Accepted is true iff every node accepted (the acceptance rule of
	// Definition 2).
	Accepted bool
	// Decisions holds each node's individual output.
	Decisions []bool
	// Cost is the communication accounting.
	Cost Cost
	// Transcript is the recorded message log; nil unless
	// Options.RecordTranscript was set.
	Transcript *Transcript
}

// Corruptor mutates a prover→node message in flight; used to inject
// failures when testing verifier robustness. It is applied after cost
// accounting of the original message: the node is charged for what the
// prover sent, then receives the corrupted bits ("charged, then
// corrupted"). Both engines invoke it from a single goroutine, once per
// (merlinRound, node) in ascending node order within each round, so a
// Corruptor may carry state keyed on that order without locking.
type Corruptor func(merlinRound, node int, m wire.Message) wire.Message

// ExchangeCorruptor mutates a node→node message on the exchange plane: the
// forward/digest traffic after a Merlin round and, when
// Spec.ShareChallenges is set, the challenge exchange after an Arthur
// round. round is the spec round index the exchange belongs to (the same
// index Cost.PerRound uses); from is the sending node, to the receiving
// neighbor. Cost semantics mirror Corruptor: the sender is charged for the
// original message, then `to` receives the corrupted copy.
//
// Unlike Corruptor, the concurrent engine invokes an ExchangeCorruptor from
// many node goroutines at once and in no fixed (from, to) order. To keep
// the two engines bit-identical, an ExchangeCorruptor must be safe for
// concurrent use and order-independent: its output may depend only on
// (round, from, to, m) — or on per-(from,to) history, since rounds ascend
// per directed pair in both engines — never on global call order.
type ExchangeCorruptor func(round, from, to int, m wire.Message) wire.Message

// Options configure a run.
type Options struct {
	// Seed derives all node randomness; runs with equal seeds and provers
	// are deterministic.
	Seed int64
	// Corrupt, if non-nil, tampers with prover→node messages.
	Corrupt Corruptor
	// CorruptExchange, if non-nil, tampers with node→node messages (see
	// ExchangeCorruptor for the contract).
	CorruptExchange ExchangeCorruptor
	// ProverTimeout, when positive, bounds each Prover.Respond call. A
	// prover that has not returned within the deadline aborts the run with
	// a *RunError in PhaseDeadline instead of hanging it. The stuck Respond
	// call itself cannot be cancelled — Go cannot kill a goroutine — so it
	// is abandoned; a well-behaved prover that merely finishes late finds
	// the run gone and its response discarded.
	ProverTimeout time.Duration
	// RecordTranscript attaches a full message transcript to the Result.
	RecordTranscript bool
	// Sequential forces the single-goroutine scheduler; Concurrent forces
	// the goroutine-per-node engine. Setting both is an error. When neither
	// is set the engine auto-selects sequential: transcript recording and
	// corruption injection are both driven synchronously by the round
	// schedule, so no option requires real interleaving, and the two
	// engines are bit-identical by construction (and by test).
	Sequential bool
	Concurrent bool
}

// validation errors returned by Run.
var (
	errNilGraph  = errors.New("network: nil graph")
	errNilDecide = errors.New("network: spec has no Decide function")
	errBothModes = errors.New("network: Options.Sequential and Options.Concurrent both set")
	// errNilProver is the cause inside the *RunError returned when a spec
	// with Merlin rounds is run without a prover (formerly a nil-interface
	// panic at the first Respond call).
	errNilProver = errors.New("nil Prover for a spec with Merlin rounds")
)

// Run executes the protocol described by spec on graph g with the given
// prover and per-node inputs (inputs may be nil for pure graph properties).
// It returns an error only for malformed specs or misbehaving prover
// *implementations* (wrong response shape); a cheating-but-well-formed
// prover yields a normal Result, typically with Accepted == false.
func Run(spec *Spec, g *graph.Graph, inputs []wire.Message, p Prover, opts Options) (*Result, error) {
	start := time.Now()
	defer func() { obs.RecordEngineRun(time.Since(start)) }()
	if g == nil {
		return nil, errNilGraph
	}
	if spec.Decide == nil {
		return nil, errNilDecide
	}
	if opts.Sequential && opts.Concurrent {
		return nil, errBothModes
	}
	n := g.N()
	if inputs != nil && len(inputs) != n {
		return nil, fmt.Errorf("network: %d inputs for %d nodes", len(inputs), n)
	}
	firstMerlin := -1
	for i, r := range spec.Rounds {
		switch r.Kind {
		case Arthur:
			if r.Challenge == nil {
				return nil, fmt.Errorf("network: round %d is Arthur but has no Challenge", i)
			}
		case Merlin:
			if firstMerlin < 0 {
				firstMerlin = i
			}
		default:
			return nil, fmt.Errorf("network: round %d has invalid kind %d", i, r.Kind)
		}
	}
	if p == nil && firstMerlin >= 0 {
		return nil, &RunError{Protocol: spec.Name, Phase: PhaseSetup,
			Round: firstMerlin, Node: -1, Err: errNilProver}
	}
	if n == 0 {
		return &Result{Accepted: true, Cost: Cost{}}, nil
	}

	// Snapshot every adjacency list up front: both engines route messages
	// exclusively through this snapshot, never through g after this point,
	// which (a) removes the per-exchange Neighbors allocations and (b)
	// insulates verifier decisions from a prover that violates the
	// ProverView.Graph read-only contract mid-run.
	nbrs := make([][]int, n)
	for v := 0; v < n; v++ {
		nbrs[v] = g.Neighbors(v)
	}

	e := &engine{
		spec:   spec,
		g:      g,
		nbrs:   nbrs,
		inputs: inputs,
		prover: p,
		opts:   opts,
		n:      n,
	}
	e.cost = newCost(spec, n)
	if opts.RecordTranscript {
		e.transcript = &Transcript{Name: spec.Name}
	}
	if opts.Concurrent {
		return e.runConcurrent()
	}
	return e.runSequential()
}

// newCost builds a zeroed Cost for an n-node run of spec, with one
// PerRound entry per round. All per-node slices (aggregate and
// per-round) are carved out of a single backing array so the per-round
// breakdown costs one allocation, not 3·rounds.
func newCost(spec *Spec, n int) Cost {
	rounds := len(spec.Rounds)
	back := make([]int, (3+3*rounds)*n)
	carve := func() []int {
		s := back[:n:n]
		back = back[n:]
		return s
	}
	c := Cost{
		ToProver:   carve(),
		FromProver: carve(),
		NodeToNode: carve(),
		PerRound:   make([]RoundCost, rounds),
	}
	for k, r := range spec.Rounds {
		c.PerRound[k] = RoundCost{
			Kind:       r.Kind,
			ToProver:   carve(),
			FromProver: carve(),
			NodeToNode: carve(),
		}
	}
	return c
}

// exchangeMsg is a neighbor-to-neighbor forwarded message. Messages carry
// the index of the exchange they belong to, because a neighbor may run one
// exchange ahead of the receiver.
type exchangeMsg struct {
	from     int
	exchange int
	m        wire.Message
}

// challengeMsg is a node-to-prover challenge.
type challengeMsg struct {
	from int
	m    wire.Message
}

type engine struct {
	spec   *Spec
	g      *graph.Graph
	nbrs   [][]int // adjacency snapshot, read-only during the run
	inputs []wire.Message
	prover Prover
	opts   Options
	n      int

	challengeCh chan challengeMsg
	respCh      []chan wire.Message
	exchCh      []chan exchangeMsg
	decisionCh  chan decision
	abortCh     chan struct{}

	// failOnce/failErr implement fail-fast abort for the concurrent engine:
	// the first failure (from the driver or any node goroutine) records its
	// *RunError and closes abortCh; later failures are dropped. failErr is
	// read only after the goroutine that set it is joined (the Once gives
	// the winning writer happens-before every other Do caller, and wg.Wait
	// orders node writers before the reader).
	failOnce sync.Once
	failErr  *RunError

	// cost slices are written element-exclusively: ToProver and FromProver
	// by the driver goroutine, NodeToNode[v] only by node v's goroutine;
	// all reads happen after the node goroutines have finished.
	cost Cost

	// transcript is written only by the driver goroutine; nil unless
	// recording was requested.
	transcript *Transcript
}

type decision struct {
	v      int
	accept bool
}

func (e *engine) runConcurrent() (*Result, error) {
	e.challengeCh = make(chan challengeMsg, e.n)
	e.respCh = make([]chan wire.Message, e.n)
	e.exchCh = make([]chan exchangeMsg, e.n)
	for v := 0; v < e.n; v++ {
		e.respCh[v] = make(chan wire.Message, 1)
		// A neighbor can run at most one exchange ahead (it cannot start
		// exchange k+1 before receiving our exchange-k message), so two
		// rounds of buffering make send-all-then-receive-all deadlock-free.
		e.exchCh[v] = make(chan exchangeMsg, 2*len(e.nbrs[v]))
	}
	e.decisionCh = make(chan decision, e.n)
	e.abortCh = make(chan struct{})

	var wg sync.WaitGroup
	for v := 0; v < e.n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			e.nodeMain(v)
		}(v)
	}

	pv := &ProverView{Graph: e.g, Inputs: e.inputs}
	if err := e.drive(pv); err != nil {
		e.fail(err) // release blocked nodes (no-op if a node failed first)
	}
	wg.Wait()
	if e.failErr != nil {
		return nil, e.failErr
	}

	// decisionCh is buffered to n and every node either sent its decision
	// or failed (handled above), so all n decisions are already queued.
	decisions := make([]bool, e.n)
	for i := 0; i < e.n; i++ {
		d := <-e.decisionCh
		decisions[d.v] = d.accept
	}

	accepted := true
	for _, d := range decisions {
		accepted = accepted && d
	}
	return &Result{
		Accepted:   accepted,
		Decisions:  decisions,
		Cost:       e.cost,
		Transcript: e.transcript,
	}, nil
}

// drive plays the prover side and routes messages, round by round. A nil
// return with e.failErr set means the run was aborted by a node failure.
func (e *engine) drive(pv *ProverView) *RunError {
	merlinRound := 0
	for ri, round := range e.spec.Rounds {
		switch round.Kind {
		case Arthur:
			challenges := make([]wire.Message, e.n)
			for i := 0; i < e.n; i++ {
				var c challengeMsg
				select {
				case c = <-e.challengeCh:
				case <-e.abortCh:
					return nil
				}
				challenges[c.from] = c.m
				e.cost.ToProver[c.from] += c.m.Bits
				e.cost.PerRound[ri].ToProver[c.from] += c.m.Bits
			}
			pv.Challenges = append(pv.Challenges, challenges)
			if e.transcript != nil {
				rec := make([]wire.Message, e.n)
				copy(rec, challenges)
				e.transcript.Rounds = append(e.transcript.Rounds,
					TranscriptRound{Kind: Arthur, PerNode: rec})
			}
		case Merlin:
			resp, rerr := e.callRespond(ri, merlinRound, pv)
			if rerr != nil {
				return rerr
			}
			var rec []wire.Message
			if e.transcript != nil {
				rec = make([]wire.Message, e.n)
			}
			for v := 0; v < e.n; v++ {
				m := resp.PerNode[v]
				if rerr := e.checkMessage(ri, v, m); rerr != nil {
					return rerr
				}
				e.cost.FromProver[v] += m.Bits
				e.cost.PerRound[ri].FromProver[v] += m.Bits
				if e.opts.Corrupt != nil {
					m = e.opts.Corrupt(merlinRound, v, m)
				}
				if rec != nil {
					rec[v] = m
				}
				select {
				case e.respCh[v] <- m:
				case <-e.abortCh:
					return nil
				}
			}
			if e.transcript != nil {
				e.transcript.Rounds = append(e.transcript.Rounds,
					TranscriptRound{Kind: Merlin, PerNode: rec})
			}
			merlinRound++
		}
	}
	return nil
}

// fail records the first *RunError of a concurrent run and releases every
// blocked goroutine. Safe to call from any goroutine, any number of times.
func (e *engine) fail(err *RunError) {
	e.failOnce.Do(func() {
		e.failErr = err
		close(e.abortCh)
	})
}

// runError builds a *RunError attributed to (phase, round, node) for this
// run's protocol.
func (e *engine) runError(phase Phase, round, node int, err error) *RunError {
	return &RunError{Protocol: e.spec.Name, Phase: phase, Round: round, Node: node, Err: err}
}

// guard runs a Spec callback with panic containment: a panic in f becomes a
// *RunError attributed to (phase, round, node) instead of crashing the
// process (or, in the concurrent engine, deadlocking the other nodes).
func (e *engine) guard(phase Phase, round, node int, f func()) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			rerr = e.runError(phase, round, node, fmt.Errorf("panic: %v", r))
		}
	}()
	f()
	return nil
}

// callRespond invokes Prover.Respond for spec round ri with panic
// containment, response-shape validation, and (when Options.ProverTimeout
// is set) a deadline. Both engines call the prover exclusively through this
// helper, so a hostile prover implementation fails identically under
// either engine.
func (e *engine) callRespond(ri, merlinRound int, pv *ProverView) (*Response, *RunError) {
	call := func() (resp *Response, rerr *RunError) {
		defer func() {
			if r := recover(); r != nil {
				rerr = e.runError(PhaseRespond, ri, -1, fmt.Errorf("prover panic: %v", r))
			}
		}()
		r, err := e.prover.Respond(merlinRound, pv)
		if err != nil {
			return nil, e.runError(PhaseRespond, ri, -1,
				fmt.Errorf("prover round %d: %w", merlinRound, err))
		}
		if r == nil || len(r.PerNode) != e.n {
			return nil, e.runError(PhaseRespond, ri, -1,
				fmt.Errorf("prover round %d: response for %d nodes, want %d",
					merlinRound, respLen(r), e.n))
		}
		return r, nil
	}
	if e.opts.ProverTimeout <= 0 {
		return call()
	}
	type outcome struct {
		resp *Response
		rerr *RunError
	}
	done := make(chan outcome, 1) // buffered: a late prover must not leak forever
	go func() {
		resp, rerr := call()
		done <- outcome{resp, rerr}
	}()
	timer := time.NewTimer(e.opts.ProverTimeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.resp, out.rerr
	case <-timer.C:
		return nil, e.runError(PhaseDeadline, ri, -1,
			fmt.Errorf("prover round %d: no response within %v", merlinRound, e.opts.ProverTimeout))
	}
}

// checkMessage rejects a malformed prover wire.Message before it is
// charged or delivered: Bits must be non-negative and Data must be exactly
// ceil(Bits/8) bytes (the invariant wire.Writer maintains). Without this
// check a hostile prover could silently corrupt the cost accounting
// (negative Bits) or feed verifiers more data than it was charged for.
func (e *engine) checkMessage(ri, v int, m wire.Message) *RunError {
	if m.Bits < 0 || len(m.Data) != (m.Bits+7)/8 {
		return e.runError(PhaseRespond, ri, v,
			fmt.Errorf("malformed message: Bits=%d but len(Data)=%d (want %d bytes)",
				m.Bits, len(m.Data), (m.Bits+7)/8))
	}
	return nil
}

func respLen(r *Response) int {
	if r == nil {
		return 0
	}
	return len(r.PerNode)
}

// nodeMain is the verifier goroutine for node v.
func (e *engine) nodeMain(v int) {
	rng := nodeRNG(e.opts.Seed, v)
	view := e.newNodeView(v)
	deg := len(view.Neighbors)
	exchangeIdx := 0
	var stash []exchangeMsg

	for ri, round := range e.spec.Rounds {
		switch round.Kind {
		case Arthur:
			var c wire.Message
			if rerr := e.guard(PhaseChallenge, ri, v, func() {
				c = round.Challenge(v, rng, view)
			}); rerr != nil {
				e.fail(rerr)
				return
			}
			view.MyChallenges = append(view.MyChallenges, c)
			select {
			case e.challengeCh <- challengeMsg{from: v, m: c}:
			case <-e.abortCh:
				return
			}
			if e.spec.ShareChallenges {
				got, ok := e.exchange(ri, v, deg, exchangeIdx, c, &stash)
				if !ok {
					return
				}
				exchangeIdx++
				view.NeighborChallenges = append(view.NeighborChallenges, got)
			}
		case Merlin:
			var m wire.Message
			select {
			case m = <-e.respCh[v]:
			case <-e.abortCh:
				return
			}
			view.Responses = append(view.Responses, m)
			forward := m
			if round.Digest != nil {
				if rerr := e.guard(PhaseDigest, ri, v, func() {
					forward = round.Digest(v, rng, m)
				}); rerr != nil {
					e.fail(rerr)
					return
				}
			}
			got, ok := e.exchange(ri, v, deg, exchangeIdx, forward, &stash)
			if !ok {
				return
			}
			exchangeIdx++
			view.NeighborResponses = append(view.NeighborResponses, got)
		}
	}

	var accept bool
	if rerr := e.guard(PhaseDecide, -1, v, func() {
		accept = e.spec.Decide(v, view)
	}); rerr != nil {
		e.fail(rerr)
		return
	}
	select {
	case e.decisionCh <- decision{v: v, accept: accept}:
	case <-e.abortCh:
	}
}

// exchange sends m to all of v's neighbors as exchange idx and collects one
// idx-tagged message from each; messages from the next exchange that arrive
// early are stashed. round is the spec round the exchange belongs to (for
// cost attribution). It returns false if the run was aborted.
func (e *engine) exchange(round, v, deg, idx int, m wire.Message, stash *[]exchangeMsg) (map[int]wire.Message, bool) {
	for _, u := range e.nbrs[v] {
		out := m
		if e.opts.CorruptExchange != nil {
			// Charged-then-corrupted, like the prover plane: v's cost below
			// reflects the original m, while u receives the corrupted copy.
			out = e.opts.CorruptExchange(round, v, u, m)
		}
		select {
		case e.exchCh[u] <- exchangeMsg{from: v, exchange: idx, m: out}:
		case <-e.abortCh:
			return nil, false
		}
	}
	e.cost.NodeToNode[v] += deg * m.Bits
	e.cost.PerRound[round].NodeToNode[v] += deg * m.Bits

	got := make(map[int]wire.Message, deg)
	// Drain previously stashed messages for this exchange first.
	remaining := (*stash)[:0]
	for _, x := range *stash {
		if x.exchange == idx {
			got[x.from] = x.m
		} else {
			remaining = append(remaining, x)
		}
	}
	*stash = remaining
	for len(got) < deg {
		select {
		case x := <-e.exchCh[v]:
			if x.exchange == idx {
				got[x.from] = x.m
			} else {
				*stash = append(*stash, x)
			}
		case <-e.abortCh:
			return nil, false
		}
	}
	return got, true
}

// newNodeView builds node v's initial view from the adjacency snapshot.
// The Neighbors slice is shared with the engine and must be treated as
// read-only by Spec callbacks (all in-repo protocols only read it).
func (e *engine) newNodeView(v int) *NodeView {
	view := &NodeView{
		V:           v,
		NumVertices: e.n,
		Neighbors:   e.nbrs[v],
	}
	if e.inputs != nil {
		view.Input = e.inputs[v]
	}
	return view
}

// runSequential plays all node steps round-robin on the calling goroutine:
// no channels, no per-node goroutines. Each node still owns a private RNG
// seeded by mix(Seed, v) and its callbacks run in the same per-node order
// as under the concurrent engine, so every random draw, message, cost
// increment, transcript entry, and decision is bit-identical to a
// concurrent run with the same seed and prover.
func (e *engine) runSequential() (*Result, error) {
	nA, nM := 0, 0
	for _, r := range e.spec.Rounds {
		if r.Kind == Arthur {
			nA++
		} else {
			nM++
		}
	}
	// Every node appends exactly nA challenges and nM responses over the
	// run, so the per-node view slices can be carved out of shared backing
	// arrays (capacity-clipped so an append can never cross into the next
	// node's region). This replaces ~3n first-append allocations per run
	// with three bulk ones; the node views, RNG sources, and RNGs get the
	// same treatment.
	myBack := make([]wire.Message, e.n*nA)
	respBack := make([]wire.Message, e.n*nM)
	nbrRespBack := make([]map[int]wire.Message, e.n*nM)
	var nbrChalBack []map[int]wire.Message
	if e.spec.ShareChallenges {
		nbrChalBack = make([]map[int]wire.Message, e.n*nA)
	}
	sources := make([]splitmixSource, e.n)
	rngs := make([]*rand.Rand, e.n)
	views := make([]NodeView, e.n)
	for v := 0; v < e.n; v++ {
		sources[v] = nodeSource(e.opts.Seed, v)
		rngs[v] = rand.New(&sources[v])
		views[v] = NodeView{
			V:                 v,
			NumVertices:       e.n,
			Neighbors:         e.nbrs[v],
			MyChallenges:      myBack[v*nA : v*nA : (v+1)*nA],
			Responses:         respBack[v*nM : v*nM : (v+1)*nM],
			NeighborResponses: nbrRespBack[v*nM : v*nM : (v+1)*nM],
		}
		if e.spec.ShareChallenges {
			views[v].NeighborChallenges = nbrChalBack[v*nA : v*nA : (v+1)*nA]
		}
		if e.inputs != nil {
			views[v].Input = e.inputs[v]
		}
	}
	pv := &ProverView{Graph: e.g, Inputs: e.inputs}

	merlinRound := 0
	for ri, round := range e.spec.Rounds {
		switch round.Kind {
		case Arthur:
			challenges := make([]wire.Message, e.n)
			for v := 0; v < e.n; v++ {
				var c wire.Message
				if rerr := e.guard(PhaseChallenge, ri, v, func() {
					c = round.Challenge(v, rngs[v], &views[v])
				}); rerr != nil {
					return nil, rerr
				}
				views[v].MyChallenges = append(views[v].MyChallenges, c)
				challenges[v] = c
				e.cost.ToProver[v] += c.Bits
				e.cost.PerRound[ri].ToProver[v] += c.Bits
			}
			pv.Challenges = append(pv.Challenges, challenges)
			if e.transcript != nil {
				rec := make([]wire.Message, e.n)
				copy(rec, challenges)
				e.transcript.Rounds = append(e.transcript.Rounds,
					TranscriptRound{Kind: Arthur, PerNode: rec})
			}
			if e.spec.ShareChallenges {
				for v := 0; v < e.n; v++ {
					views[v].NeighborChallenges = append(views[v].NeighborChallenges,
						e.gatherSequential(ri, v, challenges))
				}
			}
		case Merlin:
			resp, rerr := e.callRespond(ri, merlinRound, pv)
			if rerr != nil {
				return nil, rerr
			}
			delivered := make([]wire.Message, e.n)
			for v := 0; v < e.n; v++ {
				m := resp.PerNode[v]
				if rerr := e.checkMessage(ri, v, m); rerr != nil {
					return nil, rerr
				}
				e.cost.FromProver[v] += m.Bits
				e.cost.PerRound[ri].FromProver[v] += m.Bits
				if e.opts.Corrupt != nil {
					m = e.opts.Corrupt(merlinRound, v, m)
				}
				delivered[v] = m
				views[v].Responses = append(views[v].Responses, m)
			}
			if e.transcript != nil {
				rec := make([]wire.Message, e.n)
				copy(rec, delivered)
				e.transcript.Rounds = append(e.transcript.Rounds,
					TranscriptRound{Kind: Merlin, PerNode: rec})
			}
			forwards := delivered
			if round.Digest != nil {
				forwards = make([]wire.Message, e.n)
				for v := 0; v < e.n; v++ {
					if rerr := e.guard(PhaseDigest, ri, v, func() {
						forwards[v] = round.Digest(v, rngs[v], delivered[v])
					}); rerr != nil {
						return nil, rerr
					}
				}
			}
			for v := 0; v < e.n; v++ {
				views[v].NeighborResponses = append(views[v].NeighborResponses,
					e.gatherSequential(ri, v, forwards))
			}
			merlinRound++
		}
	}

	decisions := make([]bool, e.n)
	accepted := true
	for v := 0; v < e.n; v++ {
		if rerr := e.guard(PhaseDecide, -1, v, func() {
			decisions[v] = e.spec.Decide(v, &views[v])
		}); rerr != nil {
			return nil, rerr
		}
		accepted = accepted && decisions[v]
	}
	return &Result{
		Accepted:   accepted,
		Decisions:  decisions,
		Cost:       e.cost,
		Transcript: e.transcript,
	}, nil
}

// gatherSequential is the sequential counterpart of exchange: node v sends
// msgs[v] to each neighbor (charged to v's node-to-node cost, attributed
// to spec round `round`) and receives each neighbor u's msgs[u].
func (e *engine) gatherSequential(round, v int, msgs []wire.Message) map[int]wire.Message {
	nbrs := e.nbrs[v]
	e.cost.NodeToNode[v] += len(nbrs) * msgs[v].Bits
	e.cost.PerRound[round].NodeToNode[v] += len(nbrs) * msgs[v].Bits
	got := make(map[int]wire.Message, len(nbrs))
	for _, u := range nbrs {
		m := msgs[u]
		if e.opts.CorruptExchange != nil {
			// Mirrors the concurrent engine's exchange(): u was charged for
			// the original message above (when its own gather ran); v
			// receives the corrupted copy of u→v traffic.
			m = e.opts.CorruptExchange(round, u, v, msgs[u])
		}
		got[u] = m
	}
	return got
}

// nodeRNG builds node v's private randomness stream: a splitmix64 sequence
// seeded by mix(seed, v). Both engines construct node RNGs exclusively
// through this function — that shared construction is what makes their
// random draws, and hence their results, bit-identical.
//
// The source is deliberately not math/rand's default: the lagged-Fibonacci
// rngSource pays a ~10µs, 4.8KB initialization per node, which at n=256
// dominates an entire engine run. splitmix64 seeds in O(1) with 8 bytes of
// state; engine randomness only needs to be deterministic and
// well-distributed, not cryptographic.
func nodeRNG(seed int64, v int) *rand.Rand {
	src := nodeSource(seed, v)
	return rand.New(&src)
}

// nodeSource is nodeRNG's underlying source, exposed so the sequential
// engine can place all n sources in one backing array.
func nodeSource(seed int64, v int) splitmixSource {
	return splitmixSource{state: uint64(mix(seed, int64(v)))}
}

// splitmixSource is a rand.Source64 running splitmix64 (Steele, Lea &
// Flood's SplittableRandom output function over a Weyl sequence).
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// mix derives a per-node seed from the master seed (splitmix64 finalizer).
func mix(seed, v int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(v)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
