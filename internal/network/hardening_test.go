package network

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"dip/internal/graph"
	"dip/internal/wire"
)

// engineModes runs a subtest under each engine, so every hardening path is
// pinned to behave identically in both.
func engineModes(t *testing.T, f func(t *testing.T, opts Options)) {
	t.Run("sequential", func(t *testing.T) { f(t, Options{Seed: 1, Sequential: true}) })
	t.Run("concurrent", func(t *testing.T) { f(t, Options{Seed: 1, Concurrent: true}) })
}

// wantRunError asserts err is a *RunError with the given attribution.
func wantRunError(t *testing.T, err error, phase Phase, round, node int) *RunError {
	t.Helper()
	if err == nil {
		t.Fatal("run succeeded, want *RunError")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *RunError", err, err)
	}
	if re.Phase != phase || re.Round != round || re.Node != node {
		t.Fatalf("RunError{Phase:%q Round:%d Node:%d}, want {%q %d %d}; err: %v",
			re.Phase, re.Round, re.Node, phase, round, node, err)
	}
	return re
}

// TestNilProverMerlinSpec is the regression test for the former
// nil-interface panic: a spec with Merlin rounds and no prover must fail
// with a descriptive setup error, while an Arthur-only spec runs fine
// without one.
func TestNilProverMerlinSpec(t *testing.T) {
	g := graph.Path(3)
	engineModes(t, func(t *testing.T, opts Options) {
		_, err := Run(echoSpec(8), g, nil, nil, opts)
		re := wantRunError(t, err, PhaseSetup, 1, -1)
		if !strings.Contains(re.Error(), "nil Prover") {
			t.Fatalf("error not descriptive: %v", re)
		}
	})
	arthurOnly := &Spec{
		Name:   "arthur-only",
		Rounds: []Round{challengeRound(4)},
		Decide: func(int, *NodeView) bool { return true },
	}
	res, err := Run(arthurOnly, g, nil, nil, Options{Seed: 1})
	if err != nil || !res.Accepted {
		t.Fatalf("Arthur-only spec without prover: res=%+v err=%v", res, err)
	}
}

// TestMalformedProverMessage is the regression test for unvalidated
// m.Bits: a prover whose Bits disagrees with len(Data), or is negative,
// must be rejected with node attribution before anything is charged or
// delivered.
func TestMalformedProverMessage(t *testing.T) {
	g := graph.Path(3)
	spec := &Spec{
		Name:   "malformed",
		Rounds: []Round{{Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	cases := []struct {
		name string
		m    wire.Message
	}{
		{"negative-bits", wire.Message{Data: []byte{0}, Bits: -3}},
		{"bits-overstate-data", wire.Message{Data: []byte{0}, Bits: 17}},
		{"data-overstate-bits", wire.Message{Data: []byte{0, 0, 0}, Bits: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engineModes(t, func(t *testing.T, opts Options) {
				p := proverFunc(func(int, *ProverView) (*Response, error) {
					resp := Broadcast(3, wire.Empty)
					resp.PerNode[1] = tc.m // nodes 0 and 2 stay well-formed
					return resp, nil
				})
				_, err := Run(spec, g, nil, p, opts)
				re := wantRunError(t, err, PhaseRespond, 0, 1)
				if !strings.Contains(re.Error(), "malformed message") {
					t.Fatalf("error not descriptive: %v", re)
				}
			})
		})
	}
}

// panicSpec builds a 4-round MAM-style spec whose callbacks panic at the
// requested phase, to pin panic containment with attribution.
func panicSpec(phase Phase, node int) (*Spec, Prover) {
	spec := &Spec{
		Name: "panicky",
		Rounds: []Round{
			challengeRound(4),
			{Kind: Merlin},
		},
		Decide: func(v int, _ *NodeView) bool { return true },
	}
	prover := Prover(echoProver{})
	switch phase {
	case PhaseChallenge:
		inner := spec.Rounds[0].Challenge
		spec.Rounds[0].Challenge = func(v int, rng *rand.Rand, view *NodeView) wire.Message {
			if v == node {
				panic("challenge boom")
			}
			return inner(v, rng, view)
		}
	case PhaseRespond:
		prover = proverFunc(func(int, *ProverView) (*Response, error) {
			panic("respond boom")
		})
	case PhaseDigest:
		spec.Rounds[1].Digest = func(v int, _ *rand.Rand, m wire.Message) wire.Message {
			if v == node {
				panic("digest boom")
			}
			return m
		}
	case PhaseDecide:
		spec.Decide = func(v int, _ *NodeView) bool {
			if v == node {
				panic("decide boom")
			}
			return true
		}
	}
	return spec, prover
}

// TestPanicContainment: a panic in any Spec/Prover callback becomes a
// *RunError attributed to the right phase, round, and node — in both
// engines, without crashing or deadlocking.
func TestPanicContainment(t *testing.T) {
	g := graph.Cycle(6)
	cases := []struct {
		phase       Phase
		round, node int
	}{
		{PhaseChallenge, 0, 2},
		{PhaseRespond, 1, -1},
		{PhaseDigest, 1, 4},
		{PhaseDecide, -1, 3},
	}
	for _, tc := range cases {
		t.Run(string(tc.phase), func(t *testing.T) {
			engineModes(t, func(t *testing.T, opts Options) {
				spec, p := panicSpec(tc.phase, tc.node)
				_, err := Run(spec, g, nil, p, opts)
				re := wantRunError(t, err, tc.phase, tc.round, tc.node)
				if !strings.Contains(re.Error(), "panic") || !strings.Contains(re.Error(), "boom") {
					t.Fatalf("panic cause lost: %v", re)
				}
			})
		})
	}
}

// blockingProver blocks in Respond until release is closed.
type blockingProver struct{ release chan struct{} }

func (p *blockingProver) Respond(int, *ProverView) (*Response, error) {
	<-p.release
	return nil, errors.New("released")
}

// TestProverTimeout: a hung prover aborts the run with a deadline
// *RunError in both engines instead of hanging it forever.
func TestProverTimeout(t *testing.T) {
	g := graph.Path(3)
	spec := &Spec{
		Name:   "hung",
		Rounds: []Round{challengeRound(4), {Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	engineModes(t, func(t *testing.T, opts Options) {
		p := &blockingProver{release: make(chan struct{})}
		defer close(p.release)
		opts.ProverTimeout = 20 * time.Millisecond
		_, err := Run(spec, g, nil, p, opts)
		wantRunError(t, err, PhaseDeadline, 1, -1)
	})
}

// TestProverTimeoutLeaksNoGoroutines extends the abort leak test
// (TestConcurrentAbortLeaksNoGoroutines) to the deadline path: after the
// hung provers are released, the goroutine count must settle back to the
// baseline — neither node goroutines nor the deadline watchdogs may leak.
func TestProverTimeoutLeaksNoGoroutines(t *testing.T) {
	g := graph.Cycle(16)
	spec := &Spec{
		Name:   "hung",
		Rounds: []Round{{Kind: Merlin}, challengeRound(4), {Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	before := runtime.NumGoroutine()
	release := make(chan struct{})
	for i := 0; i < 10; i++ {
		p := &hangAfterProver{failRound: 1, release: release}
		opts := Options{Seed: int64(i), Concurrent: true, ProverTimeout: 5 * time.Millisecond}
		if _, err := Run(spec, g, nil, p, opts); err == nil {
			t.Fatal("hung prover did not error")
		} else {
			wantRunError(t, err, PhaseDeadline, 2, -1)
		}
	}
	// Unblock the abandoned Respond calls; only then can their watchdog
	// goroutines drain.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after settle window",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// hangAfterProver answers Merlin rounds honestly until failRound, then
// blocks until release is closed.
type hangAfterProver struct {
	failRound int
	release   chan struct{}
}

func (p *hangAfterProver) Respond(merlinRound int, view *ProverView) (*Response, error) {
	if merlinRound >= p.failRound {
		<-p.release
		return nil, errors.New("released")
	}
	return Broadcast(view.Graph.N(), wire.Empty), nil
}

// TestCorruptExchangeBothEngines pins (a) that exchange-plane corruption
// changes what neighbors see, (b) that the sender is still charged for
// the original message ("charged, then corrupted"), and (c) that the two
// engines agree bit-for-bit under it.
func TestCorruptExchangeBothEngines(t *testing.T) {
	g := graph.Cycle(8)
	spec := broadcastSpec()
	// Flip one bit of every exchanged copy: every broadcast check must
	// fail, so every node must reject.
	cx := func(round, from, to int, m wire.Message) wire.Message {
		if m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 1
		return out
	}
	clean, err := Run(spec, g, nil, broadcastProver{liar: -1}, Options{Seed: 5, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Accepted {
		t.Fatal("honest broadcast rejected without corruption")
	}
	seq, err := Run(spec, g, nil, broadcastProver{liar: -1},
		Options{Seed: 5, Sequential: true, CorruptExchange: cx})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(spec, g, nil, broadcastProver{liar: -1},
		Options{Seed: 5, Concurrent: true, CorruptExchange: cx})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Accepted {
		t.Fatal("corrupted exchange still accepted")
	}
	for v, d := range seq.Decisions {
		if d {
			t.Fatalf("node %d accepted a corrupted neighbor copy", v)
		}
	}
	resultsIdentical(t, "corrupt-exchange", seq, conc)
	// Charged-then-corrupted: node-to-node cost must equal the clean run's
	// (the corrupted copy is larger nowhere, but pin exact equality).
	for v := range clean.Cost.NodeToNode {
		if clean.Cost.NodeToNode[v] != seq.Cost.NodeToNode[v] {
			t.Fatalf("node %d: NodeToNode %d under corruption, want %d (charge the original)",
				v, seq.Cost.NodeToNode[v], clean.Cost.NodeToNode[v])
		}
	}
}

// TestRunErrorFormat pins the attribution rendering.
func TestRunErrorFormat(t *testing.T) {
	re := &RunError{Protocol: "p", Phase: PhaseDigest, Round: 2, Node: 7, Err: errors.New("x")}
	s := re.Error()
	for _, want := range []string{`"p"`, "digest", "round 2", "node 7", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Error() = %q, missing %q", s, want)
		}
	}
	noNode := &RunError{Protocol: "p", Phase: PhaseRespond, Round: 0, Node: -1, Err: errors.New("x")}
	if strings.Contains(noNode.Error(), "node") {
		t.Fatalf("Error() = %q mentions a node for Node=-1", noNode.Error())
	}
}
