package network

import (
	"fmt"
	"math/rand"

	"dip/internal/wire"
)

// NodeState is one verifier node extracted from the engine: its RNG, its
// view, and nothing else. It exists for node hosts outside this process —
// internal/peer builds one NodeState per hosted node and walks Schedule()
// against it — and is deliberately a thin shell over the same free
// functions (challengeNode, forwardNode, decideNode) the in-process
// executors run, so a node behaves bit-identically wherever it lives.
//
// A NodeState is single-goroutine: the host drives it in schedule order,
// exactly like the concurrent executor's per-node goroutine drives its
// slice of runState.
type NodeState struct {
	spec *Spec
	v, n int
	src  splitmixSource
	rng  *rand.Rand
	view NodeView
}

// NewNodeState builds node v of an n-node run: RNG seeded mix(seed, v),
// fresh view over the given neighbor slice and input. The spec is
// validated with the same gate Run uses, so a host cannot start playing a
// schedule the coordinator would have rejected.
func NewNodeState(spec *Spec, v, n int, neighbors []int, input wire.Message, seed int64) (*NodeState, error) {
	if _, err := validateSpec(spec); err != nil {
		return nil, err
	}
	if v < 0 || v >= n {
		return nil, fmt.Errorf("network: node %d out of range [0,%d)", v, n)
	}
	ns := &NodeState{spec: spec, v: v, n: n}
	ns.src = nodeSource(seed, v)
	ns.rng = rand.New(&ns.src)
	ns.view = NodeView{V: v, NumVertices: n, Neighbors: neighbors, Input: input}
	return ns, nil
}

// V returns the node's identifier.
func (ns *NodeState) V() int { return ns.v }

// Challenge plays the node's half of an Arthur round (spec round ri): draw
// the challenge from the node RNG and record it in the view.
func (ns *NodeState) Challenge(ri int) (wire.Message, *RunError) {
	return challengeNode(ns.spec, ri, ns.v, ns.rng, &ns.view)
}

// PushResponse records the prover's delivered (post-funnel) Merlin-round
// message, exactly as the in-process executors append to
// views[v].Responses.
func (ns *NodeState) PushResponse(m wire.Message) {
	ns.view.Responses = append(ns.view.Responses, m)
}

// ExchangeOut returns what this node sends its neighbors for exchange step
// st: its latest challenge (challenge exchanges), or its latest delivered
// response — digested through the round's Digest when one is defined,
// drawing from the node RNG in the same schedule position as the
// in-process executors.
func (ns *NodeState) ExchangeOut(st ScheduleStep) (wire.Message, *RunError) {
	if st.Chal {
		mc := ns.view.MyChallenges
		return mc[len(mc)-1], nil
	}
	rs := ns.view.Responses
	return forwardNode(ns.spec, st.Round, ns.v, ns.rng, rs[len(rs)-1])
}

// PushExchange records the post-funnel copies received from the node's
// neighbors for exchange step st. got is keyed by sender and must hold one
// entry per neighbor; the NodeState retains it.
func (ns *NodeState) PushExchange(st ScheduleStep, got map[int]wire.Message) {
	if st.Chal {
		ns.view.NeighborChallenges = append(ns.view.NeighborChallenges, got)
	} else {
		ns.view.NeighborResponses = append(ns.view.NeighborResponses, got)
	}
}

// Decide runs the node's decision function over everything it has seen.
func (ns *NodeState) Decide() (bool, *RunError) {
	return decideNode(ns.spec, ns.v, &ns.view)
}
