package network

import (
	"math/rand"
	"testing"

	"dip/internal/graph"
	"dip/internal/wire"
)

// resultsIdentical fails the test unless a and b agree on acceptance,
// per-node decisions, every cost counter, and (when recorded) every
// transcript message bit-for-bit.
func resultsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Accepted != b.Accepted {
		t.Fatalf("%s: Accepted %v vs %v", label, a.Accepted, b.Accepted)
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("%s: decision counts differ", label)
	}
	for v := range a.Decisions {
		if a.Decisions[v] != b.Decisions[v] {
			t.Fatalf("%s: node %d decision %v vs %v", label, v, a.Decisions[v], b.Decisions[v])
		}
	}
	costSlices := [][2][]int{
		{a.Cost.ToProver, b.Cost.ToProver},
		{a.Cost.FromProver, b.Cost.FromProver},
		{a.Cost.NodeToNode, b.Cost.NodeToNode},
	}
	for i, pair := range costSlices {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: cost slice %d lengths differ", label, i)
		}
		for v := range pair[0] {
			if pair[0][v] != pair[1][v] {
				t.Fatalf("%s: cost slice %d node %d: %d vs %d",
					label, i, v, pair[0][v], pair[1][v])
			}
		}
	}
	if (a.Transcript == nil) != (b.Transcript == nil) {
		t.Fatalf("%s: transcript presence differs", label)
	}
	if a.Transcript == nil {
		return
	}
	ta, tb := a.Transcript, b.Transcript
	if len(ta.Rounds) != len(tb.Rounds) {
		t.Fatalf("%s: transcript round counts %d vs %d", label, len(ta.Rounds), len(tb.Rounds))
	}
	for r := range ta.Rounds {
		ra, rb := ta.Rounds[r], tb.Rounds[r]
		if ra.Kind != rb.Kind || len(ra.PerNode) != len(rb.PerNode) {
			t.Fatalf("%s: transcript round %d shape differs", label, r)
		}
		for v := range ra.PerNode {
			ma, mb := ra.PerNode[v], rb.PerNode[v]
			if ma.Bits != mb.Bits {
				t.Fatalf("%s: round %d node %d bits %d vs %d", label, r, v, ma.Bits, mb.Bits)
			}
			for i := range ma.Data {
				if ma.Data[i] != mb.Data[i] {
					t.Fatalf("%s: round %d node %d byte %d differs", label, r, v, i)
				}
			}
		}
	}
}

// digestSpec exercises the Digest hook and multi-round RNG consumption.
func digestSpec() *Spec {
	return &Spec{
		Name: "seq-digest",
		Rounds: []Round{
			challengeRound(16),
			{Kind: Merlin, Digest: func(v int, rng *rand.Rand, m wire.Message) wire.Message {
				var w wire.Writer
				w.WriteUint(rng.Uint64()&0xFF, 8)
				return w.Message()
			}},
			challengeRound(8),
			{Kind: Merlin},
		},
		Decide: func(v int, view *NodeView) bool {
			return len(view.Responses) == 2 &&
				len(view.NeighborResponses[0]) == len(view.Neighbors)
		},
	}
}

// TestSequentialMatchesConcurrent runs a mix of specs, graphs, provers, and
// options under both engines and requires bit-identical results.
func TestSequentialMatchesConcurrent(t *testing.T) {
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if node%3 != 1 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 0x80
		return out
	}
	shareSpec := &Spec{
		Name:            "seq-share",
		ShareChallenges: true,
		Rounds:          []Round{challengeRound(8), {Kind: Merlin}},
		Decide: func(v int, view *NodeView) bool {
			return len(view.NeighborChallenges[0]) == len(view.Neighbors)
		},
	}
	cases := []struct {
		name   string
		spec   *Spec
		g      *graph.Graph
		prover Prover
		opts   Options
	}{
		{"echo-cycle", echoSpec(16), graph.Cycle(9), echoProver{}, Options{Seed: 1}},
		{"echo-complete", echoSpec(32), graph.Complete(7), echoProver{}, Options{Seed: 2}},
		{"echo-path-transcript", echoSpec(24), graph.Path(6), echoProver{},
			Options{Seed: 3, RecordTranscript: true}},
		{"lying", echoSpec(16), graph.Cycle(5), lyingProver{}, Options{Seed: 4}},
		{"broadcast-liar", broadcastSpec(), graph.Path(5), broadcastProver{liar: 2}, Options{Seed: 5}},
		{"corrupted", echoSpec(16), graph.Cycle(6), echoProver{},
			Options{Seed: 6, Corrupt: corrupt, RecordTranscript: true}},
		{"share-challenges", shareSpec, graph.Path(4), echoProver{}, Options{Seed: 7}},
		{"digest-amam", digestSpec(), graph.Cycle(8), echoProver{},
			Options{Seed: 8, RecordTranscript: true}},
		{"single-node", echoSpec(8), graph.New(1), echoProver{}, Options{Seed: 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				opts := tc.opts
				opts.Seed += seed * 1000
				seqOpts, conOpts := opts, opts
				seqOpts.Sequential = true
				conOpts.Concurrent = true
				seqRes, err := Run(tc.spec, tc.g, nil, tc.prover, seqOpts)
				if err != nil {
					t.Fatal(err)
				}
				conRes, err := Run(tc.spec, tc.g, nil, tc.prover, conOpts)
				if err != nil {
					t.Fatal(err)
				}
				resultsIdentical(t, tc.name, seqRes, conRes)
			}
		})
	}
}

// TestAutoSelectsSequential pins the default: with neither mode forced, the
// engine behaves exactly like the forced-sequential engine.
func TestAutoSelectsSequential(t *testing.T) {
	g := graph.Cycle(6)
	auto, err := Run(echoSpec(16), g, nil, echoProver{}, Options{Seed: 11, RecordTranscript: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(echoSpec(16), g, nil, echoProver{},
		Options{Seed: 11, RecordTranscript: true, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "auto-vs-sequential", auto, seq)
}

func TestBothModesRejected(t *testing.T) {
	g := graph.Path(3)
	_, err := Run(echoSpec(8), g, nil, echoProver{},
		Options{Sequential: true, Concurrent: true})
	if err == nil {
		t.Fatal("conflicting mode options accepted")
	}
}

// TestSequentialProverErrors mirrors the concurrent-engine error paths.
func TestSequentialProverErrors(t *testing.T) {
	g := graph.Path(3)
	spec := &Spec{
		Name:   "seq-err",
		Rounds: []Round{{Kind: Merlin}},
		Decide: func(int, *NodeView) bool { return true },
	}
	wrongShape := proverFunc(func(int, *ProverView) (*Response, error) {
		return &Response{PerNode: make([]wire.Message, 1)}, nil
	})
	if _, err := Run(spec, g, nil, wrongShape, Options{Sequential: true}); err == nil {
		t.Fatal("wrong-shape response accepted by sequential engine")
	}
}

// mutatingProver echoes correctly but vandalizes the shared graph through
// its view, violating the ProverView.Graph read-only contract. The engine
// snapshot must keep routing and decisions unaffected within the run.
type mutatingProver struct{}

func (mutatingProver) Respond(_ int, view *ProverView) (*Response, error) {
	n := view.Graph.N()
	for v := 1; v < n; v++ {
		view.Graph.RemoveEdge(0, v)
	}
	for v := 1; v < n; v++ {
		if !view.Graph.HasEdge(0, v) && v > 1 {
			view.Graph.AddEdge(0, v)
		}
	}
	last := view.Challenges[len(view.Challenges)-1]
	resp := &Response{PerNode: make([]wire.Message, len(last))}
	copy(resp.PerNode, last)
	return resp, nil
}

// TestProverMutationCannotAffectDecisions runs the echo protocol with a
// prover that rewires the graph mid-run, under both engines: every node
// must still receive its echo over the original topology and accept, with
// costs identical to an honest run on the pristine graph.
func TestProverMutationCannotAffectDecisions(t *testing.T) {
	for _, mode := range []string{"sequential", "concurrent"} {
		t.Run(mode, func(t *testing.T) {
			opts := Options{Seed: 21}
			if mode == "sequential" {
				opts.Sequential = true
			} else {
				opts.Concurrent = true
			}
			honest, err := Run(echoSpec(16), graph.Cycle(8), nil, echoProver{}, opts)
			if err != nil {
				t.Fatal(err)
			}
			g := graph.Cycle(8)
			mutated, err := Run(echoSpec(16), g, nil, mutatingProver{}, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !mutated.Accepted {
				t.Fatalf("mutating prover changed decisions: %v", mutated.Decisions)
			}
			resultsIdentical(t, "mutation-immunity", honest, mutated)
		})
	}
}
