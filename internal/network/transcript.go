package network

import (
	"fmt"
	"strings"

	"dip/internal/wire"
)

// Transcript records every message of a run, round by round: what each
// node sent to the prover (Arthur rounds) and what the prover delivered to
// each node (Merlin rounds, after any corruption injection — i.e. what the
// network actually observed). Enable recording with
// Options.RecordTranscript; the transcript is attached to the Result.
type Transcript struct {
	Name   string
	Rounds []TranscriptRound
}

// TranscriptRound is one recorded round.
type TranscriptRound struct {
	Kind Kind
	// PerNode[v] is node v's challenge (Arthur) or delivered response
	// (Merlin).
	PerNode []wire.Message
}

// TotalBits sums the bit lengths of every recorded message.
func (t *Transcript) TotalBits() int {
	total := 0
	for _, r := range t.Rounds {
		for _, m := range r.PerNode {
			total += m.Bits
		}
	}
	return total
}

// String renders a per-round summary: kind, per-node bit counts, and a
// short hex prefix of each message.
func (t *Transcript) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transcript of %q: %d rounds, %d total bits\n",
		t.Name, len(t.Rounds), t.TotalBits())
	for i, r := range t.Rounds {
		fmt.Fprintf(&b, "round %d (%s):\n", i, r.Kind)
		for v, m := range r.PerNode {
			prefix := m.Data
			if len(prefix) > 8 {
				prefix = prefix[:8]
			}
			fmt.Fprintf(&b, "  node %3d: %4d bits  %x\n", v, m.Bits, prefix)
		}
	}
	return b.String()
}
