package network

import (
	"errors"
	"sync"
	"testing"

	"dip/internal/graph"
)

// restoreStatePool reconfigures the pool for a test and restores the
// default layout (and counters' shard count) when the test ends.
func restoreStatePool(t *testing.T, shards, capacity int) {
	t.Helper()
	prevShards := len(*statePool.shards.Load())
	statePool.mu.Lock()
	prevNominal := statePool.nominal
	statePool.configure(shards, capacity)
	statePool.mu.Unlock()
	t.Cleanup(func() {
		statePool.mu.Lock()
		statePool.configure(prevShards, prevNominal)
		statePool.mu.Unlock()
	})
}

// TestShardedPoolCapacityLayout pins the capacity-distribution contract:
// the configured total is spread across shards (rounded up to one state
// per shard) with the remainder as the overflow budget, and the aggregate
// snapshot reports the true bound.
func TestShardedPoolCapacityLayout(t *testing.T) {
	cases := []struct {
		shards, nominal  int
		perShard, ovflow int
	}{
		{4, 32, 8, 0},
		{4, 30, 7, 2},
		{8, 4, 1, 0}, // rounded up: more shards than states
		{1, 0, defaultPoolCap, 0},
	}
	for _, c := range cases {
		restoreStatePool(t, c.shards, c.nominal)
		st := StatePoolStats()
		if len(st.Shards) != c.shards {
			t.Fatalf("configure(%d,%d): %d shards", c.shards, c.nominal, len(st.Shards))
		}
		for i, sh := range st.Shards {
			if sh.Capacity != c.perShard {
				t.Fatalf("configure(%d,%d): shard %d capacity %d, want %d",
					c.shards, c.nominal, i, sh.Capacity, c.perShard)
			}
		}
		if st.Overflow == nil || st.Overflow.Capacity != c.ovflow {
			t.Fatalf("configure(%d,%d): overflow %+v, want capacity %d",
				c.shards, c.nominal, st.Overflow, c.ovflow)
		}
		if want := c.perShard*c.shards + c.ovflow; st.Capacity != want {
			t.Fatalf("configure(%d,%d): aggregate capacity %d, want %d",
				c.shards, c.nominal, st.Capacity, want)
		}
	}
}

// TestShardedPoolBitIdentical forces a multi-shard layout (this box may
// run with GOMAXPROCS=1, i.e. one shard by default) and checks the pooling
// contract across shards: concurrent runs through different home shards
// remain bit-identical to their pool-cold execution, and the pool retains
// no more than its capacity.
func TestShardedPoolBitIdentical(t *testing.T) {
	restoreStatePool(t, 4, 8)

	g := graph.Cycle(10)
	spec := echoSpec(24)
	opts := Options{Seed: 5}
	want, err := Run(spec, g, nil, echoProver{}, opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	const workers, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := Run(spec, g, nil, echoProver{}, opts)
				if err != nil {
					errs <- err
					return
				}
				for v := range want.Decisions {
					if res.Decisions[v] != want.Decisions[v] ||
						res.Cost.ToProver[v] != want.Cost.ToProver[v] ||
						res.Cost.FromProver[v] != want.Cost.FromProver[v] ||
						res.Cost.NodeToNode[v] != want.Cost.NodeToNode[v] {
						errs <- errMismatch
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent pooled run: %v", err)
	}

	st := StatePoolStats()
	if st.Free > st.Capacity {
		t.Fatalf("pool leaked: %d free > %d capacity", st.Free, st.Capacity)
	}
	if st.Hits+st.Misses < workers*iters+1 {
		t.Fatalf("pool under-counted: %d hits + %d misses for %d runs",
			st.Hits, st.Misses, workers*iters+1)
	}
}

var errMismatch = errors.New("pooled result differs from cold run")

// TestSetStatePoolCapacityRoundTrip pins SetStatePoolCapacity's return
// contract (previous configured capacity) across the sharded layout.
func TestSetStatePoolCapacityRoundTrip(t *testing.T) {
	restoreStatePool(t, 2, 0)
	if prev := SetStatePoolCapacity(48); prev != defaultPoolCap {
		t.Fatalf("first resize returned %d, want default %d", prev, defaultPoolCap)
	}
	if prev := SetStatePoolCapacity(0); prev != 48 {
		t.Fatalf("second resize returned %d, want 48", prev)
	}
	st := StatePoolStats()
	if st.Capacity != defaultPoolCap {
		t.Fatalf("capacity %d after restore, want %d", st.Capacity, defaultPoolCap)
	}
}
