package network

import "fmt"

// Phase names the part of a run in which an engine failure occurred. It is
// the first coordinate of a RunError's attribution triple (phase, round,
// node).
type Phase string

const (
	// PhaseSetup covers validation before any round executes (nil prover
	// with Merlin rounds, malformed specs caught late, ...).
	PhaseSetup Phase = "setup"
	// PhaseChallenge is a Round.Challenge callback in an Arthur round.
	PhaseChallenge Phase = "challenge"
	// PhaseRespond is a Prover.Respond call or the validation of its
	// Response (shape, malformed wire.Message).
	PhaseRespond Phase = "respond"
	// PhaseDigest is a Round.Digest callback in a Merlin round.
	PhaseDigest Phase = "digest"
	// PhaseDecide is a Spec.Decide callback after the last round.
	PhaseDecide Phase = "decide"
	// PhaseDeadline means Prover.Respond exceeded Options.ProverTimeout.
	PhaseDeadline Phase = "deadline"
	// PhaseCanceled means the run was aborted between steps because
	// Options.Cancel fired (for RunContext: the context was canceled or its
	// deadline passed before the run completed).
	PhaseCanceled Phase = "canceled"
	// PhaseTransport means a networked run (Options.Transport) lost a
	// verifier node: a peer connection failed, answered out of protocol,
	// or went silent past the transport's I/O deadline. The in-process
	// executors never produce it.
	PhaseTransport Phase = "transport"
)

// RunError is the structured error returned by Run when a protocol or
// prover *implementation* misbehaves: a panicking callback, a nil or
// wrong-shaped or malformed response, a hung prover past its deadline.
// (A cheating-but-well-formed prover is not an error; it yields a normal
// Result, typically rejected.) Phase, Round and Node attribute the failure;
// Err is the underlying cause and participates in errors.Is/As chains.
type RunError struct {
	// Protocol is Spec.Name of the failing run.
	Protocol string
	// Phase says which callback or check failed.
	Phase Phase
	// Round is the spec round index (position in Spec.Rounds), or -1 when
	// the failure is not tied to a specific round.
	Round int
	// Node is the node the failure is attributed to, or -1 when it cannot
	// be pinned to one node (e.g. the prover itself failed).
	Node int
	// Err is the underlying error (a recovered panic is wrapped into one).
	Err error
}

// Error renders the attribution triple and the cause.
func (e *RunError) Error() string {
	s := fmt.Sprintf("network: protocol %q: %s phase", e.Protocol, e.Phase)
	if e.Round >= 0 {
		s += fmt.Sprintf(", round %d", e.Round)
	}
	if e.Node >= 0 {
		s += fmt.Sprintf(", node %d", e.Node)
	}
	return s + ": " + e.Err.Error()
}

// Unwrap exposes the underlying cause to errors.Is/errors.As.
func (e *RunError) Unwrap() error { return e.Err }
