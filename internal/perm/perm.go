// Package perm implements permutations of the vertex set {0, ..., n-1}.
//
// Permutations are the central object of the paper's protocols: the Sym
// prover commits to a claimed automorphism ρ, and the GNI prover answers the
// Goldwasser-Sipser challenge with a permutation σ. This package provides
// composition, inversion, sampling, Lehmer-code (un)ranking for enumerating
// S_n in a canonical order, and lexicographic successor for streaming
// enumeration.
package perm

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"strings"
)

// Perm is a permutation of {0,...,n-1}: p[i] is the image of i. A Perm is
// valid if it is a bijection; constructors in this package always return
// valid permutations, and FromSlice validates.
type Perm []int

// Identity returns the identity permutation on n elements.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// FromSlice validates that s is a bijection on {0,...,len(s)-1} and returns
// it as a Perm. The slice is copied.
func FromSlice(s []int) (Perm, error) {
	n := len(s)
	seen := make([]bool, n)
	for i, v := range s {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("perm: image %d of %d out of range [0,%d)", v, i, n)
		}
		if seen[v] {
			return nil, fmt.Errorf("perm: image %d repeated", v)
		}
		seen[v] = true
	}
	p := make(Perm, n)
	copy(p, s)
	return p, nil
}

// IsValid reports whether p is a bijection on {0,...,len(p)-1}. It is used
// by verifiers to reject prover-supplied mappings that are not permutations.
func IsValid(s []int) bool {
	_, err := FromSlice(s)
	return err == nil
}

// Random returns a uniformly random permutation on n elements.
func Random(n int, rng *rand.Rand) Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// RandomNonIdentity returns a uniformly random permutation among the n!-1
// non-identity permutations. n must be at least 2.
func RandomNonIdentity(n int, rng *rand.Rand) Perm {
	if n < 2 {
		panic(fmt.Sprintf("perm: no non-identity permutation on %d elements", n))
	}
	for {
		p := Random(n, rng)
		if !p.IsIdentity() {
			return p
		}
	}
}

// N returns the number of elements.
func (p Perm) N() int { return len(p) }

// Clone returns an independent copy.
func (p Perm) Clone() Perm {
	c := make(Perm, len(p))
	copy(c, p)
	return c
}

// IsIdentity reports whether p fixes every element.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Compose returns the permutation "p after q": (p∘q)(i) = p(q(i)).
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: composing sizes %d and %d", len(p), len(q)))
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Inverse returns p⁻¹.
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// FixedPoints returns the elements i with p(i) = i, in increasing order.
func (p Perm) FixedPoints() []int {
	var out []int
	for i, v := range p {
		if i == v {
			out = append(out, i)
		}
	}
	return out
}

// Moved returns some element i with p(i) != i, or -1 if p is the identity.
// Protocol 1's prover broadcasts such a witness as the spanning-tree root.
func (p Perm) Moved() int {
	for i, v := range p {
		if i != v {
			return i
		}
	}
	return -1
}

// Cycles returns the cycle decomposition of p, each cycle starting with its
// smallest element, cycles sorted by their smallest element. Fixed points
// appear as 1-cycles.
func (p Perm) Cycles() [][]int {
	n := len(p)
	seen := make([]bool, n)
	var cycles [][]int
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		cycle := []int{i}
		seen[i] = true
		for j := p[i]; j != i; j = p[j] {
			cycle = append(cycle, j)
			seen[j] = true
		}
		cycles = append(cycles, cycle)
	}
	return cycles
}

// Order returns the order of p in the symmetric group (the lcm of its cycle
// lengths).
func (p Perm) Order() *big.Int {
	ord := big.NewInt(1)
	for _, c := range p.Cycles() {
		l := big.NewInt(int64(len(c)))
		g := new(big.Int).GCD(nil, nil, ord, l)
		ord.Div(ord.Mul(ord, l), g)
	}
	return ord
}

// String renders p in cycle notation, e.g. "(0 2 1)(3 4)"; the identity
// renders as "id".
func (p Perm) String() string {
	var parts []string
	for _, c := range p.Cycles() {
		if len(c) == 1 {
			continue
		}
		strs := make([]string, len(c))
		for i, v := range c {
			strs[i] = fmt.Sprint(v)
		}
		parts = append(parts, "("+strings.Join(strs, " ")+")")
	}
	if len(parts) == 0 {
		return "id"
	}
	return strings.Join(parts, "")
}

// Rank returns the Lehmer rank of p: its index in the lexicographic
// enumeration of S_n, in [0, n!).
func (p Perm) Rank() *big.Int {
	n := len(p)
	rank := new(big.Int)
	fact := factorials(n)
	// For each position, count how many smaller unused elements exist.
	used := make([]bool, n)
	for i, v := range p {
		smaller := 0
		for u := 0; u < v; u++ {
			if !used[u] {
				smaller++
			}
		}
		used[v] = true
		term := new(big.Int).Mul(big.NewInt(int64(smaller)), fact[n-1-i])
		rank.Add(rank, term)
	}
	return rank
}

// Unrank returns the permutation of n elements with the given Lehmer rank.
// It returns an error if rank is outside [0, n!).
func Unrank(n int, rank *big.Int) (Perm, error) {
	fact := factorials(n)
	if rank.Sign() < 0 || rank.Cmp(fact[n]) >= 0 {
		return nil, fmt.Errorf("perm: rank %v outside [0, %d!)", rank, n)
	}
	rem := new(big.Int).Set(rank)
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	p := make(Perm, 0, n)
	for i := 0; i < n; i++ {
		q, r := new(big.Int).DivMod(rem, fact[n-1-i], new(big.Int))
		idx := int(q.Int64())
		p = append(p, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
		rem = r
	}
	return p, nil
}

// factorials returns [0!, 1!, ..., n!].
func factorials(n int) []*big.Int {
	f := make([]*big.Int, n+1)
	f[0] = big.NewInt(1)
	for i := 1; i <= n; i++ {
		f[i] = new(big.Int).Mul(f[i-1], big.NewInt(int64(i)))
	}
	return f
}

// NextLex advances p to its lexicographic successor in place and reports
// whether one existed; when p is the last permutation it is left unchanged
// and NextLex returns false. Streaming enumeration with NextLex is how the
// honest GNI prover searches S_n for a hash preimage without materializing
// the whole group.
func (p Perm) NextLex() bool {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
	return true
}

// Sorted reports whether p is sorted ascending (i.e. is the identity); a
// convenience used by enumeration loops.
func (p Perm) Sorted() bool {
	return sort.IntsAreSorted(p)
}

// Parity returns +1 for even permutations and -1 for odd ones, computed
// from the cycle decomposition (a k-cycle contributes k-1 transpositions).
func (p Perm) Parity() int {
	transpositions := 0
	for _, c := range p.Cycles() {
		transpositions += len(c) - 1
	}
	if transpositions%2 == 0 {
		return 1
	}
	return -1
}

// Power returns p composed with itself k times; k may be negative (inverse
// powers) or zero (identity).
func (p Perm) Power(k int) Perm {
	base := p.Clone()
	if k < 0 {
		base = p.Inverse()
		k = -k
	}
	out := Identity(len(p))
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			out = base.Compose(out)
		}
		base = base.Compose(base)
	}
	return out
}

// Conjugate returns q∘p∘q⁻¹: the relabeling of p by q. Conjugation maps
// Aut(G) to Aut(q(G)), which the general GNI prover exploits.
func (p Perm) Conjugate(q Perm) Perm {
	return q.Compose(p).Compose(q.Inverse())
}
