package perm

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if !p.IsIdentity() {
		t.Fatal("Identity not identity")
	}
	if p.Moved() != -1 {
		t.Fatal("identity has a moved point")
	}
	if got := p.String(); got != "id" {
		t.Fatalf("String = %q", got)
	}
	if len(p.FixedPoints()) != 5 {
		t.Fatal("identity should fix all")
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice([]int{1, 2, 0}); err != nil {
		t.Fatalf("valid perm rejected: %v", err)
	}
	for _, bad := range [][]int{{0, 0, 1}, {0, 3, 1}, {-1, 0, 1}} {
		if _, err := FromSlice(bad); err == nil {
			t.Fatalf("invalid %v accepted", bad)
		}
	}
	// Copies input.
	src := []int{1, 0}
	p, _ := FromSlice(src)
	src[0] = 0
	if p[0] != 1 {
		t.Fatal("FromSlice did not copy")
	}
}

func TestIsValid(t *testing.T) {
	if !IsValid([]int{2, 0, 1}) {
		t.Fatal("valid rejected")
	}
	if IsValid([]int{1, 1, 0}) {
		t.Fatal("invalid accepted")
	}
}

func TestComposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(12)
		p := Random(n, rng)
		q := Random(n, rng)
		// (p∘q)(i) == p(q(i))
		pq := p.Compose(q)
		for i := 0; i < n; i++ {
			if pq[i] != p[q[i]] {
				t.Fatalf("compose wrong at %d", i)
			}
		}
		if !p.Compose(p.Inverse()).IsIdentity() || !p.Inverse().Compose(p).IsIdentity() {
			t.Fatal("inverse not inverse")
		}
	}
}

func TestComposeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Identity(3).Compose(Identity(4))
}

func TestRandomNonIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		if RandomNonIdentity(2, rng).IsIdentity() {
			t.Fatal("got identity")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n=1 should panic")
		}
	}()
	RandomNonIdentity(1, rng)
}

func TestCycles(t *testing.T) {
	p, _ := FromSlice([]int{2, 0, 1, 3, 5, 4})
	cycles := p.Cycles()
	want := [][]int{{0, 2, 1}, {3}, {4, 5}}
	if len(cycles) != len(want) {
		t.Fatalf("cycles = %v", cycles)
	}
	for i := range want {
		if len(cycles[i]) != len(want[i]) {
			t.Fatalf("cycle %d = %v, want %v", i, cycles[i], want[i])
		}
		for j := range want[i] {
			if cycles[i][j] != want[i][j] {
				t.Fatalf("cycle %d = %v, want %v", i, cycles[i], want[i])
			}
		}
	}
	if got := p.String(); got != "(0 2 1)(4 5)" {
		t.Fatalf("String = %q", got)
	}
}

func TestOrder(t *testing.T) {
	p, _ := FromSlice([]int{2, 0, 1, 3, 5, 4}) // 3-cycle and 2-cycle: order 6
	if got := p.Order(); got.Int64() != 6 {
		t.Fatalf("Order = %v, want 6", got)
	}
	if got := Identity(4).Order(); got.Int64() != 1 {
		t.Fatalf("identity order = %v", got)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(10)
		p := Random(n, rng)
		q, err := Unrank(n, p.Rank())
		if err != nil {
			t.Fatal(err)
		}
		if !q.Equal(p) {
			t.Fatalf("round trip: %v -> %v", p, q)
		}
	}
}

func TestRankEnumeratesLexOrder(t *testing.T) {
	// Ranks 0..23 of S_4 should be exactly the lexicographic enumeration.
	p := Identity(4)
	rank := int64(0)
	for {
		if got := p.Rank().Int64(); got != rank {
			t.Fatalf("rank of %v = %d, want %d", p, got, rank)
		}
		q, err := Unrank(4, big.NewInt(rank))
		if err != nil {
			t.Fatal(err)
		}
		if !q.Equal(p) {
			t.Fatalf("Unrank(%d) = %v, want %v", rank, q, p)
		}
		if !p.NextLex() {
			break
		}
		rank++
	}
	if rank != 23 {
		t.Fatalf("enumerated %d+1 permutations, want 24", rank+1)
	}
}

func TestUnrankRange(t *testing.T) {
	if _, err := Unrank(3, big.NewInt(6)); err == nil {
		t.Fatal("rank 6 of S_3 should error")
	}
	if _, err := Unrank(3, big.NewInt(-1)); err == nil {
		t.Fatal("negative rank should error")
	}
}

func TestNextLexLast(t *testing.T) {
	p, _ := FromSlice([]int{2, 1, 0})
	if p.NextLex() {
		t.Fatal("last permutation has a successor")
	}
	if !p.Equal(Perm{2, 1, 0}) {
		t.Fatal("NextLex mutated the last permutation")
	}
}

func TestMoved(t *testing.T) {
	p, _ := FromSlice([]int{0, 2, 1})
	if got := p.Moved(); got != 1 {
		t.Fatalf("Moved = %d, want 1", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Identity(3)
	c := p.Clone()
	c[0] = 2
	if p[0] != 0 {
		t.Fatal("clone aliases original")
	}
}

func TestQuickInverseComposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		p := Random(n, rng)
		q := Random(n, rng)
		// (p∘q)⁻¹ == q⁻¹∘p⁻¹
		lhs := p.Compose(q).Inverse()
		rhs := q.Inverse().Compose(p.Inverse())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRankBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		p := Random(n, rng)
		r := p.Rank()
		fact := big.NewInt(1)
		for i := 2; i <= n; i++ {
			fact.Mul(fact, big.NewInt(int64(i)))
		}
		return r.Sign() >= 0 && r.Cmp(fact) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSorted(t *testing.T) {
	if !Identity(5).Sorted() {
		t.Fatal("identity not sorted")
	}
	p, _ := FromSlice([]int{1, 0})
	if p.Sorted() {
		t.Fatal("transposition sorted")
	}
}

func TestParity(t *testing.T) {
	if Identity(5).Parity() != 1 {
		t.Fatal("identity not even")
	}
	swap, _ := FromSlice([]int{1, 0, 2})
	if swap.Parity() != -1 {
		t.Fatal("transposition not odd")
	}
	threeCycle, _ := FromSlice([]int{1, 2, 0})
	if threeCycle.Parity() != 1 {
		t.Fatal("3-cycle not even")
	}
	// Parity is a homomorphism: sign(pq) = sign(p)·sign(q).
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 50; i++ {
		p := Random(6, rng)
		q := Random(6, rng)
		if p.Compose(q).Parity() != p.Parity()*q.Parity() {
			t.Fatal("parity not multiplicative")
		}
	}
}

func TestPower(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := Random(7, rng)
	if !p.Power(0).IsIdentity() {
		t.Fatal("p^0 != id")
	}
	if !p.Power(1).Equal(p) {
		t.Fatal("p^1 != p")
	}
	if !p.Power(2).Equal(p.Compose(p)) {
		t.Fatal("p^2 wrong")
	}
	if !p.Power(-1).Equal(p.Inverse()) {
		t.Fatal("p^-1 wrong")
	}
	ord := int(p.Order().Int64())
	if !p.Power(ord).IsIdentity() {
		t.Fatal("p^order != id")
	}
	if !p.Power(-3).Compose(p.Power(3)).IsIdentity() {
		t.Fatal("p^-3 · p^3 != id")
	}
}

func TestConjugate(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := Random(6, rng)
	q := Random(6, rng)
	c := p.Conjugate(q)
	// Conjugation preserves cycle type, hence order and parity.
	if c.Order().Cmp(p.Order()) != 0 {
		t.Fatal("conjugation changed order")
	}
	if c.Parity() != p.Parity() {
		t.Fatal("conjugation changed parity")
	}
	// q(p(q^{-1}(x))) definition check.
	for x := 0; x < 6; x++ {
		if c[x] != q[p[q.Inverse()[x]]] {
			t.Fatal("conjugate definition violated")
		}
	}
}
