// Package wire implements bit-granular message encoding.
//
// The complexity measure of the paper is the number of *bits* each node
// exchanges with the prover (Section 1), so protocol messages in this module
// are encoded at bit granularity: a vertex identifier costs exactly
// ceil(log2 n) bits, a hash value in [p] costs exactly ceil(log2 p) bits.
// Writer and Reader are the two halves of that codec.
package wire

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// ErrShortMessage is returned by Reader methods when the message ends before
// the requested field. Protocols treat it as a malformed prover message.
var ErrShortMessage = errors.New("wire: message too short")

// WidthFor returns the number of bits needed to represent every value in
// [0, n), i.e. ceil(log2 n). WidthFor(0) and WidthFor(1) return 0: a value
// from a domain of size <= 1 carries no information and costs no bits.
func WidthFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(uint64(n - 1))
}

// WidthForBig is WidthFor for big domains: the number of bits needed to
// represent every value in [0, n).
func WidthForBig(n *big.Int) int {
	if n.IsUint64() {
		u := n.Uint64()
		if u <= 1 {
			return 0
		}
		return bits.Len64(u - 1)
	}
	if n.Sign() <= 0 {
		return 0
	}
	m := new(big.Int).Sub(n, big.NewInt(1))
	return m.BitLen()
}

// Writer accumulates a bit string. The zero value is an empty writer ready
// for use.
type Writer struct {
	data []byte
	nbit int
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// writeBit appends a single bit.
func (w *Writer) writeBit(b bool) {
	if w.nbit%8 == 0 {
		w.data = append(w.data, 0)
	}
	if b {
		w.data[w.nbit/8] |= 1 << (uint(w.nbit) % 8)
	}
	w.nbit++
}

// WriteBool appends one bit.
func (w *Writer) WriteBool(b bool) { w.writeBit(b) }

// writeChunk appends the low width bits of v (width ≤ 64), LSB first,
// filling whole bytes at a time. It produces exactly the bit stream the
// per-bit loop would: bit i of v lands at stream position nbit+i.
func (w *Writer) writeChunk(v uint64, width int) {
	for width > 0 {
		off := w.nbit & 7
		if off == 0 {
			w.data = append(w.data, 0)
		}
		take := 8 - off
		if take > width {
			take = width
		}
		w.data[w.nbit>>3] |= byte(v&(1<<take-1)) << off
		v >>= uint(take)
		w.nbit += take
		width -= take
	}
}

// WriteUint appends v using exactly width bits, least-significant bit first.
// It panics if v does not fit in width bits: callers size fields from the
// domain, so overflow is a programming error.
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("wire: invalid width %d", width))
	}
	if width < 64 && v>>uint(width) != 0 {
		panic(fmt.Sprintf("wire: value %d does not fit in %d bits", v, width))
	}
	w.writeChunk(v, width)
}

// WriteInt appends a non-negative int using exactly width bits.
func (w *Writer) WriteInt(v, width int) {
	if v < 0 {
		panic(fmt.Sprintf("wire: negative value %d", v))
	}
	w.WriteUint(uint64(v), width)
}

// WriteBig appends a non-negative big integer using exactly width bits,
// least-significant bit first. It panics if v is negative or does not fit.
func (w *Writer) WriteBig(v *big.Int, width int) {
	if v.Sign() < 0 {
		panic("wire: negative big value")
	}
	if v.BitLen() > width {
		panic(fmt.Sprintf("wire: big value of %d bits does not fit in %d bits", v.BitLen(), width))
	}
	if v.IsUint64() {
		w.writeChunk(v.Uint64(), width)
		return
	}
	if bits.UintSize == 64 {
		// 64-bit Words align exactly with 64-bit chunks of the stream.
		words := v.Bits()
		for i := 0; i < width; i += 64 {
			var chunk uint64
			if i/64 < len(words) {
				chunk = uint64(words[i/64])
			}
			take := width - i
			if take > 64 {
				take = 64
			}
			w.writeChunk(chunk, take)
		}
		return
	}
	for i := 0; i < width; i++ {
		w.writeBit(v.Bit(i) == 1)
	}
}

// WriteBits appends raw bits from another encoded message.
func (w *Writer) WriteBits(data []byte, nbit int) {
	i := 0
	for ; i+8 <= nbit; i += 8 {
		w.writeChunk(uint64(data[i>>3]), 8)
	}
	if rem := nbit - i; rem > 0 {
		w.writeChunk(uint64(data[i>>3])&(1<<rem-1), rem)
	}
}

// Bytes returns the encoded message. The final byte is zero-padded. The
// returned slice is a copy; the writer can continue to be used.
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.data))
	copy(out, w.data)
	return out
}

// Message packages the encoded bits with their exact bit length, which is
// what the cost accounting charges.
type Message struct {
	Data []byte
	Bits int
}

// Message returns the accumulated bits as a Message.
func (w *Writer) Message() Message {
	return Message{Data: w.Bytes(), Bits: w.nbit}
}

// Empty is the zero-bit message.
var Empty = Message{}

// Reader decodes a bit string produced by Writer.
type Reader struct {
	data []byte
	nbit int
	pos  int
}

// NewReader returns a reader over the given message.
func NewReader(m Message) *Reader {
	return &Reader{data: m.Data, nbit: m.Bits}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// readBit reads a single bit.
func (r *Reader) readBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrShortMessage
	}
	b := r.data[r.pos/8]&(1<<(uint(r.pos)%8)) != 0
	r.pos++
	return b, nil
}

// ReadBool reads one bit.
func (r *Reader) ReadBool() (bool, error) { return r.readBit() }

// readChunk reads width bits (width ≤ 64, availability already checked by
// the caller) a byte at a time, LSB first — the exact inverse of writeChunk.
func (r *Reader) readChunk(width int) uint64 {
	var v uint64
	shift := 0
	for width > 0 {
		off := r.pos & 7
		take := 8 - off
		if take > width {
			take = width
		}
		v |= uint64(r.data[r.pos>>3]>>off&(1<<take-1)) << shift
		shift += take
		r.pos += take
		width -= take
	}
	return v
}

// ReadUint reads a width-bit unsigned value.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("wire: invalid width %d", width)
	}
	if r.pos+width > r.nbit {
		r.pos = r.nbit // consume the tail, as the per-bit loop would
		return 0, ErrShortMessage
	}
	return r.readChunk(width), nil
}

// ReadInt reads a width-bit value as an int.
func (r *Reader) ReadInt(width int) (int, error) {
	v, err := r.ReadUint(width)
	if err != nil {
		return 0, err
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, fmt.Errorf("wire: value %d overflows int", v)
	}
	return int(v), nil
}

// ReadBig reads a width-bit value as a big integer.
func (r *Reader) ReadBig(width int) (*big.Int, error) {
	if width < 0 || r.pos+width > r.nbit {
		r.pos = r.nbit
		return nil, ErrShortMessage
	}
	if width <= 64 {
		return new(big.Int).SetUint64(r.readChunk(width)), nil
	}
	// Wide values (Protocol 2's Θ(n log n)-bit hashes): assemble the bytes
	// big-endian for one SetBytes call instead of width SetBit calls.
	buf := make([]byte, (width+7)/8)
	for j := 0; j < len(buf); j++ { // chunk j carries value bits [8j, 8j+take)
		take := 8
		if j == len(buf)-1 && width%8 != 0 {
			take = width % 8
		}
		buf[len(buf)-1-j] = byte(r.readChunk(take))
	}
	return new(big.Int).SetBytes(buf), nil
}

// Done returns an error unless every bit of the message has been consumed.
// Protocols call it after parsing a prover message so that a prover cannot
// smuggle unread bits (which would make the measured cost unfaithful).
func (r *Reader) Done() error {
	if r.pos != r.nbit {
		return fmt.Errorf("wire: %d unread bits", r.nbit-r.pos)
	}
	return nil
}
