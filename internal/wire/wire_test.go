package wire

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{256, 8}, {257, 9}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := WidthFor(c.n); got != c.want {
			t.Errorf("WidthFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWidthForBig(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := WidthForBig(big.NewInt(c.n)); got != c.want {
			t.Errorf("WidthForBig(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 500) // 2^500
	if got := WidthForBig(huge); got != 500 {
		t.Errorf("WidthForBig(2^500) = %d, want 500", got)
	}
}

func TestRoundTripMixed(t *testing.T) {
	var w Writer
	w.WriteBool(true)
	w.WriteUint(42, 7)
	w.WriteInt(5, 3)
	w.WriteBig(big.NewInt(1234567), 21)
	w.WriteBool(false)
	wantBits := 1 + 7 + 3 + 21 + 1
	if w.Len() != wantBits {
		t.Fatalf("Len = %d, want %d", w.Len(), wantBits)
	}

	r := NewReader(w.Message())
	if b, err := r.ReadBool(); err != nil || !b {
		t.Fatalf("ReadBool = %v, %v", b, err)
	}
	if v, err := r.ReadUint(7); err != nil || v != 42 {
		t.Fatalf("ReadUint = %d, %v", v, err)
	}
	if v, err := r.ReadInt(3); err != nil || v != 5 {
		t.Fatalf("ReadInt = %d, %v", v, err)
	}
	if v, err := r.ReadBig(21); err != nil || v.Int64() != 1234567 {
		t.Fatalf("ReadBig = %v, %v", v, err)
	}
	if b, err := r.ReadBool(); err != nil || b {
		t.Fatalf("ReadBool = %v, %v", b, err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestShortMessage(t *testing.T) {
	var w Writer
	w.WriteUint(3, 2)
	r := NewReader(w.Message())
	if _, err := r.ReadUint(3); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("err = %v, want ErrShortMessage", err)
	}
}

func TestDoneWithUnreadBits(t *testing.T) {
	var w Writer
	w.WriteUint(3, 2)
	r := NewReader(w.Message())
	if err := r.Done(); err == nil {
		t.Fatal("Done with unread bits should error")
	}
}

func TestWriterPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(w *Writer)
	}{
		{"uint overflow", func(w *Writer) { w.WriteUint(8, 3) }},
		{"negative int", func(w *Writer) { w.WriteInt(-1, 8) }},
		{"negative big", func(w *Writer) { w.WriteBig(big.NewInt(-5), 8) }},
		{"big overflow", func(w *Writer) { w.WriteBig(big.NewInt(256), 8) }},
		{"bad width", func(w *Writer) { w.WriteUint(0, 65) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			var w Writer
			tc.f(&w)
		})
	}
}

func TestZeroWidthFields(t *testing.T) {
	var w Writer
	w.WriteUint(0, 0)
	w.WriteBig(new(big.Int), 0)
	if w.Len() != 0 {
		t.Fatalf("zero-width fields cost %d bits", w.Len())
	}
	r := NewReader(w.Message())
	if v, err := r.ReadUint(0); err != nil || v != 0 {
		t.Fatalf("ReadUint(0) = %d, %v", v, err)
	}
}

func TestWriteBits(t *testing.T) {
	var inner Writer
	inner.WriteUint(0x2A, 6)
	m := inner.Message()

	var outer Writer
	outer.WriteBool(true)
	outer.WriteBits(m.Data, m.Bits)
	r := NewReader(outer.Message())
	if _, err := r.ReadBool(); err != nil {
		t.Fatal(err)
	}
	if v, err := r.ReadUint(6); err != nil || v != 0x2A {
		t.Fatalf("nested = %d, %v", v, err)
	}
}

func TestBytesCopy(t *testing.T) {
	var w Writer
	w.WriteUint(0xFF, 8)
	b := w.Bytes()
	b[0] = 0
	if w.Bytes()[0] != 0xFF {
		t.Fatal("Bytes did not copy")
	}
}

func TestReaderWidthErrors(t *testing.T) {
	r := NewReader(Empty)
	if _, err := r.ReadUint(65); err == nil {
		t.Fatal("ReadUint(65) should error")
	}
	if _, err := r.ReadUint(-1); err == nil {
		t.Fatal("ReadUint(-1) should error")
	}
}

func TestQuickUintRoundTrip(t *testing.T) {
	f := func(vals [8]uint64) bool {
		var w Writer
		widths := make([]int, len(vals))
		for i, v := range vals {
			width := 64
			vals[i] = v
			widths[i] = width
			w.WriteUint(v, width)
		}
		r := NewReader(w.Message())
		for i := range vals {
			got, err := r.ReadUint(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return r.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBigRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		width := 1 + rng.Intn(300)
		v := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(width)))
		var w Writer
		w.WriteBig(v, width)
		if w.Len() != width {
			t.Fatalf("WriteBig wrote %d bits, want %d", w.Len(), width)
		}
		got, err := NewReader(w.Message()).ReadBig(width)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(v) != 0 {
			t.Fatalf("big round trip: got %v, want %v", got, v)
		}
	}
}

func TestMessageBitsExact(t *testing.T) {
	// A vertex id in an n-vertex graph must cost exactly ceil(log2 n) bits.
	n := 100
	var w Writer
	w.WriteInt(99, WidthFor(n))
	if w.Len() != 7 {
		t.Fatalf("id cost = %d bits, want 7", w.Len())
	}
}
