package wire

import (
	"math/big"
	"testing"
)

// FuzzReader feeds arbitrary bytes and bit counts into every Reader method:
// none may panic, and all must either succeed or return an error.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0x00}, 3, uint8(1))
	f.Add([]byte{0xFF, 0x12, 0x34}, 20, uint8(7))
	f.Add([]byte{}, 0, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, bits int, width uint8) {
		if bits < 0 || bits > 8*len(data) {
			t.Skip()
		}
		m := Message{Data: data, Bits: bits}
		r := NewReader(m)
		_, _ = r.ReadBool()
		_, _ = r.ReadUint(int(width % 65))
		_, _ = r.ReadInt(int(width % 65))
		_, _ = r.ReadBig(int(width))
		_ = r.Done()
		if r.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}

// FuzzRoundTrip checks that any (value, width) pair that fits round-trips
// exactly through Writer and Reader.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(1))
	f.Add(uint64(12345), uint8(14))
	f.Add(^uint64(0), uint8(64))
	f.Fuzz(func(t *testing.T, v uint64, width uint8) {
		w := int(width%64) + 1
		v &= (1 << uint(w)) - 1
		if w == 64 {
			v = ^uint64(0) // ensure full-width case is exercised too
		}
		var wr Writer
		wr.WriteUint(v, w)
		wr.WriteBig(new(big.Int).SetUint64(v), 64)
		r := NewReader(wr.Message())
		got, err := r.ReadUint(w)
		if err != nil || got != v {
			t.Fatalf("uint round trip: %d/%v", got, err)
		}
		gotBig, err := r.ReadBig(64)
		if err != nil || gotBig.Uint64() != v {
			t.Fatalf("big round trip: %v/%v", gotBig, err)
		}
		if r.Done() != nil {
			t.Fatal("unread bits after round trip")
		}
	})
}
