package hashing

import (
	"math/big"
	"math/rand"
	"testing"

	"dip/internal/bitset"
	"dip/internal/prime"
)

func mustFamily(t *testing.T, m int, p int64) *LinearFamily {
	t.Helper()
	f, err := NewLinearFamily(m, big.NewInt(p))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewLinearFamilyValidation(t *testing.T) {
	if _, err := NewLinearFamily(0, big.NewInt(7)); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := NewLinearFamily(4, big.NewInt(1)); err == nil {
		t.Fatal("p=1 accepted")
	}
}

func TestHashIndicatorKnownValues(t *testing.T) {
	// p=101, i=2: coordinates {0,2} hash to 2^1 + 2^3 = 10.
	f := mustFamily(t, 4, 101)
	got := f.HashIndicator(big.NewInt(2), []int{0, 2})
	if got.Int64() != 10 {
		t.Fatalf("hash = %v, want 10", got)
	}
	// Empty set hashes to 0.
	if got := f.HashIndicator(big.NewInt(2), nil); got.Sign() != 0 {
		t.Fatalf("hash of empty = %v", got)
	}
	// Seed 0 hashes everything to 0.
	if got := f.HashIndicator(new(big.Int), []int{0, 1, 2, 3}); got.Sign() != 0 {
		t.Fatalf("hash with seed 0 = %v", got)
	}
}

func TestHashIndicatorRangePanics(t *testing.T) {
	f := mustFamily(t, 4, 101)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.HashIndicator(big.NewInt(2), []int{4})
}

func TestLinearity(t *testing.T) {
	// Theorem 3.2 (1): h(x + x') = h(x) + h(x') with sums mod p.
	rng := rand.New(rand.NewSource(1))
	p, err := prime.ForCubicWindow(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewLinearFamily(16, p)
	if err != nil {
		t.Fatal(err)
	}
	pv := p.Int64()
	for trial := 0; trial < 50; trial++ {
		seed := f.RandomSeed(rng)
		x := make([]int64, 16)
		y := make([]int64, 16)
		sum := make([]int64, 16)
		for j := range x {
			x[j] = rng.Int63n(pv)
			y[j] = rng.Int63n(pv)
			sum[j] = (x[j] + y[j]) % pv
		}
		lhs := f.HashDense(seed, sum)
		rhs := f.AddMod(f.HashDense(seed, x), f.HashDense(seed, y))
		if lhs.Cmp(rhs) != 0 {
			t.Fatalf("linearity violated: %v != %v", lhs, rhs)
		}
	}
}

func TestRowMatrixDecomposition(t *testing.T) {
	// Hashing a full matrix row-by-row and summing must equal hashing the
	// flattened indicator directly.
	rng := rand.New(rand.NewSource(2))
	n := 5
	p, err := prime.ForCubicWindow(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewLinearFamily(n*n, p)
	if err != nil {
		t.Fatal(err)
	}
	seed := f.RandomSeed(rng)

	rows := make([]*bitset.Set, n)
	var flat []int
	for v := 0; v < n; v++ {
		rows[v] = bitset.New(n)
		for c := 0; c < n; c++ {
			if rng.Intn(2) == 1 {
				rows[v].Add(c)
				flat = append(flat, v*n+c)
			}
		}
	}
	total := new(big.Int)
	for v := 0; v < n; v++ {
		total = f.AddMod(total, f.HashRowMatrix(seed, n, v, rows[v]))
	}
	direct := f.HashIndicator(seed, flat)
	if total.Cmp(direct) != 0 {
		t.Fatalf("row decomposition: %v != %v", total, direct)
	}
}

func TestHashRowMatrixPanics(t *testing.T) {
	f := mustFamily(t, 16, 101)
	cases := []func(){
		func() { f.HashRowMatrix(big.NewInt(1), 5, 0, bitset.New(5)) }, // wrong n
		func() { f.HashRowMatrix(big.NewInt(1), 4, 4, bitset.New(4)) }, // row range
		func() { f.HashRowMatrix(big.NewInt(1), 4, 0, bitset.New(3)) }, // row length
		func() { f.HashDense(big.NewInt(1), make([]int64, 3)) },        // dense length
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}

func TestCollisionBound(t *testing.T) {
	// Theorem 3.2 (2): for x != x', Pr_i[h_i(x)=h_i(x')] <= m/p. With a
	// small prime we can enumerate ALL seeds and count collisions exactly.
	m := 9
	p := int64(97)
	f := mustFamily(t, m, p)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		x := []int{rng.Intn(m)}
		y := []int{rng.Intn(m)}
		for y[0] == x[0] {
			y[0] = rng.Intn(m)
		}
		collisions := 0
		for i := int64(0); i < p; i++ {
			if f.HashIndicator(big.NewInt(i), x).Cmp(f.HashIndicator(big.NewInt(i), y)) == 0 {
				collisions++
			}
		}
		if float64(collisions) > float64(m) {
			t.Fatalf("collisions = %d over p=%d seeds, bound m=%d", collisions, p, m)
		}
	}
}

func TestCollisionRateAtProtocolParameters(t *testing.T) {
	// With p in [10n³,100n³] and m = n², the bound m/p <= 1/(10n) is what
	// gives Protocol 1 soundness 1/3 with room to spare. Sample seeds.
	n := 6
	p, err := prime.ForCubicWindow(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewLinearFamily(n*n, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := []int{0, 7, 13}
	y := []int{0, 7, 14}
	collisions := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		seed := f.RandomSeed(rng)
		if f.HashIndicator(seed, x).Cmp(f.HashIndicator(seed, y)) == 0 {
			collisions++
		}
	}
	// Bound: m/p = 36/2160+ < 0.017; allow generous sampling slack.
	if rate := float64(collisions) / trials; rate > 0.05 {
		t.Fatalf("collision rate %.4f exceeds bound", rate)
	}
}

func TestSeedHelpers(t *testing.T) {
	f := mustFamily(t, 4, 101)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		s := f.RandomSeed(rng)
		if !f.ValidSeed(s) {
			t.Fatalf("RandomSeed produced invalid %v", s)
		}
	}
	if f.ValidSeed(big.NewInt(101)) || f.ValidSeed(big.NewInt(-1)) {
		t.Fatal("ValidSeed accepted out-of-range")
	}
	if f.Size().Int64() != 101 || f.P().Int64() != 101 || f.M() != 4 {
		t.Fatal("accessors wrong")
	}
	// P returns a copy.
	f.P().SetInt64(7)
	if f.P().Int64() != 101 {
		t.Fatal("P aliases internal state")
	}
}

// bigPathFamily returns a family identical to f except that the uint64
// fast path is disabled, forcing every evaluation through big.Int.
func bigPathFamily(t *testing.T, f *LinearFamily) *LinearFamily {
	t.Helper()
	g, err := NewLinearFamily(f.M(), f.P())
	if err != nil {
		t.Fatal(err)
	}
	g.pSmall = 0
	return g
}

// TestSmallModulusFastPathMatchesBig cross-checks the uint64 evaluation
// against the big.Int reference over random seeds, coordinate sets, and
// row matrices. The two paths must agree bit-for-bit: cached reports are
// compared byte-identically against cold runs downstream.
func TestSmallModulusFastPathMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 5, 8, 12} {
		p, err := prime.ForCubicWindow(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewLinearFamily(n*n, p)
		if err != nil {
			t.Fatal(err)
		}
		if fast.pSmall == 0 {
			t.Fatalf("n=%d: cubic-window modulus %v did not take the fast path", n, p)
		}
		slow := bigPathFamily(t, fast)
		for trial := 0; trial < 50; trial++ {
			i := fast.RandomSeed(rng)
			coords := make([]int, 0, n)
			row := bitset.New(n)
			for c := 0; c < n; c++ {
				if rng.Intn(2) == 1 {
					coords = append(coords, rng.Intn(n*n))
					row.Add(c)
				}
			}
			if got, want := fast.HashIndicator(i, coords), slow.HashIndicator(i, coords); got.Cmp(want) != 0 {
				t.Fatalf("n=%d HashIndicator(%v, %v) = %v, big path %v", n, i, coords, got, want)
			}
			r := rng.Intn(n)
			got, want := fast.HashRowMatrix(i, n, r, row), slow.HashRowMatrix(i, n, r, row)
			if got.Cmp(want) != 0 {
				t.Fatalf("n=%d HashRowMatrix(%v, row %d) = %v, big path %v", n, i, r, got, want)
			}
			sum := fast.AddMod(got, want)
			if sum.Cmp(slow.AddMod(got, want)) != 0 {
				t.Fatalf("n=%d AddMod mismatch", n)
			}
		}
		// Out-of-range and huge seeds must fall back, still correct.
		huge := new(big.Int).Add(fast.P(), big.NewInt(5))
		if got, want := fast.HashIndicator(huge, []int{1, 3}), slow.HashIndicator(huge, []int{1, 3}); got.Cmp(want) != 0 {
			t.Fatalf("n=%d out-of-range seed: %v vs %v", n, got, want)
		}
	}
}
