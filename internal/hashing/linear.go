// Package hashing implements the two hash families the paper's protocols
// are built on:
//
//   - the linear family of Theorem 3.2 (used by Protocols 1 and 2 and the
//     DSym protocol) — see LinearFamily;
//   - a concrete ε-almost-pairwise-independent family with a distributable
//     seed (used by the GNI protocol of Section 4) — see GSParams.
package hashing

import (
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/bitset"
)

// LinearFamily is the hash family of Theorem 3.2: for a prime p, the family
// {h_i : i ∈ Z_p} of functions from m-coordinate vectors over Z_p to Z_p,
// with
//
//	h_i(x) = Σ_{j=1..m} x_j · i^j  (mod p).
//
// Properties (Theorem 3.2):
//  1. Linearity: h_i(x + x') = h_i(x) + h_i(x') with coordinatewise sums
//     taken mod p — this is what lets the nodes hash the adjacency matrix
//     by each hashing its own row and summing up the spanning tree;
//  2. Collision: for x ≠ x', Pr_i[h_i(x) = h_i(x')] ≤ m/p, because the
//     difference is a non-zero polynomial of degree ≤ m in i.
type LinearFamily struct {
	m int      // dimension of the hashed vectors
	p *big.Int // prime modulus; |H| = p
}

// NewLinearFamily returns the family for m-dimensional vectors over Z_p.
// p must be a prime larger than 1; primality is the caller's contract
// (moduli come from the prime package) and is not re-checked here.
func NewLinearFamily(m int, p *big.Int) (*LinearFamily, error) {
	if m < 1 {
		return nil, fmt.Errorf("hashing: dimension %d < 1", m)
	}
	if p.Cmp(big.NewInt(2)) < 0 {
		return nil, fmt.Errorf("hashing: modulus %v < 2", p)
	}
	return &LinearFamily{m: m, p: new(big.Int).Set(p)}, nil
}

// M returns the dimension of the hashed vectors.
func (f *LinearFamily) M() int { return f.m }

// P returns (a copy of) the modulus.
func (f *LinearFamily) P() *big.Int { return new(big.Int).Set(f.p) }

// Size returns |H| = p: the number of functions in the family.
func (f *LinearFamily) Size() *big.Int { return f.P() }

// RandomSeed returns a uniformly random hash index i ∈ Z_p.
func (f *LinearFamily) RandomSeed(rng *rand.Rand) *big.Int {
	return new(big.Int).Rand(rng, f.p)
}

// ValidSeed reports whether i is a valid hash index (0 ≤ i < p).
func (f *LinearFamily) ValidSeed(i *big.Int) bool {
	return i.Sign() >= 0 && i.Cmp(f.p) < 0
}

// HashIndicator evaluates h_i on the characteristic vector of the given
// coordinate set: h_i(χ) = Σ_{j ∈ set} i^{j+1} mod p. Coordinates are
// 0-based; coordinate j corresponds to the monomial i^{j+1} so that the
// constant term is never used and h_i(0) = 0.
func (f *LinearFamily) HashIndicator(i *big.Int, coords []int) *big.Int {
	sum := new(big.Int)
	e := new(big.Int)
	for _, j := range coords {
		if j < 0 || j >= f.m {
			panic(fmt.Sprintf("hashing: coordinate %d out of range [0,%d)", j, f.m))
		}
		e.SetInt64(int64(j + 1))
		term := new(big.Int).Exp(i, e, f.p)
		sum.Add(sum, term)
		sum.Mod(sum, f.p)
	}
	return sum
}

// HashRowMatrix evaluates h_i on the row matrix [row, r] of Section 3.1.1 —
// the n×n boolean matrix that is r in the given row and zero elsewhere —
// flattened row-major into an n²-dimensional vector. The family dimension
// must be n². This is the per-node hash both Sym protocols compute locally:
// node v hashes [v, N(v)] and [ρ(v), ρ(N(v))].
func (f *LinearFamily) HashRowMatrix(i *big.Int, n, row int, r *bitset.Set) *big.Int {
	if n*n != f.m {
		panic(fmt.Sprintf("hashing: matrix side %d for family dimension %d", n, f.m))
	}
	if row < 0 || row >= n {
		panic(fmt.Sprintf("hashing: row %d out of range [0,%d)", row, n))
	}
	if r.Len() != n {
		panic(fmt.Sprintf("hashing: row vector of length %d, want %d", r.Len(), n))
	}
	coords := make([]int, 0, r.Count())
	for c := r.NextSet(0); c >= 0; c = r.NextSet(c + 1) {
		coords = append(coords, row*n+c)
	}
	return f.HashIndicator(i, coords)
}

// HashDense evaluates h_i on an arbitrary vector x over Z_p given as int64
// coordinates (used by tests to exercise linearity with coefficients > 1).
func (f *LinearFamily) HashDense(i *big.Int, x []int64) *big.Int {
	if len(x) != f.m {
		panic(fmt.Sprintf("hashing: vector of length %d, want %d", len(x), f.m))
	}
	sum := new(big.Int)
	e := new(big.Int)
	coef := new(big.Int)
	for j, xj := range x {
		if xj == 0 {
			continue
		}
		e.SetInt64(int64(j + 1))
		term := new(big.Int).Exp(i, e, f.p)
		coef.SetInt64(xj)
		term.Mul(term, coef)
		sum.Add(sum, term)
		sum.Mod(sum, f.p)
	}
	return sum
}

// AddMod returns (a + b) mod p for this family's modulus: the tree-sum
// operation used when hash values are aggregated up the spanning tree.
func (f *LinearFamily) AddMod(a, b *big.Int) *big.Int {
	s := new(big.Int).Add(a, b)
	return s.Mod(s, f.p)
}
