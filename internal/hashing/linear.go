// Package hashing implements the two hash families the paper's protocols
// are built on:
//
//   - the linear family of Theorem 3.2 (used by Protocols 1 and 2 and the
//     DSym protocol) — see LinearFamily;
//   - a concrete ε-almost-pairwise-independent family with a distributable
//     seed (used by the GNI protocol of Section 4) — see GSParams.
package hashing

import (
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/bitset"
)

// LinearFamily is the hash family of Theorem 3.2: for a prime p, the family
// {h_i : i ∈ Z_p} of functions from m-coordinate vectors over Z_p to Z_p,
// with
//
//	h_i(x) = Σ_{j=1..m} x_j · i^j  (mod p).
//
// Properties (Theorem 3.2):
//  1. Linearity: h_i(x + x') = h_i(x) + h_i(x') with coordinatewise sums
//     taken mod p — this is what lets the nodes hash the adjacency matrix
//     by each hashing its own row and summing up the spanning tree;
//  2. Collision: for x ≠ x', Pr_i[h_i(x) = h_i(x')] ≤ m/p, because the
//     difference is a non-zero polynomial of degree ≤ m in i.
type LinearFamily struct {
	m int      // dimension of the hashed vectors
	p *big.Int // prime modulus; |H| = p
	// pSmall is the modulus as a uint64 when it is below 2^32 — small
	// enough that products of residues fit in uint64 — and 0 otherwise.
	// Protocol 1's cubic-window modulus (p ≤ 100n³) qualifies for every
	// realistic n, and the evaluation loops below use machine arithmetic
	// for it: the residues are identical to the big.Int path (both compute
	// Σ i^{j+1} mod p over the same ring), only ~20× cheaper and
	// allocation-free per term. Protocol 2's Θ(n log n)-bit modulus never
	// qualifies and always takes the big.Int path.
	pSmall uint64
}

// NewLinearFamily returns the family for m-dimensional vectors over Z_p.
// p must be a prime larger than 1; primality is the caller's contract
// (moduli come from the prime package) and is not re-checked here.
func NewLinearFamily(m int, p *big.Int) (*LinearFamily, error) {
	if m < 1 {
		return nil, fmt.Errorf("hashing: dimension %d < 1", m)
	}
	if p.Cmp(big.NewInt(2)) < 0 {
		return nil, fmt.Errorf("hashing: modulus %v < 2", p)
	}
	f := &LinearFamily{m: m, p: new(big.Int).Set(p)}
	if f.p.IsUint64() {
		if v := f.p.Uint64(); v < 1<<32 {
			f.pSmall = v
		}
	}
	return f, nil
}

// smallSeed reports whether i can take the machine-arithmetic path:
// the modulus is small and 0 ≤ i < p. Out-of-range seeds (adversarial
// callers) fall back to the big.Int path, which reduces them mod p with
// the same result.
func (f *LinearFamily) smallSeed(i *big.Int) (uint64, bool) {
	if f.pSmall == 0 || !i.IsUint64() {
		return 0, false
	}
	v := i.Uint64()
	return v, v < f.pSmall
}

// powmodSmall computes base^exp mod p by square-and-multiply for p < 2^32
// (so every product fits in uint64). base must already be reduced mod p.
func powmodSmall(base, exp, p uint64) uint64 {
	result := uint64(1 % p)
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % p
		}
		base = base * base % p
		exp >>= 1
	}
	return result
}

// M returns the dimension of the hashed vectors.
func (f *LinearFamily) M() int { return f.m }

// P returns (a copy of) the modulus.
func (f *LinearFamily) P() *big.Int { return new(big.Int).Set(f.p) }

// Size returns |H| = p: the number of functions in the family.
func (f *LinearFamily) Size() *big.Int { return f.P() }

// RandomSeed returns a uniformly random hash index i ∈ Z_p.
func (f *LinearFamily) RandomSeed(rng *rand.Rand) *big.Int {
	return new(big.Int).Rand(rng, f.p)
}

// ValidSeed reports whether i is a valid hash index (0 ≤ i < p).
func (f *LinearFamily) ValidSeed(i *big.Int) bool {
	return i.Sign() >= 0 && i.Cmp(f.p) < 0
}

// HashIndicator evaluates h_i on the characteristic vector of the given
// coordinate set: h_i(χ) = Σ_{j ∈ set} i^{j+1} mod p. Coordinates are
// 0-based; coordinate j corresponds to the monomial i^{j+1} so that the
// constant term is never used and h_i(0) = 0.
func (f *LinearFamily) HashIndicator(i *big.Int, coords []int) *big.Int {
	if iv, ok := f.smallSeed(i); ok {
		var sum uint64
		for _, j := range coords {
			if j < 0 || j >= f.m {
				panic(fmt.Sprintf("hashing: coordinate %d out of range [0,%d)", j, f.m))
			}
			sum = (sum + powmodSmall(iv, uint64(j+1), f.pSmall)) % f.pSmall
		}
		return new(big.Int).SetUint64(sum)
	}
	sum := new(big.Int)
	e := new(big.Int)
	for _, j := range coords {
		if j < 0 || j >= f.m {
			panic(fmt.Sprintf("hashing: coordinate %d out of range [0,%d)", j, f.m))
		}
		e.SetInt64(int64(j + 1))
		term := new(big.Int).Exp(i, e, f.p)
		sum.Add(sum, term)
		sum.Mod(sum, f.p)
	}
	return sum
}

// HashRowMatrix evaluates h_i on the row matrix [row, r] of Section 3.1.1 —
// the n×n boolean matrix that is r in the given row and zero elsewhere —
// flattened row-major into an n²-dimensional vector. The family dimension
// must be n². This is the per-node hash both Sym protocols compute locally:
// node v hashes [v, N(v)] and [ρ(v), ρ(N(v))].
func (f *LinearFamily) HashRowMatrix(i *big.Int, n, row int, r *bitset.Set) *big.Int {
	if n*n != f.m {
		panic(fmt.Sprintf("hashing: matrix side %d for family dimension %d", n, f.m))
	}
	if row < 0 || row >= n {
		panic(fmt.Sprintf("hashing: row %d out of range [0,%d)", row, n))
	}
	if r.Len() != n {
		panic(fmt.Sprintf("hashing: row vector of length %d, want %d", r.Len(), n))
	}
	if iv, ok := f.smallSeed(i); ok {
		// Iterate the set bits directly — no coords slice, no big.Int
		// terms. The coordinates row*n+c are in range by the panics above.
		// Successive exponents are close together (gaps of a few within one
		// row), so after the first full powmod each term is the previous
		// power times i^gap.
		var sum, cur, prevExp uint64
		for c := r.NextSet(0); c >= 0; c = r.NextSet(c + 1) {
			e := uint64(row*n + c + 1)
			if prevExp == 0 {
				cur = powmodSmall(iv, e, f.pSmall)
			} else {
				cur = cur * powmodSmall(iv, e-prevExp, f.pSmall) % f.pSmall
			}
			prevExp = e
			sum = (sum + cur) % f.pSmall
		}
		return new(big.Int).SetUint64(sum)
	}
	coords := make([]int, 0, r.Count())
	for c := r.NextSet(0); c >= 0; c = r.NextSet(c + 1) {
		coords = append(coords, row*n+c)
	}
	return f.HashIndicator(i, coords)
}

// HashDense evaluates h_i on an arbitrary vector x over Z_p given as int64
// coordinates (used by tests to exercise linearity with coefficients > 1).
func (f *LinearFamily) HashDense(i *big.Int, x []int64) *big.Int {
	if len(x) != f.m {
		panic(fmt.Sprintf("hashing: vector of length %d, want %d", len(x), f.m))
	}
	sum := new(big.Int)
	e := new(big.Int)
	coef := new(big.Int)
	for j, xj := range x {
		if xj == 0 {
			continue
		}
		e.SetInt64(int64(j + 1))
		term := new(big.Int).Exp(i, e, f.p)
		coef.SetInt64(xj)
		term.Mul(term, coef)
		sum.Add(sum, term)
		sum.Mod(sum, f.p)
	}
	return sum
}

// AddMod returns (a + b) mod p for this family's modulus: the tree-sum
// operation used when hash values are aggregated up the spanning tree.
func (f *LinearFamily) AddMod(a, b *big.Int) *big.Int {
	if av, ok := f.smallSeed(a); ok {
		if bv, ok := f.smallSeed(b); ok {
			// Both below p < 2^32, so the sum cannot overflow.
			return new(big.Int).SetUint64((av + bv) % f.pSmall)
		}
	}
	s := new(big.Int).Add(a, b)
	return s.Mod(s, f.p)
}

// AddModInto is AddMod for accumulation chains: it folds b into dst, which
// the caller must own exclusively (a fresh hash value, not a decoded message
// field someone else still reads). Reusing dst's storage keeps tree-sum
// loops allocation-free on the small-modulus path.
func (f *LinearFamily) AddModInto(dst, b *big.Int) *big.Int {
	if av, ok := f.smallSeed(dst); ok {
		if bv, ok := f.smallSeed(b); ok {
			return dst.SetUint64((av + bv) % f.pSmall)
		}
	}
	dst.Add(dst, b)
	return dst.Mod(dst, f.p)
}
