package hashing

import (
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/prime"
	"dip/internal/wire"
)

// GSParams holds the parameters of our concrete ε-almost-pairwise-
// independent hash family for the distributed Goldwasser–Sipser protocol
// (Section 4 of the paper).
//
// The paper requires a hash from {0,1}^{n²} (adjacency matrices) to a range
// whose size is proportional to n!, such that (a) the seed is short enough
// to be contributed in small per-node pieces, (b) the hash is computable up
// a spanning tree from per-node row contributions, and (c) a claimed hash
// value is verifiable by the nodes. The paper defers its construction to the
// full version; ours is:
//
//	f_α(x) = Σ_{i} x_i · α^{i+1}            (mod q)   ε-almost-universal
//	h(x)   = ((s·f_α(x) + t) mod q) mod p             range [p]
//
// with p prime ≈ mult·n! and q prime in [100·n⁴·p, 200·n⁴·p]. The seed
// (α, s, t) plus the Goldwasser–Sipser target y is Θ(n log n) bits in total
// and is assembled from per-node bit slices (SeedBits / SliceWidth), so each
// node contributes — and later re-verifies in the prover's echo — its own
// small part, which is exactly the distribution property the paper needs.
//
// Properties (shown in DESIGN.md §4.2 and checked empirically in tests):
//
//	Pr[h(x) = y]                ∈ (1 ± p/q) / p
//	Pr[h(x)=y ∧ h(x')=y']      ≤ (1 + O(n²·p/q + p/q)) / p²   for x ≠ x'
//
// With q ≥ 100·n⁴·p the relative distortion ε is O(1/n²).
type GSParams struct {
	n int      // number of graph vertices
	m int      // hashed-vector dimension: n²
	p *big.Int // range prime, ≈ mult·n!
	q *big.Int // field prime, ∈ [100·n⁴·p, 200·n⁴·p]
}

// NewGSParams derives hash parameters for graphs on n vertices. The range
// prime is drawn from [mult·n!, 2·mult·n!]; the Goldwasser–Sipser analysis
// wants the yes-instance set size 2·n! to be a constant fraction of the
// range, so mult = 4 (range ≈ 4–8·n!) is the standard choice.
func NewGSParams(n int, mult int64, seed int64) (*GSParams, error) {
	return NewGSParamsDim(n, 1, mult, seed)
}

// NewGSParamsDim is NewGSParams for a hashed-vector dimension of
// dimFactor·n² coordinates. The general (automorphism-compensated) GNI
// protocol hashes pairs (adjacency matrix, automorphism indicator) and
// needs dimFactor = 2.
func NewGSParamsDim(n, dimFactor int, mult, seed int64) (*GSParams, error) {
	if n < 2 {
		return nil, fmt.Errorf("hashing: GS params need n >= 2, got %d", n)
	}
	if dimFactor < 1 || dimFactor > 4 {
		return nil, fmt.Errorf("hashing: dimension factor %d outside [1,4]", dimFactor)
	}
	p, err := prime.NearFactorial(n, mult, seed)
	if err != nil {
		return nil, fmt.Errorf("range prime: %w", err)
	}
	n4 := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(4), nil)
	lo := new(big.Int).Mul(big.NewInt(100*int64(dimFactor)), new(big.Int).Mul(n4, p))
	hi := new(big.Int).Mul(big.NewInt(2), lo)
	q, err := prime.InWindow(lo, hi, seed+1)
	if err != nil {
		return nil, fmt.Errorf("field prime: %w", err)
	}
	return &GSParams{n: n, m: dimFactor * n * n, p: p, q: q}, nil
}

// N returns the number of graph vertices the parameters were derived for.
func (g *GSParams) N() int { return g.n }

// M returns the hashed-vector dimension (dimFactor·n²).
func (g *GSParams) M() int { return g.m }

// P returns (a copy of) the range prime.
func (g *GSParams) P() *big.Int { return new(big.Int).Set(g.p) }

// Q returns (a copy of) the field prime.
func (g *GSParams) Q() *big.Int { return new(big.Int).Set(g.q) }

// oversample is the number of extra random bits drawn per field element so
// that reduction mod q (or mod p) has negligible bias (≤ 2^-64).
const oversample = 64

// fieldBits is the number of raw random bits backing one element of Z_q.
func (g *GSParams) fieldBits() int { return wire.WidthForBig(g.q) + oversample }

// rangeBits is the number of raw random bits backing the target y ∈ Z_p.
func (g *GSParams) rangeBits() int { return wire.WidthForBig(g.p) + oversample }

// SeedBits returns the total number of raw random bits that define a seed:
// three field elements (α, s, t) and one range element (the target y).
func (g *GSParams) SeedBits() int { return 3*g.fieldBits() + g.rangeBits() }

// SliceWidth returns the number of seed bits each of the n nodes
// contributes: ceil(SeedBits / n). The last node's slice is zero-padded.
func (g *GSParams) SliceWidth() int {
	return (g.SeedBits() + g.n - 1) / g.n
}

// GSSeed is an assembled seed: the hash coefficients and the
// Goldwasser–Sipser target.
type GSSeed struct {
	Alpha, S, T *big.Int // elements of Z_q
	Y           *big.Int // target in Z_p
}

// SeedFromSlices assembles a seed from the n per-node bit slices (each
// SliceWidth bits wide, node 0 first). The concatenated bits are split into
// the four raw fields and reduced into the respective moduli.
func (g *GSParams) SeedFromSlices(slices []wire.Message) (*GSSeed, error) {
	if len(slices) != g.n {
		return nil, fmt.Errorf("hashing: %d seed slices, want %d", len(slices), g.n)
	}
	var all wire.Writer
	for i, s := range slices {
		if s.Bits != g.SliceWidth() {
			return nil, fmt.Errorf("hashing: slice %d has %d bits, want %d", i, s.Bits, g.SliceWidth())
		}
		all.WriteBits(s.Data, s.Bits)
	}
	r := wire.NewReader(all.Message())
	read := func(width int, mod *big.Int) (*big.Int, error) {
		raw, err := r.ReadBig(width)
		if err != nil {
			return nil, err
		}
		return raw.Mod(raw, mod), nil
	}
	var seed GSSeed
	var err error
	if seed.Alpha, err = read(g.fieldBits(), g.q); err != nil {
		return nil, err
	}
	if seed.S, err = read(g.fieldBits(), g.q); err != nil {
		return nil, err
	}
	if seed.T, err = read(g.fieldBits(), g.q); err != nil {
		return nil, err
	}
	if seed.Y, err = read(g.rangeBits(), g.p); err != nil {
		return nil, err
	}
	return &seed, nil
}

// RandomSlices draws the n per-node seed slices uniformly at random, as the
// Arthur round of the GNI protocol does (one slice per node).
func (g *GSParams) RandomSlices(rng *rand.Rand) []wire.Message {
	out := make([]wire.Message, g.n)
	for i := range out {
		var w wire.Writer
		for b := 0; b < g.SliceWidth(); b++ {
			w.WriteBool(rng.Intn(2) == 1)
		}
		out[i] = w.Message()
	}
	return out
}

// PowerTable precomputes α^0 .. α^{m} mod q so that provers enumerating many
// permutations can evaluate row terms without repeated modular
// exponentiation.
type PowerTable struct {
	q      *big.Int
	powers []*big.Int
}

// Powers returns a table of α^0..α^{m} mod q, where m = n² is the largest
// exponent RowTerm uses.
func (g *GSParams) Powers(alpha *big.Int) *PowerTable {
	t := &PowerTable{q: g.q, powers: make([]*big.Int, g.m+1)}
	t.powers[0] = big.NewInt(1)
	for i := 1; i <= g.m; i++ {
		t.powers[i] = new(big.Int).Mul(t.powers[i-1], alpha)
		t.powers[i].Mod(t.powers[i], g.q)
	}
	return t
}

// RowTerm evaluates node v's contribution to f_α: the sum of α^{row·n+c+1}
// over the set columns c of the (row-indexed) matrix row. With a power
// table it costs one modular addition per set column. Rows beyond n-1
// address the extra blocks of a widened (dimFactor > 1) domain.
func (g *GSParams) RowTerm(t *PowerTable, row int, cols []int) *big.Int {
	if row < 0 || (row+1)*g.n > g.m {
		panic(fmt.Sprintf("hashing: row %d out of range [0,%d)", row, g.m/g.n))
	}
	sum := new(big.Int)
	for _, c := range cols {
		if c < 0 || c >= g.n {
			panic(fmt.Sprintf("hashing: column %d out of range [0,%d)", c, g.n))
		}
		idx := row*g.n + c + 1
		if idx >= len(t.powers) {
			panic("hashing: power table too small")
		}
		sum.Add(sum, t.powers[idx])
	}
	return sum.Mod(sum, g.q)
}

// RowTermSlow is RowTerm without a power table, using modular
// exponentiation per column; it is what a single node computes once per
// protocol run.
func (g *GSParams) RowTermSlow(alpha *big.Int, row int, cols []int) *big.Int {
	if row < 0 || (row+1)*g.n > g.m {
		panic(fmt.Sprintf("hashing: row %d out of range [0,%d)", row, g.m/g.n))
	}
	sum := new(big.Int)
	e := new(big.Int)
	for _, c := range cols {
		if c < 0 || c >= g.n {
			panic(fmt.Sprintf("hashing: column %d out of range [0,%d)", c, g.n))
		}
		e.SetInt64(int64(row*g.n + c + 1))
		sum.Add(sum, new(big.Int).Exp(alpha, e, g.q))
		sum.Mod(sum, g.q)
	}
	return sum
}

// AddModQ returns (a + b) mod q: the tree-aggregation step for partial f_α
// sums.
func (g *GSParams) AddModQ(a, b *big.Int) *big.Int {
	s := new(big.Int).Add(a, b)
	return s.Mod(s, g.q)
}

// Finish applies the outer pairwise-independent map and the range
// reduction: ((s·fsum + t) mod q) mod p.
func (g *GSParams) Finish(seed *GSSeed, fsum *big.Int) *big.Int {
	z := new(big.Int).Mul(seed.S, fsum)
	z.Add(z, seed.T)
	z.Mod(z, g.q)
	return z.Mod(z, g.p)
}

// SeedFromBits assembles a seed directly from a concatenated bit string of
// at least SeedBits bits (extra bits are ignored). Protocols whose hash
// domain size differs from the network size use this instead of
// SeedFromSlices and manage the per-node slicing themselves.
func (g *GSParams) SeedFromBits(m wire.Message) (*GSSeed, error) {
	if m.Bits < g.SeedBits() {
		return nil, fmt.Errorf("hashing: %d seed bits, need %d", m.Bits, g.SeedBits())
	}
	r := wire.NewReader(m)
	read := func(width int, mod *big.Int) (*big.Int, error) {
		raw, err := r.ReadBig(width)
		if err != nil {
			return nil, err
		}
		return raw.Mod(raw, mod), nil
	}
	var seed GSSeed
	var err error
	if seed.Alpha, err = read(g.fieldBits(), g.q); err != nil {
		return nil, err
	}
	if seed.S, err = read(g.fieldBits(), g.q); err != nil {
		return nil, err
	}
	if seed.T, err = read(g.fieldBits(), g.q); err != nil {
		return nil, err
	}
	if seed.Y, err = read(g.rangeBits(), g.p); err != nil {
		return nil, err
	}
	return &seed, nil
}
