package hashing

import (
	"math/big"
	"math/rand"
	"testing"

	"dip/internal/prime"
	"dip/internal/wire"
)

func mustGS(t testing.TB, n int) *GSParams {
	t.Helper()
	g, err := NewGSParams(n, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGSParams(t *testing.T) {
	if _, err := NewGSParams(1, 4, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	g := mustGS(t, 6)
	f := prime.Factorial(6)
	lo := new(big.Int).Mul(big.NewInt(4), f)
	hi := new(big.Int).Mul(big.NewInt(8), f)
	if g.P().Cmp(lo) < 0 || g.P().Cmp(hi) > 0 {
		t.Fatalf("P = %v outside [4·6!, 8·6!]", g.P())
	}
	// q in [100 n^4 p, 400 n^4 p] (window is [lo, 2lo]).
	n4p := new(big.Int).Mul(big.NewInt(6*6*6*6), g.P())
	qlo := new(big.Int).Mul(big.NewInt(100), n4p)
	qhi := new(big.Int).Mul(big.NewInt(200), n4p)
	if g.Q().Cmp(qlo) < 0 || g.Q().Cmp(qhi) > 0 {
		t.Fatalf("Q = %v outside window", g.Q())
	}
	if g.N() != 6 {
		t.Fatal("N wrong")
	}
}

func TestSeedBitsScaling(t *testing.T) {
	// Seed must be Θ(n log n) bits: check growth and sanity.
	g6, g8 := mustGS(t, 6), mustGS(t, 8)
	if g8.SeedBits() <= g6.SeedBits() {
		t.Fatal("seed bits not growing")
	}
	if g6.SliceWidth()*g6.N() < g6.SeedBits() {
		t.Fatal("slices do not cover the seed")
	}
}

func TestSeedFromSlicesRoundTrip(t *testing.T) {
	g := mustGS(t, 6)
	rng := rand.New(rand.NewSource(2))
	slices := g.RandomSlices(rng)
	if len(slices) != 6 {
		t.Fatalf("%d slices", len(slices))
	}
	seed, err := g.SeedFromSlices(slices)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []*big.Int{seed.Alpha, seed.S, seed.T} {
		if v.Sign() < 0 || v.Cmp(g.Q()) >= 0 {
			t.Fatalf("field element %v out of range", v)
		}
	}
	if seed.Y.Sign() < 0 || seed.Y.Cmp(g.P()) >= 0 {
		t.Fatalf("target %v out of range", seed.Y)
	}
	// Determinism: same slices, same seed.
	seed2, err := g.SeedFromSlices(slices)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Alpha.Cmp(seed2.Alpha) != 0 || seed.Y.Cmp(seed2.Y) != 0 {
		t.Fatal("SeedFromSlices not deterministic")
	}
}

func TestSeedFromSlicesValidation(t *testing.T) {
	g := mustGS(t, 6)
	rng := rand.New(rand.NewSource(3))
	slices := g.RandomSlices(rng)
	if _, err := g.SeedFromSlices(slices[:5]); err == nil {
		t.Fatal("short slice list accepted")
	}
	var w wire.Writer
	w.WriteBool(true)
	slices[2] = w.Message()
	if _, err := g.SeedFromSlices(slices); err == nil {
		t.Fatal("wrong-width slice accepted")
	}
}

func TestRowTermMatchesSlow(t *testing.T) {
	g := mustGS(t, 6)
	rng := rand.New(rand.NewSource(4))
	seed, err := g.SeedFromSlices(g.RandomSlices(rng))
	if err != nil {
		t.Fatal(err)
	}
	table := g.Powers(seed.Alpha)
	for trial := 0; trial < 30; trial++ {
		row := rng.Intn(6)
		var cols []int
		for c := 0; c < 6; c++ {
			if rng.Intn(2) == 1 {
				cols = append(cols, c)
			}
		}
		fast := g.RowTerm(table, row, cols)
		slow := g.RowTermSlow(seed.Alpha, row, cols)
		if fast.Cmp(slow) != 0 {
			t.Fatalf("RowTerm mismatch: %v vs %v", fast, slow)
		}
	}
}

func TestRowTermPanics(t *testing.T) {
	g := mustGS(t, 4)
	table := g.Powers(big.NewInt(3))
	cases := []func(){
		func() { g.RowTerm(table, 4, nil) },
		func() { g.RowTerm(table, 0, []int{4}) },
		func() { g.RowTermSlow(big.NewInt(3), 0, []int{-1}) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			c()
		}()
	}
}

func TestFinishAndAddModQ(t *testing.T) {
	g := mustGS(t, 4)
	seed := &GSSeed{Alpha: big.NewInt(2), S: big.NewInt(3), T: big.NewInt(5), Y: big.NewInt(0)}
	f := big.NewInt(10)
	// (3*10+5) mod q mod p = 35 mod p (q,p >> 35).
	if got := g.Finish(seed, f); got.Int64() != 35 {
		t.Fatalf("Finish = %v, want 35", got)
	}
	a := new(big.Int).Sub(g.Q(), big.NewInt(1))
	if got := g.AddModQ(a, big.NewInt(2)); got.Int64() != 1 {
		t.Fatalf("AddModQ wraparound = %v, want 1", got)
	}
}

func TestUniformityOfRange(t *testing.T) {
	// Pr[h(x) = y] must be close to 1/p. Estimate by hashing a fixed input
	// under many random seeds and chi-square-style checking bucket counts.
	// Use a tiny n so p is small enough for buckets to fill.
	g, err := NewGSParams(3, 4, 1) // p ≈ 24..48
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	p := int(g.P().Int64())
	counts := make([]int, p)
	cols := []int{0, 2}
	const trials = 20000
	for i := 0; i < trials; i++ {
		seed, err := g.SeedFromSlices(g.RandomSlices(rng))
		if err != nil {
			t.Fatal(err)
		}
		fsum := g.RowTermSlow(seed.Alpha, 1, cols)
		h := g.Finish(seed, fsum)
		counts[h.Int64()]++
	}
	want := float64(trials) / float64(p)
	for y, c := range counts {
		if float64(c) < want*0.6 || float64(c) > want*1.4 {
			t.Fatalf("bucket %d has %d hits, want about %.0f", y, c, want)
		}
	}
}

func TestPairwiseCollisionRate(t *testing.T) {
	// For x ≠ x', Pr[h(x) = h(x')] should be about 1/p: sample seeds and
	// compare two different rows.
	g, err := NewGSParams(3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	p := float64(g.P().Int64())
	collisions := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		seed, err := g.SeedFromSlices(g.RandomSlices(rng))
		if err != nil {
			t.Fatal(err)
		}
		h1 := g.Finish(seed, g.RowTermSlow(seed.Alpha, 0, []int{0, 1}))
		h2 := g.Finish(seed, g.RowTermSlow(seed.Alpha, 0, []int{0, 2}))
		if h1.Cmp(h2) == 0 {
			collisions++
		}
	}
	rate := float64(collisions) / trials
	if rate > 2.0/p {
		t.Fatalf("pairwise collision rate %.5f, want about 1/p = %.5f", rate, 1/p)
	}
}

func TestSeedFromBitsMatchesSlices(t *testing.T) {
	g := mustGS(t, 6)
	rng := rand.New(rand.NewSource(9))
	slices := g.RandomSlices(rng)
	fromSlices, err := g.SeedFromSlices(slices)
	if err != nil {
		t.Fatal(err)
	}
	var all wire.Writer
	for _, s := range slices {
		all.WriteBits(s.Data, s.Bits)
	}
	fromBits, err := g.SeedFromBits(all.Message())
	if err != nil {
		t.Fatal(err)
	}
	if fromSlices.Alpha.Cmp(fromBits.Alpha) != 0 || fromSlices.Y.Cmp(fromBits.Y) != 0 ||
		fromSlices.S.Cmp(fromBits.S) != 0 || fromSlices.T.Cmp(fromBits.T) != 0 {
		t.Fatal("SeedFromBits disagrees with SeedFromSlices")
	}
	// Too few bits errors.
	var short wire.Writer
	short.WriteUint(1, 10)
	if _, err := g.SeedFromBits(short.Message()); err == nil {
		t.Fatal("short seed accepted")
	}
}
