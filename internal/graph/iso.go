package graph

import (
	"sort"
	"strconv"
	"strings"

	"dip/internal/perm"
)

// refineColors runs 1-dimensional Weisfeiler-Leman color refinement on the
// disjoint union of the given graphs, starting from the uniform coloring,
// and returns one stable coloring per graph. Colors are comparable across
// the graphs: two vertices (possibly in different graphs) get the same color
// iff refinement cannot distinguish them.
func refineColors(graphs ...*Graph) [][]int {
	colors := make([][]int, len(graphs))
	total := 0
	for i, g := range graphs {
		colors[i] = make([]int, g.N())
		total += g.N()
	}
	numColors := 1
	for round := 0; round < total; round++ {
		// Build signature -> new color, assigning ids in first-seen order of
		// sorted signature strings so the naming is canonical.
		type sig struct {
			graph, vertex int
			key           string
		}
		sigs := make([]sig, 0, total)
		for gi, g := range graphs {
			for v := 0; v < g.N(); v++ {
				neigh := make([]int, 0, g.Degree(v))
				for _, u := range g.Neighbors(v) {
					neigh = append(neigh, colors[gi][u])
				}
				sort.Ints(neigh)
				var b strings.Builder
				b.WriteString(strconv.Itoa(colors[gi][v]))
				for _, c := range neigh {
					b.WriteByte(',')
					b.WriteString(strconv.Itoa(c))
				}
				sigs = append(sigs, sig{gi, v, b.String()})
			}
		}
		keys := make([]string, 0, len(sigs))
		seen := make(map[string]int, len(sigs))
		for _, s := range sigs {
			if _, ok := seen[s.key]; !ok {
				seen[s.key] = 0
				keys = append(keys, s.key)
			}
		}
		sort.Strings(keys)
		for i, k := range keys {
			seen[k] = i
		}
		for _, s := range sigs {
			colors[s.graph][s.vertex] = seen[s.key]
		}
		if len(keys) == numColors {
			break // stable
		}
		numColors = len(keys)
	}
	return colors
}

// FindIsomorphism returns an isomorphism from g to h (a permutation p with
// p(g) = h), or nil if the graphs are not isomorphic.
func FindIsomorphism(g, h *Graph) perm.Perm {
	return searchIsomorphism(g, h, false)
}

// AreIsomorphic reports whether g and h are isomorphic.
func AreIsomorphic(g, h *Graph) bool {
	return FindIsomorphism(g, h) != nil
}

// FindNontrivialAutomorphism returns a non-trivial automorphism of g, or nil
// if g is asymmetric (rigid). This is the search procedure the honest
// Protocol 1 prover runs to compute its commitment ρ.
func FindNontrivialAutomorphism(g *Graph) perm.Perm {
	return searchIsomorphism(g, g, true)
}

// IsAsymmetric reports whether g has no non-trivial automorphism.
func IsAsymmetric(g *Graph) bool {
	return FindNontrivialAutomorphism(g) == nil
}

// searchIsomorphism finds a bijection p with p(g) = h by backtracking over
// WL color classes. If excludeIdentity is set (used with h = g), the
// identity mapping is not accepted.
func searchIsomorphism(g, h *Graph, excludeIdentity bool) perm.Perm {
	n := g.N()
	if h.N() != n {
		return nil
	}
	if n == 0 {
		if excludeIdentity {
			return nil
		}
		return perm.Perm{}
	}
	if g.NumEdges() != h.NumEdges() {
		return nil
	}
	colors := refineColors(g, h)
	cg, ch := colors[0], colors[1]

	// Color class sizes must match between the graphs.
	countG := map[int]int{}
	countH := map[int]int{}
	for _, c := range cg {
		countG[c]++
	}
	for _, c := range ch {
		countH[c]++
	}
	if len(countG) != len(countH) {
		return nil
	}
	for c, k := range countG {
		if countH[c] != k {
			return nil
		}
	}

	// Candidate lists: h-vertices per color.
	candidates := map[int][]int{}
	for w := 0; w < n; w++ {
		candidates[ch[w]] = append(candidates[ch[w]], w)
	}

	// Map g-vertices in order of ascending candidate-class size, so the most
	// constrained vertices are decided first; ties broken by descending
	// degree to maximize early adjacency constraints.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		sa, sb := countG[cg[va]], countG[cg[vb]]
		if sa != sb {
			return sa < sb
		}
		da, db := g.Degree(va), g.Degree(vb)
		if da != db {
			return da > db
		}
		return va < vb
	})

	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, n)

	var backtrack func(depth int) bool
	backtrack = func(depth int) bool {
		if depth == n {
			if excludeIdentity {
				id := true
				for v, w := range mapping {
					if v != w {
						id = false
						break
					}
				}
				if id {
					return false
				}
			}
			return true
		}
		v := order[depth]
		for _, w := range candidates[cg[v]] {
			if used[w] {
				continue
			}
			ok := true
			for d := 0; d < depth; d++ {
				u := order[d]
				if g.HasEdge(v, u) != h.HasEdge(w, mapping[u]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[v] = w
			used[w] = true
			if backtrack(depth + 1) {
				return true
			}
			mapping[v] = -1
			used[w] = false
		}
		return false
	}

	if !backtrack(0) {
		return nil
	}
	p, err := perm.FromSlice(mapping)
	if err != nil {
		// Cannot happen: the search maintains a bijection.
		return nil
	}
	return p
}

// CanonicalKey returns a string that is identical for isomorphic graphs and
// distinct for non-isomorphic ones, computed by brute force over all n!
// relabelings. It is intended for the small graphs (n <= 8) of the
// lower-bound family; larger inputs are rejected by panic to avoid
// accidental factorial blowups.
func CanonicalKey(g *Graph) string {
	n := g.N()
	if n > 8 {
		panic("graph: CanonicalKey is brute-force; n > 8 not supported")
	}
	p := perm.Identity(n)
	best := ""
	for {
		key := g.Relabel(p).AdjacencyBits().String()
		if best == "" || key < best {
			best = key
		}
		if !p.NextLex() {
			break
		}
	}
	return best
}

// AllAutomorphisms returns every automorphism of g (including the identity)
// by brute force. Like CanonicalKey it is meant for small graphs (n <= 8).
func AllAutomorphisms(g *Graph) []perm.Perm {
	n := g.N()
	if n > 8 {
		panic("graph: AllAutomorphisms is brute-force; n > 8 not supported")
	}
	var out []perm.Perm
	p := perm.Identity(n)
	for {
		if g.IsAutomorphism(p) {
			out = append(out, p.Clone())
		}
		if !p.NextLex() {
			break
		}
	}
	return out
}
