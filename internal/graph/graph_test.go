package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"dip/internal/perm"
)

func TestNewAndEdges(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.NumEdges() != 0 {
		t.Fatal("empty graph wrong")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 4)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("phantom edge")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if got := g.Degree(1); got != 2 {
		t.Fatalf("Degree(1) = %d", got)
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("edge not removed")
	}
	// Removing a non-edge is a no-op.
	g.RemoveEdge(0, 1)
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"negative n", func() { New(-1) }},
		{"self loop", func() { New(3).AddEdge(1, 1) }},
		{"edge out of range", func() { New(3).AddEdge(0, 3) }},
		{"relabel size", func() { New(3).Relabel(perm.Identity(4)) }},
		{"cycle too small", func() { Cycle(2) }},
		{"doubled empty", func() { Doubled(New(0), 0) }},
		{"doubled anchor", func() { Doubled(Path(3), 5) }},
		{"dumbbell mismatch", func() { LowerBoundDumbbell(Path(3), Path(4)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestNeighborsAndRows(t *testing.T) {
	g := Path(4)
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	open := g.OpenRow(1)
	if open.Contains(1) {
		t.Fatal("open row contains self")
	}
	closed := g.ClosedRow(1)
	if !closed.Contains(1) || !closed.Contains(0) || !closed.Contains(2) {
		t.Fatal("closed row wrong")
	}
	// Rows are copies.
	open.Add(3)
	if g.HasEdge(1, 3) {
		t.Fatal("OpenRow aliases internal state")
	}
}

func TestGenerators(t *testing.T) {
	if g := Path(5); g.NumEdges() != 4 || !g.IsConnected() {
		t.Fatal("Path wrong")
	}
	if g := Cycle(5); g.NumEdges() != 5 || g.Degree(0) != 2 {
		t.Fatal("Cycle wrong")
	}
	if g := Complete(5); g.NumEdges() != 10 {
		t.Fatal("Complete wrong")
	}
	if g := Star(5); g.NumEdges() != 4 || g.Degree(0) != 4 {
		t.Fatal("Star wrong")
	}
}

func TestGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNP(50, 0.0, rng)
	if g.NumEdges() != 0 {
		t.Fatal("GNP(0) has edges")
	}
	g = GNP(50, 1.0, rng)
	if g.NumEdges() != 50*49/2 {
		t.Fatal("GNP(1) not complete")
	}
	g = GNP(100, 0.5, rng)
	// Expected 2475 edges; allow wide slack.
	if e := g.NumEdges(); e < 2000 || e > 3000 {
		t.Fatalf("GNP(0.5) edges = %d", e)
	}
	if !ConnectedGNP(20, 0.5, rng).IsConnected() {
		t.Fatal("ConnectedGNP not connected")
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 10, 40} {
		g := RandomTree(n, rng)
		if g.N() != n {
			t.Fatalf("n=%d: wrong size", n)
		}
		if n > 0 && (g.NumEdges() != n-1 || !g.IsConnected()) {
			t.Fatalf("n=%d: not a tree: %d edges, connected=%v", n, g.NumEdges(), g.IsConnected())
		}
	}
}

func TestConnectivity(t *testing.T) {
	g := New(4)
	if g.IsConnected() {
		t.Fatal("edgeless graph on 4 vertices connected")
	}
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.IsConnected() {
		t.Fatal("two components connected")
	}
	g.AddEdge(1, 2)
	if !g.IsConnected() {
		t.Fatal("path not connected")
	}
	if !New(1).IsConnected() || !New(0).IsConnected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestBFS(t *testing.T) {
	g := Path(5)
	d := g.BFSDistances(0, -1)
	if !reflect.DeepEqual(d, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("distances = %v", d)
	}
	parent, dist, err := g.BFSTree(2)
	if err != nil {
		t.Fatal(err)
	}
	if parent[2] != 2 || dist[2] != 0 {
		t.Fatal("root wrong")
	}
	if parent[0] != 1 || dist[0] != 2 {
		t.Fatalf("parent[0]=%d dist[0]=%d", parent[0], dist[0])
	}
	// Disconnected graph: error.
	if _, _, err := New(3).BFSTree(0); err == nil {
		t.Fatal("BFSTree on disconnected graph should error")
	}
}

func TestRelabelAndAutomorphism(t *testing.T) {
	g := Path(4)
	rot, _ := perm.FromSlice([]int{3, 2, 1, 0}) // reversal: automorphism of the path
	if !g.IsAutomorphism(rot) {
		t.Fatal("path reversal not automorphism")
	}
	if !g.Relabel(rot).Equal(g) {
		t.Fatal("relabel by automorphism changed graph")
	}
	shift, _ := perm.FromSlice([]int{1, 2, 3, 0})
	if g.IsAutomorphism(shift) {
		t.Fatal("shift is not an automorphism of the path")
	}
	if g.IsAutomorphism([]int{0, 0, 1, 2}) {
		t.Fatal("non-bijection accepted as automorphism")
	}
}

func TestAdjacencyBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		g := GNP(9, 0.4, rng)
		h, err := FromAdjacencyBits(9, g.AdjacencyBits())
		if err != nil {
			t.Fatal(err)
		}
		if !h.Equal(g) {
			t.Fatal("adjacency bits round trip failed")
		}
	}
	if _, err := FromAdjacencyBits(5, Path(4).AdjacencyBits()); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDoubled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := ConnectedGNP(7, 0.5, rng)
	g := Doubled(base, 0)
	if g.N() != 16 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("doubled graph disconnected")
	}
	auto := DoubledAutomorphism(7)
	if !g.IsAutomorphism(auto) {
		t.Fatal("doubled automorphism rejected")
	}
	if auto.IsIdentity() {
		t.Fatal("doubled automorphism trivial")
	}
}

func TestDSymGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := ConnectedGNP(6, 0.5, rng)
	for _, r := range []int{0, 1, 3} {
		g := DSymGraph(f, r)
		if g.N() != 2*6+2*r+1 {
			t.Fatalf("r=%d: N = %d", r, g.N())
		}
		if !IsDSym(g, 6, r) {
			t.Fatalf("r=%d: constructed graph not in DSym", r)
		}
		sigma := DSymAutomorphism(6, r)
		if !g.IsAutomorphism(sigma) {
			t.Fatalf("r=%d: sigma not an automorphism", r)
		}
		// Perturbations leave the language.
		bad := g.Clone()
		bad.AddEdge(1, 2*6) // stray edge from side-A interior to a path node
		if IsDSym(bad, 6, r) {
			t.Fatalf("r=%d: stray edge accepted", r)
		}
		bad2 := g.Clone()
		bad2.RemoveEdge(0, 12) // break the path start (2n = 12)
		if IsDSym(bad2, 6, r) {
			t.Fatalf("r=%d: broken path accepted", r)
		}
	}
	if IsDSym(Path(5), 6, 1) {
		t.Fatal("wrong size accepted")
	}
}

func TestLowerBoundDumbbell(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fA, err := RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	fB, err := RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for AreIsomorphic(fA, fB) {
		fB, err = RandomAsymmetricConnected(6, rng)
		if err != nil {
			t.Fatal(err)
		}
	}

	same := LowerBoundDumbbell(fA, fA)
	if FindNontrivialAutomorphism(same) == nil {
		t.Fatal("G(F,F) should be symmetric")
	}
	diff := LowerBoundDumbbell(fA, fB)
	if a := FindNontrivialAutomorphism(diff); a != nil {
		t.Fatalf("G(F_A,F_B) with F_A ≠ F_B should be asymmetric, found %v", a)
	}
	if !diff.IsConnected() || !same.IsConnected() {
		t.Fatal("dumbbells should be connected")
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Path(3), Cycle(3))
	if g.N() != 6 || g.NumEdges() != 5 {
		t.Fatalf("union: n=%d e=%d", g.N(), g.NumEdges())
	}
	if g.IsConnected() {
		t.Fatal("disjoint union connected")
	}
	if !g.HasEdge(3, 4) || g.HasEdge(2, 3) {
		t.Fatal("edges misplaced")
	}
}

func TestRandomAsymmetricConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := RandomAsymmetricConnected(5, rng); err == nil {
		t.Fatal("n=5 should error")
	}
	g, err := RandomAsymmetricConnected(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() || !IsAsymmetric(g) {
		t.Fatal("not asymmetric connected")
	}
}

func TestDegreeSequence(t *testing.T) {
	g := Star(4)
	if got := g.DegreeSequence(); !reflect.DeepEqual(got, []int{1, 1, 1, 3}) {
		t.Fatalf("DegreeSequence = %v", got)
	}
}

func TestShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := ConnectedGNP(8, 0.5, rng)
	h, p := g.Shuffle(rng)
	if !g.Relabel(p).Equal(h) {
		t.Fatal("Shuffle permutation inconsistent")
	}
	if !AreIsomorphic(g, h) {
		t.Fatal("shuffled copy not isomorphic")
	}
}

func TestString(t *testing.T) {
	g := Path(3)
	if got := g.String(); got != "n=3; edges=[0-1 1-2]" {
		t.Fatalf("String = %q", got)
	}
}

func TestComplement(t *testing.T) {
	g := Path(4)
	c := g.Complement()
	if c.NumEdges() != 4*3/2-3 {
		t.Fatalf("complement edges = %d", c.NumEdges())
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if g.HasEdge(u, v) == c.HasEdge(u, v) {
				t.Fatalf("edge {%d,%d} in both or neither", u, v)
			}
		}
	}
	// Complement preserves the automorphism group.
	rng := rand.New(rand.NewSource(30))
	h, err := RandomAsymmetricConnected(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if FindNontrivialAutomorphism(h.Complement()) != nil {
		t.Fatal("complement of rigid graph not rigid")
	}
	// Double complement is the identity.
	if !g.Complement().Complement().Equal(g) {
		t.Fatal("double complement changed graph")
	}
}

func TestDiameter(t *testing.T) {
	if got := Path(5).Diameter(); got != 4 {
		t.Fatalf("path diameter = %d", got)
	}
	if got := Complete(5).Diameter(); got != 1 {
		t.Fatalf("K5 diameter = %d", got)
	}
	if got := Cycle(6).Diameter(); got != 3 {
		t.Fatalf("C6 diameter = %d", got)
	}
	if got := New(3).Diameter(); got != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
	if got := New(1).Diameter(); got != 0 {
		t.Fatalf("K1 diameter = %d", got)
	}
	if got := New(0).Diameter(); got != -1 {
		t.Fatal("empty graph diameter should be -1")
	}
}

func TestIsRegular(t *testing.T) {
	if !Cycle(5).IsRegular() || !Complete(4).IsRegular() || !New(0).IsRegular() {
		t.Fatal("regular graphs not recognized")
	}
	if Path(4).IsRegular() || Star(4).IsRegular() {
		t.Fatal("irregular graphs reported regular")
	}
}
