package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkColorRefinementIso(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := ConnectedGNP(64, 0.2, rng)
	h, _ := g.Shuffle(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FindIsomorphism(g, h) == nil {
			b.Fatal("iso not found")
		}
	}
}

func BenchmarkAsymmetryCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g, err := RandomAsymmetricConnected(48, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FindNontrivialAutomorphism(g) != nil {
			b.Fatal("rigid graph has automorphism")
		}
	}
}

func BenchmarkBFSTree(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := ConnectedGNP(512, 0.02, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.BFSTree(0); err != nil {
			b.Fatal(err)
		}
	}
}
