package graph

import (
	"fmt"
	"math/rand"

	"dip/internal/perm"
)

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs >= 3 vertices, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// GNP returns an Erdős–Rényi random graph G(n, p).
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// ConnectedGNP returns a connected G(n, 1/2)-style graph: it samples GNP
// graphs until one is connected. For p = 1/2 and n >= 4 the expected number
// of samples is close to 1.
func ConnectedGNP(n int, p float64, rng *rand.Rand) *Graph {
	for {
		g := GNP(n, p, rng)
		if g.IsConnected() {
			return g
		}
	}
}

// RandomTree returns a uniformly random labeled tree on n vertices via a
// random Prüfer sequence. For n <= 2 it returns the unique tree.
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.AddEdge(0, 1)
		return g
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if degree[u] == 1 {
				g.AddEdge(u, v)
				degree[u]--
				degree[v]--
				break
			}
		}
	}
	u, w := -1, -1
	for v := 0; v < n; v++ {
		if degree[v] == 1 {
			if u == -1 {
				u = v
			} else {
				w = v
			}
		}
	}
	g.AddEdge(u, w)
	return g
}

// Doubled returns a symmetric graph built from g: two disjoint copies of g
// (copy A on {0..n-1}, copy B on {n..2n-1}) joined by a two-node bridge
// path  a — 2n — 2n+1 — b  where a = anchor in copy A and b = anchor + n in
// copy B. The swap-and-reverse mapping is always a non-trivial automorphism,
// so the result is in Sym regardless of g. This is the yes-instance
// workload generator for the Sym experiments.
func Doubled(g *Graph, anchor int) *Graph {
	n := g.N()
	if n == 0 {
		panic("graph: doubling the empty graph")
	}
	if anchor < 0 || anchor >= n {
		panic(fmt.Sprintf("graph: anchor %d out of range [0,%d)", anchor, n))
	}
	out := New(2*n + 2)
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
		out.AddEdge(e[0]+n, e[1]+n)
	}
	out.AddEdge(anchor, 2*n)
	out.AddEdge(2*n, 2*n+1)
	out.AddEdge(2*n+1, anchor+n)
	return out
}

// DoubledAutomorphism returns the canonical non-trivial automorphism of
// Doubled(g, anchor): swap the two copies and reverse the bridge.
func DoubledAutomorphism(n int) perm.Perm {
	p := make(perm.Perm, 2*n+2)
	for v := 0; v < n; v++ {
		p[v] = v + n
		p[v+n] = v
	}
	p[2*n] = 2*n + 1
	p[2*n+1] = 2 * n
	return p
}

// DSymGraph builds a graph in the language DSym of Definition 5: vertices
// {0,...,2n+2r}, with the subgraph F copied onto {0..n-1} and (shifted by n)
// onto {n..2n-1}, the two copies joined by the path
// 0 — (2n) — (2n+1) — ... — (2n+2r) — n, and no other edges. F must be a
// graph on n vertices; r >= 0 is the half-length of the path.
func DSymGraph(f *Graph, r int) *Graph {
	n := f.N()
	if n < 1 {
		panic("graph: DSym needs a non-empty core graph")
	}
	if r < 0 {
		panic(fmt.Sprintf("graph: negative path parameter %d", r))
	}
	g := New(2*n + 2*r + 1)
	for _, e := range f.Edges() {
		g.AddEdge(e[0], e[1])
		g.AddEdge(e[0]+n, e[1]+n)
	}
	g.AddEdge(0, 2*n)
	for i := 0; i < 2*r; i++ {
		g.AddEdge(2*n+i, 2*n+i+1)
	}
	g.AddEdge(2*n+2*r, n)
	return g
}

// DSymAutomorphism returns the fixed automorphism σ of Definition 5 for
// DSym graphs with parameters (n, r): swap the copies and reverse the path.
func DSymAutomorphism(n, r int) perm.Perm {
	sigma := make(perm.Perm, 2*n+2*r+1)
	for x := 0; x < n; x++ {
		sigma[x] = x + n
		sigma[x+n] = x
	}
	for x := 2 * n; x <= 2*n+2*r; x++ {
		sigma[x] = 2*n + 2*r - (x - 2*n)
	}
	return sigma
}

// IsDSym reports whether g is in the language DSym with parameters (n, r),
// checking the three conditions of Section 3.3 globally (this is the
// reference decider used by tests; the protocol checks the same conditions
// distributively).
func IsDSym(g *Graph, n, r int) bool {
	if g.N() != 2*n+2*r+1 {
		return false
	}
	sigma := DSymAutomorphism(n, r)
	if !g.IsAutomorphism(sigma) {
		return false
	}
	// Path present.
	if !g.HasEdge(0, 2*n) || !g.HasEdge(2*n+2*r, n) {
		return false
	}
	for i := 0; i < 2*r; i++ {
		if !g.HasEdge(2*n+i, 2*n+i+1) {
			return false
		}
	}
	// No stray edges: every edge is internal to a side or on the path.
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		switch {
		case u < n && v < n:
		case u >= n && u < 2*n && v >= n && v < 2*n:
		case isDSymPathEdge(u, v, n, r):
		default:
			return false
		}
	}
	return true
}

func isDSymPathEdge(u, v, n, r int) bool {
	if u > v {
		u, v = v, u
	}
	if u == 0 && v == 2*n {
		return true
	}
	if u == n && v == 2*n+2*r {
		return true
	}
	return u >= 2*n && v == u+1 && v <= 2*n+2*r
}

// LowerBoundDumbbell builds the Section 3.4 family member G(F_A, F_B):
// copies of fA on {0..n-1} and fB on {n..2n-1}, bridge nodes x_A = 2n and
// x_B = 2n+1, and edges {v_A, x_A}, {x_A, x_B}, {x_B, v_B} with the fixed
// attachment points v_A = 0 and v_B = n. fA and fB must have the same
// number of vertices. G(F, F) is symmetric; for asymmetric, non-isomorphic
// F_A ≠ F_B the result has no non-trivial automorphism.
func LowerBoundDumbbell(fA, fB *Graph) *Graph {
	n := fA.N()
	if fB.N() != n {
		panic(fmt.Sprintf("graph: dumbbell sides of %d and %d vertices", n, fB.N()))
	}
	if n < 1 {
		panic("graph: dumbbell with empty sides")
	}
	g := New(2*n + 2)
	for _, e := range fA.Edges() {
		g.AddEdge(e[0], e[1])
	}
	for _, e := range fB.Edges() {
		g.AddEdge(e[0]+n, e[1]+n)
	}
	g.AddEdge(0, 2*n)     // v_A — x_A
	g.AddEdge(2*n, 2*n+1) // x_A — x_B
	g.AddEdge(2*n+1, n)   // x_B — v_B
	return g
}

// DisjointUnion returns the disjoint union of g (on {0..g.N()-1}) and h
// (shifted onto {g.N()..g.N()+h.N()-1}).
func DisjointUnion(g, h *Graph) *Graph {
	out := New(g.N() + h.N())
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1])
	}
	for _, e := range h.Edges() {
		out.AddEdge(e[0]+g.N(), e[1]+g.N())
	}
	return out
}

// RandomAsymmetricConnected returns a connected graph on n vertices with no
// non-trivial automorphism, by rejection sampling from G(n, 1/2). Random
// graphs are asymmetric with probability 1 - o(1), so for n >= 7 this
// terminates almost immediately. It returns an error if n < 6, since the
// only asymmetric graph on fewer than 6 vertices is the single vertex.
func RandomAsymmetricConnected(n int, rng *rand.Rand) (*Graph, error) {
	if n < 6 {
		return nil, fmt.Errorf("graph: no connected asymmetric graph on %d vertices (need >= 6)", n)
	}
	for {
		g := ConnectedGNP(n, 0.5, rng)
		if FindNontrivialAutomorphism(g) == nil {
			return g, nil
		}
	}
}
