package graph

import (
	"fmt"

	"dip/internal/bitset"
)

// IntMatrix is an n×n integer matrix. It is the reference realization of the
// paper's [i, r] row-matrix formalism (Section 3.1.1): protocols never
// materialize these matrices (that is the whole point of the linear hash),
// but tests and the honest provers use them to state and check Lemma 3.1
// directly.
type IntMatrix struct {
	n       int
	entries []int // row-major
}

// NewIntMatrix returns the n×n zero matrix.
func NewIntMatrix(n int) *IntMatrix {
	return &IntMatrix{n: n, entries: make([]int, n*n)}
}

// N returns the dimension.
func (m *IntMatrix) N() int { return m.n }

// At returns entry (row, col).
func (m *IntMatrix) At(row, col int) int {
	m.check(row, col)
	return m.entries[row*m.n+col]
}

// Set sets entry (row, col).
func (m *IntMatrix) Set(row, col, v int) {
	m.check(row, col)
	m.entries[row*m.n+col] = v
}

func (m *IntMatrix) check(row, col int) {
	if row < 0 || row >= m.n || col < 0 || col >= m.n {
		panic(fmt.Sprintf("graph: matrix index (%d,%d) out of range for n=%d", row, col, m.n))
	}
}

// AddRowVector adds the matrix [row, r] — the matrix that is r in the given
// row and zero elsewhere — to m. This is the paper's building block: any
// matrix is the sum of its row matrices.
func (m *IntMatrix) AddRowVector(row int, r *bitset.Set) {
	if r.Len() != m.n {
		panic(fmt.Sprintf("graph: row vector of length %d for n=%d", r.Len(), m.n))
	}
	for c := r.NextSet(0); c >= 0; c = r.NextSet(c + 1) {
		m.entries[row*m.n+c]++
	}
}

// Equal reports whether m and other agree entrywise.
func (m *IntMatrix) Equal(other *IntMatrix) bool {
	if m.n != other.n {
		return false
	}
	for i, v := range m.entries {
		if v != other.entries[i] {
			return false
		}
	}
	return true
}

// NeighborhoodMatrix returns Σ_{v∈V} [v, N(v)]: the closed-neighborhood
// adjacency matrix of g (adjacency with ones on the diagonal).
func NeighborhoodMatrix(g *Graph) *IntMatrix {
	m := NewIntMatrix(g.N())
	for v := 0; v < g.N(); v++ {
		m.AddRowVector(v, g.ClosedRow(v))
	}
	return m
}

// MappedNeighborhoodMatrix returns Σ_{v∈V} [ρ(v), ρ(N(v))] for an arbitrary
// mapping ρ: V → V (not necessarily a permutation — Lemma 3.1 is precisely
// about detecting when it is not).
func MappedNeighborhoodMatrix(g *Graph, rho []int) *IntMatrix {
	n := g.N()
	if len(rho) != n {
		panic(fmt.Sprintf("graph: mapping of length %d for n=%d", len(rho), n))
	}
	m := NewIntMatrix(n)
	for v := 0; v < n; v++ {
		m.AddRowVector(rho[v], g.ClosedRow(v).Permute(rho))
	}
	return m
}

// SatisfiesLemma31 reports whether Σ[v,N(v)] = Σ[ρ(v),ρ(N(v))]. By
// Lemma 3.1, this holds iff ρ is an automorphism of g.
func SatisfiesLemma31(g *Graph, rho []int) bool {
	return NeighborhoodMatrix(g).Equal(MappedNeighborhoodMatrix(g, rho))
}
