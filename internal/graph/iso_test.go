package graph

import (
	"math/rand"
	"testing"

	"dip/internal/perm"
)

func TestFindIsomorphismBasic(t *testing.T) {
	g := Path(5)
	h := Path(5)
	p := FindIsomorphism(g, h)
	if p == nil {
		t.Fatal("identical paths not isomorphic")
	}
	if !g.Relabel(p).Equal(h) {
		t.Fatal("returned mapping is not an isomorphism")
	}
}

func TestFindIsomorphismShuffled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		g := GNP(10, 0.5, rng)
		h, _ := g.Shuffle(rng)
		p := FindIsomorphism(g, h)
		if p == nil {
			t.Fatal("shuffled copy not found isomorphic")
		}
		if !g.Relabel(p).Equal(h) {
			t.Fatal("mapping wrong")
		}
	}
}

func TestNonIsomorphic(t *testing.T) {
	cases := []struct {
		name string
		g, h *Graph
	}{
		{"different n", Path(4), Path(5)},
		{"different edges", Path(4), Cycle(4)},
		{"same degree sequence", pathPlusIsolated(), trianglePlusEdgeless()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if AreIsomorphic(tc.g, tc.h) {
				t.Fatal("non-isomorphic graphs reported isomorphic")
			}
		})
	}
}

// pathPlusIsolated: P4 plus 2 isolated vertices (degrees 1,1,2,2,0,0).
func pathPlusIsolated() *Graph {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return g
}

// trianglePlusEdgeless: C3 plus P2 plus isolated? Construct degrees
// 2,2,2,1,1,0 — differs from pathPlusIsolated's 1,1,2,2,0,0 only in
// multiset? 2,2,2,1,1,0 vs 2,2,1,1,0,0: actually different. Use two graphs
// with the SAME degree sequence instead: C6 vs two triangles.
func trianglePlusEdgeless() *Graph {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	return g
}

func TestSameDegreeSequenceNotIsomorphic(t *testing.T) {
	// C6 and 2×C3 are both 2-regular on 6 vertices but not isomorphic.
	c6 := Cycle(6)
	twoTriangles := DisjointUnion(Cycle(3), Cycle(3))
	if AreIsomorphic(c6, twoTriangles) {
		t.Fatal("C6 ≅ 2C3 reported")
	}
}

func TestRegularNonIsomorphicPair(t *testing.T) {
	// K3,3 vs the prism graph (C6 with long chords? use K3,3 vs triangular
	// prism): both 3-regular on 6 vertices, not isomorphic (prism has
	// triangles, K3,3 does not).
	k33 := New(6)
	for u := 0; u < 3; u++ {
		for v := 3; v < 6; v++ {
			k33.AddEdge(u, v)
		}
	}
	prism := New(6)
	prism.AddEdge(0, 1)
	prism.AddEdge(1, 2)
	prism.AddEdge(2, 0)
	prism.AddEdge(3, 4)
	prism.AddEdge(4, 5)
	prism.AddEdge(5, 3)
	prism.AddEdge(0, 3)
	prism.AddEdge(1, 4)
	prism.AddEdge(2, 5)
	if AreIsomorphic(k33, prism) {
		t.Fatal("K3,3 ≅ prism reported")
	}
	if !AreIsomorphic(k33, k33.Clone()) {
		t.Fatal("K3,3 not isomorphic to itself")
	}
}

func TestFindNontrivialAutomorphism(t *testing.T) {
	symmetric := []*Graph{Path(4), Cycle(5), Complete(4), Star(5)}
	for _, g := range symmetric {
		a := FindNontrivialAutomorphism(g)
		if a == nil {
			t.Fatalf("no automorphism found for %v", g)
		}
		if a.IsIdentity() {
			t.Fatal("identity returned")
		}
		if !g.IsAutomorphism(a) {
			t.Fatalf("returned mapping %v not an automorphism of %v", a, g)
		}
	}
}

func TestAsymmetricGraphDetected(t *testing.T) {
	// The smallest asymmetric tree: 7 vertices.
	// Shape: path 0-1-2-3-4 with 5 attached to 2 ... that has a symmetry.
	// Use the known 6-vertex asymmetric graph: path 0-1-2-3-4 plus edge 1-5
	// and edge 2-5? Build and verify by brute force instead.
	rng := rand.New(rand.NewSource(9))
	g, err := RandomAsymmetricConnected(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check search result against brute force.
	if len(AllAutomorphisms(g)) != 1 {
		t.Fatal("brute force disagrees: graph has non-trivial automorphisms")
	}
	if FindNontrivialAutomorphism(g) != nil {
		t.Fatal("search found automorphism in asymmetric graph")
	}
}

func TestSearchAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 40; i++ {
		g := GNP(6, 0.5, rng)
		brute := len(AllAutomorphisms(g)) > 1
		search := FindNontrivialAutomorphism(g) != nil
		if brute != search {
			t.Fatalf("disagreement on %v: brute=%v search=%v", g, brute, search)
		}
	}
}

func TestDoubledGraphAutomorphismFound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, err := RandomAsymmetricConnected(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := Doubled(base, 0)
	a := FindNontrivialAutomorphism(g)
	if a == nil {
		t.Fatal("no automorphism in doubled graph")
	}
	if !g.IsAutomorphism(a) {
		t.Fatal("not an automorphism")
	}
}

func TestCanonicalKey(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := GNP(6, 0.5, rng)
	h, _ := g.Shuffle(rng)
	if CanonicalKey(g) != CanonicalKey(h) {
		t.Fatal("isomorphic graphs with different canonical keys")
	}
	c6 := Cycle(6)
	twoTriangles := DisjointUnion(Cycle(3), Cycle(3))
	if CanonicalKey(c6) == CanonicalKey(twoTriangles) {
		t.Fatal("non-isomorphic graphs with equal canonical keys")
	}
}

func TestCanonicalKeyPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CanonicalKey(Path(9))
}

func TestAllAutomorphismsCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K4", Complete(4), 24},
		{"C4", Cycle(4), 8},
		{"P3", Path(3), 2},
		{"K1", New(1), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(AllAutomorphisms(tc.g)); got != tc.want {
				t.Fatalf("|Aut| = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestEmptyGraphIsomorphism(t *testing.T) {
	if !AreIsomorphic(New(0), New(0)) {
		t.Fatal("empty graphs not isomorphic")
	}
	if FindNontrivialAutomorphism(New(0)) != nil {
		t.Fatal("empty graph has automorphism")
	}
	if FindNontrivialAutomorphism(New(1)) != nil {
		t.Fatal("K1 has non-trivial automorphism")
	}
}

func TestIsomorphismReturnsValidPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := ConnectedGNP(9, 0.4, rng)
	h, want := g.Shuffle(rng)
	got := FindIsomorphism(g, h)
	if got == nil {
		t.Fatal("no isomorphism")
	}
	if !perm.IsValid(got) {
		t.Fatal("result not a permutation")
	}
	// got need not equal want, but both must map g to h.
	if !g.Relabel(want).Equal(h) || !g.Relabel(got).Equal(h) {
		t.Fatal("mapping incorrect")
	}
}

func TestMatrixLemma31(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := ConnectedGNP(8, 0.5, rng)

	// Identity satisfies the equation.
	if !SatisfiesLemma31(g, perm.Identity(8)) {
		t.Fatal("identity fails Lemma 3.1 equation")
	}

	// A genuine automorphism satisfies it.
	sym := Doubled(g, 0)
	auto := DoubledAutomorphism(8)
	if !SatisfiesLemma31(sym, auto) {
		t.Fatal("automorphism fails Lemma 3.1 equation")
	}

	// Any non-automorphism must violate it (this IS Lemma 3.1).
	for i := 0; i < 30; i++ {
		rho := perm.Random(sym.N(), rng)
		if sym.IsAutomorphism(rho) {
			continue
		}
		if SatisfiesLemma31(sym, rho) {
			t.Fatalf("non-automorphism %v satisfies the equation", rho)
		}
	}

	// Non-bijective mappings must violate it too.
	rho := make([]int, sym.N())
	for i := range rho {
		rho[i] = 0
	}
	if SatisfiesLemma31(sym, rho) {
		t.Fatal("constant map satisfies the equation")
	}
}

func TestMatrixOps(t *testing.T) {
	m := NewIntMatrix(3)
	if m.N() != 3 {
		t.Fatal("N wrong")
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At wrong")
	}
	other := NewIntMatrix(3)
	if m.Equal(other) {
		t.Fatal("unequal matrices Equal")
	}
	other.Set(1, 2, 7)
	if !m.Equal(other) {
		t.Fatal("equal matrices not Equal")
	}
	if m.Equal(NewIntMatrix(4)) {
		t.Fatal("different sizes Equal")
	}
}

func TestNeighborhoodMatrix(t *testing.T) {
	g := Path(3)
	m := NeighborhoodMatrix(g)
	want := [][]int{{1, 1, 0}, {1, 1, 1}, {0, 1, 1}}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if m.At(r, c) != want[r][c] {
				t.Fatalf("entry (%d,%d) = %d, want %d", r, c, m.At(r, c), want[r][c])
			}
		}
	}
}
