// Package graph implements undirected graphs on the vertex set {0,...,n-1},
// together with the generators and the isomorphism/automorphism machinery
// the paper's protocols depend on.
//
// Conventions follow Section 2 of the paper: N(v) denotes the *closed*
// neighborhood of v (including v itself), and the adjacency matrix used by
// the Sym protocols is the closed-neighborhood matrix Σ_v [v, N(v)], i.e.
// the adjacency matrix with self-loops on every vertex.
package graph

import (
	"fmt"
	"math/rand"
	"strings"

	"dip/internal/bitset"
	"dip/internal/perm"
)

// Graph is a simple undirected graph on vertices {0,...,n-1}. The zero value
// is the empty graph on zero vertices; use New for a graph with vertices.
type Graph struct {
	n    int
	rows []*bitset.Set // rows[v] = open neighborhood of v (no self-loop)
}

// New returns an edgeless graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{n: n, rows: make([]*bitset.Set, n)}
	for v := range g.rows {
		g.rows[v] = bitset.New(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// checkVertex panics if v is not a vertex.
func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge adds the undirected edge {u, v}. Self-loops are rejected: the
// closed-neighborhood convention supplies the diagonal implicitly.
func (g *Graph) AddEdge(u, v int) {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.rows[u].Add(v)
	g.rows[v].Add(u)
}

// RemoveEdge removes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.checkVertex(u)
	g.checkVertex(v)
	g.rows[u].Remove(v)
	g.rows[v].Remove(u)
}

// HasEdge reports whether {u, v} is an edge. HasEdge(v, v) is false.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkVertex(u)
	g.checkVertex(v)
	return g.rows[u].Contains(v)
}

// Degree returns the number of neighbors of v (excluding v itself).
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return g.rows[v].Count()
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, r := range g.rows {
		total += r.Count()
	}
	return total / 2
}

// Neighbors returns the open neighborhood of v as a slice of vertices.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	return g.rows[v].Indices()
}

// AppendNeighbors appends v's neighbors to buf in ascending order and
// returns the extended slice. It is the allocation-free variant of
// Neighbors for callers that snapshot many adjacency lists into one
// buffer (the proof engine does this once per run).
func (g *Graph) AppendNeighbors(v int, buf []int) []int {
	g.checkVertex(v)
	row := g.rows[v]
	for u := row.NextSet(0); u >= 0; u = row.NextSet(u + 1) {
		buf = append(buf, u)
	}
	return buf
}

// OpenRow returns the open neighborhood of v as a bit vector. The returned
// set is a copy and safe to mutate.
func (g *Graph) OpenRow(v int) *bitset.Set {
	g.checkVertex(v)
	return g.rows[v].Clone()
}

// ClosedRow returns the closed neighborhood N(v) of the paper: the open
// neighborhood plus v itself, as a bit vector. This is the row [v, N(v)]
// contributed by node v to the adjacency matrix in Protocols 1 and 2.
func (g *Graph) ClosedRow(v int) *bitset.Set {
	r := g.OpenRow(v)
	r.Add(v)
	return r
}

// ClosedRowInto is ClosedRow writing into a caller-provided scratch set
// of length N, for loops that hash many rows and want to reuse one buffer.
// Returns dst.
func (g *Graph) ClosedRowInto(v int, dst *bitset.Set) *bitset.Set {
	g.checkVertex(v)
	dst.CopyFrom(g.rows[v])
	dst.Add(v)
	return dst
}

// ContentHash folds the labeled graph's content (vertex count plus every
// adjacency row) into a 64-bit FNV-1a style digest without allocating.
// Equal graphs hash equally; the setup cache uses the digest as a lookup
// key and re-verifies candidates with Equal, so collisions cost a rebuild,
// never a wrong answer.
func (g *Graph) ContentHash() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	h ^= uint64(g.n)
	h *= fnvPrime
	for _, r := range g.rows {
		h = r.AppendHash(h)
	}
	return h
}

// Clone returns an independent copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, rows: make([]*bitset.Set, g.n)}
	for v, r := range g.rows {
		c.rows[v] = r.Clone()
	}
	return c
}

// Equal reports whether g and h are the same labeled graph.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for v := range g.rows {
		if !g.rows[v].Equal(h.rows[v]) {
			return false
		}
	}
	return true
}

// Edges returns all edges as pairs (u, v) with u < v, in lexicographic order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := g.rows[u].NextSet(u + 1); v >= 0; v = g.rows[u].NextSet(v + 1) {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Relabel returns the graph ρ(G): vertex v of g becomes vertex ρ(v). If ρ is
// an automorphism of g, Relabel returns a graph equal to g.
func (g *Graph) Relabel(rho perm.Perm) *Graph {
	if rho.N() != g.n {
		panic(fmt.Sprintf("graph: relabeling size %d for graph of %d vertices", rho.N(), g.n))
	}
	h := New(g.n)
	for _, e := range g.Edges() {
		h.AddEdge(rho[e[0]], rho[e[1]])
	}
	return h
}

// IsAutomorphism reports whether rho (given as a plain mapping, which need
// not be a bijection) is an automorphism of g: a permutation with
// {u,v} ∈ E ⟺ {rho(u), rho(v)} ∈ E.
func (g *Graph) IsAutomorphism(rho []int) bool {
	if len(rho) != g.n || !perm.IsValid(rho) {
		return false
	}
	for u := 0; u < g.n; u++ {
		for v := g.rows[u].NextSet(u + 1); v >= 0; v = g.rows[u].NextSet(v + 1) {
			if !g.rows[rho[u]].Contains(rho[v]) {
				return false
			}
		}
	}
	// A permutation preserving all edges preserves the edge count, and
	// therefore preserves non-edges too; the one-directional check suffices.
	return true
}

// IsConnected reports whether g is connected (the empty graph and the
// 1-vertex graph count as connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return g.reachableCount(0) == g.n
}

func (g *Graph) reachableCount(src int) int {
	seen := bitset.New(g.n)
	seen.Add(src)
	queue := []int{src}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := g.rows[u].NextSet(0); v >= 0; v = g.rows[u].NextSet(v + 1) {
			if !seen.Contains(v) {
				seen.Add(v)
				count++
				queue = append(queue, v)
			}
		}
	}
	return count
}

// BFSDistances returns d[v] = distance from src to v, with -1 for
// unreachable vertices. If limit >= 0, the search stops once distances
// exceed limit.
func (g *Graph) BFSDistances(src, limit int) []int {
	g.checkVertex(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if limit >= 0 && dist[u] >= limit {
			continue
		}
		for v := g.rows[u].NextSet(0); v >= 0; v = g.rows[u].NextSet(v + 1) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSTree returns a spanning tree of g rooted at root, as (parent, dist)
// arrays with parent[root] = root. It returns an error if g is not
// connected: a spanning tree must reach every vertex.
func (g *Graph) BFSTree(root int) (parent, dist []int, err error) {
	g.checkVertex(root)
	dist = g.BFSDistances(root, -1)
	parent = make([]int, g.n)
	for v := range parent {
		parent[v] = -1
	}
	parent[root] = root
	for v := 0; v < g.n; v++ {
		if v == root {
			continue
		}
		if dist[v] == -1 {
			return nil, nil, fmt.Errorf("graph: vertex %d unreachable from root %d", v, root)
		}
		for u := g.rows[v].NextSet(0); u >= 0; u = g.rows[v].NextSet(u + 1) {
			if dist[u] == dist[v]-1 {
				parent[v] = u
				break
			}
		}
	}
	return parent, dist, nil
}

// DegreeSequence returns the sorted-ascending degree sequence.
func (g *Graph) DegreeSequence() []int {
	seq := make([]int, g.n)
	for v := range seq {
		seq[v] = g.Degree(v)
	}
	insertionSort(seq)
	return seq
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// AdjacencyBits packs the upper triangle of the adjacency matrix into a
// bitset: bit index(u,v) for u < v. Two labeled graphs are equal iff their
// AdjacencyBits are equal; the packing is the graph's wire format and the
// canonical-form key.
func (g *Graph) AdjacencyBits() *bitset.Set {
	m := g.n * (g.n - 1) / 2
	out := bitset.New(m)
	idx := 0
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.rows[u].Contains(v) {
				out.Add(idx)
			}
			idx++
		}
	}
	return out
}

// FromAdjacencyBits reconstructs a graph on n vertices from the packing
// produced by AdjacencyBits.
func FromAdjacencyBits(n int, bits *bitset.Set) (*Graph, error) {
	if want := n * (n - 1) / 2; bits.Len() != want {
		return nil, fmt.Errorf("graph: adjacency packing of %d bits for n=%d, want %d", bits.Len(), n, want)
	}
	g := New(n)
	idx := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if bits.Contains(idx) {
				g.AddEdge(u, v)
			}
			idx++
		}
	}
	return g, nil
}

// String renders the graph as "n=...; edges=[...]".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d; edges=[", g.n)
	for i, e := range g.Edges() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", e[0], e[1])
	}
	b.WriteByte(']')
	return b.String()
}

// Shuffle returns an isomorphic copy of g under a uniformly random
// relabeling, together with the relabeling used.
func (g *Graph) Shuffle(rng *rand.Rand) (*Graph, perm.Perm) {
	p := perm.Random(g.n, rng)
	return g.Relabel(p), p
}

// Complement returns the complement graph: {u,v} is an edge iff it is not
// an edge of g. Complements preserve automorphism groups, which makes them
// useful when building rigid test families.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.HasEdge(u, v) {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// Diameter returns the largest finite distance between any two vertices,
// or -1 if g is disconnected (or has no vertices).
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.BFSDistances(v, -1) {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// IsRegular reports whether every vertex has the same degree.
func (g *Graph) IsRegular() bool {
	if g.n == 0 {
		return true
	}
	d := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if g.Degree(v) != d {
			return false
		}
	}
	return true
}
