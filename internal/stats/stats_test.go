package stats

import (
	"math"
	"strings"
	"testing"
)

func TestEstimateBernoulli(t *testing.T) {
	e := EstimateBernoulli(21, 50)
	if math.Abs(e.Rate-0.42) > 1e-9 {
		t.Fatalf("rate = %v", e.Rate)
	}
	if !(e.Lo < e.Rate && e.Rate < e.Hi) {
		t.Fatalf("interval [%v, %v] does not bracket %v", e.Lo, e.Hi, e.Rate)
	}
	if e.Lo < 0 || e.Hi > 1 {
		t.Fatal("interval outside [0,1]")
	}
	if !strings.Contains(e.String(), "21/50") {
		t.Fatalf("String = %q", e.String())
	}
	zero := EstimateBernoulli(0, 0)
	if zero.Rate != 0 {
		t.Fatal("empty estimate wrong")
	}
}

func TestWilsonEdgeCases(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatal("no-trials interval should be [0,1]")
	}
	lo, hi = WilsonInterval(0, 100, 1.96)
	if lo != 0 || hi > 0.1 {
		t.Fatalf("all-failures interval [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 0.999 || lo < 0.9 {
		t.Fatalf("all-successes interval [%v, %v]", lo, hi)
	}
	// Wider samples narrow the interval.
	lo1, hi1 := WilsonInterval(5, 10, 1.96)
	lo2, hi2 := WilsonInterval(500, 1000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval did not narrow with more trials")
	}
}

func TestChernoffTrials(t *testing.T) {
	n := ChernoffTrials(0.1, 0.05)
	// ln(40)/(2·0.01) ≈ 184.4 → 185.
	if n != 185 {
		t.Fatalf("ChernoffTrials = %d, want 185", n)
	}
	if ChernoffTrials(0, 0.05) != 0 || ChernoffTrials(0.1, 0) != 0 || ChernoffTrials(0.1, 2) != 0 {
		t.Fatal("invalid inputs should return 0")
	}
	// Smaller eps needs more trials.
	if ChernoffTrials(0.01, 0.05) <= ChernoffTrials(0.1, 0.05) {
		t.Fatal("trials not monotone in eps")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMaxInt(t *testing.T) {
	if MaxInt(nil) != 0 {
		t.Fatal("empty max")
	}
	if got := MaxInt([]int{3, 9, 1}); got != 9 {
		t.Fatalf("MaxInt = %v", got)
	}
	if got := MaxInt([]int{-5, -2}); got != -2 {
		t.Fatalf("MaxInt = %v", got)
	}
}

// TestDeriveSeedStreams pins the properties RunTrials depends on:
// determinism, and distinct streams for distinct (seed, index) pairs.
func TestDeriveSeedStreams(t *testing.T) {
	if DeriveSeed(1, 2) != DeriveSeed(1, 2) {
		t.Fatal("not deterministic")
	}
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 8; seed++ {
		for stream := int64(0); stream < 256; stream++ {
			z := DeriveSeed(seed, stream)
			if seen[z] {
				t.Fatalf("collision at (%d, %d)", seed, stream)
			}
			seen[z] = true
		}
	}
	// Nearby inputs must not give nearby outputs (the harness feeds
	// consecutive trial indices).
	if d := DeriveSeed(1, 0) - DeriveSeed(1, 1); d > -1000 && d < 1000 {
		t.Fatalf("consecutive streams too close: delta %d", d)
	}
}

// TestCertifyingTrials checks that the planned count separates the paper's
// 2/3 vs 1/3 thresholds: an observed rate of 1 over that many trials has a
// Wilson lower bound above 2/3, and rate 0 an upper bound below 1/3.
func TestCertifyingTrials(t *testing.T) {
	n := CertifyingTrials(1.0/8, 0.005)
	if n <= 0 {
		t.Fatal("no trials planned")
	}
	if lo, _ := WilsonInterval(n, n, 1.96); lo <= 2.0/3 {
		t.Fatalf("lo = %v at %d/%d: cannot certify completeness > 2/3", lo, n, n)
	}
	if _, hi := WilsonInterval(0, n, 1.96); hi >= 1.0/3 {
		t.Fatalf("hi = %v at 0/%d: cannot certify soundness < 1/3", hi, n)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {87.5, 4.5},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(xs, %v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single element: %v", got)
	}
}
