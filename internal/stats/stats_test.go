package stats

import (
	"math"
	"strings"
	"testing"
)

func TestEstimateBernoulli(t *testing.T) {
	e := EstimateBernoulli(21, 50)
	if math.Abs(e.Rate-0.42) > 1e-9 {
		t.Fatalf("rate = %v", e.Rate)
	}
	if !(e.Lo < e.Rate && e.Rate < e.Hi) {
		t.Fatalf("interval [%v, %v] does not bracket %v", e.Lo, e.Hi, e.Rate)
	}
	if e.Lo < 0 || e.Hi > 1 {
		t.Fatal("interval outside [0,1]")
	}
	if !strings.Contains(e.String(), "21/50") {
		t.Fatalf("String = %q", e.String())
	}
	zero := EstimateBernoulli(0, 0)
	if zero.Rate != 0 {
		t.Fatal("empty estimate wrong")
	}
}

func TestWilsonEdgeCases(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatal("no-trials interval should be [0,1]")
	}
	lo, hi = WilsonInterval(0, 100, 1.96)
	if lo != 0 || hi > 0.1 {
		t.Fatalf("all-failures interval [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100, 1.96)
	if hi < 0.999 || lo < 0.9 {
		t.Fatalf("all-successes interval [%v, %v]", lo, hi)
	}
	// Wider samples narrow the interval.
	lo1, hi1 := WilsonInterval(5, 10, 1.96)
	lo2, hi2 := WilsonInterval(500, 1000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval did not narrow with more trials")
	}
}

func TestChernoffTrials(t *testing.T) {
	n := ChernoffTrials(0.1, 0.05)
	// ln(40)/(2·0.01) ≈ 184.4 → 185.
	if n != 185 {
		t.Fatalf("ChernoffTrials = %d, want 185", n)
	}
	if ChernoffTrials(0, 0.05) != 0 || ChernoffTrials(0.1, 0) != 0 || ChernoffTrials(0.1, 2) != 0 {
		t.Fatal("invalid inputs should return 0")
	}
	// Smaller eps needs more trials.
	if ChernoffTrials(0.01, 0.05) <= ChernoffTrials(0.1, 0.05) {
		t.Fatal("trials not monotone in eps")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestMaxInt(t *testing.T) {
	if MaxInt(nil) != 0 {
		t.Fatal("empty max")
	}
	if got := MaxInt([]int{3, 9, 1}); got != 9 {
		t.Fatalf("MaxInt = %v", got)
	}
	if got := MaxInt([]int{-5, -2}); got != -2 {
		t.Fatalf("MaxInt = %v", got)
	}
}
