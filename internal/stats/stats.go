// Package stats provides the small statistical toolkit the experiment
// harness uses: Bernoulli estimation with Wilson confidence intervals and
// Chernoff-style repetition planning.
package stats

import (
	"fmt"
	"math"
)

// Estimate is an estimated Bernoulli probability with a confidence
// interval.
type Estimate struct {
	Successes int
	Trials    int
	Rate      float64
	Lo, Hi    float64 // 95% Wilson interval
}

// EstimateBernoulli summarizes successes/trials with a 95% Wilson interval.
func EstimateBernoulli(successes, trials int) Estimate {
	if trials <= 0 {
		return Estimate{}
	}
	lo, hi := WilsonInterval(successes, trials, 1.96)
	return Estimate{
		Successes: successes,
		Trials:    trials,
		Rate:      float64(successes) / float64(trials),
		Lo:        lo,
		Hi:        hi,
	}
}

// String renders the estimate as "0.42 [0.31, 0.54] (21/50)".
func (e Estimate) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f] (%d/%d)", e.Rate, e.Lo, e.Hi, e.Successes, e.Trials)
}

// WilsonInterval returns the Wilson score interval for a Bernoulli
// proportion at the given z-value (1.96 for 95%).
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ChernoffTrials returns the number of independent repetitions needed so
// that the empirical mean of a Bernoulli variable deviates from its
// expectation by more than eps with probability at most delta (two-sided
// Hoeffding bound): n ≥ ln(2/δ) / (2 ε²).
func ChernoffTrials(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxInt returns the maximum of xs (0 for an empty slice).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
