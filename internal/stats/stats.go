// Package stats provides the small statistical toolkit the experiment
// harness uses: Bernoulli estimation with Wilson confidence intervals and
// Chernoff-style repetition planning.
package stats

import (
	"fmt"
	"math"
)

// Estimate is an estimated Bernoulli probability with a confidence
// interval.
type Estimate struct {
	Successes int
	Trials    int
	Rate      float64
	Lo, Hi    float64 // 95% Wilson interval
}

// EstimateBernoulli summarizes successes/trials with a 95% Wilson interval.
func EstimateBernoulli(successes, trials int) Estimate {
	if trials <= 0 {
		return Estimate{}
	}
	lo, hi := WilsonInterval(successes, trials, 1.96)
	return Estimate{
		Successes: successes,
		Trials:    trials,
		Rate:      float64(successes) / float64(trials),
		Lo:        lo,
		Hi:        hi,
	}
}

// String renders the estimate as "0.42 [0.31, 0.54] (21/50)".
func (e Estimate) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f] (%d/%d)", e.Rate, e.Lo, e.Hi, e.Successes, e.Trials)
}

// WilsonInterval returns the Wilson score interval for a Bernoulli
// proportion at the given z-value (1.96 for 95%).
func WilsonInterval(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ChernoffTrials returns the number of independent repetitions needed so
// that the empirical mean of a Bernoulli variable deviates from its
// expectation by more than eps with probability at most delta (two-sided
// Hoeffding bound): n ≥ ln(2/δ) / (2 ε²).
func ChernoffTrials(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// CertifyingTrials returns a trial count sufficient to separate the
// paper's completeness (> 2/3) and soundness (< 1/3) thresholds: enough
// repetitions that a protocol whose true acceptance probability is at
// least atLeast bounded away from the threshold yields a Wilson interval
// excluding it. Concretely it takes the Hoeffding count for estimating
// within margin at confidence 1-delta, so an observed rate of 1.0 (resp.
// 0.0) certifies p > 1 - 2·margin (resp. p < 2·margin).
func CertifyingTrials(margin, delta float64) int {
	return ChernoffTrials(margin, delta)
}

// DeriveSeed deterministically derives the seed of an independent random
// stream from a base seed and a stream index, using the splitmix64
// finalizer. Trial i of an experiment draws all randomness from
// DeriveSeed(seed, i), making per-trial results independent of worker
// scheduling: the harness can replay any trial in isolation.
func DeriveSeed(seed, stream int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)*0xD1342543DE82EF95 + 0x2545F4914F6CDD1D
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxInt returns the maximum of xs (0 for an empty slice).
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs by linear
// interpolation between closest ranks, the same estimator as numpy's
// default. xs must be sorted ascending; an empty slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}
