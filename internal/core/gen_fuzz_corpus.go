//go:build ignore

// gen_fuzz_corpus regenerates the checked-in fuzz seed corpora under
// testdata/fuzz/<FuzzTarget>/: one file per honest protocol encoding,
// harvested from transcript-recorded honest runs at the same instance
// parameters the fuzz targets in fuzz_test.go use. Honest encodings drive
// the fuzzer through the deep, fully-valid decode paths that random bytes
// almost never reach.
//
// Usage (from internal/core): go run gen_fuzz_corpus.go
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"

	"dip/internal/core"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/wire"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Symmetric 14-vertex graph (doubled 6-vertex asymmetric core), shared
	// by the sym and lcp families.
	base, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		log.Fatal(err)
	}
	sym := graph.Doubled(base, 0)
	if sym.N() != 14 {
		log.Fatalf("symmetric instance has %d vertices, want 14", sym.N())
	}

	dmam, err := core.NewSymDMAM(14, 1)
	if err != nil {
		log.Fatal(err)
	}
	dam, err := core.NewSymDAM(14, 1)
	if err != nil {
		log.Fatal(err)
	}
	dsym, err := core.NewDSymDAM(4, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	dsymG := graph.DSymGraph(graph.ConnectedGNP(4, 0.5, rng), 1)
	gni, err := core.NewGNIDAMAM(6, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	gng, err := core.NewGNIGeneral(6, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	gniYes, err := core.NewGNIYesInstance(6, rng)
	if err != nil {
		log.Fatal(err)
	}
	c6 := graph.Cycle(6)
	c6Shuffled, _ := c6.Shuffle(rng)
	symLCP, err := core.NewSymLCP(14)
	if err != nil {
		log.Fatal(err)
	}
	gniLCP14, err := core.NewGNILCP(14)
	if err != nil {
		log.Fatal(err)
	}
	lcpYes, err := core.NewGNIYesInstance(14, rng)
	if err != nil {
		log.Fatal(err)
	}

	harvest := func(target, label string, spec *network.Spec, g *graph.Graph, inputs []wire.Message, p network.Prover) {
		res, err := network.Run(spec, g, inputs, p, network.Options{Seed: 5, RecordTranscript: true})
		if err != nil {
			log.Fatalf("%s/%s: %v", target, label, err)
		}
		count := 0
		for ri, round := range res.Transcript.Rounds {
			if round.Kind != network.Merlin {
				continue
			}
			// Two distinct receivers per Merlin round cover both broadcast
			// and per-node-distinct fields.
			for _, v := range []int{0, len(round.PerNode) - 1} {
				writeSeed(target, fmt.Sprintf("%s-r%d-v%d", label, ri, v), round.PerNode[v])
				count++
			}
		}
		fmt.Printf("%s: %d seeds from %s\n", target, count, label)
	}

	harvest("FuzzSymDecoders", "sym-dmam", dmam.Spec(), sym, nil, dmam.HonestProver())
	harvest("FuzzSymDecoders", "sym-dam", dam.Spec(), sym, nil, dam.HonestProver())
	harvest("FuzzDSymDecoder", "dsym-dam", dsym.Spec(), dsymG, nil, dsym.HonestProver())
	harvest("FuzzGNIDecoders", "gni-damam", gni.Spec(), gniYes.G0, core.EncodeGNIInputs(gniYes.G1), gni.HonestProver())
	harvest("FuzzGNIDecoders", "gni-general", gng.Spec(), c6, core.EncodeGNIInputs(c6Shuffled), gng.HonestProver())
	harvest("FuzzLCPDecoders", "sym-lcp", symLCP.Spec(), sym, nil, symLCP.HonestProver())
	harvest("FuzzLCPDecoders", "gni-lcp", gniLCP14.Spec(), lcpYes.G0, core.EncodeGNIInputs(lcpYes.G1), gniLCP14.HonestProver())
}

// writeSeed writes one corpus entry in the `go test fuzz v1` format
// matching the fuzz targets' (data []byte, bits int) signature.
func writeSeed(target, name string, m wire.Message) {
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := "go test fuzz v1\n" +
		"[]byte(" + strconv.Quote(string(m.Data)) + ")\n" +
		fmt.Sprintf("int(%d)\n", m.Bits)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}
