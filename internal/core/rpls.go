package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/prime"
	"dip/internal/wire"
)

// SymRPLS is a randomized proof-labeling scheme for Symmetry, after
// Baruch–Fraigniaud–Patt-Shamir (reference [4] of the paper). The *advice*
// is the same Θ(n²) string as SymLCP (the full adjacency matrix, the
// automorphism, a moved witness) — [17]'s lower bound says that part cannot
// shrink — but the node-to-node *verification* traffic collapses
// exponentially: instead of relaying the whole advice to every neighbor,
// each node forwards a random linear fingerprint of O(log n) bits. A
// neighbor whose advice differs produces a different fingerprint except
// with probability ≤ m/p = O(1/n).
//
// This is the result of [4] in miniature (verification radius 1): any
// proof-labeling scheme's *verification* cost can be made exponentially
// smaller by randomization, while the advice length is untouched. The paper
// contrasts its own model with [4] by noting that interactive proofs charge
// the prover-to-node communication too — which RPLS cannot reduce, and
// Protocol 1 does.
type SymRPLS struct {
	n      int
	p      *big.Int
	family *hashing.LinearFamily // over advice-length bit vectors
	lcp    *SymLCP               // reuses SymLCP's advice codec and checks
}

// NewSymRPLS builds the scheme for graphs on n ≥ 2 vertices.
func NewSymRPLS(n int, seed int64) (*SymRPLS, error) {
	lcp, err := NewSymLCP(n)
	if err != nil {
		return nil, err
	}
	// Fingerprint modulus: collision probability adviceBits/p ≤ 1/(10n)
	// needs p ≥ 10n·adviceBits ≈ n³; reuse the Protocol 1 window.
	p, err := prime.ForCubicWindow(n, seed)
	if err != nil {
		return nil, fmt.Errorf("core: SymRPLS modulus: %w", err)
	}
	family, err := hashing.NewLinearFamily(lcp.AdviceBits(), p)
	if err != nil {
		return nil, fmt.Errorf("core: SymRPLS family: %w", err)
	}
	return &SymRPLS{n: n, p: p, family: family, lcp: lcp}, nil
}

// AdviceBits returns the advice length (identical to SymLCP's — the Θ(n²)
// part randomization cannot remove).
func (s *SymRPLS) AdviceBits() int { return s.lcp.AdviceBits() }

// FingerprintBits returns the per-neighbor verification message length:
// a hash seed and a hash value, 2·⌈lg p⌉ = O(log n) bits.
func (s *SymRPLS) FingerprintBits() int { return 2 * wire.WidthForBig(s.p) }

// adviceCoords converts an advice message into the indicator-coordinate
// form the linear family hashes (the positions of its one-bits).
func adviceCoords(m wire.Message) []int {
	var coords []int
	for i := 0; i < m.Bits; i++ {
		if m.Data[i/8]&(1<<(uint(i)%8)) != 0 {
			coords = append(coords, i)
		}
	}
	return coords
}

// digest produces node v's fingerprint message: a fresh random seed and
// the advice hashed under it.
func (s *SymRPLS) digest(rng *rand.Rand, m wire.Message) wire.Message {
	seed := s.family.RandomSeed(rng)
	fp := s.family.HashIndicator(seed, adviceCoords(m))
	var w wire.Writer
	width := wire.WidthForBig(s.p)
	w.WriteBig(seed, width)
	w.WriteBig(fp, width)
	return w.Message()
}

// Spec returns the scheme: one Merlin round whose neighbor exchange is
// fingerprinted.
func (s *SymRPLS) Spec() *network.Spec {
	return &network.Spec{
		Name: "sym-rpls",
		Rounds: []network.Round{{
			Kind: network.Merlin,
			Digest: func(_ int, rng *rand.Rand, m wire.Message) wire.Message {
				return s.digest(rng, m)
			},
		}},
		Decide: s.decide,
	}
}

func (s *SymRPLS) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != s.n {
		return false
	}
	advice := view.Responses[0]
	if advice.Bits != s.lcp.AdviceBits() {
		return false
	}
	// Neighbor agreement via fingerprints: evaluate each neighbor's seed
	// on OUR advice and compare with the neighbor's fingerprint of theirs.
	width := wire.WidthForBig(s.p)
	for _, u := range view.Neighbors {
		r := wire.NewReader(view.NeighborResponses[0][u])
		seed, err := r.ReadBig(width)
		if err != nil || seed.Cmp(s.p) >= 0 {
			return false
		}
		fp, err := r.ReadBig(width)
		if err != nil || fp.Cmp(s.p) >= 0 {
			return false
		}
		if err := r.Done(); err != nil {
			return false
		}
		mine := s.family.HashIndicator(seed, adviceCoords(advice))
		if mine.Cmp(fp) != 0 {
			return false
		}
	}
	// Content checks on our own full advice, exactly as in SymLCP.
	a, err := s.lcp.decode(advice)
	if err != nil {
		return false
	}
	g, err := graph.FromAdjacencyBits(s.n, a.adj)
	if err != nil {
		return false
	}
	if len(g.Neighbors(v)) != len(view.Neighbors) {
		return false
	}
	for _, u := range view.Neighbors {
		if !g.HasEdge(v, u) {
			return false
		}
	}
	if !perm.IsValid(a.rho) || a.rho[a.witness] == a.witness {
		return false
	}
	return g.IsAutomorphism(a.rho)
}

// HonestProver returns the SymLCP prover (the advice is identical).
func (s *SymRPLS) HonestProver() network.Prover {
	return s.lcp.HonestProver()
}

// InconsistentAdviceProver hands one node an advice string for a different
// (symmetric) graph: the fingerprint comparison must catch the mismatch.
func (s *SymRPLS) InconsistentAdviceProver(at int) network.Prover {
	return proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		resp, err := s.lcp.HonestProver().Respond(round, view)
		if err != nil {
			return nil, err
		}
		fake := graph.Cycle(s.n)
		rho := graph.FindNontrivialAutomorphism(fake)
		if rho == nil {
			return nil, errors.New("core: cycle has no automorphism?")
		}
		resp.PerNode[at] = s.lcp.encode(symLCPAdvice{
			adj: fake.AdjacencyBits(), rho: rho, witness: rho.Moved(),
		})
		return resp, nil
	})
}

// Run executes the scheme on g against the given prover.
func (s *SymRPLS) Run(g *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	return network.Run(s.Spec(), g, nil, prover, network.Options{Seed: seed})
}
