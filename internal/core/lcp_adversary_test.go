package core

import (
	"math/big"
	"math/rand"
	"testing"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/wire"
)

func bigPrime(v int64) *big.Int { return big.NewInt(v) }

func TestSymLCPCompleteness(t *testing.T) {
	g := symmetricGraph(t, 7, 30)
	lcp, err := NewSymLCP(g.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lcp.Run(g, lcp.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest LCP rejected: %v", res.Decisions)
	}
	// The cost is the advice length, and it is Θ(n²).
	if got := res.Cost.FromProver[0]; got != lcp.AdviceBits() {
		t.Fatalf("advice bits = %d, want %d", got, lcp.AdviceBits())
	}
	n := g.N()
	if lcp.AdviceBits() < n*(n-1)/2 {
		t.Fatal("advice not quadratic")
	}
}

func TestSymLCPSoundness(t *testing.T) {
	// On an asymmetric graph, no advice makes all nodes accept: the
	// honest prover falls back to the identity (witness check fires), and
	// wrong-matrix advice is caught by the row owners. This scheme is
	// deterministic, so a single run each suffices.
	g := asymmetricGraph(t, 8, 31)
	lcp, err := NewSymLCP(g.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lcp.Run(g, lcp.HonestProver(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("asymmetric graph accepted by SymLCP")
	}

	// A forged matrix (claiming a symmetric graph) is caught by some row
	// owner.
	forged := proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		fake := graph.Cycle(g.N()) // symmetric, but not the real graph
		rho := graph.FindNontrivialAutomorphism(fake)
		adv := lcp.encode(symLCPAdvice{adj: fake.AdjacencyBits(), rho: rho, witness: rho.Moved()})
		return network.Broadcast(g.N(), adv), nil
	})
	res, err = lcp.Run(g, forged, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("forged matrix accepted by SymLCP")
	}
}

func TestGNILCP(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	lcp, err := NewGNILCP(7)
	if err != nil {
		t.Fatal(err)
	}
	yes, err := NewGNIYesInstance(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lcp.Run(yes.G0, yes.G1, lcp.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("yes-instance rejected by GNILCP")
	}
	if got := res.Cost.FromProver[0]; got != lcp.AdviceBits() {
		t.Fatalf("advice bits = %d, want %d", got, lcp.AdviceBits())
	}

	no, err := NewGNINoInstance(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err = lcp.Run(no.G0, no.G1, lcp.HonestProver(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("isomorphic pair accepted by GNILCP")
	}
}

func TestSpanTreeLCP(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := graph.ConnectedGNP(20, 0.3, rng)
	lcp, err := NewSpanTreeLCP(20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lcp.Run(g, lcp.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("honest spanning tree rejected")
	}
	if got := res.Cost.FromProver[3]; got != lcp.AdviceBits() {
		t.Fatalf("advice bits = %d, want %d", got, lcp.AdviceBits())
	}

	// Corrupted advice must be rejected.
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if node != 5 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 1
		return out
	}
	res, err = network.Run(lcp.Spec(), g, nil, lcp.HonestProver(),
		network.Options{Seed: 2, Corrupt: corrupt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("corrupted tree advice accepted")
	}
}

func TestLCPValidation(t *testing.T) {
	if _, err := NewSymLCP(1); err == nil {
		t.Fatal("SymLCP n=1 accepted")
	}
	if _, err := NewGNILCP(1); err == nil {
		t.Fatal("GNILCP n=1 accepted")
	}
	if _, err := NewSpanTreeLCP(0); err == nil {
		t.Fatal("SpanTreeLCP n=0 accepted")
	}
}

func TestEchoCheatingProverCaught(t *testing.T) {
	// The echo cheater finds a colliding index but the root's i = i_r
	// check catches it deterministically.
	g := asymmetricGraph(t, 8, 34)
	proto, err := NewSymDMAM(g.N(), 34)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		rho := perm.RandomNonIdentity(g.N(), rng)
		res, err := proto.Run(g, proto.EchoCheatingProver(rho, rho.Moved()), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("echo cheater accepted")
		}
	}
}

func TestInconsistentBroadcastCaught(t *testing.T) {
	g := asymmetricGraph(t, 8, 36)
	proto, err := NewSymDMAM(g.N(), 36)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		res, err := proto.Run(g, proto.InconsistentBroadcastProver(rng), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("inconsistent broadcast accepted")
		}
	}
}

func TestPostHocAttackFailsAgainstBigPrime(t *testing.T) {
	// Against the real Protocol 2 modulus the post-hoc search is hopeless.
	g := symmetricGraph(t, 6, 38) // symmetric: but the attacker doesn't use the automorphism
	proto, err := NewSymDAM(g.N(), 38)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(39))
	res, err := proto.Run(g, proto.PostHocCollisionProver(50, rng), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker commits to a random non-automorphism: rejected.
	if res.Accepted {
		t.Fatal("post-hoc attack succeeded against n^{n+2} modulus")
	}
}

func TestPostHocAttackBreaksSmallPrime(t *testing.T) {
	// E9 in miniature: the same attack against a weakened protocol whose
	// modulus is tiny succeeds with noticeable probability — demonstrating
	// why challenge-first protocols need the giant modulus.
	if testing.Short() {
		t.Skip("post-hoc sweep is slow")
	}
	g := asymmetricGraph(t, 8, 40)
	weak, err := NewSymDAMWithPrime(g.N(), bigPrime(101))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	accepts := 0
	const trials = 15
	for i := 0; i < trials; i++ {
		res, err := weak.Run(g, weak.PostHocCollisionProver(800, rng), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	// With p = 101 and an 800-mapping budget the collision search should
	// essentially always succeed.
	if accepts < trials/2 {
		t.Fatalf("attack succeeded only %d/%d times against p=101", accepts, trials)
	}
}

func TestGarbageProverRejectedEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := symmetricGraph(t, 6, 42)

	dmam, err := NewSymDMAM(g.N(), 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dmam.Run(g, GarbageProver([]int{64, 64}, rng), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("garbage accepted by SymDMAM")
	}

	dam, err := NewSymDAM(g.N(), 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err = dam.Run(g, GarbageProver([]int{256}, rng), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("garbage accepted by SymDAM")
	}
}
