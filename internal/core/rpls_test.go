package core

import (
	"testing"
)

func TestSymRPLSCompleteness(t *testing.T) {
	g := symmetricGraph(t, 8, 70)
	rpls, err := NewSymRPLS(g.N(), 70)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := rpls.Run(g, rpls.HonestProver(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("seed %d: honest advice rejected: %v", seed, res.Decisions)
		}
	}
}

func TestSymRPLSVerificationCostIsLogarithmic(t *testing.T) {
	// The whole point of [4]: the node-to-node verification traffic drops
	// from Θ(deg·n²) to Θ(deg·log n) while the advice stays Θ(n²).
	g := symmetricGraph(t, 12, 71)
	n := g.N()

	rpls, err := NewSymRPLS(n, 71)
	if err != nil {
		t.Fatal(err)
	}
	lcp, err := NewSymLCP(n)
	if err != nil {
		t.Fatal(err)
	}

	rres, err := rpls.Run(g, rpls.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := lcp.Run(g, lcp.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rres.Accepted || !lres.Accepted {
		t.Fatal("honest runs rejected")
	}

	// Advice (prover bits) identical; verification traffic exponentially
	// smaller for RPLS.
	if rres.Cost.FromProver[0] != lres.Cost.FromProver[0] {
		t.Fatalf("advice bits differ: %d vs %d",
			rres.Cost.FromProver[0], lres.Cost.FromProver[0])
	}
	rN2N := rres.Cost.MaxNodeToNodeBits()
	lN2N := lres.Cost.MaxNodeToNodeBits()
	if rN2N*10 > lN2N {
		t.Fatalf("fingerprinting saved too little: RPLS %d vs LCP %d node-to-node bits",
			rN2N, lN2N)
	}
	t.Logf("n=%d: advice %d bits; node-to-node RPLS %d vs LCP %d",
		n, rpls.AdviceBits(), rN2N, lN2N)
}

func TestSymRPLSCatchesInconsistentAdvice(t *testing.T) {
	// One node receives advice for a different graph: the random
	// fingerprint comparison must catch it with high probability.
	g := symmetricGraph(t, 8, 72)
	rpls, err := NewSymRPLS(g.N(), 72)
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		res, err := rpls.Run(g, rpls.InconsistentAdviceProver(2), seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	// Collision probability per comparison ≤ adviceBits/p ≪ 1/3.
	if accepts > 1 {
		t.Fatalf("inconsistent advice accepted %d/%d times", accepts, trials)
	}
}

func TestSymRPLSRejectsAsymmetric(t *testing.T) {
	g := asymmetricGraph(t, 9, 73)
	rpls, err := NewSymRPLS(g.N(), 73)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rpls.Run(g, rpls.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("rigid graph accepted")
	}
}

func TestSymRPLSFingerprintBits(t *testing.T) {
	rpls, err := NewSymRPLS(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2·⌈lg p⌉ with p ≤ 100·64³: at most 2·25 bits.
	if fb := rpls.FingerprintBits(); fb > 50 {
		t.Fatalf("fingerprint %d bits, want O(log n)", fb)
	}
	if rpls.AdviceBits() < 64*63/2 {
		t.Fatal("advice not quadratic")
	}
}
