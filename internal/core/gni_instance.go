package core

import (
	"fmt"
	"math/rand"

	"dip/internal/graph"
)

// GNIInstance is one (G₀, G₁) pair together with its ground truth.
type GNIInstance struct {
	G0, G1 *graph.Graph
	// NonIsomorphic is the ground truth: true for yes-instances of GNI.
	NonIsomorphic bool
}

// NewGNIYesInstance samples a yes-instance of the promise problem: two
// connected asymmetric non-isomorphic graphs on n vertices, the second
// given as a random relabeling (so degree sequences and edge counts do not
// give the answer away trivially to a by-eye check).
func NewGNIYesInstance(n int, rng *rand.Rand) (*GNIInstance, error) {
	g0, err := graph.RandomAsymmetricConnected(n, rng)
	if err != nil {
		return nil, fmt.Errorf("core: GNI yes-instance: %w", err)
	}
	for {
		g1, err := graph.RandomAsymmetricConnected(n, rng)
		if err != nil {
			return nil, fmt.Errorf("core: GNI yes-instance: %w", err)
		}
		if graph.AreIsomorphic(g0, g1) {
			continue
		}
		shuffled, _ := g1.Shuffle(rng)
		return &GNIInstance{G0: g0, G1: shuffled, NonIsomorphic: true}, nil
	}
}

// NewGNINoInstance samples a no-instance: G₁ is a random relabeling of the
// (connected, asymmetric) network graph G₀.
func NewGNINoInstance(n int, rng *rand.Rand) (*GNIInstance, error) {
	g0, err := graph.RandomAsymmetricConnected(n, rng)
	if err != nil {
		return nil, fmt.Errorf("core: GNI no-instance: %w", err)
	}
	shuffled, _ := g0.Shuffle(rng)
	return &GNIInstance{G0: g0, G1: shuffled, NonIsomorphic: false}, nil
}
