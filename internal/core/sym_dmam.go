package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/bitset"
	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/prime"
	"dip/internal/setupcache"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// SymDMAM is Protocol 1 of the paper (Section 3.1): the O(log n)-bit dMAM
// interactive proof that the network graph has a non-trivial automorphism.
//
// Round structure:
//
//	Merlin  — per node v: [root r | ρ_v | parent t_v | dist d_v]
//	          (r is a broadcast field: nodes verify neighbors agree)
//	Arthur  — per node v: a random hash index i_v ∈ [|H|] = Z_p
//	Merlin  — per node v: [echo i | a_v | b_v]  with a_v, b_v ∈ Z_p
//
// where the hash family is the Theorem 3.2 linear family over a prime
// p ∈ [10n³, 100n³], a_v is claimed to be Σ_{u∈T_v} h_i([u, N(u)]) and b_v
// is Σ_{u∈T_v} h_i([ρ(u), ρ(N(u))]). The crucial point — and the subject of
// ablation experiment E9 — is that the prover commits to ρ before seeing
// the random hash index.
type SymDMAM struct {
	n      int
	p      *big.Int
	family *hashing.LinearFamily
}

// NewSymDMAM builds the protocol for graphs on n ≥ 2 vertices, deriving the
// hash modulus from seed (Section 3.1.2: a prime in [10n³, 100n³]).
func NewSymDMAM(n int, seed int64) (*SymDMAM, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: SymDMAM needs n >= 2, got %d", n)
	}
	p, err := prime.ForCubicWindow(n, seed)
	if err != nil {
		return nil, fmt.Errorf("core: SymDMAM modulus: %w", err)
	}
	family, err := hashing.NewLinearFamily(n*n, p)
	if err != nil {
		return nil, fmt.Errorf("core: SymDMAM family: %w", err)
	}
	return &SymDMAM{n: n, p: p, family: family}, nil
}

// N returns the number of vertices the protocol instance is for.
func (s *SymDMAM) N() int { return s.n }

// P returns (a copy of) the hash modulus.
func (s *SymDMAM) P() *big.Int { return new(big.Int).Set(s.p) }

// idWidth is the bit width of a vertex identifier.
func (s *SymDMAM) idWidth() int { return wire.WidthFor(s.n) }

// hashWidth is the bit width of a hash index or hash value.
func (s *SymDMAM) hashWidth() int { return wire.WidthForBig(s.p) }

// firstMessage is the decoded first Merlin message.
type symDMAMFirst struct {
	root int
	rho  int
	tree spantree.Advice
}

func (s *SymDMAM) encodeFirst(m symDMAMFirst) wire.Message {
	var w wire.Writer
	w.WriteInt(m.root, s.idWidth())
	w.WriteInt(m.rho, s.idWidth())
	w.WriteInt(m.tree.Parent, s.idWidth())
	w.WriteInt(m.tree.Dist, s.idWidth())
	return w.Message()
}

func (s *SymDMAM) decodeFirst(m wire.Message) (symDMAMFirst, error) {
	r := wire.NewReader(m)
	var out symDMAMFirst
	var err error
	if out.root, err = r.ReadInt(s.idWidth()); err != nil {
		return out, err
	}
	if out.rho, err = r.ReadInt(s.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent, err = r.ReadInt(s.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(s.idWidth()); err != nil {
		return out, err
	}
	out.tree.Root = out.root
	if out.root >= s.n || out.rho >= s.n || out.tree.Parent >= s.n {
		return out, errors.New("core: vertex id out of range")
	}
	return out, r.Done()
}

// secondMessage is the decoded second Merlin message.
type symDMAMSecond struct {
	echo *big.Int // claimed hash index chosen by the root
	a, b *big.Int
}

func (s *SymDMAM) encodeSecond(m symDMAMSecond) wire.Message {
	var w wire.Writer
	w.WriteBig(m.echo, s.hashWidth())
	w.WriteBig(m.a, s.hashWidth())
	w.WriteBig(m.b, s.hashWidth())
	return w.Message()
}

func (s *SymDMAM) decodeSecond(m wire.Message) (symDMAMSecond, error) {
	r := wire.NewReader(m)
	var out symDMAMSecond
	var err error
	if out.echo, err = r.ReadBig(s.hashWidth()); err != nil {
		return out, err
	}
	if out.a, err = r.ReadBig(s.hashWidth()); err != nil {
		return out, err
	}
	if out.b, err = r.ReadBig(s.hashWidth()); err != nil {
		return out, err
	}
	for _, v := range []*big.Int{out.echo, out.a, out.b} {
		if v.Cmp(s.p) >= 0 {
			return out, errors.New("core: hash value out of range")
		}
	}
	return out, r.Done()
}

// Spec returns the protocol's round schedule and verifier.
func (s *SymDMAM) Spec() *network.Spec {
	return &network.Spec{
		Name: "sym-dmam",
		Rounds: []network.Round{
			{Kind: network.Merlin},
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				return bigChallenge(rng, s.p)
			}},
			{Kind: network.Merlin},
		},
		Decide: s.decide,
	}
}

// decide is the verification procedure of Protocol 1, run at node v.
func (s *SymDMAM) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != s.n {
		return false
	}
	first, err := s.decodeFirst(view.Responses[0])
	if err != nil {
		return false
	}
	second, err := s.decodeSecond(view.Responses[1])
	if err != nil {
		return false
	}

	// Neighbor copies of both rounds, with broadcast-field checks: all
	// nodes must have received the same root and the same echoed index.
	neighborFirst := make(map[int]symDMAMFirst, len(view.Neighbors))
	neighborSecond := make(map[int]symDMAMSecond, len(view.Neighbors))
	for _, u := range view.Neighbors {
		nf, err := s.decodeFirst(view.NeighborResponses[0][u])
		if err != nil {
			return false
		}
		if nf.root != first.root {
			return false
		}
		neighborFirst[u] = nf
		ns, err := s.decodeSecond(view.NeighborResponses[1][u])
		if err != nil {
			return false
		}
		if ns.echo.Cmp(second.echo) != 0 {
			return false
		}
		neighborSecond[u] = ns
	}

	// Line 1: spanning-tree checks.
	treeAdvice := make(map[int]spantree.Advice, len(neighborFirst))
	for u, nf := range neighborFirst {
		treeAdvice[u] = nf.tree
	}
	if !spantree.VerifyLocal(v, first.tree, treeAdvice, view.HasNeighbor) {
		return false
	}

	// Line 2: C(v) = {u ∈ N(v) : t_u = v}.
	children := spantree.Children(v, treeAdvice)

	i := second.echo

	// Line 3a: a_v = h_i([v, N(v)]) + Σ_{u∈C(v)} a_u.
	closed := bitset.New(s.n)
	closed.Add(v)
	for _, u := range view.Neighbors {
		closed.Add(u)
	}
	aExpect := s.family.HashRowMatrix(i, s.n, v, closed)
	for _, u := range children {
		aExpect = s.family.AddModInto(aExpect, neighborSecond[u].a)
	}
	if aExpect.Cmp(second.a) != 0 {
		return false
	}

	// Line 3b: b_v = h_i([ρ(v), ρ(N(v))]) + Σ_{u∈C(v)} b_u, where node v
	// learns the images ρ(u) of its neighbors from their first-round
	// messages (Definition 1: v sees the responses of N(v)).
	mappedRow := closed // closed is dead past line 3a; reuse its storage
	mappedRow.Clear()
	mappedRow.Add(first.rho)
	for _, nf := range neighborFirst {
		mappedRow.Add(nf.rho)
	}
	bExpect := s.family.HashRowMatrix(i, s.n, first.rho, mappedRow)
	for _, u := range children {
		bExpect = s.family.AddModInto(bExpect, neighborSecond[u].b)
	}
	if bExpect.Cmp(second.b) != 0 {
		return false
	}

	// Line 4: root-only checks.
	if v == first.root {
		if second.a.Cmp(second.b) != 0 {
			return false
		}
		if first.rho == v {
			return false // claimed automorphism must move the root
		}
		iv, err := decodeBigChallenge(view.MyChallenges[0], s.p)
		if err != nil || iv.Cmp(i) != 0 {
			return false
		}
	}
	return true
}

// HonestProver returns the prover of Theorem 3.4's completeness direction:
// it finds a non-trivial automorphism (by refinement-backtracking search —
// the computational stand-in for Merlin's unbounded power), commits to it,
// and computes the hash sums honestly. A fresh prover must be used per run.
func (s *SymDMAM) HonestProver() network.Prover {
	return &symDMAMProver{proto: s}
}

// ProverWithMapping returns an honest-except-for-ρ prover: it runs the
// honest strategy but commits to the given mapping (and root) instead of
// searching for an automorphism. It is the building block for the cheating
// provers in adversary.go and for tests.
func (s *SymDMAM) ProverWithMapping(rho perm.Perm, root int) network.Prover {
	return &symDMAMProver{proto: s, fixedRho: rho, fixedRoot: root}
}

type symDMAMProver struct {
	proto     *SymDMAM
	fixedRho  perm.Perm
	fixedRoot int

	// state carried from the first to the second Merlin round
	rho    perm.Perm
	root   int
	advice []spantree.Advice
	g      *graph.Graph
}

func (p *symDMAMProver) Respond(round int, view *network.ProverView) (*network.Response, error) {
	switch round {
	case 0:
		return p.first(view)
	case 1:
		return p.second(view)
	default:
		return nil, fmt.Errorf("core: SymDMAM prover called for round %d", round)
	}
}

func (p *symDMAMProver) first(view *network.ProverView) (*network.Response, error) {
	s := p.proto
	g := view.Graph
	if g.N() != s.n {
		return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g.N(), s.n)
	}
	p.g = g

	// Automorphism search and spanning-tree construction are pure functions
	// of the graph's content, so both go through the per-graph setup cache:
	// repeated requests on one instance (the service's steady state) pay
	// for the refinement-backtracking search once.
	art := setupcache.ForGraph(g)
	if p.fixedRho != nil {
		p.rho = p.fixedRho
		p.root = p.fixedRoot
	} else {
		p.rho = art.Automorphism()
		if p.rho == nil {
			// The graph is asymmetric: Merlin cannot win. Commit to a
			// transposition so the protocol proceeds (and rejects).
			p.rho = perm.Identity(s.n)
			p.rho[0], p.rho[1] = 1, 0
		}
		p.root = p.rho.Moved()
	}

	advice, err := art.SpanTree(p.root)
	if err != nil {
		return nil, fmt.Errorf("core: SymDMAM prover tree: %w", err)
	}
	p.advice = advice

	resp := &network.Response{PerNode: make([]wire.Message, s.n)}
	for v := 0; v < s.n; v++ {
		resp.PerNode[v] = s.encodeFirst(symDMAMFirst{
			root: p.root,
			rho:  p.rho[v],
			tree: advice[v],
		})
	}
	return resp, nil
}

func (p *symDMAMProver) second(view *network.ProverView) (*network.Response, error) {
	s := p.proto
	i, err := decodeBigChallenge(view.Challenges[0][p.root], s.p)
	if err != nil {
		return nil, fmt.Errorf("core: SymDMAM prover challenge: %w", err)
	}
	a, b := subtreeHashSums(p.g, s.family, i, p.rho, p.advice)

	resp := &network.Response{PerNode: make([]wire.Message, s.n)}
	for v := 0; v < s.n; v++ {
		resp.PerNode[v] = s.encodeSecond(symDMAMSecond{echo: i, a: a[v], b: b[v]})
	}
	return resp, nil
}

// subtreeHashSums computes, for every node v, the honest subtree aggregates
//
//	a_v = Σ_{u∈T_v} h_i([u, N(u)])
//	b_v = Σ_{u∈T_v} h_i([ρ(u), ρ(N(u))])
//
// in post-order over the tree described by advice. It is shared by the
// provers of Protocols 1 and 2 and the DSym protocol.
func subtreeHashSums(g *graph.Graph, family *hashing.LinearFamily, i *big.Int, rho perm.Perm, advice []spantree.Advice) (a, b []*big.Int) {
	n := g.N()
	a = make([]*big.Int, n)
	b = make([]*big.Int, n)
	children := spantree.ChildLists(advice)
	closed := bitset.New(n)
	mapped := bitset.New(n)
	for _, v := range spantree.PostOrder(advice) {
		av := family.HashRowMatrix(i, n, v, g.ClosedRowInto(v, closed))
		closed.PermuteInto(mapped, rho)
		bv := family.HashRowMatrix(i, n, rho[v], mapped)
		for _, c := range children[v] {
			av = family.AddModInto(av, a[c])
			bv = family.AddModInto(bv, b[c])
		}
		a[v], b[v] = av, bv
	}
	return a, b
}

// Run executes the protocol on g against the given prover.
func (s *SymDMAM) Run(g *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	return network.Run(s.Spec(), g, nil, prover, network.Options{Seed: seed})
}
