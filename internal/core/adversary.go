package core

import (
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/bitset"
	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/wire"
)

// This file collects cheating provers. Each one implements a concrete
// attack against a protocol; the soundness experiments (E7) measure their
// acceptance probabilities, and the ablation experiment (E9) shows which
// protocol design choice defeats which attack.

// fullMatrixHashes returns h_i(Σ_v [v, N(v)]) and h_i(Σ_v [ρ(v), ρ(N(v))])
// — the two quantities whose equality the Sym protocols test at the root.
func fullMatrixHashes(g *graph.Graph, family *hashing.LinearFamily, i *big.Int, rho perm.Perm) (*big.Int, *big.Int) {
	n := g.N()
	ha, hb := new(big.Int), new(big.Int)
	mapped := bitset.New(n)
	for v := 0; v < n; v++ {
		closed := g.ClosedRow(v)
		ha = family.AddModInto(ha, family.HashRowMatrix(i, n, v, closed))
		hb = family.AddModInto(hb, family.HashRowMatrix(i, n, rho[v], closed.PermuteInto(mapped, rho)))
	}
	return ha, hb
}

// RandomMappingProver attacks Protocol 1 on an asymmetric graph: it runs
// the honest strategy but commits to a random non-identity mapping. It is
// caught by the hash comparison with probability ≥ 1 - n²/p.
func (s *SymDMAM) RandomMappingProver(rng *rand.Rand) network.Prover {
	rho := perm.RandomNonIdentity(s.n, rng)
	return s.ProverWithMapping(rho, rho.Moved())
}

// symDMAMEchoCheater attacks Protocol 1 by ignoring the root's challenge:
// after the commitment round it scans hash indices for one under which its
// fake mapping collides, and echoes that index instead of the root's. The
// broadcast-echo check — the root verifies i = i_r — defeats this attack
// deterministically; experiment E7 confirms 0% acceptance.
type symDMAMEchoCheater struct {
	proto *SymDMAM
	inner *symDMAMProver
	rho   perm.Perm
	root  int
}

// EchoCheatingProver returns the echo-forging attacker committed to rho.
func (s *SymDMAM) EchoCheatingProver(rho perm.Perm, root int) network.Prover {
	return &symDMAMEchoCheater{
		proto: s,
		inner: &symDMAMProver{proto: s, fixedRho: rho, fixedRoot: root},
		rho:   rho,
		root:  root,
	}
}

func (c *symDMAMEchoCheater) Respond(round int, view *network.ProverView) (*network.Response, error) {
	if round == 0 {
		return c.inner.Respond(0, view)
	}
	if round != 1 {
		return nil, fmt.Errorf("core: echo cheater called for round %d", round)
	}
	s := c.proto
	g := c.inner.g

	// Search a budget of indices for a collision. (The difference
	// polynomial has ≤ n² roots in Z_p, so a small scan often finds one —
	// which is exactly why the echo must be verified.)
	var forged *big.Int
	for candidate := int64(0); candidate < 4096; candidate++ {
		i := big.NewInt(candidate)
		ha, hb := fullMatrixHashes(g, s.family, i, c.rho)
		if ha.Cmp(hb) == 0 {
			forged = i
			break
		}
	}
	if forged == nil {
		// No collision in budget: echo the real challenge and lose.
		var err error
		forged, err = decodeBigChallenge(view.Challenges[0][c.root], s.p)
		if err != nil {
			return nil, err
		}
	}
	a, b := subtreeHashSums(g, s.family, forged, c.rho, c.inner.advice)
	resp := &network.Response{PerNode: make([]wire.Message, s.n)}
	for v := 0; v < s.n; v++ {
		resp.PerNode[v] = s.encodeSecond(symDMAMSecond{echo: forged, a: a[v], b: b[v]})
	}
	return resp, nil
}

// InconsistentBroadcastProver attacks Protocol 1 by telling different nodes
// different roots (splitting the network's view). Broadcast verification —
// every node compares the root field with its neighbors — defeats it on any
// connected graph.
func (s *SymDMAM) InconsistentBroadcastProver(rng *rand.Rand) network.Prover {
	inner := &symDMAMProver{proto: s, fixedRho: perm.RandomNonIdentity(s.n, rng), fixedRoot: 0}
	return proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		resp, err := inner.Respond(round, view)
		if err != nil || round != 0 {
			return resp, err
		}
		// Rewrite node n-1's root field to a different vertex.
		m := resp.PerNode[s.n-1]
		first, err := s.decodeFirst(m)
		if err != nil {
			return nil, err
		}
		first.root = (first.root + 1) % s.n
		resp.PerNode[s.n-1] = s.encodeFirst(first)
		return resp, nil
	})
}

// PostHocCollisionProver attacks Protocol 2 (and its weakened E9 variants):
// it sees the challenge i *before* choosing the mapping, and searches up to
// budget random non-identity mappings for one whose permuted-matrix hash
// collides with the true matrix hash under i. Against the paper's
// n^{n+2}-sized modulus the search space is hopeless; against a small
// modulus (NewSymDAMWithPrime) the attack succeeds at rate ≈ budget/p —
// which is exactly the ablation E9 measures.
func (s *SymDAM) PostHocCollisionProver(budget int, rng *rand.Rand) network.Prover {
	p := &symDAMProver{proto: s}
	p.PostHoc = func(g *graph.Graph, i *big.Int) (perm.Perm, int) {
		fallback := perm.RandomNonIdentity(s.n, rng)
		if i == nil {
			// Root-selection call: any moved vertex works as root.
			return fallback, fallback.Moved()
		}
		for t := 0; t < budget; t++ {
			rho := perm.RandomNonIdentity(s.n, rng)
			ha, hb := fullMatrixHashes(g, s.family, i, rho)
			if ha.Cmp(hb) == 0 {
				return rho, rho.Moved()
			}
		}
		return fallback, fallback.Moved()
	}
	return p
}

// GarbageProver sends uniformly random bits of the given sizes in every
// Merlin round — the sanity-check adversary every protocol must reject.
func GarbageProver(bitsPerRound []int, rng *rand.Rand) network.Prover {
	return proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		if round >= len(bitsPerRound) {
			return nil, fmt.Errorf("core: garbage prover has no size for round %d", round)
		}
		n := view.Graph.N()
		resp := &network.Response{PerNode: make([]wire.Message, n)}
		for v := 0; v < n; v++ {
			var w wire.Writer
			for i := 0; i < bitsPerRound[round]; i++ {
				w.WriteBool(rng.Intn(2) == 1)
			}
			resp.PerNode[v] = w.Message()
		}
		return resp, nil
	})
}

// OptimalGNICheater is the strongest adversary against the GNI protocol on
// a no-instance: the honest search itself, which claims a success whenever
// a hash preimage exists. No prover can do better (Lemma 3.9-style: success
// is exactly preimage existence), so measuring it measures the protocol's
// true soundness error.
func (g *GNIDAMAM) OptimalGNICheater() network.Prover {
	return g.HonestProver()
}
