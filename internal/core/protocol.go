// Package core implements the paper's protocols: the dMAM and dAM
// interactive proofs for graph Symmetry (Protocols 1 and 2, Sections 3.1 and
// 3.2), the dAM protocol for Dumbbell Symmetry (Section 3.3), the
// distributed Goldwasser–Sipser dAMAM protocol for Graph Non-Isomorphism
// (Section 4), the non-interactive "distributed NP" (LCP) baselines they are
// compared against, and the cheating provers used to measure soundness.
//
// Every protocol is expressed as a network.Spec (round schedule plus
// per-node decision function) together with an honest network.Prover.
// Running a protocol against its honest prover on a yes-instance must
// accept; running any prover on a no-instance must accept with probability
// below 1/3.
package core

import (
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/wire"
)

// DefaultGNIRepetitions is the default parallel-repetition count of the
// GNI protocols (dAMAM, promise-free, marked). 40 repetitions push the
// per-repetition constant-gap acceptance difference of the
// Goldwasser–Sipser set-size test far past the paper's 2/3 vs 1/3
// thresholds. Every GNI entry point — dip.Options.Repetitions and the
// cmd/dipsim -k flag alike — resolves its default from this constant, so
// the library and the CLI cannot drift apart.
const DefaultGNIRepetitions = 40

// msgEqual reports whether two wire messages carry identical bit strings.
func msgEqual(a, b wire.Message) bool {
	if a.Bits != b.Bits {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// bigChallenge draws a uniform element of [0, modulus) and encodes it in
// exactly WidthForBig(modulus) bits.
func bigChallenge(rng *rand.Rand, modulus *big.Int) wire.Message {
	v := new(big.Int).Rand(rng, modulus)
	var w wire.Writer
	w.WriteBig(v, wire.WidthForBig(modulus))
	return w.Message()
}

// decodeBigChallenge parses a challenge produced by bigChallenge; it fails
// if the message has the wrong length or the value is outside [0, modulus).
func decodeBigChallenge(m wire.Message, modulus *big.Int) (*big.Int, error) {
	r := wire.NewReader(m)
	v, err := r.ReadBig(wire.WidthForBig(modulus))
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if v.Cmp(modulus) >= 0 {
		return nil, fmt.Errorf("core: challenge %v out of range", v)
	}
	return v, nil
}
