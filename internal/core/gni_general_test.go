package core

import (
	"math/rand"
	"testing"

	"dip/internal/graph"
	"dip/internal/perm"
)

func TestGNIGeneralValidation(t *testing.T) {
	if _, err := NewGNIGeneral(2, 5, 0); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := NewGNIGeneral(9, 5, 0); err == nil {
		t.Fatal("n=9 accepted (brute-force Aut bound)")
	}
	if _, err := NewGNIGeneral(6, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	proto, err := NewGNIGeneral(6, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if proto.N() != 6 || proto.K() != 10 {
		t.Fatal("accessors wrong")
	}
	yes, no := proto.SingleShotBounds()
	if !(0 < no && no < yes && yes < 1) {
		t.Fatalf("bounds (%v, %v)", yes, no)
	}
}

// symmetricPair builds two connected SYMMETRIC non-isomorphic graphs on n
// vertices — the instances the promise-restricted protocol cannot handle.
func symmetricPair(t *testing.T, n int, rng *rand.Rand) (*graph.Graph, *graph.Graph) {
	t.Helper()
	// C_n (dihedral symmetry group) vs the balanced complete bipartite
	// graph (wreath-product symmetry): both highly symmetric, connected,
	// and non-isomorphic for n >= 6.
	a := graph.Cycle(n)
	b := graph.New(n)
	half := n / 2
	for u := 0; u < half; u++ {
		for v := half; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	if graph.IsAsymmetric(a) || graph.IsAsymmetric(b) {
		t.Fatal("test graphs unexpectedly rigid")
	}
	if graph.AreIsomorphic(a, b) {
		t.Fatal("test graphs unexpectedly isomorphic")
	}
	if !a.IsConnected() || !b.IsConnected() {
		t.Fatal("test graphs disconnected")
	}
	return a, b
}

func TestGNIGeneralOnSymmetricGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("general GNI run is slow")
	}
	rng := rand.New(rand.NewSource(60))
	a, b := symmetricPair(t, 6, rng)
	bShuffled, _ := b.Shuffle(rng)

	proto, err := NewGNIGeneral(6, 40, 60)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g0, g1 *graph.Graph, seed0 int64, trials int) float64 {
		accepts := 0
		for i := 0; i < trials; i++ {
			res, err := proto.Run(g0, g1, proto.HonestProver(), seed0+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted {
				accepts++
			}
		}
		return float64(accepts) / float64(trials)
	}

	// Yes-instance: symmetric non-isomorphic pair.
	yesRate := run(a, bShuffled, 100, 8)
	// No-instance: a symmetric graph vs a shuffled copy of itself.
	aShuffled, _ := a.Shuffle(rng)
	noRate := run(a, aShuffled, 200, 8)
	t.Logf("general GNI on symmetric graphs: yes %.2f, no %.2f", yesRate, noRate)
	if yesRate <= 1.0/3 {
		t.Fatalf("yes rate %.2f too low", yesRate)
	}
	if noRate >= 1.0/3 {
		t.Fatalf("no rate %.2f too high", noRate)
	}
}

func TestGNIGeneralOnAsymmetricGraphsStillWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("general GNI run is slow")
	}
	rng := rand.New(rand.NewSource(61))
	proto, err := NewGNIGeneral(6, 30, 61)
	if err != nil {
		t.Fatal(err)
	}
	yes, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	accepted := false
	for seed := int64(0); seed < 3 && !accepted; seed++ {
		res, err := proto.Run(yes.G0, yes.G1, proto.HonestProver(), seed)
		if err != nil {
			t.Fatal(err)
		}
		accepted = res.Accepted
	}
	if !accepted {
		t.Fatal("asymmetric yes-instance never accepted")
	}
}

func TestCosetMinimal(t *testing.T) {
	// With the trivial group, every σ is minimal.
	id := graph.AllAutomorphisms(graph.Path(2)) // Aut(P2) = {id, swap}
	if len(id) != 2 {
		t.Fatalf("Aut(P2) size = %d", len(id))
	}
	// σ = id is minimal; σ = swap is not (swap∘swap = id < swap).
	if !cosetMinimal([]int{0, 1}, id) {
		t.Fatal("identity not coset-minimal")
	}
	if cosetMinimal([]int{1, 0}, id) {
		t.Fatal("swap reported coset-minimal")
	}
}

func TestGNIGeneralPairCountViaCosets(t *testing.T) {
	// The prover's enumeration must cover exactly n!/|Aut| coset-minimal
	// σ's; spot-check on K_{3,3}-like and cycle graphs at n = 4.
	for _, g := range []*graph.Graph{graph.Cycle(4), graph.Path(4), graph.Complete(4)} {
		auts := graph.AllAutomorphisms(g)
		count := 0
		pp := perm.Identity(4)
		for {
			if cosetMinimal(pp, auts) {
				count++
			}
			if !pp.NextLex() {
				break
			}
		}
		if want := 24 / len(auts); count != want {
			t.Fatalf("graph %v: %d coset-minimal σ, want %d (|Aut| = %d)",
				g, count, want, len(auts))
		}
	}
}
