package core

// Native fuzz targets for every protocol message decoder, mirroring
// internal/wire/fuzz_test.go one layer up: whatever bytes a (hostile)
// prover sends, a decoder must return a value or an error — never panic,
// never read out of bounds. Each target fuzzes one protocol family's
// decoders with instance parameters matching the checked-in seed corpus
// under testdata/fuzz (boundary shapes here via f.Add, honest protocol
// encodings in testdata — regenerate with `go run gen_fuzz_corpus.go`).
// `make fuzz-short` gives each target a few seconds of mutation on every
// verify run.

import (
	"testing"

	"dip/internal/wire"
)

// fuzzMessage reconstructs a wire.Message from fuzz inputs, discarding
// shapes that violate the wire invariant (the engine rejects those before
// any decoder sees them).
func fuzzMessage(t *testing.T, data []byte, bits int) wire.Message {
	if bits < 0 || (bits+7)/8 != len(data) {
		t.Skip()
	}
	return wire.Message{Data: data, Bits: bits}
}

func addBoundarySeeds(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{0x00}, 1)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 32)
}

func FuzzSymDecoders(f *testing.F) {
	dmam, err := NewSymDMAM(14, 1)
	if err != nil {
		f.Fatal(err)
	}
	dam, err := NewSymDAM(14, 1)
	if err != nil {
		f.Fatal(err)
	}
	addBoundarySeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, bits int) {
		m := fuzzMessage(t, data, bits)
		_, _ = dmam.decodeFirst(m)
		_, _ = dmam.decodeSecond(m)
		_, _ = dam.decode(m)
	})
}

func FuzzDSymDecoder(f *testing.F) {
	dsym, err := NewDSymDAM(4, 1, 1)
	if err != nil {
		f.Fatal(err)
	}
	addBoundarySeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, bits int) {
		m := fuzzMessage(t, data, bits)
		_, _ = dsym.decode(m)
	})
}

func FuzzGNIDecoders(f *testing.F) {
	gni, err := NewGNIDAMAM(6, 3, 1)
	if err != nil {
		f.Fatal(err)
	}
	gnid, err := NewGNIDAM(6, 3, 1)
	if err != nil {
		f.Fatal(err)
	}
	gng, err := NewGNIGeneral(6, 3, 1)
	if err != nil {
		f.Fatal(err)
	}
	marked, err := NewMarkedGNI(15, 6, 3, 1)
	if err != nil {
		f.Fatal(err)
	}
	addBoundarySeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, bits int) {
		m := fuzzMessage(t, data, bits)
		_, _ = gni.decodeFirst(m, nil)
		_, _ = gni.decodeFirst(m, []int{3, 3, 3})
		_, _ = gni.decodeSecond(m, 2)
		_, _ = gnid.decode(m)
		_, _ = gng.decode(m)
		_, _ = marked.decodeFirstPrefix(m)
		_, _ = marked.decodeFirst(m, 3)
		_, _ = marked.decodeSecond(m)
	})
}

func FuzzLCPDecoders(f *testing.F) {
	lcp, err := NewSymLCP(14)
	if err != nil {
		f.Fatal(err)
	}
	glcp, err := NewGNILCP(14)
	if err != nil {
		f.Fatal(err)
	}
	addBoundarySeeds(f)
	f.Fuzz(func(t *testing.T, data []byte, bits int) {
		m := fuzzMessage(t, data, bits)
		_, _ = lcp.decode(m)
		_, _, _ = glcp.decode(m)
	})
}
