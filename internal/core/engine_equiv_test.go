package core

import (
	"math/rand"
	"net"
	"reflect"
	"testing"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/peer"
	"dip/internal/perm"
	"dip/internal/wire"
)

// peerFleet boots k peer servers on ephemeral TCP ports, each rebuilding
// the case's spec through its SpecBuilder exactly as a dippeer process
// would, and returns their addresses. The networked equivalence column
// dials this fleet per run.
func peerFleet(t *testing.T, k int, build func() *network.Spec) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &peer.Server{Build: func([]byte) (*network.Spec, error) { return build(), nil }}
		go srv.Serve(l)
		t.Cleanup(func() {
			l.Close()
			srv.Close()
		})
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// equivCase is one protocol workload run under both engines.
type equivCase struct {
	name string
	// spec is rebuilt per run so closure state cannot leak between modes.
	spec func() *network.Spec
	g    *graph.Graph
	// inputs may be nil.
	inputs []wire.Message
	// prover is rebuilt per run: provers are stateful within a run.
	prover func() network.Prover
}

// TestEngineEquivalenceAllProtocols is the contract behind defaulting to
// the sequential engine: for every protocol in the repository, all three
// executors — sequential, concurrent, and networked (verifier nodes hosted
// by a real TCP peer fleet) — must produce bit-identical Cost, Decisions,
// and Transcript at a fixed seed, for honest and cheating provers alike.
func TestEngineEquivalenceAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol sweep is slow")
	}
	rng := rand.New(rand.NewSource(42))
	base, err := graph.RandomAsymmetricConnected(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	sym := graph.Doubled(base, 0) // 16 vertices, symmetric
	n := sym.N()
	asym, err := graph.RandomAsymmetricConnected(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	dsymG := graph.DSymGraph(graph.ConnectedGNP(6, 0.5, rng), 1)
	gnp := graph.ConnectedGNP(20, 0.3, rng)

	dmam, err := NewSymDMAM(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	dam, err := NewSymDAM(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsym, err := NewDSymDAM(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	symLCP, err := NewSymLCP(n)
	if err != nil {
		t.Fatal(err)
	}
	treeLCP, err := NewSpanTreeLCP(gnp.N())
	if err != nil {
		t.Fatal(err)
	}
	rpls, err := NewSymRPLS(n, 1)
	if err != nil {
		t.Fatal(err)
	}

	const gniN, gniK = 6, 4
	gniYes, err := NewGNIYesInstance(gniN, rng)
	if err != nil {
		t.Fatal(err)
	}
	gniNo, err := NewGNINoInstance(gniN, rng)
	if err != nil {
		t.Fatal(err)
	}
	damam, err := NewGNIDAMAM(gniN, gniK, 1)
	if err != nil {
		t.Fatal(err)
	}
	gniDAM, err := NewGNIDAM(gniN, gniK, 1)
	if err != nil {
		t.Fatal(err)
	}
	general, err := NewGNIGeneral(gniN, gniK, 1)
	if err != nil {
		t.Fatal(err)
	}
	c6 := graph.Cycle(gniN)
	c6Shuffled, _ := c6.Shuffle(rng)

	// Marked GNI: two disjoint rigid 6-vertex subgraphs joined by hubs.
	markedG, marks := markedEquivInstance(t, rng)
	marked, err := NewMarkedGNI(markedG.N(), 6, gniK, 1)
	if err != nil {
		t.Fatal(err)
	}
	markInputs, err := EncodeMarks(marks)
	if err != nil {
		t.Fatal(err)
	}

	cheatRho := perm.RandomNonIdentity(n, rand.New(rand.NewSource(3)))

	cases := []equivCase{
		{"sym-dmam-honest", dmam.Spec, sym, nil, dmam.HonestProver},
		// The factory reseeds its own RNG so both engine runs see the same
		// cheating mapping.
		{"sym-dmam-cheat", dmam.Spec, asym, nil, func() network.Prover {
			return dmam.RandomMappingProver(rand.New(rand.NewSource(7)))
		}},
		{"sym-dam-honest", dam.Spec, sym, nil, dam.HonestProver},
		{"sym-dam-cheat", dam.Spec, asym, nil, func() network.Prover {
			return dam.ProverWithMapping(cheatRho, cheatRho.Moved())
		}},
		{"dsym-dam", dsym.Spec, dsymG, nil, dsym.HonestProver},
		{"sym-lcp", symLCP.Spec, sym, nil, symLCP.HonestProver},
		{"spantree-lcp", treeLCP.Spec, gnp, nil, treeLCP.HonestProver},
		{"sym-rpls", rpls.Spec, sym, nil, rpls.HonestProver},
		{"gni-damam-yes", damam.Spec, gniYes.G0, EncodeGNIInputs(gniYes.G1), damam.HonestProver},
		{"gni-damam-no", damam.Spec, gniNo.G0, EncodeGNIInputs(gniNo.G1), damam.OptimalGNICheater},
		{"gni-dam", gniDAM.Spec, gniYes.G0, EncodeGNIInputs(gniYes.G1), gniDAM.HonestProver},
		{"gni-general", general.Spec, c6, EncodeGNIInputs(c6Shuffled), general.HonestProver},
		{"gni-marked", marked.Spec, markedG, markInputs, marked.HonestProver},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs := peerFleet(t, 3, tc.spec)
			for _, seed := range []int64{1, 17} {
				opts := network.Options{Seed: seed, RecordTranscript: true}
				seqOpts, conOpts := opts, opts
				seqOpts.Sequential = true
				conOpts.Concurrent = true
				seqRes, err := network.Run(tc.spec(), tc.g, tc.inputs, tc.prover(), seqOpts)
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				conRes, err := network.Run(tc.spec(), tc.g, tc.inputs, tc.prover(), conOpts)
				if err != nil {
					t.Fatalf("concurrent: %v", err)
				}
				if !reflect.DeepEqual(seqRes, conRes) {
					t.Fatalf("seed %d: engines diverge:\nsequential: accepted=%v decisions=%v cost=%+v\nconcurrent: accepted=%v decisions=%v cost=%+v",
						seed,
						seqRes.Accepted, seqRes.Decisions, seqRes.Cost,
						conRes.Accepted, conRes.Decisions, conRes.Cost)
				}
				coord, err := peer.Dial(addrs, nil, peer.Options{})
				if err != nil {
					t.Fatalf("networked: %v", err)
				}
				netOpts := opts
				netOpts.Transport = coord
				netRes, err := network.Run(tc.spec(), tc.g, tc.inputs, tc.prover(), netOpts)
				if err != nil {
					t.Fatalf("networked: %v", err)
				}
				if !reflect.DeepEqual(seqRes, netRes) {
					t.Fatalf("seed %d: networked engine diverges:\nsequential: accepted=%v decisions=%v cost=%+v\nnetworked:  accepted=%v decisions=%v cost=%+v",
						seed,
						seqRes.Accepted, seqRes.Decisions, seqRes.Cost,
						netRes.Accepted, netRes.Decisions, netRes.Cost)
				}
				// The DeepEqual above proves the engines agree on the
				// per-round breakdown; check it is also internally
				// consistent — every round charged, nothing double-counted.
				checkPerRoundSums(t, seed, &seqRes.Cost)
			}
		})
	}
}

// checkPerRoundSums asserts that a run's per-round cost breakdown
// decomposes the aggregate accounting exactly: for every node and every
// direction, the per-round entries sum to the aggregate slice, and the
// per-round prover bits at the argmax node reconstruct MaxProverBits.
func checkPerRoundSums(t *testing.T, seed int64, c *network.Cost) {
	t.Helper()
	for v := range c.ToProver {
		to, from, nbr := 0, 0, 0
		for k := range c.PerRound {
			to += c.PerRound[k].ToProver[v]
			from += c.PerRound[k].FromProver[v]
			nbr += c.PerRound[k].NodeToNode[v]
		}
		if to != c.ToProver[v] || from != c.FromProver[v] || nbr != c.NodeToNode[v] {
			t.Fatalf("seed %d node %d: per-round sums (%d,%d,%d) != aggregates (%d,%d,%d)",
				seed, v, to, from, nbr, c.ToProver[v], c.FromProver[v], c.NodeToNode[v])
		}
	}
	arg := c.ArgMaxProverNode()
	sum := 0
	for _, b := range c.ProverBitsByRound(arg) {
		sum += b
	}
	if sum != c.MaxProverBits() {
		t.Fatalf("seed %d: per-round prover bits at node %d sum to %d, MaxProverBits is %d",
			seed, arg, sum, c.MaxProverBits())
	}
}

// markedEquivInstance builds a small yes-instance for the marked GNI
// formulation: two non-isomorphic rigid 6-vertex graphs as marked induced
// subgraphs, joined through three unmarked hub vertices.
func markedEquivInstance(t *testing.T, rng *rand.Rand) (*graph.Graph, []Mark) {
	t.Helper()
	const k, hubs = 6, 3
	a, err := graph.RandomAsymmetricConnected(k, rng)
	if err != nil {
		t.Fatal(err)
	}
	var b *graph.Graph
	for {
		if b, err = graph.RandomAsymmetricConnected(k, rng); err != nil {
			t.Fatal(err)
		}
		if !graph.AreIsomorphic(a, b) {
			break
		}
	}
	n := 2*k + hubs
	g := graph.New(n)
	marks := make([]Mark, n)
	for v := 0; v < k; v++ {
		marks[v] = MarkZero
		marks[v+k] = MarkOne
	}
	for v := 2 * k; v < n; v++ {
		marks[v] = MarkNone
	}
	for _, e := range a.Edges() {
		g.AddEdge(e[0], e[1])
	}
	for _, e := range b.Edges() {
		g.AddEdge(e[0]+k, e[1]+k)
	}
	for v := 0; v < 2*k; v++ {
		g.AddEdge(v, 2*k+v%hubs)
	}
	for h := 1; h < hubs; h++ {
		g.AddEdge(2*k, 2*k+h)
	}
	return g, marks
}
