package core

// Chaos testing: flip a single random bit in a random prover message of an
// otherwise honest run, for every protocol. The run must complete without
// panicking and produce well-defined per-node decisions; flips that hit
// verified fields cause rejection, flips that hit don't-care padding may
// still accept — both are fine, crashing is not.

import (
	"math/rand"
	"testing"

	"dip/internal/network"
	"dip/internal/wire"
)

// flipOneBit returns a Corruptor that flips one pseudo-random bit in one
// pseudo-random (round, node) message.
func flipOneBit(rng *rand.Rand, merlinRounds, n int) network.Corruptor {
	targetRound := rng.Intn(merlinRounds)
	targetNode := rng.Intn(n)
	pos := rng.Intn(1 << 16)
	return func(round, node int, m wire.Message) wire.Message {
		if round != targetRound || node != targetNode || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		i := pos % m.Bits
		out.Data[i/8] ^= 1 << (uint(i) % 8)
		return out
	}
}

func TestChaosSingleBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	symG := symmetricGraph(t, 6, 99) // 14 vertices

	dmam, err := NewSymDMAM(symG.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dam, err := NewSymDAM(symG.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	gniInst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	gni, err := NewGNIDAMAM(6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	gnid, err := NewGNIDAM(6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	gniInputs := EncodeGNIInputs(gniInst.G1)

	type target struct {
		name         string
		spec         *network.Spec
		g            interface{ N() int }
		run          func(c network.Corruptor, seed int64) (*network.Result, error)
		merlinRounds int
	}
	targets := []target{
		{"sym-dmam", nil, symG, func(c network.Corruptor, seed int64) (*network.Result, error) {
			return network.Run(dmam.Spec(), symG, nil, dmam.HonestProver(),
				network.Options{Seed: seed, Corrupt: c})
		}, 2},
		{"sym-dam", nil, symG, func(c network.Corruptor, seed int64) (*network.Result, error) {
			return network.Run(dam.Spec(), symG, nil, dam.HonestProver(),
				network.Options{Seed: seed, Corrupt: c})
		}, 1},
		{"gni-damam", nil, gniInst.G0, func(c network.Corruptor, seed int64) (*network.Result, error) {
			return network.Run(gni.Spec(), gniInst.G0, gniInputs, gni.HonestProver(),
				network.Options{Seed: seed, Corrupt: c})
		}, 2},
		{"gni-dam", nil, gniInst.G0, func(c network.Corruptor, seed int64) (*network.Result, error) {
			return network.Run(gnid.Spec(), gniInst.G0, gniInputs, gnid.HonestProver(),
				network.Options{Seed: seed, Corrupt: c})
		}, 1},
	}
	for _, tg := range targets {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			for trial := 0; trial < 15; trial++ {
				c := flipOneBit(rng, tg.merlinRounds, tg.g.N())
				res, err := tg.run(c, int64(trial))
				if err != nil {
					t.Fatalf("trial %d: run failed: %v", trial, err)
				}
				if len(res.Decisions) != tg.g.N() {
					t.Fatalf("trial %d: %d decisions", trial, len(res.Decisions))
				}
			}
		})
	}
}
