package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/prime"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// GNIDAMAM is the distributed Goldwasser–Sipser protocol for Graph
// Non-Isomorphism (Section 4, Theorem 1.5): a dAMAM protocol with
// O(n log n) bits per node (for a constant number of repetitions).
//
// The instance is (G₀, G₁): G₀ is the network graph, and each node v
// receives N_{G₁}(v) as its input (Definition 4). Following the paper, the
// protocol is stated for the promise version where both graphs are
// asymmetric (the unrestricted problem composes with the Symmetry protocol
// of Section 3.2). Let S = { σ(G_b) : σ ∈ S_n, b ∈ {0,1} }: |S| = 2·n! when
// G₀ ≇ G₁ and |S| = n! when G₀ ≅ G₁. The verifiers estimate |S| by counting
// how often the prover can exhibit a member of S hashing to a random target.
//
// Round structure, with k independent repetitions run in parallel:
//
//	Arthur  — node v sends, per repetition, its slice of the ε-API hash
//	          seed (the seed is Θ(n log n) bits total and is assembled from
//	          per-node slices — the "distributed seed" the paper requires).
//	Merlin  — broadcast: per repetition, a success claim; for successful
//	          repetitions the bit b and the full seed-slice echo (each node
//	          re-verifies its own slice, so the prover cannot bias the
//	          seed). Unicast: spanning-tree advice, and per successful
//	          repetition the images σ(u) of v's closed G_b-neighborhood.
//	Arthur  — node v sends a random z_v ∈ Z_{p₂}; the root's z is binding.
//	Merlin  — broadcast: echo of z. Unicast, per successful repetition:
//	          subtree aggregates (c, s₁, s₂, s₃) described below.
//
// The second Arthur round is what makes the protocol AMAM rather than AM:
// the prover's M₁ unicasts commit each node to *claimed* images of σ, and
// only a challenge issued after that commitment can certify globally that
// the claims are mutually consistent and that σ is a permutation. With
// z ∈ Z_{p₂} random and all local checks passing, the root's aggregates
// satisfy (Schwartz–Zippel, degree ≤ n²+n polynomials in z):
//
//	c  = f_α(claimed matrix)                    — the ε-API hash input
//	s₁ = Σ_v Σ_{u∈N_b[v]} z^{u·n+σᵛ(u)+1}       — per-row image claims
//	s₂ = Σ_u (deg_b(u)+1)·z^{u·n+σ(u)+1}        — diagonal claims, weighted
//	s₃ = Σ_v z^{σ(v)+1}                         — image multiset
//
// s₁ = s₂ forces every row claim to agree with the owner's diagonal claim;
// s₃ = Σ_w z^{w+1} forces σ to be a permutation. Together they force the
// hashed object to be exactly σ(G_b) ∈ S, so the Goldwasser–Sipser counting
// argument applies.
type GNIDAMAM struct {
	n      int
	k      int
	params *hashing.GSParams
	p2     *big.Int // consistency-check prime, ≈ 1000·k·n³
	thresh int      // accept iff ≥ thresh verified successes
}

// NewGNIDAMAM builds the protocol for graphs on n vertices with k parallel
// repetitions. The acceptance threshold is placed midway between the
// worst-case yes and no single-repetition probabilities.
func NewGNIDAMAM(n, k int, seed int64) (*GNIDAMAM, error) {
	if n < 3 {
		return nil, fmt.Errorf("core: GNI needs n >= 3, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: GNI needs k >= 1, got %d", k)
	}
	params, err := hashing.NewGSParams(n, 2, seed)
	if err != nil {
		return nil, fmt.Errorf("core: GNI hash params: %w", err)
	}
	lo := big.NewInt(int64(1000 * k))
	lo.Mul(lo, big.NewInt(int64(n*n*n)))
	hi := new(big.Int).Mul(lo, big.NewInt(2))
	p2, err := prime.InWindow(lo, hi, seed+7)
	if err != nil {
		return nil, fmt.Errorf("core: GNI consistency prime: %w", err)
	}
	g := &GNIDAMAM{n: n, k: k, params: params, p2: p2}
	yes, no := g.SingleShotBounds()
	g.thresh = int(math.Ceil(float64(k) * (yes + no) / 2))
	return g, nil
}

// N returns the number of vertices; K the repetition count.
func (g *GNIDAMAM) N() int { return g.n }

// K returns the number of parallel repetitions.
func (g *GNIDAMAM) K() int { return g.k }

// Threshold returns the number of verified successes the root requires.
func (g *GNIDAMAM) Threshold() int { return g.thresh }

// SingleShotBounds returns Poisson estimates of the probability that a
// single repetition succeeds on a yes- and a no-instance: with |S| targets
// distributed nearly pairwise-independently over a range of size p, the
// number of preimages of y is approximately Poisson(μ), μ = |S|/p, so
// Pr[∃ preimage] ≈ 1 - e^{-μ}. The acceptance threshold sits midway
// between the two estimates; the hash's ε = O(1/n²) distortion is far
// smaller than the gap. (The paper's inclusion-exclusion bounds
// μ - μ²/2 ≤ Pr ≤ μ bracket these estimates.)
func (g *GNIDAMAM) SingleShotBounds() (yesRate, noRate float64) {
	fact, _ := new(big.Float).SetInt(prime.Factorial(g.n)).Float64()
	p, _ := new(big.Float).SetInt(g.params.P()).Float64()
	muYes := 2 * fact / p
	yesRate = 1 - math.Exp(-muYes)
	noRate = 1 - math.Exp(-muYes/2)
	return yesRate, noRate
}

func (g *GNIDAMAM) idWidth() int  { return wire.WidthFor(g.n) }
func (g *GNIDAMAM) qWidth() int   { return wire.WidthForBig(g.params.Q()) }
func (g *GNIDAMAM) p2Width() int  { return wire.WidthForBig(g.p2) }
func (g *GNIDAMAM) echoBits() int { return g.n * g.params.SliceWidth() }

// EncodeGNIInputs encodes G₁ into per-node inputs: node v receives its open
// G₁-neighborhood as an n-bit row.
func EncodeGNIInputs(g1 *graph.Graph) []wire.Message {
	n := g1.N()
	out := make([]wire.Message, n)
	for v := 0; v < n; v++ {
		var w wire.Writer
		for u := 0; u < n; u++ {
			w.WriteBool(g1.HasEdge(v, u))
		}
		out[v] = w.Message()
	}
	return out
}

// decodeGNIInput parses a node input back into the open-neighborhood list.
func decodeGNIInput(m wire.Message, n int) ([]int, error) {
	r := wire.NewReader(m)
	var out []int
	for u := 0; u < n; u++ {
		b, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		if b {
			out = append(out, u)
		}
	}
	return out, r.Done()
}

// subBits extracts m's bits [from, from+width).
func subBits(m wire.Message, from, width int) (wire.Message, error) {
	if from < 0 || width < 0 || from+width > m.Bits {
		return wire.Message{}, fmt.Errorf("core: bit range [%d,%d) outside message of %d bits",
			from, from+width, m.Bits)
	}
	var w wire.Writer
	for i := from; i < from+width; i++ {
		w.WriteBool(m.Data[i/8]&(1<<(uint(i)%8)) != 0)
	}
	return w.Message(), nil
}

// slicesFromEcho splits an n·SliceWidth-bit echo into per-node slices.
func (g *GNIDAMAM) slicesFromEcho(echo wire.Message) ([]wire.Message, error) {
	sw := g.params.SliceWidth()
	out := make([]wire.Message, g.n)
	for v := 0; v < g.n; v++ {
		s, err := subBits(echo, v*sw, sw)
		if err != nil {
			return nil, err
		}
		out[v] = s
	}
	return out, nil
}

// gniRepClaim is the per-repetition broadcast section of M₁.
type gniRepClaim struct {
	success  bool
	b        int
	seedEcho wire.Message // n·SliceWidth bits; only set when success
}

// gniFirst is node v's decoded M₁ message.
type gniFirst struct {
	reps   []gniRepClaim
	tree   spantree.Advice
	images [][]int // per successful repetition (dense, in claim order)
}

// encodeFirst encodes M₁ for one node; images is indexed by repetition and
// nil for failed repetitions.
func (g *GNIDAMAM) encodeFirst(reps []gniRepClaim, tree spantree.Advice, images [][]int) wire.Message {
	var w wire.Writer
	for _, c := range reps {
		w.WriteBool(c.success)
		if c.success {
			w.WriteInt(c.b, 1)
			w.WriteBits(c.seedEcho.Data, c.seedEcho.Bits)
		}
	}
	w.WriteInt(tree.Parent, g.idWidth())
	w.WriteInt(tree.Dist, g.idWidth())
	for r, c := range reps {
		if !c.success {
			continue
		}
		for _, img := range images[r] {
			w.WriteInt(img, g.idWidth())
		}
	}
	return w.Message()
}

// decodeFirstPrefix parses the broadcast section and the tree advice — the
// part of a *neighbor's* M₁ that a node needs. imageCounts, when non-nil,
// additionally parses the per-repetition image lists, each of the given
// length (counting only successful repetitions, in order).
func (g *GNIDAMAM) decodeFirst(m wire.Message, imageCounts []int) (gniFirst, error) {
	r := wire.NewReader(m)
	out := gniFirst{reps: make([]gniRepClaim, g.k)}
	for i := range out.reps {
		ok, err := r.ReadBool()
		if err != nil {
			return out, err
		}
		out.reps[i].success = ok
		if !ok {
			continue
		}
		if out.reps[i].b, err = r.ReadInt(1); err != nil {
			return out, err
		}
		echo, err := r.ReadBig(g.echoBits())
		if err != nil {
			return out, err
		}
		var w wire.Writer
		w.WriteBig(echo, g.echoBits())
		out.reps[i].seedEcho = w.Message()
	}
	var err error
	if out.tree.Parent, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent >= g.n {
		return out, errors.New("core: parent id out of range")
	}
	out.tree.Root = 0
	if imageCounts == nil {
		return out, nil // neighbor view: images not needed
	}
	out.images = make([][]int, g.k)
	ci := 0
	for i := range out.reps {
		if !out.reps[i].success {
			continue
		}
		count := imageCounts[ci]
		ci++
		imgs := make([]int, count)
		for j := range imgs {
			if imgs[j], err = r.ReadInt(g.idWidth()); err != nil {
				return out, err
			}
			if imgs[j] >= g.n {
				return out, errors.New("core: image out of range")
			}
		}
		out.images[i] = imgs
	}
	return out, r.Done()
}

// sameClaims reports whether two M₁ broadcast sections agree.
func sameClaims(a, b []gniRepClaim) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].success != b[i].success {
			return false
		}
		if a[i].success && (a[i].b != b[i].b || !msgEqual(a[i].seedEcho, b[i].seedEcho)) {
			return false
		}
	}
	return true
}

// gniSums are one node's subtree aggregates for one repetition.
type gniSums struct {
	c          *big.Int // partial f_α sum, in Z_q
	s1, s2, s3 *big.Int // consistency aggregates, in Z_{p₂}
}

// gniSecond is node v's decoded M₂ message.
type gniSecond struct {
	zEcho *big.Int
	sums  []gniSums // one per successful repetition, in claim order
}

func (g *GNIDAMAM) encodeSecond(m gniSecond) wire.Message {
	var w wire.Writer
	w.WriteBig(m.zEcho, g.p2Width())
	for _, s := range m.sums {
		w.WriteBig(s.c, g.qWidth())
		w.WriteBig(s.s1, g.p2Width())
		w.WriteBig(s.s2, g.p2Width())
		w.WriteBig(s.s3, g.p2Width())
	}
	return w.Message()
}

func (g *GNIDAMAM) decodeSecond(m wire.Message, successes int) (gniSecond, error) {
	r := wire.NewReader(m)
	var out gniSecond
	var err error
	if out.zEcho, err = r.ReadBig(g.p2Width()); err != nil {
		return out, err
	}
	if out.zEcho.Cmp(g.p2) >= 0 {
		return out, errors.New("core: z echo out of range")
	}
	out.sums = make([]gniSums, successes)
	for i := range out.sums {
		s := &out.sums[i]
		if s.c, err = r.ReadBig(g.qWidth()); err != nil {
			return out, err
		}
		if s.s1, err = r.ReadBig(g.p2Width()); err != nil {
			return out, err
		}
		if s.s2, err = r.ReadBig(g.p2Width()); err != nil {
			return out, err
		}
		if s.s3, err = r.ReadBig(g.p2Width()); err != nil {
			return out, err
		}
		if s.c.Cmp(g.params.Q()) >= 0 || s.s1.Cmp(g.p2) >= 0 ||
			s.s2.Cmp(g.p2) >= 0 || s.s3.Cmp(g.p2) >= 0 {
			return out, errors.New("core: aggregate out of range")
		}
	}
	return out, r.Done()
}

// Spec returns the protocol's round schedule and verifier.
func (g *GNIDAMAM) Spec() *network.Spec {
	return &network.Spec{
		Name: "gni-damam",
		Rounds: []network.Round{
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				var w wire.Writer
				for i := 0; i < g.k*g.params.SliceWidth(); i++ {
					w.WriteBool(rng.Intn(2) == 1)
				}
				return w.Message()
			}},
			{Kind: network.Merlin},
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				return bigChallenge(rng, g.p2)
			}},
			{Kind: network.Merlin},
		},
		Decide: g.decide,
	}
}

// closedNbhd returns v's sorted closed G_b-neighborhood as seen by the
// verifier: the network neighbors for b = 0, the decoded input for b = 1.
func closedNbhdFromView(view *network.NodeView, b, n int) ([]int, error) {
	var open []int
	if b == 0 {
		open = view.Neighbors
	} else {
		decoded, err := decodeGNIInput(view.Input, n)
		if err != nil {
			return nil, err
		}
		open = decoded
	}
	closed := make([]int, 0, len(open)+1)
	closed = append(closed, open...)
	closed = append(closed, view.V)
	sort.Ints(closed)
	return closed, nil
}

func expMod(base *big.Int, e int, mod *big.Int) *big.Int {
	return new(big.Int).Exp(base, big.NewInt(int64(e)), mod)
}

// decide is the verification procedure, run at node v.
func (g *GNIDAMAM) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != g.n {
		return false
	}
	// Node v's own closed neighborhoods determine its image-list lengths.
	closedB := make([][]int, 2)
	for b := 0; b < 2; b++ {
		c, err := closedNbhdFromView(view, b, g.n)
		if err != nil {
			return false
		}
		closedB[b] = c
	}

	// First pass on our own M₁: claims determine image counts.
	prefix, err := g.decodeFirst(view.Responses[0], nil)
	if err == nil {
		var counts []int
		for _, c := range prefix.reps {
			if c.success {
				counts = append(counts, len(closedB[c.b]))
			}
		}
		prefix, err = g.decodeFirst(view.Responses[0], counts)
	}
	if err != nil {
		return false
	}
	first := prefix

	// Neighbors' M₁: broadcast sections must match ours.
	neighborFirst := make(map[int]gniFirst, len(view.Neighbors))
	for _, u := range view.Neighbors {
		nf, err := g.decodeFirst(view.NeighborResponses[0][u], nil)
		if err != nil {
			return false
		}
		if !sameClaims(first.reps, nf.reps) {
			return false
		}
		neighborFirst[u] = nf
	}

	// Verify our own seed slices inside each successful repetition's echo.
	sw := g.params.SliceWidth()
	repIdx := 0
	type repData struct {
		rep   int
		b     int
		seed  *hashing.GSSeed
		image []int
	}
	var reps []repData
	for rI, c := range first.reps {
		if !c.success {
			continue
		}
		mySlice, err := subBits(c.seedEcho, v*sw, sw)
		if err != nil {
			return false
		}
		sent, err := subBits(view.MyChallenges[0], rI*sw, sw)
		if err != nil {
			return false
		}
		if !msgEqual(mySlice, sent) {
			return false // the prover tampered with our seed contribution
		}
		slices, err := g.slicesFromEcho(c.seedEcho)
		if err != nil {
			return false
		}
		seed, err := g.params.SeedFromSlices(slices)
		if err != nil {
			return false
		}
		reps = append(reps, repData{rep: rI, b: c.b, seed: seed, image: first.images[rI]})
		repIdx++
	}
	successes := repIdx

	// Spanning-tree checks (root is node 0 by convention).
	treeAdvice := make(map[int]spantree.Advice, len(neighborFirst))
	for u, nf := range neighborFirst {
		treeAdvice[u] = nf.tree
	}
	if !spantree.VerifyLocal(v, first.tree, treeAdvice, view.HasNeighbor) {
		return false
	}
	children := spantree.Children(v, treeAdvice)

	// M₂ of ourselves and our neighbors.
	second, err := g.decodeSecond(view.Responses[1], successes)
	if err != nil {
		return false
	}
	neighborSecond := make(map[int]gniSecond, len(view.Neighbors))
	for _, u := range view.Neighbors {
		ns, err := g.decodeSecond(view.NeighborResponses[1][u], successes)
		if err != nil {
			return false
		}
		if ns.zEcho.Cmp(second.zEcho) != 0 {
			return false
		}
		neighborSecond[u] = ns
	}
	z := second.zEcho
	if v == 0 {
		zv, err := decodeBigChallenge(view.MyChallenges[1], g.p2)
		if err != nil || zv.Cmp(z) != 0 {
			return false
		}
	}

	// Per-repetition aggregate checks.
	for si, rd := range reps {
		closed := closedB[rd.b]
		images := rd.image
		if len(images) != len(closed) {
			return false
		}
		// Row claims must form a set (σ injective on the neighborhood).
		seen := map[int]bool{}
		var sigmaV int
		for j, u := range closed {
			if seen[images[j]] {
				return false
			}
			seen[images[j]] = true
			if u == v {
				sigmaV = images[j]
			}
		}

		// c: partial hash sum.
		cExpect := g.params.RowTermSlow(rd.seed.Alpha, sigmaV, images)
		for _, u := range children {
			cExpect = g.params.AddModQ(cExpect, neighborSecond[u].sums[si].c)
		}
		if cExpect.Cmp(second.sums[si].c) != 0 {
			return false
		}

		// s1: per-row image claims, s2: weighted diagonal claim,
		// s3: image multiset — all in Z_{p₂}.
		s1 := new(big.Int)
		for j, u := range closed {
			s1.Add(s1, expMod(z, u*g.n+images[j]+1, g.p2))
		}
		s1.Mod(s1, g.p2)
		s2 := expMod(z, v*g.n+sigmaV+1, g.p2)
		s2.Mul(s2, big.NewInt(int64(len(closed))))
		s2.Mod(s2, g.p2)
		s3 := expMod(z, sigmaV+1, g.p2)
		for _, u := range children {
			ns := neighborSecond[u].sums[si]
			s1.Add(s1, ns.s1)
			s2.Add(s2, ns.s2)
			s3.Add(s3, ns.s3)
		}
		s1.Mod(s1, g.p2)
		s2.Mod(s2, g.p2)
		s3.Mod(s3, g.p2)
		if s1.Cmp(second.sums[si].s1) != 0 ||
			s2.Cmp(second.sums[si].s2) != 0 ||
			s3.Cmp(second.sums[si].s3) != 0 {
			return false
		}

		// Root-only: the aggregates must close the argument.
		if v == 0 {
			if second.sums[si].s1.Cmp(second.sums[si].s2) != 0 {
				return false
			}
			multiset := new(big.Int)
			for w := 0; w < g.n; w++ {
				multiset.Add(multiset, expMod(z, w+1, g.p2))
			}
			multiset.Mod(multiset, g.p2)
			if second.sums[si].s3.Cmp(multiset) != 0 {
				return false
			}
			if g.params.Finish(rd.seed, second.sums[si].c).Cmp(rd.seed.Y) != 0 {
				return false // claimed success did not hash to the target
			}
		}
	}

	// Root: enough verified successes?
	if v == 0 && successes < g.thresh {
		return false
	}
	return true
}

// Run executes the protocol: g0 is the network graph, g1 the input graph.
func (g *GNIDAMAM) Run(g0, g1 *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	if g0.N() != g.n || g1.N() != g.n {
		return nil, fmt.Errorf("core: GNI instance sizes (%d, %d), protocol built for %d",
			g0.N(), g1.N(), g.n)
	}
	return network.Run(g.Spec(), g0, EncodeGNIInputs(g1), prover, network.Options{Seed: seed})
}

// HonestProver returns the optimal prover: per repetition it assembles the
// seed from the nodes' slices and searches all (σ, b) in Lehmer order for a
// hash preimage. The same search is the *optimal cheating strategy* on
// no-instances, so soundness experiments reuse it. A fresh prover must be
// used per run.
func (g *GNIDAMAM) HonestProver() network.Prover {
	return &gniProver{proto: g}
}

type gniRepState struct {
	success bool
	b       int
	sigma   perm.Perm
	seed    *hashing.GSSeed
	echo    wire.Message
}

type gniProver struct {
	proto  *GNIDAMAM
	reps   []gniRepState
	advice []spantree.Advice
	closed [2][][]int // per b, per node: sorted closed neighborhood
}

func (p *gniProver) Respond(round int, view *network.ProverView) (*network.Response, error) {
	switch round {
	case 0:
		return p.first(view)
	case 1:
		return p.second(view)
	default:
		return nil, fmt.Errorf("core: GNI prover called for round %d", round)
	}
}

func (p *gniProver) first(view *network.ProverView) (*network.Response, error) {
	g := p.proto
	n := g.n
	g0 := view.Graph
	if g0.N() != n {
		return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g0.N(), n)
	}
	if len(view.Inputs) != n {
		return nil, errors.New("core: GNI prover needs G1 inputs")
	}

	// Reconstruct both closed-neighborhood tables.
	for v := 0; v < n; v++ {
		closed0 := append([]int(nil), g0.Neighbors(v)...)
		closed0 = append(closed0, v)
		sort.Ints(closed0)
		p.closed[0] = append(p.closed[0], closed0)

		open1, err := decodeGNIInput(view.Inputs[v], n)
		if err != nil {
			return nil, fmt.Errorf("core: GNI prover input %d: %w", v, err)
		}
		closed1 := append(open1, v)
		sort.Ints(closed1)
		p.closed[1] = append(p.closed[1], closed1)
	}

	// Assemble the per-repetition seeds from the nodes' slices and search
	// for preimages.
	sw := g.params.SliceWidth()
	p.reps = make([]gniRepState, g.k)
	for r := 0; r < g.k; r++ {
		slices := make([]wire.Message, n)
		var echo wire.Writer
		for v := 0; v < n; v++ {
			s, err := subBits(view.Challenges[0][v], r*sw, sw)
			if err != nil {
				return nil, fmt.Errorf("core: GNI prover slice (%d,%d): %w", r, v, err)
			}
			slices[v] = s
			echo.WriteBits(s.Data, s.Bits)
		}
		seed, err := g.params.SeedFromSlices(slices)
		if err != nil {
			return nil, fmt.Errorf("core: GNI prover seed %d: %w", r, err)
		}
		st := gniRepState{seed: seed, echo: echo.Message()}
		if b, sigma, ok := p.searchPreimage(seed); ok {
			st.success, st.b, st.sigma = true, b, sigma
		}
		p.reps[r] = st
	}

	advice, err := spantree.Compute(g0, 0)
	if err != nil {
		return nil, fmt.Errorf("core: GNI prover tree: %w", err)
	}
	p.advice = advice

	// Build the per-node M₁ messages.
	resp := &network.Response{PerNode: make([]wire.Message, n)}
	for v := 0; v < n; v++ {
		claims := make([]gniRepClaim, g.k)
		images := make([][]int, g.k)
		for r, st := range p.reps {
			claims[r] = gniRepClaim{success: st.success, b: st.b, seedEcho: st.echo}
			if st.success {
				closed := p.closed[st.b][v]
				imgs := make([]int, len(closed))
				for j, u := range closed {
					imgs[j] = st.sigma[u]
				}
				images[r] = imgs
			}
		}
		resp.PerNode[v] = g.encodeFirst(claims, advice[v], images)
	}
	return resp, nil
}

// searchPreimage enumerates (b, σ) for a member of S hashing to the target.
func (p *gniProver) searchPreimage(seed *hashing.GSSeed) (int, perm.Perm, bool) {
	g := p.proto
	table := g.params.Powers(seed.Alpha)
	for b := 0; b < 2; b++ {
		sigma := perm.Identity(g.n)
		for {
			f := new(big.Int)
			for v := 0; v < g.n; v++ {
				closed := p.closed[b][v]
				cols := make([]int, len(closed))
				for j, u := range closed {
					cols[j] = sigma[u]
				}
				f = g.params.AddModQ(f, g.params.RowTerm(table, sigma[v], cols))
			}
			if g.params.Finish(seed, f).Cmp(seed.Y) == 0 {
				return b, sigma.Clone(), true
			}
			if !sigma.NextLex() {
				break
			}
		}
	}
	return 0, nil, false
}

func (p *gniProver) second(view *network.ProverView) (*network.Response, error) {
	g := p.proto
	n := g.n
	z, err := decodeBigChallenge(view.Challenges[1][0], g.p2)
	if err != nil {
		return nil, fmt.Errorf("core: GNI prover z: %w", err)
	}

	children := spantree.ChildLists(p.advice)
	order := spantree.PostOrder(p.advice)

	// Per successful repetition, compute all four aggregates bottom-up.
	type perNode struct{ c, s1, s2, s3 *big.Int }
	var allSums [][]perNode // [successIdx][node]
	for _, st := range p.reps {
		if !st.success {
			continue
		}
		sums := make([]perNode, n)
		table := g.params.Powers(st.seed.Alpha)
		for _, v := range order {
			closed := p.closed[st.b][v]
			cols := make([]int, len(closed))
			s1 := new(big.Int)
			for j, u := range closed {
				cols[j] = st.sigma[u]
				s1.Add(s1, expMod(z, u*n+st.sigma[u]+1, g.p2))
			}
			c := g.params.RowTerm(table, st.sigma[v], cols)
			s2 := expMod(z, v*n+st.sigma[v]+1, g.p2)
			s2.Mul(s2, big.NewInt(int64(len(closed))))
			s3 := expMod(z, st.sigma[v]+1, g.p2)
			for _, ch := range children[v] {
				c = g.params.AddModQ(c, sums[ch].c)
				s1.Add(s1, sums[ch].s1)
				s2.Add(s2, sums[ch].s2)
				s3.Add(s3, sums[ch].s3)
			}
			s1.Mod(s1, g.p2)
			s2.Mod(s2, g.p2)
			s3.Mod(s3, g.p2)
			sums[v] = perNode{c: c, s1: s1, s2: s2, s3: s3}
		}
		allSums = append(allSums, sums)
	}

	resp := &network.Response{PerNode: make([]wire.Message, n)}
	for v := 0; v < n; v++ {
		msg := gniSecond{zEcho: z, sums: make([]gniSums, len(allSums))}
		for si := range allSums {
			s := allSums[si][v]
			msg.sums[si] = gniSums{c: s.c, s1: s.s1, s2: s.s2, s3: s.s3}
		}
		resp.PerNode[v] = g.encodeSecond(msg)
	}
	return resp, nil
}
