package core

import (
	"math/rand"
	"testing"

	"dip/internal/network"
	"dip/internal/wire"
)

func TestGNIDAMValidation(t *testing.T) {
	if _, err := NewGNIDAM(2, 5, 0); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := NewGNIDAM(6, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	proto, err := NewGNIDAM(6, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if proto.N() != 6 || proto.K() != 12 {
		t.Fatal("accessors wrong")
	}
	if th := proto.Threshold(); th < 1 || th > 12 {
		t.Fatalf("threshold %d", th)
	}
}

func TestGNIDAMSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("GNI separation is slow")
	}
	rng := rand.New(rand.NewSource(50))
	proto, err := NewGNIDAM(6, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	yes, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	no, err := NewGNINoInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(inst *GNIInstance, seed0 int64, trials int) float64 {
		accepts := 0
		for i := 0; i < trials; i++ {
			res, err := proto.Run(inst.G0, inst.G1, proto.HonestProver(), seed0+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted {
				accepts++
			}
		}
		return float64(accepts) / float64(trials)
	}
	yesRate := run(yes, 100, 10)
	noRate := run(no, 200, 10)
	t.Logf("one-exchange GNI: yes %.2f, no %.2f", yesRate, noRate)
	if yesRate <= 1.0/3 {
		t.Fatalf("yes rate %.2f too low", yesRate)
	}
	if noRate >= 1.0/3 {
		t.Fatalf("no rate %.2f too high", noRate)
	}
}

func TestGNIDAMIsOneExchange(t *testing.T) {
	proto, err := NewGNIDAM(6, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := proto.Spec()
	if len(spec.Rounds) != 2 {
		t.Fatalf("round count = %d, want 2 (one AM exchange)", len(spec.Rounds))
	}
	if spec.Rounds[0].Kind != network.Arthur || spec.Rounds[1].Kind != network.Merlin {
		t.Fatal("rounds not Arthur, Merlin")
	}
}

func TestGNIDAMNonPermutationRejected(t *testing.T) {
	// Corrupt the broadcast σ into a non-permutation: every node's local
	// validity check must fire.
	rng := rand.New(rand.NewSource(51))
	proto, err := NewGNIDAM(6, 3, 51)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Find a run where at least one repetition succeeded, then corrupt the
	// first σ entry of every node's message identically (so broadcast
	// consistency still holds but σ becomes non-bijective or wrong).
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		// Flip a bit in the area where the first successful rep's σ lives
		// (past success bit + b bit + seed echo). The exact field hit
		// varies, but identical corruption across nodes preserves
		// broadcast consistency while breaking a verified value.
		pos := 2 + proto.echoBits() + 1
		if pos < out.Bits {
			out.Data[pos/8] ^= 1 << (uint(pos) % 8)
		}
		return out
	}
	rejected := false
	for seed := int64(0); seed < 6 && !rejected; seed++ {
		res, err := network.Run(proto.Spec(), inst.G0, EncodeGNIInputs(inst.G1),
			proto.HonestProver(), network.Options{Seed: seed, Corrupt: corrupt})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("corrupted σ broadcast never rejected")
	}
}

func TestGNIDAMCostComparableToDAMAM(t *testing.T) {
	// The round reduction must not blow up the cost: same asymptotics,
	// and in absolute terms the one-exchange variant stays within 2x.
	rng := rand.New(rand.NewSource(52))
	inst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	one, err := NewGNIDAM(6, 6, 52)
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewGNIDAMAM(6, 6, 52)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := one.Run(inst.G0, inst.G1, one.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := two.Run(inst.G0, inst.G1, two.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := r1.Cost.MaxProverBits(), r2.Cost.MaxProverBits()
	if b1 > 2*b2 {
		t.Fatalf("one-exchange cost %d vs two-exchange %d: more than 2x", b1, b2)
	}
	t.Logf("bits/node: one-exchange %d, two-exchange %d", b1, b2)
}
