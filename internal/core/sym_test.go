package core

import (
	"math/rand"
	"testing"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/wire"
)

// symmetricGraph builds a connected symmetric graph on 2*base+2 vertices.
func symmetricGraph(t testing.TB, base int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	core, err := graph.RandomAsymmetricConnected(base, rng)
	if err != nil {
		t.Fatal(err)
	}
	return graph.Doubled(core, 0)
}

// asymmetricGraph builds a connected asymmetric graph on n vertices.
func asymmetricGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.RandomAsymmetricConnected(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSymDMAMCompleteness(t *testing.T) {
	g := symmetricGraph(t, 7, 1) // 16 vertices
	proto, err := NewSymDMAM(g.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		res, err := proto.Run(g, proto.HonestProver(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("seed %d: honest prover rejected on symmetric graph: %v",
				seed, res.Decisions)
		}
	}
}

func TestSymDMAMCompletenessOnClassicGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(8),
		graph.Complete(6),
		graph.Star(7),
		graph.Path(9),
	}
	for gi, g := range graphs {
		proto, err := NewSymDMAM(g.N(), int64(gi))
		if err != nil {
			t.Fatal(err)
		}
		res, err := proto.Run(g, proto.HonestProver(), int64(gi))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("graph %d: honest prover rejected", gi)
		}
	}
}

func TestSymDMAMSoundness(t *testing.T) {
	// On an asymmetric graph, a prover committing to any non-identity
	// mapping is caught by the hash check with probability ≥ 1 - n²/p.
	g := asymmetricGraph(t, 9, 2)
	proto, err := NewSymDMAM(g.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	accepts := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		rho := perm.RandomNonIdentity(g.N(), rng)
		res, err := proto.Run(g, proto.ProverWithMapping(rho, rho.Moved()), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	// The per-trial bound is n²/p < 81/7290 ≈ 1.1%; 30 trials should
	// essentially never accept — allow one fluke.
	if accepts > 1 {
		t.Fatalf("cheating prover accepted %d/%d times", accepts, trials)
	}
}

func TestSymDMAMHonestProverOnAsymmetricGraphRejected(t *testing.T) {
	// The default prover commits to a transposition when no automorphism
	// exists; verification must catch it.
	g := asymmetricGraph(t, 8, 4)
	proto, err := NewSymDMAM(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(g, proto.HonestProver(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("asymmetric graph accepted")
	}
}

func TestSymDMAMIdentityMappingRejected(t *testing.T) {
	// ρ = id on a symmetric graph: the root check ρ(r) ≠ r must fire
	// regardless of where the prover roots the tree.
	g := symmetricGraph(t, 6, 5)
	proto, err := NewSymDMAM(g.N(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(g, proto.ProverWithMapping(perm.Identity(g.N()), 0), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("identity mapping accepted")
	}
}

func TestSymDMAMCostIsLogarithmic(t *testing.T) {
	// Exact cost: M1 = 4·ceil(lg n); A = M2-field = ceil(lg p) with
	// p ≤ 100n³, so per-node cost ≤ 4·lg n + 4·(lg 100 + 3 lg n).
	for _, base := range []int{7, 15, 31} {
		g := symmetricGraph(t, base, int64(base))
		n := g.N()
		proto, err := NewSymDMAM(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := proto.Run(g, proto.HonestProver(), 8)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("base %d: rejected", base)
		}
		idW := wire.WidthFor(n)
		hashW := wire.WidthForBig(proto.P())
		want := 4*idW + hashW + 3*hashW // M1 + challenge + M2
		if got := res.Cost.MaxProverBits(); got != want {
			t.Fatalf("n=%d: MaxProverBits = %d, want %d", n, got, want)
		}
		// O(log n) sanity: under 30·lg n bits.
		if got := res.Cost.MaxProverBits(); got > 30*idW {
			t.Fatalf("n=%d: cost %d not logarithmic", n, got)
		}
	}
}

func TestSymDMAMCorruptionRejected(t *testing.T) {
	g := symmetricGraph(t, 7, 9)
	proto, err := NewSymDMAM(g.N(), 9)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if round != 1 || node != 2 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 1 // first bit is always within the message
		return out
	}
	res, err := network.Run(proto.Spec(), g, nil, proto.HonestProver(),
		network.Options{Seed: 10, Corrupt: corrupt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("corrupted run accepted")
	}
}

func TestSymDMAMRejectsDisconnected(t *testing.T) {
	// Two disjoint triangles are symmetric, but the engine's honest prover
	// cannot build a spanning tree: Run must surface the error.
	g := graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3))
	proto, err := NewSymDMAM(g.N(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Run(g, proto.HonestProver(), 0); err == nil {
		t.Fatal("expected spanning-tree error on disconnected graph")
	}
}

func TestSymDMAMValidation(t *testing.T) {
	if _, err := NewSymDMAM(1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	proto, err := NewSymDMAM(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Run(graph.Cycle(5), proto.HonestProver(), 0); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestSymDAMCompleteness(t *testing.T) {
	g := symmetricGraph(t, 6, 12) // 14 vertices; p ≈ 14^16
	proto, err := NewSymDAM(g.N(), 12)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := proto.Run(g, proto.HonestProver(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("seed %d: honest prover rejected: %v", seed, res.Decisions)
		}
	}
}

func TestSymDAMSoundness(t *testing.T) {
	g := asymmetricGraph(t, 8, 13)
	proto, err := NewSymDAM(g.N(), 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 10; i++ {
		rho := perm.RandomNonIdentity(g.N(), rng)
		res, err := proto.Run(g, proto.ProverWithMapping(rho, rho.Moved()), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("cheating prover accepted under the n^{n+2} modulus")
		}
	}
	// The honest prover also fails here (no automorphism exists).
	res, err := proto.Run(g, proto.HonestProver(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("asymmetric graph accepted")
	}
}

func TestSymDAMCostIsNearLinear(t *testing.T) {
	g := symmetricGraph(t, 6, 15)
	n := g.N()
	proto, err := NewSymDAM(n, 15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(g, proto.HonestProver(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("rejected")
	}
	idW := wire.WidthFor(n)
	hashW := wire.WidthForBig(proto.P())
	// challenge + [ρ | echo | root | parent | dist | a | b]
	want := hashW + (n*idW + hashW + 3*idW + 2*hashW)
	if got := res.Cost.MaxProverBits(); got != want {
		t.Fatalf("MaxProverBits = %d, want %d", got, want)
	}
	// hashW itself must be Θ(n log n): (n+2)·lg n ≤ hashW ≤ (n+2)·lg n + 7.
	if hashW < (n+2)*wire.WidthFor(n)/2 {
		t.Fatalf("hash width %d unexpectedly small", hashW)
	}
}

func TestSymDAMNonBijectiveMappingRejected(t *testing.T) {
	// Lemma 3.1 also covers non-permutations: a constant-ish map must be
	// caught by the hash comparison.
	g := symmetricGraph(t, 6, 17)
	proto, err := NewSymDAM(g.N(), 17)
	if err != nil {
		t.Fatal(err)
	}
	rho := make(perm.Perm, g.N()) // all-zeros map: not a bijection
	rho[0] = 1                    // make it move the root so the ρ(r)≠r check passes
	res, err := proto.Run(g, proto.ProverWithMapping(rho, 0), 18)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("non-bijective mapping accepted")
	}
}

func TestDSymCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, params := range []struct{ side, half int }{{6, 0}, {6, 2}, {9, 3}} {
		f := graph.ConnectedGNP(params.side, 0.5, rng)
		g := graph.DSymGraph(f, params.half)
		proto, err := NewDSymDAM(params.side, params.half, 19)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			res, err := proto.Run(g, proto.HonestProver(), seed)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Accepted {
				t.Fatalf("side=%d half=%d seed=%d: rejected: %v",
					params.side, params.half, seed, res.Decisions)
			}
		}
	}
}

func TestDSymSoundnessBrokenAutomorphism(t *testing.T) {
	// Add an internal side-B edge without its side-A mirror: structure
	// checks still pass, but σ is no longer an automorphism, so the hash
	// comparison at the root must fail (w.h.p. over the challenge).
	rng := rand.New(rand.NewSource(20))
	f := graph.ConnectedGNP(7, 0.4, rng)
	g := graph.DSymGraph(f, 1)
	broken := false
	for u := 7; u < 14 && !broken; u++ {
		for v := u + 1; v < 14 && !broken; v++ {
			if !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				broken = true
			}
		}
	}
	if !broken {
		t.Fatal("could not break the graph (side B complete)")
	}
	proto, err := NewDSymDAM(7, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	accepts := 0
	for seed := int64(0); seed < 20; seed++ {
		res, err := proto.Run(g, proto.HonestProver(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	if accepts > 1 {
		t.Fatalf("broken dumbbell accepted %d/20 times", accepts)
	}
}

func TestDSymSoundnessStructure(t *testing.T) {
	// A stray side-A-to-path edge is caught by the prover-free structure
	// checks deterministically.
	rng := rand.New(rand.NewSource(21))
	f := graph.ConnectedGNP(6, 0.5, rng)
	g := graph.DSymGraph(f, 1)
	g.AddEdge(1, 12) // side-A interior to path node 2n=12
	proto, err := NewDSymDAM(6, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(g, proto.HonestProver(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("stray edge accepted")
	}
}

func TestDSymForgingProverRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := graph.ConnectedGNP(6, 0.5, rng)
	g := graph.DSymGraph(f, 1)
	proto, err := NewDSymDAM(6, 1, 22)
	if err != nil {
		t.Fatal(err)
	}
	for at := 0; at < g.N(); at += 4 {
		res, err := proto.Run(g, proto.ForgingProver(at), int64(at))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatalf("forged sum at node %d accepted", at)
		}
	}
}

func TestDSymCostIsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := graph.ConnectedGNP(10, 0.4, rng)
	g := graph.DSymGraph(f, 2)
	proto, err := NewDSymDAM(10, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(g, proto.HonestProver(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("rejected")
	}
	n := g.N()
	idW := wire.WidthFor(n)
	hashW := wire.WidthForBig(proto.P())
	want := hashW + (hashW + 2*idW + 2*hashW)
	if got := res.Cost.MaxProverBits(); got != want {
		t.Fatalf("MaxProverBits = %d, want %d", got, want)
	}
	if got := res.Cost.MaxProverBits(); got > 30*idW {
		t.Fatalf("cost %d not logarithmic (lg n = %d)", got, idW)
	}
}

func TestDSymValidation(t *testing.T) {
	if _, err := NewDSymDAM(0, 1, 0); err == nil {
		t.Fatal("side=0 accepted")
	}
	if _, err := NewDSymDAM(3, -1, 0); err == nil {
		t.Fatal("half=-1 accepted")
	}
}
