package core

import (
	"math/rand"
	"testing"

	"dip/internal/network"
	"dip/internal/wire"
)

// gniAcceptRate runs the protocol `trials` times on the instance and
// returns the acceptance frequency.
func gniAcceptRate(t *testing.T, proto *GNIDAMAM, inst *GNIInstance, trials int, seed0 int64) float64 {
	t.Helper()
	accepts := 0
	for i := 0; i < trials; i++ {
		res, err := proto.Run(inst.G0, inst.G1, proto.HonestProver(), seed0+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	return float64(accepts) / float64(trials)
}

func TestGNIParamsValidation(t *testing.T) {
	if _, err := NewGNIDAMAM(2, 5, 0); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := NewGNIDAMAM(6, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	proto, err := NewGNIDAMAM(6, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if proto.N() != 6 || proto.K() != 10 {
		t.Fatal("accessors wrong")
	}
	yes, no := proto.SingleShotBounds()
	if !(0 < no && no < yes && yes < 1) {
		t.Fatalf("single-shot bounds (%.3f, %.3f) not ordered", yes, no)
	}
	if th := proto.Threshold(); th < 1 || th > 10 {
		t.Fatalf("threshold %d out of range", th)
	}
}

func TestGNIEncodeInputsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs := EncodeGNIInputs(inst.G1)
	for v := 0; v < 6; v++ {
		open, err := decodeGNIInput(inputs[v], 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(open) != inst.G1.Degree(v) {
			t.Fatalf("node %d: decoded %d neighbors, degree %d",
				v, len(open), inst.G1.Degree(v))
		}
		for _, u := range open {
			if !inst.G1.HasEdge(v, u) {
				t.Fatalf("node %d: phantom neighbor %d", v, u)
			}
		}
	}
}

func TestGNISeparation(t *testing.T) {
	// The heart of Theorem 1.5: non-isomorphic pairs must be accepted
	// noticeably more often than isomorphic pairs, with the threshold
	// between them. Uses small n and few trials to stay fast; the full
	// experiment with confidence intervals is E5 in the bench harness.
	if testing.Short() {
		t.Skip("GNI separation is slow")
	}
	rng := rand.New(rand.NewSource(2))
	proto, err := NewGNIDAMAM(6, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	yesInst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	noInst, err := NewGNINoInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 12
	yesRate := gniAcceptRate(t, proto, yesInst, trials, 100)
	noRate := gniAcceptRate(t, proto, noInst, trials, 200)
	t.Logf("yes rate %.2f, no rate %.2f (threshold %d/%d)",
		yesRate, noRate, proto.Threshold(), proto.K())
	if yesRate <= 1.0/3 {
		t.Fatalf("yes-instance acceptance %.2f too low", yesRate)
	}
	if noRate >= 1.0/3 {
		t.Fatalf("no-instance acceptance %.2f too high", noRate)
	}
}

func TestGNICostIsNearLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	proto, err := NewGNIDAMAM(6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(inst.G0, inst.G1, proto.HonestProver(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the acceptance outcome, cost is measured. Per node, per
	// repetition, the dominant term is the seed echo: n·SliceWidth bits.
	// Sanity bound: ≤ 40·k·n·log n bits.
	n, k := 6, 2
	logn := wire.WidthFor(n)
	if got := res.Cost.MaxProverBits(); got > 40*k*n*logn {
		t.Fatalf("MaxProverBits = %d, want O(k·n log n) = %d·40", got, k*n*logn)
	}
	if got := res.Cost.MaxProverBits(); got == 0 {
		t.Fatal("no communication measured")
	}
}

func TestGNITamperingWithSeedEchoRejected(t *testing.T) {
	// A prover that flips one bit of the seed echo is caught by the node
	// whose slice was altered (or by broadcast consistency).
	rng := rand.New(rand.NewSource(5))
	proto, err := NewGNIDAMAM(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if round != 0 || node != 2 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 0x02 // flips the b-bit/seed area of the first claim
		return out
	}
	res, err := network.Run(proto.Spec(), inst.G0, EncodeGNIInputs(inst.G1),
		proto.HonestProver(), network.Options{Seed: 6, Corrupt: corrupt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("tampered run accepted")
	}
}

func TestGNIInstanceGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	yes, err := NewGNIYesInstance(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !yes.NonIsomorphic {
		t.Fatal("yes-instance mislabeled")
	}
	no, err := NewGNINoInstance(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if no.NonIsomorphic {
		t.Fatal("no-instance mislabeled")
	}
	if yes.G0.N() != 7 || yes.G1.N() != 7 {
		t.Fatal("wrong sizes")
	}
}
