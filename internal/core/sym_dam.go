package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/bitset"
	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/prime"
	"dip/internal/setupcache"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// SymDAM is Protocol 2 of the paper (Section 3.2): the O(n log n)-bit dAM
// interactive proof for Symmetry. Unlike Protocol 1, the random challenge is
// issued *before* the prover speaks, so the prover cannot be forced to
// commit to ρ first. The protocol compensates in two ways (both visible in
// the cost):
//
//   - the prover broadcasts the entire mapping ρ (n·log n bits), and
//   - the hash modulus is a prime p ∈ [10·n^{n+2}, 100·n^{n+2}] — Θ(n log n)
//     bits — so small that a union bound over all n^n candidate mappings
//     still leaves collision probability below 1/3.
//
// Round structure:
//
//	Arthur  — per node v: random hash index i_v ∈ Z_p
//	Merlin  — per node v: [ρ (full) | echo i | root r]  (broadcast fields)
//	          ++ [parent t_v | dist d_v | a_v | b_v]     (unicast fields)
type SymDAM struct {
	n      int
	p      *big.Int
	family *hashing.LinearFamily
}

// NewSymDAM builds the protocol for graphs on n ≥ 2 vertices.
func NewSymDAM(n int, seed int64) (*SymDAM, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: SymDAM needs n >= 2, got %d", n)
	}
	p, err := prime.ForPowerWindow(n, seed)
	if err != nil {
		return nil, fmt.Errorf("core: SymDAM modulus: %w", err)
	}
	return newSymDAMWithPrime(n, p)
}

// NewSymDAMWithPrime builds the protocol with an explicit hash modulus.
// It exists for the E9 ablation: running the challenge-first protocol with
// a Protocol-1-sized prime (≈n³) breaks soundness, because the union bound
// over n^n mappings no longer holds — and the PostHocProver exploits it.
func NewSymDAMWithPrime(n int, p *big.Int) (*SymDAM, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: SymDAM needs n >= 2, got %d", n)
	}
	return newSymDAMWithPrime(n, p)
}

func newSymDAMWithPrime(n int, p *big.Int) (*SymDAM, error) {
	family, err := hashing.NewLinearFamily(n*n, p)
	if err != nil {
		return nil, fmt.Errorf("core: SymDAM family: %w", err)
	}
	return &SymDAM{n: n, p: p, family: family}, nil
}

// N returns the number of vertices the protocol instance is for.
func (s *SymDAM) N() int { return s.n }

// P returns (a copy of) the hash modulus.
func (s *SymDAM) P() *big.Int { return new(big.Int).Set(s.p) }

func (s *SymDAM) idWidth() int   { return wire.WidthFor(s.n) }
func (s *SymDAM) hashWidth() int { return wire.WidthForBig(s.p) }

// symDAMMessage is the single Merlin message, decoded.
type symDAMMessage struct {
	rho  []int // full mapping, broadcast
	echo *big.Int
	root int
	tree spantree.Advice
	a, b *big.Int
}

func (s *SymDAM) encode(m symDAMMessage) wire.Message {
	var w wire.Writer
	for _, img := range m.rho {
		w.WriteInt(img, s.idWidth())
	}
	w.WriteBig(m.echo, s.hashWidth())
	w.WriteInt(m.root, s.idWidth())
	w.WriteInt(m.tree.Parent, s.idWidth())
	w.WriteInt(m.tree.Dist, s.idWidth())
	w.WriteBig(m.a, s.hashWidth())
	w.WriteBig(m.b, s.hashWidth())
	return w.Message()
}

func (s *SymDAM) decode(m wire.Message) (symDAMMessage, error) {
	r := wire.NewReader(m)
	out := symDAMMessage{rho: make([]int, s.n)}
	var err error
	for v := range out.rho {
		if out.rho[v], err = r.ReadInt(s.idWidth()); err != nil {
			return out, err
		}
		if out.rho[v] >= s.n {
			return out, errors.New("core: image out of range")
		}
	}
	if out.echo, err = r.ReadBig(s.hashWidth()); err != nil {
		return out, err
	}
	if out.root, err = r.ReadInt(s.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent, err = r.ReadInt(s.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(s.idWidth()); err != nil {
		return out, err
	}
	if out.a, err = r.ReadBig(s.hashWidth()); err != nil {
		return out, err
	}
	if out.b, err = r.ReadBig(s.hashWidth()); err != nil {
		return out, err
	}
	if out.root >= s.n || out.tree.Parent >= s.n {
		return out, errors.New("core: vertex id out of range")
	}
	for _, x := range []*big.Int{out.echo, out.a, out.b} {
		if x.Cmp(s.p) >= 0 {
			return out, errors.New("core: field value out of range")
		}
	}
	out.tree.Root = out.root
	return out, r.Done()
}

// sameBroadcast reports whether the broadcast fields (ρ, echo, root) of two
// decoded messages agree.
func sameBroadcast(a, b symDAMMessage) bool {
	if a.root != b.root || a.echo.Cmp(b.echo) != 0 {
		return false
	}
	for i := range a.rho {
		if a.rho[i] != b.rho[i] {
			return false
		}
	}
	return true
}

// Spec returns the protocol's round schedule and verifier.
func (s *SymDAM) Spec() *network.Spec {
	return &network.Spec{
		Name: "sym-dam",
		Rounds: []network.Round{
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				return bigChallenge(rng, s.p)
			}},
			{Kind: network.Merlin},
		},
		Decide: s.decide,
	}
}

// decide is the verification procedure of Protocol 2, run at node v.
func (s *SymDAM) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != s.n {
		return false
	}
	msg, err := s.decode(view.Responses[0])
	if err != nil {
		return false
	}
	neighborMsgs := make(map[int]symDAMMessage, len(view.Neighbors))
	for _, u := range view.Neighbors {
		nm, err := s.decode(view.NeighborResponses[0][u])
		if err != nil {
			return false
		}
		if !sameBroadcast(msg, nm) {
			return false
		}
		neighborMsgs[u] = nm
	}

	// Line 1: spanning-tree checks.
	treeAdvice := make(map[int]spantree.Advice, len(neighborMsgs))
	for u, nm := range neighborMsgs {
		treeAdvice[u] = nm.tree
	}
	if !spantree.VerifyLocal(v, msg.tree, treeAdvice, view.HasNeighbor) {
		return false
	}
	children := spantree.Children(v, treeAdvice)
	i := msg.echo

	// Line 3a: a_v = h_i([v, N(v)]) + Σ_{u∈C(v)} a_u.
	closed := bitset.New(s.n)
	closed.Add(v)
	for _, u := range view.Neighbors {
		closed.Add(u)
	}
	aExpect := s.family.HashRowMatrix(i, s.n, v, closed)
	for _, u := range children {
		aExpect = s.family.AddModInto(aExpect, neighborMsgs[u].a)
	}
	if aExpect.Cmp(msg.a) != 0 {
		return false
	}

	// Line 3b: b_v = h_i([ρ(v), ρ(N(v))]) + Σ_{u∈C(v)} b_u, with ρ read
	// from the broadcast (so no first-round commitment is needed).
	mappedRow := closed.Permute(msg.rho)
	bExpect := s.family.HashRowMatrix(i, s.n, msg.rho[v], mappedRow)
	for _, u := range children {
		bExpect = s.family.AddModInto(bExpect, neighborMsgs[u].b)
	}
	if bExpect.Cmp(msg.b) != 0 {
		return false
	}

	// Line 4: root-only checks.
	if v == msg.root {
		if msg.a.Cmp(msg.b) != 0 {
			return false
		}
		if msg.rho[v] == v {
			return false
		}
		iv, err := decodeBigChallenge(view.MyChallenges[0], s.p)
		if err != nil || iv.Cmp(i) != 0 {
			return false
		}
	}
	return true
}

// HonestProver returns a prover implementing the completeness strategy of
// Theorem 3.5. A fresh prover must be used per run.
func (s *SymDAM) HonestProver() network.Prover {
	return &symDAMProver{proto: s}
}

// ProverWithMapping returns an honest-except-for-ρ prover committing to the
// given mapping and root; used by cheating strategies and tests.
func (s *SymDAM) ProverWithMapping(rho perm.Perm, root int) network.Prover {
	return &symDAMProver{proto: s, fixedRho: rho, fixedRoot: root}
}

type symDAMProver struct {
	proto     *SymDAM
	fixedRho  perm.Perm
	fixedRoot int
	// PostHoc, when non-nil, lets the prover choose the mapping *after*
	// seeing the challenge — the attack surface dAM protocols must survive.
	// It receives the graph and the root's challenge and returns (ρ, root).
	PostHoc func(g *graph.Graph, i *big.Int) (perm.Perm, int)
}

func (p *symDAMProver) Respond(round int, view *network.ProverView) (*network.Response, error) {
	if round != 0 {
		return nil, fmt.Errorf("core: SymDAM prover called for round %d", round)
	}
	s := p.proto
	g := view.Graph
	if g.N() != s.n {
		return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g.N(), s.n)
	}

	var rho perm.Perm
	var root int
	switch {
	case p.PostHoc != nil:
		// The challenge the root will check is not known until a root is
		// chosen; the post-hoc strategy receives the graph and a decoding
		// oracle. We pass node 0's challenge view via closure configuration
		// in adversary.go; here the convention is: the strategy picks the
		// root, and the echo uses that root's challenge.
		rho, root = p.PostHoc(g, nil)
	case p.fixedRho != nil:
		rho, root = p.fixedRho, p.fixedRoot
	default:
		// The honest search is seed-independent, so it goes through the
		// per-graph setup cache (the PostHoc and fixed-mapping strategies
		// above deliberately do not).
		rho = setupcache.ForGraph(g).Automorphism()
		if rho == nil {
			rho = perm.Identity(s.n)
			rho[0], rho[1] = 1, 0
		}
		root = rho.Moved()
	}

	i, err := decodeBigChallenge(view.Challenges[0][root], s.p)
	if err != nil {
		return nil, fmt.Errorf("core: SymDAM prover challenge: %w", err)
	}
	if p.PostHoc != nil {
		// Now that the root (and hence the binding challenge) is known,
		// give the post-hoc strategy the real challenge.
		rho, _ = p.PostHoc(g, i)
	}

	advice, err := setupcache.ForGraph(g).SpanTree(root)
	if err != nil {
		return nil, fmt.Errorf("core: SymDAM prover tree: %w", err)
	}
	a, b := subtreeHashSums(g, s.family, i, rho, advice)

	resp := &network.Response{PerNode: make([]wire.Message, s.n)}
	for v := 0; v < s.n; v++ {
		resp.PerNode[v] = s.encode(symDAMMessage{
			rho:  rho,
			echo: i,
			root: root,
			tree: advice[v],
			a:    a[v],
			b:    b[v],
		})
	}
	return resp, nil
}

// Run executes the protocol on g against the given prover.
func (s *SymDAM) Run(g *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	return network.Run(s.Spec(), g, nil, prover, network.Options{Seed: seed})
}
