package core

// Codec robustness: verifiers must treat arbitrary prover bytes as data.
// Feeding random bit strings into every message decoder must produce an
// error or a struct — never a panic — and running a whole protocol against
// a random-bits prover must reject cleanly. This is the "malformed message"
// half of soundness.

import (
	"math/rand"
	"testing"

	"dip/internal/network"
	"dip/internal/wire"
)

// randomMessage produces a random bit string of random length.
func randomMessage(rng *rand.Rand, maxBits int) wire.Message {
	var w wire.Writer
	n := rng.Intn(maxBits + 1)
	for i := 0; i < n; i++ {
		w.WriteBool(rng.Intn(2) == 1)
	}
	return w.Message()
}

func TestDecodersNeverPanicOnRandomBits(t *testing.T) {
	rng := rand.New(rand.NewSource(80))

	dmam, err := NewSymDMAM(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	dam, err := NewSymDAM(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	dsym, err := NewDSymDAM(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	gni, err := NewGNIDAMAM(6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	gnid, err := NewGNIDAM(6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	gng, err := NewGNIGeneral(6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	lcp, err := NewSymLCP(9)
	if err != nil {
		t.Fatal(err)
	}
	glcp, err := NewGNILCP(9)
	if err != nil {
		t.Fatal(err)
	}

	decoders := []struct {
		name string
		f    func(wire.Message)
	}{
		{"sym-dmam first", func(m wire.Message) { _, _ = dmam.decodeFirst(m) }},
		{"sym-dmam second", func(m wire.Message) { _, _ = dmam.decodeSecond(m) }},
		{"sym-dam", func(m wire.Message) { _, _ = dam.decode(m) }},
		{"dsym", func(m wire.Message) { _, _ = dsym.decode(m) }},
		{"gni first (prefix)", func(m wire.Message) { _, _ = gni.decodeFirst(m, nil) }},
		{"gni first (full)", func(m wire.Message) { _, _ = gni.decodeFirst(m, []int{3, 3, 3}) }},
		{"gni second", func(m wire.Message) { _, _ = gni.decodeSecond(m, 2) }},
		{"gni-dam", func(m wire.Message) { _, _ = gnid.decode(m) }},
		{"gni-general", func(m wire.Message) { _, _ = gng.decode(m) }},
		{"sym-lcp", func(m wire.Message) { _, _ = lcp.decode(m) }},
		{"gni-lcp", func(m wire.Message) { _, _, _ = glcp.decode(m) }},
	}
	for _, d := range decoders {
		d := d
		t.Run(d.name, func(t *testing.T) {
			for i := 0; i < 300; i++ {
				m := randomMessage(rng, 4000)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("decoder panicked on %d random bits: %v", m.Bits, r)
						}
					}()
					d.f(m)
				}()
			}
		})
	}
}

func TestAllProtocolsRejectRandomBitsProver(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := symmetricGraph(t, 6, 81) // 14 vertices, connected

	dmam, err := NewSymDMAM(g.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dam, err := NewSymDAM(g.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		res, err := dmam.Run(g, GarbageProver([]int{rng.Intn(500), rng.Intn(500)}, rng), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("sym-dmam accepted garbage")
		}
		res, err = dam.Run(g, GarbageProver([]int{rng.Intn(2000)}, rng), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("sym-dam accepted garbage")
		}
	}

	inst, err := NewGNIYesInstance(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	gni, err := NewGNIDAMAM(6, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		res, err := gni.Run(inst.G0, inst.G1,
			GarbageProver([]int{rng.Intn(3000), rng.Intn(3000)}, rng), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatal("gni accepted garbage")
		}
	}
}

func TestVerifiersSurviveTruncatedHonestMessages(t *testing.T) {
	// Truncating an honest response mid-field must be caught by parsing,
	// not crash a verifier.
	g := symmetricGraph(t, 6, 82)
	proto, err := NewSymDMAM(g.N(), 82)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 7, 13} {
		corrupt := func(round, node int, m wire.Message) wire.Message {
			if m.Bits <= cut {
				return wire.Empty
			}
			trimmed, err := subBits(m, 0, m.Bits-cut-1)
			if err != nil {
				return wire.Empty
			}
			return trimmed
		}
		res, err := network.Run(proto.Spec(), g, nil, proto.HonestProver(),
			network.Options{Seed: int64(cut), Corrupt: corrupt})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatalf("truncation by %d bits accepted", cut)
		}
	}
}
