package core

import (
	"math/rand"
	"reflect"
	"testing"

	"dip/internal/faults"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/peer"
)

// TestEngineEquivalenceUnderFaults extends the engine-equivalence contract
// to corrupted runs: for every fault class, on each plane it supports, all
// three executors — sequential, concurrent, and networked over a real TCP
// peer fleet — must produce bit-identical Results (decisions, cost, and
// the full transcript, which records the corrupted deliveries). This is
// the property that makes the fault matrix engine-agnostic: a fault
// schedule is a pure function of the seed, not of goroutine interleaving
// or socket timing — and on the networked executor the corrupted copies
// genuinely cross sockets, since injectors run in the coordinator's
// funnel before each delivery is shipped to its peer.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is slow")
	}
	rng := rand.New(rand.NewSource(42))
	base, err := graph.RandomAsymmetricConnected(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	sym := graph.Doubled(base, 0)
	n := sym.N()

	dmam, err := NewSymDMAM(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	dam, err := NewSymDAM(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	rpls, err := NewSymRPLS(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	const gniN, gniK = 6, 4
	gniYes, err := NewGNIYesInstance(gniN, rng)
	if err != nil {
		t.Fatal(err)
	}
	damam, err := NewGNIDAMAM(gniN, gniK, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A spread of round structures: MAM with broadcast checks, AM with a
	// huge advice message, an RPLS with Digest rounds (the digest is what
	// travels the exchange plane), and the GNI workhorse.
	cases := []equivCase{
		{"sym-dmam", dmam.Spec, sym, nil, dmam.HonestProver},
		{"sym-dam", dam.Spec, sym, nil, dam.HonestProver},
		{"sym-rpls", rpls.Spec, sym, nil, rpls.HonestProver},
		{"gni-damam", damam.Spec, gniYes.G0, EncodeGNIInputs(gniYes.G1), damam.HonestProver},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs := peerFleet(t, 3, tc.spec)
			for _, name := range faults.Names() {
				class, ok := faults.ByName(name)
				if !ok {
					t.Fatalf("class %q vanished", name)
				}
				for _, plane := range class.Planes {
					t.Run(name+"/"+string(plane), func(t *testing.T) {
						const seed = 17
						run := func(mode string) *network.Result {
							opts := network.Options{Seed: seed, RecordTranscript: true}
							switch mode {
							case "sequential":
								opts.Sequential = true
							case "concurrent":
								opts.Concurrent = true
							case "networked":
								coord, err := peer.Dial(addrs, nil, peer.Options{})
								if err != nil {
									t.Fatal(err)
								}
								opts.Transport = coord
							}
							// Fresh injector per run: Replay and NodeSwap
							// carry per-run state.
							nn := tc.g.N()
							switch plane {
							case faults.PlaneProver:
								opts.Corrupt = faults.Corruptor(seed, nn, class.New())
							case faults.PlaneExchange:
								opts.CorruptExchange = faults.ExchangeCorruptor(seed, nn, class.New())
							}
							res, err := network.Run(tc.spec(), tc.g, tc.inputs, tc.prover(), opts)
							if err != nil {
								t.Fatalf("%s: %v", mode, err)
							}
							return res
						}
						seqRes := run("sequential")
						for _, mode := range []string{"concurrent", "networked"} {
							other := run(mode)
							if !reflect.DeepEqual(seqRes, other) {
								t.Fatalf("engines diverge under %s on %s plane:\nsequential: accepted=%v decisions=%v\n%s: accepted=%v decisions=%v",
									name, plane,
									seqRes.Accepted, seqRes.Decisions,
									mode, other.Accepted, other.Decisions)
							}
						}
						checkPerRoundSums(t, seed, &seqRes.Cost)
					})
				}
			}
		})
	}
}
