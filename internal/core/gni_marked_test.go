package core

import (
	"math/rand"
	"testing"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/wire"
)

// markedInstance builds a connected n-node network containing two induced
// k-vertex subgraphs: a copy of a (marked 0) and of b (marked 1), joined
// through ⊥-marked hub nodes (so no stray same-mark edges are introduced),
// plus a few cross-mark edges for realism.
func markedInstance(a, b *graph.Graph, hubs int, rng *rand.Rand) (*graph.Graph, []Mark) {
	k := a.N()
	n := 2*k + hubs
	g := graph.New(n)
	marks := make([]Mark, n)
	for v := 0; v < k; v++ {
		marks[v] = MarkZero
		marks[v+k] = MarkOne
	}
	for v := 2 * k; v < n; v++ {
		marks[v] = MarkNone
	}
	for _, e := range a.Edges() {
		g.AddEdge(e[0], e[1])
	}
	for _, e := range b.Edges() {
		g.AddEdge(e[0]+k, e[1]+k)
	}
	// Hubs connect everything (⊥–marked edges do not touch the induced
	// subgraphs).
	for v := 0; v < 2*k; v++ {
		g.AddEdge(v, 2*k+v%hubs)
	}
	for h := 1; h < hubs; h++ {
		g.AddEdge(2*k, 2*k+h)
	}
	// Cross-mark edges are irrelevant to both induced subgraphs.
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 0 {
			g.AddEdge(rng.Intn(k), k+rng.Intn(k))
		}
	}
	return g, marks
}

func TestMarkedGNIValidation(t *testing.T) {
	if _, err := NewMarkedGNI(10, 2, 5, 0); err == nil {
		t.Fatal("k=2 accepted")
	}
	if _, err := NewMarkedGNI(5, 3, 5, 0); err == nil {
		t.Fatal("n < 2k accepted")
	}
	if _, err := NewMarkedGNI(14, 6, 0, 0); err == nil {
		t.Fatal("reps=0 accepted")
	}
	proto, err := NewMarkedGNI(14, 6, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if proto.N() != 14 || proto.K() != 6 || proto.Reps() != 10 {
		t.Fatal("accessors wrong")
	}
	if th := proto.Threshold(); th < 1 || th > 10 {
		t.Fatalf("threshold %d", th)
	}
}

func TestEncodeMarks(t *testing.T) {
	msgs, err := EncodeMarks([]Mark{MarkZero, MarkOne, MarkNone})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []Mark{MarkZero, MarkOne, MarkNone} {
		got, err := decodeMark(msgs[i])
		if err != nil || got != want {
			t.Fatalf("mark %d: got %v, %v", i, got, err)
		}
	}
	if _, err := EncodeMarks([]Mark{Mark(7)}); err == nil {
		t.Fatal("invalid mark accepted")
	}
}

func TestMarkedGNISeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("marked GNI separation is slow")
	}
	rng := rand.New(rand.NewSource(95))
	a, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	for graph.AreIsomorphic(a, b) {
		if b, err = graph.RandomAsymmetricConnected(6, rng); err != nil {
			t.Fatal(err)
		}
	}
	bShuffled, _ := b.Shuffle(rng)
	aShuffled, _ := a.Shuffle(rng)

	const hubs = 3
	gYes, marksYes := markedInstance(a, bShuffled, hubs, rng)
	gNo, marksNo := markedInstance(a, aShuffled, hubs, rng)

	proto, err := NewMarkedGNI(gYes.N(), 6, 60, 95)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g *graph.Graph, marks []Mark, seed0 int64, trials int) float64 {
		accepts := 0
		for i := 0; i < trials; i++ {
			res, err := proto.Run(g, marks, proto.HonestProver(), seed0+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if res.Accepted {
				accepts++
			}
		}
		return float64(accepts) / float64(trials)
	}
	yesRate := run(gYes, marksYes, 100, 8)
	noRate := run(gNo, marksNo, 200, 8)
	t.Logf("marked GNI: yes %.2f, no %.2f (threshold %d/%d)",
		yesRate, noRate, proto.Threshold(), proto.Reps())
	if yesRate <= 1.0/3 {
		t.Fatalf("yes rate %.2f too low", yesRate)
	}
	if noRate >= 1.0/3 {
		t.Fatalf("no rate %.2f too high", noRate)
	}
}

func TestMarkedGNIWrongSetSizeRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	a, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, marks := markedInstance(a, a.Clone(), 3, rng)
	// Remove one node from the 1-marked set: sizes now differ from k.
	marks[6+3] = MarkNone
	proto, err := NewMarkedGNI(g.N(), 6, 5, 96)
	if err != nil {
		t.Fatal(err)
	}
	// The honest prover refuses to build a proof for the wrong set size.
	if _, err := proto.Run(g, marks, proto.HonestProver(), 1); err == nil {
		t.Fatal("expected prover error for mismatched set sizes")
	}
	// A prover that lies about the counts is caught by the aggregation.
	inner := &markedProver{proto: proto}
	lying := proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		// Re-mark the node in the prover's view to fake the right size.
		fixed := make([]wire.Message, len(view.Inputs))
		copy(fixed, view.Inputs)
		var w wire.Writer
		w.WriteInt(int(MarkOne), 2)
		fixed[9] = w.Message()
		return inner.Respond(round, &network.ProverView{
			Graph: view.Graph, Inputs: fixed, Challenges: view.Challenges,
		})
	})
	res, err := proto.Run(g, marks, lying, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("count-faking prover accepted")
	}
}

func TestMarkedGNICostScalesWithNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	a, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := a.Shuffle(rng)
	g, marks := markedInstance(a, b, 4, rng)
	proto, err := NewMarkedGNI(g.N(), 6, 4, 97)
	if err != nil {
		t.Fatal(err)
	}
	res, err := proto.Run(g, marks, proto.HonestProver(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.MaxProverBits() == 0 {
		t.Fatal("no communication measured")
	}
	// The per-node cost is O(reps·(k log k + n)) — sanity bound.
	n, k, reps := g.N(), 6, 4
	bound := 64 * reps * (k*wire.WidthFor(k) + n)
	if got := res.Cost.MaxProverBits(); got > bound {
		t.Fatalf("MaxProverBits = %d exceeds sanity bound %d", got, bound)
	}
}

func TestMarkedGNIStateSizeMismatch(t *testing.T) {
	proto, err := NewMarkedGNI(14, 6, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.Run(graph.Cycle(5), []Mark{MarkZero}, proto.HonestProver(), 0); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestMarkedGNIRankForgeryCaught(t *testing.T) {
	// A prover that assigns two 0-marked nodes the same rank (collapsing
	// them onto one induced vertex) must be caught by the rank-multiset
	// check with high probability.
	rng := rand.New(rand.NewSource(98))
	a, err := graph.RandomAsymmetricConnected(6, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := a.Shuffle(rng)
	g, marks := markedInstance(a, b, 3, rng)
	proto, err := NewMarkedGNI(g.N(), 6, 3, 98)
	if err != nil {
		t.Fatal(err)
	}

	accepts := 0
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		inner := &markedProver{proto: proto}
		forging := proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
			resp, err := inner.Respond(round, view)
			if err != nil || round != 0 {
				return resp, err
			}
			// Rewrite node 1's rank to duplicate node 0's (both 0-marked).
			// Re-encode node 1's message and fix all claims about node 1
			// in its neighbors' messages so cross-checks still pass; the
			// multiset check is then the only line of defense.
			msg1, err := proto.decodeFirst(resp.PerNode[1], view.Graph.Degree(1))
			if err != nil {
				return nil, err
			}
			forgedRank := inner.ranks[0]
			msg1.rank = forgedRank
			resp.PerNode[1] = proto.encodeFirst(msg1)
			for _, u := range view.Graph.Neighbors(1) {
				mu, err := proto.decodeFirst(resp.PerNode[u], view.Graph.Degree(u))
				if err != nil {
					return nil, err
				}
				for i, w := range view.Graph.Neighbors(u) {
					if w == 1 {
						mu.claims[i].rank = forgedRank
					}
				}
				resp.PerNode[u] = proto.encodeFirst(mu)
			}
			return resp, nil
		})
		res, err := proto.Run(g, marks, forging, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			accepts++
		}
	}
	if accepts > 1 {
		t.Fatalf("rank forgery accepted %d/%d times", accepts, trials)
	}
}
