package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"dip/internal/bitset"
	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/prime"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// DSymDAM is the O(log n)-bit dAM protocol for Dumbbell Symmetry
// (Section 3.3, Theorem 3.6) — the upper-bound half of the exponential
// separation between distributed AM and distributed NP.
//
// DSym (Definition 5) fixes the candidate automorphism σ: swap the two
// sides of the dumbbell and reverse the connecting path. Because σ is fixed,
// the prover has nothing to commit to, so the first Merlin round of
// Protocol 1 disappears and a Protocol-1-sized hash modulus (p ≈ n³, i.e.
// O(log n) bits) is already sound:
//
//	Arthur  — per node v: random hash index i_v ∈ Z_p
//	Merlin  — per node v: [echo i | parent t_v | dist d_v | a_v | b_v]
//
// The root is vertex 0 by convention (σ(0) = n ≠ 0). Conditions (2) and (3)
// of DSym — the path is present and no stray edges exist — are verified
// locally by each node without the prover's help; condition (1) — σ is an
// automorphism — is verified with the spanning-tree hash aggregation of
// Protocol 1.
type DSymDAM struct {
	side   int // n of Definition 5: vertices per dumbbell side
	half   int // r of Definition 5: half-length of the connecting path
	total  int // 2·side + 2·half + 1
	p      *big.Int
	family *hashing.LinearFamily
	sigma  []int
}

// NewDSymDAM builds the protocol for DSym graphs with parameters
// (side, half) — side ≥ 1 vertices per side and a path of 2·half+1 interior
// vertices.
func NewDSymDAM(side, half int, seed int64) (*DSymDAM, error) {
	if side < 1 || half < 0 {
		return nil, fmt.Errorf("core: DSymDAM invalid parameters side=%d half=%d", side, half)
	}
	total := 2*side + 2*half + 1
	p, err := prime.ForCubicWindow(total, seed)
	if err != nil {
		return nil, fmt.Errorf("core: DSymDAM modulus: %w", err)
	}
	family, err := hashing.NewLinearFamily(total*total, p)
	if err != nil {
		return nil, fmt.Errorf("core: DSymDAM family: %w", err)
	}
	return &DSymDAM{
		side:   side,
		half:   half,
		total:  total,
		p:      p,
		family: family,
		sigma:  graph.DSymAutomorphism(side, half),
	}, nil
}

// N returns the total number of vertices of a conforming instance.
func (d *DSymDAM) N() int { return d.total }

// P returns (a copy of) the hash modulus.
func (d *DSymDAM) P() *big.Int { return new(big.Int).Set(d.p) }

func (d *DSymDAM) idWidth() int   { return wire.WidthFor(d.total) }
func (d *DSymDAM) hashWidth() int { return wire.WidthForBig(d.p) }

type dsymMessage struct {
	echo *big.Int
	tree spantree.Advice
	a, b *big.Int
}

func (d *DSymDAM) encode(m dsymMessage) wire.Message {
	var w wire.Writer
	w.WriteBig(m.echo, d.hashWidth())
	w.WriteInt(m.tree.Parent, d.idWidth())
	w.WriteInt(m.tree.Dist, d.idWidth())
	w.WriteBig(m.a, d.hashWidth())
	w.WriteBig(m.b, d.hashWidth())
	return w.Message()
}

func (d *DSymDAM) decode(m wire.Message) (dsymMessage, error) {
	r := wire.NewReader(m)
	var out dsymMessage
	var err error
	if out.echo, err = r.ReadBig(d.hashWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent, err = r.ReadInt(d.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(d.idWidth()); err != nil {
		return out, err
	}
	if out.a, err = r.ReadBig(d.hashWidth()); err != nil {
		return out, err
	}
	if out.b, err = r.ReadBig(d.hashWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent >= d.total {
		return out, errors.New("core: parent id out of range")
	}
	for _, x := range []*big.Int{out.echo, out.a, out.b} {
		if x.Cmp(d.p) >= 0 {
			return out, errors.New("core: field value out of range")
		}
	}
	out.tree.Root = 0
	return out, r.Done()
}

// legalNeighborhood runs node v's prover-free structure checks: conditions
// (2) and (3) of Section 3.3, restricted to what v can see locally.
func (d *DSymDAM) legalNeighborhood(v int, neighbors []int) bool {
	n, r := d.side, d.half
	pathFirst, pathLast := 2*n, 2*n+2*r

	within := func(lo, hi int) func(int) bool { // inclusive range predicate
		return func(u int) bool { return u >= lo && u <= hi }
	}
	sideA := within(0, n-1)
	sideB := within(n, 2*n-1)

	switch {
	case v == 0:
		// Side-A anchor: internal side-A edges plus the path start.
		hasPath := false
		for _, u := range neighbors {
			switch {
			case u == pathFirst:
				hasPath = true
			case sideA(u):
			default:
				return false
			}
		}
		return hasPath
	case v == n:
		// Side-B anchor: internal side-B edges plus the path end.
		hasPath := false
		for _, u := range neighbors {
			switch {
			case u == pathLast:
				hasPath = true
			case sideB(u):
			default:
				return false
			}
		}
		return hasPath
	case sideA(v):
		for _, u := range neighbors {
			if !sideA(u) {
				return false
			}
		}
		return true
	case sideB(v):
		for _, u := range neighbors {
			if !sideB(u) {
				return false
			}
		}
		return true
	default:
		// Path interior: exactly the two path neighbors, with the ends
		// attached to the anchors.
		prev, next := v-1, v+1
		if v == pathFirst {
			prev = 0
		}
		if v == pathLast {
			next = n
		}
		if len(neighbors) != 2 {
			return false
		}
		seen := map[int]bool{}
		for _, u := range neighbors {
			seen[u] = true
		}
		return seen[prev] && seen[next]
	}
}

// Spec returns the protocol's round schedule and verifier.
func (d *DSymDAM) Spec() *network.Spec {
	return &network.Spec{
		Name: "dsym-dam",
		Rounds: []network.Round{
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				return bigChallenge(rng, d.p)
			}},
			{Kind: network.Merlin},
		},
		Decide: d.decide,
	}
}

func (d *DSymDAM) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != d.total {
		return false
	}
	// Prover-free structure checks first.
	if !d.legalNeighborhood(v, view.Neighbors) {
		return false
	}

	msg, err := d.decode(view.Responses[0])
	if err != nil {
		return false
	}
	neighborMsgs := make(map[int]dsymMessage, len(view.Neighbors))
	for _, u := range view.Neighbors {
		nm, err := d.decode(view.NeighborResponses[0][u])
		if err != nil {
			return false
		}
		if nm.echo.Cmp(msg.echo) != 0 {
			return false
		}
		neighborMsgs[u] = nm
	}

	treeAdvice := make(map[int]spantree.Advice, len(neighborMsgs))
	for u, nm := range neighborMsgs {
		treeAdvice[u] = nm.tree
	}
	if !spantree.VerifyLocal(v, msg.tree, treeAdvice, view.HasNeighbor) {
		return false
	}
	children := spantree.Children(v, treeAdvice)
	i := msg.echo

	closed := bitset.New(d.total)
	closed.Add(v)
	for _, u := range view.Neighbors {
		closed.Add(u)
	}
	aExpect := d.family.HashRowMatrix(i, d.total, v, closed)
	for _, u := range children {
		aExpect = d.family.AddModInto(aExpect, neighborMsgs[u].a)
	}
	if aExpect.Cmp(msg.a) != 0 {
		return false
	}

	mappedRow := closed.Permute(d.sigma)
	bExpect := d.family.HashRowMatrix(i, d.total, d.sigma[v], mappedRow)
	for _, u := range children {
		bExpect = d.family.AddModInto(bExpect, neighborMsgs[u].b)
	}
	if bExpect.Cmp(msg.b) != 0 {
		return false
	}

	if v == 0 { // root checks; σ(0) = side ≠ 0 by construction
		if msg.a.Cmp(msg.b) != 0 {
			return false
		}
		iv, err := decodeBigChallenge(view.MyChallenges[0], d.p)
		if err != nil || iv.Cmp(i) != 0 {
			return false
		}
	}
	return true
}

// HonestProver returns the completeness prover: it echoes the root's hash
// index and computes the spanning tree and subtree hash sums honestly. A
// fresh prover must be used per run.
func (d *DSymDAM) HonestProver() network.Prover {
	return &dsymProver{proto: d}
}

// ForgingProver returns a prover that fabricates the a-sum at the given
// node, for soundness tests: all other values are honest.
func (d *DSymDAM) ForgingProver(at int) network.Prover {
	return &dsymProver{proto: d, forgeAt: at, forge: true}
}

type dsymProver struct {
	proto   *DSymDAM
	forgeAt int
	forge   bool
}

func (p *dsymProver) Respond(round int, view *network.ProverView) (*network.Response, error) {
	if round != 0 {
		return nil, fmt.Errorf("core: DSym prover called for round %d", round)
	}
	d := p.proto
	g := view.Graph
	if g.N() != d.total {
		return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g.N(), d.total)
	}
	i, err := decodeBigChallenge(view.Challenges[0][0], d.p)
	if err != nil {
		return nil, fmt.Errorf("core: DSym prover challenge: %w", err)
	}
	advice, err := spantree.Compute(g, 0)
	if err != nil {
		return nil, fmt.Errorf("core: DSym prover tree: %w", err)
	}
	a, b := subtreeHashSums(g, d.family, i, d.sigma, advice)
	if p.forge {
		a[p.forgeAt] = new(big.Int).Mod(new(big.Int).Add(a[p.forgeAt], big.NewInt(1)), d.p)
	}
	resp := &network.Response{PerNode: make([]wire.Message, d.total)}
	for v := 0; v < d.total; v++ {
		resp.PerNode[v] = d.encode(dsymMessage{echo: i, tree: advice[v], a: a[v], b: b[v]})
	}
	return resp, nil
}

// Run executes the protocol on g against the given prover.
func (d *DSymDAM) Run(g *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	return network.Run(d.Spec(), g, nil, prover, network.Options{Seed: seed})
}
