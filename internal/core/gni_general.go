package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/prime"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// GNIGeneral removes the asymmetry promise from the GNI protocol: it
// decides Graph Non-Isomorphism for arbitrary (connected) graph pairs.
//
// The paper (Section 4) restricts its presentation to asymmetric graphs
// because a symmetric G_b makes |{σ(G_b)}| = n!/|Aut(G_b)| < n!, which
// skews the Goldwasser–Sipser counting. The fix — from Goldwasser–Sipser's
// original paper — is to count *pairs*: let
//
//	S' = { (H, τ) : H = σ(G_b) for some σ ∈ S_n, b ∈ {0,1}, τ ∈ Aut(H) }.
//
// For each b there are exactly n! such pairs regardless of symmetry
// (n!/|Aut| graphs, |Aut| automorphisms each), so |S'| = 2·n! iff
// G₀ ≇ G₁ and n! otherwise — the clean counting is restored.
//
// The prover must now exhibit (b, σ, τ) with h(σ(G_b), τ) = y where τ is
// an automorphism of σ(G_b). Two new verification obligations arise, both
// discharged distributively:
//
//   - the hash domain widens to pairs: our ε-API hash runs over 2n²
//     coordinates, the second block holding τ's permutation indicator
//     (node v contributes the entry (σ(v), τ(σ(v))) — σ is a bijection,
//     so the entries cover τ exactly once);
//   - τ ∈ Aut(σ(G_b)) is verified by the Lemma 3.1 hash comparison of
//     Protocol 2, aggregated up the same spanning tree over a fresh
//     modulus q₃ ∈ [10·n^{2n+2}, ...]: large enough to union-bound over
//     all n^{2n} candidate pairs (σ, τ), since in the one-exchange
//     structure the prover sees the seed before committing. log q₃ =
//     O(n log n), so the budget is unchanged.
//
// Round structure: a single Arthur-Merlin exchange, as in GNIDAM.
type GNIGeneral struct {
	n      int
	k      int
	params *hashing.GSParams // dimension 2n²
	q3     *big.Int          // automorphism-check modulus
	thresh int
}

// NewGNIGeneral builds the promise-free protocol for graphs on n vertices
// with k parallel repetitions.
func NewGNIGeneral(n, k int, seed int64) (*GNIGeneral, error) {
	if n < 3 {
		return nil, fmt.Errorf("core: GNIGeneral needs n >= 3, got %d", n)
	}
	if n > 8 {
		return nil, fmt.Errorf("core: GNIGeneral prover enumerates Aut by brute force; n = %d > 8", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: GNIGeneral needs k >= 1, got %d", k)
	}
	params, err := hashing.NewGSParamsDim(n, 2, 2, seed)
	if err != nil {
		return nil, fmt.Errorf("core: GNIGeneral hash params: %w", err)
	}
	// q3 ∈ [10·n^{2n+2}, 100·n^{2n+2}].
	pow := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(int64(2*n+2)), nil)
	lo := new(big.Int).Mul(big.NewInt(10), pow)
	hi := new(big.Int).Mul(big.NewInt(100), pow)
	q3, err := prime.InWindow(lo, hi, seed+13)
	if err != nil {
		return nil, fmt.Errorf("core: GNIGeneral q3: %w", err)
	}
	g := &GNIGeneral{n: n, k: k, params: params, q3: q3}
	yes, no := g.SingleShotBounds()
	g.thresh = int(math.Ceil(float64(k) * (yes + no) / 2))
	return g, nil
}

// N, K, Threshold mirror the other GNI variants.
func (g *GNIGeneral) N() int         { return g.n }
func (g *GNIGeneral) K() int         { return g.k }
func (g *GNIGeneral) Threshold() int { return g.thresh }

// SingleShotBounds mirrors GNIDAMAM.SingleShotBounds (Poisson estimates)
// with |S'| = 2·n!.
func (g *GNIGeneral) SingleShotBounds() (yesRate, noRate float64) {
	fact, _ := new(big.Float).SetInt(prime.Factorial(g.n)).Float64()
	p, _ := new(big.Float).SetInt(g.params.P()).Float64()
	muYes := 2 * fact / p
	yesRate = 1 - math.Exp(-muYes)
	noRate = 1 - math.Exp(-muYes/2)
	return yesRate, noRate
}

func (g *GNIGeneral) idWidth() int  { return wire.WidthFor(g.n) }
func (g *GNIGeneral) qWidth() int   { return wire.WidthForBig(g.params.Q()) }
func (g *GNIGeneral) q3Width() int  { return wire.WidthForBig(g.q3) }
func (g *GNIGeneral) echoBits() int { return g.n * g.params.SliceWidth() }

// q3RawBits is the raw randomness backing α3 (oversampled to kill modular
// bias, as in hashing.GSParams).
func (g *GNIGeneral) q3RawBits() int { return g.q3Width() + 64 }

// q3SliceWidth is each node's share of the α3 randomness.
func (g *GNIGeneral) q3SliceWidth() int { return (g.q3RawBits() + g.n - 1) / g.n }

// q3EchoBits is the padded width of the echoed α3 slice bundle.
func (g *GNIGeneral) q3EchoBits() int { return g.n * g.q3SliceWidth() }

// challengeWidth is the per-node Arthur message width: per repetition, a
// seed slice plus an α3 slice.
func (g *GNIGeneral) challengeWidth() int {
	return g.k * (g.params.SliceWidth() + g.q3SliceWidth())
}

// alpha3FromEcho reduces the echoed raw bits into Z_{q3}.
func (g *GNIGeneral) alpha3FromEcho(echo wire.Message) (*big.Int, error) {
	r := wire.NewReader(echo)
	raw, err := r.ReadBig(g.q3RawBits())
	if err != nil {
		return nil, err
	}
	return raw.Mod(raw, g.q3), nil
}

// h3Row computes Σ_c α3^{row·n+c+1} mod q3 — one row's contribution to the
// Lemma 3.1 automorphism comparison.
func (g *GNIGeneral) h3Row(alpha3 *big.Int, row int, cols []int) *big.Int {
	sum := new(big.Int)
	e := new(big.Int)
	for _, c := range cols {
		e.SetInt64(int64(row*g.n + c + 1))
		sum.Add(sum, new(big.Int).Exp(alpha3, e, g.q3))
	}
	return sum.Mod(sum, g.q3)
}

type gniGenRep struct {
	success    bool
	b          int
	seedEcho   wire.Message
	alpha3Echo wire.Message
	sigma, tau []int
}

type gniGenMessage struct {
	reps []gniGenRep
	tree spantree.Advice
	// per successful repetition, in claim order:
	c    []*big.Int // ε-API partial sums (Z_q)
	d, e []*big.Int // automorphism-check partial sums (Z_{q3})
}

func (g *GNIGeneral) encode(m gniGenMessage) wire.Message {
	var w wire.Writer
	for _, r := range m.reps {
		w.WriteBool(r.success)
		if !r.success {
			continue
		}
		w.WriteInt(r.b, 1)
		w.WriteBits(r.seedEcho.Data, r.seedEcho.Bits)
		w.WriteBits(r.alpha3Echo.Data, r.alpha3Echo.Bits)
		for _, img := range r.sigma {
			w.WriteInt(img, g.idWidth())
		}
		for _, img := range r.tau {
			w.WriteInt(img, g.idWidth())
		}
	}
	w.WriteInt(m.tree.Parent, g.idWidth())
	w.WriteInt(m.tree.Dist, g.idWidth())
	for i := range m.c {
		w.WriteBig(m.c[i], g.qWidth())
		w.WriteBig(m.d[i], g.q3Width())
		w.WriteBig(m.e[i], g.q3Width())
	}
	return w.Message()
}

func (g *GNIGeneral) decode(m wire.Message) (gniGenMessage, error) {
	r := wire.NewReader(m)
	out := gniGenMessage{reps: make([]gniGenRep, g.k)}
	successes := 0
	readPerm := func() ([]int, error) {
		p := make([]int, g.n)
		for v := range p {
			var err error
			if p[v], err = r.ReadInt(g.idWidth()); err != nil {
				return nil, err
			}
			if p[v] >= g.n {
				return nil, errors.New("core: image out of range")
			}
		}
		return p, nil
	}
	readEcho := func(bits int) (wire.Message, error) {
		raw, err := r.ReadBig(bits)
		if err != nil {
			return wire.Message{}, err
		}
		var w wire.Writer
		w.WriteBig(raw, bits)
		return w.Message(), nil
	}
	for i := range out.reps {
		ok, err := r.ReadBool()
		if err != nil {
			return out, err
		}
		out.reps[i].success = ok
		if !ok {
			continue
		}
		successes++
		if out.reps[i].b, err = r.ReadInt(1); err != nil {
			return out, err
		}
		if out.reps[i].seedEcho, err = readEcho(g.echoBits()); err != nil {
			return out, err
		}
		if out.reps[i].alpha3Echo, err = readEcho(g.q3EchoBits()); err != nil {
			return out, err
		}
		if out.reps[i].sigma, err = readPerm(); err != nil {
			return out, err
		}
		if out.reps[i].tau, err = readPerm(); err != nil {
			return out, err
		}
	}
	var err error
	if out.tree.Parent, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent >= g.n {
		return out, errors.New("core: parent id out of range")
	}
	out.tree.Root = 0
	out.c = make([]*big.Int, successes)
	out.d = make([]*big.Int, successes)
	out.e = make([]*big.Int, successes)
	for i := 0; i < successes; i++ {
		if out.c[i], err = r.ReadBig(g.qWidth()); err != nil {
			return out, err
		}
		if out.d[i], err = r.ReadBig(g.q3Width()); err != nil {
			return out, err
		}
		if out.e[i], err = r.ReadBig(g.q3Width()); err != nil {
			return out, err
		}
		if out.c[i].Cmp(g.params.Q()) >= 0 || out.d[i].Cmp(g.q3) >= 0 || out.e[i].Cmp(g.q3) >= 0 {
			return out, errors.New("core: aggregate out of range")
		}
	}
	return out, r.Done()
}

func sameGNIGenBroadcast(a, b gniGenMessage) bool {
	if len(a.reps) != len(b.reps) {
		return false
	}
	for i := range a.reps {
		x, y := a.reps[i], b.reps[i]
		if x.success != y.success {
			return false
		}
		if !x.success {
			continue
		}
		if x.b != y.b || !msgEqual(x.seedEcho, y.seedEcho) || !msgEqual(x.alpha3Echo, y.alpha3Echo) {
			return false
		}
		for v := range x.sigma {
			if x.sigma[v] != y.sigma[v] || x.tau[v] != y.tau[v] {
				return false
			}
		}
	}
	return true
}

// Spec returns the protocol's round schedule and verifier.
func (g *GNIGeneral) Spec() *network.Spec {
	return &network.Spec{
		Name: "gni-general",
		Rounds: []network.Round{
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				var w wire.Writer
				for i := 0; i < g.challengeWidth(); i++ {
					w.WriteBool(rng.Intn(2) == 1)
				}
				return w.Message()
			}},
			{Kind: network.Merlin},
		},
		Decide: g.decide,
	}
}

// challengeSlices extracts (seedSlice, alpha3Slice) of repetition rI from a
// node's Arthur message.
func (g *GNIGeneral) challengeSlices(ch wire.Message, rI int) (seed, a3 wire.Message, err error) {
	per := g.params.SliceWidth() + g.q3SliceWidth()
	seed, err = subBits(ch, rI*per, g.params.SliceWidth())
	if err != nil {
		return
	}
	a3, err = subBits(ch, rI*per+g.params.SliceWidth(), g.q3SliceWidth())
	return
}

func (g *GNIGeneral) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != g.n {
		return false
	}
	msg, err := g.decode(view.Responses[0])
	if err != nil {
		return false
	}
	neighborMsgs := make(map[int]gniGenMessage, len(view.Neighbors))
	for _, u := range view.Neighbors {
		nm, err := g.decode(view.NeighborResponses[0][u])
		if err != nil {
			return false
		}
		if !sameGNIGenBroadcast(msg, nm) {
			return false
		}
		neighborMsgs[u] = nm
	}

	treeAdvice := make(map[int]spantree.Advice, len(neighborMsgs))
	for u, nm := range neighborMsgs {
		treeAdvice[u] = nm.tree
	}
	if !spantree.VerifyLocal(v, msg.tree, treeAdvice, view.HasNeighbor) {
		return false
	}
	children := spantree.Children(v, treeAdvice)

	si := 0
	for rI, rep := range msg.reps {
		if !rep.success {
			continue
		}
		if !perm.IsValid(rep.sigma) || !perm.IsValid(rep.tau) {
			return false
		}
		// Verify both of our slice contributions inside the echoes.
		mySeed, myA3, err := g.challengeSlices(view.MyChallenges[0], rI)
		if err != nil {
			return false
		}
		echoSeed, err := subBits(rep.seedEcho, v*g.params.SliceWidth(), g.params.SliceWidth())
		if err != nil || !msgEqual(echoSeed, mySeed) {
			return false
		}
		echoA3, err := subBits(rep.alpha3Echo, v*g.q3SliceWidth(), g.q3SliceWidth())
		if err != nil || !msgEqual(echoA3, myA3) {
			return false
		}
		// Assemble the seeds from the echoes.
		slices := make([]wire.Message, g.n)
		for u := 0; u < g.n; u++ {
			if slices[u], err = subBits(rep.seedEcho, u*g.params.SliceWidth(), g.params.SliceWidth()); err != nil {
				return false
			}
		}
		seed, err := g.params.SeedFromSlices(slices)
		if err != nil {
			return false
		}
		alpha3, err := g.alpha3FromEcho(rep.alpha3Echo)
		if err != nil {
			return false
		}

		// Our row of σ(G_b) plus our τ-indicator entry.
		closed, err := closedNbhdFromView(view, rep.b, g.n)
		if err != nil {
			return false
		}
		cols := make([]int, len(closed))
		for j, u := range closed {
			cols[j] = rep.sigma[u]
		}
		sigmaV := rep.sigma[v]
		cExpect := g.params.RowTermSlow(seed.Alpha, sigmaV, cols)
		// τ block: row n + σ(v), single column τ(σ(v)).
		cExpect = g.params.AddModQ(cExpect,
			g.params.RowTermSlow(seed.Alpha, g.n+sigmaV, []int{rep.tau[sigmaV]}))
		for _, u := range children {
			cExpect = g.params.AddModQ(cExpect, neighborMsgs[u].c[si])
		}
		if cExpect.Cmp(msg.c[si]) != 0 {
			return false
		}

		// Automorphism comparison, Lemma 3.1 style: d aggregates
		// h3([σ(v), row]), e aggregates h3([τ(σ(v)), τ(row)]).
		dExpect := g.h3Row(alpha3, sigmaV, cols)
		tauCols := make([]int, len(cols))
		for j, c := range cols {
			tauCols[j] = rep.tau[c]
		}
		eExpect := g.h3Row(alpha3, rep.tau[sigmaV], tauCols)
		for _, u := range children {
			dExpect.Add(dExpect, neighborMsgs[u].d[si])
			eExpect.Add(eExpect, neighborMsgs[u].e[si])
		}
		dExpect.Mod(dExpect, g.q3)
		eExpect.Mod(eExpect, g.q3)
		if dExpect.Cmp(msg.d[si]) != 0 || eExpect.Cmp(msg.e[si]) != 0 {
			return false
		}

		if v == 0 {
			if msg.d[si].Cmp(msg.e[si]) != 0 {
				return false // τ is not an automorphism of σ(G_b)
			}
			if g.params.Finish(seed, msg.c[si]).Cmp(seed.Y) != 0 {
				return false
			}
		}
		si++
	}
	if v == 0 && si < g.thresh {
		return false
	}
	return true
}

// HonestProver returns the optimal prover. It enumerates the pair set S'
// exactly once per repetition: coset-minimal σ (so each image graph is
// visited once) times the conjugated automorphism group. A fresh prover
// must be used per run.
func (g *GNIGeneral) HonestProver() network.Prover {
	return &gniGenProver{proto: g}
}

type gniGenProver struct {
	proto *GNIGeneral
}

func (p *gniGenProver) Respond(round int, view *network.ProverView) (*network.Response, error) {
	if round != 0 {
		return nil, fmt.Errorf("core: GNIGeneral prover called for round %d", round)
	}
	g := p.proto
	n := g.n
	g0 := view.Graph
	if g0.N() != n {
		return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g0.N(), n)
	}
	if len(view.Inputs) != n {
		return nil, errors.New("core: GNIGeneral prover needs G1 inputs")
	}

	graphs := [2]*graph.Graph{g0, nil}
	g1 := graph.New(n)
	for v := 0; v < n; v++ {
		open, err := decodeGNIInput(view.Inputs[v], n)
		if err != nil {
			return nil, fmt.Errorf("core: GNIGeneral prover input %d: %w", v, err)
		}
		for _, u := range open {
			if u > v {
				g1.AddEdge(v, u)
			}
		}
	}
	graphs[1] = g1

	var closed [2][][]int
	var auts [2][]perm.Perm
	for b := 0; b < 2; b++ {
		for v := 0; v < n; v++ {
			c := append([]int(nil), graphs[b].Neighbors(v)...)
			c = append(c, v)
			sort.Ints(c)
			closed[b] = append(closed[b], c)
		}
		auts[b] = graph.AllAutomorphisms(graphs[b])
	}

	advice, err := spantree.Compute(g0, 0)
	if err != nil {
		return nil, fmt.Errorf("core: GNIGeneral prover tree: %w", err)
	}
	childLists := spantree.ChildLists(advice)
	order := spantree.PostOrder(advice)

	reps := make([]gniGenRep, g.k)
	type sums struct{ c, d, e []*big.Int }
	var all []sums
	for rI := 0; rI < g.k; rI++ {
		// Assemble both seeds from the nodes' slices.
		slices := make([]wire.Message, n)
		var seedEcho, a3Echo wire.Writer
		for v := 0; v < n; v++ {
			sd, a3, err := g.challengeSlices(view.Challenges[0][v], rI)
			if err != nil {
				return nil, err
			}
			slices[v] = sd
			seedEcho.WriteBits(sd.Data, sd.Bits)
			a3Echo.WriteBits(a3.Data, a3.Bits)
		}
		seed, err := g.params.SeedFromSlices(slices)
		if err != nil {
			return nil, err
		}
		rep := gniGenRep{seedEcho: seedEcho.Message(), alpha3Echo: a3Echo.Message()}

		b, sigma, tau, ok := p.search(closed, auts, seed)
		rep.success, rep.b, rep.sigma, rep.tau = ok, b, sigma, tau
		reps[rI] = rep
		if !ok {
			continue
		}

		alpha3, err := g.alpha3FromEcho(rep.alpha3Echo)
		if err != nil {
			return nil, err
		}
		table := g.params.Powers(seed.Alpha)
		s := sums{
			c: make([]*big.Int, n),
			d: make([]*big.Int, n),
			e: make([]*big.Int, n),
		}
		for _, v := range order {
			cls := closed[b][v]
			cols := make([]int, len(cls))
			for j, u := range cls {
				cols[j] = sigma[u]
			}
			sigmaV := sigma[v]
			c := g.params.RowTerm(table, sigmaV, cols)
			c = g.params.AddModQ(c, g.params.RowTerm(table, n+sigmaV, []int{tau[sigmaV]}))
			d := g.h3Row(alpha3, sigmaV, cols)
			tauCols := make([]int, len(cols))
			for j, x := range cols {
				tauCols[j] = tau[x]
			}
			e := g.h3Row(alpha3, tau[sigmaV], tauCols)
			for _, ch := range childLists[v] {
				c = g.params.AddModQ(c, s.c[ch])
				d.Add(d, s.d[ch])
				e.Add(e, s.e[ch])
			}
			d.Mod(d, g.q3)
			e.Mod(e, g.q3)
			s.c[v], s.d[v], s.e[v] = c, d, e
		}
		all = append(all, s)
	}

	resp := &network.Response{PerNode: make([]wire.Message, n)}
	for v := 0; v < n; v++ {
		msg := gniGenMessage{reps: reps, tree: advice[v]}
		for _, s := range all {
			msg.c = append(msg.c, s.c[v])
			msg.d = append(msg.d, s.d[v])
			msg.e = append(msg.e, s.e[v])
		}
		resp.PerNode[v] = g.encode(msg)
	}
	return resp, nil
}

// search enumerates S' for a preimage of the target: coset-minimal σ
// (each image graph once) × conjugated automorphisms.
func (p *gniGenProver) search(closed [2][][]int, auts [2][]perm.Perm, seed *hashing.GSSeed) (int, perm.Perm, perm.Perm, bool) {
	g := p.proto
	n := g.n
	table := g.params.Powers(seed.Alpha)
	for b := 0; b < 2; b++ {
		sigma := perm.Identity(n)
		for {
			if cosetMinimal(sigma, auts[b]) {
				// Matrix-block hash, shared by all τ for this σ.
				base := new(big.Int)
				for v := 0; v < n; v++ {
					cls := closed[b][v]
					cols := make([]int, len(cls))
					for j, u := range cls {
						cols[j] = sigma[u]
					}
					base = g.params.AddModQ(base, g.params.RowTerm(table, sigma[v], cols))
				}
				sigmaInv := sigma.Inverse()
				for _, a := range auts[b] {
					tau := sigma.Compose(a).Compose(sigmaInv)
					f := new(big.Int).Set(base)
					for w := 0; w < n; w++ {
						f = g.params.AddModQ(f, g.params.RowTerm(table, n+w, []int{tau[w]}))
					}
					if g.params.Finish(seed, f).Cmp(seed.Y) == 0 {
						return b, sigma.Clone(), tau, true
					}
				}
			}
			if !sigma.NextLex() {
				break
			}
		}
	}
	return 0, nil, nil, false
}

// cosetMinimal reports whether sigma is the lexicographically smallest
// member of its coset sigma∘Aut.
func cosetMinimal(sigma perm.Perm, aut []perm.Perm) bool {
	for _, a := range aut {
		if a.IsIdentity() {
			continue
		}
		cand := sigma.Compose(a)
		for i := range cand {
			if cand[i] < sigma[i] {
				return false
			}
			if cand[i] > sigma[i] {
				break
			}
		}
	}
	return true
}

// Run executes the protocol: g0 is the network graph, g1 the input graph.
func (g *GNIGeneral) Run(g0, g1 *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	if g0.N() != g.n || g1.N() != g.n {
		return nil, fmt.Errorf("core: GNI instance sizes (%d, %d), protocol built for %d",
			g0.N(), g1.N(), g.n)
	}
	return network.Run(g.Spec(), g0, EncodeGNIInputs(g1), prover, network.Options{Seed: seed})
}
