package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// GNIDAM is a one-exchange (dAM) variant of the Goldwasser–Sipser GNI
// protocol — a round reduction of GNIDAMAM that our concrete ε-API hash
// makes possible. The paper proves GNI ∈ dAMAM and asks, as an open
// problem, whether round reduction theorems exist for the distributed
// model; this variant shows that for GNI the answer is yes *for our
// instantiation*, at no asymptotic cost:
//
//   - the prover broadcasts σ in full (n·⌈lg n⌉ bits — already within the
//     O(n log n) budget), so every node checks locally that σ is a
//     permutation and computes its own row images; the second Arthur
//     round, which GNIDAMAM spends certifying the per-node image claims,
//     becomes unnecessary;
//   - the hash aggregation f_α is linear, so the unicast partial sums can
//     ride in the same Merlin message and be verified locally against the
//     broadcast σ.
//
// Round structure, k repetitions in parallel:
//
//	Arthur — per-node seed slices (as in GNIDAMAM)
//	Merlin — broadcast: per repetition, success claim; for successes the
//	         bit b, the seed echo and the full σ. Unicast: spanning-tree
//	         advice and per-success partial hash sums c_v.
//
// Same promise (both graphs asymmetric), same counting argument, same
// threshold rule as GNIDAMAM.
type GNIDAM struct {
	n      int
	k      int
	params *hashing.GSParams
	thresh int
}

// NewGNIDAM builds the one-exchange variant for graphs on n vertices with
// k parallel repetitions.
func NewGNIDAM(n, k int, seed int64) (*GNIDAM, error) {
	if n < 3 {
		return nil, fmt.Errorf("core: GNIDAM needs n >= 3, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: GNIDAM needs k >= 1, got %d", k)
	}
	params, err := hashing.NewGSParams(n, 2, seed)
	if err != nil {
		return nil, fmt.Errorf("core: GNIDAM hash params: %w", err)
	}
	// Reuse GNIDAMAM's threshold arithmetic via a scratch instance: the
	// counting argument is identical.
	ref, err := NewGNIDAMAM(n, k, seed)
	if err != nil {
		return nil, err
	}
	return &GNIDAM{n: n, k: k, params: params, thresh: ref.Threshold()}, nil
}

// N returns the number of vertices; K the repetition count; Threshold the
// root's acceptance threshold.
func (g *GNIDAM) N() int         { return g.n }
func (g *GNIDAM) K() int         { return g.k }
func (g *GNIDAM) Threshold() int { return g.thresh }

func (g *GNIDAM) idWidth() int  { return wire.WidthFor(g.n) }
func (g *GNIDAM) qWidth() int   { return wire.WidthForBig(g.params.Q()) }
func (g *GNIDAM) echoBits() int { return g.n * g.params.SliceWidth() }

// gniDamRep is one repetition's broadcast section.
type gniDamRep struct {
	success  bool
	b        int
	seedEcho wire.Message
	sigma    []int
}

// gniDamMessage is one node's (single) Merlin message.
type gniDamMessage struct {
	reps []gniDamRep
	tree spantree.Advice
	sums []*big.Int // c_v per successful repetition, in claim order
}

func (g *GNIDAM) encode(m gniDamMessage) wire.Message {
	var w wire.Writer
	for _, r := range m.reps {
		w.WriteBool(r.success)
		if !r.success {
			continue
		}
		w.WriteInt(r.b, 1)
		w.WriteBits(r.seedEcho.Data, r.seedEcho.Bits)
		for _, img := range r.sigma {
			w.WriteInt(img, g.idWidth())
		}
	}
	w.WriteInt(m.tree.Parent, g.idWidth())
	w.WriteInt(m.tree.Dist, g.idWidth())
	for _, c := range m.sums {
		w.WriteBig(c, g.qWidth())
	}
	return w.Message()
}

func (g *GNIDAM) decode(m wire.Message) (gniDamMessage, error) {
	r := wire.NewReader(m)
	out := gniDamMessage{reps: make([]gniDamRep, g.k)}
	successes := 0
	for i := range out.reps {
		ok, err := r.ReadBool()
		if err != nil {
			return out, err
		}
		out.reps[i].success = ok
		if !ok {
			continue
		}
		successes++
		if out.reps[i].b, err = r.ReadInt(1); err != nil {
			return out, err
		}
		echo, err := r.ReadBig(g.echoBits())
		if err != nil {
			return out, err
		}
		var ew wire.Writer
		ew.WriteBig(echo, g.echoBits())
		out.reps[i].seedEcho = ew.Message()
		out.reps[i].sigma = make([]int, g.n)
		for v := range out.reps[i].sigma {
			if out.reps[i].sigma[v], err = r.ReadInt(g.idWidth()); err != nil {
				return out, err
			}
			if out.reps[i].sigma[v] >= g.n {
				return out, errors.New("core: image out of range")
			}
		}
	}
	var err error
	if out.tree.Parent, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent >= g.n {
		return out, errors.New("core: parent id out of range")
	}
	out.tree.Root = 0
	out.sums = make([]*big.Int, successes)
	for i := range out.sums {
		if out.sums[i], err = r.ReadBig(g.qWidth()); err != nil {
			return out, err
		}
		if out.sums[i].Cmp(g.params.Q()) >= 0 {
			return out, errors.New("core: partial sum out of range")
		}
	}
	return out, r.Done()
}

// sameGNIDamBroadcast compares the broadcast sections of two messages.
func sameGNIDamBroadcast(a, b gniDamMessage) bool {
	if len(a.reps) != len(b.reps) {
		return false
	}
	for i := range a.reps {
		x, y := a.reps[i], b.reps[i]
		if x.success != y.success {
			return false
		}
		if !x.success {
			continue
		}
		if x.b != y.b || !msgEqual(x.seedEcho, y.seedEcho) {
			return false
		}
		for v := range x.sigma {
			if x.sigma[v] != y.sigma[v] {
				return false
			}
		}
	}
	return true
}

// Spec returns the protocol's round schedule and verifier.
func (g *GNIDAM) Spec() *network.Spec {
	return &network.Spec{
		Name: "gni-dam",
		Rounds: []network.Round{
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				var w wire.Writer
				for i := 0; i < g.k*g.params.SliceWidth(); i++ {
					w.WriteBool(rng.Intn(2) == 1)
				}
				return w.Message()
			}},
			{Kind: network.Merlin},
		},
		Decide: g.decide,
	}
}

func (g *GNIDAM) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != g.n {
		return false
	}
	msg, err := g.decode(view.Responses[0])
	if err != nil {
		return false
	}
	neighborMsgs := make(map[int]gniDamMessage, len(view.Neighbors))
	for _, u := range view.Neighbors {
		nm, err := g.decode(view.NeighborResponses[0][u])
		if err != nil {
			return false
		}
		if !sameGNIDamBroadcast(msg, nm) {
			return false
		}
		neighborMsgs[u] = nm
	}

	treeAdvice := make(map[int]spantree.Advice, len(neighborMsgs))
	for u, nm := range neighborMsgs {
		treeAdvice[u] = nm.tree
	}
	if !spantree.VerifyLocal(v, msg.tree, treeAdvice, view.HasNeighbor) {
		return false
	}
	children := spantree.Children(v, treeAdvice)

	sw := g.params.SliceWidth()
	si := 0
	for rI, rep := range msg.reps {
		if !rep.success {
			continue
		}
		// σ must be a permutation — a purely local check on the broadcast.
		if !perm.IsValid(rep.sigma) {
			return false
		}
		// Our seed slice must be echoed intact.
		mySlice, err := subBits(rep.seedEcho, v*sw, sw)
		if err != nil {
			return false
		}
		sent, err := subBits(view.MyChallenges[0], rI*sw, sw)
		if err != nil {
			return false
		}
		if !msgEqual(mySlice, sent) {
			return false
		}
		slices, err := g.slicesFromEcho(rep.seedEcho)
		if err != nil {
			return false
		}
		seed, err := g.params.SeedFromSlices(slices)
		if err != nil {
			return false
		}

		// Our row of σ(G_b): row index σ(v), columns σ(closed N_b(v)) —
		// all computed locally from the broadcast σ.
		closed, err := closedNbhdFromView(view, rep.b, g.n)
		if err != nil {
			return false
		}
		cols := make([]int, len(closed))
		for j, u := range closed {
			cols[j] = rep.sigma[u]
		}
		cExpect := g.params.RowTermSlow(seed.Alpha, rep.sigma[v], cols)
		for _, u := range children {
			cExpect = g.params.AddModQ(cExpect, neighborMsgs[u].sums[si])
		}
		if cExpect.Cmp(msg.sums[si]) != 0 {
			return false
		}
		if v == 0 && g.params.Finish(seed, msg.sums[si]).Cmp(seed.Y) != 0 {
			return false
		}
		si++
	}
	if v == 0 && si < g.thresh {
		return false
	}
	return true
}

// slicesFromEcho splits an echo into per-node slices (same layout as
// GNIDAMAM).
func (g *GNIDAM) slicesFromEcho(echo wire.Message) ([]wire.Message, error) {
	sw := g.params.SliceWidth()
	out := make([]wire.Message, g.n)
	for v := 0; v < g.n; v++ {
		s, err := subBits(echo, v*sw, sw)
		if err != nil {
			return nil, err
		}
		out[v] = s
	}
	return out, nil
}

// HonestProver returns the optimal prover (which doubles as the optimal
// cheater on no-instances). A fresh prover must be used per run.
func (g *GNIDAM) HonestProver() network.Prover {
	return &gniDamProver{proto: g}
}

type gniDamProver struct {
	proto *GNIDAM
}

func (p *gniDamProver) Respond(round int, view *network.ProverView) (*network.Response, error) {
	if round != 0 {
		return nil, fmt.Errorf("core: GNIDAM prover called for round %d", round)
	}
	g := p.proto
	n := g.n
	g0 := view.Graph
	if g0.N() != n {
		return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g0.N(), n)
	}
	if len(view.Inputs) != n {
		return nil, errors.New("core: GNIDAM prover needs G1 inputs")
	}

	var closed [2][][]int
	for v := 0; v < n; v++ {
		c0 := append([]int(nil), g0.Neighbors(v)...)
		c0 = append(c0, v)
		sort.Ints(c0)
		closed[0] = append(closed[0], c0)
		open1, err := decodeGNIInput(view.Inputs[v], n)
		if err != nil {
			return nil, fmt.Errorf("core: GNIDAM prover input %d: %w", v, err)
		}
		c1 := append(open1, v)
		sort.Ints(c1)
		closed[1] = append(closed[1], c1)
	}

	advice, err := spantree.Compute(g0, 0)
	if err != nil {
		return nil, fmt.Errorf("core: GNIDAM prover tree: %w", err)
	}
	childLists := spantree.ChildLists(advice)
	order := spantree.PostOrder(advice)

	sw := g.params.SliceWidth()
	reps := make([]gniDamRep, g.k)
	sums := make([][]*big.Int, 0, g.k) // per success, per node
	for r := 0; r < g.k; r++ {
		slices := make([]wire.Message, n)
		var echo wire.Writer
		for v := 0; v < n; v++ {
			s, err := subBits(view.Challenges[0][v], r*sw, sw)
			if err != nil {
				return nil, err
			}
			slices[v] = s
			echo.WriteBits(s.Data, s.Bits)
		}
		seed, err := g.params.SeedFromSlices(slices)
		if err != nil {
			return nil, err
		}
		b, sigma, ok := searchGNIPreimage(g.params, closed, seed)
		reps[r] = gniDamRep{success: ok, b: b, seedEcho: echo.Message()}
		if !ok {
			continue
		}
		reps[r].sigma = sigma

		table := g.params.Powers(seed.Alpha)
		perNode := make([]*big.Int, n)
		for _, v := range order {
			cls := closed[b][v]
			cols := make([]int, len(cls))
			for j, u := range cls {
				cols[j] = sigma[u]
			}
			c := g.params.RowTerm(table, sigma[v], cols)
			for _, ch := range childLists[v] {
				c = g.params.AddModQ(c, perNode[ch])
			}
			perNode[v] = c
		}
		sums = append(sums, perNode)
	}

	resp := &network.Response{PerNode: make([]wire.Message, n)}
	for v := 0; v < n; v++ {
		msg := gniDamMessage{reps: reps, tree: advice[v], sums: make([]*big.Int, len(sums))}
		for si := range sums {
			msg.sums[si] = sums[si][v]
		}
		resp.PerNode[v] = g.encode(msg)
	}
	return resp, nil
}

// searchGNIPreimage enumerates (b, σ) for a member of S hashing to the
// seed's target. Shared by the one- and two-exchange GNI provers.
func searchGNIPreimage(params *hashing.GSParams, closed [2][][]int, seed *hashing.GSSeed) (int, perm.Perm, bool) {
	n := params.N()
	table := params.Powers(seed.Alpha)
	for b := 0; b < 2; b++ {
		sigma := perm.Identity(n)
		for {
			f := new(big.Int)
			for v := 0; v < n; v++ {
				cls := closed[b][v]
				cols := make([]int, len(cls))
				for j, u := range cls {
					cols[j] = sigma[u]
				}
				f = params.AddModQ(f, params.RowTerm(table, sigma[v], cols))
			}
			if params.Finish(seed, f).Cmp(seed.Y) == 0 {
				return b, sigma.Clone(), true
			}
			if !sigma.NextLex() {
				break
			}
		}
	}
	return 0, nil, false
}

// Run executes the protocol: g0 is the network graph, g1 the input graph.
func (g *GNIDAM) Run(g0, g1 *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	if g0.N() != g.n || g1.N() != g.n {
		return nil, fmt.Errorf("core: GNI instance sizes (%d, %d), protocol built for %d",
			g0.N(), g1.N(), g.n)
	}
	return network.Run(g.Spec(), g0, EncodeGNIInputs(g1), prover, network.Options{Seed: seed})
}
