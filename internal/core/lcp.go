package core

import (
	"fmt"

	"dip/internal/bitset"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/setupcache"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// This file implements the non-interactive "distributed NP" baselines the
// paper compares against: locally checkable proofs (LCPs), where the prover
// hands each node a single advice string and disappears. They are expressed
// as one-Merlin-round protocols in the same engine, so costs are measured
// identically.
//
//   - SymLCP: the Θ(n²)-bit scheme for Symmetry. [17] proves Θ(n²) is
//     optimal, which is the lower half of the Theorem 1.2 separation.
//   - GNILCP: the Θ(n²)-bit scheme for Graph Non-Isomorphism (the paper
//     notes an Ω(n²) bound for GNI without interaction, Section 1.1.2).
//   - SpanTreeLCP: the Θ(log n) spanning-tree scheme of [23], the building
//     block whose cost every interactive protocol here inherits.

// SymLCP is the non-interactive Θ(n²)-bit proof that the network graph is
// symmetric: the advice at every node is the full adjacency matrix, the
// automorphism ρ, and a witness vertex moved by ρ. Each node verifies its
// own row of the matrix and that all neighbors got identical advice; on a
// connected graph this pins the matrix to the true adjacency matrix, and the
// remaining checks are purely computational.
type SymLCP struct {
	n int
}

// NewSymLCP builds the baseline for graphs on n ≥ 2 vertices.
func NewSymLCP(n int) (*SymLCP, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: SymLCP needs n >= 2, got %d", n)
	}
	return &SymLCP{n: n}, nil
}

// AdviceBits returns the exact advice length: n(n-1)/2 matrix bits,
// n·ceil(lg n) mapping bits, ceil(lg n) witness bits.
func (s *SymLCP) AdviceBits() int {
	idW := wire.WidthFor(s.n)
	return s.n*(s.n-1)/2 + s.n*idW + idW
}

type symLCPAdvice struct {
	adj     *bitset.Set // upper-triangle packing
	rho     []int
	witness int
}

func (s *SymLCP) encode(a symLCPAdvice) wire.Message {
	var w wire.Writer
	for i := 0; i < a.adj.Len(); i++ {
		w.WriteBool(a.adj.Contains(i))
	}
	idW := wire.WidthFor(s.n)
	for _, img := range a.rho {
		w.WriteInt(img, idW)
	}
	w.WriteInt(a.witness, idW)
	return w.Message()
}

func (s *SymLCP) decode(m wire.Message) (symLCPAdvice, error) {
	r := wire.NewReader(m)
	tri := s.n * (s.n - 1) / 2
	adj := bitset.New(tri)
	for i := 0; i < tri; i++ {
		b, err := r.ReadBool()
		if err != nil {
			return symLCPAdvice{}, err
		}
		if b {
			adj.Add(i)
		}
	}
	idW := wire.WidthFor(s.n)
	rho := make([]int, s.n)
	for v := range rho {
		var err error
		if rho[v], err = r.ReadInt(idW); err != nil {
			return symLCPAdvice{}, err
		}
		if rho[v] >= s.n {
			return symLCPAdvice{}, fmt.Errorf("core: image out of range")
		}
	}
	witness, err := r.ReadInt(idW)
	if err != nil {
		return symLCPAdvice{}, err
	}
	if witness >= s.n {
		return symLCPAdvice{}, fmt.Errorf("core: witness out of range")
	}
	return symLCPAdvice{adj: adj, rho: rho, witness: witness}, r.Done()
}

// Spec returns the one-round scheme.
func (s *SymLCP) Spec() *network.Spec {
	return &network.Spec{
		Name:   "sym-lcp",
		Rounds: []network.Round{{Kind: network.Merlin}},
		Decide: s.decide,
	}
}

func (s *SymLCP) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != s.n {
		return false
	}
	a, err := s.decode(view.Responses[0])
	if err != nil {
		return false
	}
	// All neighbors must hold identical advice.
	for _, u := range view.Neighbors {
		if !msgEqual(view.Responses[0], view.NeighborResponses[0][u]) {
			return false
		}
	}
	g, err := graph.FromAdjacencyBits(s.n, a.adj)
	if err != nil {
		return false
	}
	// My row of the claimed matrix must match my actual neighborhood.
	if len(g.Neighbors(v)) != len(view.Neighbors) {
		return false
	}
	for _, u := range view.Neighbors {
		if !g.HasEdge(v, u) {
			return false
		}
	}
	// The mapping must be a non-trivial automorphism of the claimed matrix.
	if !perm.IsValid(a.rho) {
		return false
	}
	if a.rho[a.witness] == a.witness {
		return false
	}
	return g.IsAutomorphism(a.rho)
}

// HonestProver returns the prover that publishes the true matrix and an
// automorphism found by search.
func (s *SymLCP) HonestProver() network.Prover {
	return proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		if round != 0 {
			return nil, fmt.Errorf("core: SymLCP prover called for round %d", round)
		}
		g := view.Graph
		if g.N() != s.n {
			return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g.N(), s.n)
		}
		rho := setupcache.ForGraph(g).Automorphism()
		if rho == nil {
			rho = perm.Identity(s.n) // will be rejected by the witness check
		}
		witness := rho.Moved()
		if witness < 0 {
			witness = 0
		}
		adv := s.encode(symLCPAdvice{adj: g.AdjacencyBits(), rho: rho, witness: witness})
		return network.Broadcast(s.n, adv), nil
	})
}

// Run executes the scheme on g against the given prover.
func (s *SymLCP) Run(g *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	return network.Run(s.Spec(), g, nil, prover, network.Options{Seed: seed})
}

// proverFunc adapts a function to network.Prover.
type proverFunc func(int, *network.ProverView) (*network.Response, error)

func (f proverFunc) Respond(r int, v *network.ProverView) (*network.Response, error) {
	return f(r, v)
}

// GNILCP is the non-interactive Θ(n²)-bit proof for Graph Non-Isomorphism:
// the advice at every node is both full adjacency matrices. Each node
// verifies its G₀ row against its actual neighborhood, its G₁ row against
// its input, and advice equality with neighbors; non-isomorphism itself is
// then decided locally by the (computationally unbounded) verifier.
type GNILCP struct {
	n int
}

// NewGNILCP builds the baseline for graphs on n ≥ 2 vertices.
func NewGNILCP(n int) (*GNILCP, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: GNILCP needs n >= 2, got %d", n)
	}
	return &GNILCP{n: n}, nil
}

// AdviceBits returns the exact advice length: both adjacency matrices.
func (s *GNILCP) AdviceBits() int { return s.n * (s.n - 1) }

func (s *GNILCP) encode(g0, g1 *graph.Graph) wire.Message {
	var w wire.Writer
	for _, g := range []*graph.Graph{g0, g1} {
		bits := g.AdjacencyBits()
		for i := 0; i < bits.Len(); i++ {
			w.WriteBool(bits.Contains(i))
		}
	}
	return w.Message()
}

func (s *GNILCP) decode(m wire.Message) (g0, g1 *graph.Graph, err error) {
	r := wire.NewReader(m)
	tri := s.n * (s.n - 1) / 2
	read := func() (*graph.Graph, error) {
		adj := bitset.New(tri)
		for i := 0; i < tri; i++ {
			b, err := r.ReadBool()
			if err != nil {
				return nil, err
			}
			if b {
				adj.Add(i)
			}
		}
		return graph.FromAdjacencyBits(s.n, adj)
	}
	if g0, err = read(); err != nil {
		return nil, nil, err
	}
	if g1, err = read(); err != nil {
		return nil, nil, err
	}
	return g0, g1, r.Done()
}

// Spec returns the one-round scheme.
func (s *GNILCP) Spec() *network.Spec {
	return &network.Spec{
		Name:   "gni-lcp",
		Rounds: []network.Round{{Kind: network.Merlin}},
		Decide: s.decide,
	}
}

func (s *GNILCP) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != s.n {
		return false
	}
	g0, g1, err := s.decode(view.Responses[0])
	if err != nil {
		return false
	}
	for _, u := range view.Neighbors {
		if !msgEqual(view.Responses[0], view.NeighborResponses[0][u]) {
			return false
		}
	}
	// G₀ row vs actual neighborhood.
	if len(g0.Neighbors(v)) != len(view.Neighbors) {
		return false
	}
	for _, u := range view.Neighbors {
		if !g0.HasEdge(v, u) {
			return false
		}
	}
	// G₁ row vs input.
	open, err := decodeGNIInput(view.Input, s.n)
	if err != nil {
		return false
	}
	if len(open) != len(g1.Neighbors(v)) {
		return false
	}
	for _, u := range open {
		if !g1.HasEdge(v, u) {
			return false
		}
	}
	// Unbounded verifier: decide non-isomorphism outright.
	return !graph.AreIsomorphic(g0, g1)
}

// HonestProver returns the prover that publishes both true matrices.
func (s *GNILCP) HonestProver() network.Prover {
	return proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		if round != 0 {
			return nil, fmt.Errorf("core: GNILCP prover called for round %d", round)
		}
		g0 := view.Graph
		if g0.N() != s.n {
			return nil, fmt.Errorf("core: graph has %d vertices, protocol built for %d", g0.N(), s.n)
		}
		g1 := graph.New(s.n)
		for v := 0; v < s.n; v++ {
			open, err := decodeGNIInput(view.Inputs[v], s.n)
			if err != nil {
				return nil, fmt.Errorf("core: GNILCP prover input %d: %w", v, err)
			}
			for _, u := range open {
				if u > v {
					g1.AddEdge(v, u)
				}
			}
		}
		return network.Broadcast(s.n, s.encode(g0, g1)), nil
	})
}

// Run executes the scheme: g0 is the network graph, g1 the input graph.
func (s *GNILCP) Run(g0, g1 *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	return network.Run(s.Spec(), g0, EncodeGNIInputs(g1), prover, network.Options{Seed: seed})
}

// SpanTreeLCP is the Θ(log n) proof-labeling scheme of [23] packaged as a
// protocol: the prover hands out (root, parent, dist) labels and every node
// verifies locally. On a connected graph this certifies a spanning tree.
type SpanTreeLCP struct {
	n int
}

// NewSpanTreeLCP builds the scheme for graphs on n ≥ 1 vertices.
func NewSpanTreeLCP(n int) (*SpanTreeLCP, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: SpanTreeLCP needs n >= 1, got %d", n)
	}
	return &SpanTreeLCP{n: n}, nil
}

// AdviceBits returns the exact advice length.
func (s *SpanTreeLCP) AdviceBits() int { return spantree.Bits(s.n) }

// Spec returns the one-round scheme.
func (s *SpanTreeLCP) Spec() *network.Spec {
	return &network.Spec{
		Name:   "spantree-lcp",
		Rounds: []network.Round{{Kind: network.Merlin}},
		Decide: func(v int, view *network.NodeView) bool {
			mine, err := spantree.Decode(wire.NewReader(view.Responses[0]), s.n)
			if err != nil {
				return false
			}
			neighbors := make(map[int]spantree.Advice, len(view.Neighbors))
			for _, u := range view.Neighbors {
				na, err := spantree.Decode(wire.NewReader(view.NeighborResponses[0][u]), s.n)
				if err != nil {
					return false
				}
				neighbors[u] = na
			}
			return spantree.VerifyLocal(v, mine, neighbors, view.HasNeighbor)
		},
	}
}

// HonestProver returns the prover that hands out a BFS tree rooted at 0.
func (s *SpanTreeLCP) HonestProver() network.Prover {
	return proverFunc(func(round int, view *network.ProverView) (*network.Response, error) {
		if round != 0 {
			return nil, fmt.Errorf("core: SpanTreeLCP prover called for round %d", round)
		}
		advice, err := setupcache.ForGraph(view.Graph).SpanTree(0)
		if err != nil {
			return nil, err
		}
		resp := &network.Response{PerNode: make([]wire.Message, s.n)}
		for v := range resp.PerNode {
			var w wire.Writer
			advice[v].Encode(&w, s.n)
			resp.PerNode[v] = w.Message()
		}
		return resp, nil
	})
}

// Run executes the scheme on g against the given prover.
func (s *SpanTreeLCP) Run(g *graph.Graph, prover network.Prover, seed int64) (*network.Result, error) {
	return network.Run(s.Spec(), g, nil, prover, network.Options{Seed: seed})
}
