package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"dip/internal/graph"
	"dip/internal/hashing"
	"dip/internal/network"
	"dip/internal/perm"
	"dip/internal/prime"
	"dip/internal/spantree"
	"dip/internal/wire"
)

// Mark is a node's input in the marked formulation of GNI.
type Mark int

// The three mark values of Section 2.3's alternative GNI definition.
const (
	MarkZero Mark = iota // member of the first induced subgraph
	MarkOne              // member of the second induced subgraph
	MarkNone             // ⊥: transport-only node
)

// MarkedGNI is the paper's *alternative* formulation of distributed GNI
// (Section 2.3): there is a single network graph G; every node carries a
// mark from {0, 1, ⊥}; and the question is whether the subgraph induced by
// the 0-marked nodes is non-isomorphic to the subgraph induced by the
// 1-marked nodes. Unlike Definition 4, here the compared graphs live
// *inside* the communication graph, and ⊥-marked nodes participate only as
// transport.
//
// The protocol reduces to the Goldwasser–Sipser machinery via a
// prover-supplied *rank labeling*: each b-marked node is assigned its index
// in [k] (k = size of each marked set, a protocol parameter), which
// relabels the induced subgraphs onto the common vertex set [k]. Three new
// verification layers make the reduction sound:
//
//   - mark/rank cross-checking: the prover tells each node the marks and
//     ranks of its network neighbors; every node checks that every
//     neighbor's message states its own mark and rank correctly, so a
//     lying prover is caught by the node it lied about;
//   - counting: subtree aggregation verifies that each marked set has
//     exactly k members (deterministically);
//   - rank validity: a post-commitment challenge z certifies via the
//     multiset identity Σ_{m_v=b} z^{rank_v} = Σ_{i<k} z^i that the ranks
//     of each marked set form a bijection onto [k] (Schwartz–Zippel).
//
// With ranks certified, node v's row of σ(H_b) is computable locally (its
// b-marked network neighbors' ranks are cross-checked), and the standard
// counting argument applies to S = {σ(H_b)}: 2·k! vs k! (both induced
// subgraphs are promised asymmetric, as in the paper's Definition 4
// protocol).
//
// Round structure: Arthur (seed slices), Merlin (marks/ranks/counts + GS
// claims), Arthur (z), Merlin (multiset + hash aggregates) — a dAMAM
// protocol, like Theorem 1.5's.
type MarkedGNI struct {
	n      int // network size
	k      int // size of each marked set
	reps   int
	params *hashing.GSParams // built for k-vertex graphs
	p2     *big.Int          // rank-multiset modulus
	thresh int
}

// NewMarkedGNI builds the protocol for an n-node network whose two marked
// sets each have k members, with the given number of parallel repetitions.
func NewMarkedGNI(n, k, reps int, seed int64) (*MarkedGNI, error) {
	if k < 3 {
		return nil, fmt.Errorf("core: MarkedGNI needs k >= 3, got %d", k)
	}
	if n < 2*k {
		return nil, fmt.Errorf("core: MarkedGNI needs n >= 2k, got n=%d k=%d", n, k)
	}
	if reps < 1 {
		return nil, fmt.Errorf("core: MarkedGNI needs reps >= 1, got %d", reps)
	}
	params, err := hashing.NewGSParams(k, 2, seed)
	if err != nil {
		return nil, fmt.Errorf("core: MarkedGNI hash params: %w", err)
	}
	lo := big.NewInt(int64(1000 * reps))
	lo.Mul(lo, big.NewInt(int64(n*n*n)))
	hi := new(big.Int).Mul(lo, big.NewInt(2))
	p2, err := prime.InWindow(lo, hi, seed+17)
	if err != nil {
		return nil, fmt.Errorf("core: MarkedGNI p2: %w", err)
	}
	g := &MarkedGNI{n: n, k: k, reps: reps, params: params, p2: p2}
	yes, no := g.SingleShotBounds()
	g.thresh = int(math.Ceil(float64(reps) * (yes + no) / 2))
	return g, nil
}

// N, K, Reps, Threshold report the protocol parameters.
func (g *MarkedGNI) N() int         { return g.n }
func (g *MarkedGNI) K() int         { return g.k }
func (g *MarkedGNI) Reps() int      { return g.reps }
func (g *MarkedGNI) Threshold() int { return g.thresh }

// SingleShotBounds returns the Poisson estimates for |S| = 2·k! vs k!.
func (g *MarkedGNI) SingleShotBounds() (yesRate, noRate float64) {
	fact, _ := new(big.Float).SetInt(prime.Factorial(g.k)).Float64()
	p, _ := new(big.Float).SetInt(g.params.P()).Float64()
	muYes := 2 * fact / p
	yesRate = 1 - math.Exp(-muYes)
	noRate = 1 - math.Exp(-muYes/2)
	return yesRate, noRate
}

func (g *MarkedGNI) idWidth() int    { return wire.WidthFor(g.n) }
func (g *MarkedGNI) rankWidth() int  { return wire.WidthFor(g.k) }
func (g *MarkedGNI) countWidth() int { return wire.WidthFor(g.n + 1) }
func (g *MarkedGNI) qWidth() int     { return wire.WidthForBig(g.params.Q()) }
func (g *MarkedGNI) p2Width() int    { return wire.WidthForBig(g.p2) }

// sliceWidth spreads the k-vertex hash seed over all n network nodes.
func (g *MarkedGNI) sliceWidth() int { return (g.params.SeedBits() + g.n - 1) / g.n }
func (g *MarkedGNI) echoBits() int   { return g.n * g.sliceWidth() }

// EncodeMarks encodes per-node marks as 2-bit inputs.
func EncodeMarks(marks []Mark) ([]wire.Message, error) {
	out := make([]wire.Message, len(marks))
	for v, m := range marks {
		if m < MarkZero || m > MarkNone {
			return nil, fmt.Errorf("core: invalid mark %d at node %d", m, v)
		}
		var w wire.Writer
		w.WriteInt(int(m), 2)
		out[v] = w.Message()
	}
	return out, nil
}

func decodeMark(m wire.Message) (Mark, error) {
	r := wire.NewReader(m)
	v, err := r.ReadInt(2)
	if err != nil {
		return 0, err
	}
	if err := r.Done(); err != nil {
		return 0, err
	}
	if v > int(MarkNone) {
		return 0, errors.New("core: invalid mark value")
	}
	return Mark(v), nil
}

// markedRep is one repetition's broadcast section.
type markedRep struct {
	success  bool
	b        int
	seedEcho wire.Message
	sigma    []int // permutation of [k]
}

// markedNeighborClaim is the prover's claim about one network neighbor.
type markedNeighborClaim struct {
	mark Mark
	rank int // meaningful only for marked neighbors
}

// markedFirst is node v's decoded M₁.
type markedFirst struct {
	k0, k1  int // claimed marked-set sizes (broadcast)
	reps    []markedRep
	tree    spantree.Advice
	rank    int  // v's own rank (meaningful if v is marked)
	ownMark Mark // v's own mark, echoed so neighbors can bind claims to it
	claims  []markedNeighborClaim
	c0, c1  int        // subtree mark counts
	sums    []*big.Int // per successful rep: partial hash sums
}

func (g *MarkedGNI) encodeFirst(m markedFirst) wire.Message {
	var w wire.Writer
	w.WriteInt(m.k0, g.countWidth())
	w.WriteInt(m.k1, g.countWidth())
	for _, r := range m.reps {
		w.WriteBool(r.success)
		if !r.success {
			continue
		}
		w.WriteInt(r.b, 1)
		w.WriteBits(r.seedEcho.Data, r.seedEcho.Bits)
		for _, img := range r.sigma {
			w.WriteInt(img, g.rankWidth())
		}
	}
	w.WriteInt(m.tree.Parent, g.idWidth())
	w.WriteInt(m.tree.Dist, g.idWidth())
	w.WriteInt(m.rank, g.rankWidth())
	w.WriteInt(int(m.ownMark), 2)
	for _, cl := range m.claims {
		w.WriteInt(int(cl.mark), 2)
		w.WriteInt(cl.rank, g.rankWidth())
	}
	w.WriteInt(m.c0, g.countWidth())
	w.WriteInt(m.c1, g.countWidth())
	for _, s := range m.sums {
		w.WriteBig(s, g.qWidth())
	}
	return w.Message()
}

// decodeFirst parses M₁; numNeighbors is the receiving context's neighbor
// count (the claims section length).
func (g *MarkedGNI) decodeFirst(m wire.Message, numNeighbors int) (markedFirst, error) {
	r := wire.NewReader(m)
	var out markedFirst
	var err error
	if out.k0, err = r.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	if out.k1, err = r.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	out.reps = make([]markedRep, g.reps)
	successes := 0
	for i := range out.reps {
		ok, err := r.ReadBool()
		if err != nil {
			return out, err
		}
		out.reps[i].success = ok
		if !ok {
			continue
		}
		successes++
		if out.reps[i].b, err = r.ReadInt(1); err != nil {
			return out, err
		}
		raw, err := r.ReadBig(g.echoBits())
		if err != nil {
			return out, err
		}
		var ew wire.Writer
		ew.WriteBig(raw, g.echoBits())
		out.reps[i].seedEcho = ew.Message()
		out.reps[i].sigma = make([]int, g.k)
		for x := range out.reps[i].sigma {
			if out.reps[i].sigma[x], err = r.ReadInt(g.rankWidth()); err != nil {
				return out, err
			}
			if out.reps[i].sigma[x] >= g.k {
				return out, errors.New("core: image out of range")
			}
		}
	}
	if out.tree.Parent, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent >= g.n {
		return out, errors.New("core: parent id out of range")
	}
	out.tree.Root = 0
	if out.rank, err = r.ReadInt(g.rankWidth()); err != nil {
		return out, err
	}
	om, err := r.ReadInt(2)
	if err != nil {
		return out, err
	}
	if om > int(MarkNone) {
		return out, errors.New("core: invalid own-mark value")
	}
	out.ownMark = Mark(om)
	out.claims = make([]markedNeighborClaim, numNeighbors)
	for i := range out.claims {
		mk, err := r.ReadInt(2)
		if err != nil {
			return out, err
		}
		if mk > int(MarkNone) {
			return out, errors.New("core: invalid mark claim")
		}
		out.claims[i].mark = Mark(mk)
		if out.claims[i].rank, err = r.ReadInt(g.rankWidth()); err != nil {
			return out, err
		}
	}
	if out.c0, err = r.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	if out.c1, err = r.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	out.sums = make([]*big.Int, successes)
	for i := range out.sums {
		if out.sums[i], err = r.ReadBig(g.qWidth()); err != nil {
			return out, err
		}
		if out.sums[i].Cmp(g.params.Q()) >= 0 {
			return out, errors.New("core: partial sum out of range")
		}
	}
	return out, r.Done()
}

// sameMarkedBroadcast compares broadcast sections.
func sameMarkedBroadcast(a, b markedFirst) bool {
	if a.k0 != b.k0 || a.k1 != b.k1 || len(a.reps) != len(b.reps) {
		return false
	}
	for i := range a.reps {
		x, y := a.reps[i], b.reps[i]
		if x.success != y.success {
			return false
		}
		if !x.success {
			continue
		}
		if x.b != y.b || !msgEqual(x.seedEcho, y.seedEcho) {
			return false
		}
		for j := range x.sigma {
			if x.sigma[j] != y.sigma[j] {
				return false
			}
		}
	}
	return true
}

// markedSecond is node v's decoded M₂: the z echo and the two rank-multiset
// subtree aggregates.
type markedSecond struct {
	zEcho  *big.Int
	m0, m1 *big.Int
}

func (g *MarkedGNI) encodeSecond(m markedSecond) wire.Message {
	var w wire.Writer
	w.WriteBig(m.zEcho, g.p2Width())
	w.WriteBig(m.m0, g.p2Width())
	w.WriteBig(m.m1, g.p2Width())
	return w.Message()
}

func (g *MarkedGNI) decodeSecond(m wire.Message) (markedSecond, error) {
	r := wire.NewReader(m)
	var out markedSecond
	var err error
	if out.zEcho, err = r.ReadBig(g.p2Width()); err != nil {
		return out, err
	}
	if out.m0, err = r.ReadBig(g.p2Width()); err != nil {
		return out, err
	}
	if out.m1, err = r.ReadBig(g.p2Width()); err != nil {
		return out, err
	}
	for _, x := range []*big.Int{out.zEcho, out.m0, out.m1} {
		if x.Cmp(g.p2) >= 0 {
			return out, errors.New("core: value out of range")
		}
	}
	return out, r.Done()
}

// Spec returns the protocol's round schedule and verifier.
func (g *MarkedGNI) Spec() *network.Spec {
	return &network.Spec{
		Name: "gni-marked",
		Rounds: []network.Round{
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				var w wire.Writer
				for i := 0; i < g.reps*g.sliceWidth(); i++ {
					w.WriteBool(rng.Intn(2) == 1)
				}
				return w.Message()
			}},
			{Kind: network.Merlin},
			{Kind: network.Arthur, Challenge: func(_ int, rng *rand.Rand, _ *network.NodeView) wire.Message {
				return bigChallenge(rng, g.p2)
			}},
			{Kind: network.Merlin},
		},
		Decide: g.decide,
	}
}

func (g *MarkedGNI) decide(v int, view *network.NodeView) bool {
	if view.NumVertices != g.n {
		return false
	}
	myMark, err := decodeMark(view.Input)
	if err != nil {
		return false
	}
	first, err := g.decodeFirst(view.Responses[0], len(view.Neighbors))
	if err != nil {
		return false
	}
	neighborFirst := make(map[int]markedFirst, len(view.Neighbors))
	for _, u := range view.Neighbors {
		// A neighbor's claims section is sized by its own degree, which v
		// does not know; decodeFirstPrefix parses everything else (the
		// broadcast section and the fixed-width head and tail fields).
		nf, err := g.decodeFirstPrefix(view.NeighborResponses[0][u])
		if err != nil {
			return false
		}
		if !sameMarkedBroadcast(first, nf) {
			return false
		}
		neighborFirst[u] = nf
	}

	// Truthful self-fields: each node verifies its own mark echo, so a
	// neighbor's ownMark field can be trusted once all nodes accept.
	if first.ownMark != myMark {
		return false
	}
	if myMark != MarkNone && first.rank >= g.k {
		return false
	}
	// Cross-check: the claim v holds about each neighbor u must match u's
	// self-reported mark and (for marked u) rank. Combined with u's own
	// mark echo and the rank-multiset certification below, every claim is
	// bound to the claimee's true mark and a bijective rank assignment.
	for i, u := range view.Neighbors {
		cl := first.claims[i]
		nf := neighborFirst[u]
		if cl.mark != nf.ownMark {
			return false
		}
		if cl.mark != MarkNone && cl.rank != nf.rank {
			return false
		}
	}

	treeAdvice := make(map[int]spantree.Advice, len(neighborFirst))
	for u, nf := range neighborFirst {
		treeAdvice[u] = nf.tree
	}
	if !spantree.VerifyLocal(v, first.tree, treeAdvice, view.HasNeighbor) {
		return false
	}
	children := spantree.Children(v, treeAdvice)

	// Counting: c_b(v) = [m_v = b] + Σ children.
	c0, c1 := 0, 0
	if myMark == MarkZero {
		c0 = 1
	}
	if myMark == MarkOne {
		c1 = 1
	}
	for _, u := range children {
		c0 += neighborFirst[u].c0
		c1 += neighborFirst[u].c1
	}
	if c0 != first.c0 || c1 != first.c1 {
		return false
	}
	if v == 0 {
		if first.c0 != first.k0 || first.c1 != first.k1 {
			return false
		}
		if first.k0 != g.k || first.k1 != g.k {
			return false // protocol instantiated for marked sets of size k
		}
	}

	// M₂: z echo and rank-multiset aggregates.
	second, err := g.decodeSecond(view.Responses[1])
	if err != nil {
		return false
	}
	neighborSecond := make(map[int]markedSecond, len(view.Neighbors))
	for _, u := range view.Neighbors {
		ns, err := g.decodeSecond(view.NeighborResponses[1][u])
		if err != nil {
			return false
		}
		if ns.zEcho.Cmp(second.zEcho) != 0 {
			return false
		}
		neighborSecond[u] = ns
	}
	z := second.zEcho
	if v == 0 {
		zv, err := decodeBigChallenge(view.MyChallenges[1], g.p2)
		if err != nil || zv.Cmp(z) != 0 {
			return false
		}
	}
	m0, m1 := new(big.Int), new(big.Int)
	if myMark == MarkZero {
		m0 = expMod(z, first.rank+1, g.p2)
	}
	if myMark == MarkOne {
		m1 = expMod(z, first.rank+1, g.p2)
	}
	for _, u := range children {
		m0.Add(m0, neighborSecond[u].m0)
		m1.Add(m1, neighborSecond[u].m1)
	}
	m0.Mod(m0, g.p2)
	m1.Mod(m1, g.p2)
	if m0.Cmp(second.m0) != 0 || m1.Cmp(second.m1) != 0 {
		return false
	}
	if v == 0 {
		want := new(big.Int)
		for i := 0; i < g.k; i++ {
			want.Add(want, expMod(z, i+1, g.p2))
		}
		want.Mod(want, g.p2)
		if second.m0.Cmp(want) != 0 || second.m1.Cmp(want) != 0 {
			return false
		}
	}

	// GS repetitions.
	sw := g.sliceWidth()
	si := 0
	for rI, rep := range first.reps {
		if !rep.success {
			continue
		}
		if !perm.IsValid(rep.sigma) {
			return false
		}
		mySlice, err := subBits(rep.seedEcho, v*sw, sw)
		if err != nil {
			return false
		}
		sent, err := subBits(view.MyChallenges[0], rI*sw, sw)
		if err != nil || !msgEqual(mySlice, sent) {
			return false
		}
		seed, err := g.params.SeedFromBits(rep.seedEcho)
		if err != nil {
			return false
		}
		contrib := new(big.Int)
		if int(myMark) == rep.b {
			cols := []int{rep.sigma[first.rank]}
			for i, u := range view.Neighbors {
				cl := first.claims[i]
				if int(cl.mark) == rep.b {
					if cl.rank >= g.k {
						return false
					}
					cols = append(cols, rep.sigma[cl.rank])
				}
				_ = u
			}
			if hasDuplicate(cols) {
				return false
			}
			contrib = g.params.RowTermSlow(seed.Alpha, rep.sigma[first.rank], cols)
		}
		cExpect := contrib
		for _, u := range children {
			cExpect = g.params.AddModQ(cExpect, neighborFirst[u].sums[si])
		}
		if cExpect.Cmp(first.sums[si]) != 0 {
			return false
		}
		if v == 0 && g.params.Finish(seed, first.sums[si]).Cmp(seed.Y) != 0 {
			return false
		}
		si++
	}
	if v == 0 && si < g.thresh {
		return false
	}
	return true
}

// decodeFirstPrefix parses a neighbor's M₁ without its variable-length
// claims section: the broadcast fields, tree advice, own rank, and — by
// reading from the END of the message — the count and sum fields, whose
// widths are fixed.
func (g *MarkedGNI) decodeFirstPrefix(m wire.Message) (markedFirst, error) {
	// The fixed-width head: broadcast section + tree + rank.
	r := wire.NewReader(m)
	var out markedFirst
	var err error
	if out.k0, err = r.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	if out.k1, err = r.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	out.reps = make([]markedRep, g.reps)
	successes := 0
	for i := range out.reps {
		ok, err := r.ReadBool()
		if err != nil {
			return out, err
		}
		out.reps[i].success = ok
		if !ok {
			continue
		}
		successes++
		if out.reps[i].b, err = r.ReadInt(1); err != nil {
			return out, err
		}
		raw, err := r.ReadBig(g.echoBits())
		if err != nil {
			return out, err
		}
		var ew wire.Writer
		ew.WriteBig(raw, g.echoBits())
		out.reps[i].seedEcho = ew.Message()
		out.reps[i].sigma = make([]int, g.k)
		for x := range out.reps[i].sigma {
			if out.reps[i].sigma[x], err = r.ReadInt(g.rankWidth()); err != nil {
				return out, err
			}
			if out.reps[i].sigma[x] >= g.k {
				return out, errors.New("core: image out of range")
			}
		}
	}
	if out.tree.Parent, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Dist, err = r.ReadInt(g.idWidth()); err != nil {
		return out, err
	}
	if out.tree.Parent >= g.n {
		return out, errors.New("core: parent id out of range")
	}
	out.tree.Root = 0
	if out.rank, err = r.ReadInt(g.rankWidth()); err != nil {
		return out, err
	}
	om, err := r.ReadInt(2)
	if err != nil {
		return out, err
	}
	if om > int(MarkNone) {
		return out, errors.New("core: invalid own-mark value")
	}
	out.ownMark = Mark(om)
	// Tail fields: counts then per-success sums, fixed widths, at the end.
	tailBits := 2*g.countWidth() + successes*g.qWidth()
	tailStart := m.Bits - tailBits
	if tailStart < 0 {
		return out, errors.New("core: message too short for tail")
	}
	tail, err := subBits(m, tailStart, tailBits)
	if err != nil {
		return out, err
	}
	tr := wire.NewReader(tail)
	if out.c0, err = tr.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	if out.c1, err = tr.ReadInt(g.countWidth()); err != nil {
		return out, err
	}
	out.sums = make([]*big.Int, successes)
	for i := range out.sums {
		if out.sums[i], err = tr.ReadBig(g.qWidth()); err != nil {
			return out, err
		}
		if out.sums[i].Cmp(g.params.Q()) >= 0 {
			return out, errors.New("core: partial sum out of range")
		}
	}
	return out, nil
}

func hasDuplicate(xs []int) bool {
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}

// Run executes the protocol on network graph g0 with the given marks.
func (g *MarkedGNI) Run(g0 *graph.Graph, marks []Mark, prover network.Prover, seed int64) (*network.Result, error) {
	if g0.N() != g.n || len(marks) != g.n {
		return nil, fmt.Errorf("core: MarkedGNI sizes (%d graph, %d marks), protocol built for %d",
			g0.N(), len(marks), g.n)
	}
	inputs, err := EncodeMarks(marks)
	if err != nil {
		return nil, err
	}
	return network.Run(g.Spec(), g0, inputs, prover, network.Options{Seed: seed})
}

// HonestProver returns the optimal prover (and optimal no-instance
// cheater). A fresh prover must be used per run.
func (g *MarkedGNI) HonestProver() network.Prover {
	return &markedProver{proto: g}
}

type markedProver struct {
	proto *MarkedGNI

	// state from M₁ to M₂
	marks  []Mark
	ranks  []int
	advice []spantree.Advice
}

func (p *markedProver) Respond(round int, view *network.ProverView) (*network.Response, error) {
	switch round {
	case 0:
		return p.first(view)
	case 1:
		return p.second(view)
	default:
		return nil, fmt.Errorf("core: MarkedGNI prover called for round %d", round)
	}
}

func (p *markedProver) first(view *network.ProverView) (*network.Response, error) {
	g := p.proto
	n := g.n
	g0 := view.Graph
	if g0.N() != n || len(view.Inputs) != n {
		return nil, errors.New("core: MarkedGNI prover instance mismatch")
	}
	marks := make([]Mark, n)
	ranks := make([]int, n)
	var set [2][]int
	for v := 0; v < n; v++ {
		m, err := decodeMark(view.Inputs[v])
		if err != nil {
			return nil, fmt.Errorf("core: MarkedGNI prover input %d: %w", v, err)
		}
		marks[v] = m
		if m == MarkZero {
			ranks[v] = len(set[0])
			set[0] = append(set[0], v)
		}
		if m == MarkOne {
			ranks[v] = len(set[1])
			set[1] = append(set[1], v)
		}
	}
	p.marks, p.ranks = marks, ranks
	if len(set[0]) != g.k || len(set[1]) != g.k {
		return nil, fmt.Errorf("core: MarkedGNI marked sets have sizes %d and %d, protocol built for %d",
			len(set[0]), len(set[1]), g.k)
	}

	// Build the induced subgraphs on [k] via the ranks.
	induced := [2]*graph.Graph{graph.New(g.k), graph.New(g.k)}
	for b := 0; b < 2; b++ {
		for _, v := range set[b] {
			for _, u := range g0.Neighbors(v) {
				if marks[u] == Mark(b) && u > v {
					induced[b].AddEdge(ranks[v], ranks[u])
				}
			}
		}
	}
	var closed [2][][]int
	for b := 0; b < 2; b++ {
		for x := 0; x < g.k; x++ {
			c := append([]int(nil), induced[b].Neighbors(x)...)
			c = append(c, x)
			closed[b] = append(closed[b], sortedInts(c))
		}
	}

	advice, err := spantree.Compute(g0, 0)
	if err != nil {
		return nil, fmt.Errorf("core: MarkedGNI prover tree: %w", err)
	}
	p.advice = advice
	childLists := spantree.ChildLists(advice)
	order := spantree.PostOrder(advice)

	// Subtree mark counts.
	c0 := make([]int, n)
	c1 := make([]int, n)
	for _, v := range order {
		if marks[v] == MarkZero {
			c0[v] = 1
		}
		if marks[v] == MarkOne {
			c1[v] = 1
		}
		for _, ch := range childLists[v] {
			c0[v] += c0[ch]
			c1[v] += c1[ch]
		}
	}

	// GS repetitions over the induced pair.
	sw := g.sliceWidth()
	reps := make([]markedRep, g.reps)
	var allSums [][]*big.Int
	for rI := 0; rI < g.reps; rI++ {
		var echo wire.Writer
		for v := 0; v < n; v++ {
			s, err := subBits(view.Challenges[0][v], rI*sw, sw)
			if err != nil {
				return nil, err
			}
			echo.WriteBits(s.Data, s.Bits)
		}
		rep := markedRep{seedEcho: echo.Message()}
		seed, err := g.params.SeedFromBits(rep.seedEcho)
		if err != nil {
			return nil, err
		}
		b, sigma, ok := searchGNIPreimage(g.params, closed, seed)
		rep.success, rep.b, rep.sigma = ok, b, sigma
		reps[rI] = rep
		if !ok {
			continue
		}
		table := g.params.Powers(seed.Alpha)
		sums := make([]*big.Int, n)
		for _, v := range order {
			s := new(big.Int)
			if int(marks[v]) == b {
				cls := closed[b][ranks[v]]
				cols := make([]int, len(cls))
				for j, u := range cls {
					cols[j] = sigma[u]
				}
				s = g.params.RowTerm(table, sigma[ranks[v]], cols)
			}
			for _, ch := range childLists[v] {
				s = g.params.AddModQ(s, sums[ch])
			}
			sums[v] = s
		}
		allSums = append(allSums, sums)
	}

	resp := &network.Response{PerNode: make([]wire.Message, n)}
	for v := 0; v < n; v++ {
		claims := make([]markedNeighborClaim, 0, g0.Degree(v))
		for _, u := range g0.Neighbors(v) {
			claims = append(claims, markedNeighborClaim{mark: marks[u], rank: ranks[u]})
		}
		msg := markedFirst{
			k0: g.k, k1: g.k,
			reps:    reps,
			tree:    advice[v],
			rank:    ranks[v],
			ownMark: marks[v],
			claims:  claims,
			c0:      c0[v], c1: c1[v],
		}
		for _, sums := range allSums {
			msg.sums = append(msg.sums, sums[v])
		}
		resp.PerNode[v] = g.encodeFirst(msg)
	}
	return resp, nil
}

func (p *markedProver) second(view *network.ProverView) (*network.Response, error) {
	g := p.proto
	n := g.n
	z, err := decodeBigChallenge(view.Challenges[1][0], g.p2)
	if err != nil {
		return nil, err
	}
	childLists := spantree.ChildLists(p.advice)
	order := spantree.PostOrder(p.advice)
	m0 := make([]*big.Int, n)
	m1 := make([]*big.Int, n)
	for _, v := range order {
		a, b := new(big.Int), new(big.Int)
		if p.marks[v] == MarkZero {
			a = expMod(z, p.ranks[v]+1, g.p2)
		}
		if p.marks[v] == MarkOne {
			b = expMod(z, p.ranks[v]+1, g.p2)
		}
		for _, ch := range childLists[v] {
			a.Add(a, m0[ch])
			b.Add(b, m1[ch])
		}
		a.Mod(a, g.p2)
		b.Mod(b, g.p2)
		m0[v], m1[v] = a, b
	}
	resp := &network.Response{PerNode: make([]wire.Message, n)}
	for v := 0; v < n; v++ {
		resp.PerNode[v] = g.encodeSecond(markedSecond{zEcho: z, m0: m0[v], m1: m1[v]})
	}
	return resp, nil
}

func sortedInts(xs []int) []int {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}
