package peer

import (
	"fmt"
	"time"

	"dip/internal/faults"
)

// Default timeouts for fleet configuration. These are the single source
// of truth: peer.Options, the dippeer flags, and the root package's
// FleetOptions all resolve onto them.
const (
	// DefaultDialTimeout bounds one TCP connect to a peer.
	DefaultDialTimeout = 5 * time.Second
	// DefaultIOTimeout bounds each blocking wait on the wire — a write,
	// or one session's wait for its next expected frame — on both the
	// coordinator and the server side.
	DefaultIOTimeout = 30 * time.Second
)

// Options is the one validated fleet configuration struct, shared by
// every layer that touches the peer wire: the Server (IOTimeout), the
// Fleet client (all fields), the dippeer flags, and dip.FleetOptions,
// which is a thin public projection of it. Zero values mean defaults.
type Options struct {
	// DialTimeout bounds each TCP connect. Zero means DefaultDialTimeout.
	DialTimeout time.Duration
	// IOTimeout bounds each blocking wire wait. Zero means
	// DefaultIOTimeout.
	IOTimeout time.Duration
	// LinkFaults, when non-nil, injects seed-deterministic per-frame
	// delay/drop on the coordinator→peer links (see faults.LinkPolicy).
	LinkFaults *faults.LinkPolicy
}

// Validate rejects configurations that cannot mean anything: negative
// timeouts and out-of-range fault probabilities.
func (o Options) Validate() error {
	if o.DialTimeout < 0 {
		return fmt.Errorf("peer: negative DialTimeout %v", o.DialTimeout)
	}
	if o.IOTimeout < 0 {
		return fmt.Errorf("peer: negative IOTimeout %v", o.IOTimeout)
	}
	if lf := o.LinkFaults; lf != nil {
		if lf.DelayProb < 0 || lf.DelayProb > 1 {
			return fmt.Errorf("peer: LinkFaults.DelayProb %v outside [0,1]", lf.DelayProb)
		}
		if lf.DropProb < 0 || lf.DropProb > 1 {
			return fmt.Errorf("peer: LinkFaults.DropProb %v outside [0,1]", lf.DropProb)
		}
		if lf.Delay < 0 {
			return fmt.Errorf("peer: negative LinkFaults.Delay %v", lf.Delay)
		}
	}
	return nil
}

// withDefaults returns o with zero timeouts resolved to the package
// defaults.
func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.IOTimeout == 0 {
		o.IOTimeout = DefaultIOTimeout
	}
	return o
}
