package peer

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"dip/internal/network"
	"dip/internal/wire"
)

// SpecBuilder rebuilds a protocol Spec from the handshake's opaque
// parameter blob. It is injected rather than imported so this package
// stays below the protocol registry in the dependency order: cmd/dippeer
// wires it to dip.BuildSpec, and tests wire it to fixtures. The builder
// must be deterministic in its parameters — both sides of a run construct
// the Spec independently, and bit-identity with the in-process executors
// relies on the constructions agreeing.
type SpecBuilder func(params []byte) (*network.Spec, error)

// Server hosts verifier nodes for remote coordinators: one session per
// accepted connection, each session running the node-facing half of one
// proof through network.NodeState. A single Server handles any number of
// sequential or concurrent sessions.
type Server struct {
	// Build rebuilds the Spec a hello frame's parameters describe.
	// Required.
	Build SpecBuilder
	// IOTimeout bounds each blocking read and write inside a session: a
	// coordinator that goes silent longer than this aborts the session
	// instead of pinning the handler goroutine forever. Zero selects
	// DefaultIOTimeout.
	IOTimeout time.Duration
	// FailSession, when positive, is a crash-test hook: the FailSession-th
	// accepted session kills the whole process (os.Exit(2)) at its first
	// exchange step — mid-round, after traffic has flowed. The peer-smoke
	// gate uses it to prove a coordinator survives losing a peer with a
	// structured error instead of a hang.
	FailSession int
	// Logf, when set, receives one line per session event.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	sessions int
	closed   bool
	wg       sync.WaitGroup
}

// DefaultIOTimeout bounds session reads/writes when Server.IOTimeout or
// Options.IOTimeout is zero.
const DefaultIOTimeout = 30 * time.Second

// Serve accepts sessions on l until the listener closes (Close, or the
// caller closing l directly), which returns nil. Each connection is
// handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[conn] = struct{}{}
		s.sessions++
		session := s.sessions
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn, session)
		}()
	}
}

// Close aborts every live session and waits for their handlers to return.
// The caller closes its own listener (Serve then returns nil).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) ioTimeout() time.Duration {
	if s.IOTimeout > 0 {
		return s.IOTimeout
	}
	return DefaultIOTimeout
}

// sendError reports a structured failure to the coordinator (best effort:
// the session is ending either way).
func (s *Server) sendError(conn net.Conn, rerr *network.RunError) {
	payload, err := json.Marshal(errorFrameOf(rerr))
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(s.ioTimeout()))
	_ = writeFrame(conn, frameError, payload)
}

// session is one connection's run: the hosted nodes and the read state.
type session struct {
	srv   *Server
	conn  net.Conn
	br    *bufio.Reader
	id    int
	spec  *network.Spec
	n     int
	nodes []*network.NodeState
	// owned maps a global node index to its hosted NodeState (nil when the
	// node lives elsewhere); degrees holds each hosted node's neighbor
	// count for exchange-completion tracking.
	owned   map[int]*network.NodeState
	degrees map[int]int
}

// handle runs one session: handshake, schedule walk, end.
func (s *Server) handle(conn net.Conn, id int) {
	sess := &session{srv: s, conn: conn, br: bufio.NewReader(conn), id: id}
	rerr := sess.run()
	if rerr != nil {
		s.logf("peer: session %d: %v", id, rerr)
		s.sendError(conn, rerr)
		return
	}
	s.logf("peer: session %d: complete", id)
}

// readNext reads the next frame under the session deadline, translating
// coordinator-initiated aborts: an error frame surfaces the coordinator's
// RunError, an end frame mid-run means the run finished without us.
func (sess *session) readNext() (byte, []byte, *network.RunError) {
	sess.conn.SetReadDeadline(time.Now().Add(sess.srv.ioTimeout()))
	typ, payload, err := readFrame(sess.br)
	if err != nil {
		return 0, nil, sess.failf(-1, "coordinator read: %v", err)
	}
	if typ == frameError {
		var ef errorFrame
		if jerr := json.Unmarshal(payload, &ef); jerr != nil {
			return 0, nil, sess.failf(-1, "malformed error frame: %v", jerr)
		}
		return 0, nil, ef.runError()
	}
	return typ, payload, nil
}

// send writes one frame under the session deadline.
func (sess *session) send(typ byte, payload []byte) *network.RunError {
	sess.conn.SetWriteDeadline(time.Now().Add(sess.srv.ioTimeout()))
	if err := writeFrame(sess.conn, typ, payload); err != nil {
		return sess.failf(-1, "coordinator write: %v", err)
	}
	return nil
}

// failf builds a PhaseTransport RunError for this session.
func (sess *session) failf(round int, format string, args ...any) *network.RunError {
	name := ""
	if sess.spec != nil {
		name = sess.spec.Name
	}
	return &network.RunError{Protocol: name, Phase: network.PhaseTransport,
		Round: round, Node: -1, Err: fmt.Errorf(format, args...)}
}

func (sess *session) run() *network.RunError {
	srv := sess.srv
	typ, payload, rerr := sess.readNext()
	if rerr != nil {
		return rerr
	}
	if typ != frameHello {
		return sess.failf(-1, "first frame type 0x%02x, want hello", typ)
	}
	var hello helloFrame
	if err := json.Unmarshal(payload, &hello); err != nil {
		return sess.failf(-1, "malformed hello: %v", err)
	}
	if hello.Version != Version {
		return sess.failf(-1, "hello version %d, this peer speaks %d", hello.Version, Version)
	}
	if hello.N < 1 || len(hello.Nodes) < 1 || len(hello.Nodes) > hello.N {
		return sess.failf(-1, "hello provisions %d nodes of %d", len(hello.Nodes), hello.N)
	}
	spec, err := srv.Build(hello.Params)
	if err != nil {
		return &network.RunError{Protocol: "", Phase: network.PhaseSetup, Round: -1, Node: -1,
			Err: fmt.Errorf("peer: building spec: %w", err)}
	}
	sess.spec, sess.n = spec, hello.N
	steps, err := network.Schedule(spec)
	if err != nil {
		return &network.RunError{Protocol: spec.Name, Phase: network.PhaseSetup, Round: -1, Node: -1,
			Err: fmt.Errorf("peer: compiling schedule: %w", err)}
	}

	sess.owned = make(map[int]*network.NodeState, len(hello.Nodes))
	sess.degrees = make(map[int]int, len(hello.Nodes))
	for _, hn := range hello.Nodes {
		input := wire.Message{Data: hn.InputData, Bits: hn.InputBits}
		if input.Bits < 0 || input.Bits > maxMsgBits || len(input.Data) != (input.Bits+7)/8 {
			return sess.failf(-1, "node %d input: Bits=%d len(Data)=%d", hn.V, input.Bits, len(input.Data))
		}
		ns, nerr := network.NewNodeState(spec, hn.V, hello.N, hn.Neighbors, input, hello.Seed)
		if nerr != nil {
			return sess.failf(-1, "node %d: %v", hn.V, nerr)
		}
		if sess.owned[hn.V] != nil {
			return sess.failf(-1, "node %d provisioned twice", hn.V)
		}
		sess.owned[hn.V] = ns
		sess.degrees[hn.V] = len(hn.Neighbors)
		sess.nodes = append(sess.nodes, ns)
	}

	okPayload, err := json.Marshal(helloOKFrame{Version: Version, Nodes: len(sess.nodes)})
	if err != nil {
		return sess.failf(-1, "marshaling helloOK: %v", err)
	}
	if rerr := sess.send(frameHelloOK, okPayload); rerr != nil {
		return rerr
	}
	srv.logf("peer: session %d: hosting %d of %d nodes (%s)", sess.id, len(sess.nodes), hello.N, spec.Name)

	for _, st := range steps {
		if rerr := sess.step(st); rerr != nil {
			return rerr
		}
	}

	// The schedule is done; wait for the coordinator's end frame so the
	// final decision frames are known-delivered before the session closes.
	typ, _, rerr = sess.readNext()
	if rerr != nil {
		return rerr
	}
	if typ != frameEnd {
		return sess.failf(-1, "post-run frame type 0x%02x, want end", typ)
	}
	return nil
}

// step plays the node-facing half of one schedule step.
func (sess *session) step(st network.ScheduleStep) *network.RunError {
	switch st.Kind {
	case network.StepChallenge:
		for _, ns := range sess.nodes {
			m, rerr := ns.Challenge(st.Round)
			if rerr != nil {
				return rerr
			}
			payload, err := encodeDelivery(st.Round, ns.V(), m)
			if err != nil {
				return sess.failf(st.Round, "encoding challenge: %v", err)
			}
			if rerr := sess.send(frameChallenge, payload); rerr != nil {
				return rerr
			}
		}

	case network.StepRespond:
		for range sess.nodes {
			typ, payload, rerr := sess.readNext()
			if rerr != nil {
				return rerr
			}
			if typ != frameResponse {
				return sess.failf(st.Round, "frame type 0x%02x during respond step", typ)
			}
			ri, v, m, err := decodeDelivery(payload)
			if err != nil {
				return sess.failf(st.Round, "response frame: %v", err)
			}
			ns := sess.owned[v]
			if ri != st.Round || ns == nil {
				return sess.failf(st.Round, "response for round %d node %d (hosting round %d)", ri, v, st.Round)
			}
			ns.PushResponse(m)
		}

	case network.StepExchange:
		srv := sess.srv
		if srv.FailSession > 0 && sess.id == srv.FailSession {
			// Crash-test hook: die mid-round, after the handshake and at
			// least one full message phase, without any cleanup — exactly
			// like a peer host losing power.
			srv.logf("peer: session %d: FailSession crash hook firing", sess.id)
			os.Exit(2)
		}
		if sess.spec.Rounds[st.Round].Digest != nil {
			for _, ns := range sess.nodes {
				out, rerr := ns.ExchangeOut(st)
				if rerr != nil {
					return rerr
				}
				payload, err := encodeDelivery(st.Round, ns.V(), out)
				if err != nil {
					return sess.failf(st.Round, "encoding forward: %v", err)
				}
				if rerr := sess.send(frameForward, payload); rerr != nil {
					return rerr
				}
			}
		}
		want := 0
		for _, deg := range sess.degrees {
			want += deg
		}
		got := make(map[int]map[int]wire.Message, len(sess.nodes))
		for i := 0; i < want; i++ {
			typ, payload, rerr := sess.readNext()
			if rerr != nil {
				return rerr
			}
			if typ != frameExchange {
				return sess.failf(st.Round, "frame type 0x%02x during exchange step", typ)
			}
			ri, from, to, chal, m, err := decodeExchange(payload)
			if err != nil {
				return sess.failf(st.Round, "exchange frame: %v", err)
			}
			ns := sess.owned[to]
			if ri != st.Round || chal != st.Chal || ns == nil {
				return sess.failf(st.Round, "exchange for round %d chal=%v node %d (hosting round %d chal=%v)",
					ri, chal, to, st.Round, st.Chal)
			}
			bucket := got[to]
			if bucket == nil {
				bucket = make(map[int]wire.Message, sess.degrees[to])
				got[to] = bucket
			}
			if _, dup := bucket[from]; dup || len(bucket) >= sess.degrees[to] {
				return sess.failf(st.Round, "surplus exchange %d→%d", from, to)
			}
			bucket[from] = m
		}
		for _, ns := range sess.nodes {
			bucket := got[ns.V()]
			if bucket == nil {
				bucket = make(map[int]wire.Message)
			}
			ns.PushExchange(st, bucket)
		}

	case network.StepDecide:
		for _, ns := range sess.nodes {
			d, rerr := ns.Decide()
			if rerr != nil {
				return rerr
			}
			if rerr := sess.send(frameDecision, encodeDecision(ns.V(), d)); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}
