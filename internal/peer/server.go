package peer

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"dip/internal/network"
	"dip/internal/wire"
)

// SpecBuilder rebuilds a protocol Spec from the handshake's opaque
// parameter blob. It is injected rather than imported so this package
// stays below the protocol registry in the dependency order: cmd/dippeer
// wires it to dip.BuildSpec, and tests wire it to fixtures. The builder
// must be deterministic in its parameters — both sides of a run construct
// the Spec independently, and bit-identity with the in-process executors
// relies on the constructions agreeing.
type SpecBuilder func(params []byte) (*network.Spec, error)

// Server hosts verifier nodes for remote coordinators. Each accepted
// connection is a frame-multiplexed trunk: every frame carries a session
// id, a demux loop routes it to that session's state in an id-keyed
// table, and each session runs the node-facing half of one proof through
// network.NodeState on its own goroutine with its own deadline and
// cancel. Sessions fail in isolation — a poisoned session reports a
// structured error and leaves the table without disturbing its
// neighbors on the same connection. A single Server handles any number
// of sequential or concurrent sessions over shared or per-session
// connections.
type Server struct {
	// Build rebuilds the Spec a hello frame's parameters describe.
	// Required.
	Build SpecBuilder
	// Opts supplies the shared fleet configuration; the Server uses
	// IOTimeout, which bounds each session's blocking wait — for its next
	// expected frame, or for a write to drain — so a coordinator that
	// goes silent aborts that session instead of pinning its goroutine
	// forever. The connection itself carries no read deadline: an idle
	// trunk between runs is healthy, not stuck.
	Opts Options
	// FailSession, when positive, is a crash-test hook: the
	// FailSession-th accepted session kills the whole process
	// (os.Exit(2)) at its first exchange step — mid-round, after traffic
	// has flowed. The peer-smoke gate uses it to prove a coordinator
	// survives losing a peer with a structured error instead of a hang.
	FailSession int
	// FailSoft, when positive, aborts only the FailSoft-th accepted
	// session at its first exchange step with a structured error, leaving
	// every other session (and the process) running — the isolation
	// counterpart to FailSession's process kill.
	FailSoft int
	// Logf, when set, receives one line per session event.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	conns    map[*srvConn]struct{}
	sessions int // global accept ordinal across all connections
	closed   bool
	wg       sync.WaitGroup
}

// Serve accepts connections on l until the listener closes (Close, or the
// caller closing l directly), which returns nil. Each connection's demux
// loop and each session run on their own goroutines.
func (s *Server) Serve(l net.Listener) error {
	if err := s.Opts.Validate(); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := &srvConn{srv: s, conn: conn, sessions: make(map[uint32]*session)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.conns == nil {
			s.conns = make(map[*srvConn]struct{})
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.demux()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close aborts every live connection and session and waits for their
// goroutines to return. The caller closes its own listener (Serve then
// returns nil).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) ioTimeout() time.Duration {
	return s.Opts.withDefaults().IOTimeout
}

// srvFrame is one routed inbound frame.
type srvFrame struct {
	typ     byte
	payload []byte
}

// sessionInboxCap bounds one session's inbound frame queue. The schedule
// keeps both sides in lockstep, so a session's queue depth is bounded by
// what TCP had in flight, not by run size; if a queue ever fills, the
// demux loop applies backpressure on the whole connection until the
// session drains it (or exits, which unblocks the demux immediately).
const sessionInboxCap = 256

// srvConn is one accepted connection: the shared write lock and the
// id-keyed session table its demux loop routes into.
type srvConn struct {
	srv  *Server
	conn net.Conn
	// wmu serializes frame writes from this connection's sessions; each
	// send holds it for exactly one writeFrame call, so concurrent
	// sessions' frames never interleave on the wire.
	wmu sync.Mutex

	mu       sync.Mutex
	sessions map[uint32]*session
	torn     bool
}

// validFrameType reports whether typ is a defined v2 frame type.
func validFrameType(typ byte) bool {
	switch typ {
	case frameHello, frameHelloOK, frameChallenge, frameResponse,
		frameForward, frameExchange, frameDecision, frameError, frameEnd:
		return true
	}
	return false
}

// demux reads frames off the connection and routes each to its session by
// id, spawning a new session on a hello for an unknown id. The read loop
// carries no deadline — idle trunks are healthy — and exits when the
// connection closes or a framing violation makes the stream unusable, at
// which point every session on the connection is aborted.
func (c *srvConn) demux() {
	defer c.conn.Close()
	br := bufio.NewReader(c.conn)
	first := true
	for {
		id, typ, payload, err := readFrame(br)
		if err != nil {
			c.teardown(fmt.Errorf("coordinator read: %w", err))
			return
		}
		if !validFrameType(typ) {
			if first && looksLikeV1(id, typ) {
				// A protocol-v1 client just sent its hello. Answer in the v1
				// framing so it decodes the rejection as a structured error
				// naming the version this peer requires.
				c.srv.logf("peer: rejecting protocol v1 connection from %v", c.conn.RemoteAddr())
				c.conn.SetWriteDeadline(time.Now().Add(c.srv.ioTimeout()))
				_ = writeV1Error(c.conn, errorFrame{
					Phase: string(network.PhaseTransport), Round: -1, Node: -1,
					Message: fmt.Sprintf("peer speaks wire protocol %d; protocol 1 connections are not supported — upgrade the client", Version),
				})
				c.teardown(errors.New("protocol v1 connection rejected"))
				return
			}
			c.sendError(id, &network.RunError{Phase: network.PhaseTransport, Round: -1, Node: -1,
				Err: fmt.Errorf("peer: unknown frame type 0x%02x", typ)})
			c.teardown(fmt.Errorf("unknown frame type 0x%02x", typ))
			return
		}
		first = false

		c.mu.Lock()
		st := c.sessions[id]
		if st == nil && typ == frameHello && !c.torn {
			st = c.open(id)
		}
		c.mu.Unlock()
		if st == nil {
			// A frame for a session that already ended (late traffic after a
			// soft failure) or that never opened: drop it. The stream itself
			// is healthy, so the neighbors keep running.
			continue
		}
		select {
		case st.inbox <- srvFrame{typ, payload}:
		case <-st.done:
			// The session exited while we held its frame; drop it.
		}
	}
}

// open registers a new session for id and starts its goroutine. Caller
// holds c.mu.
func (c *srvConn) open(id uint32) *session {
	s := c.srv
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.sessions++
	seq := s.sessions
	s.wg.Add(1)
	s.mu.Unlock()
	st := &session{
		srv: s, c: c, id: id, seq: seq,
		inbox: make(chan srvFrame, sessionInboxCap),
		abort: make(chan struct{}),
		done:  make(chan struct{}),
	}
	c.sessions[id] = st
	go func() {
		defer s.wg.Done()
		st.serve()
	}()
	return st
}

// teardown aborts every session on the connection; their goroutines
// observe the abort on their next wait and exit.
func (c *srvConn) teardown(cause error) {
	c.mu.Lock()
	if c.torn {
		c.mu.Unlock()
		return
	}
	c.torn = true
	aborting := make([]*session, 0, len(c.sessions))
	for _, st := range c.sessions {
		aborting = append(aborting, st)
	}
	c.mu.Unlock()
	if len(aborting) > 0 {
		c.srv.logf("peer: connection %v: aborting %d live sessions: %v", c.conn.RemoteAddr(), len(aborting), cause)
	}
	for _, st := range aborting {
		st.cancel(cause)
	}
}

// unregister removes a finished session from the table.
func (c *srvConn) unregister(id uint32) {
	c.mu.Lock()
	delete(c.sessions, id)
	c.mu.Unlock()
}

// sendError reports a structured failure for one session (best effort:
// the session is ending either way).
func (c *srvConn) sendError(id uint32, rerr *network.RunError) {
	payload, err := json.Marshal(errorFrameOf(rerr))
	if err != nil {
		return
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(c.srv.ioTimeout()))
	_ = writeFrame(c.conn, id, frameError, payload)
}

// session is one run's server half: the hosted nodes, the routed inbox,
// and the per-session deadline and cancel state.
type session struct {
	srv *Server
	c   *srvConn
	id  uint32 // wire session id (unique per connection)
	seq int    // global accept ordinal (failure hooks, logs)

	inbox chan srvFrame
	abort chan struct{} // closed by cancel: connection died or server closing
	done  chan struct{} // closed when the session goroutine exits

	cancelOnce sync.Once
	cause      error

	spec  *network.Spec
	n     int
	nodes []*network.NodeState
	// owned maps a global node index to its hosted NodeState (nil when the
	// node lives elsewhere); degrees holds each hosted node's neighbor
	// count for exchange-completion tracking.
	owned   map[int]*network.NodeState
	degrees map[int]int
}

// cancel aborts the session from outside (connection teardown, server
// close). Idempotent.
func (st *session) cancel(cause error) {
	st.cancelOnce.Do(func() {
		st.cause = cause
		close(st.abort)
	})
}

// serve runs one session to completion: handshake, schedule walk, end.
func (st *session) serve() {
	rerr := st.run()
	close(st.done)
	st.c.unregister(st.id)
	if rerr != nil {
		st.srv.logf("peer: session %d (#%d): %v", st.id, st.seq, rerr)
		st.c.sendError(st.id, rerr)
		return
	}
	st.srv.logf("peer: session %d (#%d): complete", st.id, st.seq)
}

// readNext waits for the session's next routed frame under its own
// deadline, translating coordinator-initiated aborts: an error frame
// surfaces the coordinator's RunError, an end frame mid-run means the run
// finished without us.
func (st *session) readNext() (byte, []byte, *network.RunError) {
	timer := time.NewTimer(st.srv.ioTimeout())
	defer timer.Stop()
	select {
	case f := <-st.inbox:
		if f.typ == frameError {
			var ef errorFrame
			if jerr := json.Unmarshal(f.payload, &ef); jerr != nil {
				return 0, nil, st.failf(-1, "malformed error frame: %v", jerr)
			}
			return 0, nil, ef.runError()
		}
		return f.typ, f.payload, nil
	case <-st.abort:
		return 0, nil, st.failf(-1, "session aborted: %v", st.cause)
	case <-timer.C:
		return 0, nil, st.failf(-1, "timed out after %v waiting for the coordinator", st.srv.ioTimeout())
	}
}

// send writes one frame for this session under the shared write lock.
func (st *session) send(typ byte, payload []byte) *network.RunError {
	st.c.wmu.Lock()
	defer st.c.wmu.Unlock()
	st.c.conn.SetWriteDeadline(time.Now().Add(st.srv.ioTimeout()))
	if err := writeFrame(st.c.conn, st.id, typ, payload); err != nil {
		return st.failf(-1, "coordinator write: %v", err)
	}
	return nil
}

// failf builds a PhaseTransport RunError for this session.
func (st *session) failf(round int, format string, args ...any) *network.RunError {
	name := ""
	if st.spec != nil {
		name = st.spec.Name
	}
	return &network.RunError{Protocol: name, Phase: network.PhaseTransport,
		Round: round, Node: -1, Err: fmt.Errorf(format, args...)}
}

func (st *session) run() *network.RunError {
	srv := st.srv
	typ, payload, rerr := st.readNext()
	if rerr != nil {
		return rerr
	}
	if typ != frameHello {
		return st.failf(-1, "first frame type 0x%02x, want hello", typ)
	}
	var hello helloFrame
	if err := json.Unmarshal(payload, &hello); err != nil {
		return st.failf(-1, "malformed hello: %v", err)
	}
	if hello.Proto != Version {
		return st.failf(-1, "hello proto %d: this peer requires wire protocol %d", hello.Proto, Version)
	}
	if hello.N < 1 || len(hello.Nodes) < 1 || len(hello.Nodes) > hello.N {
		return st.failf(-1, "hello provisions %d nodes of %d", len(hello.Nodes), hello.N)
	}
	spec, err := srv.Build(hello.Params)
	if err != nil {
		return &network.RunError{Protocol: "", Phase: network.PhaseSetup, Round: -1, Node: -1,
			Err: fmt.Errorf("peer: building spec: %w", err)}
	}
	st.spec, st.n = spec, hello.N
	steps, err := network.Schedule(spec)
	if err != nil {
		return &network.RunError{Protocol: spec.Name, Phase: network.PhaseSetup, Round: -1, Node: -1,
			Err: fmt.Errorf("peer: compiling schedule: %w", err)}
	}

	st.owned = make(map[int]*network.NodeState, len(hello.Nodes))
	st.degrees = make(map[int]int, len(hello.Nodes))
	for _, hn := range hello.Nodes {
		input := wire.Message{Data: hn.InputData, Bits: hn.InputBits}
		if input.Bits < 0 || input.Bits > maxMsgBits || len(input.Data) != (input.Bits+7)/8 {
			return st.failf(-1, "node %d input: Bits=%d len(Data)=%d", hn.V, input.Bits, len(input.Data))
		}
		ns, nerr := network.NewNodeState(spec, hn.V, hello.N, hn.Neighbors, input, hello.Seed)
		if nerr != nil {
			return st.failf(-1, "node %d: %v", hn.V, nerr)
		}
		if st.owned[hn.V] != nil {
			return st.failf(-1, "node %d provisioned twice", hn.V)
		}
		st.owned[hn.V] = ns
		st.degrees[hn.V] = len(hn.Neighbors)
		st.nodes = append(st.nodes, ns)
	}

	okPayload, err := json.Marshal(helloOKFrame{Proto: Version, Nodes: len(st.nodes)})
	if err != nil {
		return st.failf(-1, "marshaling helloOK: %v", err)
	}
	if rerr := st.send(frameHelloOK, okPayload); rerr != nil {
		return rerr
	}
	srv.logf("peer: session %d (#%d): hosting %d of %d nodes (%s)", st.id, st.seq, len(st.nodes), hello.N, spec.Name)

	for _, step := range steps {
		if rerr := st.step(step); rerr != nil {
			return rerr
		}
	}

	// The schedule is done; wait for the coordinator's end frame so the
	// final decision frames are known-delivered before the session closes.
	typ, _, rerr = st.readNext()
	if rerr != nil {
		return rerr
	}
	if typ != frameEnd {
		return st.failf(-1, "post-run frame type 0x%02x, want end", typ)
	}
	return nil
}

// step plays the node-facing half of one schedule step.
func (st *session) step(step network.ScheduleStep) *network.RunError {
	switch step.Kind {
	case network.StepChallenge:
		for _, ns := range st.nodes {
			m, rerr := ns.Challenge(step.Round)
			if rerr != nil {
				return rerr
			}
			payload, err := encodeDelivery(step.Round, ns.V(), m)
			if err != nil {
				return st.failf(step.Round, "encoding challenge: %v", err)
			}
			if rerr := st.send(frameChallenge, payload); rerr != nil {
				return rerr
			}
		}

	case network.StepRespond:
		for range st.nodes {
			typ, payload, rerr := st.readNext()
			if rerr != nil {
				return rerr
			}
			if typ != frameResponse {
				return st.failf(step.Round, "frame type 0x%02x during respond step", typ)
			}
			ri, v, m, err := decodeDelivery(payload)
			if err != nil {
				return st.failf(step.Round, "response frame: %v", err)
			}
			ns := st.owned[v]
			if ri != step.Round || ns == nil {
				return st.failf(step.Round, "response for round %d node %d (hosting round %d)", ri, v, step.Round)
			}
			ns.PushResponse(m)
		}

	case network.StepExchange:
		srv := st.srv
		if srv.FailSession > 0 && st.seq == srv.FailSession {
			// Crash-test hook: die mid-round, after the handshake and at
			// least one full message phase, without any cleanup — exactly
			// like a peer host losing power.
			srv.logf("peer: session %d (#%d): FailSession crash hook firing", st.id, st.seq)
			os.Exit(2)
		}
		if srv.FailSoft > 0 && st.seq == srv.FailSoft {
			// Isolation hook: poison just this session, mid-round. The
			// structured error reaches only this session's coordinator;
			// every neighbor session keeps running.
			srv.logf("peer: session %d (#%d): FailSoft abort hook firing", st.id, st.seq)
			return st.failf(step.Round, "FailSoft hook: session #%d aborted by configuration", st.seq)
		}
		if st.spec.Rounds[step.Round].Digest != nil {
			for _, ns := range st.nodes {
				out, rerr := ns.ExchangeOut(step)
				if rerr != nil {
					return rerr
				}
				payload, err := encodeDelivery(step.Round, ns.V(), out)
				if err != nil {
					return st.failf(step.Round, "encoding forward: %v", err)
				}
				if rerr := st.send(frameForward, payload); rerr != nil {
					return rerr
				}
			}
		}
		want := 0
		for _, deg := range st.degrees {
			want += deg
		}
		got := make(map[int]map[int]wire.Message, len(st.nodes))
		for i := 0; i < want; i++ {
			typ, payload, rerr := st.readNext()
			if rerr != nil {
				return rerr
			}
			if typ != frameExchange {
				return st.failf(step.Round, "frame type 0x%02x during exchange step", typ)
			}
			ri, from, to, chal, m, err := decodeExchange(payload)
			if err != nil {
				return st.failf(step.Round, "exchange frame: %v", err)
			}
			ns := st.owned[to]
			if ri != step.Round || chal != step.Chal || ns == nil {
				return st.failf(step.Round, "exchange for round %d chal=%v node %d (hosting round %d chal=%v)",
					ri, chal, to, step.Round, step.Chal)
			}
			bucket := got[to]
			if bucket == nil {
				bucket = make(map[int]wire.Message, st.degrees[to])
				got[to] = bucket
			}
			if _, dup := bucket[from]; dup || len(bucket) >= st.degrees[to] {
				return st.failf(step.Round, "surplus exchange %d→%d", from, to)
			}
			bucket[from] = m
		}
		for _, ns := range st.nodes {
			bucket := got[ns.V()]
			if bucket == nil {
				bucket = make(map[int]wire.Message)
			}
			ns.PushExchange(step, bucket)
		}

	case network.StepDecide:
		for _, ns := range st.nodes {
			d, rerr := ns.Decide()
			if rerr != nil {
				return rerr
			}
			if rerr := st.send(frameDecision, encodeDecision(ns.V(), d)); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}
