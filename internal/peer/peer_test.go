package peer

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dip/internal/faults"
	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/wire"
)

// testParams is the fixture SpecBuilder's parameter blob: deterministic
// spec construction from (Spec, Bits), the same property dip.BuildSpec
// gives dippeer fleets.
type testParams struct {
	Spec string `json:"spec"`
	Bits int    `json:"bits"`
}

func marshalParams(t *testing.T, spec string, bits int) []byte {
	t.Helper()
	b, err := json.Marshal(testParams{Spec: spec, Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func challengeRound(bits int) network.Round {
	return network.Round{Kind: network.Arthur,
		Challenge: func(v int, rng *rand.Rand, _ *network.NodeView) wire.Message {
			var w wire.Writer
			for i := 0; i < bits; i++ {
				w.WriteBool(rng.Intn(2) == 1)
			}
			return w.Message()
		}}
}

func echoSpec(bits int) *network.Spec {
	return &network.Spec{
		Name:   "peer-echo",
		Rounds: []network.Round{challengeRound(bits), {Kind: network.Merlin}},
		Decide: func(v int, view *network.NodeView) bool {
			got, want := view.Responses[0], view.MyChallenges[0]
			if got.Bits != want.Bits {
				return false
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					return false
				}
			}
			return len(view.NeighborResponses[0]) == len(view.Neighbors)
		},
	}
}

func digestSpec(bits int) *network.Spec {
	return &network.Spec{
		Name: "peer-digest",
		Rounds: []network.Round{
			challengeRound(bits),
			{Kind: network.Merlin, Digest: func(v int, rng *rand.Rand, m wire.Message) wire.Message {
				var w wire.Writer
				w.WriteUint(rng.Uint64()&0xFF, 8)
				return w.Message()
			}},
			challengeRound(8),
			{Kind: network.Merlin},
		},
		Decide: func(v int, view *network.NodeView) bool {
			return len(view.Responses) == 2 &&
				len(view.NeighborResponses[0]) == len(view.Neighbors)
		},
	}
}

func shareSpec(bits int) *network.Spec {
	return &network.Spec{
		Name:            "peer-share",
		ShareChallenges: true,
		Rounds:          []network.Round{challengeRound(bits), {Kind: network.Merlin}},
		Decide: func(v int, view *network.NodeView) bool {
			return len(view.NeighborChallenges[0]) == len(view.Neighbors)
		},
	}
}

func inputSpec() *network.Spec {
	return &network.Spec{
		Name:   "peer-input",
		Rounds: nil, // zero rounds: the schedule is a bare decide step
		Decide: func(v int, view *network.NodeView) bool {
			return view.Input.Bits == 8 && len(view.Input.Data) == 1 &&
				int(view.Input.Data[0]) == v
		},
	}
}

func panicSpec() *network.Spec {
	return &network.Spec{
		Name: "peer-panic",
		Rounds: []network.Round{{Kind: network.Arthur,
			Challenge: func(v int, _ *rand.Rand, _ *network.NodeView) wire.Message {
				if v == 2 {
					panic("node 2 is broken")
				}
				return wire.Message{}
			}}},
		Decide: func(int, *network.NodeView) bool { return true },
	}
}

func buildTestSpec(params []byte) (*network.Spec, error) {
	var p testParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, err
	}
	switch p.Spec {
	case "echo":
		return echoSpec(p.Bits), nil
	case "digest":
		return digestSpec(p.Bits), nil
	case "share":
		return shareSpec(p.Bits), nil
	case "input":
		return inputSpec(), nil
	case "panic":
		return panicSpec(), nil
	default:
		return nil, fmt.Errorf("unknown fixture spec %q", p.Spec)
	}
}

// echoProver answers every node with its own last challenge.
type echoProver struct{}

func (echoProver) Respond(_ int, view *network.ProverView) (*network.Response, error) {
	last := view.Challenges[len(view.Challenges)-1]
	resp := &network.Response{PerNode: make([]wire.Message, len(last))}
	copy(resp.PerNode, last)
	return resp, nil
}

// startServers boots k peer servers on ephemeral ports and returns their
// addresses. Cleanup closes listeners and drains every session handler.
func startServers(t *testing.T, k int, tweak func(*Server)) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &Server{Build: buildTestSpec, Opts: Options{IOTimeout: 10 * time.Second}}
		if tweak != nil {
			tweak(srv)
		}
		go srv.Serve(l)
		t.Cleanup(func() {
			l.Close()
			srv.Close()
		})
		addrs[i] = l.Addr().String()
	}
	return addrs
}

func startFleet(t *testing.T, k int) []string {
	return startServers(t, k, nil)
}

// settleGoroutines polls until the goroutine count returns to within slack
// of the baseline — the leak gate of the drain tests, applied to peer
// fleets.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+8 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPeerMatchesSequential is the socket half of the equivalence
// contract: runs through real TCP peer fleets — including fleets hosting
// several nodes per process — must be byte-identical to the sequential
// engine, across challenge, digest, share-challenge, and zero-round
// input-only specs.
func TestPeerMatchesSequential(t *testing.T) {
	byteInputs := func(n int) []wire.Message {
		inputs := make([]wire.Message, n)
		for v := range inputs {
			inputs[v] = wire.Message{Data: []byte{byte(v)}, Bits: 8}
		}
		return inputs
	}
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if node%3 != 1 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 0x80
		return out
	}
	cases := []struct {
		name   string
		spec   string
		bits   int
		g      *graph.Graph
		inputs func(n int) []wire.Message
		peers  int
		opts   network.Options
	}{
		{"echo-1peer", "echo", 16, graph.Cycle(6), nil, 1, network.Options{Seed: 1}},
		{"echo-4peers", "echo", 16, graph.Cycle(9), nil, 4, network.Options{Seed: 2, RecordTranscript: true}},
		{"echo-n-peers", "echo", 24, graph.Complete(5), nil, 5, network.Options{Seed: 3}},
		{"digest", "digest", 16, graph.Cycle(8), nil, 3, network.Options{Seed: 4, RecordTranscript: true}},
		{"share", "share", 8, graph.Path(7), nil, 2, network.Options{Seed: 5}},
		{"inputs", "input", 0, graph.Star(6), byteInputs, 2, network.Options{Seed: 6}},
		{"corrupted", "echo", 16, graph.Cycle(6), nil, 2,
			network.Options{Seed: 7, Corrupt: corrupt, RecordTranscript: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := buildTestSpec(marshalParams(t, tc.spec, tc.bits))
			if err != nil {
				t.Fatal(err)
			}
			var inputs []wire.Message
			if tc.inputs != nil {
				inputs = tc.inputs(tc.g.N())
			}
			var prover network.Prover
			if tc.spec != "input" {
				prover = echoProver{}
			}
			seqOpts := tc.opts
			seqOpts.Sequential = true
			seqRes, err := network.Run(spec, tc.g, inputs, prover, seqOpts)
			if err != nil {
				t.Fatal(err)
			}

			addrs := startFleet(t, tc.peers)
			coord, err := Dial(addrs, marshalParams(t, tc.spec, tc.bits), Options{})
			if err != nil {
				t.Fatal(err)
			}
			netOpts := tc.opts
			netOpts.Transport = coord
			netRes, err := network.Run(spec, tc.g, inputs, prover, netOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqRes, netRes) {
				t.Fatalf("results differ:\nsequential: %+v\nnetworked:  %+v", seqRes, netRes)
			}
		})
	}
}

// TestPeerFleetReuse runs several proofs through one persistent Fleet:
// connections are dialed once and every run is a fresh session
// multiplexed over them, so the standing fleet serves a stream of runs
// without redialing.
func TestPeerFleetReuse(t *testing.T) {
	addrs := startFleet(t, 2)
	fleet, err := DialFleet(addrs, Options{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	g := graph.Cycle(6)
	spec := echoSpec(16)
	for seed := int64(1); seed <= 3; seed++ {
		seqRes, err := network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: seed, Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		netRes, err := network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: seed, Transport: fleet.NewRun(marshalParams(t, "echo", 16))})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqRes, netRes) {
			t.Fatalf("seed %d: results differ", seed)
		}
	}
	st := fleet.Stats()
	var completed, open int64
	for _, ps := range st.Peers {
		completed += ps.SessionsCompleted
		open += ps.SessionsOpen
		if !ps.Connected {
			t.Fatalf("peer %s disconnected after reuse", ps.Addr)
		}
		if ps.FramesSent == 0 || ps.FramesReceived == 0 || ps.BytesSent == 0 || ps.BytesReceived == 0 {
			t.Fatalf("peer %s gauges empty: %+v", ps.Addr, ps)
		}
	}
	if completed != 6 || open != 0 {
		t.Fatalf("sessions completed=%d open=%d, want 6 completed (3 runs × 2 peers), 0 open", completed, open)
	}
}

// TestSessionStorm is the multiplexing gate: many concurrent sessions —
// mixed protocols, one poisoned — against a single peer process over one
// shared fleet connection. Surviving sessions must stay byte-identical
// to the in-process engine, the poisoned one must fail with its own
// attributed error, and nothing may leak.
func TestSessionStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	addrs := startFleet(t, 1)
	fleet, err := DialFleet(addrs, Options{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	type job struct {
		spec string
		bits int
		g    *graph.Graph
		seed int64
	}
	jobs := make([]job, 0, 12)
	for i := 0; i < 12; i++ {
		switch i % 4 {
		case 0:
			jobs = append(jobs, job{"echo", 16, graph.Cycle(6), int64(100 + i)})
		case 1:
			jobs = append(jobs, job{"digest", 8, graph.Cycle(5), int64(100 + i)})
		case 2:
			jobs = append(jobs, job{"share", 8, graph.Path(5), int64(100 + i)})
		case 3:
			jobs = append(jobs, job{"echo", 24, graph.Complete(4), int64(100 + i)})
		}
	}
	const poisoned = 5 // jobs[5] runs the panic spec: its session must fail alone
	jobs[poisoned] = job{"panic", 0, graph.Cycle(5), 999}

	results := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func(i int, jb job) {
			defer wg.Done()
			spec, err := buildTestSpec(marshalParams(t, jb.spec, jb.bits))
			if err != nil {
				results[i] = err
				return
			}
			netRes, err := network.Run(spec, jb.g, nil, echoProver{},
				network.Options{Seed: jb.seed, Transport: fleet.NewRun(marshalParams(t, jb.spec, jb.bits))})
			if err != nil {
				results[i] = err
				return
			}
			seqRes, err := network.Run(spec, jb.g, nil, echoProver{},
				network.Options{Seed: jb.seed, Sequential: true})
			if err != nil {
				results[i] = err
				return
			}
			if !reflect.DeepEqual(seqRes, netRes) {
				results[i] = fmt.Errorf("fleet run diverged from sequential")
			}
		}(i, jb)
	}
	wg.Wait()

	for i, err := range results {
		if i == poisoned {
			var rerr *network.RunError
			if !errors.As(err, &rerr) || rerr.Phase != network.PhaseChallenge || rerr.Node != 2 {
				t.Fatalf("poisoned session: err = %v, want challenge/node-2 RunError", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("session %d (%s): %v", i, jobs[i].spec, err)
		}
	}

	st := fleet.Stats()
	if len(st.Peers) != 1 {
		t.Fatalf("stats cover %d peers, want 1", len(st.Peers))
	}
	ps := st.Peers[0]
	if ps.SessionsCompleted != int64(len(jobs)-1) || ps.SessionsFailed != 1 || ps.SessionsOpen != 0 {
		t.Fatalf("gauges completed=%d failed=%d open=%d, want %d/1/0",
			ps.SessionsCompleted, ps.SessionsFailed, ps.SessionsOpen, len(jobs)-1)
	}
	fleet.Close()
	settleGoroutines(t, baseline)
}

// TestFailSoftIsolation pins the isolation hook: the FailSoft-th session
// fails with a structured error while the sessions before and after it —
// on the same process, over the same connection — complete normally.
func TestFailSoftIsolation(t *testing.T) {
	addrs := startServers(t, 1, func(s *Server) { s.FailSoft = 2 })
	fleet, err := DialFleet(addrs, Options{IOTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	g := graph.Cycle(6)
	spec := echoSpec(8)
	for run := 1; run <= 3; run++ {
		_, err := network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: int64(run), Transport: fleet.NewRun(marshalParams(t, "echo", 8))})
		if run == 2 {
			var rerr *network.RunError
			if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport ||
				!strings.Contains(rerr.Err.Error(), "FailSoft") {
				t.Fatalf("run 2: err = %v, want FailSoft transport RunError", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("run %d should have survived FailSoft on run 2: %v", run, err)
		}
	}
}

// TestV1ClientRejected pins the downgrade path: a protocol-v1 client's
// hello is answered with a structured error in v1 framing that names the
// required protocol version.
func TestV1ClientRejected(t *testing.T) {
	addrs := startFleet(t, 1)
	conn, err := net.DialTimeout("tcp", addrs[0], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A v1 hello: u32 len | type | JSON, no session id.
	hello := []byte(`{"version":1,"seed":1,"n":2,"nodes":[{"v":0,"neighbors":[1]}]}`)
	frame := make([]byte, 5+len(hello))
	binary.BigEndian.PutUint32(frame, uint32(1+len(hello)))
	frame[4] = frameHello
	copy(frame[5:], hello)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The answer must be a v1-framed error a v1 reader can decode.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(br, body); err != nil {
		t.Fatal(err)
	}
	if body[0] != frameError {
		t.Fatalf("reply type 0x%02x, want error", body[0])
	}
	var ef errorFrame
	if err := json.Unmarshal(body[1:], &ef); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ef.Message, "protocol 2") && !strings.Contains(ef.Message, fmt.Sprintf("protocol %d", Version)) {
		t.Fatalf("rejection %q does not name the required version", ef.Message)
	}
}

// TestWrongProtoHelloRejected covers the in-framing version gate: a v2
// frame whose hello claims the wrong proto is refused with an error
// naming the required version.
func TestWrongProtoHelloRejected(t *testing.T) {
	addrs := startFleet(t, 1)
	conn, err := net.DialTimeout("tcp", addrs[0], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, _ := json.Marshal(helloFrame{Proto: 1, Seed: 1, N: 2,
		Nodes: []helloNode{{V: 0, Neighbors: []int{1}}}})
	if err := writeFrame(conn, 9, frameHello, hello); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	sess, typ, payload, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if sess != 9 || typ != frameError {
		t.Fatalf("reply session %d type 0x%02x, want session 9 error", sess, typ)
	}
	var ef errorFrame
	if err := json.Unmarshal(payload, &ef); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ef.Message, fmt.Sprintf("requires wire protocol %d", Version)) {
		t.Fatalf("rejection %q does not name the required version", ef.Message)
	}
}

// TestRemoteCallbackError pins cross-process failure attribution: a node
// callback panicking inside a peer process surfaces on the coordinator as
// the same phase/round/node RunError the in-process engines would raise.
func TestRemoteCallbackError(t *testing.T) {
	addrs := startFleet(t, 2)
	coord, err := Dial(addrs, marshalParams(t, "panic", 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = network.Run(panicSpec(), graph.Cycle(5), nil, echoProver{},
		network.Options{Seed: 1, Transport: coord})
	var rerr *network.RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if rerr.Phase != network.PhaseChallenge || rerr.Node != 2 || rerr.Round != 0 {
		t.Fatalf("attribution = %s/%d/%d (%v), want challenge/0/2", rerr.Phase, rerr.Round, rerr.Node, rerr.Err)
	}
}

// stallPeer is a hand-rolled fake peer: it completes the handshake, sends
// `challenges` valid challenge frames, and then goes silent until its
// connection is closed — a peer process that hangs mid-round.
func stallPeer(t *testing.T, challenges int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		sess, _, payload, err := readFrame(br)
		if err != nil {
			return
		}
		var hello helloFrame
		if json.Unmarshal(payload, &hello) != nil {
			return
		}
		ok, _ := json.Marshal(helloOKFrame{Proto: Version, Nodes: len(hello.Nodes)})
		if writeFrame(conn, sess, frameHelloOK, ok) != nil {
			return
		}
		for i := 0; i < challenges && i < len(hello.Nodes); i++ {
			p, err := encodeDelivery(0, hello.Nodes[i].V, wire.Message{})
			if err != nil || writeFrame(conn, sess, frameChallenge, p) != nil {
				return
			}
		}
		// Stall: swallow coordinator traffic without ever answering.
		io.Copy(io.Discard, conn)
	}()
	return l.Addr().String()
}

// TestStalledPeerTimesOut is the cancellation satellite: a peer that
// stalls mid-round (handshake done, one challenge delivered, then
// silence) must surface as a structured timeout RunError on the
// coordinator — PhaseTransport via the transport's own I/O deadline, or
// PhaseCanceled via a caller deadline — and must not leak goroutines.
func TestStalledPeerTimesOut(t *testing.T) {
	g := graph.Cycle(4)
	spec := echoSpec(8)

	t.Run("io-timeout", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		addr := stallPeer(t, 1)
		coord, err := Dial([]string{addr}, marshalParams(t, "echo", 8),
			Options{IOTimeout: 150 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		_, err = network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: 1, Transport: coord})
		var rerr *network.RunError
		if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport {
			t.Fatalf("err = %v, want PhaseTransport RunError", err)
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("stall detection took %v", elapsed)
		}
		settleGoroutines(t, baseline)
	})

	t.Run("context-deadline", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		addr := stallPeer(t, 1)
		coord, err := Dial([]string{addr}, marshalParams(t, "echo", 8),
			Options{IOTimeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		_, err = network.RunContext(ctx, spec, g, nil, echoProver{},
			network.Options{Seed: 1, Transport: coord})
		var rerr *network.RunError
		if !errors.As(err, &rerr) || rerr.Phase != network.PhaseCanceled {
			t.Fatalf("err = %v, want PhaseCanceled RunError", err)
		}
		settleGoroutines(t, baseline)
	})
}

// TestDeadPeerFailsRun covers the harsher failure: the fleet address
// refuses connections entirely, and Begin reports it as PhaseTransport.
func TestDeadPeerFailsRun(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here anymore
	coord, err := Dial([]string{addr}, marshalParams(t, "echo", 8),
		Options{DialTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = network.Run(echoSpec(8), graph.Cycle(4), nil, echoProver{},
		network.Options{Seed: 1, Transport: coord})
	var rerr *network.RunError
	if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport {
		t.Fatalf("err = %v, want PhaseTransport RunError", err)
	}
}

// TestLinkFaultDelaySlowLink exercises the socket-level slow-link class:
// every frame delayed, the run completes bit-identically, just later.
func TestLinkFaultDelaySlowLink(t *testing.T) {
	g := graph.Path(4)
	spec := echoSpec(8)
	seqRes, err := network.Run(spec, g, nil, echoProver{},
		network.Options{Seed: 1, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startFleet(t, 2)
	coord, err := Dial(addrs, marshalParams(t, "echo", 8),
		Options{LinkFaults: &faults.LinkPolicy{Seed: 1, Delay: time.Millisecond, DelayProb: 1}})
	if err != nil {
		t.Fatal(err)
	}
	netRes, err := network.Run(spec, g, nil, echoProver{},
		network.Options{Seed: 1, Transport: coord})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, netRes) {
		t.Fatal("slow-link run diverged from sequential")
	}
}

// TestLinkFaultDelayCancel is the cancel-blocking regression gate: a run
// under a large injected link delay must return promptly when its
// context is canceled — the delay timer selects on the run's cancel
// channel instead of sleeping through it — and must not leak goroutines.
func TestLinkFaultDelayCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	addrs := startFleet(t, 2)
	coord, err := Dial(addrs, marshalParams(t, "echo", 8),
		Options{LinkFaults: &faults.LinkPolicy{Seed: 1, Delay: time.Minute, DelayProb: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = network.RunContext(ctx, echoSpec(8), graph.Cycle(4), nil, echoProver{},
		network.Options{Seed: 1, Transport: coord})
	elapsed := time.Since(start)
	var rerr *network.RunError
	if !errors.As(err, &rerr) || rerr.Phase != network.PhaseCanceled {
		t.Fatalf("err = %v, want PhaseCanceled RunError", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("canceled run blocked %v inside the injected delay", elapsed)
	}
	settleGoroutines(t, baseline)
}

// TestLinkFaultDropFailsRun covers the partition class: a link that
// swallows every coordinator→peer message stalls the session until a
// deadline fires, and the run fails with a structured transport-or-
// cancel error — a partition can kill a run but never flip a decision.
func TestLinkFaultDropFailsRun(t *testing.T) {
	addrs := startFleet(t, 2)
	fleet, err := DialFleet(addrs, Options{
		IOTimeout:  300 * time.Millisecond,
		LinkFaults: &faults.LinkPolicy{Seed: 1, DropProb: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	_, err = network.Run(echoSpec(8), graph.Cycle(4), nil, echoProver{},
		network.Options{Seed: 1, Transport: fleet.NewRun(marshalParams(t, "echo", 8))})
	var rerr *network.RunError
	if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport {
		t.Fatalf("err = %v, want PhaseTransport RunError", err)
	}
	st := fleet.Stats()
	var dropped int64
	for _, ps := range st.Peers {
		dropped += ps.FramesDropped
	}
	if dropped == 0 {
		t.Fatal("drop policy fired no drops")
	}
}

// TestLinkPolicyDeterminism pins the schedule's replayability: the same
// seed makes identical per-frame decisions, a different seed diverges
// somewhere.
func TestLinkPolicyDeterminism(t *testing.T) {
	p := faults.LinkPolicy{Seed: 42, Delay: time.Millisecond, DelayProb: 0.5, DropProb: 0.2}
	q := faults.LinkPolicy{Seed: 43, Delay: time.Millisecond, DelayProb: 0.5, DropProb: 0.2}
	diverged := false
	for peer := 0; peer < 3; peer++ {
		for seq := 0; seq < 200; seq++ {
			d1, x1 := p.Decide(peer, seq)
			d2, x2 := p.Decide(peer, seq)
			if d1 != d2 || x1 != x2 {
				t.Fatalf("same-seed decision diverged at peer %d seq %d", peer, seq)
			}
			if q1, y1 := q.Decide(peer, seq); q1 != d1 || y1 != x1 {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("600 decisions identical across different seeds")
	}
}

// TestRedialAfterPeerRestart pins the standing-fleet recovery contract: a
// run in flight when its peer's connection dies fails with a structured
// transport error, and the next run over the same Fleet redials and
// completes.
func TestRedialAfterPeerRestart(t *testing.T) {
	// Two servers; we kill the second one's listener and connection, then
	// bring a new server up on a fresh port is not possible at the same
	// addr reliably, so instead: kill conn only — the server keeps
	// listening, the fleet must redial the same peer.
	addrs := startFleet(t, 2)
	fleet, err := DialFleet(addrs, Options{IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	g := graph.Cycle(6)
	spec := echoSpec(8)
	run := func(seed int64) error {
		_, err := network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: seed, Transport: fleet.NewRun(marshalParams(t, "echo", 8))})
		return err
	}
	if err := run(1); err != nil {
		t.Fatal(err)
	}
	// Sever the second peer's connection out from under the fleet.
	fleet.peers[1].mu.Lock()
	conn := fleet.peers[1].conn
	fleet.peers[1].mu.Unlock()
	if conn == nil {
		t.Fatal("peer 1 has no live connection after a run")
	}
	conn.Close()
	// The fleet must recover: ensure() redials on the next run's Begin.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := run(2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet did not recover after losing a connection")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
