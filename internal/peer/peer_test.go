package peer

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dip/internal/graph"
	"dip/internal/network"
	"dip/internal/wire"
)

// testParams is the fixture SpecBuilder's parameter blob: deterministic
// spec construction from (Spec, Bits), the same property dip.BuildSpec
// gives dippeer fleets.
type testParams struct {
	Spec string `json:"spec"`
	Bits int    `json:"bits"`
}

func marshalParams(t *testing.T, spec string, bits int) []byte {
	t.Helper()
	b, err := json.Marshal(testParams{Spec: spec, Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func challengeRound(bits int) network.Round {
	return network.Round{Kind: network.Arthur,
		Challenge: func(v int, rng *rand.Rand, _ *network.NodeView) wire.Message {
			var w wire.Writer
			for i := 0; i < bits; i++ {
				w.WriteBool(rng.Intn(2) == 1)
			}
			return w.Message()
		}}
}

func echoSpec(bits int) *network.Spec {
	return &network.Spec{
		Name:   "peer-echo",
		Rounds: []network.Round{challengeRound(bits), {Kind: network.Merlin}},
		Decide: func(v int, view *network.NodeView) bool {
			got, want := view.Responses[0], view.MyChallenges[0]
			if got.Bits != want.Bits {
				return false
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					return false
				}
			}
			return len(view.NeighborResponses[0]) == len(view.Neighbors)
		},
	}
}

func digestSpec(bits int) *network.Spec {
	return &network.Spec{
		Name: "peer-digest",
		Rounds: []network.Round{
			challengeRound(bits),
			{Kind: network.Merlin, Digest: func(v int, rng *rand.Rand, m wire.Message) wire.Message {
				var w wire.Writer
				w.WriteUint(rng.Uint64()&0xFF, 8)
				return w.Message()
			}},
			challengeRound(8),
			{Kind: network.Merlin},
		},
		Decide: func(v int, view *network.NodeView) bool {
			return len(view.Responses) == 2 &&
				len(view.NeighborResponses[0]) == len(view.Neighbors)
		},
	}
}

func shareSpec(bits int) *network.Spec {
	return &network.Spec{
		Name:            "peer-share",
		ShareChallenges: true,
		Rounds:          []network.Round{challengeRound(bits), {Kind: network.Merlin}},
		Decide: func(v int, view *network.NodeView) bool {
			return len(view.NeighborChallenges[0]) == len(view.Neighbors)
		},
	}
}

func inputSpec() *network.Spec {
	return &network.Spec{
		Name:   "peer-input",
		Rounds: nil, // zero rounds: the schedule is a bare decide step
		Decide: func(v int, view *network.NodeView) bool {
			return view.Input.Bits == 8 && len(view.Input.Data) == 1 &&
				int(view.Input.Data[0]) == v
		},
	}
}

func panicSpec() *network.Spec {
	return &network.Spec{
		Name: "peer-panic",
		Rounds: []network.Round{{Kind: network.Arthur,
			Challenge: func(v int, _ *rand.Rand, _ *network.NodeView) wire.Message {
				if v == 2 {
					panic("node 2 is broken")
				}
				return wire.Message{}
			}}},
		Decide: func(int, *network.NodeView) bool { return true },
	}
}

func buildTestSpec(params []byte) (*network.Spec, error) {
	var p testParams
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, err
	}
	switch p.Spec {
	case "echo":
		return echoSpec(p.Bits), nil
	case "digest":
		return digestSpec(p.Bits), nil
	case "share":
		return shareSpec(p.Bits), nil
	case "input":
		return inputSpec(), nil
	case "panic":
		return panicSpec(), nil
	default:
		return nil, fmt.Errorf("unknown fixture spec %q", p.Spec)
	}
}

// echoProver answers every node with its own last challenge.
type echoProver struct{}

func (echoProver) Respond(_ int, view *network.ProverView) (*network.Response, error) {
	last := view.Challenges[len(view.Challenges)-1]
	resp := &network.Response{PerNode: make([]wire.Message, len(last))}
	copy(resp.PerNode, last)
	return resp, nil
}

// startFleet boots k peer servers on ephemeral ports and returns their
// addresses. Cleanup closes listeners and drains every session handler.
func startFleet(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &Server{Build: buildTestSpec, IOTimeout: 10 * time.Second}
		go srv.Serve(l)
		t.Cleanup(func() {
			l.Close()
			srv.Close()
		})
		addrs[i] = l.Addr().String()
	}
	return addrs
}

// settleGoroutines polls until the goroutine count returns to within slack
// of the baseline — the leak gate of the drain tests, applied to peer
// fleets.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+8 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d live, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPeerMatchesSequential is the socket half of the equivalence
// contract: runs through real TCP peer fleets — including fleets hosting
// several nodes per process — must be byte-identical to the sequential
// engine, across challenge, digest, share-challenge, and zero-round
// input-only specs.
func TestPeerMatchesSequential(t *testing.T) {
	byteInputs := func(n int) []wire.Message {
		inputs := make([]wire.Message, n)
		for v := range inputs {
			inputs[v] = wire.Message{Data: []byte{byte(v)}, Bits: 8}
		}
		return inputs
	}
	corrupt := func(round, node int, m wire.Message) wire.Message {
		if node%3 != 1 || m.Bits == 0 {
			return m
		}
		out := wire.Message{Data: append([]byte(nil), m.Data...), Bits: m.Bits}
		out.Data[0] ^= 0x80
		return out
	}
	cases := []struct {
		name   string
		spec   string
		bits   int
		g      *graph.Graph
		inputs func(n int) []wire.Message
		peers  int
		opts   network.Options
	}{
		{"echo-1peer", "echo", 16, graph.Cycle(6), nil, 1, network.Options{Seed: 1}},
		{"echo-4peers", "echo", 16, graph.Cycle(9), nil, 4, network.Options{Seed: 2, RecordTranscript: true}},
		{"echo-n-peers", "echo", 24, graph.Complete(5), nil, 5, network.Options{Seed: 3}},
		{"digest", "digest", 16, graph.Cycle(8), nil, 3, network.Options{Seed: 4, RecordTranscript: true}},
		{"share", "share", 8, graph.Path(7), nil, 2, network.Options{Seed: 5}},
		{"inputs", "input", 0, graph.Star(6), byteInputs, 2, network.Options{Seed: 6}},
		{"corrupted", "echo", 16, graph.Cycle(6), nil, 2,
			network.Options{Seed: 7, Corrupt: corrupt, RecordTranscript: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := buildTestSpec(marshalParams(t, tc.spec, tc.bits))
			if err != nil {
				t.Fatal(err)
			}
			var inputs []wire.Message
			if tc.inputs != nil {
				inputs = tc.inputs(tc.g.N())
			}
			var prover network.Prover
			if tc.spec != "input" {
				prover = echoProver{}
			}
			seqOpts := tc.opts
			seqOpts.Sequential = true
			seqRes, err := network.Run(spec, tc.g, inputs, prover, seqOpts)
			if err != nil {
				t.Fatal(err)
			}

			addrs := startFleet(t, tc.peers)
			coord, err := Dial(addrs, marshalParams(t, tc.spec, tc.bits), Options{})
			if err != nil {
				t.Fatal(err)
			}
			netOpts := tc.opts
			netOpts.Transport = coord
			netRes, err := network.Run(spec, tc.g, inputs, prover, netOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seqRes, netRes) {
				t.Fatalf("results differ:\nsequential: %+v\nnetworked:  %+v", seqRes, netRes)
			}
		})
	}
}

// TestPeerFleetReuse runs several proofs against the same fleet: peer
// servers host sessions, not runs, so one booted fleet serves a stream of
// coordinators.
func TestPeerFleetReuse(t *testing.T) {
	addrs := startFleet(t, 2)
	g := graph.Cycle(6)
	spec := echoSpec(16)
	for seed := int64(1); seed <= 3; seed++ {
		seqRes, err := network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: seed, Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		coord, err := Dial(addrs, marshalParams(t, "echo", 16), Options{})
		if err != nil {
			t.Fatal(err)
		}
		netRes, err := network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: seed, Transport: coord})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqRes, netRes) {
			t.Fatalf("seed %d: results differ", seed)
		}
	}
}

// TestRemoteCallbackError pins cross-process failure attribution: a node
// callback panicking inside a peer process surfaces on the coordinator as
// the same phase/round/node RunError the in-process engines would raise.
func TestRemoteCallbackError(t *testing.T) {
	addrs := startFleet(t, 2)
	coord, err := Dial(addrs, marshalParams(t, "panic", 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = network.Run(panicSpec(), graph.Cycle(5), nil, echoProver{},
		network.Options{Seed: 1, Transport: coord})
	var rerr *network.RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if rerr.Phase != network.PhaseChallenge || rerr.Node != 2 || rerr.Round != 0 {
		t.Fatalf("attribution = %s/%d/%d (%v), want challenge/0/2", rerr.Phase, rerr.Round, rerr.Node, rerr.Err)
	}
}

// stallPeer is a hand-rolled fake peer: it completes the handshake, sends
// `challenges` valid challenge frames, and then goes silent until its
// connection is closed — a peer process that hangs mid-round.
func stallPeer(t *testing.T, challenges int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		_, payload, err := readFrame(br)
		if err != nil {
			return
		}
		var hello helloFrame
		if json.Unmarshal(payload, &hello) != nil {
			return
		}
		ok, _ := json.Marshal(helloOKFrame{Version: Version, Nodes: len(hello.Nodes)})
		if writeFrame(conn, frameHelloOK, ok) != nil {
			return
		}
		for i := 0; i < challenges && i < len(hello.Nodes); i++ {
			p, err := encodeDelivery(0, hello.Nodes[i].V, wire.Message{})
			if err != nil || writeFrame(conn, frameChallenge, p) != nil {
				return
			}
		}
		// Stall: swallow coordinator traffic without ever answering.
		io.Copy(io.Discard, conn)
	}()
	return l.Addr().String()
}

// TestStalledPeerTimesOut is the cancellation satellite: a peer that
// stalls mid-round (handshake done, one challenge delivered, then
// silence) must surface as a structured timeout RunError on the
// coordinator — PhaseTransport via the transport's own I/O deadline, or
// PhaseCanceled via a caller deadline — and must not leak goroutines.
func TestStalledPeerTimesOut(t *testing.T) {
	g := graph.Cycle(4)
	spec := echoSpec(8)

	t.Run("io-timeout", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		addr := stallPeer(t, 1)
		coord, err := Dial([]string{addr}, marshalParams(t, "echo", 8),
			Options{IOTimeout: 150 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		_, err = network.Run(spec, g, nil, echoProver{},
			network.Options{Seed: 1, Transport: coord})
		var rerr *network.RunError
		if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport {
			t.Fatalf("err = %v, want PhaseTransport RunError", err)
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("stall detection took %v", elapsed)
		}
		settleGoroutines(t, baseline)
	})

	t.Run("context-deadline", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		addr := stallPeer(t, 1)
		coord, err := Dial([]string{addr}, marshalParams(t, "echo", 8),
			Options{IOTimeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		_, err = network.RunContext(ctx, spec, g, nil, echoProver{},
			network.Options{Seed: 1, Transport: coord})
		var rerr *network.RunError
		if !errors.As(err, &rerr) || rerr.Phase != network.PhaseCanceled {
			t.Fatalf("err = %v, want PhaseCanceled RunError", err)
		}
		settleGoroutines(t, baseline)
	})
}

// TestDeadPeerFailsRun covers the harsher failure: the fleet address
// refuses connections entirely, and Begin reports it as PhaseTransport.
func TestDeadPeerFailsRun(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here anymore
	coord, err := Dial([]string{addr}, marshalParams(t, "echo", 8),
		Options{DialTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = network.Run(echoSpec(8), graph.Cycle(4), nil, echoProver{},
		network.Options{Seed: 1, Transport: coord})
	var rerr *network.RunError
	if !errors.As(err, &rerr) || rerr.Phase != network.PhaseTransport {
		t.Fatalf("err = %v, want PhaseTransport RunError", err)
	}
}

// TestSendDelaySlowLink exercises the transport-level slow-link hook: the
// run completes bit-identically, just later.
func TestSendDelaySlowLink(t *testing.T) {
	g := graph.Path(4)
	spec := echoSpec(8)
	seqRes, err := network.Run(spec, g, nil, echoProver{},
		network.Options{Seed: 1, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	addrs := startFleet(t, 2)
	coord, err := Dial(addrs, marshalParams(t, "echo", 8),
		Options{SendDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	netRes, err := network.Run(spec, g, nil, echoProver{},
		network.Options{Seed: 1, Transport: coord})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRes, netRes) {
		t.Fatal("slow-link run diverged from sequential")
	}
}
