// Package peer runs verifier nodes as real network peers: a Server hosts
// nodes in its own OS process and a Fleet implements network.Transport by
// dialing a set of servers, so the engine's networked executor drives
// actual sockets.
//
// The wire protocol (v2) is deliberately minimal: length-prefixed binary
// frames, each stamped with a session id, over TCP. One peer process
// hosts many interleaved sessions — over a shared connection, or over
// per-session connections — and the session id routes every frame to its
// session's state. A session opens with a JSON handshake (hello →
// helloOK) that provisions the peer — protocol parameters, run seed, and
// the graph *slice* of every node the peer hosts (its neighbor lists and
// inputs, never the whole graph) — and then both sides walk the
// spec-derived schedule (network.Schedule) in lockstep, so no round
// negotiation ever crosses the wire. The schedule itself is the round
// barrier: each side knows exactly how many frames of which type the
// current step owes, and reads until it has them.
//
// Everything semantic stays on the coordinator: validation, cost
// accounting, fault corruption, and the transcript live in the engine's
// delivery funnel, and peers only ever see post-funnel copies. That is
// what keeps a multi-process run bit-identical to the in-process
// executors (asserted by the equivalence suite) and what lets
// internal/faults injectors corrupt traffic that genuinely crosses
// sockets without the peers cooperating.
package peer

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dip/internal/network"
	"dip/internal/wire"
)

// Version is the wire protocol version. The hello handshake carries it in
// its proto field; a peer refuses any other version with a structured
// error naming the version it requires, so mixed-build fleets fail loudly
// at dial time.
const Version = 2

const (
	// maxFrame caps one frame body (session id + type byte + payload): a
	// hostile or corrupted length prefix cannot make a reader allocate
	// more than this.
	maxFrame = 1 << 24
	// maxMsgBits caps one encoded wire.Message's Bits claim; it matches the
	// largest message the engine's protocols can produce with room to
	// spare, while keeping ceil(bits/8) well under maxFrame.
	maxMsgBits = 1 << 26
)

// Frame types. The coordinator→peer direction carries hello, response,
// exchange, error, and end frames; the peer→coordinator direction carries
// helloOK, challenge, forward, decision, and error frames.
const (
	frameHello     byte = 0x01 // JSON helloFrame
	frameHelloOK   byte = 0x02 // JSON helloOKFrame
	frameChallenge byte = 0x10 // u32 round | u32 node | message
	frameResponse  byte = 0x11 // u32 round | u32 node | message
	frameForward   byte = 0x12 // u32 round | u32 node | message
	frameExchange  byte = 0x13 // u32 round | u32 from | u32 to | u8 flags | message
	frameDecision  byte = 0x14 // u32 node | u8 decision
	frameError     byte = 0x1E // JSON errorFrame; aborts the session
	frameEnd       byte = 0x1F // empty; normal session completion
)

// flagChal marks an exchange frame as a challenge exchange
// (Spec.ShareChallenges) rather than a response/digest forward.
const flagChal byte = 0x01

// writeFrame emits one v2 frame: a 4-byte big-endian length covering the
// session id, type byte, and payload, then all three. The frame is
// assembled into one buffer so a single Write call reaches the socket —
// frames from concurrent sessions sharing a connection can never
// interleave as long as each send holds the connection's write lock for
// exactly one writeFrame call.
func writeFrame(w io.Writer, sess uint32, typ byte, payload []byte) error {
	body := 5 + len(payload)
	if body > maxFrame {
		return fmt.Errorf("peer: frame type 0x%02x body of %d bytes exceeds the %d cap", typ, body, maxFrame)
	}
	buf := make([]byte, 4+body)
	binary.BigEndian.PutUint32(buf, uint32(body))
	binary.BigEndian.PutUint32(buf[4:], sess)
	buf[8] = typ
	copy(buf[9:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one v2 frame, returning its session id, type, and
// payload. The length prefix is validated before any allocation, so a
// malformed or hostile peer cannot trigger an oversized read.
func readFrame(r io.Reader) (uint32, byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body < 5 {
		return 0, 0, nil, fmt.Errorf("peer: frame body of %d bytes is shorter than the v2 header (5 bytes)", body)
	}
	if body > maxFrame {
		return 0, 0, nil, fmt.Errorf("peer: frame length %d exceeds the %d cap", body, maxFrame)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, fmt.Errorf("peer: truncated frame (want %d body bytes): %w", body, err)
	}
	return binary.BigEndian.Uint32(buf), buf[4], buf[5:], nil
}

// looksLikeV1 reports whether a frame parsed under the v2 layout is
// actually a protocol-v1 hello. A v1 frame body was `type | payload`, so
// a v1 hello body starts 0x01 '{' — under v2 parsing those bytes land in
// the session id's top half. The check only makes sense on the first
// frame of a connection, before any v2 traffic has been seen.
func looksLikeV1(sess uint32, typ byte) bool {
	_ = typ
	return byte(sess>>24) == frameHello && byte(sess>>16) == '{'
}

// writeV1Error emits an error frame in the *v1* framing (no session id),
// so a protocol-v1 client that just sent its hello decodes the rejection
// as a structured RunError instead of a framing failure.
func writeV1Error(w io.Writer, ef errorFrame) error {
	payload, err := json.Marshal(ef)
	if err != nil {
		return err
	}
	buf := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[4] = frameError
	copy(buf[5:], payload)
	_, err = w.Write(buf)
	return err
}

// appendMessage encodes m as u32 bit-length plus its data bytes, enforcing
// the engine's message invariant (len(Data) == ceil(Bits/8)) at the
// boundary so a malformed message never leaves the process.
func appendMessage(b []byte, m wire.Message) ([]byte, error) {
	if m.Bits < 0 || m.Bits > maxMsgBits || len(m.Data) != (m.Bits+7)/8 {
		return nil, fmt.Errorf("peer: malformed message: Bits=%d len(Data)=%d", m.Bits, len(m.Data))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(m.Bits))
	return append(b, m.Data...), nil
}

// decodeMessage decodes one message from b, returning it and the rest of
// the buffer. The bit-length claim is capped before the data length is
// derived from it, so a hostile length cannot cause an oversized slice.
func decodeMessage(b []byte) (wire.Message, []byte, error) {
	if len(b) < 4 {
		return wire.Message{}, nil, fmt.Errorf("peer: message header truncated (%d bytes)", len(b))
	}
	bits := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if bits > maxMsgBits {
		return wire.Message{}, nil, fmt.Errorf("peer: message claims %d bits (cap %d)", bits, maxMsgBits)
	}
	nbytes := (bits + 7) / 8
	if len(b) < nbytes {
		return wire.Message{}, nil, fmt.Errorf("peer: message truncated: %d bits need %d bytes, have %d", bits, nbytes, len(b))
	}
	var data []byte
	if nbytes > 0 {
		data = b[:nbytes:nbytes]
	}
	return wire.Message{Data: data, Bits: bits}, b[nbytes:], nil
}

// encodeDelivery builds the shared payload of challenge, response, and
// forward frames: one message attributed to (round, node).
func encodeDelivery(round, node int, m wire.Message) ([]byte, error) {
	b := make([]byte, 0, 12+len(m.Data))
	b = binary.BigEndian.AppendUint32(b, uint32(round))
	b = binary.BigEndian.AppendUint32(b, uint32(node))
	return appendMessage(b, m)
}

// decodeDelivery parses a challenge/response/forward payload.
func decodeDelivery(p []byte) (round, node int, m wire.Message, err error) {
	if len(p) < 8 {
		return 0, 0, wire.Message{}, fmt.Errorf("peer: delivery payload truncated (%d bytes)", len(p))
	}
	round = int(binary.BigEndian.Uint32(p))
	node = int(binary.BigEndian.Uint32(p[4:]))
	m, rest, err := decodeMessage(p[8:])
	if err != nil {
		return 0, 0, wire.Message{}, err
	}
	if len(rest) != 0 {
		return 0, 0, wire.Message{}, fmt.Errorf("peer: delivery payload has %d trailing bytes", len(rest))
	}
	return round, node, m, nil
}

// encodeExchange builds an exchange-frame payload: the post-funnel copy of
// from's message as delivered to to.
func encodeExchange(round, from, to int, chal bool, m wire.Message) ([]byte, error) {
	b := make([]byte, 0, 17+len(m.Data))
	b = binary.BigEndian.AppendUint32(b, uint32(round))
	b = binary.BigEndian.AppendUint32(b, uint32(from))
	b = binary.BigEndian.AppendUint32(b, uint32(to))
	var flags byte
	if chal {
		flags |= flagChal
	}
	b = append(b, flags)
	return appendMessage(b, m)
}

// decodeExchange parses an exchange-frame payload.
func decodeExchange(p []byte) (round, from, to int, chal bool, m wire.Message, err error) {
	if len(p) < 13 {
		return 0, 0, 0, false, wire.Message{}, fmt.Errorf("peer: exchange payload truncated (%d bytes)", len(p))
	}
	round = int(binary.BigEndian.Uint32(p))
	from = int(binary.BigEndian.Uint32(p[4:]))
	to = int(binary.BigEndian.Uint32(p[8:]))
	flags := p[12]
	if flags&^flagChal != 0 {
		return 0, 0, 0, false, wire.Message{}, fmt.Errorf("peer: exchange flags 0x%02x unknown", flags)
	}
	m, rest, err := decodeMessage(p[13:])
	if err != nil {
		return 0, 0, 0, false, wire.Message{}, err
	}
	if len(rest) != 0 {
		return 0, 0, 0, false, wire.Message{}, fmt.Errorf("peer: exchange payload has %d trailing bytes", len(rest))
	}
	return round, from, to, flags&flagChal != 0, m, nil
}

// encodeDecision builds a decision-frame payload.
func encodeDecision(node int, d bool) []byte {
	b := make([]byte, 5)
	binary.BigEndian.PutUint32(b, uint32(node))
	if d {
		b[4] = 1
	}
	return b
}

// decodeDecision parses a decision-frame payload.
func decodeDecision(p []byte) (node int, d bool, err error) {
	if len(p) != 5 {
		return 0, false, fmt.Errorf("peer: decision payload of %d bytes (want 5)", len(p))
	}
	if p[4] > 1 {
		return 0, false, fmt.Errorf("peer: decision byte 0x%02x (want 0 or 1)", p[4])
	}
	return int(binary.BigEndian.Uint32(p)), p[4] == 1, nil
}

// helloFrame is the coordinator's session-opening handshake: everything a
// peer needs to host its slice of the run. Proto is the wire protocol
// version (Version); a peer rejects any other value with a structured
// error naming the version it requires. Params is an opaque protocol
// parameter blob the peer's SpecBuilder understands (for dippeer: a
// dip.Request without edge lists); Nodes lists the hosted nodes with their
// neighbor slices and private inputs — the peer never sees the rest of the
// graph.
type helloFrame struct {
	Proto  int             `json:"proto"`
	Params json.RawMessage `json:"params"`
	Seed   int64           `json:"seed"`
	N      int             `json:"n"`
	Nodes  []helloNode     `json:"nodes"`
}

// helloNode is one hosted node's slice of the run.
type helloNode struct {
	V         int    `json:"v"`
	Neighbors []int  `json:"neighbors"`
	InputBits int    `json:"input_bits"`
	InputData []byte `json:"input_data,omitempty"`
}

// helloOKFrame is the peer's handshake acknowledgement.
type helloOKFrame struct {
	Proto int `json:"proto"`
	Nodes int `json:"nodes"`
}

// errorFrame carries a structured *network.RunError across the wire, in
// either direction: a peer whose node callback failed reports the original
// phase (challenge, digest, decide), and a coordinator aborting a run
// tells every peer why.
type errorFrame struct {
	Protocol string `json:"protocol"`
	Phase    string `json:"phase"`
	Round    int    `json:"round"`
	Node     int    `json:"node"`
	Message  string `json:"message"`
}

// errorFrameOf projects a RunError onto its wire form.
func errorFrameOf(rerr *network.RunError) errorFrame {
	return errorFrame{
		Protocol: rerr.Protocol,
		Phase:    string(rerr.Phase),
		Round:    rerr.Round,
		Node:     rerr.Node,
		Message:  rerr.Err.Error(),
	}
}

// runError rebuilds the RunError an errorFrame describes.
func (ef errorFrame) runError() *network.RunError {
	return &network.RunError{
		Protocol: ef.Protocol,
		Phase:    network.Phase(ef.Phase),
		Round:    ef.Round,
		Node:     ef.Node,
		Err:      errors.New(ef.Message),
	}
}
