package peer

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dip/internal/wire"
)

// FuzzPeerFrame throws arbitrary bytes at the full inbound path a peer or
// coordinator exposes to the network: the length-prefixed v2 frame reader
// (session id | type | payload) followed by every binary payload decoder.
// The invariants under test are memory-safety ones — no panic, no
// allocation driven by an unvalidated length claim, and any decoded
// message obeys the engine invariant len(Data) == ceil(Bits/8) — not
// semantic ones, which the session layer enforces after decoding.
func FuzzPeerFrame(f *testing.F) {
	seed := func(sess uint32, typ byte, payload []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, sess, typ, payload); err == nil {
			f.Add(buf.Bytes())
		}
	}
	// Well-formed frames of every type, across session-id shapes: zero,
	// small counters, and ids whose bytes collide with the v1-hello
	// heuristic territory.
	chal, _ := encodeDelivery(0, 3, wire.Message{Data: []byte{0xAB, 0x01}, Bits: 9})
	seed(1, frameChallenge, chal)
	resp, _ := encodeDelivery(2, 0, wire.Message{})
	seed(0, frameResponse, resp)
	fwd, _ := encodeDelivery(1, 7, wire.Message{Data: []byte{0xFF}, Bits: 8})
	seed(0xFFFFFFFF, frameForward, fwd)
	ex, _ := encodeExchange(1, 4, 5, true, wire.Message{Data: []byte{0x42}, Bits: 7})
	seed(7, frameExchange, ex)
	seed(0x017B2276, frameDecision, encodeDecision(6, true))
	seed(2, frameHello, []byte(`{"proto":2,"seed":7,"n":4,"nodes":[{"v":0,"neighbors":[1]}]}`))
	seed(3, frameError, []byte(`{"phase":"transport","round":1,"node":2,"message":"x"}`))
	seed(4, frameEnd, nil)
	// A protocol-v1 hello byte stream: under the v2 layout its type byte
	// and opening brace land in the session id (the rejection heuristic's
	// territory).
	v1hello := append([]byte{0, 0, 0, 14, 0x01}, []byte(`{"version":1}`)...)
	f.Add(v1hello)
	// Malformed shapes: truncated frames, sub-header length claims,
	// oversized length claims, hostile bit counts, trailing garbage.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, frameEnd})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x10})
	f.Add([]byte{0, 0, 1, 0, 0, 0, 0, 1, 0x10, 1, 2, 3})
	hostileBits := []byte{0, 0, 0, 17, 0, 0, 0, 1, 0x10, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	f.Add(hostileBits)
	f.Add(append(append([]byte{0, 0, 0, byte(5 + len(ex) + 1), 0, 0, 0, 9}, frameExchange), append(ex, 0xEE)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bytes.NewReader(data)
		for {
			_, typ, payload, err := readFrame(br)
			if err != nil {
				return
			}
			if len(payload) > maxFrame {
				t.Fatalf("readFrame returned a %d-byte payload past the cap", len(payload))
			}
			check := func(m wire.Message, err error) {
				if err != nil {
					return
				}
				if m.Bits < 0 || m.Bits > maxMsgBits || len(m.Data) != (m.Bits+7)/8 {
					t.Fatalf("decoder produced malformed message Bits=%d len(Data)=%d", m.Bits, len(m.Data))
				}
				// A decoded message must survive re-encoding: the codec
				// round-trips everything it accepts.
				if _, err := appendMessage(nil, m); err != nil {
					t.Fatalf("accepted message fails re-encode: %v", err)
				}
			}
			switch typ {
			case frameChallenge, frameResponse, frameForward:
				_, _, m, err := decodeDelivery(payload)
				check(m, err)
			case frameExchange:
				_, _, _, _, m, err := decodeExchange(payload)
				check(m, err)
			case frameDecision:
				node, _, err := decodeDecision(payload)
				if err == nil && uint32(node) != binary.BigEndian.Uint32(payload) {
					t.Fatalf("decision node mismatch: %d", node)
				}
			}
		}
	})
}
