package peer

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"

	"dip/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		sess    uint32
		typ     byte
		payload []byte
	}{
		{0, frameHello, []byte(`{"proto":2}`)},
		{1, frameEnd, nil},
		{0xFFFFFFFF, frameHelloOK, []byte{0xDE, 0xAD}},
		{42, frameChallenge, []byte{1, 2, 3}},
	}
	for _, tc := range cases {
		buf.Reset()
		if err := writeFrame(&buf, tc.sess, tc.typ, tc.payload); err != nil {
			t.Fatal(err)
		}
		gotSess, gotTyp, gotP, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotSess != tc.sess || gotTyp != tc.typ || !bytes.Equal(gotP, tc.payload) {
			t.Fatalf("session %d type 0x%02x: round trip got (%d, 0x%02x, %x)",
				tc.sess, tc.typ, gotSess, gotTyp, gotP)
		}
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		frag string
	}{
		{"zero-length", []byte{0, 0, 0, 0}, "shorter than the v2 header"},
		{"v1-length", []byte{0, 0, 0, 1, frameEnd}, "shorter than the v2 header"},
		{"oversized-claim", []byte{0xFF, 0xFF, 0xFF, 0xFF}, "exceeds"},
		{"truncated-header", []byte{0, 0}, "EOF"},
		{"truncated-body", []byte{0, 0, 0, 9, 0, 0, 0, 1, frameEnd}, "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := readFrame(bytes.NewReader(tc.raw))
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want mention of %q", err, tc.frag)
			}
		})
	}
}

func TestWriteFrameRejectsOversized(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, 1, frameHello, make([]byte, maxFrame)); err == nil {
		t.Fatal("writeFrame accepted a body over the cap")
	}
}

// TestLooksLikeV1 pins the v1-hello heuristic: a protocol-v1 hello frame
// parsed under the v2 layout lands its type byte and opening brace in
// the session id, while genuine v2 frames never match.
func TestLooksLikeV1(t *testing.T) {
	// A real v1 hello: u32 len | 0x01 | `{"version":1,...}`.
	v1 := []byte{0, 0, 0, 14, 0x01}
	v1 = append(v1, []byte(`{"version":1}`)...)
	sess, typ, _, err := readFrame(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if !looksLikeV1(sess, typ) {
		t.Fatalf("v1 hello parsed as session %#x type 0x%02x not flagged", sess, typ)
	}
	if validFrameType(typ) {
		t.Fatalf("v1 hello byte stream produced a valid v2 type 0x%02x", typ)
	}
	// A genuine v2 hello must not be flagged.
	var buf bytes.Buffer
	if err := writeFrame(&buf, 7, frameHello, []byte(`{"proto":2}`)); err != nil {
		t.Fatal(err)
	}
	sess, typ, _, err = readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if looksLikeV1(sess, typ) {
		t.Fatal("v2 hello misflagged as v1")
	}
}

// TestWriteV1Error pins that the v1-framed rejection is decodable by a
// v1 reader: u32 len | type | payload, carrying the structured error.
func TestWriteV1Error(t *testing.T) {
	var buf bytes.Buffer
	ef := errorFrame{Phase: "transport", Round: -1, Node: -1, Message: "peer speaks wire protocol 2"}
	if err := writeV1Error(&buf, ef); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) < 5 {
		t.Fatalf("frame too short: %x", raw)
	}
	body := binary.BigEndian.Uint32(raw)
	if int(body) != len(raw)-4 {
		t.Fatalf("length prefix %d for %d body bytes", body, len(raw)-4)
	}
	if raw[4] != frameError {
		t.Fatalf("type byte 0x%02x, want error", raw[4])
	}
	var got errorFrame
	if err := json.Unmarshal(raw[5:], &got); err != nil {
		t.Fatal(err)
	}
	if got.Message != ef.Message || got.Phase != ef.Phase {
		t.Fatalf("round trip got %+v", got)
	}
}

func TestDeliveryRoundTrip(t *testing.T) {
	for _, m := range []wire.Message{
		{},
		{Data: []byte{0xAB}, Bits: 8},
		{Data: []byte{0xAB, 0x03}, Bits: 11},
	} {
		p, err := encodeDelivery(3, 7, m)
		if err != nil {
			t.Fatal(err)
		}
		round, node, got, err := decodeDelivery(p)
		if err != nil {
			t.Fatal(err)
		}
		if round != 3 || node != 7 || got.Bits != m.Bits || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip of %+v got (%d, %d, %+v)", m, round, node, got)
		}
	}
}

func TestDeliveryRejectsMalformed(t *testing.T) {
	good, err := encodeDelivery(1, 2, wire.Message{Data: []byte{0xFF}, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := decodeDelivery(good[:len(good)-1]); err == nil {
		t.Fatal("accepted truncated message data")
	}
	if _, _, _, err := decodeDelivery(append(good, 0x00)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	if _, _, _, err := decodeDelivery(good[:6]); err == nil {
		t.Fatal("accepted truncated header")
	}
	// An oversized bit claim must be rejected before its byte length is even
	// derived, let alone allocated.
	hostile := make([]byte, 12)
	binary.BigEndian.PutUint32(hostile[8:], uint32(maxMsgBits+1))
	if _, _, _, err := decodeDelivery(hostile); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("oversized bits claim: err = %v", err)
	}
	// Malformed messages must not leave the process either.
	if _, err := encodeDelivery(0, 0, wire.Message{Data: []byte{1, 2}, Bits: 3}); err == nil {
		t.Fatal("encoded a message whose Data length contradicts Bits")
	}
}

func TestExchangeRoundTrip(t *testing.T) {
	for _, chal := range []bool{false, true} {
		m := wire.Message{Data: []byte{0x5A, 0x01}, Bits: 9}
		p, err := encodeExchange(2, 4, 6, chal, m)
		if err != nil {
			t.Fatal(err)
		}
		round, from, to, gotChal, got, err := decodeExchange(p)
		if err != nil {
			t.Fatal(err)
		}
		if round != 2 || from != 4 || to != 6 || gotChal != chal ||
			got.Bits != m.Bits || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("chal=%v round trip got (%d, %d→%d, %v, %+v)", chal, round, from, to, gotChal, got)
		}
	}
}

func TestExchangeRejectsUnknownFlags(t *testing.T) {
	p, err := encodeExchange(0, 0, 1, false, wire.Message{})
	if err != nil {
		t.Fatal(err)
	}
	p[12] = 0x04
	if _, _, _, _, _, err := decodeExchange(p); err == nil || !strings.Contains(err.Error(), "flags") {
		t.Fatalf("unknown flags: err = %v", err)
	}
}

func TestDecisionRoundTrip(t *testing.T) {
	for _, d := range []bool{false, true} {
		node, got, err := decodeDecision(encodeDecision(9, d))
		if err != nil {
			t.Fatal(err)
		}
		if node != 9 || got != d {
			t.Fatalf("round trip of (9, %v) got (%d, %v)", d, node, got)
		}
	}
	if _, _, err := decodeDecision([]byte{0, 0, 0, 1, 2}); err == nil {
		t.Fatal("accepted decision byte 2")
	}
	if _, _, err := decodeDecision([]byte{0, 0, 0, 1}); err == nil {
		t.Fatal("accepted 4-byte decision payload")
	}
}
